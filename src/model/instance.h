#ifndef CASC_MODEL_INSTANCE_H_
#define CASC_MODEL_INSTANCE_H_

#include <vector>

#include "model/cooperation_matrix.h"
#include "model/task.h"
#include "model/worker.h"

namespace casc {

/// One batch of the CA-SC problem (Definition 4): the available workers
/// W(phi), available tasks T(phi), their pairwise cooperation qualities,
/// the batch timestamp phi, and the platform-wide minimum group size B.
///
/// After ComputeValidPairs() the instance also exposes the valid
/// worker-and-task pairs of Definition 3 in both directions:
/// `ValidTasks(w)` (the set T_i of Algorithm 1) and `Candidates(t)`.
///
/// Validity of (w_i, t_j) at timestamp `now`:
///   1) both are present: phi_i <= now and phi_j <= now;
///   2) l_j is inside w_i's working area: d(l_i, l_j) <= r_i;
///   3) w_i arrives before the deadline: now + d(l_i, l_j)/v_i <= tau_j.
/// (The paper's condition "the worker comes to the system after the task
/// is created" is implied by both being available in the same batch.)
class Instance {
 public:
  /// Builds an instance. Requires coop.num_workers() == workers.size()
  /// and min_group_size >= 2 (Equation 2 divides by group size - 1).
  Instance(std::vector<Worker> workers, std::vector<Task> tasks,
           CooperationMatrix coop, double now, int min_group_size);

  const std::vector<Worker>& workers() const { return workers_; }
  const std::vector<Task>& tasks() const { return tasks_; }
  const CooperationMatrix& coop() const { return coop_; }
  double now() const { return now_; }

  /// The minimum number B of workers required to finish any task.
  int min_group_size() const { return min_group_size_; }

  int num_workers() const { return static_cast<int>(workers_.size()); }
  int num_tasks() const { return static_cast<int>(tasks_.size()); }

  /// Direct geometric/temporal validity check for one pair (Definition 3).
  bool IsValidPair(WorkerIndex w, TaskIndex t) const;

  /// Computes the valid-pair lists for every worker and task. Uses an
  /// R-tree over task locations for the working-area range queries, as in
  /// Algorithm 1 lines 4-5. Idempotent.
  void ComputeValidPairs();

  /// Installs precomputed valid-pair lists instead of running
  /// ComputeValidPairs(). The dispatch service uses this to derive a
  /// shard's lists from the already-computed global lists (a filter +
  /// remap) rather than re-querying the R-tree per shard. The caller
  /// promises the lists equal what ComputeValidPairs() would produce:
  /// per-worker tasks and per-task workers, each in ascending index
  /// order, mutually consistent. Sizes must match the instance; may not
  /// be called after valid pairs are ready.
  void AdoptValidPairs(std::vector<std::vector<TaskIndex>> valid_tasks,
                       std::vector<std::vector<WorkerIndex>> candidates);

  /// Valid tasks T_i for worker `w`, ascending task index.
  /// Requires ComputeValidPairs() to have run.
  const std::vector<TaskIndex>& ValidTasks(WorkerIndex w) const;

  /// Candidate workers for task `t`, ascending worker index.
  /// Requires ComputeValidPairs() to have run.
  const std::vector<WorkerIndex>& Candidates(TaskIndex t) const;

  /// True once ComputeValidPairs() has run.
  bool valid_pairs_ready() const { return valid_pairs_ready_; }

  /// Total number of valid worker-and-task pairs.
  size_t NumValidPairs() const;

 private:
  std::vector<Worker> workers_;
  std::vector<Task> tasks_;
  CooperationMatrix coop_;
  double now_;
  int min_group_size_;

  bool valid_pairs_ready_ = false;
  std::vector<std::vector<TaskIndex>> valid_tasks_;   // per worker
  std::vector<std::vector<WorkerIndex>> candidates_;  // per task
};

}  // namespace casc

#endif  // CASC_MODEL_INSTANCE_H_
