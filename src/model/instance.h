#ifndef CASC_MODEL_INSTANCE_H_
#define CASC_MODEL_INSTANCE_H_

#include <span>
#include <vector>

#include "geo/point.h"
#include "model/cooperation_matrix.h"
#include "model/task.h"
#include "model/valid_pair_index.h"
#include "model/worker.h"

namespace casc {

class BatchWorkspace;
class ObjectiveModel;

/// Spatial index backend used by ComputeValidPairs() for the
/// working-area range queries. All backends produce identical valid-pair
/// sets (CircleQuery returns ascending ids for every implementation);
/// they differ only in build/query cost.
enum class SpatialBackend {
  kRTree,       ///< bulk-loaded R-tree (default; best at batch scale)
  kGridIndex,   ///< uniform grid (best under uniform task density)
  kLinearScan,  ///< O(n) reference scan (baseline / tiny batches)
};

/// Process-wide default backend for ComputeValidPairs() callers that do
/// not pass one explicitly (the single selection flag of the data plane).
void SetDefaultSpatialBackend(SpatialBackend backend);
SpatialBackend DefaultSpatialBackend();

/// One batch of the CA-SC problem (Definition 4): the available workers
/// W(phi), available tasks T(phi), their pairwise cooperation qualities,
/// the batch timestamp phi, and the platform-wide minimum group size B.
///
/// After ComputeValidPairs() the instance also exposes the valid
/// worker-and-task pairs of Definition 3 in both directions:
/// `ValidTasks(w)` (the set T_i of Algorithm 1) and `Candidates(t)`.
/// The pairs live in a flat CSR ValidPairIndex; shard views adopt a
/// pre-remapped index zero-copy (AdoptValidPairs).
///
/// Validity of (w_i, t_j) at timestamp `now`:
///   1) both are present: phi_i <= now and phi_j <= now;
///   2) l_j is inside w_i's working area: d(l_i, l_j) <= r_i;
///   3) w_i arrives before the deadline: now + d(l_i, l_j)/v_i <= tau_j.
/// (The paper's condition "the worker comes to the system after the task
/// is created" is implied by both being available in the same batch.)
class Instance {
 public:
  /// Builds an instance. Requires coop.num_workers() == workers.size()
  /// and min_group_size >= 2 (Equation 2 divides by group size - 1).
  Instance(std::vector<Worker> workers, std::vector<Task> tasks,
           CooperationMatrix coop, double now, int min_group_size);

  const std::vector<Worker>& workers() const { return workers_; }
  const std::vector<Task>& tasks() const { return tasks_; }
  const CooperationMatrix& coop() const { return coop_; }
  double now() const { return now_; }

  /// The minimum number B of workers required to finish any task.
  int min_group_size() const { return min_group_size_; }

  /// The scoring model every solver layer routes through. Fresh
  /// instances start on ProcessDefaultObjective() (CASC_OBJECTIVE env,
  /// else the paper's CascObjective); shard views inherit the global
  /// instance's objective, the dispatch service applies its config.
  const ObjectiveModel& objective() const { return *objective_; }

  /// Swaps the scoring model. Requires a registry-lived objective (the
  /// pointer is shared across threads and shard views, never owned).
  void set_objective(const ObjectiveModel* objective);

  int num_workers() const { return static_cast<int>(workers_.size()); }
  int num_tasks() const { return static_cast<int>(tasks_.size()); }

  /// SoA views of the hot per-entity fields, contiguous for the
  /// reachability and delta-evaluation inner loops.
  std::span<const Point> worker_locations() const {
    return worker_locations_;
  }
  std::span<const double> worker_speeds() const { return worker_speeds_; }
  std::span<const double> worker_radii() const { return worker_radii_; }
  std::span<const double> worker_arrivals() const {
    return worker_arrivals_;
  }
  std::span<const Point> task_locations() const { return task_locations_; }
  std::span<const double> task_create_times() const {
    return task_create_times_;
  }
  std::span<const double> task_deadlines() const { return task_deadlines_; }
  std::span<const int> task_capacities() const { return task_capacities_; }
  std::span<const SkillMask> worker_skills() const { return worker_skills_; }
  std::span<const SkillMask> task_required_skills() const {
    return task_required_skills_;
  }

  /// Direct geometric/temporal validity check for one pair (Definition 3).
  bool IsValidPair(WorkerIndex w, TaskIndex t) const;

  /// Computes the valid-pair lists for every worker and task with the
  /// process default backend (Algorithm 1 lines 4-5). Idempotent.
  void ComputeValidPairs();

  /// Same, with an explicit spatial backend and an optional workspace
  /// whose pooled CSR index and scratch buffers are reused (steady-state
  /// streaming batches then allocate nothing for the pair lists).
  void ComputeValidPairs(SpatialBackend backend,
                         BatchWorkspace* workspace = nullptr);

  /// Installs a precomputed CSR index instead of running
  /// ComputeValidPairs(). The dispatch service uses this to derive a
  /// shard's lists from the already-computed global lists (a filter +
  /// remap) rather than re-querying the spatial index per shard. The
  /// caller promises the index equals what ComputeValidPairs() would
  /// produce: per-worker tasks and per-task workers, each in ascending
  /// index order, mutually consistent. Shape must match the instance;
  /// may not be called after valid pairs are ready.
  void AdoptValidPairs(ValidPairIndex index);

  /// Nested-vector compatibility overload (converts into the CSR form).
  void AdoptValidPairs(std::vector<std::vector<TaskIndex>> valid_tasks,
                       std::vector<std::vector<WorkerIndex>> candidates);

  /// Moves the CSR index out (for recycling into a BatchWorkspace once
  /// the batch is committed). The instance reverts to the
  /// pairs-not-ready state.
  ValidPairIndex ReleaseValidPairs();

  /// Valid tasks T_i for worker `w`, ascending task index.
  /// Requires ComputeValidPairs() to have run.
  std::span<const TaskIndex> ValidTasks(WorkerIndex w) const;

  /// Candidate workers for task `t`, ascending worker index.
  /// Requires ComputeValidPairs() to have run.
  std::span<const WorkerIndex> Candidates(TaskIndex t) const;

  /// True once ComputeValidPairs() has run.
  bool valid_pairs_ready() const { return valid_pairs_ready_; }

  /// Total number of valid worker-and-task pairs, O(1).
  size_t NumValidPairs() const;

 private:
  std::vector<Worker> workers_;
  std::vector<Task> tasks_;
  CooperationMatrix coop_;
  double now_;
  int min_group_size_;
  const ObjectiveModel* objective_;

  // SoA mirrors of the hot fields, filled by the constructor.
  std::vector<Point> worker_locations_;
  std::vector<double> worker_speeds_;
  std::vector<double> worker_radii_;
  std::vector<double> worker_arrivals_;
  std::vector<Point> task_locations_;
  std::vector<double> task_create_times_;
  std::vector<double> task_deadlines_;
  std::vector<int> task_capacities_;
  std::vector<SkillMask> worker_skills_;
  std::vector<SkillMask> task_required_skills_;

  bool valid_pairs_ready_ = false;
  ValidPairIndex pairs_;
};

}  // namespace casc

#endif  // CASC_MODEL_INSTANCE_H_
