#ifndef CASC_MODEL_VALID_PAIR_INDEX_H_
#define CASC_MODEL_VALID_PAIR_INDEX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "model/worker.h"

namespace casc {

/// CSR (compressed sparse row) store of the valid worker-and-task pairs
/// (Definition 3), flat in both directions:
///
///   task_flat_[task_offsets_[w] .. task_offsets_[w+1])   = T_i of worker w
///   worker_flat_[worker_offsets_[t] .. worker_offsets_[t+1]) = candidates
///                                                              of task t
///
/// Both directions keep ascending index order, matching what the nested
/// `vector<vector<...>>` representation produced. The index is built once
/// per batch (worker-major) and the task-major direction is derived by a
/// counting pass in FinishBuild(); shard views adopt a pre-remapped
/// instance of this class zero-copy (Instance::AdoptValidPairs).
///
/// Reuse contract: Clear() and BeginBuild() never release the backing
/// arrays, so a pooled index (BatchWorkspace) reaches a steady state with
/// zero allocations per batch. Growth events of the backing arrays are
/// counted process-wide (TotalReallocs) for the data-plane benches.
class ValidPairIndex {
 public:
  ValidPairIndex() = default;

  /// Build protocol (worker-major, ascending):
  ///   BeginBuild(W, T);
  ///   for w = 0..W-1: AppendValidTask(t)...; FinishWorker();
  ///   FinishBuild();
  void BeginBuild(int num_workers, int num_tasks);

  /// Appends one valid task for the worker currently being built.
  /// Tasks must arrive in ascending order per worker.
  void AppendValidTask(TaskIndex t);

  /// Seals the current worker's row. Must be called exactly num_workers
  /// times between BeginBuild() and FinishBuild().
  void FinishWorker();

  /// Derives the task-major (candidates) direction and makes the index
  /// ready. Candidates come out in ascending worker order because workers
  /// are scanned in ascending order.
  void FinishBuild();

  /// Parallel build protocol (counting pass -> exclusive prefix sum ->
  /// parallel fill), used by the streaming plane's fanned-out CSR
  /// emission. The caller computes every row length up front, writes the
  /// final worker-major offsets directly, then fills the flat array with
  /// each worker's tasks (ascending per worker) through disjoint ranges —
  /// safe from many threads because no two workers share a range:
  ///
  ///   int32_t* offsets = index.StartParallelBuild(W, T);
  ///   offsets[0] = 0; offsets[w + 1] = offsets[w] + row_length(w);
  ///   TaskIndex* flat = index.AllocateParallelFlat();
  ///   // fill flat[offsets[w] .. offsets[w+1]) per worker, any order of
  ///   // workers across threads
  ///   index.FinishParallelBuild();
  ///
  /// The resulting arrays are byte-identical to a serial
  /// BeginBuild/AppendValidTask/FinishWorker/FinishBuild sequence
  /// appending the same rows.
  int32_t* StartParallelBuild(int num_workers, int num_tasks);

  /// Sizes the worker-major flat array to offsets[num_workers] (which the
  /// caller must have filled) and returns it for parallel writing.
  TaskIndex* AllocateParallelFlat();

  /// Seals a StartParallelBuild() construction: checks the offsets are
  /// monotone, derives the task-major direction and makes the index ready.
  void FinishParallelBuild();

  /// True between FinishBuild() and the next Clear()/BeginBuild().
  bool ready() const { return ready_; }

  int num_workers() const {
    return static_cast<int>(task_offsets_.size()) - 1;
  }
  int num_tasks() const {
    return static_cast<int>(worker_offsets_.size()) - 1;
  }

  /// Valid tasks T_i for worker `w`, ascending. Requires ready().
  std::span<const TaskIndex> ValidTasks(WorkerIndex w) const;

  /// Candidate workers for task `t`, ascending. Requires ready().
  std::span<const WorkerIndex> Candidates(TaskIndex t) const;

  /// Total number of valid pairs, O(1).
  size_t NumValidPairs() const { return task_flat_.size(); }

  /// True when both indexes are ready and hold byte-identical CSR arrays
  /// (offsets and flats in both directions). The streaming plane's
  /// differential audit (CASC_STREAM_AUDIT) compares its delta-maintained
  /// index against a from-scratch rebuild with this.
  bool SameAs(const ValidPairIndex& other) const;

  /// Returns to the not-ready state keeping all capacity (pooling hook).
  void Clear();

  /// Process-wide count of backing-array growth events. Steady-state
  /// streaming batches must not move this counter.
  static int64_t TotalReallocs();

 private:
  /// Counting pass + prefix sum + cursor fill turning the worker-major
  /// arrays into the task-major direction; shared tail of FinishBuild()
  /// and FinishParallelBuild().
  void DeriveTaskMajor();

  bool ready_ = false;
  bool building_ = false;
  int expected_workers_ = 0;
  int built_workers_ = 0;
  std::vector<int32_t> task_offsets_;     // num_workers + 1
  std::vector<TaskIndex> task_flat_;      // worker-major valid tasks
  std::vector<int32_t> worker_offsets_;   // num_tasks + 1
  std::vector<WorkerIndex> worker_flat_;  // task-major candidates
  std::vector<int32_t> cursor_;           // FinishBuild scratch
};

}  // namespace casc

#endif  // CASC_MODEL_VALID_PAIR_INDEX_H_
