#include "model/objective.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "model/objective_model.h"

namespace casc {
namespace {

/// Number of k-subsets of an n-set, saturating at `limit`.
int64_t BinomialCapped(int n, int k, int64_t limit) {
  if (k < 0 || k > n) return 0;
  k = std::min(k, n - k);
  int64_t result = 1;
  for (int i = 1; i <= k; ++i) {
    result = result * (n - k + i) / i;
    if (result >= limit) return limit;
  }
  return result;
}

/// Enumerates all k-subsets, tracking the best PairSum.
void EnumerateSubsets(const CooperationMatrix& coop,
                      std::span<const WorkerIndex> group, int k,
                      size_t start, std::vector<WorkerIndex>* current,
                      double current_sum, double* best_sum,
                      std::vector<WorkerIndex>* best) {
  if (static_cast<int>(current->size()) == k) {
    if (current_sum > *best_sum) {
      *best_sum = current_sum;
      *best = *current;
    }
    return;
  }
  const int needed = k - static_cast<int>(current->size());
  for (size_t i = start; i + static_cast<size_t>(needed) <= group.size();
       ++i) {
    const WorkerIndex w = group[i];
    double added = 0.0;
    for (const WorkerIndex member : *current) {
      added += coop.Quality(member, w) + coop.Quality(w, member);
    }
    current->push_back(w);
    EnumerateSubsets(coop, group, k, i + 1, current, current_sum + added,
                     best_sum, best);
    current->pop_back();
  }
}

}  // namespace

std::vector<WorkerIndex> BestSubset(const CooperationMatrix& coop,
                                    std::span<const WorkerIndex> group,
                                    int k) {
  CASC_CHECK_GE(k, 0);
  CASC_CHECK_LE(k, static_cast<int>(group.size()));
  if (k == static_cast<int>(group.size())) {
    return std::vector<WorkerIndex>(group.begin(), group.end());
  }
  if (k == 0) return {};

  constexpr int64_t kEnumerationLimit = 20000;
  if (BinomialCapped(static_cast<int>(group.size()), k,
                     kEnumerationLimit) < kEnumerationLimit) {
    std::vector<WorkerIndex> best, current;
    double best_sum = -1.0;
    EnumerateSubsets(coop, group, k, 0, &current, 0.0, &best_sum, &best);
    return best;
  }

  // Greedy backward elimination: drop the member with the smallest total
  // affinity (incoming + outgoing) to the remaining members. Each
  // member's affinity is computed once up front (O(g^2)) and decremented
  // when a member is dropped, so every drop costs O(g) instead of the
  // naive O(g^2) rescan.
  std::vector<WorkerIndex> remaining(group.begin(), group.end());
  std::vector<double> affinity(remaining.size(), 0.0);
  for (size_t i = 0; i < remaining.size(); ++i) {
    for (size_t j = 0; j < remaining.size(); ++j) {
      if (i == j) continue;
      affinity[i] += coop.Quality(remaining[i], remaining[j]) +
                     coop.Quality(remaining[j], remaining[i]);
    }
  }
  while (static_cast<int>(remaining.size()) > k) {
    size_t worst_index = 0;
    double worst_affinity = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < remaining.size(); ++i) {
      if (affinity[i] < worst_affinity) {
        worst_affinity = affinity[i];
        worst_index = i;
      }
    }
    const WorkerIndex worst = remaining[worst_index];
    remaining.erase(remaining.begin() + static_cast<ptrdiff_t>(worst_index));
    affinity.erase(affinity.begin() + static_cast<ptrdiff_t>(worst_index));
    for (size_t i = 0; i < remaining.size(); ++i) {
      affinity[i] -= coop.Quality(remaining[i], worst) +
                     coop.Quality(worst, remaining[i]);
    }
  }
  return remaining;
}

double GroupScore(const Instance& instance, TaskIndex t,
                  std::span<const WorkerIndex> group) {
  CASC_CHECK_GE(t, 0);
  CASC_CHECK_LT(t, instance.num_tasks());
  const int size = static_cast<int>(group.size());
  if (size < instance.min_group_size()) return 0.0;
  const int capacity = instance.tasks()[static_cast<size_t>(t)].capacity;
  const CooperationMatrix& coop = instance.coop();
  const ObjectiveModel& objective = instance.objective();
  if (size <= capacity) {
    return objective.ScoreGroup(instance, t, group, kNoWorker, kNoWorker,
                                coop.PairSum(group), size);
  }
  // Over capacity: only the best a_j-subset is paid (Equation 2's note).
  // Subset selection maximizes the cooperation term regardless of the
  // objective — the crowding mechanism is engine-side — but the chosen
  // subset is *scored* by the objective (a skill-gated subset can come
  // out at 0 if the crowd-out dropped the last holder of a skill).
  const std::vector<WorkerIndex> best = BestSubset(coop, group, capacity);
  return objective.ScoreGroup(instance, t, best, kNoWorker, kNoWorker,
                              coop.PairSum(best), capacity);
}

double MarginalOfMember(const Instance& instance, TaskIndex t,
                        std::span<const WorkerIndex> group, WorkerIndex w) {
  CASC_CHECK(std::find(group.begin(), group.end(), w) != group.end())
      << "MarginalOfMember: worker " << w << " not in group";
  std::vector<WorkerIndex> without;
  without.reserve(group.size() - 1);
  for (const WorkerIndex member : group) {
    if (member != w) without.push_back(member);
  }
  return GroupScore(instance, t, group) - GroupScore(instance, t, without);
}

double GainOfJoining(const Instance& instance, TaskIndex t,
                     std::span<const WorkerIndex> group, WorkerIndex w) {
  CASC_CHECK(std::find(group.begin(), group.end(), w) == group.end())
      << "GainOfJoining: worker " << w << " already in group";
  std::vector<WorkerIndex> with(group.begin(), group.end());
  with.push_back(w);
  return GroupScore(instance, t, with) - GroupScore(instance, t, group);
}

double TotalScore(const Instance& instance, const Assignment& assignment) {
  double total = 0.0;
  for (TaskIndex t = 0; t < instance.num_tasks(); ++t) {
    total += GroupScore(instance, t, assignment.GroupOf(t));
  }
  return total;
}

}  // namespace casc
