#ifndef CASC_MODEL_SCORE_KEEPER_H_
#define CASC_MODEL_SCORE_KEEPER_H_

#include <span>
#include <vector>

#include "model/assignment.h"
#include "model/instance.h"

namespace casc {

/// Incrementally maintained Equation-3 objective.
///
/// TotalScore() recomputes every group's pair sum from scratch —
/// O(sum over tasks of |W_j|^2). ScoreKeeper tracks per-task ordered
/// pair sums under Add/Remove mutations in O(|W_j|) per mutation and
/// serves the current total in O(1), which is what a long best-response
/// or local-search loop wants.
///
/// The keeper shares the Assignment's group representation instead of
/// mirroring it: Sync() attaches it to an assignment, GroupOf() reads
/// the assignment's groups directly, and only the cached pair sums and
/// scores live here. Add/Remove are present-aware — they work whether
/// the matching Assign/Unassign has already been applied or not (a
/// worker's self-affinity is zero, so the delta is identical either
/// way). Group sizes above the task capacity are not supported (the
/// crowding rule must be applied by the caller first, as ApplyMove
/// does) — scores follow the B <= |W| <= a_j branch of Equation 2.
class ScoreKeeper {
 public:
  /// Creates an unbound keeper; Rebind()/Sync() before use (the pooling
  /// hook used by BatchWorkspace).
  ScoreKeeper() = default;

  /// Creates a detached keeper for `instance` with zero sums. Attach to
  /// an assignment with Sync() before mutating.
  explicit ScoreKeeper(const Instance& instance);

  /// Creates a keeper attached to `assignment` with sums rebuilt from
  /// its current groups. Both must outlive the keeper.
  ScoreKeeper(const Instance& instance, const Assignment& assignment);

  /// Rebinds to `instance` with zero sums, detached from any assignment
  /// (reuses the backing arrays' capacity).
  void Rebind(const Instance& instance);

  /// Attaches to `assignment` and rebuilds all sums from its groups
  /// (O(total group sizes squared)).
  void Sync(const Assignment& assignment);

  /// Registers worker `w` joining task `t`'s group. Callable just before
  /// or just after the matching Assignment::Assign.
  void Add(WorkerIndex w, TaskIndex t);

  /// Registers worker `w` leaving task `t`'s group. Callable just before
  /// or just after the matching Assignment::Unassign.
  void Remove(WorkerIndex w, TaskIndex t);

  /// Current Q(W_t) (Equation 2).
  double TaskScore(TaskIndex t) const;

  /// Current Q(T) (Equation 3), O(1).
  double TotalScore() const { return total_; }

  /// Current members of task `t` in insertion order — forwarded from the
  /// attached assignment (empty when detached).
  std::span<const WorkerIndex> GroupOf(TaskIndex t) const;

  /// What TotalScore() would become if `w` joined `t` (no mutation).
  double ScoreIfAdded(WorkerIndex w, TaskIndex t) const;

  /// What TotalScore() would become if `w` left `t` (no mutation).
  double ScoreIfRemoved(WorkerIndex w, TaskIndex t) const;

  /// Marginal gain in TotalScore() if `w` joined `t`:
  /// Q(W_t ∪ {w}) - Q(W_t), Equation 5's joining direction. One affinity
  /// row scan over the group plus the cached pair sum — O(|W_t|), no
  /// allocation. Requires w not in the group and the group below capacity
  /// (over-capacity evaluation is the caller's BestSubset fallback).
  double GainIfJoined(WorkerIndex w, TaskIndex t) const;

  /// Marginal loss in TotalScore() if `w` left `t`:
  /// Q(W_t) - Q(W_t \ {w}). Same O(|W_t|) allocation-free shape.
  /// Requires membership.
  double LossIfLeft(WorkerIndex w, TaskIndex t) const;

  /// Two-way affinity of `w` to t's current members, scanned in group
  /// order and skipping `skip` (w itself always contributes zero): the
  /// pair-sum delta of one membership change. Building block for
  /// ApplyDelta trial moves.
  double AffinityTo(TaskIndex t, WorkerIndex w,
                    WorkerIndex skip = kNoWorker) const;

  /// Low-level hook for trial moves (local search): shifts t's cached
  /// pair sum by `delta` and re-derives the Equation-2 score with
  /// `new_size` members, exactly mirroring one Add/Remove update of the
  /// cached sums without consulting group membership. Callers own the
  /// consistency of the delta/size bookkeeping and must return the sums
  /// to a membership-consistent state before any other keeper use.
  void ApplyDelta(TaskIndex t, double delta, int new_size);

 private:
  double GroupScoreFromSum(TaskIndex t, double pair_sum, int size) const;

  const Instance* instance_ = nullptr;
  const Assignment* assignment_ = nullptr;
  std::vector<double> pair_sums_;  // ordered-pair sum per task
  std::vector<double> scores_;     // Equation-2 value per task
  double total_ = 0.0;
};

}  // namespace casc

#endif  // CASC_MODEL_SCORE_KEEPER_H_
