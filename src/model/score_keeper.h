#ifndef CASC_MODEL_SCORE_KEEPER_H_
#define CASC_MODEL_SCORE_KEEPER_H_

#include <vector>

#include "model/assignment.h"
#include "model/instance.h"

namespace casc {

/// Incrementally maintained Equation-3 objective.
///
/// TotalScore() recomputes every group's pair sum from scratch —
/// O(sum over tasks of |W_j|^2). ScoreKeeper tracks per-task ordered
/// pair sums under Add/Remove mutations in O(|W_j|) per mutation and
/// serves the current total in O(1), which is what a long best-response
/// or local-search loop wants.
///
/// The keeper mirrors (does not own) an Assignment: callers apply the
/// same mutations to both, or use the convenience Sync() to rebuild from
/// an assignment. Group sizes above the task capacity are not supported
/// (the crowding rule must be applied by the caller first, as ApplyMove
/// does) — scores follow the B <= |W| <= a_j branch of Equation 2.
class ScoreKeeper {
 public:
  /// Creates a keeper for `instance` with all groups empty.
  explicit ScoreKeeper(const Instance& instance);

  /// Rebuilds all sums from `assignment` (O(total group sizes squared)).
  void Sync(const Assignment& assignment);

  /// Registers worker `w` joining task `t`'s group.
  /// Requires w not already in the group and the group below capacity.
  void Add(WorkerIndex w, TaskIndex t);

  /// Registers worker `w` leaving task `t`'s group. Requires membership.
  void Remove(WorkerIndex w, TaskIndex t);

  /// Current Q(W_t) (Equation 2).
  double TaskScore(TaskIndex t) const;

  /// Current Q(T) (Equation 3), O(1).
  double TotalScore() const { return total_; }

  /// Current members of task `t`, in insertion order.
  const std::vector<WorkerIndex>& GroupOf(TaskIndex t) const;

  /// What TotalScore() would become if `w` joined `t` (no mutation).
  double ScoreIfAdded(WorkerIndex w, TaskIndex t) const;

  /// What TotalScore() would become if `w` left `t` (no mutation).
  double ScoreIfRemoved(WorkerIndex w, TaskIndex t) const;

  /// Marginal gain in TotalScore() if `w` joined `t`:
  /// Q(W_t ∪ {w}) - Q(W_t), Equation 5's joining direction. One affinity
  /// row scan over the group plus the cached pair sum — O(|W_t|), no
  /// allocation. Requires w not in the group and the group below capacity
  /// (over-capacity evaluation is the caller's BestSubset fallback).
  double GainIfJoined(WorkerIndex w, TaskIndex t) const;

  /// Marginal loss in TotalScore() if `w` left `t`:
  /// Q(W_t) - Q(W_t \ {w}). Same O(|W_t|) allocation-free shape.
  /// Requires membership.
  double LossIfLeft(WorkerIndex w, TaskIndex t) const;

 private:
  double GroupScoreFromSum(TaskIndex t, double pair_sum, int size) const;

  const Instance* instance_;
  std::vector<std::vector<WorkerIndex>> groups_;
  std::vector<double> pair_sums_;  // ordered-pair sum per task
  std::vector<double> scores_;     // Equation-2 value per task
  double total_ = 0.0;
};

}  // namespace casc

#endif  // CASC_MODEL_SCORE_KEEPER_H_
