#ifndef CASC_MODEL_SCORE_KEEPER_H_
#define CASC_MODEL_SCORE_KEEPER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "model/assignment.h"
#include "model/instance.h"

namespace casc {

class CoopTile;

/// Incrementally maintained Equation-3 objective.
///
/// TotalScore() recomputes every group's pair sum from scratch —
/// O(sum over tasks of |W_j|^2). ScoreKeeper tracks per-task ordered
/// pair sums under Add/Remove mutations in O(|W_j|) per mutation and
/// serves the current total in O(1), which is what a long best-response
/// or local-search loop wants.
///
/// The keeper shares the Assignment's group representation instead of
/// mirroring it: Sync() attaches it to an assignment, GroupOf() reads
/// the assignment's groups directly, and only the cached pair sums and
/// scores live here. Add/Remove are present-aware — they work whether
/// the matching Assign/Unassign has already been applied or not (a
/// worker's self-affinity is zero, so the delta is identical either
/// way). Group sizes above the task capacity are not supported (the
/// crowding rule must be applied by the caller first, as ApplyMove
/// does) — scores follow the B <= |W| <= a_j branch of Equation 2.
///
/// Scores are produced by the instance's ObjectiveModel: the keeper
/// maintains the cooperation-term ingredients (pair sums, sizes, tick
/// bounds) and hands them plus the live membership to
/// ObjectiveModel::ScoreGroup, with the present-aware extra/without
/// corrections so membership-dependent objectives (skill coverage) stay
/// exact under either mutation order. Cached task scores are therefore
/// always objective-correct, which is what keeps JoinBound admissible
/// for any discount variant (see ObjectiveModel's bound obligation).
///
/// Affinity sums are accumulated in the canonical 4-lane order of
/// src/kernel/affinity_kernels.h whether or not a CoopTile is attached
/// (AttachTile): the tile routes them through the runtime-dispatched
/// SIMD kernels over its exact double pair plane, the tile-less path
/// replicates the same order over CooperationMatrix::Quality — so
/// attaching a tile changes speed, never a single result bit.
class ScoreKeeper {
 public:
  /// Creates an unbound keeper; Rebind()/Sync() before use (the pooling
  /// hook used by BatchWorkspace).
  ScoreKeeper() = default;

  /// Creates a detached keeper for `instance` with zero sums. Attach to
  /// an assignment with Sync() before mutating.
  explicit ScoreKeeper(const Instance& instance);

  /// Creates a keeper attached to `assignment` with sums rebuilt from
  /// its current groups. Both must outlive the keeper.
  ScoreKeeper(const Instance& instance, const Assignment& assignment);

  /// Rebinds to `instance` with zero sums, detached from any assignment
  /// and tile (reuses the backing arrays' capacity).
  void Rebind(const Instance& instance);

  /// Routes affinity sums through `tile` (built over this instance's
  /// cooperation matrix; nullptr detaches). Call between Rebind() and
  /// Sync(); the tile must outlive the keeper's use of it. Purely a
  /// fast path — results are bit-identical with and without a tile.
  void AttachTile(const CoopTile* tile);
  const CoopTile* tile() const { return tile_; }

  /// Attaches to `assignment` and rebuilds all sums from its groups
  /// (O(total group sizes squared)).
  void Sync(const Assignment& assignment);

  /// Registers worker `w` joining task `t`'s group. Callable just before
  /// or just after the matching Assignment::Assign.
  void Add(WorkerIndex w, TaskIndex t);

  /// Registers worker `w` leaving task `t`'s group. Callable just before
  /// or just after the matching Assignment::Unassign.
  void Remove(WorkerIndex w, TaskIndex t);

  /// Current Q(W_t) (Equation 2).
  double TaskScore(TaskIndex t) const;

  /// Current ordered-pair affinity sum of task `t`'s group — the
  /// numerator of Equation 2 (pruning bounds build on it).
  double TaskPairSum(TaskIndex t) const;

  /// Current Q(T) (Equation 3), O(1).
  double TotalScore() const { return total_; }

  /// Current members of task `t` in insertion order — forwarded from the
  /// attached assignment (empty when detached).
  std::span<const WorkerIndex> GroupOf(TaskIndex t) const;

  /// What TotalScore() would become if `w` joined `t` (no mutation).
  double ScoreIfAdded(WorkerIndex w, TaskIndex t) const;

  /// What TotalScore() would become if `w` left `t` (no mutation).
  double ScoreIfRemoved(WorkerIndex w, TaskIndex t) const;

  /// Marginal gain in TotalScore() if `w` joined `t`:
  /// Q(W_t ∪ {w}) - Q(W_t), Equation 5's joining direction. One affinity
  /// row scan over the group plus the cached pair sum — O(|W_t|), no
  /// allocation. Requires w not in the group and the group below capacity
  /// (over-capacity evaluation is the caller's BestSubset fallback).
  double GainIfJoined(WorkerIndex w, TaskIndex t) const;

  /// Batched GainIfJoined over many candidate tasks of one worker:
  /// out[i] = GainIfJoined(w, tasks[i]), bit-identical to the one-task
  /// calls but gathered through one RowSumMany kernel dispatch when a
  /// tile is attached. Same preconditions per task.
  void GainsIfJoined(WorkerIndex w, std::span<const TaskIndex> tasks,
                     double* out) const;

  /// O(1) upper bound on GainIfJoined(w, t), derived from the group's
  /// bound-tick accumulator and w's per-pair row maximum (see
  /// WorkerTicks): the candidate-pruning screen of the best-response
  /// scan. Never below the exact gain; equal to 0 when joining cannot
  /// produce a scoring group. Same preconditions as GainIfJoined.
  double JoinBound(WorkerIndex w, TaskIndex t) const;

  /// Upper bound on any single pair affinity s(w, m) = q_w(m) + q_m(w)
  /// involving `w`, in 2^-32 fixed point: the tile's per-row float
  /// maximum when attached, else the trivial 2.0 (qualities live in
  /// [0, 1]). Integer ticks make the per-task accumulators exactly
  /// reversible under Add/Remove.
  int64_t WorkerTicks(WorkerIndex w) const;

  /// Marginal loss in TotalScore() if `w` left `t`:
  /// Q(W_t) - Q(W_t \ {w}). Same O(|W_t|) allocation-free shape.
  /// Requires membership.
  double LossIfLeft(WorkerIndex w, TaskIndex t) const;

  /// Two-way affinity of `w` to t's current members, scanned in group
  /// order and skipping `skip` (w itself always contributes zero): the
  /// pair-sum delta of one membership change. Building block for
  /// ApplyDelta trial moves.
  double AffinityTo(TaskIndex t, WorkerIndex w,
                    WorkerIndex skip = kNoWorker) const;

  /// Low-level hook for trial moves (local search): shifts t's cached
  /// pair sum by `delta` and re-derives the Equation-2 score with
  /// `new_size` members, exactly mirroring one Add/Remove update of the
  /// cached sums without consulting the attached assignment's (possibly
  /// stale mid-trial) membership — `members` is the caller's trial
  /// membership of `t` (local search's mirror groups), which the
  /// objective scores directly. Callers own the consistency of the
  /// delta/size/members bookkeeping and must return the sums to a
  /// membership-consistent state before any other keeper use.
  /// Bound ticks are untouched: a trial + rollback nets to zero, and an
  /// accepted local-search swap keeps each group's tick sum valid via
  /// ShiftBoundTicks.
  void ApplyDelta(TaskIndex t, double delta, int new_size,
                  std::span<const WorkerIndex> members);

  /// Shifts task `t`'s bound-tick accumulator by `delta` ticks. Local
  /// search calls this on an accepted swap (departing worker's ticks
  /// out, arriving worker's in) since the swap bypasses Add/Remove.
  void ShiftBoundTicks(TaskIndex t, int64_t delta);

 private:
  /// Objective-routed score of task `t`'s (corrected) group: the live
  /// assignment membership plus the extra/without corrections, with the
  /// cooperation term precomputed as `pair_sum` over `size` members.
  double GroupScoreFromSum(TaskIndex t, double pair_sum, int size,
                           WorkerIndex extra, WorkerIndex without) const;

  /// Same, but over an explicit membership span (trial moves whose
  /// membership diverges from the attached assignment).
  double ScoreFromSumWithMembers(TaskIndex t, double pair_sum, int size,
                                 std::span<const WorkerIndex> members) const;

  /// Canonical-lane two-way affinity of `w` to `group`, skipping
  /// elements equal to `w` or `skip` (skipped elements do not advance
  /// the lane index). `*others` receives the number of contributing
  /// members. Kernel-dispatched over the tile when one is attached and
  /// nothing needs skipping; bit-identical scalar order otherwise.
  double AffinityOverGroup(std::span<const WorkerIndex> group,
                           WorkerIndex w, WorkerIndex skip,
                           int* others) const;

  /// Canonical-lane ordered-pair sum of a distinct-id group.
  double GroupPairSum(std::span<const WorkerIndex> group) const;

  const Instance* instance_ = nullptr;
  const Assignment* assignment_ = nullptr;
  const CoopTile* tile_ = nullptr;
  std::vector<double> pair_sums_;  // ordered-pair sum per task
  std::vector<double> scores_;     // Equation-2 value per task
  /// Sum of members' WorkerTicks per task (2^-32 fixed point): an exact
  /// integer upper-bound accumulator feeding JoinBound.
  std::vector<int64_t> bound_ticks_;
  double total_ = 0.0;
};

}  // namespace casc

#endif  // CASC_MODEL_SCORE_KEEPER_H_
