#ifndef CASC_MODEL_OBJECTIVE_H_
#define CASC_MODEL_OBJECTIVE_H_

#include <initializer_list>
#include <span>
#include <vector>

#include "model/assignment.h"
#include "model/instance.h"

namespace casc {

/// Implements the CA-SC objective: Equation 2 (cooperation quality revenue
/// of one task), Equation 3 (total revenue), and Equation 4 (the marginal
/// quality increase ΔQ used by both TPG and the game-theoretic utility).
/// Group parameters are read-only spans, so callers pass Assignment /
/// GroupStore groups without copying (std::vector converts implicitly).

/// Selects the subset of `group` of size `k` with the maximum PairSum.
/// Exact by enumeration when the number of k-subsets is small (<= ~20k
/// combinations, which covers every case the assigners produce, where
/// |group| exceeds k by at most 1); otherwise greedy backward elimination
/// (repeatedly drop the worker with the smallest affinity to the rest),
/// which is the standard heuristic for the NP-hard maximum-weight
/// k-induced-subgraph problem the paper cites [2].
/// Requires 0 <= k <= |group|.
std::vector<WorkerIndex> BestSubset(const CooperationMatrix& coop,
                                    std::span<const WorkerIndex> group,
                                    int k);

/// Equation 2: the cooperation quality revenue Q(W_j) of assigning `group`
/// to task `t`. Returns 0 when |group| < B; when |group| > a_j only the
/// best a_j-subset counts (BestSubset above).
double GroupScore(const Instance& instance, TaskIndex t,
                  std::span<const WorkerIndex> group);

/// Equation 4: ΔQ(w, t) = Q(W_j) - Q(W_j \ {w}) where `group` already
/// contains `w`. This is also the game-theoretic utility U_i (Equation 5).
double MarginalOfMember(const Instance& instance, TaskIndex t,
                        std::span<const WorkerIndex> group, WorkerIndex w);

/// Gain of adding `w` (not in `group`) to task `t`:
/// Q(group + w) - Q(group).
double GainOfJoining(const Instance& instance, TaskIndex t,
                     std::span<const WorkerIndex> group, WorkerIndex w);

/// Equation 3: total cooperation quality revenue of `assignment`.
double TotalScore(const Instance& instance, const Assignment& assignment);

/// Braced-list conveniences (tests and small examples): `GroupScore(i, t,
/// {0, 1, 2})` — initializer lists do not convert to std::span.
inline double GroupScore(const Instance& instance, TaskIndex t,
                         std::initializer_list<WorkerIndex> group) {
  return GroupScore(
      instance, t, std::span<const WorkerIndex>(group.begin(), group.size()));
}
inline double MarginalOfMember(const Instance& instance, TaskIndex t,
                               std::initializer_list<WorkerIndex> group,
                               WorkerIndex w) {
  return MarginalOfMember(
      instance, t, std::span<const WorkerIndex>(group.begin(), group.size()),
      w);
}
inline double GainOfJoining(const Instance& instance, TaskIndex t,
                            std::initializer_list<WorkerIndex> group,
                            WorkerIndex w) {
  return GainOfJoining(
      instance, t, std::span<const WorkerIndex>(group.begin(), group.size()),
      w);
}
inline std::vector<WorkerIndex> BestSubset(
    const CooperationMatrix& coop, std::initializer_list<WorkerIndex> group,
    int k) {
  return BestSubset(
      coop, std::span<const WorkerIndex>(group.begin(), group.size()), k);
}

}  // namespace casc

#endif  // CASC_MODEL_OBJECTIVE_H_
