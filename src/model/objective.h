#ifndef CASC_MODEL_OBJECTIVE_H_
#define CASC_MODEL_OBJECTIVE_H_

#include <initializer_list>
#include <span>
#include <vector>

#include "model/assignment.h"
#include "model/instance.h"

namespace casc {

/// Implements the CA-SC objective: Equation 2 (cooperation quality revenue
/// of one task), Equation 3 (total revenue), and Equation 4 (the marginal
/// quality increase ΔQ used by both TPG and the game-theoretic utility).
/// Group parameters are read-only spans, so callers pass Assignment /
/// GroupStore groups without copying (std::vector converts implicitly).

/// Selects the subset of `group` of size `k` with the maximum PairSum.
///
/// Enumeration/greedy crossover: the algorithm is exact enumeration
/// while C(|group|, k) < 20000 (e.g. any |group| <= 16 at k=8, and every
/// |group| = k+1 crowding case the assigners produce, where exactly one
/// worker is dropped); at or beyond that count it switches to greedy
/// backward elimination — repeatedly drop the member with the smallest
/// total (incoming + outgoing) affinity to the rest — the standard
/// heuristic for the NP-hard maximum-weight k-induced-subgraph problem
/// the paper cites [2]. The crossover is a pure cost cap: both paths
/// return exactly k workers, and the greedy path is deterministic
/// (ties drop the earliest position).
///
/// Edge cases: k == 0 returns the empty subset, k == |group| returns the
/// whole group (no enumeration either way); k < 0 or k > |group| is a
/// caller bug and CHECK-fails.
/// Requires 0 <= k <= |group|.
std::vector<WorkerIndex> BestSubset(const CooperationMatrix& coop,
                                    std::span<const WorkerIndex> group,
                                    int k);

/// Equation 2: the cooperation quality revenue Q(W_j) of assigning `group`
/// to task `t`. Returns 0 when |group| < B; when |group| > a_j only the
/// best a_j-subset counts (BestSubset above).
double GroupScore(const Instance& instance, TaskIndex t,
                  std::span<const WorkerIndex> group);

/// Equation 4: ΔQ(w, t) = Q(W_j) - Q(W_j \ {w}) where `group` already
/// contains `w`. This is also the game-theoretic utility U_i (Equation 5).
double MarginalOfMember(const Instance& instance, TaskIndex t,
                        std::span<const WorkerIndex> group, WorkerIndex w);

/// Gain of adding `w` (not in `group`) to task `t`:
/// Q(group + w) - Q(group).
double GainOfJoining(const Instance& instance, TaskIndex t,
                     std::span<const WorkerIndex> group, WorkerIndex w);

/// Equation 3: total cooperation quality revenue of `assignment`.
double TotalScore(const Instance& instance, const Assignment& assignment);

/// Braced-list conveniences (tests and small examples): `GroupScore(i, t,
/// {0, 1, 2})` — initializer lists do not convert to std::span.
inline double GroupScore(const Instance& instance, TaskIndex t,
                         std::initializer_list<WorkerIndex> group) {
  return GroupScore(
      instance, t, std::span<const WorkerIndex>(group.begin(), group.size()));
}
inline double MarginalOfMember(const Instance& instance, TaskIndex t,
                               std::initializer_list<WorkerIndex> group,
                               WorkerIndex w) {
  return MarginalOfMember(
      instance, t, std::span<const WorkerIndex>(group.begin(), group.size()),
      w);
}
inline double GainOfJoining(const Instance& instance, TaskIndex t,
                            std::initializer_list<WorkerIndex> group,
                            WorkerIndex w) {
  return GainOfJoining(
      instance, t, std::span<const WorkerIndex>(group.begin(), group.size()),
      w);
}
inline std::vector<WorkerIndex> BestSubset(
    const CooperationMatrix& coop, std::initializer_list<WorkerIndex> group,
    int k) {
  return BestSubset(
      coop, std::span<const WorkerIndex>(group.begin(), group.size()), k);
}

}  // namespace casc

#endif  // CASC_MODEL_OBJECTIVE_H_
