#ifndef CASC_MODEL_COOPERATION_MATRIX_H_
#define CASC_MODEL_COOPERATION_MATRIX_H_

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <span>
#include <utility>
#include <vector>

namespace casc {

/// Pairwise cooperation-quality store: q_i(w_k) in [0, 1] for every
/// ordered worker pair (Definition 1). The diagonal is unused and fixed
/// at 0.
///
/// The store is ordered (q_i(w_k) and q_k(w_i) are independent cells) to
/// match the paper's definition; generators that model symmetric quality
/// simply write both cells.
///
/// Three backing modes share one read interface:
/// * **dense** (the constructors below): an owned m x m cell block.
///   Copies share the block copy-on-write — mutation detaches — so value
///   semantics are preserved while copies stay O(1).
/// * **view** (View()): a remapped window onto another matrix's backing.
///   `view.Quality(i, k) == base.Quality(ids[i], ids[k])` with no copy of
///   the cell block; the view keeps the backing alive. This is how the
///   dispatch service builds per-shard and per-batch instances without
///   materializing submatrices.
/// * **procedural** (Procedural()): qualities are a deterministic
///   symmetric hash of the worker pair — O(1) memory for any m, which is
///   what city-scale benches (10^4..10^6 workers) require; a dense block
///   at m = 50k would already be 20 GB.
class CooperationMatrix {
 public:
  /// Creates an empty matrix for 0 workers.
  CooperationMatrix() = default;

  /// Creates an m x m dense matrix with every off-diagonal cell = `initial`.
  explicit CooperationMatrix(int num_workers, double initial = 0.0);

  /// Creates a procedural matrix: Quality(i, k) for i != k is a
  /// deterministic symmetric hash of {i, k} and `seed`, uniform in [0, 1).
  /// Requires num_workers >= 0.
  static CooperationMatrix Procedural(int num_workers, uint64_t seed);

  int num_workers() const { return num_workers_; }

  /// Returns q_i(w_k). Requires valid indices; returns 0 for i == k.
  double Quality(int i, int k) const;

  /// Sets q_i(w_k) only (one direction). Requires value in [0, 1], i != k,
  /// and a dense (non-view, non-procedural) matrix. Detaches shared cells
  /// first, so views and copies taken earlier are unaffected.
  void SetQuality(int i, int k, double value);

  /// Sets both q_i(w_k) and q_k(w_i) to `value`.
  void SetSymmetric(int i, int k, double value);

  /// Sum over ordered pairs of distinct workers in `group`:
  /// sum_i sum_{k != i} q_i(w_k) — the numerator of Equation 2.
  ///
  /// `group` must contain *distinct* worker ids. A duplicated id would
  /// add its self-pair affinity here but not in the kernel path (whose
  /// symmetric tile has a zero diagonal), silently diverging the two;
  /// debug builds CHECK the precondition, release builds assume it.
  double PairSum(std::span<const int> group) const;
  double PairSum(const std::vector<int>& group) const {
    return PairSum(std::span<const int>(group));
  }
  double PairSum(std::initializer_list<int> group) const {
    return PairSum(std::span<const int>(group.begin(), group.size()));
  }

  /// Sum of q_i(w_k) for a fixed i over all k in `group` (skipping i):
  /// worker i's raw affinity to the group.
  double RowSum(int i, std::span<const int> group) const;
  double RowSum(int i, const std::vector<int>& group) const {
    return RowSum(i, std::span<const int>(group));
  }
  double RowSum(int i, std::initializer_list<int> group) const {
    return RowSum(i, std::span<const int>(group.begin(), group.size()));
  }

  /// Returns a read-only view restricted (and remapped) to `ids`:
  /// the result has num_workers() == ids.size() and
  /// Quality(i, k) == this->Quality(ids[i], ids[k]), sharing this
  /// matrix's backing. Views of views compose. Requires every id in
  /// [0, num_workers()).
  CooperationMatrix View(std::vector<int> ids) const;

  /// True for matrices produced by View() (remapped indices).
  bool is_view() const { return !remap_.empty(); }

  /// True for matrices produced by Procedural().
  bool is_procedural() const { return procedural_; }

  /// Directly addressable cell block when this matrix is dense with no
  /// remap (row stride == num_workers()), else nullptr. Fast path for
  /// CoopTile construction; views and procedural matrices go through
  /// Quality().
  const double* DenseCellsOrNull() const {
    return (!procedural_ && remap_.empty() && cells_) ? cells_->data()
                                                      : nullptr;
  }

  /// Identity of this matrix's *content*: two matrices with equal hashes
  /// expose equal Quality() tables (modulo astronomically unlikely
  /// collisions). Dense backings carry a process-unique generation id
  /// refreshed on every mutation, so recycled allocations at the same
  /// address can never alias. O(num_workers) for views (the remap is
  /// folded in), O(1) otherwise. BatchWorkspace keys its cached CoopTile
  /// on this.
  uint64_t IdentityHash() const;

 private:
  std::size_t CellIndex(int i, int k) const;
  int BackingIndex(int i) const;
  void CheckLogicalIndex(int i) const;
  void DetachIfShared();

  int num_workers_ = 0;  ///< logical size (what callers index with)
  int stride_ = 0;       ///< backing matrix size (row stride)
  bool procedural_ = false;
  uint64_t seed_ = 0;
  uint64_t cells_id_ = 0;  ///< dense-content generation (0 = procedural)
  std::shared_ptr<std::vector<double>> cells_;  ///< null when procedural
  std::vector<int> remap_;  ///< logical -> backing; empty = identity
};

/// Running history of co-performed tasks used to *estimate* cooperation
/// quality by Equation 1:
///
///   q_i(w_k) = alpha * omega + (1 - alpha) * mean(ratings of T_ik)
///
/// where T_ik is the set of tasks workers i and k both contributed to,
/// omega is the platform's base quality and alpha reconciles prior and
/// history. With no history the estimate degrades to omega (the prior),
/// matching the equation's intuition.
class CooperationHistory {
 public:
  /// Creates a history for `num_workers` workers.
  /// Requires alpha, omega in [0, 1].
  CooperationHistory(int num_workers, double alpha, double omega);

  /// Records that every pair of workers in `group` co-performed a task
  /// rated `rating` (s_j in [0, 1]).
  void RecordTask(const std::vector<int>& group, double rating);

  /// Number of tasks workers i and k co-performed (|T_ik|).
  int CoTaskCount(int i, int k) const;

  /// Equation 1 estimate for the ordered pair (i, k).
  double EstimateQuality(int i, int k) const;

  /// Materializes the full matrix of Equation 1 estimates.
  CooperationMatrix ToMatrix() const;

  int num_workers() const { return num_workers_; }
  double alpha() const { return alpha_; }
  double omega() const { return omega_; }

 private:
  struct PairStats {
    int count = 0;
    double rating_sum = 0.0;
  };

  int num_workers_;
  double alpha_;
  double omega_;
  // Sparse upper-triangular storage: key (min, max).
  std::map<std::pair<int, int>, PairStats> stats_;
};

}  // namespace casc

#endif  // CASC_MODEL_COOPERATION_MATRIX_H_
