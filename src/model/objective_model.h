#ifndef CASC_MODEL_OBJECTIVE_MODEL_H_
#define CASC_MODEL_OBJECTIVE_MODEL_H_

#include <span>
#include <string_view>

#include "model/task.h"
#include "model/worker.h"

namespace casc {

class Instance;

/// Pluggable per-task scoring model: the seam that turns the one-paper
/// CA-SC solver into a family of dispatch products (multi-skill,
/// specialty, fairness — the ROADMAP's "scenario diversity" axis).
///
/// An objective decomposes into three hooks:
///   1. a *cooperation term* — the Eq. 2 pair-sum score, shared by every
///      variant and computed by the engine (ScoreKeeper pair sums, the
///      CoopTile kernels, TPG heaps, the exact B&B all precompute it);
///   2. a *group-feasibility predicate* — capacity and the B threshold
///      stay engine-side invariants; variants add their own gate (skill
///      coverage here) which zeroes the score of an infeasible group and
///      optionally filters candidate joins in best-response scans;
///   3. an optional *regularizer* — an additive per-task adjustment
///      (e.g. a fairness penalty).
///
/// ### Bound admissibility (proof obligation)
///
/// Every pruning bound in the engine — ScoreKeeper::JoinBound's
/// fixed-point tick ceiling, the local-search swap bound, the exact
/// B&B's Lemma V.2 per-worker quality ceilings — upper-bounds the
/// *cooperation term*. They remain admissible for a variant if and only
/// if, for every group G:
///
///     ScoreGroup(G)  <=  CoopTerm(PairSum(G), |G|)
///
/// i.e. the variant only ever *discounts* the cooperation term (gating
/// to zero, non-positive regularizer). A variant that can exceed it
/// (positive regularizer, bonuses) MUST override BoundFromSum with its
/// own admissible ceiling, and must audit the exact B&B separately —
/// Lemma V.2 is derived from the cooperation term and is not routed
/// through BoundFromSum. DESIGN.md section 13 carries the full
/// contract; prune-neutrality fuzzes in pruning_test.cpp enforce it for
/// the shipped objectives.
///
/// ### Membership conventions (present-aware hooks)
///
/// ScoreKeeper mutations are legal before *or* after the matching
/// Assignment mutation, so a hook can never assume `members` already
/// reflects the change it is scoring. Instead it receives the live span
/// plus two idempotent corrections:
///   - `extra`:   worker joining the group (skip if already present,
///                then count exactly once), or kNoWorker;
///   - `without`: worker leaving the group (skip if present), or
///                kNoWorker.
/// Derived state must be computable from the corrected *set* — e.g.
/// skill coverage is a bitwise OR, which is idempotent by construction.
/// `size` and `pair_sum` are authoritative for the corrected group; use
/// them, not members.size(), for the cooperation term.
///
/// Implementations must be stateless and immutable: one shared const
/// instance is read concurrently by every solver thread and shard.
class ObjectiveModel {
 public:
  virtual ~ObjectiveModel() = default;

  /// Stable identity, used for tile-cache keying, ShardProblem wire
  /// round-trips, registry lookup, and metrics. Never contains spaces.
  virtual std::string_view Id() const = 0;

  /// The full per-task score of the (corrected) group: cooperation term
  /// gated by feasibility, plus the regularizer. `pair_sum` and `size`
  /// describe the corrected group (see membership conventions).
  /// Precondition: 0 <= size <= capacity(t); the caller handles
  /// over-capacity crowding via BestSubset before scoring.
  virtual double ScoreGroup(const Instance& instance, TaskIndex t,
                            std::span<const WorkerIndex> members,
                            WorkerIndex extra, WorkerIndex without,
                            double pair_sum, int size) const = 0;

  /// Variant-specific feasibility of the corrected group (capacity and
  /// the B threshold are engine-side; do NOT re-check them here). An
  /// infeasible group scores 0 but remains a legal assignment state —
  /// partially staffed groups are how feasible ones get built.
  virtual bool GroupFeasible(const Instance& instance, TaskIndex t,
                             std::span<const WorkerIndex> members,
                             WorkerIndex extra, WorkerIndex without) const;

  /// Additive per-task adjustment on top of the gated cooperation term.
  /// Must be <= 0 unless BoundFromSum is overridden (see the bound
  /// admissibility obligation above). Default: 0.
  virtual double Regularizer(const Instance& instance, TaskIndex t,
                             std::span<const WorkerIndex> members,
                             WorkerIndex extra, WorkerIndex without,
                             int size) const;

  /// Admissible ceiling on ScoreGroup for *any* group of `size` members
  /// at task `t` whose pair sum is <= `pair_sum_upper`. ScoreKeeper's
  /// JoinBound and the local-search swap bound feed it their fixed-point
  /// tick ceilings. Default: the raw cooperation term
  /// (size < B ? 0 : pair_sum_upper / (size - 1)), which is exact for
  /// CascObjective and admissible for any pure discount variant.
  virtual double BoundFromSum(const Instance& instance, TaskIndex t,
                              double pair_sum_upper, int size) const;

  /// May worker `w` join task `t`'s current group (before capacity
  /// crowding is considered)? Best-response scans, the online assigner,
  /// the exact B&B and the reconciler's insert pass consult this to
  /// restrict the deviation strategy space; IsNashEquilibrium uses the
  /// same filter so equilibrium is defined over feasible deviations.
  /// Must be consistent under the scan: depends only on (t, current
  /// members, w). Default: true.
  virtual bool JoinFeasible(const Instance& instance, TaskIndex t,
                            std::span<const WorkerIndex> members,
                            WorkerIndex w) const;

  /// True when JoinFeasible is constantly true, letting hot scan loops
  /// skip the virtual call entirely (the default objective pays zero
  /// dispatch on the GT hot path beyond the score hook itself).
  virtual bool AlwaysJoinFeasible() const { return true; }

 protected:
  /// The shared Eq. 2 cooperation term: 0 below the B threshold, else
  /// pair_sum / (size - 1). Bit-identical to the pre-interface scoring
  /// (same two FP operations); variants compose it with their gates.
  double CoopTerm(const Instance& instance, double pair_sum, int size) const;
};

/// The paper's CA-SC objective (Eq. 2/3/4) behind the interface: the
/// cooperation term with no extra feasibility and no regularizer. The
/// hot hooks ignore membership, so scoring reduces to exactly the
/// pre-interface arithmetic — the differential fuzz in objective_test
/// holds it to byte-identical assignments.
class CascObjective final : public ObjectiveModel {
 public:
  std::string_view Id() const override { return "casc"; }
  double ScoreGroup(const Instance& instance, TaskIndex t,
                    std::span<const WorkerIndex> members, WorkerIndex extra,
                    WorkerIndex without, double pair_sum,
                    int size) const override;
};

/// Multi-skill variant (Cheng et al., Task Assignment on Multi-Skill
/// Oriented Spatial Crowdsourcing): a task's group must collectively
/// cover Task::required_skills or it scores 0, and best-response scans
/// only admit joins that keep the group on a covering trajectory (the
/// newcomer contributes a missing skill, or coverage is already done).
/// Tasks with an empty requirement — and therefore every pre-skill
/// workload — score and assign exactly like CascObjective.
class MultiSkillObjective final : public ObjectiveModel {
 public:
  std::string_view Id() const override { return "multiskill"; }
  double ScoreGroup(const Instance& instance, TaskIndex t,
                    std::span<const WorkerIndex> members, WorkerIndex extra,
                    WorkerIndex without, double pair_sum,
                    int size) const override;
  bool GroupFeasible(const Instance& instance, TaskIndex t,
                     std::span<const WorkerIndex> members, WorkerIndex extra,
                     WorkerIndex without) const override;
  bool JoinFeasible(const Instance& instance, TaskIndex t,
                    std::span<const WorkerIndex> members,
                    WorkerIndex w) const override;
  bool AlwaysJoinFeasible() const override { return false; }

  /// Union of the group's skills after the extra/without corrections
  /// (idempotent: safe whether or not the corrections already landed).
  static SkillMask CoveredSkills(const Instance& instance,
                                 std::span<const WorkerIndex> members,
                                 WorkerIndex extra, WorkerIndex without);
};

/// The shared immutable instances behind the registry.
const CascObjective& GetCascObjective();
const MultiSkillObjective& GetMultiSkillObjective();

/// Registry lookup by Id(). Returns nullptr for unknown names (callers
/// own the error message — the service layer CHECKs with the offending
/// name, the net layer treats it as a malformed problem).
const ObjectiveModel* ObjectiveByName(std::string_view name);

/// The process-wide default objective: CASC_OBJECTIVE=<id> if set (the
/// kill-switch-table knob; aborts on an unknown id), else CascObjective.
/// Read once and cached; freshly constructed Instances start on it.
const ObjectiveModel& ProcessDefaultObjective();

}  // namespace casc

#endif  // CASC_MODEL_OBJECTIVE_MODEL_H_
