#include "model/assignment.h"

#include <algorithm>

#include "common/check.h"

namespace casc {

Assignment::Assignment(const Instance& instance)
    : task_of_(static_cast<size_t>(instance.num_workers()), kNoTask),
      groups_(static_cast<size_t>(instance.num_tasks())) {}

void Assignment::Assign(WorkerIndex w, TaskIndex t) {
  CASC_CHECK_GE(w, 0);
  CASC_CHECK_LT(w, num_workers());
  CASC_CHECK_GE(t, 0);
  CASC_CHECK_LT(t, num_tasks());
  if (task_of_[static_cast<size_t>(w)] == t) return;
  Unassign(w);
  task_of_[static_cast<size_t>(w)] = t;
  groups_[static_cast<size_t>(t)].push_back(w);
  ++num_assigned_;
}

void Assignment::Unassign(WorkerIndex w) {
  CASC_CHECK_GE(w, 0);
  CASC_CHECK_LT(w, num_workers());
  const TaskIndex t = task_of_[static_cast<size_t>(w)];
  if (t == kNoTask) return;
  auto& group = groups_[static_cast<size_t>(t)];
  const auto it = std::find(group.begin(), group.end(), w);
  CASC_CHECK(it != group.end());
  group.erase(it);
  task_of_[static_cast<size_t>(w)] = kNoTask;
  --num_assigned_;
}

TaskIndex Assignment::TaskOf(WorkerIndex w) const {
  CASC_CHECK_GE(w, 0);
  CASC_CHECK_LT(w, num_workers());
  return task_of_[static_cast<size_t>(w)];
}

const std::vector<WorkerIndex>& Assignment::GroupOf(TaskIndex t) const {
  CASC_CHECK_GE(t, 0);
  CASC_CHECK_LT(t, num_tasks());
  return groups_[static_cast<size_t>(t)];
}

int Assignment::GroupSize(TaskIndex t) const {
  return static_cast<int>(GroupOf(t).size());
}

std::vector<AssignedPair> Assignment::Pairs() const {
  std::vector<AssignedPair> out;
  out.reserve(static_cast<size_t>(num_assigned_));
  for (TaskIndex t = 0; t < num_tasks(); ++t) {
    for (const WorkerIndex w : groups_[static_cast<size_t>(t)]) {
      out.push_back(AssignedPair{w, t});
    }
  }
  return out;
}

Status Assignment::Validate(const Instance& instance) const {
  if (instance.num_workers() != num_workers() ||
      instance.num_tasks() != num_tasks()) {
    return Status::InvalidArgument("assignment shaped for another instance");
  }
  // Map consistency: every group member points back at the task, sizes add
  // up, no duplicates.
  int counted = 0;
  for (TaskIndex t = 0; t < num_tasks(); ++t) {
    const auto& group = groups_[static_cast<size_t>(t)];
    for (const WorkerIndex w : group) {
      if (w < 0 || w >= num_workers()) {
        return Status::Internal("group member out of range");
      }
      if (task_of_[static_cast<size_t>(w)] != t) {
        return Status::Internal("worker/task maps disagree");
      }
      ++counted;
    }
    std::vector<WorkerIndex> sorted = group;
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
      return Status::Internal("duplicate worker in a task group");
    }
    const int capacity =
        instance.tasks()[static_cast<size_t>(t)].capacity;
    if (static_cast<int>(group.size()) > capacity) {
      return Status::FailedPrecondition(
          "task " + std::to_string(t) + " holds " +
          std::to_string(group.size()) + " workers, capacity " +
          std::to_string(capacity));
    }
  }
  if (counted != num_assigned_) {
    return Status::Internal("assigned-count bookkeeping mismatch");
  }
  // Pair validity (Definition 3).
  for (WorkerIndex w = 0; w < num_workers(); ++w) {
    const TaskIndex t = task_of_[static_cast<size_t>(w)];
    if (t == kNoTask) continue;
    if (!instance.IsValidPair(w, t)) {
      return Status::FailedPrecondition(
          "invalid pair: worker " + std::to_string(w) + ", task " +
          std::to_string(t));
    }
  }
  return Status::Ok();
}

}  // namespace casc
