#include "model/assignment.h"

#include <algorithm>

#include "common/check.h"

namespace casc {

Assignment::Assignment(const Instance& instance) { Reset(instance); }

void Assignment::Reset(const Instance& instance) {
  task_of_.assign(static_cast<size_t>(instance.num_workers()), kNoTask);
  // One slack slot per task lets GT transiently overfill a group while
  // the crowding rule picks the best-subset loser.
  groups_.Reset(instance.task_capacities(), /*slack=*/1);
  num_assigned_ = 0;
}

void Assignment::Assign(WorkerIndex w, TaskIndex t) {
  CASC_CHECK_GE(w, 0);
  CASC_CHECK_LT(w, num_workers());
  CASC_CHECK_GE(t, 0);
  CASC_CHECK_LT(t, num_tasks());
  if (task_of_[static_cast<size_t>(w)] == t) return;
  Unassign(w);
  task_of_[static_cast<size_t>(w)] = t;
  groups_.PushBack(t, w);
  ++num_assigned_;
}

void Assignment::Unassign(WorkerIndex w) {
  CASC_CHECK_GE(w, 0);
  CASC_CHECK_LT(w, num_workers());
  const TaskIndex t = task_of_[static_cast<size_t>(w)];
  if (t == kNoTask) return;
  groups_.Erase(t, w);
  task_of_[static_cast<size_t>(w)] = kNoTask;
  --num_assigned_;
}

void Assignment::AdoptSkeleton(std::span<const TaskIndex> seed_task) {
  CASC_CHECK_EQ(static_cast<int>(seed_task.size()), num_workers());
  for (WorkerIndex w = 0; w < num_workers(); ++w) {
    const TaskIndex t = seed_task[static_cast<size_t>(w)];
    if (t != kNoTask) Assign(w, t);
  }
}

TaskIndex Assignment::TaskOf(WorkerIndex w) const {
  CASC_CHECK_GE(w, 0);
  CASC_CHECK_LT(w, num_workers());
  return task_of_[static_cast<size_t>(w)];
}

std::span<const WorkerIndex> Assignment::GroupOf(TaskIndex t) const {
  CASC_CHECK_GE(t, 0);
  CASC_CHECK_LT(t, num_tasks());
  return groups_.Group(t);
}

int Assignment::GroupSize(TaskIndex t) const {
  CASC_CHECK_GE(t, 0);
  CASC_CHECK_LT(t, num_tasks());
  return groups_.size(t);
}

void Assignment::AppendPairs(std::vector<AssignedPair>* out) const {
  CASC_CHECK(out != nullptr);
  out->reserve(out->size() + static_cast<size_t>(num_assigned_));
  ForEachPair(
      [out](WorkerIndex w, TaskIndex t) { out->push_back({w, t}); });
}

std::vector<AssignedPair> Assignment::Pairs() const {
  std::vector<AssignedPair> out;
  AppendPairs(&out);
  return out;
}

Status Assignment::Validate(const Instance& instance) const {
  if (instance.num_workers() != num_workers() ||
      instance.num_tasks() != num_tasks()) {
    return Status::InvalidArgument("assignment shaped for another instance");
  }
  // Map consistency: every group member points back at the task, sizes add
  // up, no duplicates.
  int counted = 0;
  for (TaskIndex t = 0; t < num_tasks(); ++t) {
    const std::span<const WorkerIndex> group = groups_.Group(t);
    for (const WorkerIndex w : group) {
      if (w < 0 || w >= num_workers()) {
        return Status::Internal("group member out of range");
      }
      if (task_of_[static_cast<size_t>(w)] != t) {
        return Status::Internal("worker/task maps disagree");
      }
      ++counted;
    }
    std::vector<WorkerIndex> sorted(group.begin(), group.end());
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
      return Status::Internal("duplicate worker in a task group");
    }
    const int capacity =
        instance.tasks()[static_cast<size_t>(t)].capacity;
    if (static_cast<int>(group.size()) > capacity) {
      return Status::FailedPrecondition(
          "task " + std::to_string(t) + " holds " +
          std::to_string(group.size()) + " workers, capacity " +
          std::to_string(capacity));
    }
  }
  if (counted != num_assigned_) {
    return Status::Internal("assigned-count bookkeeping mismatch");
  }
  // Pair validity (Definition 3).
  for (WorkerIndex w = 0; w < num_workers(); ++w) {
    const TaskIndex t = task_of_[static_cast<size_t>(w)];
    if (t == kNoTask) continue;
    if (!instance.IsValidPair(w, t)) {
      return Status::FailedPrecondition(
          "invalid pair: worker " + std::to_string(w) + ", task " +
          std::to_string(t));
    }
  }
  return Status::Ok();
}

}  // namespace casc
