#ifndef CASC_MODEL_ASSIGNMENT_H_
#define CASC_MODEL_ASSIGNMENT_H_

#include <span>
#include <vector>

#include "common/status.h"
#include "model/group_store.h"
#include "model/instance.h"

namespace casc {

/// A worker-and-task pair in an assignment.
struct AssignedPair {
  WorkerIndex worker;
  TaskIndex task;

  friend bool operator==(const AssignedPair& a, const AssignedPair& b) {
    return a.worker == b.worker && a.task == b.task;
  }
};

/// A (partial) assignment A: each worker serves at most one task per batch;
/// each task holds a group of workers. Mutations are O(group size).
///
/// Groups live in a slab-backed GroupStore (one fixed slab per task,
/// capacity a_j + 1 slots) so assigning and unassigning never allocate;
/// the extra slot covers GT's transient overfill while it decides whom to
/// crowd out. Group insertion order is preserved by every mutation — the
/// deterministic floating-point contract sums pair qualities in group
/// order.
///
/// The class does not enforce validity or capacity on mutation — the
/// assigners use it as scratch state. `Validate()` checks the full CA-SC
/// constraints of Definition 4 for finished assignments.
class Assignment {
 public:
  /// Creates an empty, zero-shape assignment; Reset() before use (the
  /// pooling hook used by BatchWorkspace).
  Assignment() = default;

  /// Creates an empty assignment shaped for `instance`.
  explicit Assignment(const Instance& instance);

  /// Reshapes for `instance` and empties every group, reusing the backing
  /// arrays' capacity.
  void Reset(const Instance& instance);

  /// Assigns worker `w` to task `t`, detaching it from any previous task.
  void Assign(WorkerIndex w, TaskIndex t);

  /// Makes worker `w` idle. No-op if already idle.
  void Unassign(WorkerIndex w);

  /// Adopts a prior-batch assignment skeleton: assigns every worker `w`
  /// with `seed_task[w] != kNoTask` to that task, in ascending worker
  /// order, on top of the current (normally empty) state. Group insertion
  /// order is therefore ascending worker index — deterministic regardless
  /// of the order the previous equilibrium built its groups in, which is
  /// what keeps warm-started runs bit-identical across thread counts and
  /// pipeline modes. The caller guarantees capacity feasibility (seeds
  /// are subsets of previously feasible groups).
  void AdoptSkeleton(std::span<const TaskIndex> seed_task);

  /// Task currently served by `w`, or kNoTask.
  TaskIndex TaskOf(WorkerIndex w) const;

  /// Workers currently assigned to `t`, in insertion order. The span is
  /// invalidated by Reset() and by mutations of task `t`'s group (other
  /// groups' mutations leave it intact).
  std::span<const WorkerIndex> GroupOf(TaskIndex t) const;

  /// Number of workers assigned to `t`.
  int GroupSize(TaskIndex t) const;

  /// Visits every (worker, task) pair ordered by task then by position in
  /// the group — allocation-free iteration for the hot metrics paths.
  template <typename Fn>
  void ForEachPair(Fn&& fn) const {
    for (TaskIndex t = 0; t < num_tasks(); ++t) {
      for (const WorkerIndex w : groups_.Group(t)) {
        fn(w, t);
      }
    }
  }

  /// Appends all pairs to `out` in ForEachPair order (out-param twin of
  /// Pairs() for callers that reuse a buffer).
  void AppendPairs(std::vector<AssignedPair>* out) const;

  /// All pairs, ordered by task then by position in the group.
  std::vector<AssignedPair> Pairs() const;

  /// Number of assigned workers.
  int NumAssigned() const { return num_assigned_; }

  /// Verifies the CA-SC constraints: every pair is valid (Definition 3),
  /// no task exceeds its capacity a_j, and the internal worker<->task maps
  /// agree. Returns the first violation found.
  Status Validate(const Instance& instance) const;

  int num_workers() const { return static_cast<int>(task_of_.size()); }
  int num_tasks() const { return groups_.num_groups(); }

 private:
  std::vector<TaskIndex> task_of_;  // per worker
  GroupStore groups_;               // per task
  int num_assigned_ = 0;
};

}  // namespace casc

#endif  // CASC_MODEL_ASSIGNMENT_H_
