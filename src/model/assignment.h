#ifndef CASC_MODEL_ASSIGNMENT_H_
#define CASC_MODEL_ASSIGNMENT_H_

#include <vector>

#include "common/status.h"
#include "model/instance.h"

namespace casc {

/// A worker-and-task pair in an assignment.
struct AssignedPair {
  WorkerIndex worker;
  TaskIndex task;

  friend bool operator==(const AssignedPair& a, const AssignedPair& b) {
    return a.worker == b.worker && a.task == b.task;
  }
};

/// A (partial) assignment A: each worker serves at most one task per batch;
/// each task holds a group of workers. Mutations are O(group size).
///
/// The class does not enforce validity or capacity on mutation — the
/// assigners use it as scratch state (GT temporarily overfills a task by
/// one while deciding whom to crowd out). `Validate()` checks the full
/// CA-SC constraints of Definition 4 for finished assignments.
class Assignment {
 public:
  /// Creates an empty assignment shaped for `instance`.
  explicit Assignment(const Instance& instance);

  /// Assigns worker `w` to task `t`, detaching it from any previous task.
  void Assign(WorkerIndex w, TaskIndex t);

  /// Makes worker `w` idle. No-op if already idle.
  void Unassign(WorkerIndex w);

  /// Task currently served by `w`, or kNoTask.
  TaskIndex TaskOf(WorkerIndex w) const;

  /// Workers currently assigned to `t`, in insertion order.
  const std::vector<WorkerIndex>& GroupOf(TaskIndex t) const;

  /// Number of workers assigned to `t`.
  int GroupSize(TaskIndex t) const;

  /// All pairs, ordered by task then by position in the group.
  std::vector<AssignedPair> Pairs() const;

  /// Number of assigned workers.
  int NumAssigned() const { return num_assigned_; }

  /// Verifies the CA-SC constraints: every pair is valid (Definition 3),
  /// no task exceeds its capacity a_j, and the internal worker<->task maps
  /// agree. Returns the first violation found.
  Status Validate(const Instance& instance) const;

  int num_workers() const { return static_cast<int>(task_of_.size()); }
  int num_tasks() const { return static_cast<int>(groups_.size()); }

 private:
  std::vector<TaskIndex> task_of_;               // per worker
  std::vector<std::vector<WorkerIndex>> groups_;  // per task
  int num_assigned_ = 0;
};

}  // namespace casc

#endif  // CASC_MODEL_ASSIGNMENT_H_
