#include "model/instance.h"

#include "common/check.h"
#include "geo/reachability.h"
#include "spatial/rtree.h"

namespace casc {

Instance::Instance(std::vector<Worker> workers, std::vector<Task> tasks,
                   CooperationMatrix coop, double now, int min_group_size)
    : workers_(std::move(workers)),
      tasks_(std::move(tasks)),
      coop_(std::move(coop)),
      now_(now),
      min_group_size_(min_group_size) {
  CASC_CHECK_EQ(coop_.num_workers(), static_cast<int>(workers_.size()));
  CASC_CHECK_GE(min_group_size_, 2)
      << "Equation 2 divides by min(|W_j|, a_j) - 1";
  for (const Task& task : tasks_) {
    CASC_CHECK_GE(task.capacity, min_group_size_)
        << "task capacity a_j below the minimum group size B";
  }
}

bool Instance::IsValidPair(WorkerIndex w, TaskIndex t) const {
  CASC_CHECK_GE(w, 0);
  CASC_CHECK_LT(w, num_workers());
  CASC_CHECK_GE(t, 0);
  CASC_CHECK_LT(t, num_tasks());
  const Worker& worker = workers_[static_cast<size_t>(w)];
  const Task& task = tasks_[static_cast<size_t>(t)];
  if (worker.arrival_time > now_ || task.create_time > now_) return false;
  if (!InWorkingArea(worker.location, worker.radius, task.location)) {
    return false;
  }
  return CanArriveByDeadline(worker.location, worker.speed, task.location,
                             now_, task.deadline);
}

void Instance::ComputeValidPairs() {
  if (valid_pairs_ready_) return;
  valid_tasks_.assign(workers_.size(), {});
  candidates_.assign(tasks_.size(), {});

  // Index task locations once, then answer one working-area circle query
  // per worker (Algorithm 1 lines 4-5).
  RTree task_index;
  std::vector<SpatialItem> items;
  items.reserve(tasks_.size());
  for (size_t t = 0; t < tasks_.size(); ++t) {
    items.push_back(SpatialItem{static_cast<int64_t>(t), tasks_[t].location});
  }
  task_index.Build(items);

  for (int w = 0; w < num_workers(); ++w) {
    const Worker& worker = workers_[static_cast<size_t>(w)];
    if (worker.arrival_time > now_) continue;
    const std::vector<int64_t> in_range =
        task_index.CircleQuery(worker.location, worker.radius);
    for (const int64_t raw_t : in_range) {
      const TaskIndex t = static_cast<TaskIndex>(raw_t);
      const Task& task = tasks_[static_cast<size_t>(t)];
      if (task.create_time > now_) continue;
      if (!CanArriveByDeadline(worker.location, worker.speed, task.location,
                               now_, task.deadline)) {
        continue;
      }
      valid_tasks_[static_cast<size_t>(w)].push_back(t);
      candidates_[static_cast<size_t>(t)].push_back(w);
    }
  }
  valid_pairs_ready_ = true;
}

void Instance::AdoptValidPairs(
    std::vector<std::vector<TaskIndex>> valid_tasks,
    std::vector<std::vector<WorkerIndex>> candidates) {
  CASC_CHECK(!valid_pairs_ready_)
      << "valid pairs already computed; AdoptValidPairs would discard them";
  CASC_CHECK_EQ(static_cast<int>(valid_tasks.size()), num_workers());
  CASC_CHECK_EQ(static_cast<int>(candidates.size()), num_tasks());
  valid_tasks_ = std::move(valid_tasks);
  candidates_ = std::move(candidates);
  valid_pairs_ready_ = true;
}

const std::vector<TaskIndex>& Instance::ValidTasks(WorkerIndex w) const {
  CASC_CHECK(valid_pairs_ready_) << "call ComputeValidPairs() first";
  CASC_CHECK_GE(w, 0);
  CASC_CHECK_LT(w, num_workers());
  return valid_tasks_[static_cast<size_t>(w)];
}

const std::vector<WorkerIndex>& Instance::Candidates(TaskIndex t) const {
  CASC_CHECK(valid_pairs_ready_) << "call ComputeValidPairs() first";
  CASC_CHECK_GE(t, 0);
  CASC_CHECK_LT(t, num_tasks());
  return candidates_[static_cast<size_t>(t)];
}

size_t Instance::NumValidPairs() const {
  CASC_CHECK(valid_pairs_ready_) << "call ComputeValidPairs() first";
  size_t total = 0;
  for (const auto& tasks : valid_tasks_) total += tasks.size();
  return total;
}

}  // namespace casc
