#include "model/instance.h"

#include <atomic>

#include "common/check.h"
#include "geo/reachability.h"
#include "model/batch_workspace.h"
#include "model/objective_model.h"
#include "spatial/grid_index.h"
#include "spatial/linear_scan.h"
#include "spatial/probe_index.h"
#include "spatial/rtree.h"

namespace casc {
namespace {

std::atomic<SpatialBackend> g_default_backend{SpatialBackend::kRTree};

}  // namespace

void SetDefaultSpatialBackend(SpatialBackend backend) {
  g_default_backend.store(backend, std::memory_order_relaxed);
}

SpatialBackend DefaultSpatialBackend() {
  return g_default_backend.load(std::memory_order_relaxed);
}

Instance::Instance(std::vector<Worker> workers, std::vector<Task> tasks,
                   CooperationMatrix coop, double now, int min_group_size)
    : workers_(std::move(workers)),
      tasks_(std::move(tasks)),
      coop_(std::move(coop)),
      now_(now),
      min_group_size_(min_group_size),
      objective_(&ProcessDefaultObjective()) {
  CASC_CHECK_EQ(coop_.num_workers(), static_cast<int>(workers_.size()));
  CASC_CHECK_GE(min_group_size_, 2)
      << "Equation 2 divides by min(|W_j|, a_j) - 1";
  worker_locations_.reserve(workers_.size());
  worker_speeds_.reserve(workers_.size());
  worker_radii_.reserve(workers_.size());
  worker_arrivals_.reserve(workers_.size());
  worker_skills_.reserve(workers_.size());
  for (const Worker& worker : workers_) {
    worker_locations_.push_back(worker.location);
    worker_speeds_.push_back(worker.speed);
    worker_radii_.push_back(worker.radius);
    worker_arrivals_.push_back(worker.arrival_time);
    worker_skills_.push_back(worker.skills);
  }
  task_locations_.reserve(tasks_.size());
  task_create_times_.reserve(tasks_.size());
  task_deadlines_.reserve(tasks_.size());
  task_capacities_.reserve(tasks_.size());
  task_required_skills_.reserve(tasks_.size());
  for (const Task& task : tasks_) {
    CASC_CHECK_GE(task.capacity, min_group_size_)
        << "task capacity a_j below the minimum group size B";
    task_locations_.push_back(task.location);
    task_create_times_.push_back(task.create_time);
    task_deadlines_.push_back(task.deadline);
    task_capacities_.push_back(task.capacity);
    task_required_skills_.push_back(task.required_skills);
  }
}

void Instance::set_objective(const ObjectiveModel* objective) {
  CASC_CHECK(objective != nullptr);
  objective_ = objective;
}

bool Instance::IsValidPair(WorkerIndex w, TaskIndex t) const {
  CASC_CHECK_GE(w, 0);
  CASC_CHECK_LT(w, num_workers());
  CASC_CHECK_GE(t, 0);
  CASC_CHECK_LT(t, num_tasks());
  const size_t wi = static_cast<size_t>(w);
  const size_t ti = static_cast<size_t>(t);
  if (worker_arrivals_[wi] > now_ || task_create_times_[ti] > now_) {
    return false;
  }
  if (!InWorkingArea(worker_locations_[wi], worker_radii_[wi],
                     task_locations_[ti])) {
    return false;
  }
  return CanArriveByDeadline(worker_locations_[wi], worker_speeds_[wi],
                             task_locations_[ti], now_, task_deadlines_[ti]);
}

void Instance::ComputeValidPairs() {
  ComputeValidPairs(DefaultSpatialBackend(), nullptr);
}

void Instance::ComputeValidPairs(SpatialBackend backend,
                                 BatchWorkspace* workspace) {
  if (valid_pairs_ready_) return;

  if (workspace != nullptr) {
    pairs_ = workspace->AcquireValidPairIndex();
  }
  pairs_.BeginBuild(num_workers(), num_tasks());

  // Index task locations once, then answer one working-area circle query
  // per worker (Algorithm 1 lines 4-5). The grid backend sizes itself
  // with the same documented heuristic as the streaming splice's probe
  // index (spatial/probe_index.h) instead of a second ad-hoc constant;
  // cell count never changes query results, only speed.
  RTree rtree;
  GridIndex grid(ProbeGridCells(tasks_.size()));
  LinearScan linear;
  SpatialIndex* task_index = nullptr;
  switch (backend) {
    case SpatialBackend::kRTree:
      task_index = &rtree;
      break;
    case SpatialBackend::kGridIndex:
      task_index = &grid;
      break;
    case SpatialBackend::kLinearScan:
      task_index = &linear;
      break;
  }
  CASC_CHECK(task_index != nullptr);

  std::vector<SpatialItem> local_items;
  std::vector<SpatialItem>& items =
      workspace != nullptr ? workspace->spatial_items() : local_items;
  items.clear();
  items.reserve(tasks_.size());
  for (size_t t = 0; t < tasks_.size(); ++t) {
    items.push_back(
        SpatialItem{static_cast<int64_t>(t), task_locations_[t]});
  }
  task_index->Build(items);

  for (int w = 0; w < num_workers(); ++w) {
    const size_t wi = static_cast<size_t>(w);
    if (worker_arrivals_[wi] > now_) {
      pairs_.FinishWorker();
      continue;
    }
    const std::vector<int64_t> in_range =
        task_index->CircleQuery(worker_locations_[wi], worker_radii_[wi]);
    for (const int64_t raw_t : in_range) {
      const TaskIndex t = static_cast<TaskIndex>(raw_t);
      const size_t ti = static_cast<size_t>(t);
      if (task_create_times_[ti] > now_) continue;
      if (!CanArriveByDeadline(worker_locations_[wi], worker_speeds_[wi],
                               task_locations_[ti], now_,
                               task_deadlines_[ti])) {
        continue;
      }
      pairs_.AppendValidTask(t);
    }
    pairs_.FinishWorker();
  }
  pairs_.FinishBuild();
  valid_pairs_ready_ = true;
}

void Instance::AdoptValidPairs(ValidPairIndex index) {
  CASC_CHECK(!valid_pairs_ready_)
      << "valid pairs already computed; AdoptValidPairs would discard them";
  CASC_CHECK(index.ready());
  CASC_CHECK_EQ(index.num_workers(), num_workers());
  CASC_CHECK_EQ(index.num_tasks(), num_tasks());
  pairs_ = std::move(index);
  valid_pairs_ready_ = true;
}

void Instance::AdoptValidPairs(
    std::vector<std::vector<TaskIndex>> valid_tasks,
    std::vector<std::vector<WorkerIndex>> candidates) {
  CASC_CHECK(!valid_pairs_ready_)
      << "valid pairs already computed; AdoptValidPairs would discard them";
  CASC_CHECK_EQ(static_cast<int>(valid_tasks.size()), num_workers());
  CASC_CHECK_EQ(static_cast<int>(candidates.size()), num_tasks());
  pairs_.BeginBuild(num_workers(), num_tasks());
  for (const std::vector<TaskIndex>& row : valid_tasks) {
    for (const TaskIndex t : row) pairs_.AppendValidTask(t);
    pairs_.FinishWorker();
  }
  pairs_.FinishBuild();
  // The derived candidate lists must agree with what the caller supplied
  // (the documented mutual-consistency promise).
  for (TaskIndex t = 0; t < num_tasks(); ++t) {
    const auto derived = pairs_.Candidates(t);
    const auto& given = candidates[static_cast<size_t>(t)];
    CASC_CHECK_EQ(derived.size(), given.size())
        << "AdoptValidPairs: inconsistent candidate list for task " << t;
    for (size_t i = 0; i < given.size(); ++i) {
      CASC_CHECK_EQ(derived[i], given[i])
          << "AdoptValidPairs: inconsistent candidate list for task " << t;
    }
  }
  valid_pairs_ready_ = true;
}

ValidPairIndex Instance::ReleaseValidPairs() {
  CASC_CHECK(valid_pairs_ready_) << "no valid pairs to release";
  valid_pairs_ready_ = false;
  ValidPairIndex out = std::move(pairs_);
  pairs_ = ValidPairIndex{};
  return out;
}

std::span<const TaskIndex> Instance::ValidTasks(WorkerIndex w) const {
  CASC_CHECK(valid_pairs_ready_) << "call ComputeValidPairs() first";
  return pairs_.ValidTasks(w);
}

std::span<const WorkerIndex> Instance::Candidates(TaskIndex t) const {
  CASC_CHECK(valid_pairs_ready_) << "call ComputeValidPairs() first";
  return pairs_.Candidates(t);
}

size_t Instance::NumValidPairs() const {
  CASC_CHECK(valid_pairs_ready_) << "call ComputeValidPairs() first";
  return pairs_.NumValidPairs();
}

}  // namespace casc
