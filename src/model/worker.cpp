#include "model/worker.h"

#include "common/strings.h"

namespace casc {

std::string ToString(const Worker& worker) {
  return "Worker{id=" + std::to_string(worker.id) +
         ", loc=" + ToString(worker.location) +
         ", v=" + FormatDouble(worker.speed, 4) +
         ", r=" + FormatDouble(worker.radius, 4) +
         ", phi=" + FormatDouble(worker.arrival_time, 3) + "}";
}

}  // namespace casc
