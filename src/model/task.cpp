#include "model/task.h"

#include "common/strings.h"

namespace casc {

std::string ToString(const Task& task) {
  return "Task{id=" + std::to_string(task.id) +
         ", loc=" + ToString(task.location) +
         ", created=" + FormatDouble(task.create_time, 3) +
         ", deadline=" + FormatDouble(task.deadline, 3) +
         ", capacity=" + std::to_string(task.capacity) + "}";
}

}  // namespace casc
