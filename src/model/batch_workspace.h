#ifndef CASC_MODEL_BATCH_WORKSPACE_H_
#define CASC_MODEL_BATCH_WORKSPACE_H_

#include <utility>
#include <vector>

#include "model/assignment.h"
#include "model/score_keeper.h"
#include "model/valid_pair_index.h"
#include "spatial/spatial_index.h"

namespace casc {

/// Pools the per-batch scratch state of the hot data plane — CSR
/// valid-pair indexes, slab-backed assignments, score keepers and spatial
/// scratch — so streaming loops and per-shard solvers stop paying
/// allocation churn on every batch. Acquire hands out a recycled object
/// (or a fresh one on first use); Recycle returns it once the batch is
/// committed. After the warm-up batch a steady-state stream performs
/// zero group-store / pair-index heap allocations (asserted by
/// bench_micro_data_plane via GroupStore/ValidPairIndex::TotalReallocs).
///
/// Not thread-safe: one workspace per thread (the shard executor keeps
/// one per shard slot).
class BatchWorkspace {
 public:
  BatchWorkspace() = default;
  BatchWorkspace(const BatchWorkspace&) = delete;
  BatchWorkspace& operator=(const BatchWorkspace&) = delete;

  /// A cleared pair index whose backing arrays keep their capacity.
  ValidPairIndex AcquireValidPairIndex() {
    if (pair_indexes_.empty()) return ValidPairIndex{};
    ValidPairIndex out = std::move(pair_indexes_.back());
    pair_indexes_.pop_back();
    out.Clear();
    return out;
  }

  void Recycle(ValidPairIndex index) {
    pair_indexes_.push_back(std::move(index));
  }

  /// An empty assignment shaped for `instance`, backing arrays reused.
  Assignment AcquireAssignment(const Instance& instance) {
    if (assignments_.empty()) return Assignment(instance);
    Assignment out = std::move(assignments_.back());
    assignments_.pop_back();
    out.Reset(instance);
    return out;
  }

  void Recycle(Assignment assignment) {
    assignments_.push_back(std::move(assignment));
  }

  /// A detached keeper rebound to `instance` (Sync() to attach).
  ScoreKeeper AcquireScoreKeeper(const Instance& instance) {
    if (keepers_.empty()) return ScoreKeeper(instance);
    ScoreKeeper out = std::move(keepers_.back());
    keepers_.pop_back();
    out.Rebind(instance);
    return out;
  }

  void Recycle(ScoreKeeper keeper) { keepers_.push_back(std::move(keeper)); }

  /// Scratch buffer for spatial-index bulk loads (ComputeValidPairs).
  std::vector<SpatialItem>& spatial_items() { return spatial_items_; }

 private:
  std::vector<ValidPairIndex> pair_indexes_;
  std::vector<Assignment> assignments_;
  std::vector<ScoreKeeper> keepers_;
  std::vector<SpatialItem> spatial_items_;
};

}  // namespace casc

#endif  // CASC_MODEL_BATCH_WORKSPACE_H_
