#ifndef CASC_MODEL_BATCH_WORKSPACE_H_
#define CASC_MODEL_BATCH_WORKSPACE_H_

#include <cstdlib>
#include <utility>
#include <vector>

#include "kernel/coop_tile.h"
#include "model/assignment.h"
#include "model/objective_model.h"
#include "model/score_keeper.h"
#include "model/valid_pair_index.h"
#include "spatial/spatial_index.h"

namespace casc {

/// Pools the per-batch scratch state of the hot data plane — CSR
/// valid-pair indexes, slab-backed assignments, score keepers and spatial
/// scratch — so streaming loops and per-shard solvers stop paying
/// allocation churn on every batch. Acquire hands out a recycled object
/// (or a fresh one on first use); Recycle returns it once the batch is
/// committed. After the warm-up batch a steady-state stream performs
/// zero group-store / pair-index heap allocations (asserted by
/// bench_micro_data_plane via GroupStore/ValidPairIndex::TotalReallocs).
///
/// Not thread-safe: one workspace per thread (the shard executor keeps
/// one per shard slot).
class BatchWorkspace {
 public:
  BatchWorkspace() = default;
  BatchWorkspace(const BatchWorkspace&) = delete;
  BatchWorkspace& operator=(const BatchWorkspace&) = delete;

  /// A cleared pair index whose backing arrays keep their capacity.
  ValidPairIndex AcquireValidPairIndex() {
    if (pair_indexes_.empty()) return ValidPairIndex{};
    ValidPairIndex out = std::move(pair_indexes_.back());
    pair_indexes_.pop_back();
    out.Clear();
    return out;
  }

  void Recycle(ValidPairIndex index) {
    pair_indexes_.push_back(std::move(index));
  }

  /// An empty assignment shaped for `instance`, backing arrays reused.
  Assignment AcquireAssignment(const Instance& instance) {
    if (assignments_.empty()) return Assignment(instance);
    Assignment out = std::move(assignments_.back());
    assignments_.pop_back();
    out.Reset(instance);
    return out;
  }

  void Recycle(Assignment assignment) {
    assignments_.push_back(std::move(assignment));
  }

  /// A detached keeper rebound to `instance` (Sync() to attach).
  ScoreKeeper AcquireScoreKeeper(const Instance& instance) {
    if (keepers_.empty()) return ScoreKeeper(instance);
    ScoreKeeper out = std::move(keepers_.back());
    keepers_.pop_back();
    out.Rebind(instance);
    return out;
  }

  void Recycle(ScoreKeeper keeper) { keepers_.push_back(std::move(keeper)); }

  /// Scratch buffer for spatial-index bulk loads (ComputeValidPairs).
  std::vector<SpatialItem>& spatial_items() { return spatial_items_; }

  /// The workspace's CoopTile for `instance`'s cooperation matrix, or
  /// nullptr when tiling is gated off (matrix larger than the
  /// CASC_TILE_MAX_WORKERS ceiling, default 2048 — a dense tile at
  /// city scale would dwarf the problem itself). The tile is cached by
  /// (CooperationMatrix::IdentityHash, objective identity), so a
  /// steady-state stream whose batches view the same matrix under the
  /// same objective rebuilds nothing. The objective key is a
  /// correctness guard for the pluggable scoring layer: today's tile
  /// holds only raw affinity ticks (objective-independent), but an
  /// objective is free to grow tile-resident precomputation later, and
  /// a cache hit across objectives would then serve stale data — the
  /// same staleness class the matrix identity hash already guards. The
  /// pointer stays valid until the next PrepareCoopTile call with a
  /// *different* (matrix, objective) key; keepers drawn from this
  /// workspace within one batch all see the same tile.
  const CoopTile* PrepareCoopTile(const Instance& instance) {
    const CooperationMatrix& coop = instance.coop();
    if (coop.num_workers() > TileMaxWorkers()) {
      tile_.Clear();
      tile_objective_ = nullptr;
      return nullptr;
    }
    const uint64_t identity = coop.IdentityHash();
    const ObjectiveModel* objective = &instance.objective();
    if (tile_.built() && tile_.source_identity() == identity &&
        tile_objective_ == objective) {
      return &tile_;
    }
    if (!tile_.BuildFrom(coop, TileMaxWorkers())) {
      tile_objective_ = nullptr;
      return nullptr;
    }
    tile_objective_ = objective;
    return &tile_;
  }

 private:
  /// Tile worker-count ceiling: CASC_TILE_MAX_WORKERS (0 disables
  /// tiling), default 2048. Read once per process.
  static int TileMaxWorkers() {
    static const int kMax = [] {
      if (const char* env = std::getenv("CASC_TILE_MAX_WORKERS")) {
        return std::atoi(env);
      }
      return 2048;
    }();
    return kMax;
  }

  std::vector<ValidPairIndex> pair_indexes_;
  std::vector<Assignment> assignments_;
  std::vector<ScoreKeeper> keepers_;
  std::vector<SpatialItem> spatial_items_;
  CoopTile tile_;
  /// Objective half of the tile cache key (objectives are process-wide
  /// singletons, so pointer identity is objective identity). Not owned.
  const ObjectiveModel* tile_objective_ = nullptr;
};

}  // namespace casc

#endif  // CASC_MODEL_BATCH_WORKSPACE_H_
