#include "model/objective_model.h"

#include <cstdlib>

#include "common/check.h"
#include "model/instance.h"

namespace casc {

bool ObjectiveModel::GroupFeasible(const Instance& instance, TaskIndex t,
                                   std::span<const WorkerIndex> members,
                                   WorkerIndex extra,
                                   WorkerIndex without) const {
  (void)instance;
  (void)t;
  (void)members;
  (void)extra;
  (void)without;
  return true;
}

double ObjectiveModel::Regularizer(const Instance& instance, TaskIndex t,
                                   std::span<const WorkerIndex> members,
                                   WorkerIndex extra, WorkerIndex without,
                                   int size) const {
  (void)instance;
  (void)t;
  (void)members;
  (void)extra;
  (void)without;
  (void)size;
  return 0.0;
}

double ObjectiveModel::BoundFromSum(const Instance& instance, TaskIndex t,
                                    double pair_sum_upper, int size) const {
  (void)t;
  return CoopTerm(instance, pair_sum_upper, size);
}

bool ObjectiveModel::JoinFeasible(const Instance& instance, TaskIndex t,
                                  std::span<const WorkerIndex> members,
                                  WorkerIndex w) const {
  (void)instance;
  (void)t;
  (void)members;
  (void)w;
  return true;
}

double ObjectiveModel::CoopTerm(const Instance& instance, double pair_sum,
                                int size) const {
  if (size < instance.min_group_size()) return 0.0;
  return pair_sum / (size - 1);
}

double CascObjective::ScoreGroup(const Instance& instance, TaskIndex t,
                                 std::span<const WorkerIndex> members,
                                 WorkerIndex extra, WorkerIndex without,
                                 double pair_sum, int size) const {
  (void)t;
  (void)members;
  (void)extra;
  (void)without;
  return CoopTerm(instance, pair_sum, size);
}

SkillMask MultiSkillObjective::CoveredSkills(
    const Instance& instance, std::span<const WorkerIndex> members,
    WorkerIndex extra, WorkerIndex without) {
  const std::span<const SkillMask> skills = instance.worker_skills();
  SkillMask covered = 0;
  for (const WorkerIndex member : members) {
    if (member == without || member == extra) continue;
    covered |= skills[static_cast<size_t>(member)];
  }
  if (extra != kNoWorker) covered |= skills[static_cast<size_t>(extra)];
  return covered;
}

double MultiSkillObjective::ScoreGroup(const Instance& instance, TaskIndex t,
                                       std::span<const WorkerIndex> members,
                                       WorkerIndex extra, WorkerIndex without,
                                       double pair_sum, int size) const {
  if (!GroupFeasible(instance, t, members, extra, without)) return 0.0;
  return CoopTerm(instance, pair_sum, size);
}

bool MultiSkillObjective::GroupFeasible(const Instance& instance, TaskIndex t,
                                        std::span<const WorkerIndex> members,
                                        WorkerIndex extra,
                                        WorkerIndex without) const {
  const SkillMask required =
      instance.task_required_skills()[static_cast<size_t>(t)];
  if (required == 0) return true;
  const SkillMask covered =
      CoveredSkills(instance, members, extra, without);
  return (covered & required) == required;
}

bool MultiSkillObjective::JoinFeasible(const Instance& instance, TaskIndex t,
                                       std::span<const WorkerIndex> members,
                                       WorkerIndex w) const {
  const SkillMask required =
      instance.task_required_skills()[static_cast<size_t>(t)];
  if (required == 0) return true;
  const SkillMask covered =
      CoveredSkills(instance, members, kNoWorker, kNoWorker);
  const SkillMask missing = required & ~covered;
  if (missing == 0) return true;  // covered: join freely for quality
  // Still short of coverage: only admit contributors, so capacity is
  // never spent on a worker that cannot move the group toward a
  // non-zero score.
  const SkillMask held = instance.worker_skills()[static_cast<size_t>(w)];
  return (held & missing) != 0;
}

const CascObjective& GetCascObjective() {
  static const CascObjective objective;
  return objective;
}

const MultiSkillObjective& GetMultiSkillObjective() {
  static const MultiSkillObjective objective;
  return objective;
}

const ObjectiveModel* ObjectiveByName(std::string_view name) {
  if (name == GetCascObjective().Id()) return &GetCascObjective();
  if (name == GetMultiSkillObjective().Id()) {
    return &GetMultiSkillObjective();
  }
  return nullptr;
}

const ObjectiveModel& ProcessDefaultObjective() {
  static const ObjectiveModel* const chosen = [] {
    const char* env = std::getenv("CASC_OBJECTIVE");
    if (env == nullptr || env[0] == '\0') {
      return static_cast<const ObjectiveModel*>(&GetCascObjective());
    }
    const ObjectiveModel* named = ObjectiveByName(env);
    CASC_CHECK(named != nullptr)
        << "CASC_OBJECTIVE names an unknown objective: " << env;
    return named;
  }();
  return *chosen;
}

}  // namespace casc
