#ifndef CASC_MODEL_TASK_H_
#define CASC_MODEL_TASK_H_

#include <cstdint>
#include <string>

#include "geo/point.h"
#include "model/worker.h"

namespace casc {

/// A spatial task (Definition 2).
///
/// Created at `create_time` (phi_j) at `location` (l_j), a task accepts at
/// most `capacity` (a_j) workers and must be started before `deadline`
/// (tau_j). The system-wide minimum group size B lives on the Instance.
struct Task {
  int64_t id = 0;             ///< stable external identifier
  Point location;             ///< required location l_j
  double create_time = 0.0;   ///< timestamp phi_j of creation
  double deadline = 0.0;      ///< deadline tau_j
  int capacity = 0;           ///< maximum workers a_j
  SkillMask required_skills = 0;  ///< skills the assigned group must cover
};

/// Renders a one-line description for logs.
std::string ToString(const Task& task);

}  // namespace casc

#endif  // CASC_MODEL_TASK_H_
