#ifndef CASC_MODEL_IO_H_
#define CASC_MODEL_IO_H_

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "model/assignment.h"
#include "model/instance.h"

namespace casc {

/// Plain-text serialization of CA-SC instances and assignments, so
/// workloads can be generated once, shared, and replayed across runs
/// (and so users can feed their own data to the solvers).
///
/// Format (version 1, whitespace separated, doubles in %.17g):
///   casc-instance v1
///   now <phi> min_group <B>
///   workers <m>
///   <id> <x> <y> <speed> <radius> <arrival>   x m
///   tasks <n>
///   <id> <x> <y> <created> <deadline> <capacity>   x n
///   coop
///   <m rows of m doubles>
///   end
///
/// Assignments serialize as "casc-assignment v1", a pair count, then
/// "worker task" lines.

/// Writes `instance` to `out`. The stream's failbit is checked once at
/// the end; partial writes on a bad stream yield an error.
Status SaveInstance(const Instance& instance, std::ostream* out);

/// Writes `instance` to `path`, replacing any existing file.
Status SaveInstanceToFile(const Instance& instance, const std::string& path);

/// Parses an instance; valid pairs are recomputed after loading.
Result<Instance> LoadInstance(std::istream* in);

/// Reads an instance from `path`.
Result<Instance> LoadInstanceFromFile(const std::string& path);

/// Writes `assignment` (its worker->task pairs) to `out`.
Status SaveAssignment(const Assignment& assignment, std::ostream* out);

/// Parses an assignment shaped for `instance`; pairs are applied through
/// Assignment::Assign, so the result is structurally consistent (but not
/// validated — call Validate() for the CA-SC constraints).
Result<Assignment> LoadAssignment(const Instance& instance,
                                  std::istream* in);

}  // namespace casc

#endif  // CASC_MODEL_IO_H_
