#include "model/group_store.h"

#include <atomic>

#include "common/check.h"

namespace casc {
namespace {

std::atomic<int64_t> g_reallocs{0};

template <typename T>
void NoteGrowth(const std::vector<T>& v, size_t upcoming) {
  if (upcoming > v.capacity()) {
    g_reallocs.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace

void GroupStore::Reset(std::span<const int> capacities, int slack) {
  CASC_CHECK_GE(slack, 0);
  const size_t n = capacities.size();
  NoteGrowth(offsets_, n + 1);
  offsets_.clear();
  offsets_.reserve(n + 1);
  offsets_.push_back(0);
  int32_t total = 0;
  for (const int capacity : capacities) {
    CASC_CHECK_GE(capacity, 0);
    total += static_cast<int32_t>(capacity + slack);
    offsets_.push_back(total);
  }
  NoteGrowth(sizes_, n);
  sizes_.assign(n, 0);
  NoteGrowth(slab_, static_cast<size_t>(total));
  slab_.resize(static_cast<size_t>(total));
}

void GroupStore::PushBack(int g, WorkerIndex w) {
  CASC_CHECK_GE(g, 0);
  CASC_CHECK_LT(g, num_groups());
  const int32_t begin = offsets_[static_cast<size_t>(g)];
  const int32_t slots = offsets_[static_cast<size_t>(g) + 1] - begin;
  int32_t& size = sizes_[static_cast<size_t>(g)];
  CASC_CHECK_LT(size, slots)
      << "group " << g << " slab overflow (capacity + slack exceeded)";
  slab_[static_cast<size_t>(begin + size)] = w;
  ++size;
}

void GroupStore::Erase(int g, WorkerIndex w) {
  CASC_CHECK_GE(g, 0);
  CASC_CHECK_LT(g, num_groups());
  const int32_t begin = offsets_[static_cast<size_t>(g)];
  int32_t& size = sizes_[static_cast<size_t>(g)];
  for (int32_t i = 0; i < size; ++i) {
    if (slab_[static_cast<size_t>(begin + i)] != w) continue;
    for (int32_t j = i + 1; j < size; ++j) {
      slab_[static_cast<size_t>(begin + j - 1)] =
          slab_[static_cast<size_t>(begin + j)];
    }
    --size;
    return;
  }
  CASC_CHECK(false) << "worker " << w << " not in group " << g;
}

void GroupStore::ClearGroups() {
  sizes_.assign(sizes_.size(), 0);
}

int64_t GroupStore::TotalReallocs() {
  return g_reallocs.load(std::memory_order_relaxed);
}

}  // namespace casc
