#ifndef CASC_MODEL_GROUP_STORE_H_
#define CASC_MODEL_GROUP_STORE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "model/worker.h"

namespace casc {

/// Slab-backed storage for per-task worker groups. Every group g gets a
/// fixed slab of `capacities[g] + slack` contiguous slots in one flat
/// array (capacity a_j is known per task, so slabs never move and no
/// per-group heap allocation ever happens). The extra `slack` slot lets
/// the GT crowding rule transiently overfill a group by one while
/// deciding whom to evict.
///
/// PushBack appends; Erase shifts the suffix left one slot, preserving
/// insertion order — group order is part of the determinism contract
/// (floating-point pair sums are accumulated in group order).
///
/// Reset() reshapes for a new batch without releasing the backing
/// arrays; growth events are counted process-wide (TotalReallocs) so the
/// data-plane benches can assert zero steady-state allocations.
class GroupStore {
 public:
  GroupStore() = default;

  /// Lays out one empty slab per group. `capacities[g] >= 0`.
  void Reset(std::span<const int> capacities, int slack);

  int num_groups() const { return static_cast<int>(sizes_.size()); }

  int size(int g) const { return sizes_[static_cast<size_t>(g)]; }

  /// Members of group `g` in insertion order. The span is invalidated
  /// only by Reset(), never by mutations of other groups.
  std::span<const WorkerIndex> Group(int g) const {
    const int32_t begin = offsets_[static_cast<size_t>(g)];
    return {slab_.data() + begin,
            static_cast<size_t>(sizes_[static_cast<size_t>(g)])};
  }

  /// Appends `w` to group `g`. Requires a free slot in the slab.
  void PushBack(int g, WorkerIndex w);

  /// Removes `w` from group `g`, shifting later members left (insertion
  /// order preserved). Requires membership.
  void Erase(int g, WorkerIndex w);

  /// Empties every group, keeping the slab layout.
  void ClearGroups();

  /// Process-wide count of backing-array growth events.
  static int64_t TotalReallocs();

 private:
  std::vector<int32_t> offsets_;  // num_groups + 1 slab boundaries
  std::vector<int32_t> sizes_;    // live members per group
  std::vector<WorkerIndex> slab_;
};

}  // namespace casc

#endif  // CASC_MODEL_GROUP_STORE_H_
