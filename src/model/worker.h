#ifndef CASC_MODEL_WORKER_H_
#define CASC_MODEL_WORKER_H_

#include <cstdint>
#include <string>

#include "geo/point.h"

namespace casc {

/// Index of a worker within an Instance (position in Instance::workers()).
using WorkerIndex = int;

/// Index of a task within an Instance (position in Instance::tasks()).
using TaskIndex = int;

/// Sentinel for "worker is idle / not assigned to any task".
inline constexpr TaskIndex kNoTask = -1;

/// Sentinel for "no worker" (e.g. no one was crowded out).
inline constexpr WorkerIndex kNoWorker = -1;

/// Bitmask of up to 64 skill categories. Bit k set on a worker means the
/// worker holds skill k; bit k set on a task's requirement means the
/// assigned group must collectively hold skill k. Mask 0 means
/// "unskilled" / "no requirement", which keeps every pre-skill workload
/// byte-identical under the multi-skill objective.
using SkillMask = uint64_t;

/// A cooperation-aware moving worker (Definition 1).
///
/// A worker appears in the system at `arrival_time` (phi_i) at `location`
/// (l_i), moves with `speed` (v_i, distance per time unit in the unit
/// square) and only accepts tasks within the disk of `radius` (r_i) around
/// `location`. The pairwise cooperation qualities live in the
/// CooperationMatrix, not here.
struct Worker {
  int64_t id = 0;            ///< stable external identifier
  Point location;            ///< current location l_i
  double speed = 0.0;        ///< moving speed v_i
  double radius = 0.0;       ///< working-area radius r_i
  double arrival_time = 0.0; ///< timestamp phi_i of appearance
  SkillMask skills = 0;      ///< skill categories this worker holds
};

/// Renders a one-line description for logs.
std::string ToString(const Worker& worker);

}  // namespace casc

#endif  // CASC_MODEL_WORKER_H_
