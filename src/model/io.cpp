#include "model/io.h"

#include <fstream>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <string>

namespace casc {
namespace {

/// Reads one whitespace-delimited token; empty string at EOF.
std::string NextToken(std::istream* in) {
  std::string token;
  *in >> token;
  return token;
}

Status ExpectToken(std::istream* in, const std::string& expected) {
  const std::string token = NextToken(in);
  if (token != expected) {
    return Status::InvalidArgument("expected '" + expected + "', got '" +
                                   token + "'");
  }
  return Status::Ok();
}

bool ReadDouble(std::istream* in, double* out) {
  return static_cast<bool>(*in >> *out);
}

bool ReadInt(std::istream* in, int64_t* out) {
  return static_cast<bool>(*in >> *out);
}

}  // namespace

Status SaveInstance(const Instance& instance, std::ostream* out) {
  if (out == nullptr) return Status::InvalidArgument("null stream");
  *out << std::setprecision(17);
  *out << "casc-instance v1\n";
  *out << "now " << instance.now() << " min_group "
       << instance.min_group_size() << "\n";
  *out << "workers " << instance.num_workers() << "\n";
  for (const Worker& worker : instance.workers()) {
    *out << worker.id << " " << worker.location.x << " "
         << worker.location.y << " " << worker.speed << " " << worker.radius
         << " " << worker.arrival_time << "\n";
  }
  *out << "tasks " << instance.num_tasks() << "\n";
  for (const Task& task : instance.tasks()) {
    *out << task.id << " " << task.location.x << " " << task.location.y
         << " " << task.create_time << " " << task.deadline << " "
         << task.capacity << "\n";
  }
  *out << "coop\n";
  for (int i = 0; i < instance.num_workers(); ++i) {
    for (int k = 0; k < instance.num_workers(); ++k) {
      if (k > 0) *out << " ";
      *out << instance.coop().Quality(i, k);
    }
    *out << "\n";
  }
  *out << "end\n";
  if (!out->good()) return Status::Internal("stream write failed");
  return Status::Ok();
}

Status SaveInstanceToFile(const Instance& instance, const std::string& path) {
  std::ofstream file(path);
  if (!file.is_open()) {
    return Status::NotFound("cannot open for writing: " + path);
  }
  return SaveInstance(instance, &file);
}

Result<Instance> LoadInstance(std::istream* in) {
  if (in == nullptr) return Status::InvalidArgument("null stream");
  if (Status s = ExpectToken(in, "casc-instance"); !s.ok()) return s;
  if (Status s = ExpectToken(in, "v1"); !s.ok()) return s;
  if (Status s = ExpectToken(in, "now"); !s.ok()) return s;
  double now = 0.0;
  if (!ReadDouble(in, &now)) return Status::InvalidArgument("bad now");
  if (Status s = ExpectToken(in, "min_group"); !s.ok()) return s;
  int64_t min_group = 0;
  if (!ReadInt(in, &min_group) || min_group < 2) {
    return Status::InvalidArgument("bad min_group");
  }

  if (Status s = ExpectToken(in, "workers"); !s.ok()) return s;
  int64_t m = 0;
  if (!ReadInt(in, &m) || m < 0) {
    return Status::InvalidArgument("bad worker count");
  }
  std::vector<Worker> workers;
  workers.reserve(static_cast<size_t>(m));
  for (int64_t i = 0; i < m; ++i) {
    Worker worker;
    if (!ReadInt(in, &worker.id) || !ReadDouble(in, &worker.location.x) ||
        !ReadDouble(in, &worker.location.y) ||
        !ReadDouble(in, &worker.speed) || !ReadDouble(in, &worker.radius) ||
        !ReadDouble(in, &worker.arrival_time)) {
      return Status::InvalidArgument("bad worker record " +
                                     std::to_string(i));
    }
    workers.push_back(worker);
  }

  if (Status s = ExpectToken(in, "tasks"); !s.ok()) return s;
  int64_t n = 0;
  if (!ReadInt(in, &n) || n < 0) {
    return Status::InvalidArgument("bad task count");
  }
  std::vector<Task> tasks;
  tasks.reserve(static_cast<size_t>(n));
  for (int64_t j = 0; j < n; ++j) {
    Task task;
    int64_t capacity = 0;
    if (!ReadInt(in, &task.id) || !ReadDouble(in, &task.location.x) ||
        !ReadDouble(in, &task.location.y) ||
        !ReadDouble(in, &task.create_time) ||
        !ReadDouble(in, &task.deadline) || !ReadInt(in, &capacity)) {
      return Status::InvalidArgument("bad task record " + std::to_string(j));
    }
    if (capacity < min_group) {
      return Status::InvalidArgument("task capacity below min_group");
    }
    task.capacity = static_cast<int>(capacity);
    tasks.push_back(task);
  }

  if (Status s = ExpectToken(in, "coop"); !s.ok()) return s;
  CooperationMatrix coop(static_cast<int>(m));
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t k = 0; k < m; ++k) {
      double q = 0.0;
      if (!ReadDouble(in, &q)) {
        return Status::InvalidArgument("bad coop cell");
      }
      if (i == k) continue;  // diagonal is fixed at 0
      if (q < 0.0 || q > 1.0) {
        return Status::InvalidArgument("coop quality out of [0,1]");
      }
      coop.SetQuality(static_cast<int>(i), static_cast<int>(k), q);
    }
  }
  if (Status s = ExpectToken(in, "end"); !s.ok()) return s;

  Instance instance(std::move(workers), std::move(tasks), std::move(coop),
                    now, static_cast<int>(min_group));
  instance.ComputeValidPairs();
  return instance;
}

Result<Instance> LoadInstanceFromFile(const std::string& path) {
  std::ifstream file(path);
  if (!file.is_open()) {
    return Status::NotFound("cannot open for reading: " + path);
  }
  return LoadInstance(&file);
}

Status SaveAssignment(const Assignment& assignment, std::ostream* out) {
  if (out == nullptr) return Status::InvalidArgument("null stream");
  *out << "casc-assignment v1\n";
  *out << "pairs " << assignment.NumAssigned() << "\n";
  assignment.ForEachPair([out](WorkerIndex w, TaskIndex t) {
    *out << w << " " << t << "\n";
  });
  *out << "end\n";
  if (!out->good()) return Status::Internal("stream write failed");
  return Status::Ok();
}

Result<Assignment> LoadAssignment(const Instance& instance,
                                  std::istream* in) {
  if (in == nullptr) return Status::InvalidArgument("null stream");
  if (Status s = ExpectToken(in, "casc-assignment"); !s.ok()) return s;
  if (Status s = ExpectToken(in, "v1"); !s.ok()) return s;
  if (Status s = ExpectToken(in, "pairs"); !s.ok()) return s;
  int64_t count = 0;
  if (!ReadInt(in, &count) || count < 0) {
    return Status::InvalidArgument("bad pair count");
  }
  Assignment assignment(instance);
  for (int64_t i = 0; i < count; ++i) {
    int64_t worker = 0, task = 0;
    if (!ReadInt(in, &worker) || !ReadInt(in, &task)) {
      return Status::InvalidArgument("bad pair record");
    }
    if (worker < 0 || worker >= instance.num_workers() || task < 0 ||
        task >= instance.num_tasks()) {
      return Status::OutOfRange("pair indexes out of range");
    }
    assignment.Assign(static_cast<WorkerIndex>(worker),
                      static_cast<TaskIndex>(task));
  }
  if (Status s = ExpectToken(in, "end"); !s.ok()) return s;
  return assignment;
}

}  // namespace casc
