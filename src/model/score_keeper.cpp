#include "model/score_keeper.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "kernel/affinity_kernels.h"
#include "kernel/coop_tile.h"
#include "model/objective_model.h"

namespace casc {
namespace {

/// Pair-affinity tick bound when no tile is attached: qualities live in
/// [0, 1], so any s(w, m) = q_w(m) + q_m(w) is at most 2.0 = 2^33 ticks.
constexpr int64_t kNoTileTicks = int64_t{1} << 33;

/// The canonical 4-lane accumulator of src/kernel/affinity_kernels.h in
/// scalar form: element j lands in lane j % 4, skipped elements do not
/// advance j, and the lanes combine as (l0 + l2) + (l1 + l3). Keeping
/// the tile-less paths on this exact order is what makes attaching a
/// tile (and switching SIMD backends) bit-neutral.
struct LaneAcc {
  double lanes[4] = {0.0, 0.0, 0.0, 0.0};
  int j = 0;
  void Push(double v) {
    lanes[j & 3] += v;
    ++j;
  }
  double Total() const {
    return (lanes[0] + lanes[2]) + (lanes[1] + lanes[3]);
  }
};

}  // namespace

ScoreKeeper::ScoreKeeper(const Instance& instance) { Rebind(instance); }

ScoreKeeper::ScoreKeeper(const Instance& instance,
                         const Assignment& assignment) {
  Rebind(instance);
  Sync(assignment);
}

void ScoreKeeper::Rebind(const Instance& instance) {
  instance_ = &instance;
  assignment_ = nullptr;
  tile_ = nullptr;
  pair_sums_.assign(static_cast<size_t>(instance.num_tasks()), 0.0);
  scores_.assign(static_cast<size_t>(instance.num_tasks()), 0.0);
  bound_ticks_.assign(static_cast<size_t>(instance.num_tasks()), 0);
  total_ = 0.0;
}

void ScoreKeeper::AttachTile(const CoopTile* tile) {
  if (tile == nullptr || !tile->built()) {
    tile_ = nullptr;
    return;
  }
  CASC_CHECK(instance_ != nullptr) << "Rebind() before AttachTile()";
  CASC_CHECK_EQ(tile->num_workers(), instance_->num_workers())
      << "tile built over a different worker set";
  tile_ = tile;
}

int64_t ScoreKeeper::WorkerTicks(WorkerIndex w) const {
  return tile_ != nullptr ? tile_->PrmTicks(w) : kNoTileTicks;
}

double ScoreKeeper::AffinityOverGroup(std::span<const WorkerIndex> group,
                                      WorkerIndex w, WorkerIndex skip,
                                      int* others) const {
  const int size = static_cast<int>(group.size());
  if (tile_ != nullptr) {
    bool needs_skip = false;
    for (const WorkerIndex m : group) {
      if (m == w || m == skip) {
        needs_skip = true;
        break;
      }
    }
    const double* row = tile_->PairRow(w);
    if (!needs_skip) {
      // The group is free of w/skip: a blind gather matches the
      // skip-aware lane order exactly.
      if (others != nullptr) *others = size;
      return RowSumKernel(row, group.data(), size);
    }
    LaneAcc acc;
    for (const WorkerIndex m : group) {
      if (m == w || m == skip) continue;
      acc.Push(row[m]);
    }
    if (others != nullptr) *others = acc.j;
    return acc.Total();
  }
  const CooperationMatrix& coop = instance_->coop();
  LaneAcc acc;
  for (const WorkerIndex m : group) {
    if (m == w || m == skip) continue;
    // Same double as the tile's s(w, m): the two-way add commutes
    // bit-for-bit.
    acc.Push(coop.Quality(m, w) + coop.Quality(w, m));
  }
  if (others != nullptr) *others = acc.j;
  return acc.Total();
}

double ScoreKeeper::GroupPairSum(std::span<const WorkerIndex> group) const {
  const int size = static_cast<int>(group.size());
  if (tile_ != nullptr) {
    return PairSumKernel(tile_->pair_plane(), tile_->stride(), group.data(),
                         size);
  }
  const CooperationMatrix& coop = instance_->coop();
  double total = 0.0;
  // Canonical pair order: outer index sequential, each inner suffix in
  // lane order — exactly PairSumKernel's reduction.
  for (int a = 0; a + 1 < size; ++a) {
    LaneAcc acc;
    for (int b = a + 1; b < size; ++b) {
      acc.Push(coop.Quality(group[a], group[b]) +
               coop.Quality(group[b], group[a]));
    }
    total += acc.Total();
  }
  return total;
}

void ScoreKeeper::Sync(const Assignment& assignment) {
  CASC_CHECK(instance_ != nullptr) << "Rebind() before Sync()";
  CASC_CHECK_EQ(assignment.num_tasks(), instance_->num_tasks());
  assignment_ = &assignment;
  total_ = 0.0;
  for (TaskIndex t = 0; t < instance_->num_tasks(); ++t) {
    const std::span<const WorkerIndex> group = assignment.GroupOf(t);
    pair_sums_[static_cast<size_t>(t)] = GroupPairSum(group);
    int64_t ticks = 0;
    for (const WorkerIndex member : group) ticks += WorkerTicks(member);
    bound_ticks_[static_cast<size_t>(t)] = ticks;
    scores_[static_cast<size_t>(t)] = GroupScoreFromSum(
        t, pair_sums_[static_cast<size_t>(t)],
        static_cast<int>(group.size()), kNoWorker, kNoWorker);
    total_ += scores_[static_cast<size_t>(t)];
  }
}

double ScoreKeeper::GroupScoreFromSum(TaskIndex t, double pair_sum, int size,
                                      WorkerIndex extra,
                                      WorkerIndex without) const {
  if (size < instance_->min_group_size()) return 0.0;
  const int capacity =
      instance_->tasks()[static_cast<size_t>(t)].capacity;
  CASC_CHECK_LE(size, capacity)
      << "ScoreKeeper does not evaluate over-capacity groups";
  const std::span<const WorkerIndex> members =
      assignment_ != nullptr ? assignment_->GroupOf(t)
                             : std::span<const WorkerIndex>{};
  return instance_->objective().ScoreGroup(*instance_, t, members, extra,
                                           without, pair_sum, size);
}

double ScoreKeeper::ScoreFromSumWithMembers(
    TaskIndex t, double pair_sum, int size,
    std::span<const WorkerIndex> members) const {
  if (size < instance_->min_group_size()) return 0.0;
  const int capacity =
      instance_->tasks()[static_cast<size_t>(t)].capacity;
  CASC_CHECK_LE(size, capacity)
      << "ScoreKeeper does not evaluate over-capacity groups";
  return instance_->objective().ScoreGroup(*instance_, t, members, kNoWorker,
                                           kNoWorker, pair_sum, size);
}

void ScoreKeeper::Add(WorkerIndex w, TaskIndex t) {
  CASC_CHECK(assignment_ != nullptr) << "Sync() before mutating";
  int others = 0;
  const double added =
      AffinityOverGroup(assignment_->GroupOf(t), w, kNoWorker, &others);
  pair_sums_[static_cast<size_t>(t)] += added;
  bound_ticks_[static_cast<size_t>(t)] += WorkerTicks(w);
  total_ -= scores_[static_cast<size_t>(t)];
  scores_[static_cast<size_t>(t)] = GroupScoreFromSum(
      t, pair_sums_[static_cast<size_t>(t)], others + 1, w, kNoWorker);
  total_ += scores_[static_cast<size_t>(t)];
}

void ScoreKeeper::Remove(WorkerIndex w, TaskIndex t) {
  CASC_CHECK(assignment_ != nullptr) << "Sync() before mutating";
  int others = 0;
  const double removed =
      AffinityOverGroup(assignment_->GroupOf(t), w, kNoWorker, &others);
  pair_sums_[static_cast<size_t>(t)] -= removed;
  bound_ticks_[static_cast<size_t>(t)] -= WorkerTicks(w);
  total_ -= scores_[static_cast<size_t>(t)];
  scores_[static_cast<size_t>(t)] = GroupScoreFromSum(
      t, pair_sums_[static_cast<size_t>(t)], others, kNoWorker, w);
  total_ += scores_[static_cast<size_t>(t)];
}

double ScoreKeeper::TaskScore(TaskIndex t) const {
  CASC_CHECK_GE(t, 0);
  CASC_CHECK_LT(t, instance_->num_tasks());
  return scores_[static_cast<size_t>(t)];
}

double ScoreKeeper::TaskPairSum(TaskIndex t) const {
  CASC_CHECK_GE(t, 0);
  CASC_CHECK_LT(t, instance_->num_tasks());
  return pair_sums_[static_cast<size_t>(t)];
}

std::span<const WorkerIndex> ScoreKeeper::GroupOf(TaskIndex t) const {
  CASC_CHECK_GE(t, 0);
  CASC_CHECK_LT(t, instance_->num_tasks());
  if (assignment_ == nullptr) return {};
  return assignment_->GroupOf(t);
}

double ScoreKeeper::ScoreIfAdded(WorkerIndex w, TaskIndex t) const {
  return total_ + GainIfJoined(w, t);
}

double ScoreKeeper::ScoreIfRemoved(WorkerIndex w, TaskIndex t) const {
  return total_ - LossIfLeft(w, t);
}

double ScoreKeeper::GainIfJoined(WorkerIndex w, TaskIndex t) const {
  int others = 0;
  const double added = AffinityOverGroup(GroupOf(t), w, kNoWorker, &others);
  const double new_score = GroupScoreFromSum(
      t, pair_sums_[static_cast<size_t>(t)] + added, others + 1, w,
      kNoWorker);
  return new_score - scores_[static_cast<size_t>(t)];
}

void ScoreKeeper::GainsIfJoined(WorkerIndex w,
                                std::span<const TaskIndex> tasks,
                                double* out) const {
  const int n = static_cast<int>(tasks.size());
  if (tile_ == nullptr || n == 0) {
    for (int i = 0; i < n; ++i) out[i] = GainIfJoined(w, tasks[i]);
    return;
  }
  // One gathered RowSumMany dispatch covers every candidate group that
  // does not contain w (the common case — a worker is a member of at
  // most one group); the rest fall back to the skip-aware scalar path.
  thread_local std::vector<const int*> ptrs;
  thread_local std::vector<int> lens;
  thread_local std::vector<int> slots;
  thread_local std::vector<double> sums;
  ptrs.clear();
  lens.clear();
  slots.clear();
  for (int i = 0; i < n; ++i) {
    const std::span<const WorkerIndex> group = GroupOf(tasks[i]);
    bool contains = false;
    for (const WorkerIndex m : group) {
      if (m == w) {
        contains = true;
        break;
      }
    }
    if (contains) {
      out[i] = GainIfJoined(w, tasks[i]);
      continue;
    }
    ptrs.push_back(group.data());
    lens.push_back(static_cast<int>(group.size()));
    slots.push_back(i);
  }
  sums.resize(ptrs.size());
  RowSumMany(tile_->PairRow(w), ptrs.data(), lens.data(),
             static_cast<int>(ptrs.size()), sums.data());
  for (size_t k = 0; k < slots.size(); ++k) {
    const int i = slots[k];
    const TaskIndex t = tasks[static_cast<size_t>(i)];
    out[i] = GroupScoreFromSum(t, pair_sums_[static_cast<size_t>(t)] +
                                      sums[k],
                               lens[k] + 1, w, kNoWorker) -
             scores_[static_cast<size_t>(t)];
  }
}

double ScoreKeeper::JoinBound(WorkerIndex w, TaskIndex t) const {
  const std::span<const WorkerIndex> group = GroupOf(t);
  const int g = static_cast<int>(group.size());
  // Joining an empty group, or one that stays below B, nets exactly 0
  // (both scores are 0 by Equation 2's threshold).
  if (g == 0 || g + 1 < instance_->min_group_size()) return 0.0;
  // Two valid upper bounds on w's affinity to the group — every pair is
  // at most w's row maximum AND at most the member's row maximum — taken
  // at their (exact, integer) minimum.
  const int64_t aff_ticks =
      std::min(static_cast<int64_t>(g) * WorkerTicks(w),
               bound_ticks_[static_cast<size_t>(t)]);
  // Exact: |aff_ticks| < 2^53, so the double conversion and the
  // power-of-two scale are both rounding-free.
  const double aff_ub = std::ldexp(static_cast<double>(aff_ticks), -32);
  // New size g + 1 is at most the capacity (GainIfJoined's own
  // precondition), so the default Equation-2 divisor is (g + 1) - 1 = g;
  // both the numerator add and the divide are monotone in aff_ub,
  // keeping the bound sound in floating point. The objective's
  // BoundFromSum ceilings the *joined* score; subtracting the cached
  // (objective-correct) current score keeps the gain bound admissible
  // for any variant whose scores never exceed the cooperation term.
  const double new_score = instance_->objective().BoundFromSum(
      *instance_, t, pair_sums_[static_cast<size_t>(t)] + aff_ub, g + 1);
  return new_score - scores_[static_cast<size_t>(t)];
}

double ScoreKeeper::LossIfLeft(WorkerIndex w, TaskIndex t) const {
  const std::span<const WorkerIndex> group = GroupOf(t);
  int others = 0;
  const double removed = AffinityOverGroup(group, w, kNoWorker, &others);
  CASC_CHECK(static_cast<size_t>(others) + 1 == group.size())
      << "worker " << w << " not on task " << t;
  const double new_score = GroupScoreFromSum(
      t, pair_sums_[static_cast<size_t>(t)] - removed, others, kNoWorker, w);
  return scores_[static_cast<size_t>(t)] - new_score;
}

double ScoreKeeper::AffinityTo(TaskIndex t, WorkerIndex w,
                               WorkerIndex skip) const {
  return AffinityOverGroup(GroupOf(t), w, skip, nullptr);
}

void ScoreKeeper::ApplyDelta(TaskIndex t, double delta, int new_size,
                             std::span<const WorkerIndex> members) {
  pair_sums_[static_cast<size_t>(t)] += delta;
  total_ -= scores_[static_cast<size_t>(t)];
  scores_[static_cast<size_t>(t)] = ScoreFromSumWithMembers(
      t, pair_sums_[static_cast<size_t>(t)], new_size, members);
  total_ += scores_[static_cast<size_t>(t)];
}

void ScoreKeeper::ShiftBoundTicks(TaskIndex t, int64_t delta) {
  bound_ticks_[static_cast<size_t>(t)] += delta;
  CASC_DCHECK(bound_ticks_[static_cast<size_t>(t)] >= 0);
}

}  // namespace casc
