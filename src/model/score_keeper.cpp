#include "model/score_keeper.h"

#include "common/check.h"

namespace casc {

ScoreKeeper::ScoreKeeper(const Instance& instance) { Rebind(instance); }

ScoreKeeper::ScoreKeeper(const Instance& instance,
                         const Assignment& assignment) {
  Rebind(instance);
  Sync(assignment);
}

void ScoreKeeper::Rebind(const Instance& instance) {
  instance_ = &instance;
  assignment_ = nullptr;
  pair_sums_.assign(static_cast<size_t>(instance.num_tasks()), 0.0);
  scores_.assign(static_cast<size_t>(instance.num_tasks()), 0.0);
  total_ = 0.0;
}

void ScoreKeeper::Sync(const Assignment& assignment) {
  CASC_CHECK(instance_ != nullptr) << "Rebind() before Sync()";
  CASC_CHECK_EQ(assignment.num_tasks(), instance_->num_tasks());
  assignment_ = &assignment;
  total_ = 0.0;
  for (TaskIndex t = 0; t < instance_->num_tasks(); ++t) {
    const std::span<const WorkerIndex> group = assignment.GroupOf(t);
    pair_sums_[static_cast<size_t>(t)] = instance_->coop().PairSum(group);
    scores_[static_cast<size_t>(t)] = GroupScoreFromSum(
        t, pair_sums_[static_cast<size_t>(t)],
        static_cast<int>(group.size()));
    total_ += scores_[static_cast<size_t>(t)];
  }
}

double ScoreKeeper::GroupScoreFromSum(TaskIndex t, double pair_sum,
                                      int size) const {
  if (size < instance_->min_group_size()) return 0.0;
  const int capacity =
      instance_->tasks()[static_cast<size_t>(t)].capacity;
  CASC_CHECK_LE(size, capacity)
      << "ScoreKeeper does not evaluate over-capacity groups";
  return pair_sum / (size - 1);
}

void ScoreKeeper::Add(WorkerIndex w, TaskIndex t) {
  CASC_CHECK(assignment_ != nullptr) << "Sync() before mutating";
  const std::span<const WorkerIndex> group = assignment_->GroupOf(t);
  double added = 0.0;
  int others = 0;
  for (const WorkerIndex member : group) {
    if (member == w) continue;
    added += instance_->coop().Quality(member, w) +
             instance_->coop().Quality(w, member);
    ++others;
  }
  pair_sums_[static_cast<size_t>(t)] += added;
  total_ -= scores_[static_cast<size_t>(t)];
  scores_[static_cast<size_t>(t)] =
      GroupScoreFromSum(t, pair_sums_[static_cast<size_t>(t)], others + 1);
  total_ += scores_[static_cast<size_t>(t)];
}

void ScoreKeeper::Remove(WorkerIndex w, TaskIndex t) {
  CASC_CHECK(assignment_ != nullptr) << "Sync() before mutating";
  const std::span<const WorkerIndex> group = assignment_->GroupOf(t);
  double removed = 0.0;
  int others = 0;
  for (const WorkerIndex member : group) {
    if (member == w) continue;
    removed += instance_->coop().Quality(member, w) +
               instance_->coop().Quality(w, member);
    ++others;
  }
  pair_sums_[static_cast<size_t>(t)] -= removed;
  total_ -= scores_[static_cast<size_t>(t)];
  scores_[static_cast<size_t>(t)] =
      GroupScoreFromSum(t, pair_sums_[static_cast<size_t>(t)], others);
  total_ += scores_[static_cast<size_t>(t)];
}

double ScoreKeeper::TaskScore(TaskIndex t) const {
  CASC_CHECK_GE(t, 0);
  CASC_CHECK_LT(t, instance_->num_tasks());
  return scores_[static_cast<size_t>(t)];
}

std::span<const WorkerIndex> ScoreKeeper::GroupOf(TaskIndex t) const {
  CASC_CHECK_GE(t, 0);
  CASC_CHECK_LT(t, instance_->num_tasks());
  if (assignment_ == nullptr) return {};
  return assignment_->GroupOf(t);
}

double ScoreKeeper::ScoreIfAdded(WorkerIndex w, TaskIndex t) const {
  return total_ + GainIfJoined(w, t);
}

double ScoreKeeper::ScoreIfRemoved(WorkerIndex w, TaskIndex t) const {
  return total_ - LossIfLeft(w, t);
}

double ScoreKeeper::GainIfJoined(WorkerIndex w, TaskIndex t) const {
  const std::span<const WorkerIndex> group = GroupOf(t);
  double added = 0.0;
  int others = 0;
  for (const WorkerIndex member : group) {
    if (member == w) continue;
    added += instance_->coop().Quality(member, w) +
             instance_->coop().Quality(w, member);
    ++others;
  }
  const double new_score = GroupScoreFromSum(
      t, pair_sums_[static_cast<size_t>(t)] + added, others + 1);
  return new_score - scores_[static_cast<size_t>(t)];
}

double ScoreKeeper::LossIfLeft(WorkerIndex w, TaskIndex t) const {
  const std::span<const WorkerIndex> group = GroupOf(t);
  double removed = 0.0;
  int others = 0;
  bool present = false;
  for (const WorkerIndex member : group) {
    if (member == w) {
      present = true;
      continue;
    }
    removed += instance_->coop().Quality(member, w) +
               instance_->coop().Quality(w, member);
    ++others;
  }
  CASC_CHECK(present) << "worker " << w << " not on task " << t;
  const double new_score = GroupScoreFromSum(
      t, pair_sums_[static_cast<size_t>(t)] - removed, others);
  return scores_[static_cast<size_t>(t)] - new_score;
}

double ScoreKeeper::AffinityTo(TaskIndex t, WorkerIndex w,
                               WorkerIndex skip) const {
  const std::span<const WorkerIndex> group = GroupOf(t);
  double total = 0.0;
  for (const WorkerIndex member : group) {
    if (member == skip || member == w) continue;
    total += instance_->coop().Quality(member, w) +
             instance_->coop().Quality(w, member);
  }
  return total;
}

void ScoreKeeper::ApplyDelta(TaskIndex t, double delta, int new_size) {
  pair_sums_[static_cast<size_t>(t)] += delta;
  total_ -= scores_[static_cast<size_t>(t)];
  scores_[static_cast<size_t>(t)] =
      GroupScoreFromSum(t, pair_sums_[static_cast<size_t>(t)], new_size);
  total_ += scores_[static_cast<size_t>(t)];
}

}  // namespace casc
