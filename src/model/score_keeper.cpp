#include "model/score_keeper.h"

#include <algorithm>

#include "common/check.h"

namespace casc {

ScoreKeeper::ScoreKeeper(const Instance& instance)
    : instance_(&instance),
      groups_(static_cast<size_t>(instance.num_tasks())),
      pair_sums_(static_cast<size_t>(instance.num_tasks()), 0.0),
      scores_(static_cast<size_t>(instance.num_tasks()), 0.0) {}

void ScoreKeeper::Sync(const Assignment& assignment) {
  CASC_CHECK_EQ(assignment.num_tasks(), instance_->num_tasks());
  total_ = 0.0;
  for (TaskIndex t = 0; t < instance_->num_tasks(); ++t) {
    groups_[static_cast<size_t>(t)] = assignment.GroupOf(t);
    pair_sums_[static_cast<size_t>(t)] =
        instance_->coop().PairSum(groups_[static_cast<size_t>(t)]);
    scores_[static_cast<size_t>(t)] = GroupScoreFromSum(
        t, pair_sums_[static_cast<size_t>(t)],
        static_cast<int>(groups_[static_cast<size_t>(t)].size()));
    total_ += scores_[static_cast<size_t>(t)];
  }
}

double ScoreKeeper::GroupScoreFromSum(TaskIndex t, double pair_sum,
                                      int size) const {
  if (size < instance_->min_group_size()) return 0.0;
  const int capacity =
      instance_->tasks()[static_cast<size_t>(t)].capacity;
  CASC_CHECK_LE(size, capacity)
      << "ScoreKeeper does not evaluate over-capacity groups";
  return pair_sum / (size - 1);
}

void ScoreKeeper::Add(WorkerIndex w, TaskIndex t) {
  auto& group = groups_[static_cast<size_t>(t)];
  CASC_CHECK(std::find(group.begin(), group.end(), w) == group.end())
      << "worker " << w << " already on task " << t;
  double added = 0.0;
  for (const WorkerIndex member : group) {
    added += instance_->coop().Quality(member, w) +
             instance_->coop().Quality(w, member);
  }
  group.push_back(w);
  pair_sums_[static_cast<size_t>(t)] += added;
  total_ -= scores_[static_cast<size_t>(t)];
  scores_[static_cast<size_t>(t)] =
      GroupScoreFromSum(t, pair_sums_[static_cast<size_t>(t)],
                        static_cast<int>(group.size()));
  total_ += scores_[static_cast<size_t>(t)];
}

void ScoreKeeper::Remove(WorkerIndex w, TaskIndex t) {
  auto& group = groups_[static_cast<size_t>(t)];
  const auto it = std::find(group.begin(), group.end(), w);
  CASC_CHECK(it != group.end())
      << "worker " << w << " not on task " << t;
  group.erase(it);
  double removed = 0.0;
  for (const WorkerIndex member : group) {
    removed += instance_->coop().Quality(member, w) +
               instance_->coop().Quality(w, member);
  }
  pair_sums_[static_cast<size_t>(t)] -= removed;
  total_ -= scores_[static_cast<size_t>(t)];
  scores_[static_cast<size_t>(t)] =
      GroupScoreFromSum(t, pair_sums_[static_cast<size_t>(t)],
                        static_cast<int>(group.size()));
  total_ += scores_[static_cast<size_t>(t)];
}

double ScoreKeeper::TaskScore(TaskIndex t) const {
  CASC_CHECK_GE(t, 0);
  CASC_CHECK_LT(t, instance_->num_tasks());
  return scores_[static_cast<size_t>(t)];
}

const std::vector<WorkerIndex>& ScoreKeeper::GroupOf(TaskIndex t) const {
  CASC_CHECK_GE(t, 0);
  CASC_CHECK_LT(t, instance_->num_tasks());
  return groups_[static_cast<size_t>(t)];
}

double ScoreKeeper::ScoreIfAdded(WorkerIndex w, TaskIndex t) const {
  return total_ + GainIfJoined(w, t);
}

double ScoreKeeper::ScoreIfRemoved(WorkerIndex w, TaskIndex t) const {
  return total_ - LossIfLeft(w, t);
}

double ScoreKeeper::GainIfJoined(WorkerIndex w, TaskIndex t) const {
  const auto& group = groups_[static_cast<size_t>(t)];
  double added = 0.0;
  for (const WorkerIndex member : group) {
    added += instance_->coop().Quality(member, w) +
             instance_->coop().Quality(w, member);
  }
  const double new_score =
      GroupScoreFromSum(t, pair_sums_[static_cast<size_t>(t)] + added,
                        static_cast<int>(group.size()) + 1);
  return new_score - scores_[static_cast<size_t>(t)];
}

double ScoreKeeper::LossIfLeft(WorkerIndex w, TaskIndex t) const {
  const auto& group = groups_[static_cast<size_t>(t)];
  CASC_CHECK(std::find(group.begin(), group.end(), w) != group.end());
  double removed = 0.0;
  for (const WorkerIndex member : group) {
    if (member == w) continue;
    removed += instance_->coop().Quality(member, w) +
               instance_->coop().Quality(w, member);
  }
  const double new_score =
      GroupScoreFromSum(t, pair_sums_[static_cast<size_t>(t)] - removed,
                        static_cast<int>(group.size()) - 1);
  return scores_[static_cast<size_t>(t)] - new_score;
}

}  // namespace casc
