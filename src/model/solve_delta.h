#ifndef CASC_MODEL_SOLVE_DELTA_H_
#define CASC_MODEL_SOLVE_DELTA_H_

#include <cstdint>
#include <vector>

#include "model/worker.h"

namespace casc {

/// The cross-batch warm-start handoff from the streaming data plane to a
/// solver: the previous batch's equilibrium restricted to still-present
/// players, remapped to this batch's instance indices, plus the dirty
/// frontier the solver must re-evaluate.
///
/// Soundness: the CA-SC game is a potential game (Theorem V.1), so
/// best-response dynamics converge from *any* initial strategy profile —
/// seeding from the previous Nash equilibrium is always safe, and the
/// solver's final full verification pass still certifies the result, so
/// an under-approximated dirty set can cost rounds but never correctness.
/// The dirty set marks workers whose strategic situation may have changed
/// between batches: fresh arrivals, returners from busy, workers whose
/// previous choice disappeared, and every candidate of a task that is new
/// to the instance or whose retained group lost a member.
struct SolveDelta {
  /// Per instance worker: the task (this batch's index) the worker served
  /// at the previous equilibrium, or kNoTask when it was idle or is fresh.
  /// Seeds are capacity-feasible by construction: the workers seeded to
  /// one task are a subset of that task's previous (feasible) group.
  std::vector<TaskIndex> seed_task;

  /// Per instance worker: 1 when the solver must re-run its best response
  /// even before the verification pass.
  std::vector<uint8_t> dirty;

  /// Per instance task: 1 when the task is new to the solved instance,
  /// its retained group lost a member, or it is a standing task whose
  /// bounded-staleness retry came due (it accumulated fresh candidate
  /// arrivals and its StreamingPlaneConfig::warm_retry_epoch slot
  /// fired). Best-response dynamics alone cannot staff a task from idle
  /// workers (a solo join scores 0 below the minimum group size — the
  /// GtInit::kEmpty trap), so the warm solver re-runs the TPG greedy
  /// stages restricted to exactly these tasks before the dirty rounds.
  /// Seeds never point at a dirty task: its surviving members are
  /// released back to the greedy re-formation.
  std::vector<uint8_t> dirty_task;

  /// Number of set entries in `dirty_task`.
  int64_t num_dirty_tasks = 0;

  /// Number of kNoTask-free entries in `seed_task`.
  int64_t num_seeded = 0;

  /// Number of set entries in `dirty`.
  int64_t num_dirty = 0;

  /// Workers carried over from the previously solved instance — present
  /// then and now, and not away on a busy spell in between. Carried
  /// workers include the idle ones: a worker that idled at the previous
  /// equilibrium and is not dirty was certified idle-best against a local
  /// context that has not changed (options only disappear between batches;
  /// anything gained or regrouped marks its candidates dirty), so skipping
  /// it is exactly as sound as skipping a clean group member. A delta with
  /// zero carried workers is never published (the driver hands the solver
  /// a null pointer instead), which is what makes zero-carry-over batches
  /// take the cold path bit-identically.
  int64_t num_carried = 0;
};

}  // namespace casc

#endif  // CASC_MODEL_SOLVE_DELTA_H_
