#include "model/cooperation_matrix.h"

#include <algorithm>
#include <atomic>

#include "common/check.h"

namespace casc {
namespace {

/// splitmix64 finalizer: a full-avalanche 64-bit mix.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Deterministic symmetric quality in [0, 1) for the procedural mode.
double HashQuality(uint64_t seed, int i, int k) {
  const uint64_t lo = static_cast<uint64_t>(std::min(i, k));
  const uint64_t hi = static_cast<uint64_t>(std::max(i, k));
  const uint64_t h = Mix64(seed ^ Mix64((lo << 32) | hi));
  // Top 53 bits -> uniform double in [0, 1).
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Process-unique generation id for dense cell content. Every dense
/// allocation *and* every mutation draws a fresh one, so (id, remap)
/// pins a matrix's content even if the allocator recycles addresses.
uint64_t NextCellsId() {
  static std::atomic<uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

CooperationMatrix::CooperationMatrix(int num_workers, double initial)
    : num_workers_(num_workers), stride_(num_workers) {
  cells_id_ = NextCellsId();
  CASC_CHECK_GE(num_workers, 0);
  CASC_CHECK_GE(initial, 0.0);
  CASC_CHECK_LE(initial, 1.0);
  cells_ = std::make_shared<std::vector<double>>(
      static_cast<size_t>(num_workers) * num_workers, initial);
  for (int i = 0; i < num_workers; ++i) {
    (*cells_)[static_cast<size_t>(i) * stride_ + i] = 0.0;
  }
}

CooperationMatrix CooperationMatrix::Procedural(int num_workers,
                                                uint64_t seed) {
  CASC_CHECK_GE(num_workers, 0);
  CooperationMatrix matrix;
  matrix.num_workers_ = num_workers;
  matrix.stride_ = num_workers;
  matrix.procedural_ = true;
  matrix.seed_ = seed;
  return matrix;
}

void CooperationMatrix::CheckLogicalIndex(int i) const {
  CASC_CHECK_GE(i, 0);
  CASC_CHECK_LT(i, num_workers_);
}

int CooperationMatrix::BackingIndex(int i) const {
  return remap_.empty() ? i : remap_[static_cast<size_t>(i)];
}

std::size_t CooperationMatrix::CellIndex(int i, int k) const {
  return static_cast<size_t>(i) * stride_ + k;
}

double CooperationMatrix::Quality(int i, int k) const {
  CheckLogicalIndex(i);
  CheckLogicalIndex(k);
  if (i == k) return 0.0;
  const int bi = BackingIndex(i);
  const int bk = BackingIndex(k);
  // Remapped views may alias two logical workers onto one backing worker;
  // treat that as the (unused) diagonal for consistency.
  if (bi == bk) return 0.0;
  if (procedural_) return HashQuality(seed_, bi, bk);
  return (*cells_)[CellIndex(bi, bk)];
}

void CooperationMatrix::DetachIfShared() {
  if (cells_ && cells_.use_count() > 1) {
    cells_ = std::make_shared<std::vector<double>>(*cells_);
  }
}

void CooperationMatrix::SetQuality(int i, int k, double value) {
  CASC_CHECK(!is_view() && !is_procedural())
      << "CooperationMatrix views and procedural matrices are read-only";
  CheckLogicalIndex(i);
  CheckLogicalIndex(k);
  CASC_CHECK_NE(i, k);
  CASC_CHECK_GE(value, 0.0);
  CASC_CHECK_LE(value, 1.0);
  DetachIfShared();
  cells_id_ = NextCellsId();
  (*cells_)[CellIndex(i, k)] = value;
}

void CooperationMatrix::SetSymmetric(int i, int k, double value) {
  SetQuality(i, k, value);
  SetQuality(k, i, value);
}

double CooperationMatrix::PairSum(std::span<const int> group) const {
#ifndef NDEBUG
  // Precondition (see the header): ids are distinct. O(g^2) like the sum
  // itself, but only in debug builds.
  for (size_t a = 0; a < group.size(); ++a) {
    for (size_t b = a + 1; b < group.size(); ++b) {
      CASC_CHECK_NE(group[a], group[b])
          << "PairSum group contains a duplicated worker id";
    }
  }
#endif
  double total = 0.0;
  for (size_t a = 0; a < group.size(); ++a) {
    for (size_t b = a + 1; b < group.size(); ++b) {
      total += Quality(group[a], group[b]) + Quality(group[b], group[a]);
    }
  }
  return total;
}

double CooperationMatrix::RowSum(int i,
                                std::span<const int> group) const {
  double total = 0.0;
  for (const int k : group) {
    if (k != i) total += Quality(i, k);
  }
  return total;
}

uint64_t CooperationMatrix::IdentityHash() const {
  uint64_t h = Mix64(0xCA5Cu ^ static_cast<uint64_t>(num_workers_));
  h = Mix64(h ^ cells_id_);
  h = Mix64(h ^ seed_);
  if (procedural_) h = Mix64(h ^ 0xA11CEull);
  for (const int id : remap_) {
    h = Mix64(h ^ static_cast<uint64_t>(id));
  }
  return h;
}

CooperationMatrix CooperationMatrix::View(std::vector<int> ids) const {
  CooperationMatrix view;
  view.num_workers_ = static_cast<int>(ids.size());
  view.stride_ = stride_;
  view.procedural_ = procedural_;
  view.seed_ = seed_;
  view.cells_id_ = cells_id_;
  view.cells_ = cells_;
  for (int& id : ids) {
    CASC_CHECK_GE(id, 0);
    CASC_CHECK_LT(id, num_workers_);
    // Compose with this matrix's own remap so views of views stay flat.
    id = BackingIndex(id);
  }
  view.remap_ = std::move(ids);
  if (view.remap_.empty()) {
    // An empty view has no indexable workers; keep the identity remap
    // convention (empty vector) harmless by zeroing the logical size.
    view.num_workers_ = 0;
  }
  return view;
}

CooperationHistory::CooperationHistory(int num_workers, double alpha,
                                       double omega)
    : num_workers_(num_workers), alpha_(alpha), omega_(omega) {
  CASC_CHECK_GE(num_workers, 0);
  CASC_CHECK_GE(alpha, 0.0);
  CASC_CHECK_LE(alpha, 1.0);
  CASC_CHECK_GE(omega, 0.0);
  CASC_CHECK_LE(omega, 1.0);
}

void CooperationHistory::RecordTask(const std::vector<int>& group,
                                    double rating) {
  CASC_CHECK_GE(rating, 0.0);
  CASC_CHECK_LE(rating, 1.0);
  for (size_t a = 0; a < group.size(); ++a) {
    for (size_t b = a + 1; b < group.size(); ++b) {
      const int lo = std::min(group[a], group[b]);
      const int hi = std::max(group[a], group[b]);
      CASC_CHECK_GE(lo, 0);
      CASC_CHECK_LT(hi, num_workers_);
      CASC_CHECK_NE(lo, hi);
      auto& cell = stats_[{lo, hi}];
      cell.count += 1;
      cell.rating_sum += rating;
    }
  }
}

int CooperationHistory::CoTaskCount(int i, int k) const {
  const auto it = stats_.find({std::min(i, k), std::max(i, k)});
  return it == stats_.end() ? 0 : it->second.count;
}

double CooperationHistory::EstimateQuality(int i, int k) const {
  if (i == k) return 0.0;
  const auto it = stats_.find({std::min(i, k), std::max(i, k)});
  if (it == stats_.end() || it->second.count == 0) {
    // No shared history: only the prior term contributes meaningfully.
    // Equation 1 with an empty T_ik is undefined (0/0); the natural limit
    // used by the platform is the base quality omega itself.
    return omega_;
  }
  const double historical = it->second.rating_sum / it->second.count;
  return alpha_ * omega_ + (1.0 - alpha_) * historical;
}

CooperationMatrix CooperationHistory::ToMatrix() const {
  CooperationMatrix matrix(num_workers_, omega_);
  for (const auto& [key, cell] : stats_) {
    if (cell.count == 0) continue;
    const double historical = cell.rating_sum / cell.count;
    const double q = alpha_ * omega_ + (1.0 - alpha_) * historical;
    matrix.SetSymmetric(key.first, key.second, q);
  }
  return matrix;
}

}  // namespace casc
