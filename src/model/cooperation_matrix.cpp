#include "model/cooperation_matrix.h"

#include <algorithm>

#include "common/check.h"

namespace casc {

CooperationMatrix::CooperationMatrix(int num_workers, double initial)
    : num_workers_(num_workers) {
  CASC_CHECK_GE(num_workers, 0);
  CASC_CHECK_GE(initial, 0.0);
  CASC_CHECK_LE(initial, 1.0);
  cells_.assign(static_cast<size_t>(num_workers) * num_workers, initial);
  for (int i = 0; i < num_workers; ++i) {
    cells_[CellIndex(i, i)] = 0.0;
  }
}

std::size_t CooperationMatrix::CellIndex(int i, int k) const {
  CASC_CHECK_GE(i, 0);
  CASC_CHECK_LT(i, num_workers_);
  CASC_CHECK_GE(k, 0);
  CASC_CHECK_LT(k, num_workers_);
  return static_cast<size_t>(i) * num_workers_ + k;
}

double CooperationMatrix::Quality(int i, int k) const {
  if (i == k) return 0.0;
  return cells_[CellIndex(i, k)];
}

void CooperationMatrix::SetQuality(int i, int k, double value) {
  CASC_CHECK_NE(i, k);
  CASC_CHECK_GE(value, 0.0);
  CASC_CHECK_LE(value, 1.0);
  cells_[CellIndex(i, k)] = value;
}

void CooperationMatrix::SetSymmetric(int i, int k, double value) {
  SetQuality(i, k, value);
  SetQuality(k, i, value);
}

double CooperationMatrix::PairSum(const std::vector<int>& group) const {
  double total = 0.0;
  for (size_t a = 0; a < group.size(); ++a) {
    for (size_t b = a + 1; b < group.size(); ++b) {
      total += Quality(group[a], group[b]) + Quality(group[b], group[a]);
    }
  }
  return total;
}

double CooperationMatrix::RowSum(int i, const std::vector<int>& group) const {
  double total = 0.0;
  for (const int k : group) {
    if (k != i) total += Quality(i, k);
  }
  return total;
}

CooperationHistory::CooperationHistory(int num_workers, double alpha,
                                       double omega)
    : num_workers_(num_workers), alpha_(alpha), omega_(omega) {
  CASC_CHECK_GE(num_workers, 0);
  CASC_CHECK_GE(alpha, 0.0);
  CASC_CHECK_LE(alpha, 1.0);
  CASC_CHECK_GE(omega, 0.0);
  CASC_CHECK_LE(omega, 1.0);
}

void CooperationHistory::RecordTask(const std::vector<int>& group,
                                    double rating) {
  CASC_CHECK_GE(rating, 0.0);
  CASC_CHECK_LE(rating, 1.0);
  for (size_t a = 0; a < group.size(); ++a) {
    for (size_t b = a + 1; b < group.size(); ++b) {
      const int lo = std::min(group[a], group[b]);
      const int hi = std::max(group[a], group[b]);
      CASC_CHECK_GE(lo, 0);
      CASC_CHECK_LT(hi, num_workers_);
      CASC_CHECK_NE(lo, hi);
      auto& cell = stats_[{lo, hi}];
      cell.count += 1;
      cell.rating_sum += rating;
    }
  }
}

int CooperationHistory::CoTaskCount(int i, int k) const {
  const auto it = stats_.find({std::min(i, k), std::max(i, k)});
  return it == stats_.end() ? 0 : it->second.count;
}

double CooperationHistory::EstimateQuality(int i, int k) const {
  if (i == k) return 0.0;
  const auto it = stats_.find({std::min(i, k), std::max(i, k)});
  if (it == stats_.end() || it->second.count == 0) {
    // No shared history: only the prior term contributes meaningfully.
    // Equation 1 with an empty T_ik is undefined (0/0); the natural limit
    // used by the platform is the base quality omega itself.
    return omega_;
  }
  const double historical = it->second.rating_sum / it->second.count;
  return alpha_ * omega_ + (1.0 - alpha_) * historical;
}

CooperationMatrix CooperationHistory::ToMatrix() const {
  CooperationMatrix matrix(num_workers_, omega_);
  for (const auto& [key, cell] : stats_) {
    if (cell.count == 0) continue;
    const double historical = cell.rating_sum / cell.count;
    const double q = alpha_ * omega_ + (1.0 - alpha_) * historical;
    matrix.SetSymmetric(key.first, key.second, q);
  }
  return matrix;
}

}  // namespace casc
