#include "model/valid_pair_index.h"

#include <atomic>

#include "common/check.h"

namespace casc {
namespace {

std::atomic<int64_t> g_reallocs{0};

/// Counts a growth event when the upcoming size would exceed capacity.
template <typename T>
void NoteGrowth(const std::vector<T>& v, size_t upcoming) {
  if (upcoming > v.capacity()) {
    g_reallocs.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace

void ValidPairIndex::BeginBuild(int num_workers, int num_tasks) {
  CASC_CHECK_GE(num_workers, 0);
  CASC_CHECK_GE(num_tasks, 0);
  ready_ = false;
  building_ = true;
  expected_workers_ = num_workers;
  built_workers_ = 0;
  NoteGrowth(task_offsets_, static_cast<size_t>(num_workers) + 1);
  task_offsets_.clear();
  task_offsets_.reserve(static_cast<size_t>(num_workers) + 1);
  task_offsets_.push_back(0);
  task_flat_.clear();
  NoteGrowth(worker_offsets_, static_cast<size_t>(num_tasks) + 1);
  worker_offsets_.assign(static_cast<size_t>(num_tasks) + 1, 0);
  worker_flat_.clear();
}

void ValidPairIndex::AppendValidTask(TaskIndex t) {
  CASC_CHECK(building_);
  CASC_CHECK_GE(t, 0);
  CASC_CHECK_LT(t, static_cast<int>(worker_offsets_.size()) - 1);
  CASC_CHECK(task_flat_.size() ==
                 static_cast<size_t>(task_offsets_.back()) ||
             task_flat_.back() < t)
      << "valid tasks must be appended in ascending order per worker";
  NoteGrowth(task_flat_, task_flat_.size() + 1);
  task_flat_.push_back(t);
}

void ValidPairIndex::FinishWorker() {
  CASC_CHECK(building_);
  CASC_CHECK_LT(built_workers_, expected_workers_);
  task_offsets_.push_back(static_cast<int32_t>(task_flat_.size()));
  ++built_workers_;
}

void ValidPairIndex::DeriveTaskMajor() {
  // Counting pass: worker_offsets_[t + 1] accumulates |candidates of t|,
  // then a prefix sum turns counts into CSR offsets.
  for (const TaskIndex t : task_flat_) {
    ++worker_offsets_[static_cast<size_t>(t) + 1];
  }
  for (size_t t = 1; t < worker_offsets_.size(); ++t) {
    worker_offsets_[t] += worker_offsets_[t - 1];
  }
  NoteGrowth(worker_flat_, task_flat_.size());
  worker_flat_.resize(task_flat_.size());
  NoteGrowth(cursor_, worker_offsets_.size());
  cursor_.assign(worker_offsets_.begin(), worker_offsets_.end());
  for (int w = 0; w < expected_workers_; ++w) {
    const int32_t begin = task_offsets_[static_cast<size_t>(w)];
    const int32_t end = task_offsets_[static_cast<size_t>(w) + 1];
    for (int32_t i = begin; i < end; ++i) {
      const TaskIndex t = task_flat_[static_cast<size_t>(i)];
      worker_flat_[static_cast<size_t>(cursor_[static_cast<size_t>(t)]++)] =
          static_cast<WorkerIndex>(w);
    }
  }
}

void ValidPairIndex::FinishBuild() {
  CASC_CHECK(building_);
  CASC_CHECK_EQ(built_workers_, expected_workers_)
      << "every worker's row must be finished before FinishBuild()";
  DeriveTaskMajor();
  building_ = false;
  ready_ = true;
}

int32_t* ValidPairIndex::StartParallelBuild(int num_workers, int num_tasks) {
  CASC_CHECK_GE(num_workers, 0);
  CASC_CHECK_GE(num_tasks, 0);
  ready_ = false;
  building_ = true;
  expected_workers_ = num_workers;
  built_workers_ = num_workers;  // the caller fills every row itself
  NoteGrowth(task_offsets_, static_cast<size_t>(num_workers) + 1);
  task_offsets_.resize(static_cast<size_t>(num_workers) + 1);
  task_flat_.clear();
  NoteGrowth(worker_offsets_, static_cast<size_t>(num_tasks) + 1);
  worker_offsets_.assign(static_cast<size_t>(num_tasks) + 1, 0);
  worker_flat_.clear();
  return task_offsets_.data();
}

TaskIndex* ValidPairIndex::AllocateParallelFlat() {
  CASC_CHECK(building_);
  const size_t total = static_cast<size_t>(task_offsets_.back());
  NoteGrowth(task_flat_, total);
  task_flat_.resize(total);
  return task_flat_.data();
}

void ValidPairIndex::FinishParallelBuild() {
  CASC_CHECK(building_);
  CASC_CHECK_EQ(task_flat_.size(), static_cast<size_t>(task_offsets_.back()))
      << "AllocateParallelFlat() must run after the offsets are final";
  for (size_t w = 1; w < task_offsets_.size(); ++w) {
    CASC_CHECK_GE(task_offsets_[w], task_offsets_[w - 1])
        << "parallel-built offsets must be monotone";
  }
  CASC_CHECK_EQ(task_offsets_.front(), 0);
  DeriveTaskMajor();
  building_ = false;
  ready_ = true;
}

std::span<const TaskIndex> ValidPairIndex::ValidTasks(WorkerIndex w) const {
  CASC_CHECK(ready_);
  CASC_CHECK_GE(w, 0);
  CASC_CHECK_LT(w, num_workers());
  const int32_t begin = task_offsets_[static_cast<size_t>(w)];
  const int32_t end = task_offsets_[static_cast<size_t>(w) + 1];
  return {task_flat_.data() + begin, static_cast<size_t>(end - begin)};
}

std::span<const WorkerIndex> ValidPairIndex::Candidates(TaskIndex t) const {
  CASC_CHECK(ready_);
  CASC_CHECK_GE(t, 0);
  CASC_CHECK_LT(t, num_tasks());
  const int32_t begin = worker_offsets_[static_cast<size_t>(t)];
  const int32_t end = worker_offsets_[static_cast<size_t>(t) + 1];
  return {worker_flat_.data() + begin, static_cast<size_t>(end - begin)};
}

bool ValidPairIndex::SameAs(const ValidPairIndex& other) const {
  return ready_ && other.ready_ && task_offsets_ == other.task_offsets_ &&
         task_flat_ == other.task_flat_ &&
         worker_offsets_ == other.worker_offsets_ &&
         worker_flat_ == other.worker_flat_;
}

void ValidPairIndex::Clear() {
  ready_ = false;
  building_ = false;
  expected_workers_ = 0;
  built_workers_ = 0;
  task_offsets_.clear();
  task_flat_.clear();
  worker_offsets_.clear();
  worker_flat_.clear();
}

int64_t ValidPairIndex::TotalReallocs() {
  return g_reallocs.load(std::memory_order_relaxed);
}

}  // namespace casc
