#include "bench_util/experiment.h"

#include <cctype>
#include <cstdio>
#include <fstream>

#include "algo/exact_assigner.h"
#include "algo/gt_assigner.h"
#include "algo/local_search.h"
#include "algo/maxflow_assigner.h"
#include "algo/online_assigner.h"
#include "algo/random_assigner.h"
#include "algo/tpg_assigner.h"
#include "algo/upper_bound.h"
#include "bench_util/table_printer.h"
#include "common/check.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "model/objective.h"

namespace casc {

std::string ApproachName(ApproachId id) {
  switch (id) {
    case ApproachId::kTpg:
      return "TPG";
    case ApproachId::kGt:
      return "GT";
    case ApproachId::kGtLub:
      return "GT+LUB";
    case ApproachId::kGtTsi:
      return "GT+TSI";
    case ApproachId::kGtAll:
      return "GT+ALL";
    case ApproachId::kMflow:
      return "MFLOW";
    case ApproachId::kRand:
      return "RAND";
  }
  return "?";
}

std::unique_ptr<Assigner> MakeApproach(ApproachId id,
                                       const ExperimentSettings& settings) {
  switch (id) {
    case ApproachId::kTpg:
      return std::make_unique<TpgAssigner>();
    case ApproachId::kGt: {
      GtOptions options;
      return std::make_unique<GtAssigner>(options);
    }
    case ApproachId::kGtLub: {
      GtOptions options;
      options.use_lub = true;
      return std::make_unique<GtAssigner>(options);
    }
    case ApproachId::kGtTsi: {
      GtOptions options;
      options.use_tsi = true;
      options.epsilon = settings.epsilon;
      return std::make_unique<GtAssigner>(options);
    }
    case ApproachId::kGtAll: {
      GtOptions options;
      options.use_tsi = true;
      options.use_lub = true;
      options.epsilon = settings.epsilon;
      return std::make_unique<GtAssigner>(options);
    }
    case ApproachId::kMflow:
      return std::make_unique<MaxFlowAssigner>();
    case ApproachId::kRand:
      return std::make_unique<RandomAssigner>(settings.seed ^ 0x9E3779B9u);
  }
  return nullptr;
}

std::vector<ApproachId> AllApproaches() {
  return {ApproachId::kTpg,   ApproachId::kGt,    ApproachId::kGtLub,
          ApproachId::kGtTsi, ApproachId::kGtAll, ApproachId::kMflow,
          ApproachId::kRand};
}

Result<std::unique_ptr<Assigner>> MakeApproachFromName(
    const std::string& name, const ExperimentSettings& settings) {
  std::string upper;
  upper.reserve(name.size());
  for (const char c : name) {
    upper.push_back(static_cast<char>(std::toupper(
        static_cast<unsigned char>(c))));
  }
  constexpr const char* kSwapSuffix = "+SWAP";
  if (upper.size() > 5 &&
      upper.compare(upper.size() - 5, 5, kSwapSuffix) == 0) {
    Result<std::unique_ptr<Assigner>> base = MakeApproachFromName(
        upper.substr(0, upper.size() - 5), settings);
    if (!base.ok()) return base.status();
    return std::unique_ptr<Assigner>(
        std::make_unique<LocalSearchAssigner>(std::move(*base)));
  }
  for (const ApproachId id : AllApproaches()) {
    if (upper == ApproachName(id)) return MakeApproach(id, settings);
  }
  if (upper == "ONLINE") {
    return std::unique_ptr<Assigner>(std::make_unique<OnlineAssigner>());
  }
  if (upper == "EXACT") {
    return std::unique_ptr<Assigner>(std::make_unique<ExactAssigner>());
  }
  return Status::InvalidArgument(
      "unknown approach '" + name +
      "' (expected TPG, GT, GT+TSI, GT+LUB, GT+ALL, MFLOW, RAND, ONLINE, "
      "EXACT, or any of these with +SWAP)");
}

std::unique_ptr<InstanceSource> MakeSource(
    DataKind kind, const ExperimentSettings& settings) {
  if (kind == DataKind::kSynthetic) {
    return std::make_unique<SyntheticSource>(settings.MakeSyntheticConfig(),
                                             settings.seed);
  }
  // The Meetup-like dataset itself is pinned to one seed so every figure
  // point samples from the same synthesized social network; the per-round
  // sampling varies with settings.seed.
  constexpr uint64_t kDatasetSeed = 20190412;  // ICDE'19 camera-ready-ish
  return std::make_unique<MeetupLikeSource>(
      settings.MakeMeetupConfig(), settings.num_workers, settings.num_tasks,
      settings.MakeWorkerConfig(), settings.MakeTaskConfig(),
      settings.min_group_size, kDatasetSeed, settings.seed);
}

std::vector<ApproachResult> RunComparison(
    const ExperimentSettings& settings, DataKind kind,
    const std::vector<ApproachId>& approaches) {
  std::unique_ptr<InstanceSource> source = MakeSource(kind, settings);

  std::vector<ApproachResult> results(approaches.size());
  std::vector<std::unique_ptr<Assigner>> assigners;
  for (size_t a = 0; a < approaches.size(); ++a) {
    assigners.push_back(MakeApproach(approaches[a], settings));
    results[a].name = assigners.back()->Name();
  }

  for (int round = 0; round < settings.rounds; ++round) {
    const double now = static_cast<double>(round);
    const Instance instance = source->MakeBatch(round, now);
    const double upper = ComputeUpperBound(instance);

    for (size_t a = 0; a < approaches.size(); ++a) {
      BatchMetrics metrics;
      metrics.round = round;
      metrics.now = now;
      metrics.num_workers = instance.num_workers();
      metrics.num_tasks = instance.num_tasks();
      metrics.valid_pairs = static_cast<int64_t>(instance.NumValidPairs());
      metrics.upper_bound = upper;

      Stopwatch watch;
      const Assignment assignment = assigners[a]->Run(instance);
      metrics.seconds = watch.ElapsedSeconds();

      CASC_CHECK(assignment.Validate(instance).ok())
          << results[a].name << " produced an invalid assignment";
      metrics.score = TotalScore(instance, assignment);
      metrics.assigned_workers = assignment.NumAssigned();
      for (TaskIndex t = 0; t < instance.num_tasks(); ++t) {
        if (assignment.GroupSize(t) >= instance.min_group_size()) {
          ++metrics.completed_tasks;
        }
      }
      metrics.gt_rounds = assigners[a]->stats().rounds;
      results[a].summary.batches.push_back(metrics);
    }
  }

  for (auto& result : results) {
    result.total_score = result.summary.TotalScore();
    result.avg_seconds = result.summary.AvgBatchSeconds();
    result.total_upper = result.summary.TotalUpperBound();
  }
  return results;
}

namespace {

/// Writes one rendered table as CSV; failures are reported, not fatal.
void WriteCsv(const TablePrinter& table, const std::string& path) {
  std::ofstream file(path);
  if (!file.is_open()) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  file << table.RenderCsv();
}

}  // namespace

std::vector<std::vector<ApproachResult>> RunFigure(
    const std::string& figure_title, const std::string& x_axis_name,
    const std::vector<SweepPoint>& points, DataKind kind,
    const std::vector<ApproachId>& approaches,
    const std::string& csv_path) {
  std::printf("=== %s ===\n", figure_title.c_str());
  if (!points.empty()) {
    const std::string data_name =
        kind == DataKind::kMeetupLike
            ? "MEETUP-HK"
            : (points.front().settings.distribution ==
                       LocationDistribution::kSkewed
                   ? "SKEW"
                   : "UNIF");
    std::printf("data: %s | settings: %s (sweeping %s)\n\n",
                data_name.c_str(),
                points.front().settings.ToString().c_str(),
                x_axis_name.c_str());
  }

  std::vector<std::vector<ApproachResult>> all_results;
  all_results.reserve(points.size());
  for (const SweepPoint& point : points) {
    all_results.push_back(RunComparison(point.settings, kind, approaches));
  }

  std::vector<std::string> headers = {x_axis_name};
  for (const SweepPoint& point : points) headers.push_back(point.label);

  TablePrinter score_table(headers);
  for (size_t a = 0; a < approaches.size(); ++a) {
    std::vector<std::string> row = {all_results.front()[a].name};
    for (const auto& point_results : all_results) {
      row.push_back(FormatDouble(point_results[a].total_score, 1));
    }
    score_table.AddRow(std::move(row));
  }
  {
    std::vector<std::string> row = {"UPPER"};
    for (const auto& point_results : all_results) {
      row.push_back(FormatDouble(point_results.front().total_upper, 1));
    }
    score_table.AddRow(std::move(row));
  }
  std::printf("(a) Total Cooperation Score\n%s\n",
              score_table.Render().c_str());

  TablePrinter time_table(headers);
  for (size_t a = 0; a < approaches.size(); ++a) {
    std::vector<std::string> row = {all_results.front()[a].name};
    for (const auto& point_results : all_results) {
      row.push_back(FormatDouble(point_results[a].avg_seconds * 1e3, 2));
    }
    time_table.AddRow(std::move(row));
  }
  std::printf("(b) Batch Running Time (ms)\n%s\n",
              time_table.Render().c_str());

  if (!csv_path.empty()) {
    WriteCsv(score_table, csv_path + ".score.csv");
    WriteCsv(time_table, csv_path + ".time_ms.csv");
    std::printf("csv: %s.{score,time_ms}.csv\n\n", csv_path.c_str());
  }
  return all_results;
}

}  // namespace casc
