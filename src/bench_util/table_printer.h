#ifndef CASC_BENCH_UTIL_TABLE_PRINTER_H_
#define CASC_BENCH_UTIL_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace casc {

/// Renders column-aligned plain-text tables — the console analogue of the
/// paper's figures: one row per approach, one column per x-axis value.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row; short rows are padded with empty cells, long rows
  /// extend the column count.
  void AddRow(std::vector<std::string> cells);

  /// Renders the table with a separator under the header.
  std::string Render() const;

  /// Renders as comma-separated values (for machine consumption).
  std::string RenderCsv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace casc

#endif  // CASC_BENCH_UTIL_TABLE_PRINTER_H_
