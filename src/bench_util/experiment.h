#ifndef CASC_BENCH_UTIL_EXPERIMENT_H_
#define CASC_BENCH_UTIL_EXPERIMENT_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "algo/assigner.h"
#include "bench_util/settings.h"
#include "gen/workload.h"
#include "sim/metrics.h"

namespace casc {

/// The approaches compared throughout Section VI.
enum class ApproachId {
  kTpg,
  kGt,
  kGtLub,
  kGtTsi,
  kGtAll,
  kMflow,
  kRand,
};

/// Display name matching the paper ("TPG", "GT+ALL", ...).
std::string ApproachName(ApproachId id);

/// Instantiates one approach under the given settings (epsilon feeds the
/// TSI variants; the RAND seed derives from settings.seed).
std::unique_ptr<Assigner> MakeApproach(ApproachId id,
                                       const ExperimentSettings& settings);

/// All seven approaches in the paper's reporting order.
std::vector<ApproachId> AllApproaches();

/// Instantiates an approach from its user-facing name. Accepts the seven
/// paper approaches ("TPG", "GT", "GT+TSI", "GT+LUB", "GT+ALL", "MFLOW",
/// "RAND", case-insensitive) plus the extensions "ONLINE", "EXACT", and
/// any of the above with a "+SWAP" suffix (local-search post-pass).
Result<std::unique_ptr<Assigner>> MakeApproachFromName(
    const std::string& name, const ExperimentSettings& settings);

/// Which dataset a figure uses.
enum class DataKind { kMeetupLike, kSynthetic };

/// Builds the instance source for the given dataset kind and settings.
std::unique_ptr<InstanceSource> MakeSource(DataKind kind,
                                           const ExperimentSettings& settings);

/// Result of running one approach over R rounds.
struct ApproachResult {
  std::string name;
  double total_score = 0.0;    ///< Figures (a): total cooperation score
  double avg_seconds = 0.0;    ///< Figures (b): per-batch running time
  double total_upper = 0.0;    ///< UPPER summed over the same batches
  RunSummary summary;          ///< full per-batch detail
};

/// Runs every approach on the *same* R sampled batches (each batch is
/// generated once and handed to all approaches, so comparisons and the
/// UPPER estimate are apples-to-apples) and reports per-approach totals.
std::vector<ApproachResult> RunComparison(
    const ExperimentSettings& settings, DataKind kind,
    const std::vector<ApproachId>& approaches);

/// One x-axis point of a figure sweep.
struct SweepPoint {
  std::string label;                    ///< e.g. "[1,5]" or "3"
  ExperimentSettings settings;          ///< settings for this point
};

/// Runs a full figure: every sweep point, every approach, and prints the
/// paper-style score and running-time tables (plus the UPPER row).
/// When `csv_path` is non-empty, also writes machine-readable results to
/// `<csv_path>.score.csv` and `<csv_path>.time_ms.csv`.
/// Returns the per-point results for further inspection.
std::vector<std::vector<ApproachResult>> RunFigure(
    const std::string& figure_title, const std::string& x_axis_name,
    const std::vector<SweepPoint>& points, DataKind kind,
    const std::vector<ApproachId>& approaches,
    const std::string& csv_path = "");

}  // namespace casc

#endif  // CASC_BENCH_UTIL_EXPERIMENT_H_
