#ifndef CASC_BENCH_UTIL_SETTINGS_H_
#define CASC_BENCH_UTIL_SETTINGS_H_

#include <string>

#include "gen/meetup_like.h"
#include "gen/synthetic.h"

namespace casc {

/// The experimental settings of Table II. Defaults are the paper's bold
/// values where stated and the DESIGN.md inferences otherwise (epsilon =
/// 0.05 is stated explicitly; m = 1K and n = 500 follow from the Figure
/// 7/8 discussion; B = 3 and R = 10 are stated).
///
/// Speeds and radii are the paper's percentages of the unit space: a
/// speed range of [1, 5] means v_i in [0.01, 0.05] distance per time
/// unit.
struct ExperimentSettings {
  int capacity = 4;              ///< a_j in {3,4,5,6}
  double speed_min_pct = 1.0;    ///< v- in percent
  double speed_max_pct = 5.0;    ///< v+ in percent
  double radius_min_pct = 5.0;   ///< r- in percent
  double radius_max_pct = 10.0;  ///< r+ in percent
  double remaining_time = 3.0;   ///< tau_j in {1..5} batch units
  double epsilon = 0.05;         ///< TSI threshold in {0,...,0.08}
  int num_workers = 1000;        ///< m in {500,...,5K}
  int num_tasks = 500;           ///< n in {100,...,1K}
  int rounds = 10;               ///< R = 10
  int min_group_size = 3;        ///< B = 3
  LocationDistribution distribution = LocationDistribution::kUniform;
  uint64_t seed = 42;            ///< master seed for generators

  /// Worker sampling parameters implied by these settings.
  WorkerGenConfig MakeWorkerConfig() const;

  /// Task sampling parameters implied by these settings.
  TaskGenConfig MakeTaskConfig() const;

  /// Full synthetic-batch recipe implied by these settings.
  SyntheticInstanceConfig MakeSyntheticConfig() const;

  /// The Meetup-like dataset shape (Section VI-A's HK slice).
  MeetupLikeConfig MakeMeetupConfig() const;

  /// One-line rendering of all parameters, printed by every bench binary.
  std::string ToString() const;
};

}  // namespace casc

#endif  // CASC_BENCH_UTIL_SETTINGS_H_
