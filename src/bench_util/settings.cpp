#include "bench_util/settings.h"

#include "common/strings.h"

namespace casc {

WorkerGenConfig ExperimentSettings::MakeWorkerConfig() const {
  WorkerGenConfig config;
  config.spatial.distribution = distribution;
  config.speed_min = speed_min_pct / 100.0;
  config.speed_max = speed_max_pct / 100.0;
  config.radius_min = radius_min_pct / 100.0;
  config.radius_max = radius_max_pct / 100.0;
  return config;
}

TaskGenConfig ExperimentSettings::MakeTaskConfig() const {
  TaskGenConfig config;
  config.spatial.distribution = distribution;
  config.remaining_time = remaining_time;
  config.capacity = capacity;
  return config;
}

SyntheticInstanceConfig ExperimentSettings::MakeSyntheticConfig() const {
  SyntheticInstanceConfig config;
  config.num_workers = num_workers;
  config.num_tasks = num_tasks;
  config.min_group_size = min_group_size;
  config.worker = MakeWorkerConfig();
  config.task = MakeTaskConfig();
  config.quality_model = QualityModel::kUniform;
  return config;
}

MeetupLikeConfig ExperimentSettings::MakeMeetupConfig() const {
  return MeetupLikeConfig{};  // the paper's HK slice shape
}

std::string ExperimentSettings::ToString() const {
  std::string out;
  out += "a_j=" + std::to_string(capacity);
  out += " [v-,v+]=[" + FormatDouble(speed_min_pct, 0) + "," +
         FormatDouble(speed_max_pct, 0) + "]%";
  out += " [r-,r+]=[" + FormatDouble(radius_min_pct, 0) + "," +
         FormatDouble(radius_max_pct, 0) + "]%";
  out += " tau=" + FormatDouble(remaining_time, 0);
  out += " eps=" + FormatDouble(epsilon, 2);
  out += " m=" + std::to_string(num_workers);
  out += " n=" + std::to_string(num_tasks);
  out += " R=" + std::to_string(rounds);
  out += " B=" + std::to_string(min_group_size);
  out += distribution == LocationDistribution::kSkewed ? " SKEW" : " UNIF";
  out += " seed=" + std::to_string(seed);
  return out;
}

}  // namespace casc
