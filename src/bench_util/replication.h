#ifndef CASC_BENCH_UTIL_REPLICATION_H_
#define CASC_BENCH_UTIL_REPLICATION_H_

#include <string>
#include <vector>

#include "bench_util/experiment.h"
#include "common/histogram.h"

namespace casc {

/// Per-approach aggregate over independent replications (distinct master
/// seeds): mean, standard error, and extremes of the total cooperation
/// score and of the per-batch running time.
struct ReplicatedResult {
  std::string name;
  SummaryStats score;       ///< total cooperation score per replication
  SummaryStats batch_ms;    ///< average batch milliseconds per replication
  SummaryStats upper_frac;  ///< score / UPPER per replication
};

/// Runs RunComparison once per seed in `seeds` (everything else fixed by
/// `settings`) and folds the outcomes into per-approach summaries. The
/// paper reports single-seed curves; replication quantifies how much of
/// an observed gap is signal versus sampling noise.
///
/// With num_threads > 1 the seeds fan out across a deterministic-
/// partition thread pool (each replication is independent); the fold
/// always happens in seed order, so the aggregates are identical for any
/// thread count. Timing statistics naturally get noisier when
/// replications share cores.
std::vector<ReplicatedResult> RunReplications(
    const ExperimentSettings& settings, DataKind kind,
    const std::vector<ApproachId>& approaches,
    const std::vector<uint64_t>& seeds, int num_threads = 1);

/// Prints the replication table ("score mean +- se", "ms mean",
/// "score/UPPER") for the given results.
void PrintReplications(const std::string& title,
                       const std::vector<ReplicatedResult>& results);

}  // namespace casc

#endif  // CASC_BENCH_UTIL_REPLICATION_H_
