#include "bench_util/table_printer.h"

#include <algorithm>

namespace casc {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Render() const {
  size_t columns = headers_.size();
  for (const auto& row : rows_) columns = std::max(columns, row.size());

  std::vector<size_t> widths(columns, 0);
  auto measure = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  };
  measure(headers_);
  for (const auto& row : rows_) measure(row);

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < columns; ++c) {
      const std::string cell = c < row.size() ? row[c] : "";
      line += cell;
      if (c + 1 < columns) {
        line += std::string(widths[c] - cell.size() + 2, ' ');
      }
    }
    // Trim trailing spaces.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };

  std::string out = render_row(headers_);
  size_t rule_width = 0;
  for (size_t c = 0; c < columns; ++c) {
    rule_width += widths[c] + (c + 1 < columns ? 2 : 0);
  }
  out += std::string(rule_width, '-') + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string TablePrinter::RenderCsv() const {
  auto render_row = [](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) line += ",";
      line += row[c];
    }
    return line + "\n";
  };
  std::string out = render_row(headers_);
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

}  // namespace casc
