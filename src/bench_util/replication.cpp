#include "bench_util/replication.h"

#include <cstdio>

#include "bench_util/table_printer.h"
#include "common/check.h"
#include "common/strings.h"
#include "common/thread_pool.h"

namespace casc {

std::vector<ReplicatedResult> RunReplications(
    const ExperimentSettings& settings, DataKind kind,
    const std::vector<ApproachId>& approaches,
    const std::vector<uint64_t>& seeds, int num_threads) {
  CASC_CHECK(!seeds.empty());
  std::vector<ReplicatedResult> results(approaches.size());
  for (size_t a = 0; a < approaches.size(); ++a) {
    results[a].name = ApproachName(approaches[a]);
  }

  // Fan the independent replications out, then fold in seed order so the
  // aggregates do not depend on the thread count.
  std::vector<std::vector<ApproachResult>> runs(seeds.size());
  ThreadPool pool(num_threads);
  pool.ParallelFor(static_cast<int64_t>(seeds.size()), [&](int64_t i) {
    ExperimentSettings run_settings = settings;
    run_settings.seed = seeds[static_cast<size_t>(i)];
    runs[static_cast<size_t>(i)] =
        RunComparison(run_settings, kind, approaches);
  });

  for (const std::vector<ApproachResult>& run : runs) {
    for (size_t a = 0; a < approaches.size(); ++a) {
      results[a].score.Add(run[a].total_score);
      results[a].batch_ms.Add(run[a].avg_seconds * 1e3);
      if (run[a].total_upper > 0.0) {
        results[a].upper_frac.Add(run[a].total_score / run[a].total_upper);
      }
    }
  }
  return results;
}

void PrintReplications(const std::string& title,
                       const std::vector<ReplicatedResult>& results) {
  std::printf("=== %s ===\n\n", title.c_str());
  TablePrinter table({"approach", "score (mean +- se)", "min..max",
                      "batch ms", "score/UPPER"});
  for (const ReplicatedResult& result : results) {
    table.AddRow(
        {result.name,
         FormatDouble(result.score.Mean(), 1) + " +- " +
             FormatDouble(result.score.StdError(), 1),
         FormatDouble(result.score.Min(), 1) + ".." +
             FormatDouble(result.score.Max(), 1),
         FormatDouble(result.batch_ms.Mean(), 2),
         FormatDouble(result.upper_frac.Mean(), 3)});
  }
  std::printf("%s\n", table.Render().c_str());
}

}  // namespace casc
