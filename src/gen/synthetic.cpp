#include "gen/synthetic.h"

#include "common/check.h"

namespace casc {
namespace {

/// `count` uniform skill draws (with replacement) from `num_skills`
/// categories, OR'ed into a mask. Zero categories draws nothing at all,
/// leaving the rng stream untouched.
SkillMask SampleSkills(int num_skills, int count, Rng* rng) {
  if (num_skills <= 0) return 0;
  CASC_CHECK_LE(num_skills, 64) << "SkillMask holds at most 64 categories";
  CASC_CHECK_GE(count, 0);
  SkillMask mask = 0;
  for (int i = 0; i < count; ++i) {
    mask |= SkillMask{1}
            << rng->UniformInt(static_cast<uint64_t>(num_skills));
  }
  return mask;
}

}  // namespace

Worker GenerateWorker(int64_t id, const WorkerGenConfig& config,
                      double arrival_time, Rng* rng) {
  CASC_CHECK(rng != nullptr);
  Worker worker;
  worker.id = id;
  worker.location = SampleLocation(config.spatial, rng);
  worker.speed = SampleRangeGaussian(config.speed_min, config.speed_max, rng);
  worker.radius =
      SampleRangeGaussian(config.radius_min, config.radius_max, rng);
  worker.arrival_time = arrival_time;
  worker.skills =
      SampleSkills(config.num_skills, config.skills_per_worker, rng);
  return worker;
}

Task GenerateTask(int64_t id, const TaskGenConfig& config, double create_time,
                  Rng* rng) {
  CASC_CHECK(rng != nullptr);
  Task task;
  task.id = id;
  task.location = SampleLocation(config.spatial, rng);
  task.create_time = create_time;
  task.deadline = create_time + config.remaining_time;
  task.capacity = config.capacity;
  task.required_skills =
      SampleSkills(config.num_skills, config.skills_per_task, rng);
  return task;
}

CooperationMatrix GenerateQualities(int num_workers, QualityModel model,
                                    double constant_quality, Rng* rng) {
  CASC_CHECK(rng != nullptr);
  if (model == QualityModel::kConstant) {
    return CooperationMatrix(num_workers, constant_quality);
  }
  CooperationMatrix matrix(num_workers);
  for (int i = 0; i < num_workers; ++i) {
    for (int k = i + 1; k < num_workers; ++k) {
      matrix.SetSymmetric(i, k, rng->Uniform());
    }
  }
  return matrix;
}

Instance GenerateSyntheticInstance(const SyntheticInstanceConfig& config,
                                   double now, Rng* rng) {
  CASC_CHECK(rng != nullptr);
  std::vector<Worker> workers;
  workers.reserve(static_cast<size_t>(config.num_workers));
  for (int i = 0; i < config.num_workers; ++i) {
    workers.push_back(GenerateWorker(i, config.worker, now, rng));
  }
  std::vector<Task> tasks;
  tasks.reserve(static_cast<size_t>(config.num_tasks));
  for (int j = 0; j < config.num_tasks; ++j) {
    tasks.push_back(GenerateTask(j, config.task, now, rng));
  }
  CooperationMatrix coop = GenerateQualities(
      config.num_workers, config.quality_model, config.constant_quality, rng);
  Instance instance(std::move(workers), std::move(tasks), std::move(coop),
                    now, config.min_group_size);
  instance.ComputeValidPairs();
  return instance;
}

}  // namespace casc
