#include "gen/distributions.h"

#include "common/check.h"

namespace casc {

Point SampleLocation(const SpatialGenConfig& config, Rng* rng) {
  CASC_CHECK(rng != nullptr);
  if (config.distribution == LocationDistribution::kSkewed &&
      rng->Bernoulli(config.cluster_fraction)) {
    const Point raw{
        rng->Gaussian(config.cluster_center.x, config.cluster_stddev),
        rng->Gaussian(config.cluster_center.y, config.cluster_stddev)};
    return ClampToUnitSquare(raw);
  }
  return Point{rng->Uniform(), rng->Uniform()};
}

double SampleRangeGaussian(double lo, double hi, Rng* rng) {
  CASC_CHECK(rng != nullptr);
  CASC_CHECK_LE(lo, hi);
  // N(0, 0.2^2) truncated to [-1, 1] (a 5-sigma window, so rejections are
  // vanishingly rare), then mapped linearly onto [lo, hi].
  const double x = rng->TruncatedGaussian(1.0 / 0.2) * 0.2;
  return lo + (x + 1.0) / 2.0 * (hi - lo);
}

}  // namespace casc
