#ifndef CASC_GEN_MEETUP_LIKE_H_
#define CASC_GEN_MEETUP_LIKE_H_

#include <vector>

#include "common/rng.h"
#include "gen/synthetic.h"
#include "model/instance.h"

namespace casc {

/// Shape parameters of the synthesized event-based social network that
/// stands in for the Meetup crawl of [13] (see DESIGN.md, Substitutions).
///
/// The paper's Hong Kong slice has 3,525 workers (users) and 1,282 tasks
/// (events); users belong to groups, and the cooperation quality of two
/// workers is derived from their group overlap:
///   q_i(w_k) = 0.5 * 0.5 + 0.5 * c_ik / C_ik
/// (Equation 1 with alpha = omega = 0.5 and s_j = 1), where c_ik counts
/// common groups and C_ik the union of their groups.
struct MeetupLikeConfig {
  int num_users = 3525;
  int num_events = 1282;
  int num_groups = 400;
  /// Per-user membership count is 1 + (Zipf(max_memberships, zipf_s) - 1):
  /// most users join one or two groups, a few join many.
  int max_memberships = 12;
  double membership_zipf_s = 1.6;
  /// Group popularity is itself Zipf-distributed: low-index groups attract
  /// disproportionately many members, creating realistic overlap.
  double group_zipf_s = 1.1;
  /// City-like clustered locations for users and events.
  SpatialGenConfig spatial = {LocationDistribution::kSkewed, 0.8,
                              {0.5, 0.5}, 0.2};
  /// Equation 1 parameters (paper: alpha = omega = 0.5).
  double alpha = 0.5;
  double omega = 0.5;
};

/// An immutable synthesized social dataset; batch instances are drawn
/// from it by uniform sampling, as the paper samples from the Meetup HK
/// slice each round.
class MeetupLikeDataset {
 public:
  /// Synthesizes a dataset. Deterministic for a given (config, seed).
  static MeetupLikeDataset Generate(const MeetupLikeConfig& config, Rng* rng);

  int num_users() const { return static_cast<int>(user_locations_.size()); }
  int num_events() const {
    return static_cast<int>(event_locations_.size());
  }

  const Point& user_location(int u) const;
  const Point& event_location(int e) const;

  /// Sorted group ids user `u` belongs to.
  const std::vector<int>& user_groups(int u) const;

  /// Number of groups both users joined (c_ik).
  int CommonGroups(int u1, int u2) const;

  /// Number of groups either user joined (C_ik).
  int UnionGroups(int u1, int u2) const;

  /// The paper's real-data quality estimate:
  /// alpha * omega + (1 - alpha) * c / C; when the union is empty the
  /// history term is vacuous and the prior alone remains (alpha * omega +
  /// (1 - alpha) * 0 for a never-overlapping pair).
  double CooperationQuality(int u1, int u2) const;

  /// Uniformly samples `num_workers` users and `num_tasks` events into a
  /// one-batch Instance at timestamp `now` (sampling without replacement
  /// while the dataset suffices, with replacement beyond that), attaching
  /// speeds/radii/deadlines from the given configs and the group-overlap
  /// cooperation matrix. Valid pairs are computed before returning.
  Instance SampleInstance(int num_workers, int num_tasks,
                          const WorkerGenConfig& worker_config,
                          const TaskGenConfig& task_config,
                          int min_group_size, double now, Rng* rng) const;

 private:
  MeetupLikeDataset() = default;

  double alpha_ = 0.5;
  double omega_ = 0.5;
  std::vector<Point> user_locations_;
  std::vector<Point> event_locations_;
  std::vector<std::vector<int>> memberships_;  // per user, sorted
};

}  // namespace casc

#endif  // CASC_GEN_MEETUP_LIKE_H_
