#ifndef CASC_GEN_SYNTHETIC_H_
#define CASC_GEN_SYNTHETIC_H_

#include "common/rng.h"
#include "gen/distributions.h"
#include "model/instance.h"

namespace casc {

/// Worker sampling parameters: location distribution plus the speed and
/// working-radius ranges [v-, v+] and [r-, r+] of Table II (expressed as
/// fractions of the unit space, i.e. the paper's percentages / 100).
struct WorkerGenConfig {
  SpatialGenConfig spatial;
  double speed_min = 0.01;   ///< v- (Table II default [1, 5]%)
  double speed_max = 0.05;   ///< v+
  double radius_min = 0.05;  ///< r- (Table II default [5, 10]%)
  double radius_max = 0.10;  ///< r+

  /// Skill universe for the multi-skill objective variant: each worker
  /// holds `skills_per_worker` uniform draws (with replacement) from
  /// `num_skills` categories (<= 64, the SkillMask width). The default 0
  /// draws nothing — the rng stream and every generated worker are
  /// bit-identical to the pre-skill generator, so skill-less configs
  /// reproduce historical workloads exactly.
  int num_skills = 0;
  int skills_per_worker = 2;
};

/// Task sampling parameters.
struct TaskGenConfig {
  SpatialGenConfig spatial;
  double remaining_time = 3.0;  ///< tau_j - phi (Table II default 3)
  int capacity = 4;             ///< a_j (Table II default 4)

  /// Skill demand: each task requires `skills_per_task` uniform draws
  /// (with replacement) from `num_skills` categories. 0 draws nothing
  /// (no requirement, rng stream untouched) — see WorkerGenConfig.
  int num_skills = 0;
  int skills_per_task = 1;
};

/// How pairwise cooperation qualities are generated for synthetic data.
enum class QualityModel {
  kUniform,   ///< symmetric q ~ U[0, 1]
  kConstant,  ///< every pair equals `constant_quality`
};

/// Full synthetic-instance recipe (one batch).
struct SyntheticInstanceConfig {
  int num_workers = 1000;  ///< m (Table II default 1K)
  int num_tasks = 500;     ///< n (Table II default 500)
  int min_group_size = 3;  ///< B (Table II: 3)
  WorkerGenConfig worker;
  TaskGenConfig task;
  QualityModel quality_model = QualityModel::kUniform;
  double constant_quality = 0.5;
};

/// Samples one worker; speed and radius use the paper's range-mapped
/// Gaussian (SampleRangeGaussian).
Worker GenerateWorker(int64_t id, const WorkerGenConfig& config,
                      double arrival_time, Rng* rng);

/// Samples one task; its deadline is create_time + remaining_time.
Task GenerateTask(int64_t id, const TaskGenConfig& config,
                  double create_time, Rng* rng);

/// Generates a symmetric cooperation matrix under `model`.
CooperationMatrix GenerateQualities(int num_workers, QualityModel model,
                                    double constant_quality, Rng* rng);

/// Generates a complete one-batch instance at timestamp `now` (workers
/// arrive at `now`, tasks are created at `now`) and computes its valid
/// pairs.
Instance GenerateSyntheticInstance(const SyntheticInstanceConfig& config,
                                   double now, Rng* rng);

}  // namespace casc

#endif  // CASC_GEN_SYNTHETIC_H_
