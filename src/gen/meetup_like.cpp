#include "gen/meetup_like.h"

#include <algorithm>

#include "common/check.h"

namespace casc {

MeetupLikeDataset MeetupLikeDataset::Generate(const MeetupLikeConfig& config,
                                              Rng* rng) {
  CASC_CHECK(rng != nullptr);
  CASC_CHECK_GE(config.num_users, 0);
  CASC_CHECK_GE(config.num_events, 0);
  CASC_CHECK_GE(config.num_groups, 1);
  CASC_CHECK_GE(config.max_memberships, 1);

  MeetupLikeDataset dataset;
  dataset.alpha_ = config.alpha;
  dataset.omega_ = config.omega;

  dataset.user_locations_.reserve(static_cast<size_t>(config.num_users));
  dataset.memberships_.resize(static_cast<size_t>(config.num_users));
  for (int u = 0; u < config.num_users; ++u) {
    dataset.user_locations_.push_back(SampleLocation(config.spatial, rng));
    const int count = static_cast<int>(
        rng->Zipf(static_cast<uint64_t>(config.max_memberships),
                  config.membership_zipf_s));
    auto& groups = dataset.memberships_[static_cast<size_t>(u)];
    while (static_cast<int>(groups.size()) < count) {
      // Popular (low-index) groups are drawn more often.
      const int g = static_cast<int>(
          rng->Zipf(static_cast<uint64_t>(config.num_groups),
                    config.group_zipf_s) -
          1);
      if (std::find(groups.begin(), groups.end(), g) == groups.end()) {
        groups.push_back(g);
      }
    }
    std::sort(groups.begin(), groups.end());
  }

  dataset.event_locations_.reserve(static_cast<size_t>(config.num_events));
  for (int e = 0; e < config.num_events; ++e) {
    dataset.event_locations_.push_back(SampleLocation(config.spatial, rng));
  }
  return dataset;
}

const Point& MeetupLikeDataset::user_location(int u) const {
  CASC_CHECK_GE(u, 0);
  CASC_CHECK_LT(u, num_users());
  return user_locations_[static_cast<size_t>(u)];
}

const Point& MeetupLikeDataset::event_location(int e) const {
  CASC_CHECK_GE(e, 0);
  CASC_CHECK_LT(e, num_events());
  return event_locations_[static_cast<size_t>(e)];
}

const std::vector<int>& MeetupLikeDataset::user_groups(int u) const {
  CASC_CHECK_GE(u, 0);
  CASC_CHECK_LT(u, num_users());
  return memberships_[static_cast<size_t>(u)];
}

int MeetupLikeDataset::CommonGroups(int u1, int u2) const {
  const auto& a = user_groups(u1);
  const auto& b = user_groups(u2);
  int common = 0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++common;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return common;
}

int MeetupLikeDataset::UnionGroups(int u1, int u2) const {
  return static_cast<int>(user_groups(u1).size() + user_groups(u2).size()) -
         CommonGroups(u1, u2);
}

double MeetupLikeDataset::CooperationQuality(int u1, int u2) const {
  const int union_count = UnionGroups(u1, u2);
  const double history =
      union_count == 0 ? 0.0
                       : static_cast<double>(CommonGroups(u1, u2)) /
                             union_count;
  return alpha_ * omega_ + (1.0 - alpha_) * history;
}

Instance MeetupLikeDataset::SampleInstance(
    int num_workers, int num_tasks, const WorkerGenConfig& worker_config,
    const TaskGenConfig& task_config, int min_group_size, double now,
    Rng* rng) const {
  CASC_CHECK(rng != nullptr);
  CASC_CHECK_GT(num_users(), 0);
  CASC_CHECK_GT(num_events(), 0);

  // Uniform sample of users: a shuffled prefix while the dataset lasts,
  // uniform-with-replacement indices beyond it.
  std::vector<int> user_pool(static_cast<size_t>(num_users()));
  for (int u = 0; u < num_users(); ++u) user_pool[static_cast<size_t>(u)] = u;
  rng->Shuffle(user_pool);
  std::vector<int> chosen_users;
  chosen_users.reserve(static_cast<size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    if (i < num_users()) {
      chosen_users.push_back(user_pool[static_cast<size_t>(i)]);
    } else {
      chosen_users.push_back(
          static_cast<int>(rng->UniformInt(static_cast<uint64_t>(
              num_users()))));
    }
  }

  std::vector<Worker> workers;
  workers.reserve(static_cast<size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    Worker worker;
    worker.id = chosen_users[static_cast<size_t>(i)];
    worker.location = user_location(chosen_users[static_cast<size_t>(i)]);
    worker.speed = SampleRangeGaussian(worker_config.speed_min,
                                       worker_config.speed_max, rng);
    worker.radius = SampleRangeGaussian(worker_config.radius_min,
                                        worker_config.radius_max, rng);
    worker.arrival_time = now;
    workers.push_back(worker);
  }

  std::vector<Task> tasks;
  tasks.reserve(static_cast<size_t>(num_tasks));
  for (int j = 0; j < num_tasks; ++j) {
    const int e = static_cast<int>(
        rng->UniformInt(static_cast<uint64_t>(num_events())));
    Task task;
    task.id = e;
    task.location = event_location(e);
    task.create_time = now;
    task.deadline = now + task_config.remaining_time;
    task.capacity = task_config.capacity;
    tasks.push_back(task);
  }

  CooperationMatrix coop(num_workers);
  for (int i = 0; i < num_workers; ++i) {
    for (int k = i + 1; k < num_workers; ++k) {
      coop.SetSymmetric(i, k,
                        CooperationQuality(chosen_users[static_cast<size_t>(i)],
                                           chosen_users[static_cast<size_t>(k)]));
    }
  }

  Instance instance(std::move(workers), std::move(tasks), std::move(coop),
                    now, min_group_size);
  instance.ComputeValidPairs();
  return instance;
}

}  // namespace casc
