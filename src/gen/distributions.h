#ifndef CASC_GEN_DISTRIBUTIONS_H_
#define CASC_GEN_DISTRIBUTIONS_H_

#include "common/rng.h"
#include "geo/point.h"

namespace casc {

/// Location distributions of the paper's synthetic workload (Section
/// VI-A): Uniform over [0,1]^2, or Skewed — 80% of points in a Gaussian
/// cluster centered at (0.5, 0.5) with sigma = 0.2, the rest uniform.
enum class LocationDistribution { kUniform, kSkewed };

/// Parameters for sampling locations.
struct SpatialGenConfig {
  LocationDistribution distribution = LocationDistribution::kUniform;
  double cluster_fraction = 0.8;      ///< share of points in the cluster
  Point cluster_center = {0.5, 0.5};  ///< cluster mean
  double cluster_stddev = 0.2;        ///< cluster sigma (paper: var 0.2^2)
};

/// Samples one location; cluster samples are clamped into [0,1]^2.
Point SampleLocation(const SpatialGenConfig& config, Rng* rng);

/// Samples from the paper's range-mapped Gaussian: a draw of N(0, 0.2^2)
/// restricted to [-1, 1] is mapped linearly onto [lo, hi] (Section VI-A).
/// Requires lo <= hi.
double SampleRangeGaussian(double lo, double hi, Rng* rng);

}  // namespace casc

#endif  // CASC_GEN_DISTRIBUTIONS_H_
