#include "gen/workload.h"

namespace casc {

SyntheticSource::SyntheticSource(SyntheticInstanceConfig config,
                                 uint64_t seed)
    : config_(config), rng_(seed) {}

std::string SyntheticSource::Name() const {
  return config_.worker.spatial.distribution == LocationDistribution::kSkewed
             ? "SKEW"
             : "UNIF";
}

Instance SyntheticSource::MakeBatch(int round, double now) {
  (void)round;  // the RNG stream advances monotonically across rounds
  return GenerateSyntheticInstance(config_, now, &rng_);
}

MeetupLikeSource::MeetupLikeSource(MeetupLikeConfig dataset_config,
                                   int num_workers, int num_tasks,
                                   WorkerGenConfig worker_config,
                                   TaskGenConfig task_config,
                                   int min_group_size, uint64_t dataset_seed,
                                   uint64_t sample_seed)
    : dataset_([&] {
        Rng dataset_rng(dataset_seed);
        return MeetupLikeDataset::Generate(dataset_config, &dataset_rng);
      }()),
      num_workers_(num_workers),
      num_tasks_(num_tasks),
      worker_config_(worker_config),
      task_config_(task_config),
      min_group_size_(min_group_size),
      rng_(sample_seed) {}

Instance MeetupLikeSource::MakeBatch(int round, double now) {
  (void)round;
  return dataset_.SampleInstance(num_workers_, num_tasks_, worker_config_,
                                 task_config_, min_group_size_, now, &rng_);
}

}  // namespace casc
