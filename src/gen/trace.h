#ifndef CASC_GEN_TRACE_H_
#define CASC_GEN_TRACE_H_

#include <vector>

#include "common/rng.h"
#include "gen/synthetic.h"
#include "model/task.h"
#include "model/worker.h"

namespace casc {

/// A window during which arrival rates are multiplied (rush hours,
/// lunchtime spikes, ...).
struct RushWindow {
  double start = 0.0;
  double end = 0.0;
  double multiplier = 1.0;
};

/// Configuration of a continuous-time arrival trace for the streaming
/// batch framework (Algorithm 1): workers and tasks arrive as
/// inhomogeneous Poisson processes over [0, horizon).
struct TraceConfig {
  double horizon = 12.0;      ///< length of the simulated interval Phi
  double worker_rate = 30.0;  ///< base worker arrivals per time unit
  double task_rate = 12.0;    ///< base task creations per time unit
  std::vector<RushWindow> rush_windows;  ///< applied to both processes
  WorkerGenConfig worker;     ///< per-worker attribute sampling
  TaskGenConfig task;         ///< per-task attribute sampling
};

/// A generated trace. Worker ids are 0..workers.size()-1 (the contract
/// BatchRunner::RunStreaming expects for cooperation-matrix indexing);
/// task ids are 0..tasks.size()-1. Both are sorted by arrival time.
struct Trace {
  std::vector<Worker> workers;
  std::vector<Task> tasks;
};

/// Effective arrival-rate multiplier at time `t` under `config`
/// (product of all covering rush windows; 1.0 outside them).
double RateMultiplierAt(const TraceConfig& config, double t);

/// Samples a trace. Arrival times come from Poisson thinning against the
/// peak rate, so rush windows genuinely concentrate arrivals.
/// Deterministic for a given (config, rng state).
Trace GenerateTrace(const TraceConfig& config, Rng* rng);

}  // namespace casc

#endif  // CASC_GEN_TRACE_H_
