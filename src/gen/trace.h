#ifndef CASC_GEN_TRACE_H_
#define CASC_GEN_TRACE_H_

#include <vector>

#include "common/rng.h"
#include "gen/synthetic.h"
#include "model/task.h"
#include "model/worker.h"

namespace casc {

/// A window during which arrival rates are multiplied (rush hours,
/// lunchtime spikes, ...).
struct RushWindow {
  double start = 0.0;
  double end = 0.0;
  double multiplier = 1.0;
};

/// Configuration of a continuous-time arrival trace for the streaming
/// batch framework (Algorithm 1): workers and tasks arrive as
/// inhomogeneous Poisson processes over [0, horizon).
struct TraceConfig {
  double horizon = 12.0;      ///< length of the simulated interval Phi
  double worker_rate = 30.0;  ///< base worker arrivals per time unit
  double task_rate = 12.0;    ///< base task creations per time unit
  std::vector<RushWindow> rush_windows;  ///< applied to both processes
  WorkerGenConfig worker;     ///< per-worker attribute sampling
  TaskGenConfig task;         ///< per-task attribute sampling
};

/// A generated trace. Worker ids are 0..workers.size()-1 (the contract
/// BatchRunner::RunStreaming expects for cooperation-matrix indexing);
/// task ids are 0..tasks.size()-1. Both are sorted by arrival time.
struct Trace {
  std::vector<Worker> workers;
  std::vector<Task> tasks;
};

/// Effective arrival-rate multiplier at time `t` under `config`
/// (product of all covering rush windows; 1.0 outside them).
double RateMultiplierAt(const TraceConfig& config, double t);

/// Streams a trace event by event instead of materializing the full
/// Worker/Task vectors. Only the arrival-time vectors are held (8 bytes
/// per event); each record's attributes are sampled on the call that
/// yields it. Draw-for-draw identical to GenerateTrace for the same
/// (config, rng state): the constructor replays its exact rng phase
/// order — all worker arrival times (thinning draws included), then
/// per-worker attributes in id order, then all task times, then
/// per-task attributes — so draining the cursor reproduces the trace
/// bit for bit. The 1M-worker benches stream arrivals straight into the
/// event stream through this cursor.
class TraceCursor {
 public:
  /// Validates `config` and draws the worker arrival times. `rng` must
  /// outlive the cursor.
  TraceCursor(const TraceConfig& config, Rng* rng);

  /// Yields the next worker (ids 0..num_workers()-1, ascending arrival
  /// time). Returns false when the worker stream is exhausted.
  bool NextWorker(Worker* out);

  /// Yields the next task. The worker stream must be exhausted first
  /// (CHECK): task arrival times are drawn after the last worker
  /// attribute, matching GenerateTrace's draw order. The worker-time
  /// vector is released at that point.
  bool NextTask(Task* out);

  int64_t num_workers() const { return num_workers_; }

 private:
  TraceConfig config_;
  Rng* rng_;
  std::vector<double> worker_times_;
  std::vector<double> task_times_;
  int64_t num_workers_ = 0;
  size_t next_worker_ = 0;
  size_t next_task_ = 0;
  bool task_times_drawn_ = false;
};

/// Samples a trace. Arrival times come from Poisson thinning against the
/// peak rate, so rush windows genuinely concentrate arrivals.
/// Deterministic for a given (config, rng state). Implemented as a
/// TraceCursor drain, so the two are equivalent by construction.
Trace GenerateTrace(const TraceConfig& config, Rng* rng);

}  // namespace casc

#endif  // CASC_GEN_TRACE_H_
