#include "gen/trace.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace casc {
namespace {

/// Samples the arrival times of an inhomogeneous Poisson process with
/// base rate `rate` and the config's rush multipliers, via thinning.
std::vector<double> PoissonArrivals(const TraceConfig& config, double rate,
                                    Rng* rng) {
  double peak = 1.0;
  for (const RushWindow& window : config.rush_windows) {
    peak = std::max(peak, window.multiplier);
  }
  const double peak_rate = rate * peak;
  std::vector<double> arrivals;
  if (peak_rate <= 0.0) return arrivals;
  double t = 0.0;
  for (;;) {
    // Exponential inter-arrival at the peak rate...
    const double u = rng->Uniform();
    t += -std::log(1.0 - u) / peak_rate;
    if (t >= config.horizon) break;
    // ...thinned down to the actual rate at time t.
    const double actual = rate * RateMultiplierAt(config, t);
    if (rng->Uniform() < actual / peak_rate) arrivals.push_back(t);
  }
  return arrivals;
}

}  // namespace

double RateMultiplierAt(const TraceConfig& config, double t) {
  double multiplier = 1.0;
  for (const RushWindow& window : config.rush_windows) {
    if (t >= window.start && t < window.end) {
      multiplier *= window.multiplier;
    }
  }
  return multiplier;
}

Trace GenerateTrace(const TraceConfig& config, Rng* rng) {
  CASC_CHECK(rng != nullptr);
  CASC_CHECK_GT(config.horizon, 0.0);
  CASC_CHECK_GE(config.worker_rate, 0.0);
  CASC_CHECK_GE(config.task_rate, 0.0);
  for (const RushWindow& window : config.rush_windows) {
    CASC_CHECK_LE(window.start, window.end);
    CASC_CHECK_GT(window.multiplier, 0.0);
  }

  Trace trace;
  const std::vector<double> worker_times =
      PoissonArrivals(config, config.worker_rate, rng);
  trace.workers.reserve(worker_times.size());
  for (size_t i = 0; i < worker_times.size(); ++i) {
    Worker worker = GenerateWorker(static_cast<int64_t>(i), config.worker,
                                   worker_times[i], rng);
    trace.workers.push_back(worker);
  }

  const std::vector<double> task_times =
      PoissonArrivals(config, config.task_rate, rng);
  trace.tasks.reserve(task_times.size());
  for (size_t j = 0; j < task_times.size(); ++j) {
    trace.tasks.push_back(GenerateTask(static_cast<int64_t>(j), config.task,
                                       task_times[j], rng));
  }
  return trace;
}

}  // namespace casc
