#include "gen/trace.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace casc {
namespace {

/// Samples the arrival times of an inhomogeneous Poisson process with
/// base rate `rate` and the config's rush multipliers, via thinning.
std::vector<double> PoissonArrivals(const TraceConfig& config, double rate,
                                    Rng* rng) {
  double peak = 1.0;
  for (const RushWindow& window : config.rush_windows) {
    peak = std::max(peak, window.multiplier);
  }
  const double peak_rate = rate * peak;
  std::vector<double> arrivals;
  if (peak_rate <= 0.0) return arrivals;
  double t = 0.0;
  for (;;) {
    // Exponential inter-arrival at the peak rate...
    const double u = rng->Uniform();
    t += -std::log(1.0 - u) / peak_rate;
    if (t >= config.horizon) break;
    // ...thinned down to the actual rate at time t.
    const double actual = rate * RateMultiplierAt(config, t);
    if (rng->Uniform() < actual / peak_rate) arrivals.push_back(t);
  }
  return arrivals;
}

}  // namespace

double RateMultiplierAt(const TraceConfig& config, double t) {
  double multiplier = 1.0;
  for (const RushWindow& window : config.rush_windows) {
    if (t >= window.start && t < window.end) {
      multiplier *= window.multiplier;
    }
  }
  return multiplier;
}

TraceCursor::TraceCursor(const TraceConfig& config, Rng* rng)
    : config_(config), rng_(rng) {
  CASC_CHECK(rng_ != nullptr);
  CASC_CHECK_GT(config_.horizon, 0.0);
  CASC_CHECK_GE(config_.worker_rate, 0.0);
  CASC_CHECK_GE(config_.task_rate, 0.0);
  for (const RushWindow& window : config_.rush_windows) {
    CASC_CHECK_LE(window.start, window.end);
    CASC_CHECK_GT(window.multiplier, 0.0);
  }
  worker_times_ = PoissonArrivals(config_, config_.worker_rate, rng_);
  num_workers_ = static_cast<int64_t>(worker_times_.size());
}

bool TraceCursor::NextWorker(Worker* out) {
  CASC_CHECK(out != nullptr);
  if (next_worker_ >= worker_times_.size()) return false;
  *out = GenerateWorker(static_cast<int64_t>(next_worker_), config_.worker,
                        worker_times_[next_worker_], rng_);
  ++next_worker_;
  return true;
}

bool TraceCursor::NextTask(Task* out) {
  CASC_CHECK(out != nullptr);
  if (!task_times_drawn_) {
    CASC_CHECK_EQ(next_worker_, worker_times_.size())
        << "drain the worker stream before the task stream: task arrival "
           "times are drawn after the last worker attribute";
    // The worker times are spent; release them before the task phase so
    // the cursor never holds both vectors.
    worker_times_ = std::vector<double>();
    task_times_ = PoissonArrivals(config_, config_.task_rate, rng_);
    task_times_drawn_ = true;
  }
  if (next_task_ >= task_times_.size()) return false;
  *out = GenerateTask(static_cast<int64_t>(next_task_), config_.task,
                      task_times_[next_task_], rng_);
  ++next_task_;
  return true;
}

Trace GenerateTrace(const TraceConfig& config, Rng* rng) {
  TraceCursor cursor(config, rng);
  Trace trace;
  trace.workers.reserve(static_cast<size_t>(cursor.num_workers()));
  Worker worker;
  while (cursor.NextWorker(&worker)) trace.workers.push_back(worker);
  Task task;
  while (cursor.NextTask(&task)) trace.tasks.push_back(task);
  return trace;
}

}  // namespace casc
