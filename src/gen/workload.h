#ifndef CASC_GEN_WORKLOAD_H_
#define CASC_GEN_WORKLOAD_H_

#include <memory>
#include <string>

#include "gen/meetup_like.h"
#include "gen/synthetic.h"
#include "model/instance.h"

namespace casc {

/// A source of per-batch CA-SC instances, the unit the paper's
/// experiments consume: "in each round, we uniformly sample the required
/// number of workers and tasks" (Section VI-A). Implementations are
/// deterministic for a given seed.
class InstanceSource {
 public:
  virtual ~InstanceSource() = default;

  /// Display name for experiment tables ("UNIF", "SKEW", "MEETUP-HK").
  virtual std::string Name() const = 0;

  /// Produces the instance for batch `round` at timestamp `now`, with
  /// valid pairs computed.
  virtual Instance MakeBatch(int round, double now) = 0;
};

/// Synthetic instances with UNIF or SKEW locations (Section VI-C).
class SyntheticSource : public InstanceSource {
 public:
  SyntheticSource(SyntheticInstanceConfig config, uint64_t seed);

  std::string Name() const override;
  Instance MakeBatch(int round, double now) override;

  const SyntheticInstanceConfig& config() const { return config_; }

 private:
  SyntheticInstanceConfig config_;
  Rng rng_;
};

/// Batches sampled from a synthesized Meetup-like dataset (Section VI-B).
/// The dataset is generated once at construction; each batch uniformly
/// samples workers/tasks from it, as the paper does with the HK slice.
class MeetupLikeSource : public InstanceSource {
 public:
  /// `dataset_seed` fixes the social network itself; `sample_seed` drives
  /// the per-round sampling (so figures can share one dataset).
  MeetupLikeSource(MeetupLikeConfig dataset_config, int num_workers,
                   int num_tasks, WorkerGenConfig worker_config,
                   TaskGenConfig task_config, int min_group_size,
                   uint64_t dataset_seed, uint64_t sample_seed);

  std::string Name() const override { return "MEETUP-HK"; }
  Instance MakeBatch(int round, double now) override;

  const MeetupLikeDataset& dataset() const { return dataset_; }

 private:
  MeetupLikeDataset dataset_;
  int num_workers_;
  int num_tasks_;
  WorkerGenConfig worker_config_;
  TaskGenConfig task_config_;
  int min_group_size_;
  Rng rng_;
};

}  // namespace casc

#endif  // CASC_GEN_WORKLOAD_H_
