#include "common/check.h"

#include <cstdio>
#include <cstdlib>

namespace casc {
namespace internal_check {

CheckFailureStream::CheckFailureStream(const char* condition,
                                       const char* file, int line) {
  message_ << file << ":" << line << ": CHECK failed: " << condition << " ";
}

CheckFailureStream::~CheckFailureStream() {
  std::fprintf(stderr, "%s\n", message_.str().c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal_check
}  // namespace casc
