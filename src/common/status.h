#ifndef CASC_COMMON_STATUS_H_
#define CASC_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "common/check.h"

namespace casc {

/// Error category for recoverable failures.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kInternal,
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// A lightweight success-or-error value, modeled after absl::Status.
///
/// The library does not throw exceptions; functions that can fail in ways
/// the caller should handle return Status (or Result<T>).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given error code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value of type T or an error Status.
///
/// Access to `value()` CHECK-fails when the result holds an error; call
/// `ok()` first on any fallible path.
template <typename T>
class Result {
 public:
  /// Constructs a successful result (implicit to allow `return value;`).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a failed result (implicit to allow `return status;`).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    CASC_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CASC_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    CASC_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    CASC_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace casc

#endif  // CASC_COMMON_STATUS_H_
