#include "common/strings.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstdio>

namespace casc {

std::vector<std::string> StrSplit(std::string_view text, char delimiter) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delimiter) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += separator;
    out += parts[i];
  }
  return out;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool ParseDouble(std::string_view text, double* out) {
  const std::string buffer(StripWhitespace(text));
  if (buffer.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(buffer.c_str(), &end);
  if (errno != 0 || end != buffer.c_str() + buffer.size()) return false;
  *out = value;
  return true;
}

bool ParseInt64(std::string_view text, int64_t* out) {
  const std::string buffer(StripWhitespace(text));
  if (buffer.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(buffer.c_str(), &end, 10);
  if (errno != 0 || end != buffer.c_str() + buffer.size()) return false;
  *out = value;
  return true;
}

std::string FormatDouble(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
  return buffer;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

}  // namespace casc
