#include "common/flags.h"

#include "common/check.h"
#include "common/strings.h"

namespace casc {
namespace {

const char* KindName(int kind) {
  switch (kind) {
    case 0:
      return "int64";
    case 1:
      return "double";
    case 2:
      return "string";
    case 3:
      return "bool";
  }
  return "?";
}

}  // namespace

void FlagParser::DefineInt64(const std::string& name, int64_t default_value,
                             const std::string& help) {
  Flag flag;
  flag.kind = Kind::kInt64;
  flag.help = help;
  flag.int_value = default_value;
  CASC_CHECK(flags_.emplace(name, flag).second)
      << "duplicate flag --" << name;
}

void FlagParser::DefineDouble(const std::string& name, double default_value,
                              const std::string& help) {
  Flag flag;
  flag.kind = Kind::kDouble;
  flag.help = help;
  flag.double_value = default_value;
  CASC_CHECK(flags_.emplace(name, flag).second)
      << "duplicate flag --" << name;
}

void FlagParser::DefineString(const std::string& name,
                              const std::string& default_value,
                              const std::string& help) {
  Flag flag;
  flag.kind = Kind::kString;
  flag.help = help;
  flag.string_value = default_value;
  CASC_CHECK(flags_.emplace(name, flag).second)
      << "duplicate flag --" << name;
}

void FlagParser::DefineBool(const std::string& name, bool default_value,
                            const std::string& help) {
  Flag flag;
  flag.kind = Kind::kBool;
  flag.help = help;
  flag.bool_value = default_value;
  CASC_CHECK(flags_.emplace(name, flag).second)
      << "duplicate flag --" << name;
}

Status FlagParser::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const size_t eq = body.find('=');
    std::string name, value;
    if (eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
    } else {
      name = body;
      auto it = flags_.find(name);
      if (it == flags_.end()) {
        return Status::InvalidArgument("unknown flag --" + name);
      }
      if (it->second.kind == Kind::kBool) {
        value = "true";
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        return Status::InvalidArgument("flag --" + name + " needs a value");
      }
    }
    Status status = SetValue(name, value);
    if (!status.ok()) return status;
  }
  return Status::Ok();
}

Status FlagParser::SetValue(const std::string& name,
                            const std::string& value) {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    return Status::InvalidArgument("unknown flag --" + name);
  }
  Flag& flag = it->second;
  switch (flag.kind) {
    case Kind::kInt64:
      if (!ParseInt64(value, &flag.int_value)) {
        return Status::InvalidArgument("flag --" + name +
                                       ": bad int64 value '" + value + "'");
      }
      break;
    case Kind::kDouble:
      if (!ParseDouble(value, &flag.double_value)) {
        return Status::InvalidArgument("flag --" + name +
                                       ": bad double value '" + value + "'");
      }
      break;
    case Kind::kString:
      flag.string_value = value;
      break;
    case Kind::kBool:
      if (value == "true" || value == "1") {
        flag.bool_value = true;
      } else if (value == "false" || value == "0") {
        flag.bool_value = false;
      } else {
        return Status::InvalidArgument("flag --" + name +
                                       ": bad bool value '" + value + "'");
      }
      break;
  }
  return Status::Ok();
}

const FlagParser::Flag& FlagParser::GetFlag(const std::string& name,
                                            Kind kind) const {
  auto it = flags_.find(name);
  CASC_CHECK(it != flags_.end()) << "undefined flag --" << name;
  CASC_CHECK(it->second.kind == kind)
      << "flag --" << name << " is not of type "
      << KindName(static_cast<int>(kind));
  return it->second;
}

int64_t FlagParser::GetInt64(const std::string& name) const {
  return GetFlag(name, Kind::kInt64).int_value;
}

double FlagParser::GetDouble(const std::string& name) const {
  return GetFlag(name, Kind::kDouble).double_value;
}

const std::string& FlagParser::GetString(const std::string& name) const {
  return GetFlag(name, Kind::kString).string_value;
}

bool FlagParser::GetBool(const std::string& name) const {
  return GetFlag(name, Kind::kBool).bool_value;
}

std::string FlagParser::Usage(const std::string& program_name) const {
  std::string out = "usage: " + program_name + " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    out += "  --" + name + " (" + KindName(static_cast<int>(flag.kind)) +
           "): " + flag.help + "\n";
  }
  return out;
}

}  // namespace casc
