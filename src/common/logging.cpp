#include "common/logging.h"

#include <atomic>
#include <cstdio>

namespace casc {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarning};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

}  // namespace

LogLevel GlobalLogLevel() { return g_level.load(std::memory_order_relaxed); }

void SetGlobalLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= GlobalLogLevel()) {
  if (enabled_) {
    stream_ << "[" << LevelTag(level) << " " << file << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
}

}  // namespace internal_logging
}  // namespace casc
