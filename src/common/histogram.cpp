#include "common/histogram.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/strings.h"

namespace casc {

void SummaryStats::Add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double SummaryStats::Mean() const { return count_ == 0 ? 0.0 : mean_; }

double SummaryStats::Variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double SummaryStats::StdDev() const { return std::sqrt(Variance()); }

double SummaryStats::StdError() const {
  if (count_ < 2) return 0.0;
  return StdDev() / std::sqrt(static_cast<double>(count_));
}

double SummaryStats::Min() const { return count_ == 0 ? 0.0 : min_; }

double SummaryStats::Max() const { return count_ == 0 ? 0.0 : max_; }

std::string SummaryStats::ToString(int digits) const {
  return FormatDouble(Mean(), digits) + " +- " +
         FormatDouble(StdError(), digits) + " (" +
         FormatDouble(Min(), digits) + ".." + FormatDouble(Max(), digits) +
         ", n=" + std::to_string(count_) + ")";
}

QuantileSketch::QuantileSketch(int capacity) : capacity_(capacity) {
  CASC_CHECK_GE(capacity, 1);
  samples_.reserve(static_cast<size_t>(capacity));
}

void QuantileSketch::Add(double value) {
  // Systematic thinning: once the reservoir fills, double the stride and
  // keep every other retained sample, then admit every stride-th new
  // observation. Deterministic, and the retained set stays an evenly
  // spaced subsequence of the input stream.
  if (count_ % stride_ == 0) {
    if (static_cast<int>(samples_.size()) == capacity_) {
      size_t keep = 0;
      for (size_t i = 0; i < samples_.size(); i += 2) {
        samples_[keep++] = samples_[i];
      }
      samples_.resize(keep);
      stride_ *= 2;
      if (count_ % stride_ == 0) samples_.push_back(value);
    } else {
      samples_.push_back(value);
    }
    sorted_valid_ = false;
  }
  ++count_;
}

double QuantileSketch::Quantile(double p) const {
  CASC_CHECK_GE(p, 0.0);
  CASC_CHECK_LE(p, 1.0);
  if (samples_.empty()) return 0.0;  // n = 0: nothing to summarize
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
  // Position p * (n - 1) with linear interpolation between neighbors;
  // n = 1 collapses to the single sample for every p.
  const double position = p * static_cast<double>(sorted_.size() - 1);
  const size_t below = static_cast<size_t>(position);
  if (below + 1 >= sorted_.size()) return sorted_.back();
  const double within = position - static_cast<double>(below);
  return sorted_[below] + within * (sorted_[below + 1] - sorted_[below]);
}

void QuantileSketch::Reset() {
  count_ = 0;
  stride_ = 1;
  samples_.clear();
  sorted_valid_ = false;
}

Histogram::Histogram(double lo, double hi, int buckets) : lo_(lo), hi_(hi) {
  CASC_CHECK_LT(lo, hi);
  CASC_CHECK_GE(buckets, 1);
  counts_.assign(static_cast<size_t>(buckets), 0);
}

void Histogram::Add(double value) {
  const double fraction = (value - lo_) / (hi_ - lo_);
  int bucket = static_cast<int>(fraction * num_buckets());
  bucket = std::clamp(bucket, 0, num_buckets() - 1);
  ++counts_[static_cast<size_t>(bucket)];
  ++total_;
}

int64_t Histogram::BucketCount(int bucket) const {
  CASC_CHECK_GE(bucket, 0);
  CASC_CHECK_LT(bucket, num_buckets());
  return counts_[static_cast<size_t>(bucket)];
}

std::pair<double, double> Histogram::BucketBounds(int bucket) const {
  CASC_CHECK_GE(bucket, 0);
  CASC_CHECK_LT(bucket, num_buckets());
  const double width = (hi_ - lo_) / num_buckets();
  return {lo_ + bucket * width, lo_ + (bucket + 1) * width};
}

double Histogram::Quantile(double quantile) const {
  CASC_CHECK_GE(quantile, 0.0);
  CASC_CHECK_LE(quantile, 1.0);
  CASC_CHECK_GT(total_, 0);
  const double target = quantile * static_cast<double>(total_);
  double cumulative = 0.0;
  for (int b = 0; b < num_buckets(); ++b) {
    const double next =
        cumulative + static_cast<double>(counts_[static_cast<size_t>(b)]);
    if (next >= target) {
      const auto [bucket_lo, bucket_hi] = BucketBounds(b);
      const int64_t in_bucket = counts_[static_cast<size_t>(b)];
      if (in_bucket == 0) return bucket_lo;
      const double within =
          (target - cumulative) / static_cast<double>(in_bucket);
      return bucket_lo + within * (bucket_hi - bucket_lo);
    }
    cumulative = next;
  }
  return hi_;
}

std::string Histogram::ToString(int bar_width) const {
  int64_t peak = 1;
  for (const int64_t count : counts_) peak = std::max(peak, count);
  std::string out;
  for (int b = 0; b < num_buckets(); ++b) {
    const auto [bucket_lo, bucket_hi] = BucketBounds(b);
    const int64_t count = counts_[static_cast<size_t>(b)];
    const int bar = static_cast<int>(
        static_cast<double>(count) / static_cast<double>(peak) * bar_width);
    out += '[';
    out += FormatDouble(bucket_lo, 2);
    out += ", ";
    out += FormatDouble(bucket_hi, 2);
    out += ") ";
    out.append(static_cast<size_t>(bar), '#');
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

}  // namespace casc
