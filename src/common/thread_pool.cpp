#include "common/thread_pool.h"

#include <algorithm>

#include "common/check.h"

namespace casc {

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(num_threads, 1)) {
  threads_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int i = 0; i < num_threads_ - 1; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

int ThreadPool::DefaultThreads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::RunChunk(int chunk_index) {
  const auto [begin, end] = ChunkBounds(count_, num_threads_, chunk_index);
  for (int64_t i = begin; i < end; ++i) (*fn_)(i);
}

void ThreadPool::ParallelFor(int64_t count,
                             const std::function<void(int64_t)>& fn) {
  if (count <= 0) return;
  if (threads_.empty()) {
    for (int64_t i = 0; i < count; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    CASC_CHECK(fn_ == nullptr) << "ThreadPool::ParallelFor cannot nest";
    fn_ = &fn;
    count_ = count;
    pending_ = static_cast<int>(threads_.size());
    ++epoch_;
  }
  start_cv_.notify_all();
  RunChunk(0);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] { return pending_ == 0; });
    fn_ = nullptr;
  }
}

void ThreadPool::WorkerLoop(int worker_index) {
  uint64_t seen_epoch = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [this, seen_epoch] {
        return shutdown_ || epoch_ != seen_epoch;
      });
      if (shutdown_) return;
      seen_epoch = epoch_;
    }
    RunChunk(worker_index + 1);
    bool last = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      last = --pending_ == 0;
    }
    if (last) done_cv_.notify_one();
  }
}

}  // namespace casc
