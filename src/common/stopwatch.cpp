#include "common/stopwatch.h"

// Stopwatch and AccumulatingTimer are header-only; this translation unit
// exists so the target has a stable archive member and to catch ODR issues
// early in CI-style builds.
