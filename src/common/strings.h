#ifndef CASC_COMMON_STRINGS_H_
#define CASC_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace casc {

/// Splits `text` on `delimiter`, keeping empty fields.
std::vector<std::string> StrSplit(std::string_view text, char delimiter);

/// Joins `parts` with `separator`.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view separator);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

/// Parses a double; returns false on malformed input or trailing garbage.
bool ParseDouble(std::string_view text, double* out);

/// Parses a signed 64-bit integer; returns false on malformed input.
bool ParseInt64(std::string_view text, int64_t* out);

/// Formats `value` with `digits` digits after the decimal point.
std::string FormatDouble(double value, int digits);

/// Returns true if `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

}  // namespace casc

#endif  // CASC_COMMON_STRINGS_H_
