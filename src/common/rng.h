#ifndef CASC_COMMON_RNG_H_
#define CASC_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace casc {

/// Deterministic, seedable pseudo-random number generator.
///
/// Implements xoshiro256** seeded through splitmix64, so the whole library
/// produces identical streams for a given seed on every platform — the
/// experiment harness relies on this for reproducible figures. The class
/// satisfies the UniformRandomBitGenerator concept and can be plugged into
/// <random> distributions, but the convenience members below are preferred
/// because libstdc++/libc++ distributions are not cross-stdlib stable.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the generator; equal seeds yield equal streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~uint64_t{0}; }

  /// Returns the next 64 raw bits.
  uint64_t operator()() { return Next(); }

  /// Returns the next 64 raw bits.
  uint64_t Next();

  /// Returns a double uniform in [0, 1).
  double Uniform();

  /// Returns a double uniform in [lo, hi). Requires lo <= hi.
  double Uniform(double lo, double hi);

  /// Returns an integer uniform in [0, n). Requires n > 0. Unbiased.
  uint64_t UniformInt(uint64_t n);

  /// Returns an integer uniform in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Returns a sample from the standard normal distribution
  /// (Marsaglia polar method).
  double Gaussian();

  /// Returns a sample from N(mean, stddev^2).
  double Gaussian(double mean, double stddev);

  /// Returns a standard-normal sample rejected outside [-bound, bound].
  /// Requires bound > 0.
  double TruncatedGaussian(double bound);

  /// Returns true with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Returns a Zipf(s)-distributed integer in [1, n].
  /// Uses inverse-CDF over precomputable weights; O(log n) per draw after
  /// an O(n) table build the first time a given n is used.
  uint64_t Zipf(uint64_t n, double s);

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(UniformInt(i));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Forks an independent generator; deterministic given this state.
  Rng Split();

 private:
  uint64_t state_[4];
  // Cached second sample from the polar method.
  double gaussian_spare_ = 0.0;
  bool has_gaussian_spare_ = false;
  // Cached Zipf CDF for the most recent (n, s) pair.
  std::vector<double> zipf_cdf_;
  uint64_t zipf_n_ = 0;
  double zipf_s_ = -1.0;
};

}  // namespace casc

#endif  // CASC_COMMON_RNG_H_
