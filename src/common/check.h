#ifndef CASC_COMMON_CHECK_H_
#define CASC_COMMON_CHECK_H_

#include <sstream>
#include <string>

namespace casc {
namespace internal_check {

/// Accumulates a failure message and aborts the process when destroyed.
///
/// Used by the CASC_CHECK family of macros; not intended for direct use.
class CheckFailureStream {
 public:
  CheckFailureStream(const char* condition, const char* file, int line);

  CheckFailureStream(const CheckFailureStream&) = delete;
  CheckFailureStream& operator=(const CheckFailureStream&) = delete;

  /// Aborts the process after flushing the accumulated message to stderr.
  [[noreturn]] ~CheckFailureStream();

  /// Appends extra context to the failure message.
  template <typename T>
  CheckFailureStream& operator<<(const T& value) {
    message_ << value;
    return *this;
  }

 private:
  std::ostringstream message_;
};

}  // namespace internal_check
}  // namespace casc

/// Aborts with a diagnostic if `condition` is false. Always evaluated,
/// including in release builds: the library treats violated preconditions
/// as programmer errors (Google style: no exceptions).
#define CASC_CHECK(condition)                                         \
  if (!(condition))                                                   \
  ::casc::internal_check::CheckFailureStream(#condition, __FILE__, __LINE__)

/// Binary comparison checks that report both operand values on failure.
#define CASC_CHECK_OP(op, lhs, rhs)                                  \
  if (!((lhs)op(rhs)))                                               \
  ::casc::internal_check::CheckFailureStream(#lhs " " #op " " #rhs,  \
                                             __FILE__, __LINE__)     \
      << " (lhs=" << (lhs) << ", rhs=" << (rhs) << ") "

#define CASC_CHECK_EQ(lhs, rhs) CASC_CHECK_OP(==, lhs, rhs)
#define CASC_CHECK_NE(lhs, rhs) CASC_CHECK_OP(!=, lhs, rhs)
#define CASC_CHECK_LT(lhs, rhs) CASC_CHECK_OP(<, lhs, rhs)
#define CASC_CHECK_LE(lhs, rhs) CASC_CHECK_OP(<=, lhs, rhs)
#define CASC_CHECK_GT(lhs, rhs) CASC_CHECK_OP(>, lhs, rhs)
#define CASC_CHECK_GE(lhs, rhs) CASC_CHECK_OP(>=, lhs, rhs)

/// Debug-only variant; compiled out in NDEBUG builds.
#ifdef NDEBUG
#define CASC_DCHECK(condition) \
  if (false) CASC_CHECK(condition)
#else
#define CASC_DCHECK(condition) CASC_CHECK(condition)
#endif

#endif  // CASC_COMMON_CHECK_H_
