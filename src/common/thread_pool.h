#ifndef CASC_COMMON_THREAD_POOL_H_
#define CASC_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace casc {

/// Fixed-size thread pool for deterministic data parallelism.
///
/// ParallelFor(count, fn) splits [0, count) into num_threads() contiguous
/// chunks — chunk k always covers indices [count*k/T, count*(k+1)/T) — and
/// runs fn over each chunk on its own thread, blocking until every index
/// is done. There is no work stealing and no shared queue: the static
/// partition makes the index-to-thread mapping reproducible run to run,
/// which the speculative best-response engine relies on for bit-identical
/// serial/parallel results (the partition only decides *where* an index
/// runs, never *what* it computes).
///
/// The calling thread executes chunk 0 itself; the pool spawns
/// num_threads - 1 workers. A pool constructed with num_threads <= 1 runs
/// everything inline and spawns nothing, so a ThreadPool(1) member is a
/// zero-cost way to keep one code path.
///
/// `fn` must not throw, must not call back into the pool (no nesting),
/// and must only write to disjoint state per index.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Runs fn(i) for every i in [0, count); returns once all are done.
  void ParallelFor(int64_t count, const std::function<void(int64_t)>& fn);

  /// The contiguous sub-range of [0, count) that ParallelFor assigns to
  /// chunk `chunk` of `chunks`: [count*chunk/chunks, count*(chunk+1)/chunks).
  /// Callers that fan out one ParallelFor index per chunk (to keep
  /// per-thread scratch) use this to partition exactly like the pool
  /// itself, so a later pass over the same count realigns with the
  /// per-chunk buffers of an earlier pass.
  static std::pair<int64_t, int64_t> ChunkBounds(int64_t count, int chunks,
                                                 int chunk) {
    const int64_t begin = count * chunk / chunks;
    const int64_t end = count * (chunk + 1) / chunks;
    return {begin, end};
  }

  /// The hardware concurrency, at least 1.
  static int DefaultThreads();

 private:
  void WorkerLoop(int worker_index);
  void RunChunk(int chunk_index);

  int num_threads_;
  std::vector<std::thread> threads_;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  uint64_t epoch_ = 0;  // bumped once per ParallelFor
  int pending_ = 0;     // workers still running the current epoch
  bool shutdown_ = false;
  int64_t count_ = 0;
  const std::function<void(int64_t)>* fn_ = nullptr;
};

}  // namespace casc

#endif  // CASC_COMMON_THREAD_POOL_H_
