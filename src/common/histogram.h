#ifndef CASC_COMMON_HISTOGRAM_H_
#define CASC_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace casc {

/// Streaming summary statistics (count / mean / variance via Welford,
/// min / max) used by the experiment harness to report per-batch
/// dispersion, not just totals.
class SummaryStats {
 public:
  /// Folds one observation in.
  void Add(double value);

  int64_t Count() const { return count_; }
  double Mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double Variance() const;
  double StdDev() const;
  /// Standard error of the mean; 0 for fewer than two samples.
  double StdError() const;
  double Min() const;
  double Max() const;

  /// "mean ± stderr (min..max, n=count)" with the given precision.
  std::string ToString(int digits = 3) const;

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-capacity quantile estimator: a deterministic reservoir that
/// keeps the first `capacity` observations exactly and then thins to
/// every k-th observation (systematic sampling — no RNG, so identical
/// input streams always produce identical quantiles). Exact while the
/// sample count stays at or below the capacity, which covers the
/// intended uses (per-batch network round-trip times: tens to a few
/// thousand observations). Companion to SummaryStats where a mean and
/// extremes are not enough and a full Histogram's fixed range is
/// unknown up front.
class QuantileSketch {
 public:
  /// `capacity` >= 1 samples are retained.
  explicit QuantileSketch(int capacity = 1024);

  void Add(double value);

  /// Total observations folded in (not the retained count).
  int64_t Count() const { return count_; }

  /// Value at quantile `p` in [0, 1] with linear interpolation between
  /// retained order statistics: p = 0 is the minimum retained sample,
  /// p = 1 the maximum, and with n = 0 the sketch returns 0.0 (there is
  /// nothing to summarize); n = 1 returns the single sample for every p.
  double Quantile(double p) const;

  /// Drops all samples (capacity kept).
  void Reset();

 private:
  int capacity_;
  int64_t count_ = 0;
  int64_t stride_ = 1;  ///< keep every stride-th observation once full
  std::vector<double> samples_;
  mutable std::vector<double> sorted_;  ///< lazily rebuilt scratch
  mutable bool sorted_valid_ = false;
};

/// Fixed-range linear histogram for diagnosing distributions (e.g. the
/// per-worker valid-task counts of a batch). Out-of-range samples clamp
/// into the edge buckets.
class Histogram {
 public:
  /// Buckets of equal width covering [lo, hi). Requires lo < hi,
  /// buckets >= 1.
  Histogram(double lo, double hi, int buckets);

  void Add(double value);

  int64_t TotalCount() const { return total_; }
  int num_buckets() const { return static_cast<int>(counts_.size()); }
  int64_t BucketCount(int bucket) const;
  /// [inclusive lower, exclusive upper) bounds of a bucket.
  std::pair<double, double> BucketBounds(int bucket) const;

  /// Value below which `quantile` of the mass lies (linear within the
  /// bucket). Requires quantile in [0, 1] and at least one sample.
  double Quantile(double quantile) const;

  /// Multi-line ASCII rendering with proportional bars.
  std::string ToString(int bar_width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<int64_t> counts_;
  int64_t total_ = 0;
};

}  // namespace casc

#endif  // CASC_COMMON_HISTOGRAM_H_
