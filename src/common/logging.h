#ifndef CASC_COMMON_LOGGING_H_
#define CASC_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace casc {

/// Severity of a log message, in increasing order.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Returns the global minimum severity; messages below it are dropped.
LogLevel GlobalLogLevel();

/// Sets the global minimum severity.
void SetGlobalLogLevel(LogLevel level);

namespace internal_logging {

/// Builds one log line and emits it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace casc

/// Streams a message at the given severity, e.g.
/// `CASC_LOG(kInfo) << "converged after " << rounds << " rounds";`
#define CASC_LOG(severity)                       \
  ::casc::internal_logging::LogMessage(          \
      ::casc::LogLevel::severity, __FILE__, __LINE__)

#endif  // CASC_COMMON_LOGGING_H_
