#include "common/rng.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace casc {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  CASC_CHECK_LE(lo, hi);
  return lo + (hi - lo) * Uniform();
}

uint64_t Rng::UniformInt(uint64_t n) {
  CASC_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  CASC_CHECK_LE(lo, hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(UniformInt(span));
}

double Rng::Gaussian() {
  if (has_gaussian_spare_) {
    has_gaussian_spare_ = false;
    return gaussian_spare_;
  }
  double u, v, s;
  do {
    u = Uniform(-1.0, 1.0);
    v = Uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  gaussian_spare_ = v * factor;
  has_gaussian_spare_ = true;
  return u * factor;
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

double Rng::TruncatedGaussian(double bound) {
  CASC_CHECK_GT(bound, 0.0);
  for (;;) {
    const double x = Gaussian();
    if (x >= -bound && x <= bound) return x;
  }
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return Uniform() < p;
}

uint64_t Rng::Zipf(uint64_t n, double s) {
  CASC_CHECK_GT(n, 0u);
  if (zipf_n_ != n || zipf_s_ != s) {
    zipf_cdf_.resize(n);
    double total = 0.0;
    for (uint64_t k = 1; k <= n; ++k) {
      total += 1.0 / std::pow(static_cast<double>(k), s);
      zipf_cdf_[k - 1] = total;
    }
    for (auto& c : zipf_cdf_) c /= total;
    zipf_n_ = n;
    zipf_s_ = s;
  }
  const double u = Uniform();
  const auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  return static_cast<uint64_t>(it - zipf_cdf_.begin()) + 1;
}

Rng Rng::Split() { return Rng(Next()); }

}  // namespace casc
