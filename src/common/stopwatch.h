#ifndef CASC_COMMON_STOPWATCH_H_
#define CASC_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace casc {

/// Wall-clock stopwatch used by the experiment harness to report per-batch
/// running times (Figures 2b-8b of the paper).
class Stopwatch {
 public:
  /// Starts the stopwatch immediately.
  Stopwatch() { Restart(); }

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Returns seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Returns milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Returns microseconds elapsed since construction or the last Restart().
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates elapsed time across multiple start/stop intervals; used to
/// aggregate per-round algorithm time while excluding setup.
class AccumulatingTimer {
 public:
  /// Begins an interval. Requires the timer to be stopped.
  void Start() {
    running_ = true;
    watch_.Restart();
  }

  /// Ends the current interval and folds it into the total.
  void Stop() {
    if (running_) {
      total_seconds_ += watch_.ElapsedSeconds();
      running_ = false;
    }
  }

  /// Total accumulated seconds over all completed intervals.
  double TotalSeconds() const { return total_seconds_; }

  /// Clears the accumulated total.
  void Reset() {
    total_seconds_ = 0.0;
    running_ = false;
  }

 private:
  Stopwatch watch_;
  double total_seconds_ = 0.0;
  bool running_ = false;
};

}  // namespace casc

#endif  // CASC_COMMON_STOPWATCH_H_
