#ifndef CASC_COMMON_FLAGS_H_
#define CASC_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace casc {

/// Minimal command-line flag parser for the bench and example binaries.
///
/// Accepts `--name=value`, `--name value`, and bare `--name` for booleans.
/// Typical use:
///
///   FlagParser flags;
///   flags.DefineInt64("workers", 1000, "workers per batch");
///   flags.DefineDouble("epsilon", 0.05, "TSI stop threshold");
///   CASC_CHECK(flags.Parse(argc, argv).ok());
///   int64_t m = flags.GetInt64("workers");
class FlagParser {
 public:
  /// Registers an integer flag with a default value.
  void DefineInt64(const std::string& name, int64_t default_value,
                   const std::string& help);

  /// Registers a floating-point flag with a default value.
  void DefineDouble(const std::string& name, double default_value,
                    const std::string& help);

  /// Registers a string flag with a default value.
  void DefineString(const std::string& name, const std::string& default_value,
                    const std::string& help);

  /// Registers a boolean flag with a default value.
  void DefineBool(const std::string& name, bool default_value,
                  const std::string& help);

  /// Parses argv. Unknown flags and malformed values produce an error.
  /// Positional (non `--`) arguments are collected into positional().
  Status Parse(int argc, const char* const* argv);

  int64_t GetInt64(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  const std::string& GetString(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  /// Arguments that were not flags, in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Renders a usage string listing all registered flags.
  std::string Usage(const std::string& program_name) const;

 private:
  enum class Kind { kInt64, kDouble, kString, kBool };

  struct Flag {
    Kind kind;
    std::string help;
    int64_t int_value = 0;
    double double_value = 0.0;
    std::string string_value;
    bool bool_value = false;
  };

  Status SetValue(const std::string& name, const std::string& value);
  const Flag& GetFlag(const std::string& name, Kind kind) const;

  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace casc

#endif  // CASC_COMMON_FLAGS_H_
