#ifndef CASC_SERVICE_SHARD_MAP_H_
#define CASC_SERVICE_SHARD_MAP_H_

#include <string>
#include <vector>

#include "geo/rect.h"
#include "model/task.h"
#include "model/worker.h"

namespace casc {

/// Configuration of the spatial partition used by the dispatch service.
struct ShardMapConfig {
  /// The world is cut into shards_per_side x shards_per_side equal
  /// rectangles (S = 1 degenerates to the monolithic path).
  int shards_per_side = 4;

  /// The area being partitioned. Locations outside it are clamped into
  /// the border shards, mirroring GridIndex's convention.
  Rect world{0.0, 0.0, 1.0, 1.0};
};

/// Per-shard load counters emitted for monitoring and bench output.
struct ShardLoadStats {
  std::vector<int> workers_per_shard;  ///< home workers per shard (phase 1)
  std::vector<int> tasks_per_shard;
  int interior_workers = 0;
  int boundary_workers = 0;
  int max_shard_workers = 0;
  int max_shard_tasks = 0;
};

/// Partition of one batch's workers and tasks onto an SxS grid of shards.
///
/// Every task belongs to exactly one shard — the one containing its
/// location. By the working-radius constraint of Definition 3, all of a
/// worker's valid tasks lie inside its reach disk (center l_i, radius
/// r_i), so a worker whose disk stays within one shard (an **interior**
/// worker) can be assigned entirely inside it, while a worker reaching
/// several (a **boundary** worker) needs cross-shard arbitration.
/// Classification uses the disk's bounding-box cell range — slightly
/// conservative (a disk grazing a corner counts as boundary), but the
/// monotone interval argument makes "interior worker => every valid
/// task in its shard" exact under floating point. Workers located
/// outside the world rectangle are conservatively classified boundary.
///
/// Every worker also has a **home shard** — the one containing its
/// (clamped) location. Phase 1 solves each shard over its home workers,
/// with boundary members restricted to home-shard tasks; phase 2 then
/// re-arbitrates the boundary workers across shards.
///
/// Indices are positions in the `workers`/`tasks` vectors handed to the
/// constructor (i.e. global Instance indices). All per-shard lists are
/// ascending, making downstream iteration deterministic.
class ShardMap {
 public:
  ShardMap(const std::vector<Worker>& workers,
           const std::vector<Task>& tasks, const ShardMapConfig& config);

  int shards_per_side() const { return config_.shards_per_side; }
  int num_shards() const {
    return config_.shards_per_side * config_.shards_per_side;
  }
  const Rect& world() const { return config_.world; }

  /// The rectangle of shard `s` (row-major: s = cy * S + cx).
  Rect ShardRect(int shard) const;

  /// The shard whose rectangle contains `p` (clamped into the border
  /// shards for out-of-world points).
  int ShardOfPoint(const Point& p) const;

  /// Shards whose rectangles intersect the disk (center, radius), in
  /// ascending shard order. Non-empty for centers inside the world.
  std::vector<int> ShardsTouched(const Point& center, double radius) const;

  /// Tasks located in shard `s`, ascending task index.
  const std::vector<TaskIndex>& TasksOf(int shard) const;

  /// Interior workers of shard `s`, ascending worker index.
  const std::vector<WorkerIndex>& InteriorWorkersOf(int shard) const;

  /// All workers whose home shard is `s` (interior workers of `s` plus
  /// the boundary workers located in it), ascending worker index. The
  /// per-shard lists partition the workers; phase 1 solves each shard
  /// over exactly this list.
  const std::vector<WorkerIndex>& HomeWorkersOf(int shard) const;

  /// True when worker `w` was classified boundary.
  bool IsBoundary(WorkerIndex w) const {
    return is_boundary_[static_cast<size_t>(w)];
  }

  /// Boundary workers (reach disk touches several shards, or located
  /// outside the world), ascending worker index — the deterministic
  /// global order phase 2 processes them in.
  const std::vector<WorkerIndex>& boundary_workers() const {
    return boundary_workers_;
  }

  int num_interior_workers() const { return num_interior_workers_; }

  /// Load counters for monitoring/benching.
  ShardLoadStats LoadStats() const;

 private:
  int CellOf(double coord, double lo, double width) const;

  ShardMapConfig config_;
  double cell_width_;
  double cell_height_;
  std::vector<std::vector<TaskIndex>> shard_tasks_;
  std::vector<std::vector<WorkerIndex>> interior_workers_;
  std::vector<std::vector<WorkerIndex>> home_workers_;
  std::vector<WorkerIndex> boundary_workers_;
  std::vector<bool> is_boundary_;
  int num_interior_workers_ = 0;
};

}  // namespace casc

#endif  // CASC_SERVICE_SHARD_MAP_H_
