#include "service/shard_executor.h"

#include <optional>
#include <utility>

#include "common/check.h"
#include "common/stopwatch.h"
#include "model/valid_pair_index.h"

namespace casc {
namespace {

/// Builds shard `s`'s local instance. `task_shard`/`task_local` map every
/// global task index to its shard and position within that shard's list
/// (-1 when absent). `workspace` recycles the CSR pair index across
/// batches.
ShardProblem BuildOne(const Instance& global, const ShardMap& map, int s,
                      const std::vector<int>& task_shard,
                      const std::vector<int>& task_local,
                      const SolveDelta* delta, BatchWorkspace* workspace) {
  const std::vector<WorkerIndex>& global_workers = map.HomeWorkersOf(s);
  const std::vector<TaskIndex>& global_tasks = map.TasksOf(s);

  std::vector<Worker> workers;
  workers.reserve(global_workers.size());
  std::vector<int> coop_ids;
  coop_ids.reserve(global_workers.size());
  for (const WorkerIndex gw : global_workers) {
    workers.push_back(global.workers()[static_cast<size_t>(gw)]);
    coop_ids.push_back(gw);
  }
  std::vector<Task> tasks;
  tasks.reserve(global_tasks.size());
  for (const TaskIndex gt : global_tasks) {
    tasks.push_back(global.tasks()[static_cast<size_t>(gt)]);
  }

  Instance local(std::move(workers), std::move(tasks),
                 global.coop().View(std::move(coop_ids)), global.now(),
                 global.min_group_size());
  // The shard sub-problem scores under the same objective as the global
  // instance (the Worker/Task copies above already carried the skill
  // masks a variant objective reads).
  local.set_objective(&global.objective());

  // Local valid pairs are the global lists filtered to this shard and
  // remapped, written straight into a (recycled) CSR index; ascending
  // order is preserved because the per-shard lists are ascending in the
  // global index. An interior worker's valid tasks all live in its shard
  // by construction (the invariant phase 1 rests on — CHECKed); a
  // boundary home worker keeps only its home-shard tasks here and is
  // re-arbitrated across shards in phase 2. The task-major candidate
  // lists fall out of FinishBuild's counting pass — identical to the old
  // per-task filter of global.Candidates because HomeWorkersOf is
  // ascending in the global worker index.
  ValidPairIndex csr = workspace->AcquireValidPairIndex();
  csr.BeginBuild(static_cast<int>(global_workers.size()),
                 static_cast<int>(global_tasks.size()));
  for (size_t lw = 0; lw < global_workers.size(); ++lw) {
    const WorkerIndex gw = global_workers[lw];
    const bool boundary = map.IsBoundary(gw);
    for (const TaskIndex gt : global.ValidTasks(gw)) {
      if (boundary) {
        if (task_shard[static_cast<size_t>(gt)] != s) continue;
      } else {
        CASC_CHECK_EQ(task_shard[static_cast<size_t>(gt)], s)
            << "interior worker " << gw << " has valid task " << gt
            << " outside its shard — ShardMap classification is broken";
      }
      csr.AppendValidTask(task_local[static_cast<size_t>(gt)]);
    }
    csr.FinishWorker();
  }
  csr.FinishBuild();
  local.AdoptValidPairs(std::move(csr));

  ShardProblem problem{std::move(local), global_workers, global_tasks, {}};
  // Slice the batch's warm-start delta to this shard: remap retained
  // seeds to local task indices, keep the global dirty flags, and treat
  // an off-shard seed as lost (seedless + dirty) — the restriction of a
  // capacity-feasible global skeleton to a worker subset stays
  // capacity-feasible, and the local seed is a local valid pair because
  // the CSR above keeps exactly the home-shard tasks of each worker's
  // global valid list. Deterministic per shard, so the warm sharded path
  // stays independent of thread count and scheduling.
  if (delta != nullptr && delta->num_carried > 0) {
    SolveDelta& sliced = problem.delta;
    const size_t local_workers = problem.global_workers.size();
    sliced.seed_task.assign(local_workers, kNoTask);
    sliced.dirty.assign(local_workers, 0);
    for (size_t lw = 0; lw < local_workers; ++lw) {
      const size_t gw = static_cast<size_t>(problem.global_workers[lw]);
      sliced.dirty[lw] = delta->dirty[gw];
      const TaskIndex gseed = delta->seed_task[gw];
      if (gseed == kNoTask) continue;
      if (task_shard[static_cast<size_t>(gseed)] == s) {
        sliced.seed_task[lw] =
            static_cast<TaskIndex>(task_local[static_cast<size_t>(gseed)]);
        ++sliced.num_seeded;
      } else {
        sliced.dirty[lw] = 1;  // seed lost to another shard: re-solve
      }
    }
    // Locally carried = clean or still seeded. (A carried worker whose
    // seed died reads as fresh here — conservative, and deterministic for
    // any shard layout.)
    for (size_t lw = 0; lw < local_workers; ++lw) {
      sliced.num_dirty += sliced.dirty[lw];
      if (sliced.dirty[lw] == 0 || sliced.seed_task[lw] != kNoTask) {
        ++sliced.num_carried;
      }
    }
    const size_t local_tasks = problem.global_tasks.size();
    sliced.dirty_task.assign(local_tasks, 0);
    for (size_t lt = 0; lt < local_tasks; ++lt) {
      const size_t gt = static_cast<size_t>(problem.global_tasks[lt]);
      sliced.dirty_task[lt] = delta->dirty_task[gt];
      sliced.num_dirty_tasks += sliced.dirty_task[lt];
    }
  }
  return problem;
}

}  // namespace

ShardExecutor::ShardExecutor(int num_threads) : pool_(num_threads) {}

void ShardExecutor::EnsureWorkspaces(int count) {
  while (static_cast<int>(workspaces_.size()) < count) {
    workspaces_.push_back(std::make_unique<BatchWorkspace>());
  }
}

std::vector<ShardProblem> ShardExecutor::BuildProblems(
    const Instance& global, const ShardMap& map, const SolveDelta* delta) {
  CASC_CHECK(global.valid_pairs_ready())
      << "compute the global valid pairs before sharding";
  const int num_shards = map.num_shards();
  EnsureWorkspaces(num_shards);

  // Global task -> (shard, local position), one serial pass. Worker-side
  // maps are no longer needed: the CSR FinishBuild pass derives each
  // task's candidate list from the worker-major lists.
  std::vector<int> task_shard(static_cast<size_t>(global.num_tasks()), -1);
  std::vector<int> task_local(static_cast<size_t>(global.num_tasks()), -1);
  for (int s = 0; s < num_shards; ++s) {
    const std::vector<TaskIndex>& tasks = map.TasksOf(s);
    for (size_t i = 0; i < tasks.size(); ++i) {
      task_shard[static_cast<size_t>(tasks[i])] = s;
      task_local[static_cast<size_t>(tasks[i])] = static_cast<int>(i);
    }
  }

  std::vector<std::optional<ShardProblem>> built(
      static_cast<size_t>(num_shards));
  pool_.ParallelFor(num_shards, [&](int64_t s) {
    built[static_cast<size_t>(s)] =
        BuildOne(global, map, static_cast<int>(s), task_shard, task_local,
                 delta, workspaces_[static_cast<size_t>(s)].get());
  });

  std::vector<ShardProblem> problems;
  problems.reserve(static_cast<size_t>(num_shards));
  for (auto& problem : built) {
    problems.push_back(std::move(*problem));
  }
  return problems;
}

void ShardExecutor::RecycleProblems(std::vector<ShardProblem>* problems) {
  CASC_CHECK(problems != nullptr);
  EnsureWorkspaces(static_cast<int>(problems->size()));
  for (size_t s = 0; s < problems->size(); ++s) {
    Instance& instance = (*problems)[s].instance;
    if (!instance.valid_pairs_ready()) continue;
    workspaces_[s]->Recycle(instance.ReleaseValidPairs());
  }
}

std::optional<Assignment> ShardExecutor::SolveProblem(
    const ShardProblem& problem, const AssignerFactory& factory,
    BatchWorkspace* workspace, double* seconds, AssignerStats* stats,
    bool use_delta) {
  CASC_CHECK(factory != nullptr);
  if (problem.instance.num_workers() == 0 ||
      problem.instance.num_tasks() == 0) {
    return std::nullopt;  // nothing to assign; fold treats absent as empty
  }
  Stopwatch watch;
  const std::unique_ptr<Assigner> solver = factory();
  solver->set_workspace(workspace);
  if (use_delta && problem.delta.num_carried > 0) {
    solver->set_solve_delta(&problem.delta);
  }
  std::optional<Assignment> local = solver->Run(problem.instance);
  if (seconds != nullptr) *seconds = watch.ElapsedSeconds();
  if (stats != nullptr) *stats = solver->stats();
  return local;
}

void ShardExecutor::FoldProblem(const ShardProblem& problem,
                                const Assignment& local, Assignment* global) {
  CASC_CHECK(global != nullptr);
  local.ForEachPair([&](WorkerIndex lw, TaskIndex lt) {
    global->Assign(problem.global_workers[static_cast<size_t>(lw)],
                   problem.global_tasks[static_cast<size_t>(lt)]);
  });
}

Assignment ShardExecutor::Run(const Instance& global,
                              const std::vector<ShardProblem>& problems,
                              const AssignerFactory& factory,
                              std::vector<double>* shard_seconds,
                              BatchWorkspace* global_workspace,
                              std::vector<AssignerStats>* shard_stats,
                              const ShardFaultHook& fault_hook,
                              int batch_index,
                              std::vector<int>* dropped_shards) {
  CASC_CHECK(factory != nullptr);
  const int num_shards = static_cast<int>(problems.size());
  EnsureWorkspaces(num_shards);
  std::vector<std::optional<Assignment>> locals(
      static_cast<size_t>(num_shards));
  std::vector<double> seconds(static_cast<size_t>(num_shards), 0.0);
  if (shard_stats != nullptr) {
    shard_stats->assign(static_cast<size_t>(num_shards), AssignerStats{});
  }

  pool_.ParallelFor(num_shards, [&](int64_t s) {
    const size_t i = static_cast<size_t>(s);
    locals[i] = SolveProblem(problems[i], factory, workspaces_[i].get(),
                             &seconds[i],
                             shard_stats != nullptr ? &(*shard_stats)[i]
                                                    : nullptr);
  });

  // Deterministic fold: ascending shard order, local insertion order.
  // Shards are disjoint in both workers and tasks, so group insertion
  // order within any task matches the local solver's order exactly.
  // The fault hook fires here (serial, ascending) so the dropped set is
  // deterministic too.
  Assignment assignment = global_workspace != nullptr
                              ? global_workspace->AcquireAssignment(global)
                              : Assignment(global);
  for (int s = 0; s < num_shards; ++s) {
    if (!locals[static_cast<size_t>(s)].has_value()) continue;
    Assignment& local = *locals[static_cast<size_t>(s)];
    if (fault_hook != nullptr && fault_hook(batch_index, s)) {
      if (dropped_shards != nullptr) dropped_shards->push_back(s);
    } else {
      FoldProblem(problems[static_cast<size_t>(s)], local, &assignment);
    }
    workspaces_[static_cast<size_t>(s)]->Recycle(std::move(local));
  }
  if (shard_seconds != nullptr) *shard_seconds = std::move(seconds);
  return assignment;
}

}  // namespace casc
