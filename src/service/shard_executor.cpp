#include "service/shard_executor.h"

#include <optional>
#include <utility>

#include "common/check.h"
#include "common/stopwatch.h"

namespace casc {
namespace {

/// Builds shard `s`'s local instance. `task_shard`/`task_local` and
/// `worker_shard`/`worker_local` map every global index to its shard and
/// position within that shard's list (-1 when absent, e.g. boundary
/// workers).
ShardProblem BuildOne(const Instance& global, const ShardMap& map, int s,
                      const std::vector<int>& task_shard,
                      const std::vector<int>& task_local,
                      const std::vector<int>& worker_shard,
                      const std::vector<int>& worker_local) {
  const std::vector<WorkerIndex>& global_workers = map.HomeWorkersOf(s);
  const std::vector<TaskIndex>& global_tasks = map.TasksOf(s);

  std::vector<Worker> workers;
  workers.reserve(global_workers.size());
  std::vector<int> coop_ids;
  coop_ids.reserve(global_workers.size());
  for (const WorkerIndex gw : global_workers) {
    workers.push_back(global.workers()[static_cast<size_t>(gw)]);
    coop_ids.push_back(gw);
  }
  std::vector<Task> tasks;
  tasks.reserve(global_tasks.size());
  for (const TaskIndex gt : global_tasks) {
    tasks.push_back(global.tasks()[static_cast<size_t>(gt)]);
  }

  Instance local(std::move(workers), std::move(tasks),
                 global.coop().View(std::move(coop_ids)), global.now(),
                 global.min_group_size());

  // Local valid pairs are the global lists filtered to this shard and
  // remapped; ascending order is preserved because the per-shard lists
  // are ascending in the global index. An interior worker's valid tasks
  // all live in its shard by construction (the invariant phase 1 rests
  // on — CHECKed); a boundary home worker keeps only its home-shard
  // tasks here and is re-arbitrated across shards in phase 2.
  std::vector<std::vector<TaskIndex>> valid_tasks(global_workers.size());
  for (size_t lw = 0; lw < global_workers.size(); ++lw) {
    const WorkerIndex gw = global_workers[lw];
    const std::vector<TaskIndex>& global_valid = global.ValidTasks(gw);
    const bool boundary = map.IsBoundary(gw);
    valid_tasks[lw].reserve(global_valid.size());
    for (const TaskIndex gt : global_valid) {
      if (boundary) {
        if (task_shard[static_cast<size_t>(gt)] != s) continue;
      } else {
        CASC_CHECK_EQ(task_shard[static_cast<size_t>(gt)], s)
            << "interior worker " << gw << " has valid task " << gt
            << " outside its shard — ShardMap classification is broken";
      }
      valid_tasks[lw].push_back(task_local[static_cast<size_t>(gt)]);
    }
  }
  std::vector<std::vector<WorkerIndex>> candidates(global_tasks.size());
  for (size_t lt = 0; lt < global_tasks.size(); ++lt) {
    const TaskIndex gt = global_tasks[lt];
    for (const WorkerIndex gw : global.Candidates(gt)) {
      // Workers homed in other shards stay out; boundary workers among
      // them are reconciled across shards in phase 2.
      if (worker_shard[static_cast<size_t>(gw)] != s) continue;
      candidates[lt].push_back(worker_local[static_cast<size_t>(gw)]);
    }
  }
  local.AdoptValidPairs(std::move(valid_tasks), std::move(candidates));

  return ShardProblem{std::move(local), global_workers, global_tasks};
}

}  // namespace

ShardExecutor::ShardExecutor(int num_threads) : pool_(num_threads) {}

std::vector<ShardProblem> ShardExecutor::BuildProblems(
    const Instance& global, const ShardMap& map) {
  CASC_CHECK(global.valid_pairs_ready())
      << "compute the global valid pairs before sharding";
  const int num_shards = map.num_shards();

  // Global -> (shard, local position), one serial pass.
  std::vector<int> task_shard(static_cast<size_t>(global.num_tasks()), -1);
  std::vector<int> task_local(static_cast<size_t>(global.num_tasks()), -1);
  std::vector<int> worker_shard(static_cast<size_t>(global.num_workers()),
                                -1);
  std::vector<int> worker_local(static_cast<size_t>(global.num_workers()),
                                -1);
  for (int s = 0; s < num_shards; ++s) {
    const std::vector<TaskIndex>& tasks = map.TasksOf(s);
    for (size_t i = 0; i < tasks.size(); ++i) {
      task_shard[static_cast<size_t>(tasks[i])] = s;
      task_local[static_cast<size_t>(tasks[i])] = static_cast<int>(i);
    }
    const std::vector<WorkerIndex>& workers = map.HomeWorkersOf(s);
    for (size_t i = 0; i < workers.size(); ++i) {
      worker_shard[static_cast<size_t>(workers[i])] = s;
      worker_local[static_cast<size_t>(workers[i])] = static_cast<int>(i);
    }
  }

  std::vector<std::optional<ShardProblem>> built(
      static_cast<size_t>(num_shards));
  pool_.ParallelFor(num_shards, [&](int64_t s) {
    built[static_cast<size_t>(s)] =
        BuildOne(global, map, static_cast<int>(s), task_shard, task_local,
                 worker_shard, worker_local);
  });

  std::vector<ShardProblem> problems;
  problems.reserve(static_cast<size_t>(num_shards));
  for (auto& problem : built) {
    problems.push_back(std::move(*problem));
  }
  return problems;
}

Assignment ShardExecutor::Run(const Instance& global,
                              const std::vector<ShardProblem>& problems,
                              const AssignerFactory& factory,
                              std::vector<double>* shard_seconds) {
  CASC_CHECK(factory != nullptr);
  const int num_shards = static_cast<int>(problems.size());
  std::vector<std::optional<Assignment>> locals(
      static_cast<size_t>(num_shards));
  std::vector<double> seconds(static_cast<size_t>(num_shards), 0.0);

  pool_.ParallelFor(num_shards, [&](int64_t s) {
    const ShardProblem& problem = problems[static_cast<size_t>(s)];
    if (problem.instance.num_workers() == 0 ||
        problem.instance.num_tasks() == 0) {
      return;  // nothing to assign; fold treats absent as empty
    }
    Stopwatch watch;
    const std::unique_ptr<Assigner> solver = factory();
    locals[static_cast<size_t>(s)] = solver->Run(problem.instance);
    seconds[static_cast<size_t>(s)] = watch.ElapsedSeconds();
  });

  // Deterministic fold: ascending shard order, local insertion order.
  // Shards are disjoint in both workers and tasks, so group insertion
  // order within any task matches the local solver's order exactly.
  Assignment assignment(global);
  for (int s = 0; s < num_shards; ++s) {
    if (!locals[static_cast<size_t>(s)].has_value()) continue;
    const ShardProblem& problem = problems[static_cast<size_t>(s)];
    const Assignment& local = *locals[static_cast<size_t>(s)];
    for (const AssignedPair& pair : local.Pairs()) {
      assignment.Assign(
          problem.global_workers[static_cast<size_t>(pair.worker)],
          problem.global_tasks[static_cast<size_t>(pair.task)]);
    }
  }
  if (shard_seconds != nullptr) *shard_seconds = std::move(seconds);
  return assignment;
}

}  // namespace casc
