#ifndef CASC_SERVICE_DISPATCH_SERVICE_H_
#define CASC_SERVICE_DISPATCH_SERVICE_H_

#include <string>
#include <vector>

#include "algo/assigner.h"
#include "model/cooperation_matrix.h"
#include "service/boundary_reconciler.h"
#include "service/shard_executor.h"
#include "service/shard_map.h"
#include "sim/event_stream.h"
#include "sim/metrics.h"

namespace casc {

/// Options of the sharded assignment path.
struct ShardedOptions {
  /// S: the world is split into S x S shards. S = 1 reproduces the
  /// monolithic assigner bit-for-bit.
  int shards_per_side = 4;

  /// Threads for per-shard problem building and solving (1 = inline).
  /// The output is independent of this value.
  int num_threads = 1;

  /// The partitioned area.
  Rect world{0.0, 0.0, 1.0, 1.0};

  /// Phase-2 knobs.
  ReconcileOptions reconcile;

  /// Test/fuzz fault hook forwarded to ShardExecutor::Run (see
  /// ShardFaultHook): non-null drops the flagged shards' phase-1 results
  /// before the fold, leaving their workers idle for carry-over.
  ShardFaultHook fault_hook;
};

/// Observability of one dispatched batch: shard loads, boundary-worker
/// counts, phase timings and admission-queue state.
struct ServiceMetrics {
  int num_shards = 0;
  std::vector<int> shard_workers;    ///< phase-1 (home) workers per shard
  std::vector<int> shard_tasks;      ///< tasks per shard
  std::vector<double> shard_seconds; ///< per-shard solver wall time
  int interior_workers = 0;
  int boundary_workers = 0;
  int adopted_boundary = 0;   ///< phase-2 warm-start re-seatings
  int inserted_boundary = 0;  ///< phase-2 marginal insertions
  int seeded_boundary = 0;    ///< phase-2 under-B seedings
  int polish_moves = 0;       ///< phase-2 best-response moves

  /// Phase-1 solver convergence telemetry (GT family; zero for
  /// single-pass shard solvers): best-response rounds (max over shards —
  /// the parallel critical path), strategy moves (sum), the warm-start
  /// dirty frontier and whether any shard seeded from the previous
  /// equilibrium's skeleton.
  int solve_rounds = 0;          ///< max best-response rounds over shards
  int64_t solve_moves = 0;       ///< strategy changes summed over shards
  int64_t dirty_workers = 0;     ///< initial dirty frontier (warm only)
  double dirty_fraction = 0.0;   ///< dirty_workers / batch workers
  bool warm_started = false;     ///< any shard seeded from the skeleton
  double partition_seconds = 0.0;  ///< shard map + problem building
  double phase1_seconds = 0.0;     ///< parallel per-shard assignment
  double phase2_seconds = 0.0;     ///< boundary reconciliation
  int admitted_tasks = 0;  ///< tasks admitted to this batch
  int deferred_tasks = 0;  ///< overflow tasks pushed to the next batch
  int queue_depth = 0;     ///< open tasks carried after the batch

  /// Streaming data-plane timings. `ingest_seconds` covers arrival
  /// ingest plus incremental index maintenance (overlapped with the
  /// previous solve when the pipeline is on — `pipelined` records where
  /// it ran); `index_build_seconds` covers the valid-pair build;
  /// `batch_seconds` is the batch's critical path (non-overlapped ingest
  /// + build + solve), the quantity the run-level p50/p99 summarize.
  double ingest_seconds = 0.0;
  double index_build_seconds = 0.0;
  double batch_seconds = 0.0;
  bool pipelined = false;  ///< ingest ran overlapped with the prior solve

  /// Split of the incremental data-plane work (all zero in scratch
  /// mode): delta splice into known rows, fresh rows for new workers and
  /// the persistent spatial batch insert are parts of ingest_seconds;
  /// csr_emit_seconds is the parallel CSR emission inside
  /// index_build_seconds. `ingest_threads` is the plane's resolved
  /// fan-out width (1 = serial / CASC_NO_PARALLEL_INGEST).
  double ingest_splice_seconds = 0.0;
  double ingest_fresh_rows_seconds = 0.0;
  double ingest_spatial_seconds = 0.0;
  double csr_emit_seconds = 0.0;
  int ingest_threads = 1;

  /// Candidate-pruning work across the phase-1 shard solvers: exact
  /// marginal evaluations performed vs. skipped via upper bounds (see
  /// AssignerStats::prune_candidates_*). Phase-2 polishing is not
  /// included — the reconciler reports moves, not scan work.
  int64_t prune_evals = 0;
  int64_t prune_skips = 0;

  /// Registry id of the ObjectiveModel the batch was scored under
  /// ("casc", "multiskill", ...).
  std::string objective;

  /// Candidate joins the objective's feasibility predicate rejected
  /// across the phase-1 shard solvers (AssignerStats::feasibility_rejects;
  /// always 0 under the default objective). Same phase-1-only scope as
  /// the prune counters.
  int64_t feasibility_rejects = 0;

  /// Shards whose phase-1 result was lost this batch — dropped by the
  /// fault hook on the in-process path, or declared unrecoverable after
  /// exhausting failover on the distributed path. The lost shards'
  /// workers stay idle and carry over to the next batch.
  int lost_shards = 0;

  /// Distributed-mode (simulated network) observability; all zero on the
  /// in-process path. Counters are per-batch deltas of the simulator's
  /// NetStats; RTT quantiles summarize per-shard dispatch -> result
  /// round-trip times at the coordinator (QuantileSketch).
  int64_t net_messages = 0;       ///< messages put on the wire
  int64_t net_bytes = 0;          ///< modeled payload bytes sent
  int64_t net_dropped = 0;        ///< drops (rng + partition + dead)
  int net_retries = 0;            ///< retransmissions after timeout
  int net_failovers = 0;          ///< shards re-dispatched to another node
  double net_rtt_p50_seconds = 0.0;
  double net_rtt_p99_seconds = 0.0;

  /// Compact JSON object (machine-readable bench/monitoring output).
  std::string ToJson() const;
};

/// How DispatchService solves one admitted batch. The default
/// implementation is the in-process ShardedAssigner below; the net layer
/// injects a message-driven implementation (NetShardedAssigner) that runs
/// the same shard solvers on simulated nodes. Implementations must be
/// deterministic and must honor the ShardedAssigner determinism contract:
/// for a fixed instance and options the assignment is bit-identical to
/// the in-process path at zero network delay and zero loss.
class ShardedBatchSolver {
 public:
  virtual ~ShardedBatchSolver() = default;

  /// Solves one batch instance (valid pairs ready) into an assignment.
  virtual Assignment Solve(const Instance& instance) = 0;

  /// Per-batch observability of the most recent Solve().
  virtual const ServiceMetrics& metrics() const = 0;

  /// Lets the service lend its pooled solve-side workspace (may be null).
  virtual void AttachWorkspace(BatchWorkspace* workspace) = 0;

  /// Attaches the next Solve()'s cross-batch warm-start delta (may be
  /// null = cold). The delta must stay alive for the duration of that
  /// Solve(); the streaming loop re-attaches a fresh one every batch.
  /// Default: ignore it (a cold solver stays correct — the warm start is
  /// purely an optimization).
  virtual void SetSolveDelta(const SolveDelta* delta) { (void)delta; }
};

/// The sharded dispatch engine as a drop-in Assigner (Algorithm 1 line
/// 6): partitions the batch with a ShardMap, solves each shard's home
/// workers in parallel (ShardExecutor; boundary workers restricted to
/// home-shard tasks) and re-arbitrates the boundary workers
/// deterministically (BoundaryReconciler).
///
/// Determinism contract: for a fixed instance and options, the produced
/// assignment is identical regardless of num_threads (shard problems
/// are solved independently and folded in shard order; phase 2 is
/// serial in ascending worker order). With shards_per_side == 1 the
/// result is bit-identical to running the factory's assigner directly.
class ShardedAssigner : public Assigner, public ShardedBatchSolver {
 public:
  /// `factory` creates the per-shard solver (see AssignerFactory's
  /// thread-safety and determinism requirements).
  ShardedAssigner(ShardedOptions options, AssignerFactory factory);

  std::string Name() const override;
  Assignment Run(const Instance& instance) override;

  // -- ShardedBatchSolver --
  Assignment Solve(const Instance& instance) override {
    return Run(instance);
  }
  void AttachWorkspace(BatchWorkspace* workspace) override {
    set_workspace(workspace);
  }
  void SetSolveDelta(const SolveDelta* delta) override {
    set_solve_delta(delta);
  }

  /// Shard/phase observability of the most recent Run(). Admission
  /// fields stay zero here — they belong to the DispatchService.
  const ServiceMetrics& metrics() const override { return metrics_; }

  const ShardedOptions& options() const { return options_; }

 private:
  ShardedOptions options_;
  AssignerFactory factory_;
  ShardExecutor executor_;
  BoundaryReconciler reconciler_;
  ServiceMetrics metrics_;
  std::string name_;
  int batch_index_ = 0;  ///< Run() counter handed to the fault hook
};

/// Per-batch configuration of the dispatch service.
struct DispatchConfig {
  ShardedOptions sharded;

  /// Minimum group size B per batch instance.
  int min_group_size = 3;

  /// Registry id of the ObjectiveModel every batch instance scores
  /// under ("casc", "multiskill", ...). Empty selects the process
  /// default — CascObjective, overridable by the CASC_OBJECTIVE
  /// environment variable (see ProcessDefaultObjective). An unknown id
  /// CHECK-fails at service construction.
  std::string objective;

  /// Wall-clock time between streaming batches.
  double batch_interval = 1.0;

  /// How long a started task occupies its workers (streaming mode).
  double task_duration = 1.0;

  /// Admission budget: at most this many open tasks enter one batch
  /// (earliest deadline first; ties by task id). 0 = unlimited.
  /// Overflow tasks stay queued and carry to the next batch until their
  /// deadlines expire, mirroring RunStreaming's carry-over.
  int max_tasks_per_batch = 0;

  /// Delta-maintain the spatial index and valid-pair rows across the
  /// streaming batches instead of rebuilding per batch. Anded with the
  /// CASC_NO_INCREMENTAL kill switch at Run() time; either side can turn
  /// it off. Never changes any output (differentially checked under
  /// CASC_STREAM_AUDIT / audit_streaming).
  bool enable_incremental = true;

  /// Overlap batch N+1's ingest + incremental index maintenance with
  /// batch N's solve on a two-slot pipeline. Anded with the
  /// CASC_NO_PIPELINE kill switch at Run() time. The solved outputs are
  /// bit-identical to the sequential loop (the solver never reads the
  /// mutating cross-batch state; see StreamingPlane's pipelining
  /// contract).
  bool enable_pipeline = true;

  /// Differentially check every incrementally-built valid-pair index
  /// against a from-scratch build (or'ed with CASC_STREAM_AUDIT).
  bool audit_streaming = false;

  /// Seed each streaming batch's solve from the previous batch's
  /// committed equilibrium restricted to the still-present players, and
  /// converge only the dirty frontier (fresh workers / changed tasks).
  /// Anded with the CASC_NO_WARM_START kill switch at Run() time; either
  /// side restores the cold per-batch solve exactly. The warm output is
  /// still a certified Nash equilibrium (the GT family's full
  /// verification pass runs unchanged), and batches with zero carry-over
  /// are bit-identical to the cold path.
  bool enable_warm_start = true;
};

/// Run-level latency distribution of a streaming Run(): per-batch
/// critical-path seconds (ServiceMetrics::batch_seconds) folded through
/// a histogram, so the service reports tail latency, not just means.
struct RunLatencyStats {
  int64_t batches = 0;
  double mean_seconds = 0.0;
  double p50_seconds = 0.0;
  double p99_seconds = 0.0;
  double max_seconds = 0.0;

  /// Rounds-to-convergence distribution over the run's batches
  /// (ServiceMetrics::solve_rounds through a QuantileSketch): the
  /// quantity the cross-batch warm start shrinks in steady state.
  double solve_rounds_p50 = 0.0;
  double solve_rounds_p99 = 0.0;

  /// Compact JSON object (bench/monitoring output).
  std::string ToJson() const;
};

/// One solved batch.
struct DispatchResult {
  Instance instance;        ///< the admitted instance (valid pairs ready)
  Assignment assignment;    ///< over `instance`
  std::vector<Task> deferred;  ///< tasks the admission budget rejected
  ServiceMetrics metrics;
  BatchMetrics batch;
};

/// The top-level dispatch layer: owns the sharded engine and an
/// admission queue, and turns the batch framework into a serving loop.
/// Workers' `.id` fields index `global_coop` (0 <= id < num_workers);
/// batch instances are built over zero-copy views of it.
class DispatchService {
 public:
  /// `global_coop` must outlive the service.
  DispatchService(DispatchConfig config,
                  const CooperationMatrix* global_coop,
                  AssignerFactory factory);

  /// Admits (budget permitting), shards, assigns and reconciles one
  /// batch at timestamp `now`. Deferred overflow tasks are returned to
  /// the caller (the streaming loop re-queues them).
  DispatchResult RunBatch(std::vector<Worker> workers,
                          std::vector<Task> tasks, double now);

  /// Streaming mode (Algorithm 1): drives batches over the stream's
  /// arrivals with idle-worker/open-task carry-over, busy-worker
  /// bookkeeping and the admission budget. Worker ids must be a
  /// permutation of 0..num_workers-1 (EventStream::HasDenseWorkerIds).
  ///
  /// The cross-batch state lives in a StreamingPlane: incremental index
  /// and valid-pair maintenance by default (enable_incremental /
  /// CASC_NO_INCREMENTAL), and batch N+1's ingest overlapped with batch
  /// N's solve (enable_pipeline / CASC_NO_PIPELINE). Assignments, scores
  /// and carry-over are bit-identical across all four on/off
  /// combinations and any thread count.
  RunSummary Run(const EventStream& stream);

  /// Per-batch service metrics of the most recent Run()/RunBatch()
  /// sequence (parallel to RunSummary::batches for Run()).
  const std::vector<ServiceMetrics>& batch_metrics() const {
    return batch_metrics_;
  }

  /// Latency distribution of the most recent Run().
  const RunLatencyStats& run_latency() const { return run_latency_; }

  const DispatchConfig& config() const { return config_; }

  /// Replaces the in-process batch solver with `solver` (not owned; must
  /// outlive the service) — the seam the simulated-network layer uses to
  /// route batches through message-driven dispatch. The service lends the
  /// solver its pooled solve-side workspace. Pass nullptr to restore the
  /// built-in ShardedAssigner.
  void set_batch_solver(ShardedBatchSolver* solver);

  /// The built-in in-process engine (for tests comparing paths).
  ShardedAssigner& sharded_assigner() { return sharded_; }

 private:
  DispatchConfig config_;
  const CooperationMatrix* global_coop_;
  /// Objective resolved from config_.objective at construction (process
  /// default when the config id is empty); every batch instance is
  /// stamped with it before solving. Not owned (registry singleton).
  const ObjectiveModel* objective_ = nullptr;
  ShardedAssigner sharded_;
  ShardedBatchSolver* solver_ = nullptr;  ///< set in the constructor
  /// Double-buffered scratch: the build side pools the spatial scratch
  /// and CSR pair indexes the streaming plane's valid-pair build draws
  /// from; the solve side (attached to the sharded engine) pools
  /// assignments, keepers and the CoopTile. The split keeps the two
  /// pipeline stages free of shared pooled state — the overlapped ingest
  /// never touches either workspace, and build N+1 can recycle into the
  /// build side while solve N's outputs are still live on the solve
  /// side.
  BatchWorkspace build_workspace_;
  BatchWorkspace solve_workspace_;
  std::vector<ServiceMetrics> batch_metrics_;
  RunLatencyStats run_latency_;
};

}  // namespace casc

#endif  // CASC_SERVICE_DISPATCH_SERVICE_H_
