#ifndef CASC_SERVICE_SHARD_EXECUTOR_H_
#define CASC_SERVICE_SHARD_EXECUTOR_H_

#include <functional>
#include <memory>
#include <vector>

#include "algo/assigner.h"
#include "common/thread_pool.h"
#include "model/assignment.h"
#include "model/batch_workspace.h"
#include "model/instance.h"
#include "model/solve_delta.h"
#include "service/shard_map.h"

namespace casc {

/// Creates a fresh solver for one shard. Invoked concurrently from pool
/// threads, so it must be thread-safe (a plain `make_unique<GtAssigner>`
/// is). The produced assigners must be deterministic and single-threaded
/// (GtOptions::num_threads == 1): nested pools are not allowed, and
/// shard results must not depend on where they ran.
using AssignerFactory = std::function<std::unique_ptr<Assigner>()>;

/// Test/fuzz fault hook: returns true when shard `shard` of batch `batch`
/// must be dropped *after* solving — the result vanishes before the fold,
/// exactly as if the network lost it. Used to exercise carry-over replay
/// (dropped shards' workers stay idle and re-enter the next batch's
/// admission) without standing up the simulated network.
using ShardFaultHook = std::function<bool(int batch, int shard)>;

/// One shard's self-contained CA-SC sub-instance plus the index maps
/// back into the global instance. The local instance holds the shard's
/// interior workers and tasks under local indices, a zero-copy
/// CooperationMatrix view remapping local worker indices onto the global
/// matrix, and valid-pair lists derived from the global lists (filter +
/// remap — no per-shard R-tree rebuild).
struct ShardProblem {
  Instance instance;                        ///< local, valid pairs ready
  std::vector<WorkerIndex> global_workers;  ///< local w -> global w
  std::vector<TaskIndex> global_tasks;      ///< local t -> global t

  /// Shard-local slice of the batch's cross-batch warm-start delta
  /// (empty / num_carried == 0 when the batch is cold): global seeds are
  /// remapped to local task indices; a worker whose retained seed lives
  /// in another shard loses the seed here and joins the dirty frontier
  /// (phase 2 re-arbitrates it). SolveProblem attaches this to the shard
  /// solver, so the simulated shard nodes warm-start from the dispatched
  /// problem alone — no coordinator state needed.
  SolveDelta delta;
};

/// Phase-1 engine of the sharded dispatch service: materializes the
/// per-shard problems and runs an independent solver on every shard in
/// parallel, folding the local assignments into one global assignment in
/// ascending shard order. Because shards share no workers (interior
/// only) and no tasks, the fold is conflict-free and the result is
/// independent of thread count and scheduling.
///
/// Workspace lifetime: the per-shard workspaces (and any
/// `global_workspace` the caller passes) are touched only between entry
/// to and return from BuildProblems()/Run()/RecycleProblems() — the
/// executor keeps no borrowed pointers across calls. The pipelined
/// dispatch loop relies on this: while one thread is inside Run() for
/// batch N, another may mutate unrelated streaming state (and recycle
/// into a *different* workspace) for batch N+1.
class ShardExecutor {
 public:
  /// A pool of `num_threads` (>= 1; 1 runs inline).
  explicit ShardExecutor(int num_threads);

  /// Builds one ShardProblem per shard of `map` (in parallel). Requires
  /// `global.valid_pairs_ready()`; `map` must have been built from the
  /// same worker/task vectors. A non-null `delta` (the plane's
  /// cross-batch warm-start export over the global instance) is sliced
  /// per shard into each problem's `delta`; null leaves every shard cold.
  std::vector<ShardProblem> BuildProblems(const Instance& global,
                                          const ShardMap& map,
                                          const SolveDelta* delta = nullptr);

  /// Runs a factory-made assigner over every problem in parallel and
  /// folds the local assignments into a global assignment (ascending
  /// shard order; boundary workers stay idle for phase 2). Shards with
  /// no workers or no tasks are skipped. A non-null `shard_seconds`
  /// receives per-shard solver wall times; a non-null `shard_stats`
  /// receives each shard solver's AssignerStats (default-constructed for
  /// skipped shards). The solvers draw their scratch state from this
  /// executor's per-shard workspaces; a non-null `global_workspace`
  /// additionally pools the folded global assignment.
  /// A non-null `fault_hook` is consulted per shard (with `batch_index`)
  /// during the serial fold: a dropped shard's local result is discarded
  /// — its workers stay idle in the returned assignment — and the shard
  /// index is appended to `dropped_shards` (if non-null).
  Assignment Run(const Instance& global,
                 const std::vector<ShardProblem>& problems,
                 const AssignerFactory& factory,
                 std::vector<double>* shard_seconds,
                 BatchWorkspace* global_workspace = nullptr,
                 std::vector<AssignerStats>* shard_stats = nullptr,
                 const ShardFaultHook& fault_hook = nullptr,
                 int batch_index = 0,
                 std::vector<int>* dropped_shards = nullptr);

  /// Solves one shard problem with a factory-made assigner — the unit of
  /// work a simulated shard node performs on dispatch. Returns nullopt
  /// for an empty shard (no workers or no tasks). Thread-safe given a
  /// private `workspace` (may be null). Run() is equivalent to
  /// SolveProblem on every shard (any order/concurrency) followed by
  /// FoldProblem in ascending shard order. When `use_delta` is set (the
  /// default) and the problem carries a non-empty warm-start slice, the
  /// slice is attached to the solver; `use_delta = false` forces a cold
  /// solve of the same problem (the net layer's failover fallback).
  static std::optional<Assignment> SolveProblem(const ShardProblem& problem,
                                                const AssignerFactory& factory,
                                                BatchWorkspace* workspace,
                                                double* seconds = nullptr,
                                                AssignerStats* stats = nullptr,
                                                bool use_delta = true);

  /// Folds one shard's local assignment into the global assignment using
  /// the problem's index maps (local insertion order, so folding shards
  /// in ascending shard order reproduces Run()'s fold bit-identically —
  /// shards share no workers and no tasks, making per-shard folds
  /// commutative across shards).
  static void FoldProblem(const ShardProblem& problem, const Assignment& local,
                          Assignment* global);

  /// Returns the problems' CSR pair indexes to the per-shard workspaces
  /// so the next batch's BuildProblems reuses their capacity. The
  /// problems' instances are left without valid pairs; drop them after.
  void RecycleProblems(std::vector<ShardProblem>* problems);

  int num_threads() const { return pool_.num_threads(); }

 private:
  /// Grows workspaces_ to `count` slots (serial; call before the pool).
  void EnsureWorkspaces(int count);

  ThreadPool pool_;
  /// One workspace per shard slot: ParallelFor bodies touch only their
  /// own slot, so no locking is needed.
  std::vector<std::unique_ptr<BatchWorkspace>> workspaces_;
};

}  // namespace casc

#endif  // CASC_SERVICE_SHARD_EXECUTOR_H_
