#ifndef CASC_SERVICE_SHARD_EXECUTOR_H_
#define CASC_SERVICE_SHARD_EXECUTOR_H_

#include <functional>
#include <memory>
#include <vector>

#include "algo/assigner.h"
#include "common/thread_pool.h"
#include "model/assignment.h"
#include "model/batch_workspace.h"
#include "model/instance.h"
#include "service/shard_map.h"

namespace casc {

/// Creates a fresh solver for one shard. Invoked concurrently from pool
/// threads, so it must be thread-safe (a plain `make_unique<GtAssigner>`
/// is). The produced assigners must be deterministic and single-threaded
/// (GtOptions::num_threads == 1): nested pools are not allowed, and
/// shard results must not depend on where they ran.
using AssignerFactory = std::function<std::unique_ptr<Assigner>()>;

/// One shard's self-contained CA-SC sub-instance plus the index maps
/// back into the global instance. The local instance holds the shard's
/// interior workers and tasks under local indices, a zero-copy
/// CooperationMatrix view remapping local worker indices onto the global
/// matrix, and valid-pair lists derived from the global lists (filter +
/// remap — no per-shard R-tree rebuild).
struct ShardProblem {
  Instance instance;                        ///< local, valid pairs ready
  std::vector<WorkerIndex> global_workers;  ///< local w -> global w
  std::vector<TaskIndex> global_tasks;      ///< local t -> global t
};

/// Phase-1 engine of the sharded dispatch service: materializes the
/// per-shard problems and runs an independent solver on every shard in
/// parallel, folding the local assignments into one global assignment in
/// ascending shard order. Because shards share no workers (interior
/// only) and no tasks, the fold is conflict-free and the result is
/// independent of thread count and scheduling.
///
/// Workspace lifetime: the per-shard workspaces (and any
/// `global_workspace` the caller passes) are touched only between entry
/// to and return from BuildProblems()/Run()/RecycleProblems() — the
/// executor keeps no borrowed pointers across calls. The pipelined
/// dispatch loop relies on this: while one thread is inside Run() for
/// batch N, another may mutate unrelated streaming state (and recycle
/// into a *different* workspace) for batch N+1.
class ShardExecutor {
 public:
  /// A pool of `num_threads` (>= 1; 1 runs inline).
  explicit ShardExecutor(int num_threads);

  /// Builds one ShardProblem per shard of `map` (in parallel). Requires
  /// `global.valid_pairs_ready()`; `map` must have been built from the
  /// same worker/task vectors.
  std::vector<ShardProblem> BuildProblems(const Instance& global,
                                          const ShardMap& map);

  /// Runs a factory-made assigner over every problem in parallel and
  /// folds the local assignments into a global assignment (ascending
  /// shard order; boundary workers stay idle for phase 2). Shards with
  /// no workers or no tasks are skipped. A non-null `shard_seconds`
  /// receives per-shard solver wall times; a non-null `shard_stats`
  /// receives each shard solver's AssignerStats (default-constructed for
  /// skipped shards). The solvers draw their scratch state from this
  /// executor's per-shard workspaces; a non-null `global_workspace`
  /// additionally pools the folded global assignment.
  Assignment Run(const Instance& global,
                 const std::vector<ShardProblem>& problems,
                 const AssignerFactory& factory,
                 std::vector<double>* shard_seconds,
                 BatchWorkspace* global_workspace = nullptr,
                 std::vector<AssignerStats>* shard_stats = nullptr);

  /// Returns the problems' CSR pair indexes to the per-shard workspaces
  /// so the next batch's BuildProblems reuses their capacity. The
  /// problems' instances are left without valid pairs; drop them after.
  void RecycleProblems(std::vector<ShardProblem>* problems);

  int num_threads() const { return pool_.num_threads(); }

 private:
  /// Grows workspaces_ to `count` slots (serial; call before the pool).
  void EnsureWorkspaces(int count);

  ThreadPool pool_;
  /// One workspace per shard slot: ParallelFor bodies touch only their
  /// own slot, so no locking is needed.
  std::vector<std::unique_ptr<BatchWorkspace>> workspaces_;
};

}  // namespace casc

#endif  // CASC_SERVICE_SHARD_EXECUTOR_H_
