#include "service/shard_map.h"

#include <algorithm>

#include "common/check.h"

namespace casc {

ShardMap::ShardMap(const std::vector<Worker>& workers,
                   const std::vector<Task>& tasks,
                   const ShardMapConfig& config)
    : config_(config) {
  CASC_CHECK_GE(config.shards_per_side, 1);
  CASC_CHECK(!config.world.IsEmpty()) << "shard world must be non-empty";
  CASC_CHECK_GT(config.world.max_x, config.world.min_x);
  CASC_CHECK_GT(config.world.max_y, config.world.min_y);
  const int side = config_.shards_per_side;
  cell_width_ = (config_.world.max_x - config_.world.min_x) / side;
  cell_height_ = (config_.world.max_y - config_.world.min_y) / side;

  shard_tasks_.resize(static_cast<size_t>(num_shards()));
  interior_workers_.resize(static_cast<size_t>(num_shards()));
  home_workers_.resize(static_cast<size_t>(num_shards()));
  is_boundary_.assign(workers.size(), false);

  for (size_t t = 0; t < tasks.size(); ++t) {
    shard_tasks_[static_cast<size_t>(ShardOfPoint(tasks[t].location))]
        .push_back(static_cast<TaskIndex>(t));
  }
  for (size_t w = 0; w < workers.size(); ++w) {
    const Worker& worker = workers[w];
    home_workers_[static_cast<size_t>(ShardOfPoint(worker.location))]
        .push_back(static_cast<WorkerIndex>(w));
    if (!config_.world.Contains(worker.location)) {
      is_boundary_[w] = true;
      boundary_workers_.push_back(static_cast<WorkerIndex>(w));
      continue;
    }
    // Classify by the reach disk's bounding-box cell range. CellOf is
    // monotone, so a single-cell range proves every point within radius
    // r of the worker — in particular every valid task location — maps
    // to that same cell. (The disk-refined ShardsTouched below could
    // shave corner cells, but only this interval argument is robust to
    // floating-point edge cases, and the invariant "interior worker =>
    // all valid tasks in its shard" is what the executor builds on.)
    const double r = std::max(worker.radius, 0.0);
    const int x_lo =
        CellOf(worker.location.x - r, config_.world.min_x, cell_width_);
    const int x_hi =
        CellOf(worker.location.x + r, config_.world.min_x, cell_width_);
    const int y_lo =
        CellOf(worker.location.y - r, config_.world.min_y, cell_height_);
    const int y_hi =
        CellOf(worker.location.y + r, config_.world.min_y, cell_height_);
    if (x_lo == x_hi && y_lo == y_hi) {
      interior_workers_[static_cast<size_t>(
                            y_lo * config_.shards_per_side + x_lo)]
          .push_back(static_cast<WorkerIndex>(w));
      ++num_interior_workers_;
    } else {
      is_boundary_[w] = true;
      boundary_workers_.push_back(static_cast<WorkerIndex>(w));
    }
  }
}

int ShardMap::CellOf(double coord, double lo, double width) const {
  const int cell = static_cast<int>((coord - lo) / width);
  return std::clamp(cell, 0, config_.shards_per_side - 1);
}

Rect ShardMap::ShardRect(int shard) const {
  CASC_CHECK_GE(shard, 0);
  CASC_CHECK_LT(shard, num_shards());
  const int cx = shard % config_.shards_per_side;
  const int cy = shard / config_.shards_per_side;
  Rect rect;
  rect.min_x = config_.world.min_x + cx * cell_width_;
  rect.min_y = config_.world.min_y + cy * cell_height_;
  rect.max_x = cx + 1 == config_.shards_per_side ? config_.world.max_x
                                                 : rect.min_x + cell_width_;
  rect.max_y = cy + 1 == config_.shards_per_side ? config_.world.max_y
                                                 : rect.min_y + cell_height_;
  return rect;
}

int ShardMap::ShardOfPoint(const Point& p) const {
  const int cx = CellOf(p.x, config_.world.min_x, cell_width_);
  const int cy = CellOf(p.y, config_.world.min_y, cell_height_);
  return cy * config_.shards_per_side + cx;
}

std::vector<int> ShardMap::ShardsTouched(const Point& center,
                                         double radius) const {
  const double r = std::max(radius, 0.0);
  const int x_lo = CellOf(center.x - r, config_.world.min_x, cell_width_);
  const int x_hi = CellOf(center.x + r, config_.world.min_x, cell_width_);
  const int y_lo = CellOf(center.y - r, config_.world.min_y, cell_height_);
  const int y_hi = CellOf(center.y + r, config_.world.min_y, cell_height_);
  std::vector<int> touched;
  const double r2 = r * r;
  for (int cy = y_lo; cy <= y_hi; ++cy) {
    for (int cx = x_lo; cx <= x_hi; ++cx) {
      const int shard = cy * config_.shards_per_side + cx;
      if (ShardRect(shard).MinSquaredDistance(center) <= r2) {
        touched.push_back(shard);
      }
    }
  }
  return touched;
}

const std::vector<TaskIndex>& ShardMap::TasksOf(int shard) const {
  CASC_CHECK_GE(shard, 0);
  CASC_CHECK_LT(shard, num_shards());
  return shard_tasks_[static_cast<size_t>(shard)];
}

const std::vector<WorkerIndex>& ShardMap::InteriorWorkersOf(
    int shard) const {
  CASC_CHECK_GE(shard, 0);
  CASC_CHECK_LT(shard, num_shards());
  return interior_workers_[static_cast<size_t>(shard)];
}

const std::vector<WorkerIndex>& ShardMap::HomeWorkersOf(int shard) const {
  CASC_CHECK_GE(shard, 0);
  CASC_CHECK_LT(shard, num_shards());
  return home_workers_[static_cast<size_t>(shard)];
}

ShardLoadStats ShardMap::LoadStats() const {
  ShardLoadStats stats;
  stats.workers_per_shard.reserve(home_workers_.size());
  stats.tasks_per_shard.reserve(shard_tasks_.size());
  for (const auto& workers : home_workers_) {
    const int count = static_cast<int>(workers.size());
    stats.workers_per_shard.push_back(count);
    stats.max_shard_workers = std::max(stats.max_shard_workers, count);
  }
  for (const auto& tasks : shard_tasks_) {
    const int count = static_cast<int>(tasks.size());
    stats.tasks_per_shard.push_back(count);
    stats.max_shard_tasks = std::max(stats.max_shard_tasks, count);
  }
  stats.interior_workers = num_interior_workers_;
  stats.boundary_workers = static_cast<int>(boundary_workers_.size());
  return stats;
}

}  // namespace casc
