#ifndef CASC_SERVICE_BOUNDARY_RECONCILER_H_
#define CASC_SERVICE_BOUNDARY_RECONCILER_H_

#include <vector>

#include "model/assignment.h"
#include "model/instance.h"
#include "model/score_keeper.h"
#include "model/solve_delta.h"

namespace casc {

/// Knobs of the phase-2 protocol.
struct ReconcileOptions {
  /// After the marginal-insertion pass, top up tasks still below the
  /// minimum group size B from the remaining unassigned boundary
  /// workers (greedy max-affinity seeding). Without this, boundary
  /// workers can only join groups that phase 1 already grew to B-1 —
  /// tasks whose candidates are mostly boundary workers would starve.
  bool seed_underfilled = true;

  /// Best-response rounds restricted to boundary workers after
  /// insertion/seeding (0 disables polishing). Uses the full
  /// game-theoretic move (including crowding out), so each move can only
  /// increase the total score (the potential-game argument of Theorem
  /// V.1); rounds stop early once no boundary worker moves. A small cap
  /// recovers most of the cross-shard score the greedy insertion leaves
  /// behind while keeping phase 2 linear in practice.
  int polish_rounds = 3;
};

/// What phase 2 did, for ServiceMetrics.
struct ReconcileStats {
  int adopted = 0;       ///< boundary workers re-seated on retained seeds
  int inserted = 0;      ///< workers placed by best-marginal insertion
  int seeded = 0;        ///< workers placed by under-B seeding
  int polish_moves = 0;  ///< strategy changes in the polish pass
};

/// Phase 2 of the sharded dispatch protocol: re-arbitrates the boundary
/// workers — placed on home-shard tasks or left idle by the per-shard
/// phase 1 — against the committed global assignment.
///
/// Every pass is deterministic and shard-independent — ordered by global
/// worker index or by a totally-ordered gain ranking — so the final
/// assignment depends only on the instance and the phase-1 result, never
/// on thread count or shard processing order:
///   1. *Greedy best-marginal insertion*: repeatedly commit the highest
///      ScoreKeeper::GainIfJoined marginal over all (boundary worker,
///      valid non-full task) pairs (strictly positive; ties by lowest
///      worker then task index), via a lazily-revalidated heap.
///   2. *Under-B seeding* (optional): tasks still below B are topped up
///      to B from the remaining unassigned boundary workers, growing the
///      group greedily by two-way affinity — the cross-shard analogue of
///      TPG stage 1's seed sets.
///   3. *Polish* (optional): one best-response round over the boundary
///      workers only.
/// Every mutation goes through ApplyMove/ScoreKeeper, so capacity,
/// reachability and one-task-per-worker validity are preserved exactly
/// as on the monolithic path.
class BoundaryReconciler {
 public:
  explicit BoundaryReconciler(ReconcileOptions options = {});

  /// Merges `boundary` (ascending global worker indices; members may be
  /// idle or already placed) into `assignment`. Requires global valid
  /// pairs. Equivalent to creating a keeper synced to `assignment` and
  /// running PassAdopt (warm batches only) / PassInsert / PassSeed /
  /// PassPolish in order — the message-driven coordinator calls the
  /// passes individually so it can interleave them with network
  /// round-trips, and both paths produce bit-identical assignments by
  /// construction. A non-null `delta` (the batch's cross-batch
  /// warm-start export over the global instance) re-seats idle boundary
  /// workers on their retained groups before the greedy passes.
  ReconcileStats Reconcile(const Instance& global,
                           const std::vector<WorkerIndex>& boundary,
                           Assignment* assignment,
                           const SolveDelta* delta = nullptr) const;

  /// Pass 0 (warm-start adoption): re-seats each still-idle boundary
  /// worker on its retained previous-equilibrium task (ascending worker
  /// order) when the group is below capacity and the objective's join
  /// predicate allows it. Restores the cross-shard memberships the
  /// per-shard phase 1 cannot carry (an off-shard seed is invisible to
  /// the home shard's solver), so warm batches start phase 2 from the
  /// previous equilibrium instead of re-deriving it greedily. Returns
  /// the number of adoptions. Call only for warm batches
  /// (delta.num_seeded > 0).
  int PassAdopt(const Instance& global,
                const std::vector<WorkerIndex>& boundary,
                const SolveDelta& delta, Assignment* assignment,
                ScoreKeeper* keeper,
                std::vector<AssignedPair>* placed = nullptr) const;

  /// Pass 1 (greedy best-marginal insertion) against a live keeper.
  /// Returns the number of insertions; a non-null `placed` receives each
  /// committed (worker, task) placement in commit order — the payload of
  /// the coordinator's per-pass broadcast.
  int PassInsert(const Instance& global,
                 const std::vector<WorkerIndex>& boundary,
                 Assignment* assignment, ScoreKeeper* keeper,
                 std::vector<AssignedPair>* placed = nullptr) const;

  /// Pass 2 (under-B seeding). Returns the number of seeded workers.
  /// Call only when options().seed_underfilled.
  int PassSeed(const Instance& global,
               const std::vector<WorkerIndex>& boundary,
               Assignment* assignment, ScoreKeeper* keeper,
               std::vector<AssignedPair>* placed = nullptr) const;

  /// Pass 3 (best-response polish over the active set). Returns the
  /// number of moves; `placed` records each mover's new task (kNoTask for
  /// a move to idle). Call only when options().polish_rounds > 0.
  int PassPolish(const Instance& global,
                 const std::vector<WorkerIndex>& boundary,
                 Assignment* assignment, ScoreKeeper* keeper,
                 std::vector<AssignedPair>* placed = nullptr) const;

  const ReconcileOptions& options() const { return options_; }

 private:
  ReconcileOptions options_;
};

}  // namespace casc

#endif  // CASC_SERVICE_BOUNDARY_RECONCILER_H_
