#include "service/boundary_reconciler.h"

#include <algorithm>
#include <queue>

#include "algo/best_response.h"
#include "common/check.h"
#include "model/objective_model.h"

namespace casc {
namespace {

/// Strict-improvement threshold; mirrors best_response.cpp.
constexpr double kTolerance = 1e-12;

/// Two-way affinity of `w` to the current members: the pair-sum increase
/// of adding `w` (the Equation-2 numerator delta).
double Affinity(const CooperationMatrix& coop, WorkerIndex w,
                const std::vector<WorkerIndex>& members) {
  double total = 0.0;
  for (const WorkerIndex m : members) {
    total += coop.Quality(w, m) + coop.Quality(m, w);
  }
  return total;
}

}  // namespace

BoundaryReconciler::BoundaryReconciler(ReconcileOptions options)
    : options_(options) {}

int BoundaryReconciler::PassAdopt(const Instance& global,
                                  const std::vector<WorkerIndex>& boundary,
                                  const SolveDelta& delta,
                                  Assignment* assignment, ScoreKeeper* keeper,
                                  std::vector<AssignedPair>* placed) const {
  CASC_CHECK(assignment != nullptr);
  CASC_CHECK(keeper != nullptr);
  CASC_CHECK_EQ(static_cast<int>(delta.seed_task.size()),
                global.num_workers());
  const ObjectiveModel& objective = global.objective();
  const bool filter_joins = !objective.AlwaysJoinFeasible();
  int adopted = 0;
  // Ascending worker order: the pass is a function of the delta and the
  // phase-1 fold alone, so it is deterministic and shard-independent.
  // Seeds are global valid pairs by BuildSolveDelta's construction; the
  // capacity check guards against phase 1 having filled the group from
  // its own shard's candidates in the meantime.
  for (const WorkerIndex w : boundary) {
    if (assignment->TaskOf(w) != kNoTask) continue;
    const TaskIndex t = delta.seed_task[static_cast<size_t>(w)];
    if (t == kNoTask) continue;
    if (assignment->GroupSize(t) >=
        global.tasks()[static_cast<size_t>(t)].capacity) {
      continue;
    }
    if (filter_joins &&
        !objective.JoinFeasible(global, t, keeper->GroupOf(t), w)) {
      continue;
    }
    assignment->Assign(w, t);
    keeper->Add(w, t);
    if (placed != nullptr) placed->push_back({w, t});
    ++adopted;
  }
  return adopted;
}

int BoundaryReconciler::PassInsert(const Instance& global,
                                   const std::vector<WorkerIndex>& boundary,
                                   Assignment* assignment, ScoreKeeper* keeper,
                                   std::vector<AssignedPair>* placed) const {
  CASC_CHECK(assignment != nullptr);
  CASC_CHECK(keeper != nullptr);
  int inserted = 0;
  // Globally greedy best-marginal insertion — always commit the
  // highest-gain (boundary worker, task) pair next, not the next worker
  // by index. One lazily-revalidated heap entry per worker: a popped
  // entry is recomputed against the current groups and committed only if
  // still accurate, re-pushed otherwise (gains drift whenever a commit
  // touches the target group). The comparator's total order (gain desc,
  // worker asc, task asc) keeps the pass deterministic.
  struct Entry {
    double gain;
    WorkerIndex worker;
    TaskIndex task;
  };
  const auto worse = [](const Entry& a, const Entry& b) {
    if (a.gain != b.gain) return a.gain < b.gain;
    if (a.worker != b.worker) return a.worker > b.worker;
    return a.task > b.task;
  };
  const ObjectiveModel& objective = global.objective();
  const bool filter_joins = !objective.AlwaysJoinFeasible();
  const auto best_insertion = [&](WorkerIndex w) {
    Entry entry{0.0, w, kNoTask};
    double best_gain = kTolerance;
    for (const TaskIndex t : global.ValidTasks(w)) {
      if (assignment->GroupSize(t) >=
          global.tasks()[static_cast<size_t>(t)].capacity) {
        continue;
      }
      if (filter_joins &&
          !objective.JoinFeasible(global, t, keeper->GroupOf(t), w)) {
        continue;  // objective forbids this join; its gain is never > 0
      }
      const double gain = keeper->GainIfJoined(w, t);
      if (gain > best_gain) {  // ties keep the lowest task index
        best_gain = gain;
        entry.gain = gain;
        entry.task = t;
      }
    }
    return entry;
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(worse)> heap(worse);
  for (const WorkerIndex w : boundary) {
    // Phase 1 may have placed the worker on a home-shard task already;
    // insertion only serves the ones it left idle (the polish pass below
    // re-arbitrates the placed ones across shards).
    if (assignment->TaskOf(w) != kNoTask) continue;
    const Entry entry = best_insertion(w);
    if (entry.task != kNoTask) heap.push(entry);
  }
  while (!heap.empty()) {
    const Entry top = heap.top();
    heap.pop();
    const Entry current = best_insertion(top.worker);
    if (current.task == kNoTask) continue;  // no positive gain left
    if (current.task != top.task || current.gain != top.gain) {
      heap.push(current);  // stale — re-rank under the updated groups
      continue;
    }
    assignment->Assign(top.worker, top.task);
    keeper->Add(top.worker, top.task);
    if (placed != nullptr) placed->push_back({top.worker, top.task});
    ++inserted;
  }
  return inserted;
}

int BoundaryReconciler::PassSeed(const Instance& global,
                                 const std::vector<WorkerIndex>& boundary,
                                 Assignment* assignment, ScoreKeeper* keeper,
                                 std::vector<AssignedPair>* placed) const {
  CASC_CHECK(assignment != nullptr);
  CASC_CHECK(keeper != nullptr);
  int seeded = 0;
  // Top up tasks still below B from the unassigned remainder.
  std::vector<bool> available(static_cast<size_t>(global.num_workers()),
                              false);
  for (const WorkerIndex w : boundary) {
    if (assignment->TaskOf(w) == kNoTask) {
      available[static_cast<size_t>(w)] = true;
    }
  }
  for (TaskIndex t = 0; t < global.num_tasks(); ++t) {
    const int size = assignment->GroupSize(t);
    if (size >= global.min_group_size()) continue;
    std::vector<WorkerIndex> pool;
    for (const WorkerIndex w : global.Candidates(t)) {
      if (available[static_cast<size_t>(w)]) pool.push_back(w);
    }
    if (size + static_cast<int>(pool.size()) < global.min_group_size()) {
      continue;  // cannot reach B even with every available candidate
    }
    // Grow to exactly B by max two-way affinity (ties to the lowest
    // worker index — `pool` is ascending). B <= a_j always, so the
    // capacity constraint cannot be hit here. Under an objective with a
    // join predicate the filter is *soft*: feasible candidates (those
    // holding a still-missing skill, or joining an already-covered
    // group) are preferred, but when none exists the unfiltered best
    // joins anyway — reaching B is this pass's contract, and an
    // uncovered group merely scores 0 (exactly like a zero-affinity
    // seed), it is never invalid.
    const ObjectiveModel& objective = global.objective();
    const bool filter_joins = !objective.AlwaysJoinFeasible();
    const std::span<const WorkerIndex> current = keeper->GroupOf(t);
    std::vector<WorkerIndex> members(current.begin(), current.end());
    std::vector<WorkerIndex> chosen;
    while (static_cast<int>(members.size()) < global.min_group_size()) {
      WorkerIndex best = kNoWorker;
      double best_affinity = -1.0;
      bool best_feasible = false;
      for (const WorkerIndex w : pool) {
        if (!available[static_cast<size_t>(w)]) continue;
        const bool feasible =
            !filter_joins ||
            objective.JoinFeasible(global, t, members, w);
        // A feasible candidate always outranks an infeasible one;
        // affinity breaks ties within each class (then the ascending
        // pool order, keeping the pass deterministic).
        if (feasible != best_feasible) {
          if (!feasible) continue;
          best_feasible = true;
          best_affinity = Affinity(global.coop(), w, members);
          best = w;
          continue;
        }
        const double affinity = Affinity(global.coop(), w, members);
        if (affinity > best_affinity) {
          best_affinity = affinity;
          best = w;
        }
      }
      CASC_CHECK_NE(best, kNoWorker);
      members.push_back(best);
      chosen.push_back(best);
      available[static_cast<size_t>(best)] = false;
    }
    for (const WorkerIndex w : chosen) {
      assignment->Assign(w, t);
      keeper->Add(w, t);
      if (placed != nullptr) placed->push_back({w, t});
      ++seeded;
    }
  }
  return seeded;
}

int BoundaryReconciler::PassPolish(const Instance& global,
                                   const std::vector<WorkerIndex>& boundary,
                                   Assignment* assignment, ScoreKeeper* keeper,
                                   std::vector<AssignedPair>* placed) const {
  CASC_CHECK(assignment != nullptr);
  CASC_CHECK(keeper != nullptr);
  int polish_moves = 0;
  // Best-response rounds over an *active set* that starts as the
  // boundary workers and grows by whoever a move crowds out — an evicted
  // interior worker must get the chance to re-place itself or it would
  // be stranded idle. Rounds stop once no active worker moves (a Nash
  // equilibrium restricted to the active players). The set and the
  // ascending processing order are functions of the moves alone, so the
  // pass stays deterministic; ties resolve to the current strategy, so a
  // differing response is a strict improvement, and ApplyMove keeps the
  // keeper exact.
  std::vector<WorkerIndex> active = boundary;  // ascending
  std::vector<bool> in_active(static_cast<size_t>(global.num_workers()),
                              false);
  for (const WorkerIndex w : active) in_active[static_cast<size_t>(w)] = true;
  for (int round = 0; round < options_.polish_rounds; ++round) {
    int moves_this_round = 0;
    std::vector<WorkerIndex> evicted;
    for (const WorkerIndex w : active) {
      const BestResponse response =
          ComputeBestResponse(global, *keeper, *assignment, w);
      if (response.task == assignment->TaskOf(w)) continue;
      const MoveResult result =
          ApplyMove(global, assignment, keeper, w, response.task);
      ++moves_this_round;
      if (placed != nullptr) placed->push_back({w, response.task});
      if (result.crowded_out != kNoWorker &&
          !in_active[static_cast<size_t>(result.crowded_out)]) {
        in_active[static_cast<size_t>(result.crowded_out)] = true;
        evicted.push_back(result.crowded_out);
      }
    }
    polish_moves += moves_this_round;
    if (moves_this_round == 0) break;
    if (!evicted.empty()) {
      std::sort(evicted.begin(), evicted.end());
      const auto middle =
          active.insert(active.end(), evicted.begin(), evicted.end());
      std::inplace_merge(active.begin(), middle, active.end());
    }
  }
  return polish_moves;
}

ReconcileStats BoundaryReconciler::Reconcile(
    const Instance& global, const std::vector<WorkerIndex>& boundary,
    Assignment* assignment, const SolveDelta* delta) const {
  CASC_CHECK(assignment != nullptr);
  CASC_CHECK(global.valid_pairs_ready())
      << "compute the global valid pairs before reconciling";
  ReconcileStats stats;
  ScoreKeeper keeper(global);
  keeper.Sync(*assignment);

  if (delta != nullptr && delta->num_seeded > 0) {
    stats.adopted = PassAdopt(global, boundary, *delta, assignment, &keeper);
  }
  stats.inserted = PassInsert(global, boundary, assignment, &keeper);
  if (options_.seed_underfilled) {
    stats.seeded = PassSeed(global, boundary, assignment, &keeper);
  }
  if (options_.polish_rounds > 0) {
    stats.polish_moves = PassPolish(global, boundary, assignment, &keeper);
  }
  return stats;
}

}  // namespace casc
