#include "service/dispatch_service.h"

#include <algorithm>
#include <limits>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "common/stopwatch.h"
#include "model/objective.h"

namespace casc {
namespace {

void AppendIntArray(std::ostringstream& out, const char* key,
                    const std::vector<int>& values) {
  out << "\"" << key << "\":[";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out << ",";
    out << values[i];
  }
  out << "]";
}

void AppendDoubleArray(std::ostringstream& out, const char* key,
                       const std::vector<double>& values) {
  out << "\"" << key << "\":[";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out << ",";
    out << values[i];
  }
  out << "]";
}

}  // namespace

std::string ServiceMetrics::ToJson() const {
  std::ostringstream out;
  out.precision(std::numeric_limits<double>::max_digits10);
  out << "{\"num_shards\":" << num_shards << ",";
  AppendIntArray(out, "shard_workers", shard_workers);
  out << ",";
  AppendIntArray(out, "shard_tasks", shard_tasks);
  out << ",";
  AppendDoubleArray(out, "shard_seconds", shard_seconds);
  out << ",\"interior_workers\":" << interior_workers
      << ",\"boundary_workers\":" << boundary_workers
      << ",\"inserted_boundary\":" << inserted_boundary
      << ",\"seeded_boundary\":" << seeded_boundary
      << ",\"polish_moves\":" << polish_moves
      << ",\"partition_seconds\":" << partition_seconds
      << ",\"phase1_seconds\":" << phase1_seconds
      << ",\"phase2_seconds\":" << phase2_seconds
      << ",\"admitted_tasks\":" << admitted_tasks
      << ",\"deferred_tasks\":" << deferred_tasks
      << ",\"queue_depth\":" << queue_depth
      << ",\"prune_evals\":" << prune_evals
      << ",\"prune_skips\":" << prune_skips << "}";
  return out.str();
}

ShardedAssigner::ShardedAssigner(ShardedOptions options,
                                 AssignerFactory factory)
    : options_(options),
      factory_(std::move(factory)),
      executor_(options.num_threads),
      reconciler_(options.reconcile) {
  CASC_CHECK(factory_ != nullptr);
  CASC_CHECK_GE(options_.shards_per_side, 1);
  name_ = "SHARD" + std::to_string(options_.shards_per_side) + "x" +
          std::to_string(options_.shards_per_side) + "(" +
          factory_()->Name() + ")";
}

std::string ShardedAssigner::Name() const { return name_; }

Assignment ShardedAssigner::Run(const Instance& instance) {
  CASC_CHECK(instance.valid_pairs_ready());
  stats_ = AssignerStats{};
  metrics_ = ServiceMetrics{};

  Stopwatch watch;
  ShardMapConfig map_config;
  map_config.shards_per_side = options_.shards_per_side;
  map_config.world = options_.world;
  const ShardMap map(instance.workers(), instance.tasks(), map_config);
  std::vector<ShardProblem> problems =
      executor_.BuildProblems(instance, map);
  metrics_.partition_seconds = watch.ElapsedSeconds();

  const ShardLoadStats load = map.LoadStats();
  metrics_.num_shards = map.num_shards();
  metrics_.shard_workers = load.workers_per_shard;
  metrics_.shard_tasks = load.tasks_per_shard;
  metrics_.interior_workers = load.interior_workers;
  metrics_.boundary_workers = load.boundary_workers;

  watch.Restart();
  std::vector<AssignerStats> shard_stats;
  Assignment assignment =
      executor_.Run(instance, problems, factory_, &metrics_.shard_seconds,
                    workspace(), &shard_stats);
  metrics_.phase1_seconds = watch.ElapsedSeconds();
  for (const AssignerStats& stats : shard_stats) {
    metrics_.prune_evals += stats.prune_candidates_evaluated;
    metrics_.prune_skips += stats.prune_candidates_skipped;
  }
  stats_.prune_candidates_evaluated = metrics_.prune_evals;
  stats_.prune_candidates_skipped = metrics_.prune_skips;

  watch.Restart();
  const ReconcileStats reconcile =
      reconciler_.Reconcile(instance, map.boundary_workers(), &assignment);
  metrics_.phase2_seconds = watch.ElapsedSeconds();
  metrics_.inserted_boundary = reconcile.inserted;
  metrics_.seeded_boundary = reconcile.seeded;
  metrics_.polish_moves = reconcile.polish_moves;

  stats_.moves = reconcile.polish_moves;
  stats_.final_score = TotalScore(instance, assignment);
  executor_.RecycleProblems(&problems);
  return assignment;
}

DispatchService::DispatchService(DispatchConfig config,
                                 const CooperationMatrix* global_coop,
                                 AssignerFactory factory)
    : config_(config),
      global_coop_(global_coop),
      sharded_(config.sharded, std::move(factory)) {
  CASC_CHECK(global_coop_ != nullptr);
  CASC_CHECK_GE(config_.max_tasks_per_batch, 0);
  CASC_CHECK_GT(config_.batch_interval, 0.0);
  sharded_.set_workspace(&workspace_);
}

DispatchResult DispatchService::RunBatch(std::vector<Worker> workers,
                                         std::vector<Task> tasks,
                                         double now) {
  // Admission: earliest deadline first under the per-batch budget.
  std::vector<Task> deferred;
  const int budget = config_.max_tasks_per_batch;
  if (budget > 0 && static_cast<int>(tasks.size()) > budget) {
    std::stable_sort(tasks.begin(), tasks.end(),
                     [](const Task& a, const Task& b) {
                       if (a.deadline != b.deadline) {
                         return a.deadline < b.deadline;
                       }
                       return a.id < b.id;
                     });
    deferred.assign(tasks.begin() + budget, tasks.end());
    tasks.resize(static_cast<size_t>(budget));
  }

  std::vector<int> ids;
  ids.reserve(workers.size());
  for (const Worker& worker : workers) {
    CASC_CHECK_GE(worker.id, 0)
        << "worker ids index the service's global cooperation matrix";
    CASC_CHECK_LT(worker.id, global_coop_->num_workers())
        << "worker id beyond the global cooperation matrix";
    ids.push_back(static_cast<int>(worker.id));
  }
  const int num_admitted = static_cast<int>(tasks.size());
  Instance instance(std::move(workers), std::move(tasks),
                    global_coop_->View(std::move(ids)), now,
                    config_.min_group_size);
  instance.ComputeValidPairs(DefaultSpatialBackend(), &workspace_);

  BatchMetrics batch;
  batch.now = now;
  batch.num_workers = instance.num_workers();
  batch.num_tasks = instance.num_tasks();
  batch.valid_pairs = static_cast<int64_t>(instance.NumValidPairs());
  Stopwatch watch;
  Assignment assignment = sharded_.Run(instance);
  batch.seconds = watch.ElapsedSeconds();
  batch.score = TotalScore(instance, assignment);
  batch.assigned_workers = assignment.NumAssigned();
  for (TaskIndex t = 0; t < instance.num_tasks(); ++t) {
    if (assignment.GroupSize(t) >= instance.min_group_size()) {
      ++batch.completed_tasks;
    }
  }

  ServiceMetrics metrics = sharded_.metrics();
  metrics.admitted_tasks = num_admitted;
  metrics.deferred_tasks = static_cast<int>(deferred.size());
  metrics.queue_depth = static_cast<int>(deferred.size());
  batch_metrics_.push_back(metrics);

  return DispatchResult{std::move(instance), std::move(assignment),
                        std::move(deferred), std::move(metrics), batch};
}

RunSummary DispatchService::Run(const EventStream& stream) {
  CASC_CHECK(stream.HasDenseWorkerIds())
      << "the dispatch service indexes global_coop by worker .id: the "
         "stream's worker ids must be exactly a permutation of "
         "0..num_workers-1";
  CASC_CHECK_GE(global_coop_->num_workers(),
                static_cast<int>(stream.num_workers()))
      << "global_coop is smaller than the stream's worker population";
  batch_metrics_.clear();

  // Pool state carried across batches (Algorithm 1's "available" sets).
  std::vector<Worker> idle_workers;
  std::vector<Task> open_tasks;
  std::vector<std::pair<double, Worker>> busy_workers;

  RunSummary summary;
  double now = stream.FirstEventTime();
  const double end = stream.LastEventTime() + config_.batch_interval;
  int round = 0;
  double previous = -std::numeric_limits<double>::infinity();

  while (now < end) {
    for (Worker& worker : stream.WorkersArrivingIn(previous, now + 1e-12)) {
      idle_workers.push_back(worker);
    }
    for (Task& task : stream.TasksArrivingIn(previous, now + 1e-12)) {
      open_tasks.push_back(task);
    }
    for (auto it = busy_workers.begin(); it != busy_workers.end();) {
      if (it->first <= now) {
        idle_workers.push_back(it->second);
        it = busy_workers.erase(it);
      } else {
        ++it;
      }
    }
    open_tasks.erase(
        std::remove_if(open_tasks.begin(), open_tasks.end(),
                       [&](const Task& task) { return task.deadline < now; }),
        open_tasks.end());

    if (!idle_workers.empty() && !open_tasks.empty()) {
      DispatchResult result = RunBatch(idle_workers, open_tasks, now);
      result.batch.round = round;

      // Commit: groups reaching B start now; everyone else carries over,
      // together with the admission queue's deferred overflow.
      const Instance& instance = result.instance;
      std::vector<bool> worker_started(
          static_cast<size_t>(instance.num_workers()), false);
      std::vector<bool> task_started(
          static_cast<size_t>(instance.num_tasks()), false);
      for (TaskIndex t = 0; t < instance.num_tasks(); ++t) {
        if (result.assignment.GroupSize(t) < instance.min_group_size()) {
          continue;
        }
        task_started[static_cast<size_t>(t)] = true;
        for (const WorkerIndex w : result.assignment.GroupOf(t)) {
          worker_started[static_cast<size_t>(w)] = true;
        }
      }
      std::vector<Worker> still_idle;
      for (int i = 0; i < instance.num_workers(); ++i) {
        const Worker& worker = instance.workers()[static_cast<size_t>(i)];
        if (worker_started[static_cast<size_t>(i)]) {
          busy_workers.emplace_back(now + config_.task_duration, worker);
        } else {
          still_idle.push_back(worker);
        }
      }
      idle_workers = std::move(still_idle);
      std::vector<Task> still_open;
      for (int j = 0; j < instance.num_tasks(); ++j) {
        if (!task_started[static_cast<size_t>(j)]) {
          still_open.push_back(instance.tasks()[static_cast<size_t>(j)]);
        }
      }
      for (Task& task : result.deferred) still_open.push_back(task);
      open_tasks = std::move(still_open);
      batch_metrics_.back().queue_depth =
          static_cast<int>(open_tasks.size());

      summary.batches.push_back(result.batch);

      // The committed batch is finished with its scratch state: return
      // the CSR pair index and the assignment's slabs to the pool so the
      // next batch allocates nothing in steady state.
      workspace_.Recycle(result.instance.ReleaseValidPairs());
      workspace_.Recycle(std::move(result.assignment));
    }

    previous = now + 1e-12;
    now += config_.batch_interval;
    ++round;
  }
  return summary;
}

}  // namespace casc
