#include "service/dispatch_service.h"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "common/histogram.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "model/objective.h"
#include "model/objective_model.h"
#include "sim/streaming_plane.h"

namespace casc {
namespace {

void AppendIntArray(std::ostringstream& out, const char* key,
                    const std::vector<int>& values) {
  out << "\"" << key << "\":[";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out << ",";
    out << values[i];
  }
  out << "]";
}

void AppendDoubleArray(std::ostringstream& out, const char* key,
                       const std::vector<double>& values) {
  out << "\"" << key << "\":[";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out << ",";
    out << values[i];
  }
  out << "]";
}

}  // namespace

std::string ServiceMetrics::ToJson() const {
  std::ostringstream out;
  out.precision(std::numeric_limits<double>::max_digits10);
  out << "{\"num_shards\":" << num_shards << ",";
  AppendIntArray(out, "shard_workers", shard_workers);
  out << ",";
  AppendIntArray(out, "shard_tasks", shard_tasks);
  out << ",";
  AppendDoubleArray(out, "shard_seconds", shard_seconds);
  out << ",\"interior_workers\":" << interior_workers
      << ",\"boundary_workers\":" << boundary_workers
      << ",\"adopted_boundary\":" << adopted_boundary
      << ",\"inserted_boundary\":" << inserted_boundary
      << ",\"seeded_boundary\":" << seeded_boundary
      << ",\"polish_moves\":" << polish_moves
      << ",\"solve_rounds\":" << solve_rounds
      << ",\"solve_moves\":" << solve_moves
      << ",\"dirty_workers\":" << dirty_workers
      << ",\"dirty_fraction\":" << dirty_fraction
      << ",\"warm_started\":" << (warm_started ? 1 : 0)
      << ",\"partition_seconds\":" << partition_seconds
      << ",\"phase1_seconds\":" << phase1_seconds
      << ",\"phase2_seconds\":" << phase2_seconds
      << ",\"admitted_tasks\":" << admitted_tasks
      << ",\"deferred_tasks\":" << deferred_tasks
      << ",\"queue_depth\":" << queue_depth
      << ",\"prune_evals\":" << prune_evals
      << ",\"prune_skips\":" << prune_skips
      << ",\"objective\":\"" << objective << "\""
      << ",\"feasibility_rejects\":" << feasibility_rejects
      << ",\"lost_shards\":" << lost_shards
      << ",\"net_messages\":" << net_messages
      << ",\"net_bytes\":" << net_bytes
      << ",\"net_dropped\":" << net_dropped
      << ",\"net_retries\":" << net_retries
      << ",\"net_failovers\":" << net_failovers
      << ",\"net_rtt_p50_seconds\":" << net_rtt_p50_seconds
      << ",\"net_rtt_p99_seconds\":" << net_rtt_p99_seconds
      << ",\"ingest_seconds\":" << ingest_seconds
      << ",\"index_build_seconds\":" << index_build_seconds
      << ",\"batch_seconds\":" << batch_seconds
      << ",\"pipelined\":" << (pipelined ? 1 : 0)
      << ",\"ingest_splice_seconds\":" << ingest_splice_seconds
      << ",\"ingest_fresh_rows_seconds\":" << ingest_fresh_rows_seconds
      << ",\"ingest_spatial_seconds\":" << ingest_spatial_seconds
      << ",\"csr_emit_seconds\":" << csr_emit_seconds
      << ",\"ingest_threads\":" << ingest_threads << "}";
  return out.str();
}

std::string RunLatencyStats::ToJson() const {
  std::ostringstream out;
  out.precision(std::numeric_limits<double>::max_digits10);
  out << "{\"batches\":" << batches << ",\"mean_seconds\":" << mean_seconds
      << ",\"p50_seconds\":" << p50_seconds
      << ",\"p99_seconds\":" << p99_seconds
      << ",\"max_seconds\":" << max_seconds
      << ",\"solve_rounds_p50\":" << solve_rounds_p50
      << ",\"solve_rounds_p99\":" << solve_rounds_p99 << "}";
  return out.str();
}

ShardedAssigner::ShardedAssigner(ShardedOptions options,
                                 AssignerFactory factory)
    : options_(options),
      factory_(std::move(factory)),
      executor_(options.num_threads),
      reconciler_(options.reconcile) {
  CASC_CHECK(factory_ != nullptr);
  CASC_CHECK_GE(options_.shards_per_side, 1);
  name_ = "SHARD" + std::to_string(options_.shards_per_side) + "x" +
          std::to_string(options_.shards_per_side) + "(" +
          factory_()->Name() + ")";
}

std::string ShardedAssigner::Name() const { return name_; }

Assignment ShardedAssigner::Run(const Instance& instance) {
  CASC_CHECK(instance.valid_pairs_ready());
  stats_ = AssignerStats{};
  metrics_ = ServiceMetrics{};

  // Cross-batch warm start: a usable attached delta is sliced per shard
  // (phase 1 adopts in-shard seeds) and handed to the reconciler (phase 2
  // re-seats boundary workers whose seeds phase 1 could not keep). A
  // stale or absent delta degrades to the cold path.
  const SolveDelta* delta = solve_delta();
  if (delta != nullptr &&
      (delta->num_carried == 0 ||
       static_cast<int>(delta->seed_task.size()) != instance.num_workers())) {
    delta = nullptr;
  }

  Stopwatch watch;
  ShardMapConfig map_config;
  map_config.shards_per_side = options_.shards_per_side;
  map_config.world = options_.world;
  const ShardMap map(instance.workers(), instance.tasks(), map_config);
  std::vector<ShardProblem> problems =
      executor_.BuildProblems(instance, map, delta);
  metrics_.partition_seconds = watch.ElapsedSeconds();

  const ShardLoadStats load = map.LoadStats();
  metrics_.num_shards = map.num_shards();
  metrics_.shard_workers = load.workers_per_shard;
  metrics_.shard_tasks = load.tasks_per_shard;
  metrics_.interior_workers = load.interior_workers;
  metrics_.boundary_workers = load.boundary_workers;

  watch.Restart();
  std::vector<AssignerStats> shard_stats;
  std::vector<int> dropped_shards;
  Assignment assignment =
      executor_.Run(instance, problems, factory_, &metrics_.shard_seconds,
                    workspace(), &shard_stats, options_.fault_hook,
                    batch_index_++, &dropped_shards);
  metrics_.lost_shards = static_cast<int>(dropped_shards.size());
  metrics_.phase1_seconds = watch.ElapsedSeconds();
  for (const AssignerStats& stats : shard_stats) {
    metrics_.prune_evals += stats.prune_candidates_evaluated;
    metrics_.prune_skips += stats.prune_candidates_skipped;
    metrics_.feasibility_rejects += stats.feasibility_rejects;
    // Rounds aggregate as the max (shards run in parallel — the critical
    // path); moves and the dirty frontier as sums.
    metrics_.solve_rounds = std::max(metrics_.solve_rounds, stats.rounds);
    metrics_.solve_moves += stats.moves;
    metrics_.dirty_workers += stats.dirty_workers;
    metrics_.warm_started = metrics_.warm_started || stats.warm_started;
  }
  metrics_.dirty_fraction =
      instance.num_workers() > 0
          ? static_cast<double>(metrics_.dirty_workers) /
                static_cast<double>(instance.num_workers())
          : 0.0;
  stats_.prune_candidates_evaluated = metrics_.prune_evals;
  stats_.prune_candidates_skipped = metrics_.prune_skips;
  stats_.feasibility_rejects = metrics_.feasibility_rejects;
  stats_.rounds = metrics_.solve_rounds;
  stats_.dirty_workers = metrics_.dirty_workers;
  stats_.warm_started = metrics_.warm_started;
  metrics_.objective = std::string(instance.objective().Id());

  watch.Restart();
  const ReconcileStats reconcile = reconciler_.Reconcile(
      instance, map.boundary_workers(), &assignment, delta);
  metrics_.phase2_seconds = watch.ElapsedSeconds();
  metrics_.adopted_boundary = reconcile.adopted;
  metrics_.inserted_boundary = reconcile.inserted;
  metrics_.seeded_boundary = reconcile.seeded;
  metrics_.polish_moves = reconcile.polish_moves;

  stats_.moves = reconcile.polish_moves;
  stats_.final_score = TotalScore(instance, assignment);
  executor_.RecycleProblems(&problems);
  return assignment;
}

DispatchService::DispatchService(DispatchConfig config,
                                 const CooperationMatrix* global_coop,
                                 AssignerFactory factory)
    : config_(config),
      global_coop_(global_coop),
      sharded_(config.sharded, std::move(factory)) {
  CASC_CHECK(global_coop_ != nullptr);
  CASC_CHECK_GE(config_.max_tasks_per_batch, 0);
  CASC_CHECK_GT(config_.batch_interval, 0.0);
  if (config_.objective.empty()) {
    objective_ = &ProcessDefaultObjective();
  } else {
    objective_ = ObjectiveByName(config_.objective);
    CASC_CHECK(objective_ != nullptr)
        << "DispatchConfig::objective names unknown objective '"
        << config_.objective << "'";
  }
  set_batch_solver(nullptr);  // default: the in-process engine
}

void DispatchService::set_batch_solver(ShardedBatchSolver* solver) {
  solver_ = solver != nullptr ? solver : &sharded_;
  solver_->AttachWorkspace(&solve_workspace_);
}

DispatchResult DispatchService::RunBatch(std::vector<Worker> workers,
                                         std::vector<Task> tasks,
                                         double now) {
  // Admission: earliest deadline first under the per-batch budget.
  std::vector<Task> deferred;
  const int budget = config_.max_tasks_per_batch;
  if (budget > 0 && static_cast<int>(tasks.size()) > budget) {
    std::stable_sort(tasks.begin(), tasks.end(),
                     [](const Task& a, const Task& b) {
                       if (a.deadline != b.deadline) {
                         return a.deadline < b.deadline;
                       }
                       return a.id < b.id;
                     });
    deferred.assign(tasks.begin() + budget, tasks.end());
    tasks.resize(static_cast<size_t>(budget));
  }

  std::vector<int> ids;
  ids.reserve(workers.size());
  for (const Worker& worker : workers) {
    CASC_CHECK_GE(worker.id, 0)
        << "worker ids index the service's global cooperation matrix";
    CASC_CHECK_LT(worker.id, global_coop_->num_workers())
        << "worker id beyond the global cooperation matrix";
    ids.push_back(static_cast<int>(worker.id));
  }
  const int num_admitted = static_cast<int>(tasks.size());
  Instance instance(std::move(workers), std::move(tasks),
                    global_coop_->View(std::move(ids)), now,
                    config_.min_group_size);
  instance.set_objective(objective_);
  Stopwatch build_watch;
  instance.ComputeValidPairs(DefaultSpatialBackend(), &build_workspace_);
  const double index_build_seconds = build_watch.ElapsedSeconds();

  BatchMetrics batch;
  batch.now = now;
  batch.num_workers = instance.num_workers();
  batch.num_tasks = instance.num_tasks();
  batch.valid_pairs = static_cast<int64_t>(instance.NumValidPairs());
  Stopwatch watch;
  // One-shot batches have no previous equilibrium to seed from; clear any
  // delta a prior streaming Run() left attached.
  solver_->SetSolveDelta(nullptr);
  Assignment assignment = solver_->Solve(instance);
  batch.seconds = watch.ElapsedSeconds();
  batch.score = TotalScore(instance, assignment);
  batch.assigned_workers = assignment.NumAssigned();
  for (TaskIndex t = 0; t < instance.num_tasks(); ++t) {
    if (assignment.GroupSize(t) >= instance.min_group_size()) {
      ++batch.completed_tasks;
    }
  }

  batch.index_build_seconds = index_build_seconds;

  ServiceMetrics metrics = solver_->metrics();
  batch.gt_rounds = metrics.solve_rounds;
  batch.solve_moves = metrics.solve_moves;
  batch.dirty_workers = metrics.dirty_workers;
  batch.dirty_fraction = metrics.dirty_fraction;
  batch.warm_started = metrics.warm_started;
  metrics.admitted_tasks = num_admitted;
  metrics.deferred_tasks = static_cast<int>(deferred.size());
  metrics.queue_depth = static_cast<int>(deferred.size());
  metrics.index_build_seconds = index_build_seconds;
  metrics.batch_seconds = index_build_seconds + batch.seconds;
  batch_metrics_.push_back(metrics);

  return DispatchResult{std::move(instance), std::move(assignment),
                        std::move(deferred), std::move(metrics), batch};
}

RunSummary DispatchService::Run(const EventStream& stream) {
  CASC_CHECK(stream.HasDenseWorkerIds())
      << "the dispatch service indexes global_coop by worker .id: the "
         "stream's worker ids must be exactly a permutation of "
         "0..num_workers-1";
  CASC_CHECK_GE(global_coop_->num_workers(),
                static_cast<int>(stream.num_workers()))
      << "global_coop is smaller than the stream's worker population";
  batch_metrics_.clear();
  run_latency_ = RunLatencyStats{};

  // Effective streaming-plane knobs: config anded with the process-wide
  // kill switches, so either side can force the baseline path.
  StreamingPlaneConfig plane_config = StreamingPlaneConfig::FromEnv();
  plane_config.incremental &= config_.enable_incremental;
  plane_config.audit |= config_.audit_streaming;
  plane_config.warm_start &= config_.enable_warm_start;
  const bool pipeline = config_.enable_pipeline &&
                        std::getenv("CASC_NO_PIPELINE") == nullptr;
  // Pool-slice policy: when the pipeline is on, ingest runs concurrently
  // with the shard solvers, so the plane gets its own slice of the host
  // (what the shard executor does not use) instead of competing for the
  // same cores. An explicit CASC_INGEST_THREADS always wins.
  if (plane_config.incremental && plane_config.parallel_ingest &&
      plane_config.ingest_threads <= 0) {
    const int hw = ThreadPool::DefaultThreads();
    plane_config.ingest_threads =
        pipeline ? std::max(1, hw - config_.sharded.num_threads) : hw;
  }

  // Cross-batch pools and delta-maintained valid-pair rows.
  StreamingPlane plane(plane_config);
  EventStream::Cursor cursor = stream.NewCursor();
  // Two-slot pipeline: chunk 0 (the caller) solves batch N while chunk 1
  // ingests batch N+1's arrivals into the plane. The solver only reads
  // its Instance and the solve-side workspace; the ingest only mutates
  // the plane, the cursor and the arrival buffers — no shared state, so
  // the join makes Commit() deterministic.
  ThreadPool pipeline_pool(pipeline ? 2 : 1);

  std::vector<Worker> arrived_workers;
  std::vector<Task> arrived_tasks;
  std::vector<Worker> batch_workers;
  std::vector<Task> batch_tasks;

  RunSummary summary;
  double now = stream.FirstEventTime();
  const double end = stream.LastEventTime() + config_.batch_interval;
  int round = 0;
  double window_start = -std::numeric_limits<double>::infinity();
  // Set when the previous iteration's overlap already ingested this
  // batch's arrivals (and staged its pre-existing releases).
  bool ingested_ahead = false;
  double overlapped_ingest_seconds = 0.0;

  while (now < end) {
    double ingest_seconds = 0.0;
    const bool was_overlapped = ingested_ahead;
    if (!ingested_ahead) {
      Stopwatch ingest_watch;
      arrived_workers.clear();
      arrived_tasks.clear();
      cursor.NextBatch(window_start, now + 1e-12, &arrived_workers,
                       &arrived_tasks);
      window_start = now + 1e-12;
      plane.Ingest(now, arrived_workers, arrived_tasks);
      ingest_seconds = ingest_watch.ElapsedSeconds();
    } else {
      ingest_seconds = overlapped_ingest_seconds;
      ingested_ahead = false;
    }
    // Snapshot the phase split before the overlap chunk's Ingest of the
    // NEXT batch overwrites the plane's counters. When this batch's
    // ingest rode along the previous solve, the plane still holds its
    // stats (nothing ingested since), so the same snapshot covers both.
    const StreamingIngestStats ingest_stats = plane.ingest_stats();
    plane.StageReleases(now);
    plane.FlushReleases();
    plane.Expire(now);

    if (plane.HasWork()) {
      plane.Admit(config_.max_tasks_per_batch);
      plane.MaterializeWorkers(&batch_workers);
      plane.MaterializeAdmittedTasks(&batch_tasks);
      std::vector<int> ids;
      ids.reserve(batch_workers.size());
      for (const Worker& worker : batch_workers) {
        CASC_CHECK_GE(worker.id, 0)
            << "worker ids index the service's global cooperation matrix";
        CASC_CHECK_LT(worker.id, global_coop_->num_workers())
            << "worker id beyond the global cooperation matrix";
        ids.push_back(static_cast<int>(worker.id));
      }
      Stopwatch build_watch;
      Instance instance(batch_workers, batch_tasks,
                        global_coop_->View(std::move(ids)), now,
                        config_.min_group_size);
      instance.set_objective(objective_);
      plane.BuildValidPairs(&instance, &build_workspace_);
      const double index_build_seconds = build_watch.ElapsedSeconds();
      const StreamingEmitStats emit_stats = plane.emit_stats();

      // Cross-batch warm start: export the previous equilibrium's
      // retained skeleton plus the dirty frontier (null when cold —
      // first batch, zero carry-over, CASC_NO_WARM_START). Built
      // serially here, before the overlap below: the pipelined ingest of
      // batch N+1 mutates only the plane's pools, never the exported
      // delta (a self-contained snapshot), so the solver may read it
      // concurrently.
      solver_->SetSolveDelta(plane.BuildSolveDelta(instance));

      const double next_now = now + config_.batch_interval;
      const bool overlap = pipeline && next_now < end;
      Assignment assignment;
      double solve_seconds = 0.0;
      if (overlap) {
        pipeline_pool.ParallelFor(2, [&](int64_t chunk) {
          if (chunk == 0) {
            Stopwatch solve_watch;
            assignment = solver_->Solve(instance);
            solve_seconds = solve_watch.ElapsedSeconds();
          } else {
            Stopwatch overlap_watch;
            arrived_workers.clear();
            arrived_tasks.clear();
            cursor.NextBatch(window_start, next_now + 1e-12,
                             &arrived_workers, &arrived_tasks);
            window_start = next_now + 1e-12;
            plane.Ingest(next_now, arrived_workers, arrived_tasks);
            plane.StageReleases(next_now);
            overlapped_ingest_seconds = overlap_watch.ElapsedSeconds();
          }
        });
        ingested_ahead = true;
      } else {
        Stopwatch solve_watch;
        assignment = solver_->Solve(instance);
        solve_seconds = solve_watch.ElapsedSeconds();
      }
      solver_->SetSolveDelta(nullptr);

      BatchMetrics batch;
      batch.round = round;
      batch.now = now;
      batch.num_workers = instance.num_workers();
      batch.num_tasks = instance.num_tasks();
      batch.valid_pairs = static_cast<int64_t>(instance.NumValidPairs());
      batch.seconds = solve_seconds;
      batch.score = TotalScore(instance, assignment);
      batch.assigned_workers = assignment.NumAssigned();
      for (TaskIndex t = 0; t < instance.num_tasks(); ++t) {
        if (assignment.GroupSize(t) >= instance.min_group_size()) {
          ++batch.completed_tasks;
        }
      }
      batch.ingest_seconds = ingest_seconds;
      batch.index_build_seconds = index_build_seconds;
      batch.ingest_splice_seconds = ingest_stats.splice_seconds;
      batch.ingest_fresh_rows_seconds = ingest_stats.fresh_rows_seconds;
      batch.ingest_spatial_seconds = ingest_stats.spatial_insert_seconds;
      batch.csr_emit_seconds = emit_stats.csr_emit_seconds;

      // Commit: groups reaching B start now; everyone else carries over,
      // together with the admission queue's deferred overflow.
      plane.Commit(instance, assignment, now + config_.task_duration);

      ServiceMetrics metrics = solver_->metrics();
      // Per-batch solver convergence telemetry: invariant across thread
      // counts and pipeline modes (the delta is mode-independent and the
      // shard solves deterministic), so the combo-identity tests may
      // compare it.
      batch.gt_rounds = metrics.solve_rounds;
      batch.solve_moves = metrics.solve_moves;
      batch.dirty_workers = metrics.dirty_workers;
      batch.dirty_fraction = metrics.dirty_fraction;
      batch.warm_started = metrics.warm_started;
      metrics.admitted_tasks = instance.num_tasks();
      metrics.deferred_tasks = plane.num_deferred();
      metrics.queue_depth = plane.queue_depth_after_commit();
      metrics.ingest_seconds = ingest_seconds;
      metrics.index_build_seconds = index_build_seconds;
      metrics.ingest_splice_seconds = ingest_stats.splice_seconds;
      metrics.ingest_fresh_rows_seconds = ingest_stats.fresh_rows_seconds;
      metrics.ingest_spatial_seconds = ingest_stats.spatial_insert_seconds;
      metrics.csr_emit_seconds = emit_stats.csr_emit_seconds;
      metrics.ingest_threads = plane.ingest_threads();
      metrics.pipelined = was_overlapped;
      // Critical path: ingest counts only when it did not ride along a
      // previous solve.
      metrics.batch_seconds = (was_overlapped ? 0.0 : ingest_seconds) +
                              index_build_seconds + solve_seconds;
      batch_metrics_.push_back(metrics);
      summary.batches.push_back(batch);

      // The committed batch is finished with its scratch state: return
      // the CSR pair index and the assignment's slabs to the pools so
      // the next batch allocates nothing in steady state.
      build_workspace_.Recycle(instance.ReleaseValidPairs());
      solve_workspace_.Recycle(std::move(assignment));
    }

    now += config_.batch_interval;
    ++round;
  }

  // Run-level latency distribution over the batches' critical paths.
  if (!batch_metrics_.empty()) {
    double worst = 0.0;
    double total = 0.0;
    for (const ServiceMetrics& metrics : batch_metrics_) {
      worst = std::max(worst, metrics.batch_seconds);
      total += metrics.batch_seconds;
    }
    Histogram histogram(0.0, std::max(worst * (1.0 + 1e-9), 1e-9), 1000);
    QuantileSketch rounds_sketch;
    for (const ServiceMetrics& metrics : batch_metrics_) {
      histogram.Add(metrics.batch_seconds);
      rounds_sketch.Add(static_cast<double>(metrics.solve_rounds));
    }
    run_latency_.batches = static_cast<int64_t>(batch_metrics_.size());
    run_latency_.mean_seconds =
        total / static_cast<double>(batch_metrics_.size());
    run_latency_.p50_seconds = histogram.Quantile(0.5);
    run_latency_.p99_seconds = histogram.Quantile(0.99);
    run_latency_.max_seconds = worst;
    run_latency_.solve_rounds_p50 = rounds_sketch.Quantile(0.5);
    run_latency_.solve_rounds_p99 = rounds_sketch.Quantile(0.99);
  }
  return summary;
}

}  // namespace casc
