#ifndef CASC_SPATIAL_KD_TREE_H_
#define CASC_SPATIAL_KD_TREE_H_

#include <cstddef>
#include <vector>

#include "spatial/spatial_index.h"

namespace casc {

/// A 2-D kd-tree over points, the classic alternative to the R-tree for
/// the batch framework's working-area queries.
///
/// Build() produces a perfectly balanced tree by recursive median
/// splitting (O(n log n)); Insert() descends by the splitting dimension
/// and appends an unbalanced leaf (fine for the framework's
/// mostly-rebuild usage). Queries prune by splitting-plane distance.
///
/// Stored in a flat array (no per-node allocations): children are
/// indices, -1 for none.
class KdTree : public SpatialIndex {
 public:
  KdTree() = default;

  void Insert(const SpatialItem& item) override;
  void Build(const std::vector<SpatialItem>& items) override;
  std::vector<int64_t> RangeQuery(const Rect& rect) const override;
  std::vector<int64_t> CircleQuery(const Point& center,
                                   double radius) const override;
  std::vector<int64_t> Knn(const Point& center, size_t k) const override;
  size_t Size() const override { return nodes_.size(); }

  /// Depth of the deepest node (0 for empty, 1 for a single node).
  int Depth() const;

  /// Verifies the kd ordering invariant on every node; CHECK-fails on
  /// violation. Exposed for tests.
  void CheckInvariants() const;

 private:
  struct Node {
    SpatialItem item;
    int axis = 0;    // 0 = x, 1 = y
    int left = -1;   // coordinate on `axis` <= splitting coordinate
    int right = -1;  // coordinate on `axis` >= splitting coordinate
  };

  int BuildRecursive(std::vector<SpatialItem>* items, size_t begin,
                     size_t end, int axis);

  std::vector<Node> nodes_;
  int root_ = -1;
};

}  // namespace casc

#endif  // CASC_SPATIAL_KD_TREE_H_
