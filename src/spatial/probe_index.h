#ifndef CASC_SPATIAL_PROBE_INDEX_H_
#define CASC_SPATIAL_PROBE_INDEX_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "spatial/spatial_index.h"

namespace casc {

/// The one shared sizing heuristic for throwaway per-batch probe indexes
/// (the streaming splice's arrival-delta index and the from-scratch
/// valid-pair scan's grid). Backend choice never affects outputs — every
/// backend returns ascending ids — so these constants tune only speed.
///
/// Below the cutoff a brute-force linear scan wins: building any index
/// costs more than the handful of comparisons per probe it would save.
/// The cutoff was measured on the splice path (one probe per known
/// worker, so at 1M workers even a ~40-item delta deserves cell pruning):
/// the grid overtakes the scan between ~12 and ~24 items for the small
/// working radii large worlds use, and 16 sits in that window on every
/// host tried (see EXPERIMENTS.md, PR 10 micro-bench note). Previously
/// the splice probe used 16 while the scratch scan used a fixed default
/// grid — same intent, two constants; now both route through here.
inline constexpr size_t kProbeLinearScanCutoff = 16;

/// Cells per side for a probe grid over `n` items: sqrt(n) targets ~1
/// item per cell, clamped so tiny deltas keep cells coarse enough to be
/// worth walking and huge batches don't allocate a million empty cells.
int ProbeGridCells(size_t n);

/// Builds the probe index for `items` under the shared heuristic: a
/// LinearScan below kProbeLinearScanCutoff, a ProbeGridCells-sized
/// GridIndex otherwise.
std::unique_ptr<SpatialIndex> MakeProbeIndex(
    const std::vector<SpatialItem>& items);

}  // namespace casc

#endif  // CASC_SPATIAL_PROBE_INDEX_H_
