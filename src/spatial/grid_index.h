#ifndef CASC_SPATIAL_GRID_INDEX_H_
#define CASC_SPATIAL_GRID_INDEX_H_

#include <vector>

#include "spatial/spatial_index.h"

namespace casc {

/// Uniform grid over [0,1]^2. Points outside the unit square are clamped
/// into the boundary cells, so the index remains correct (if slower) for
/// out-of-range inputs.
///
/// Cell resolution is fixed at construction; a resolution near
/// 1 / expected_query_radius keeps candidate lists short for the working-
/// area queries issued by the batch framework.
///
/// The grid is fully mutation-capable: Insert/Remove touch exactly one
/// cell each, so a streaming caller maintaining the index across batches
/// pays O(delta) per batch instead of an O(n) rebuild. Cell order is not
/// part of the contract (queries sort their results by id), which lets
/// Remove use swap-with-last eviction. InsertBatch fans a large batch out
/// over a pool with each thread owning a contiguous cell range, appending
/// its items in batch order — the resulting cell contents are exactly
/// those of a serial Insert loop, on any thread count.
class GridIndex : public SpatialIndex {
 public:
  /// Creates a `cells_per_side` x `cells_per_side` grid.
  /// Requires cells_per_side >= 1.
  explicit GridIndex(int cells_per_side = 32);

  void Insert(const SpatialItem& item) override;
  bool Remove(const SpatialItem& item) override;
  void Build(const std::vector<SpatialItem>& items) override;
  void InsertBatch(const std::vector<SpatialItem>& items,
                   ThreadPool* pool) override;
  std::vector<int64_t> RangeQuery(const Rect& rect) const override;
  std::vector<int64_t> CircleQuery(const Point& center,
                                   double radius) const override;
  void CircleQueryInto(const Point& center, double radius,
                       std::vector<int64_t>* out) const override;
  std::vector<int64_t> Knn(const Point& center, size_t k) const override;
  size_t Size() const override { return size_; }

 private:
  int CellOf(double coord) const;
  const std::vector<SpatialItem>& Cell(int cx, int cy) const;

  int cells_per_side_;
  std::vector<std::vector<SpatialItem>> cells_;
  size_t size_ = 0;
  std::vector<int32_t> batch_cells_;  // InsertBatch scratch: cell per item
};

}  // namespace casc

#endif  // CASC_SPATIAL_GRID_INDEX_H_
