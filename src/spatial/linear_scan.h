#ifndef CASC_SPATIAL_LINEAR_SCAN_H_
#define CASC_SPATIAL_LINEAR_SCAN_H_

#include <vector>

#include "spatial/spatial_index.h"

namespace casc {

/// Brute-force SpatialIndex: O(n) per query. Serves as the correctness
/// reference for GridIndex and RTree in tests, and as the honest baseline
/// in the spatial micro-benchmark.
class LinearScan : public SpatialIndex {
 public:
  void Insert(const SpatialItem& item) override;
  bool Remove(const SpatialItem& item) override;
  void Build(const std::vector<SpatialItem>& items) override;
  std::vector<int64_t> RangeQuery(const Rect& rect) const override;
  std::vector<int64_t> CircleQuery(const Point& center,
                                   double radius) const override;
  void CircleQueryInto(const Point& center, double radius,
                       std::vector<int64_t>* out) const override;
  std::vector<int64_t> Knn(const Point& center, size_t k) const override;
  size_t Size() const override { return items_.size(); }

 private:
  std::vector<SpatialItem> items_;
};

}  // namespace casc

#endif  // CASC_SPATIAL_LINEAR_SCAN_H_
