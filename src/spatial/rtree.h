#ifndef CASC_SPATIAL_RTREE_H_
#define CASC_SPATIAL_RTREE_H_

#include <memory>
#include <vector>

#include "spatial/spatial_index.h"

namespace casc {

/// An R-tree over 2-D points, the index the paper cites ([24]) for the
/// working-area range queries of the batch framework (Algorithm 1).
///
/// * Bulk loading uses Sort-Tile-Recursive (STR), producing a packed tree;
///   the batch framework rebuilds the task index once per batch, so this
///   is the common path.
/// * Incremental Insert() uses Guttman's least-enlargement descent with
///   quadratic split.
/// * Incremental Remove() deletes the item from its leaf without
///   condensing: bounding boxes are left loose (still containing, so
///   queries stay correct) and emptied nodes are pruned. Every removal is
///   counted in removed_since_build(); once the count passes a caller-
///   chosen tombstone threshold, the accumulated slack makes a fresh
///   Build() cheaper than continuing to query the degraded tree — the
///   streaming plane rebuilds at removed_since_build() >
///   fraction * Size().
/// * Queries: rectangle, circle (working area), and best-first kNN.
class RTree : public SpatialIndex {
 public:
  /// Tree node; opaque to callers, public so internal helpers can name it.
  struct Node;

  /// Creates an R-tree with the given node fan-out bounds.
  /// Requires 2 <= min_entries <= max_entries / 2.
  explicit RTree(int max_entries = 16, int min_entries = 4);
  ~RTree() override;

  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;
  RTree(RTree&&) = default;
  RTree& operator=(RTree&&) = default;

  void Insert(const SpatialItem& item) override;
  bool Remove(const SpatialItem& item) override;
  void Build(const std::vector<SpatialItem>& items) override;
  /// Guttman-inserts small batches; once the batch reaches half the live
  /// size, collects the tree and STR-rebuilds over old + new instead
  /// (cheaper than n/2 one-by-one descents, and it resets any loose
  /// bounds accumulated by removals). Either path yields the same query
  /// results — all queries sort by id — so callers never observe which
  /// one ran.
  void InsertBatch(const std::vector<SpatialItem>& items,
                   ThreadPool* pool) override;
  std::vector<int64_t> RangeQuery(const Rect& rect) const override;
  std::vector<int64_t> CircleQuery(const Point& center,
                                   double radius) const override;
  void CircleQueryInto(const Point& center, double radius,
                       std::vector<int64_t>* out) const override;
  std::vector<int64_t> Knn(const Point& center, size_t k) const override;
  size_t Size() const override { return size_; }

  /// Removals applied since the last Build() (or construction). Loose
  /// bounds accumulate with each removal; callers compare this against
  /// their tombstone threshold to decide when to rebuild.
  int64_t removed_since_build() const { return removed_since_build_; }

  /// Height of the tree (0 for empty, 1 for a single leaf).
  int Height() const;

  /// Verifies structural invariants (bounding boxes tight enough to
  /// contain children, fan-out bounds, uniform leaf depth); CHECK-fails on
  /// violation. Exposed for tests.
  void CheckInvariants() const;

 private:
  /// Removes one (id, location) match under `node`; returns true when
  /// found. Prunes children that become empty.
  bool RemoveFrom(Node* node, const SpatialItem& item);

  /// Appends every stored item under `node` to `out` (traversal order).
  static void CollectInto(const Node* node, std::vector<SpatialItem>* out);

  std::unique_ptr<Node> root_;
  int max_entries_;
  int min_entries_;
  size_t size_ = 0;
  int64_t removed_since_build_ = 0;
};

}  // namespace casc

#endif  // CASC_SPATIAL_RTREE_H_
