#ifndef CASC_SPATIAL_SPATIAL_INDEX_H_
#define CASC_SPATIAL_SPATIAL_INDEX_H_

#include <cstdint>
#include <vector>

#include "geo/point.h"
#include "geo/rect.h"

namespace casc {

class ThreadPool;

/// An indexed point with an opaque caller-owned identifier (a task or
/// worker index in the model layer).
struct SpatialItem {
  int64_t id = 0;
  Point location;
};

/// Interface for 2-D point indexes used by the batch framework to retrieve
/// the valid tasks inside each worker's working area (Algorithm 1, lines
/// 4-5). Implementations: LinearScan (reference), GridIndex, RTree.
class SpatialIndex {
 public:
  virtual ~SpatialIndex() = default;

  /// Adds one item. Duplicate ids are allowed and returned independently.
  virtual void Insert(const SpatialItem& item) = 0;

  /// Removes one item previously inserted with exactly this (id, location)
  /// pair; returns false (and changes nothing) when no such item exists.
  /// With duplicates, removes one arbitrary matching copy. The default
  /// implementation refuses (returns false): only the mutation-capable
  /// backends (GridIndex, RTree, LinearScan) support incremental
  /// maintenance; callers holding other backends fall back to Build().
  virtual bool Remove(const SpatialItem& item) {
    (void)item;
    return false;
  }

  /// Bulk-loads `items`, replacing current contents. Implementations may
  /// override with something faster than repeated Insert().
  virtual void Build(const std::vector<SpatialItem>& items);

  /// Inserts `items` as one batch, keeping current contents. The default
  /// is a serial Insert() loop; mutation-capable backends may override
  /// with a bulk or deterministically parallel path (fanning out on
  /// `pool`, which may be null). Because every query sorts its results by
  /// id, the internal layout an override produces never changes what any
  /// later query returns relative to serial insertion.
  virtual void InsertBatch(const std::vector<SpatialItem>& items,
                           ThreadPool* pool);

  /// Returns ids of all items inside `rect` (boundary inclusive),
  /// in ascending id order.
  virtual std::vector<int64_t> RangeQuery(const Rect& rect) const = 0;

  /// Returns ids of all items within `radius` of `center` (boundary
  /// inclusive), in ascending id order.
  virtual std::vector<int64_t> CircleQuery(const Point& center,
                                           double radius) const = 0;

  /// CircleQuery() into a caller-owned buffer: `out` is cleared and
  /// refilled (ascending id order), reusing its capacity. Hot streaming
  /// paths issue one circle query per worker per batch; routing them
  /// through a reused buffer removes that allocation churn entirely. The
  /// default copies through CircleQuery(); the shipped backends override
  /// it allocation-free.
  virtual void CircleQueryInto(const Point& center, double radius,
                               std::vector<int64_t>* out) const;

  /// Returns the `k` nearest items to `center`, closest first; ties broken
  /// by ascending id. Returns fewer when the index holds fewer items.
  virtual std::vector<int64_t> Knn(const Point& center, size_t k) const = 0;

  /// Number of stored items.
  virtual size_t Size() const = 0;
};

}  // namespace casc

#endif  // CASC_SPATIAL_SPATIAL_INDEX_H_
