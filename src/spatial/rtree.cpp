#include "spatial/rtree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "common/check.h"

namespace casc {

struct RTree::Node {
  bool is_leaf = true;
  Rect bounds = Rect::Empty();
  std::vector<SpatialItem> items;                // leaf payload
  std::vector<std::unique_ptr<Node>> children;   // internal payload

  size_t EntryCount() const {
    return is_leaf ? items.size() : children.size();
  }

  void RecomputeBounds() {
    bounds = Rect::Empty();
    if (is_leaf) {
      for (const auto& item : items) bounds.Extend(item.location);
    } else {
      for (const auto& child : children) bounds.Extend(child->bounds);
    }
  }
};

RTree::RTree(int max_entries, int min_entries)
    : max_entries_(max_entries), min_entries_(min_entries) {
  CASC_CHECK_GE(min_entries, 2);
  CASC_CHECK_LE(min_entries, max_entries / 2);
}

RTree::~RTree() = default;

int RTree::Height() const {
  if (!root_) return 0;
  int height = 1;
  const RTree::Node* node = root_.get();
  while (!node->is_leaf) {
    node = node->children.front().get();
    ++height;
  }
  return height;
}

namespace {

/// Quadratic-split seed selection: the pair of rectangles wasting the most
/// area when grouped together.
template <typename GetRect, typename Entry>
std::pair<size_t, size_t> PickSeeds(const std::vector<Entry>& entries,
                                    GetRect get_rect) {
  size_t seed_a = 0, seed_b = 1;
  double worst = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < entries.size(); ++i) {
    for (size_t j = i + 1; j < entries.size(); ++j) {
      const Rect ri = get_rect(entries[i]);
      const Rect rj = get_rect(entries[j]);
      const double waste = ri.Union(rj).Area() - ri.Area() - rj.Area();
      if (waste > worst) {
        worst = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }
  return {seed_a, seed_b};
}

/// Distributes `entries` into two groups with Guttman's quadratic split.
/// Ensures each group receives at least `min_entries` entries.
template <typename GetRect, typename Entry>
void QuadraticSplit(std::vector<Entry> entries, int min_entries,
                    GetRect get_rect, std::vector<Entry>* group_a,
                    std::vector<Entry>* group_b) {
  CASC_CHECK_GE(entries.size(), 2u);
  auto [ia, ib] = PickSeeds(entries, get_rect);
  Rect bounds_a = get_rect(entries[ia]);
  Rect bounds_b = get_rect(entries[ib]);
  group_a->push_back(std::move(entries[ia]));
  group_b->push_back(std::move(entries[ib]));
  // Remove the two seeds (higher index first to keep the other valid).
  entries.erase(entries.begin() + static_cast<ptrdiff_t>(std::max(ia, ib)));
  entries.erase(entries.begin() + static_cast<ptrdiff_t>(std::min(ia, ib)));

  while (!entries.empty()) {
    const size_t remaining = entries.size();
    // If one group must take all remaining entries to reach min_entries,
    // give them to it outright.
    if (group_a->size() + remaining ==
        static_cast<size_t>(min_entries)) {
      for (auto& entry : entries) group_a->push_back(std::move(entry));
      return;
    }
    if (group_b->size() + remaining ==
        static_cast<size_t>(min_entries)) {
      for (auto& entry : entries) group_b->push_back(std::move(entry));
      return;
    }
    // Pick the entry with the greatest preference for one group.
    size_t best_index = 0;
    double best_diff = -1.0;
    double best_enlarge_a = 0.0, best_enlarge_b = 0.0;
    for (size_t i = 0; i < entries.size(); ++i) {
      const Rect r = get_rect(entries[i]);
      const double enlarge_a = bounds_a.Enlargement(r);
      const double enlarge_b = bounds_b.Enlargement(r);
      const double diff = std::abs(enlarge_a - enlarge_b);
      if (diff > best_diff) {
        best_diff = diff;
        best_index = i;
        best_enlarge_a = enlarge_a;
        best_enlarge_b = enlarge_b;
      }
    }
    Entry chosen = std::move(entries[best_index]);
    entries.erase(entries.begin() + static_cast<ptrdiff_t>(best_index));
    const Rect r = get_rect(chosen);
    bool to_a;
    if (best_enlarge_a != best_enlarge_b) {
      to_a = best_enlarge_a < best_enlarge_b;
    } else if (bounds_a.Area() != bounds_b.Area()) {
      to_a = bounds_a.Area() < bounds_b.Area();
    } else {
      to_a = group_a->size() <= group_b->size();
    }
    if (to_a) {
      bounds_a.Extend(r);
      group_a->push_back(std::move(chosen));
    } else {
      bounds_b.Extend(r);
      group_b->push_back(std::move(chosen));
    }
  }
}

}  // namespace

void RTree::Insert(const SpatialItem& item) {
  if (!root_) {
    root_ = std::make_unique<RTree::Node>();
    root_->is_leaf = true;
  }
  // Descend to a leaf, remembering the path for bounds maintenance.
  std::vector<RTree::Node*> path;
  RTree::Node* node = root_.get();
  for (;;) {
    path.push_back(node);
    node->bounds.Extend(item.location);
    if (node->is_leaf) break;
    // Least-enlargement child; area, then child count break ties.
    RTree::Node* best = nullptr;
    double best_enlarge = std::numeric_limits<double>::infinity();
    double best_area = std::numeric_limits<double>::infinity();
    for (const auto& child : node->children) {
      const double enlarge =
          child->bounds.Enlargement(Rect::FromPoint(item.location));
      const double area = child->bounds.Area();
      if (enlarge < best_enlarge ||
          (enlarge == best_enlarge && area < best_area)) {
        best_enlarge = enlarge;
        best_area = area;
        best = child.get();
      }
    }
    node = best;
  }
  node->items.push_back(item);
  ++size_;

  // Split upward while nodes overflow.
  for (size_t level = path.size(); level-- > 0;) {
    RTree::Node* current = path[level];
    if (current->EntryCount() <= static_cast<size_t>(max_entries_)) break;

    auto sibling = std::make_unique<RTree::Node>();
    sibling->is_leaf = current->is_leaf;
    if (current->is_leaf) {
      std::vector<SpatialItem> group_a, group_b;
      QuadraticSplit(
          std::move(current->items), min_entries_,
          [](const SpatialItem& it) { return Rect::FromPoint(it.location); },
          &group_a, &group_b);
      current->items = std::move(group_a);
      sibling->items = std::move(group_b);
    } else {
      std::vector<std::unique_ptr<RTree::Node>> group_a, group_b;
      QuadraticSplit(
          std::move(current->children), min_entries_,
          [](const std::unique_ptr<RTree::Node>& child) {
            return child->bounds;
          },
          &group_a, &group_b);
      current->children = std::move(group_a);
      sibling->children = std::move(group_b);
    }
    current->RecomputeBounds();
    sibling->RecomputeBounds();

    if (level == 0) {
      // Grow a new root.
      auto new_root = std::make_unique<RTree::Node>();
      new_root->is_leaf = false;
      new_root->children.push_back(std::move(root_));
      new_root->children.push_back(std::move(sibling));
      new_root->RecomputeBounds();
      root_ = std::move(new_root);
    } else {
      path[level - 1]->children.push_back(std::move(sibling));
      path[level - 1]->RecomputeBounds();
    }
  }
}

void RTree::CollectInto(const RTree::Node* node,
                        std::vector<SpatialItem>* out) {
  if (node->is_leaf) {
    out->insert(out->end(), node->items.begin(), node->items.end());
    return;
  }
  for (const auto& child : node->children) CollectInto(child.get(), out);
}

void RTree::InsertBatch(const std::vector<SpatialItem>& items,
                        ThreadPool* pool) {
  (void)pool;  // Guttman descents are inherently serial; the rebuild path
               // is already bulk. Parallel spatial ingest happens one
               // level up (GridIndex fan-out / per-worker row splice).
  if (items.empty()) return;
  if (size_ > 0 && items.size() < size_ / 2) {
    for (const auto& item : items) Insert(item);
    return;
  }
  std::vector<SpatialItem> all;
  all.reserve(size_ + items.size());
  if (root_) CollectInto(root_.get(), &all);
  all.insert(all.end(), items.begin(), items.end());
  Build(all);
}

bool RTree::RemoveFrom(RTree::Node* node, const SpatialItem& item) {
  if (!node->bounds.Contains(item.location)) return false;
  if (node->is_leaf) {
    for (size_t i = 0; i < node->items.size(); ++i) {
      const SpatialItem& candidate = node->items[i];
      if (candidate.id == item.id &&
          candidate.location.x == item.location.x &&
          candidate.location.y == item.location.y) {
        // Leaf order is not part of any query contract (results are
        // sorted by id), so swap-with-last keeps the erase O(1).
        node->items[i] = node->items.back();
        node->items.pop_back();
        return true;
      }
    }
    return false;
  }
  for (size_t c = 0; c < node->children.size(); ++c) {
    if (!RemoveFrom(node->children[c].get(), item)) continue;
    if (node->children[c]->EntryCount() == 0) {
      node->children[c] = std::move(node->children.back());
      node->children.pop_back();
    }
    // Bounds are left loose on purpose: they still contain everything
    // below, so queries stay correct; the removed_since_build() counter
    // lets callers rebuild once the slack accumulates.
    return true;
  }
  return false;
}

bool RTree::Remove(const SpatialItem& item) {
  if (!root_) return false;
  if (!RemoveFrom(root_.get(), item)) return false;
  --size_;
  ++removed_since_build_;
  if (root_->EntryCount() == 0) {
    root_.reset();
  } else {
    // Collapse single-child internal roots so Height() stays honest and
    // leaf depth stays uniform.
    while (!root_->is_leaf && root_->children.size() == 1) {
      root_ = std::move(root_->children.front());
    }
  }
  return true;
}

void RTree::Build(const std::vector<SpatialItem>& items) {
  root_.reset();
  removed_since_build_ = 0;
  size_ = items.size();
  if (items.empty()) return;

  // Sort-Tile-Recursive packing: sort by x, slice into vertical strips of
  // ~sqrt(n/M) each, sort each strip by y, and cut leaves of M entries.
  std::vector<SpatialItem> sorted = items;
  const size_t capacity = static_cast<size_t>(max_entries_);
  const size_t leaf_count =
      (sorted.size() + capacity - 1) / capacity;
  const size_t strips = static_cast<size_t>(
      std::ceil(std::sqrt(static_cast<double>(leaf_count))));
  const size_t strip_size =
      ((sorted.size() + strips - 1) / strips + capacity - 1) / capacity *
      capacity;

  std::sort(sorted.begin(), sorted.end(),
            [](const SpatialItem& a, const SpatialItem& b) {
              return a.location.x < b.location.x;
            });

  std::vector<std::unique_ptr<RTree::Node>> level;
  for (size_t begin = 0; begin < sorted.size(); begin += strip_size) {
    const size_t end = std::min(begin + strip_size, sorted.size());
    std::sort(sorted.begin() + static_cast<ptrdiff_t>(begin),
              sorted.begin() + static_cast<ptrdiff_t>(end),
              [](const SpatialItem& a, const SpatialItem& b) {
                return a.location.y < b.location.y;
              });
    for (size_t i = begin; i < end; i += capacity) {
      auto leaf = std::make_unique<RTree::Node>();
      leaf->is_leaf = true;
      const size_t leaf_end = std::min(i + capacity, end);
      leaf->items.assign(sorted.begin() + static_cast<ptrdiff_t>(i),
                         sorted.begin() + static_cast<ptrdiff_t>(leaf_end));
      leaf->RecomputeBounds();
      level.push_back(std::move(leaf));
    }
  }

  // Pack parent levels until a single root remains.
  while (level.size() > 1) {
    std::vector<std::unique_ptr<RTree::Node>> parents;
    // Sort nodes by bounding-box center (x then tile by y) for locality.
    std::sort(level.begin(), level.end(),
              [](const std::unique_ptr<RTree::Node>& a,
                 const std::unique_ptr<RTree::Node>& b) {
                return a->bounds.Center().x < b->bounds.Center().x;
              });
    const size_t parent_count =
        (level.size() + capacity - 1) / capacity;
    const size_t parent_strips = static_cast<size_t>(
        std::ceil(std::sqrt(static_cast<double>(parent_count))));
    const size_t parent_strip_size =
        ((level.size() + parent_strips - 1) / parent_strips + capacity - 1) /
        capacity * capacity;
    for (size_t begin = 0; begin < level.size(); begin += parent_strip_size) {
      const size_t end = std::min(begin + parent_strip_size, level.size());
      std::sort(level.begin() + static_cast<ptrdiff_t>(begin),
                level.begin() + static_cast<ptrdiff_t>(end),
                [](const std::unique_ptr<RTree::Node>& a,
                   const std::unique_ptr<RTree::Node>& b) {
                  return a->bounds.Center().y < b->bounds.Center().y;
                });
      for (size_t i = begin; i < end; i += capacity) {
        auto parent = std::make_unique<RTree::Node>();
        parent->is_leaf = false;
        const size_t child_end = std::min(i + capacity, end);
        for (size_t c = i; c < child_end; ++c) {
          parent->children.push_back(std::move(level[c]));
        }
        parent->RecomputeBounds();
        parents.push_back(std::move(parent));
      }
    }
    level = std::move(parents);
  }
  root_ = std::move(level.front());
}

std::vector<int64_t> RTree::RangeQuery(const Rect& rect) const {
  std::vector<int64_t> out;
  if (!root_ || rect.IsEmpty()) return out;
  std::vector<const RTree::Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const RTree::Node* node = stack.back();
    stack.pop_back();
    if (!node->bounds.Intersects(rect)) continue;
    if (node->is_leaf) {
      for (const auto& item : node->items) {
        if (rect.Contains(item.location)) out.push_back(item.id);
      }
    } else {
      for (const auto& child : node->children) stack.push_back(child.get());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<int64_t> RTree::CircleQuery(const Point& center,
                                        double radius) const {
  std::vector<int64_t> out;
  CircleQueryInto(center, radius, &out);
  return out;
}

void RTree::CircleQueryInto(const Point& center, double radius,
                            std::vector<int64_t>* out) const {
  out->clear();
  if (!root_ || radius < 0.0) return;
  const Rect box = Rect::FromCircle(center, radius);
  const double r2 = radius * radius;
  // Per-thread traversal stack: parallel streaming splice issues this
  // query concurrently from many threads, each needing its own stack;
  // thread_local keeps the hot path allocation-free after warm-up.
  static thread_local std::vector<const RTree::Node*> stack;
  stack.clear();
  stack.push_back(root_.get());
  while (!stack.empty()) {
    const RTree::Node* node = stack.back();
    stack.pop_back();
    if (!node->bounds.Intersects(box)) continue;
    if (node->bounds.MinSquaredDistance(center) > r2) continue;
    if (node->is_leaf) {
      for (const auto& item : node->items) {
        if (SquaredDistance(center, item.location) <= r2) {
          out->push_back(item.id);
        }
      }
    } else {
      for (const auto& child : node->children) stack.push_back(child.get());
    }
  }
  std::sort(out->begin(), out->end());
}

std::vector<int64_t> RTree::Knn(const Point& center, size_t k) const {
  if (!root_ || k == 0) return {};
  // Best-first search over nodes and items, keyed by min distance.
  struct QueueEntry {
    double dist2;
    bool is_item;
    int64_t item_id;
    const RTree::Node* node;
    bool operator>(const QueueEntry& other) const {
      if (dist2 != other.dist2) return dist2 > other.dist2;
      // Visit items before nodes at equal distance so equal-distance ties
      // resolve deterministically by id below.
      return item_id > other.item_id;
    }
  };
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      queue;
  queue.push({root_->bounds.MinSquaredDistance(center), false, -1,
              root_.get()});
  std::vector<int64_t> out;
  while (!queue.empty() && out.size() < k) {
    const QueueEntry entry = queue.top();
    queue.pop();
    if (entry.is_item) {
      out.push_back(entry.item_id);
      continue;
    }
    const RTree::Node* node = entry.node;
    if (node->is_leaf) {
      for (const auto& item : node->items) {
        queue.push({SquaredDistance(center, item.location), true, item.id,
                    nullptr});
      }
    } else {
      for (const auto& child : node->children) {
        queue.push({child->bounds.MinSquaredDistance(center), false, -1,
                    child.get()});
      }
    }
  }
  return out;
}

namespace {

void CheckNode(const RTree::Node* node, int max_entries, int min_entries,
               bool is_root, int depth, int* leaf_depth, size_t* item_count);

}  // namespace

void RTree::CheckInvariants() const {
  if (!root_) {
    CASC_CHECK_EQ(size_, 0u);
    return;
  }
  int leaf_depth = -1;
  size_t item_count = 0;
  CheckNode(root_.get(), max_entries_, min_entries_, /*is_root=*/true, 0,
            &leaf_depth, &item_count);
  CASC_CHECK_EQ(item_count, size_);
}

namespace {

void CheckNode(const RTree::Node* node, int max_entries, int min_entries,
               bool is_root, int depth, int* leaf_depth,
               size_t* item_count) {
  CASC_CHECK_LE(node->EntryCount(), static_cast<size_t>(max_entries));
  if (!is_root) {
    CASC_CHECK_GE(node->EntryCount(), 1u);
  }
  (void)min_entries;  // STR packing does not guarantee min fill; fan-out
                      // upper bound and geometry are the hard invariants.
  if (node->is_leaf) {
    if (*leaf_depth == -1) {
      *leaf_depth = depth;
    } else {
      CASC_CHECK_EQ(*leaf_depth, depth) << "leaves at different depths";
    }
    for (const auto& item : node->items) {
      CASC_CHECK(node->bounds.Contains(item.location));
      ++*item_count;
    }
  } else {
    for (const auto& child : node->children) {
      CASC_CHECK(node->bounds.Contains(child->bounds));
      CheckNode(child.get(), max_entries, min_entries, /*is_root=*/false,
                depth + 1, leaf_depth, item_count);
    }
  }
}

}  // namespace

}  // namespace casc
