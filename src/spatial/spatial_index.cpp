#include "spatial/spatial_index.h"

namespace casc {

void SpatialIndex::Build(const std::vector<SpatialItem>& items) {
  for (const auto& item : items) Insert(item);
}

}  // namespace casc
