#include "spatial/spatial_index.h"

namespace casc {

void SpatialIndex::Build(const std::vector<SpatialItem>& items) {
  for (const auto& item : items) Insert(item);
}

void SpatialIndex::InsertBatch(const std::vector<SpatialItem>& items,
                               ThreadPool* pool) {
  (void)pool;
  for (const auto& item : items) Insert(item);
}

void SpatialIndex::CircleQueryInto(const Point& center, double radius,
                                   std::vector<int64_t>* out) const {
  const std::vector<int64_t> ids = CircleQuery(center, radius);
  out->assign(ids.begin(), ids.end());
}

}  // namespace casc
