#include "spatial/probe_index.h"

#include <algorithm>
#include <cmath>

#include "spatial/grid_index.h"
#include "spatial/linear_scan.h"

namespace casc {

int ProbeGridCells(size_t n) {
  return std::clamp(static_cast<int>(std::sqrt(static_cast<double>(n))), 8,
                    64);
}

std::unique_ptr<SpatialIndex> MakeProbeIndex(
    const std::vector<SpatialItem>& items) {
  if (items.size() < kProbeLinearScanCutoff) {
    auto linear = std::make_unique<LinearScan>();
    linear->Build(items);
    return linear;
  }
  auto grid = std::make_unique<GridIndex>(ProbeGridCells(items.size()));
  grid->Build(items);
  return grid;
}

}  // namespace casc
