#include "spatial/linear_scan.h"

#include <algorithm>

namespace casc {

void LinearScan::Insert(const SpatialItem& item) { items_.push_back(item); }

bool LinearScan::Remove(const SpatialItem& item) {
  for (size_t i = 0; i < items_.size(); ++i) {
    if (items_[i].id == item.id && items_[i].location.x == item.location.x &&
        items_[i].location.y == item.location.y) {
      items_[i] = items_.back();
      items_.pop_back();
      return true;
    }
  }
  return false;
}

void LinearScan::Build(const std::vector<SpatialItem>& items) {
  items_ = items;
}

std::vector<int64_t> LinearScan::RangeQuery(const Rect& rect) const {
  std::vector<int64_t> out;
  for (const auto& item : items_) {
    if (rect.Contains(item.location)) out.push_back(item.id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<int64_t> LinearScan::CircleQuery(const Point& center,
                                             double radius) const {
  std::vector<int64_t> out;
  CircleQueryInto(center, radius, &out);
  return out;
}

void LinearScan::CircleQueryInto(const Point& center, double radius,
                                 std::vector<int64_t>* out) const {
  const double r2 = radius * radius;
  out->clear();
  for (const auto& item : items_) {
    if (SquaredDistance(center, item.location) <= r2) out->push_back(item.id);
  }
  std::sort(out->begin(), out->end());
}

std::vector<int64_t> LinearScan::Knn(const Point& center, size_t k) const {
  std::vector<std::pair<double, int64_t>> scored;
  scored.reserve(items_.size());
  for (const auto& item : items_) {
    scored.emplace_back(SquaredDistance(center, item.location), item.id);
  }
  const size_t count = std::min(k, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + count, scored.end());
  std::vector<int64_t> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) out.push_back(scored[i].second);
  return out;
}

}  // namespace casc
