#include "spatial/kd_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "common/check.h"

namespace casc {
namespace {

double Coordinate(const Point& p, int axis) { return axis == 0 ? p.x : p.y; }

}  // namespace

void KdTree::Insert(const SpatialItem& item) {
  Node node;
  node.item = item;
  const int index = static_cast<int>(nodes_.size());
  if (root_ == -1) {
    node.axis = 0;
    nodes_.push_back(node);
    root_ = index;
    return;
  }
  int current = root_;
  for (;;) {
    Node& parent = nodes_[static_cast<size_t>(current)];
    const bool go_left = Coordinate(item.location, parent.axis) <
                         Coordinate(parent.item.location, parent.axis);
    int& child = go_left ? parent.left : parent.right;
    if (child == -1) {
      node.axis = 1 - parent.axis;
      child = index;
      nodes_.push_back(node);
      return;
    }
    current = child;
  }
}

int KdTree::BuildRecursive(std::vector<SpatialItem>* items, size_t begin,
                           size_t end, int axis) {
  if (begin >= end) return -1;
  const size_t mid = begin + (end - begin) / 2;
  std::nth_element(items->begin() + static_cast<ptrdiff_t>(begin),
                   items->begin() + static_cast<ptrdiff_t>(mid),
                   items->begin() + static_cast<ptrdiff_t>(end),
                   [axis](const SpatialItem& a, const SpatialItem& b) {
                     return Coordinate(a.location, axis) <
                            Coordinate(b.location, axis);
                   });
  Node node;
  node.item = (*items)[mid];
  node.axis = axis;
  const int index = static_cast<int>(nodes_.size());
  nodes_.push_back(node);
  const int left = BuildRecursive(items, begin, mid, 1 - axis);
  const int right = BuildRecursive(items, mid + 1, end, 1 - axis);
  nodes_[static_cast<size_t>(index)].left = left;
  nodes_[static_cast<size_t>(index)].right = right;
  return index;
}

void KdTree::Build(const std::vector<SpatialItem>& items) {
  nodes_.clear();
  nodes_.reserve(items.size());
  std::vector<SpatialItem> scratch = items;
  root_ = BuildRecursive(&scratch, 0, scratch.size(), 0);
}

std::vector<int64_t> KdTree::RangeQuery(const Rect& rect) const {
  std::vector<int64_t> out;
  if (root_ == -1 || rect.IsEmpty()) return out;
  std::vector<int> stack = {root_};
  while (!stack.empty()) {
    const Node& node = nodes_[static_cast<size_t>(stack.back())];
    stack.pop_back();
    if (rect.Contains(node.item.location)) out.push_back(node.item.id);
    const double split = Coordinate(node.item.location, node.axis);
    const double lo = node.axis == 0 ? rect.min_x : rect.min_y;
    const double hi = node.axis == 0 ? rect.max_x : rect.max_y;
    // Left subtree holds coordinates <= split (median splitting can place
    // duplicates of the split coordinate on the left), right holds >=.
    if (node.left != -1 && lo <= split) stack.push_back(node.left);
    if (node.right != -1 && hi >= split) stack.push_back(node.right);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<int64_t> KdTree::CircleQuery(const Point& center,
                                         double radius) const {
  std::vector<int64_t> out;
  if (root_ == -1 || radius < 0.0) return out;
  const double r2 = radius * radius;
  std::vector<int> stack = {root_};
  while (!stack.empty()) {
    const Node& node = nodes_[static_cast<size_t>(stack.back())];
    stack.pop_back();
    if (SquaredDistance(center, node.item.location) <= r2) {
      out.push_back(node.item.id);
    }
    const double split = Coordinate(node.item.location, node.axis);
    const double c = Coordinate(center, node.axis);
    if (node.left != -1 && c - radius <= split) stack.push_back(node.left);
    if (node.right != -1 && c + radius >= split) stack.push_back(node.right);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<int64_t> KdTree::Knn(const Point& center, size_t k) const {
  if (root_ == -1 || k == 0) return {};
  // Max-heap of the best k candidates found so far (distance, id).
  std::priority_queue<std::pair<double, int64_t>> best;
  // Depth-first with plane-distance pruning.
  std::vector<int> stack = {root_};
  while (!stack.empty()) {
    const Node& node = nodes_[static_cast<size_t>(stack.back())];
    stack.pop_back();
    const double d2 = SquaredDistance(center, node.item.location);
    if (best.size() < k) {
      best.emplace(d2, node.item.id);
    } else if (d2 < best.top().first ||
               (d2 == best.top().first && node.item.id < best.top().second)) {
      best.pop();
      best.emplace(d2, node.item.id);
    }
    const double split = Coordinate(node.item.location, node.axis);
    const double c = Coordinate(center, node.axis);
    const double plane = c - split;  // signed distance to the plane
    const int near_child = plane < 0 ? node.left : node.right;
    const int far_child = plane < 0 ? node.right : node.left;
    // The far side can only help if the plane is closer than the current
    // k-th best (or we still need candidates).
    const bool explore_far =
        far_child != -1 &&
        (best.size() < k || plane * plane <= best.top().first);
    if (explore_far) stack.push_back(far_child);
    if (near_child != -1) stack.push_back(near_child);
  }
  std::vector<std::pair<double, int64_t>> sorted;
  sorted.reserve(best.size());
  while (!best.empty()) {
    sorted.push_back(best.top());
    best.pop();
  }
  std::sort(sorted.begin(), sorted.end());
  std::vector<int64_t> out;
  out.reserve(sorted.size());
  for (const auto& [d2, id] : sorted) out.push_back(id);
  return out;
}

int KdTree::Depth() const {
  if (root_ == -1) return 0;
  // Iterative depth computation over (node, depth) pairs.
  int deepest = 0;
  std::vector<std::pair<int, int>> stack = {{root_, 1}};
  while (!stack.empty()) {
    const auto [index, depth] = stack.back();
    stack.pop_back();
    deepest = std::max(deepest, depth);
    const Node& node = nodes_[static_cast<size_t>(index)];
    if (node.left != -1) stack.push_back({node.left, depth + 1});
    if (node.right != -1) stack.push_back({node.right, depth + 1});
  }
  return deepest;
}

void KdTree::CheckInvariants() const {
  if (root_ == -1) {
    CASC_CHECK(nodes_.empty());
    return;
  }
  // Every node must lie inside the region carved out by its ancestors'
  // splitting planes: descending left bounds the axis from above
  // (inclusive), descending right bounds it from below (inclusive).
  struct Frame {
    int index;
    double min_x, min_y, max_x, max_y;  // inclusive allowed region
  };
  constexpr double kInf = std::numeric_limits<double>::infinity();
  size_t visited = 0;
  std::vector<Frame> stack = {{root_, -kInf, -kInf, kInf, kInf}};
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    const Node& node = nodes_[static_cast<size_t>(frame.index)];
    ++visited;
    CASC_CHECK_GE(node.item.location.x, frame.min_x);
    CASC_CHECK_LE(node.item.location.x, frame.max_x);
    CASC_CHECK_GE(node.item.location.y, frame.min_y);
    CASC_CHECK_LE(node.item.location.y, frame.max_y);
    const double split = Coordinate(node.item.location, node.axis);
    if (node.left != -1) {
      Frame child = frame;
      child.index = node.left;
      (node.axis == 0 ? child.max_x : child.max_y) = split;
      stack.push_back(child);
    }
    if (node.right != -1) {
      Frame child = frame;
      child.index = node.right;
      (node.axis == 0 ? child.min_x : child.min_y) = split;
      stack.push_back(child);
    }
  }
  CASC_CHECK_EQ(visited, nodes_.size());
}

}  // namespace casc
