#include "spatial/grid_index.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/thread_pool.h"

namespace casc {

GridIndex::GridIndex(int cells_per_side) : cells_per_side_(cells_per_side) {
  CASC_CHECK_GE(cells_per_side, 1);
  cells_.resize(static_cast<size_t>(cells_per_side) * cells_per_side);
}

int GridIndex::CellOf(double coord) const {
  const int cell = static_cast<int>(coord * cells_per_side_);
  return std::clamp(cell, 0, cells_per_side_ - 1);
}

const std::vector<SpatialItem>& GridIndex::Cell(int cx, int cy) const {
  return cells_[static_cast<size_t>(cy) * cells_per_side_ + cx];
}

void GridIndex::Insert(const SpatialItem& item) {
  const int cx = CellOf(item.location.x);
  const int cy = CellOf(item.location.y);
  cells_[static_cast<size_t>(cy) * cells_per_side_ + cx].push_back(item);
  ++size_;
}

bool GridIndex::Remove(const SpatialItem& item) {
  const int cx = CellOf(item.location.x);
  const int cy = CellOf(item.location.y);
  std::vector<SpatialItem>& cell =
      cells_[static_cast<size_t>(cy) * cells_per_side_ + cx];
  for (size_t i = 0; i < cell.size(); ++i) {
    if (cell[i].id == item.id && cell[i].location.x == item.location.x &&
        cell[i].location.y == item.location.y) {
      cell[i] = cell.back();
      cell.pop_back();
      --size_;
      return true;
    }
  }
  return false;
}

void GridIndex::Build(const std::vector<SpatialItem>& items) {
  for (auto& cell : cells_) cell.clear();
  size_ = 0;
  for (const auto& item : items) Insert(item);
}

void GridIndex::InsertBatch(const std::vector<SpatialItem>& items,
                            ThreadPool* pool) {
  const int threads = pool != nullptr ? pool->num_threads() : 1;
  if (threads <= 1 || items.size() < 1024) {
    for (const auto& item : items) Insert(item);
    return;
  }
  // Two-pass fan-out: precompute each item's cell, then give every thread
  // a contiguous range of cells; each thread scans the whole batch and
  // appends only the items landing in its own cells, in batch order. No
  // two threads touch the same cell, and in-cell order equals the serial
  // Insert loop's, so the layout (not just query results) is identical on
  // any thread count.
  batch_cells_.resize(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    const int cx = CellOf(items[i].location.x);
    const int cy = CellOf(items[i].location.y);
    batch_cells_[i] = static_cast<int32_t>(cy * cells_per_side_ + cx);
  }
  const int64_t num_cells =
      static_cast<int64_t>(cells_per_side_) * cells_per_side_;
  pool->ParallelFor(threads, [&](int64_t chunk) {
    const auto [cell_begin, cell_end] =
        ThreadPool::ChunkBounds(num_cells, threads, static_cast<int>(chunk));
    for (size_t i = 0; i < items.size(); ++i) {
      const int32_t cell = batch_cells_[i];
      if (cell >= cell_begin && cell < cell_end) {
        cells_[static_cast<size_t>(cell)].push_back(items[i]);
      }
    }
  });
  size_ += items.size();
}

std::vector<int64_t> GridIndex::RangeQuery(const Rect& rect) const {
  std::vector<int64_t> out;
  if (rect.IsEmpty()) return out;
  const int x_lo = CellOf(rect.min_x);
  const int x_hi = CellOf(rect.max_x);
  const int y_lo = CellOf(rect.min_y);
  const int y_hi = CellOf(rect.max_y);
  for (int cy = y_lo; cy <= y_hi; ++cy) {
    for (int cx = x_lo; cx <= x_hi; ++cx) {
      for (const auto& item : Cell(cx, cy)) {
        if (rect.Contains(item.location)) out.push_back(item.id);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<int64_t> GridIndex::CircleQuery(const Point& center,
                                            double radius) const {
  std::vector<int64_t> out;
  CircleQueryInto(center, radius, &out);
  return out;
}

void GridIndex::CircleQueryInto(const Point& center, double radius,
                                std::vector<int64_t>* out) const {
  out->clear();
  if (radius < 0.0) return;
  const Rect box = Rect::FromCircle(center, radius);
  const double r2 = radius * radius;
  const int x_lo = CellOf(box.min_x);
  const int x_hi = CellOf(box.max_x);
  const int y_lo = CellOf(box.min_y);
  const int y_hi = CellOf(box.max_y);
  for (int cy = y_lo; cy <= y_hi; ++cy) {
    for (int cx = x_lo; cx <= x_hi; ++cx) {
      for (const auto& item : Cell(cx, cy)) {
        if (SquaredDistance(center, item.location) <= r2) {
          out->push_back(item.id);
        }
      }
    }
  }
  std::sort(out->begin(), out->end());
}

std::vector<int64_t> GridIndex::Knn(const Point& center, size_t k) const {
  // Expanding-ring search: examine cells in growing square rings around
  // the center cell until the k-th best distance is covered by the ring.
  std::vector<std::pair<double, int64_t>> best;
  if (k == 0 || size_ == 0) return {};
  const int ccx = CellOf(center.x);
  const int ccy = CellOf(center.y);
  const double cell_width = 1.0 / cells_per_side_;
  for (int ring = 0; ring < cells_per_side_; ++ring) {
    // Cells whose Chebyshev cell-distance from the center cell is `ring`.
    for (int cy = ccy - ring; cy <= ccy + ring; ++cy) {
      if (cy < 0 || cy >= cells_per_side_) continue;
      for (int cx = ccx - ring; cx <= ccx + ring; ++cx) {
        if (cx < 0 || cx >= cells_per_side_) continue;
        if (std::max(std::abs(cx - ccx), std::abs(cy - ccy)) != ring) continue;
        for (const auto& item : Cell(cx, cy)) {
          best.emplace_back(SquaredDistance(center, item.location), item.id);
        }
      }
    }
    if (best.size() >= k) {
      std::nth_element(best.begin(), best.begin() + (k - 1), best.end());
      const double kth = best[k - 1].first;
      // Every unexplored cell is at least `ring * cell_width` away from the
      // center point; stop when that bound exceeds the current k-th result.
      const double ring_lower_bound = ring * cell_width;
      if (ring_lower_bound * ring_lower_bound >= kth) break;
    }
  }
  const size_t count = std::min(k, best.size());
  std::partial_sort(best.begin(), best.begin() + count, best.end());
  std::vector<int64_t> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) out.push_back(best[i].second);
  return out;
}

}  // namespace casc
