#include "sim/metrics.h"

#include <algorithm>
#include <cmath>

namespace casc {

double RunSummary::TotalScore() const {
  double total = 0.0;
  for (const auto& batch : batches) total += batch.score;
  return total;
}

double RunSummary::TotalUpperBound() const {
  double total = 0.0;
  for (const auto& batch : batches) total += batch.upper_bound;
  return total;
}

double RunSummary::AvgBatchSeconds() const {
  if (batches.empty()) return 0.0;
  double total = 0.0;
  for (const auto& batch : batches) total += batch.seconds;
  return total / static_cast<double>(batches.size());
}

double RunSummary::MaxBatchSeconds() const {
  double worst = 0.0;
  for (const auto& batch : batches) worst = std::max(worst, batch.seconds);
  return worst;
}

int64_t RunSummary::TotalAssignedWorkers() const {
  int64_t total = 0;
  for (const auto& batch : batches) total += batch.assigned_workers;
  return total;
}

int64_t RunSummary::TotalCompletedTasks() const {
  int64_t total = 0;
  for (const auto& batch : batches) total += batch.completed_tasks;
  return total;
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double total = 0.0;
  for (const double v : values) total += v;
  return total / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double mean = Mean(values);
  double sum_sq = 0.0;
  for (const double v : values) sum_sq += (v - mean) * (v - mean);
  return std::sqrt(sum_sq / static_cast<double>(values.size() - 1));
}

}  // namespace casc
