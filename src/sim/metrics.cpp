#include "sim/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace casc {
namespace {

/// Shortest double rendering that round-trips (max_digits10).
std::ostringstream MakeJsonStream() {
  std::ostringstream out;
  out.precision(std::numeric_limits<double>::max_digits10);
  return out;
}

}  // namespace

std::string ToJson(const BatchMetrics& metrics) {
  std::ostringstream out = MakeJsonStream();
  out << "{\"round\":" << metrics.round << ",\"now\":" << metrics.now
      << ",\"num_workers\":" << metrics.num_workers
      << ",\"num_tasks\":" << metrics.num_tasks
      << ",\"valid_pairs\":" << metrics.valid_pairs
      << ",\"score\":" << metrics.score
      << ",\"upper_bound\":" << metrics.upper_bound
      << ",\"seconds\":" << metrics.seconds
      << ",\"assigned_workers\":" << metrics.assigned_workers
      << ",\"completed_tasks\":" << metrics.completed_tasks
      << ",\"gt_rounds\":" << metrics.gt_rounds
      << ",\"solve_moves\":" << metrics.solve_moves
      << ",\"dirty_workers\":" << metrics.dirty_workers
      << ",\"dirty_fraction\":" << metrics.dirty_fraction
      << ",\"warm_started\":" << (metrics.warm_started ? "true" : "false")
      << ",\"ingest_seconds\":" << metrics.ingest_seconds
      << ",\"index_build_seconds\":" << metrics.index_build_seconds
      << ",\"ingest_splice_seconds\":" << metrics.ingest_splice_seconds
      << ",\"ingest_fresh_rows_seconds\":"
      << metrics.ingest_fresh_rows_seconds
      << ",\"ingest_spatial_seconds\":" << metrics.ingest_spatial_seconds
      << ",\"csr_emit_seconds\":" << metrics.csr_emit_seconds << "}";
  return out.str();
}

std::string ToJson(const RunSummary& summary) {
  std::ostringstream out = MakeJsonStream();
  out << "{\"total_score\":" << summary.TotalScore()
      << ",\"total_upper_bound\":" << summary.TotalUpperBound()
      << ",\"avg_batch_seconds\":" << summary.AvgBatchSeconds()
      << ",\"max_batch_seconds\":" << summary.MaxBatchSeconds()
      << ",\"total_assigned_workers\":" << summary.TotalAssignedWorkers()
      << ",\"total_completed_tasks\":" << summary.TotalCompletedTasks()
      << ",\"batches\":[";
  for (size_t i = 0; i < summary.batches.size(); ++i) {
    if (i > 0) out << ",";
    out << ToJson(summary.batches[i]);
  }
  out << "]}";
  return out.str();
}

double RunSummary::TotalScore() const {
  double total = 0.0;
  for (const auto& batch : batches) total += batch.score;
  return total;
}

double RunSummary::TotalUpperBound() const {
  double total = 0.0;
  for (const auto& batch : batches) total += batch.upper_bound;
  return total;
}

double RunSummary::AvgBatchSeconds() const {
  if (batches.empty()) return 0.0;
  double total = 0.0;
  for (const auto& batch : batches) total += batch.seconds;
  return total / static_cast<double>(batches.size());
}

double RunSummary::MaxBatchSeconds() const {
  double worst = 0.0;
  for (const auto& batch : batches) worst = std::max(worst, batch.seconds);
  return worst;
}

int64_t RunSummary::TotalAssignedWorkers() const {
  int64_t total = 0;
  for (const auto& batch : batches) total += batch.assigned_workers;
  return total;
}

int64_t RunSummary::TotalCompletedTasks() const {
  int64_t total = 0;
  for (const auto& batch : batches) total += batch.completed_tasks;
  return total;
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double total = 0.0;
  for (const double v : values) total += v;
  return total / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double mean = Mean(values);
  double sum_sq = 0.0;
  for (const double v : values) sum_sq += (v - mean) * (v - mean);
  return std::sqrt(sum_sq / static_cast<double>(values.size() - 1));
}

}  // namespace casc
