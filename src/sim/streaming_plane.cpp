#include "sim/streaming_plane.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/check.h"
#include "geo/reachability.h"
#include "spatial/grid_index.h"
#include "spatial/linear_scan.h"
#include "spatial/rtree.h"

namespace casc {
namespace {

/// Probe index over one ingest window's task arrivals: brute force for
/// small deltas, a grid sized to the delta otherwise. Any backend would
/// do (identical query results); this only tunes the constant.
std::unique_ptr<SpatialIndex> MakeDeltaIndex(
    const std::vector<SpatialItem>& items) {
  if (items.size() < 64) {
    auto linear = std::make_unique<LinearScan>();
    linear->Build(items);
    return linear;
  }
  const int cells = std::clamp(
      static_cast<int>(std::sqrt(static_cast<double>(items.size()))), 8, 64);
  auto grid = std::make_unique<GridIndex>(cells);
  grid->Build(items);
  return grid;
}

}  // namespace

StreamingPlaneConfig StreamingPlaneConfig::FromEnv() {
  StreamingPlaneConfig config;
  config.backend = DefaultSpatialBackend();
  // Read at call time (not cached) so tests can flip the switches
  // between runs in one process.
  config.incremental = std::getenv("CASC_NO_INCREMENTAL") == nullptr;
  config.audit = std::getenv("CASC_STREAM_AUDIT") != nullptr;
  return config;
}

StreamingPlane::StreamingPlane(StreamingPlaneConfig config)
    : config_(config) {
  CASC_CHECK_GT(config_.rtree_rebuild_fraction, 0.0);
  if (config_.incremental) {
    switch (config_.backend) {
      case SpatialBackend::kRTree: {
        auto rtree = std::make_unique<RTree>();
        task_rtree_ = rtree.get();
        task_index_ = std::move(rtree);
        break;
      }
      case SpatialBackend::kGridIndex:
        task_index_ = std::make_unique<GridIndex>();
        break;
      case SpatialBackend::kLinearScan:
        task_index_ = std::make_unique<LinearScan>();
        break;
    }
    CASC_CHECK(task_index_ != nullptr);
  }
}

StreamingPlane::~StreamingPlane() = default;

void StreamingPlane::SpliceRow(int32_t handle, const SpatialIndex& tasks,
                               double now) {
  const Worker& worker = worker_store_[static_cast<size_t>(handle)];
  std::vector<int32_t>& row = rows_[static_cast<size_t>(handle)];
  for (const int64_t task_handle :
       tasks.CircleQuery(worker.location, worker.radius)) {
    const int32_t slot = slot_of_handle_[static_cast<size_t>(task_handle)];
    const Task& task = pool_tasks_[static_cast<size_t>(slot)];
    // The circle query already established the working-area condition
    // (time-invariant). A pair failing the deadline test now can never
    // pass it later, so it is correct to never record it.
    if (!CanArriveByDeadline(worker.location, worker.speed, task.location,
                             now, task.deadline)) {
      continue;
    }
    row.push_back(static_cast<int32_t>(task_handle));
  }
}

void StreamingPlane::Ingest(double now, std::span<const Worker> workers,
                            std::span<const Task> tasks) {
  const size_t known_workers = worker_store_.size();

  // Tasks first: new workers' rows below must see them.
  for (const Task& task : tasks) {
    const int32_t handle = static_cast<int32_t>(slot_of_handle_.size());
    slot_of_handle_.push_back(static_cast<int32_t>(pool_tasks_.size()));
    pool_task_handles_.push_back(handle);
    pool_tasks_.push_back(task);
    if (config_.incremental) {
      task_index_->Insert(SpatialItem{handle, task.location});
    }
  }

  if (config_.incremental) {
    // Splice the arrivals into every known worker's row — including busy
    // workers, so a returning worker's row is already current. One probe
    // query per worker against just the delta keeps this O(delta)-ish.
    if (!tasks.empty() && known_workers > 0) {
      rebuild_items_.clear();
      for (size_t i = 0; i < tasks.size(); ++i) {
        const int32_t handle = static_cast<int32_t>(
            slot_of_handle_.size() - tasks.size() + i);
        rebuild_items_.push_back(SpatialItem{handle, tasks[i].location});
      }
      const std::unique_ptr<SpatialIndex> delta =
          MakeDeltaIndex(rebuild_items_);
      for (size_t h = 0; h < known_workers; ++h) {
        SpliceRow(static_cast<int32_t>(h), *delta, now);
      }
    }
    // New workers: one full circle query each against the persistent
    // index (which now includes this window's tasks).
    for (const Worker& worker : workers) {
      const int32_t handle = static_cast<int32_t>(worker_store_.size());
      worker_store_.push_back(worker);
      rows_.emplace_back();
      SpliceRow(handle, *task_index_, now);
      pool_worker_handles_.push_back(handle);
    }
  } else {
    for (const Worker& worker : workers) {
      const int32_t handle = static_cast<int32_t>(worker_store_.size());
      worker_store_.push_back(worker);
      rows_.emplace_back();
      pool_worker_handles_.push_back(handle);
    }
  }
}

void StreamingPlane::StageReleases(double now) {
  size_t keep = 0;
  for (size_t i = 0; i < busy_.size(); ++i) {
    if (busy_[i].first <= now) {
      staged_releases_.push_back(busy_[i].second);
    } else {
      busy_[keep++] = busy_[i];
    }
  }
  busy_.resize(keep);
}

void StreamingPlane::FlushReleases() {
  for (const int32_t handle : staged_releases_) {
    pool_worker_handles_.push_back(handle);
  }
  staged_releases_.clear();
}

void StreamingPlane::RemoveTask(int32_t slot) {
  const int32_t handle = pool_task_handles_[static_cast<size_t>(slot)];
  if (config_.incremental) {
    const bool removed = task_index_->Remove(SpatialItem{
        handle, pool_tasks_[static_cast<size_t>(slot)].location});
    CASC_CHECK(removed) << "open task missing from the persistent index";
  }
  slot_of_handle_[static_cast<size_t>(handle)] = -1;
}

void StreamingPlane::RefreshSlots() {
  for (size_t slot = 0; slot < pool_task_handles_.size(); ++slot) {
    slot_of_handle_[static_cast<size_t>(pool_task_handles_[slot])] =
        static_cast<int32_t>(slot);
  }
}

void StreamingPlane::MaybeRebuildSpatialIndex() {
  if (task_rtree_ == nullptr) return;
  CASC_CHECK_EQ(task_rtree_->Size(), pool_tasks_.size());
  const double threshold =
      config_.rtree_rebuild_fraction *
      static_cast<double>(std::max<size_t>(pool_tasks_.size(), 1));
  if (static_cast<double>(task_rtree_->removed_since_build()) <= threshold) {
    return;
  }
  rebuild_items_.clear();
  rebuild_items_.reserve(pool_tasks_.size());
  for (size_t slot = 0; slot < pool_tasks_.size(); ++slot) {
    rebuild_items_.push_back(SpatialItem{pool_task_handles_[slot],
                                         pool_tasks_[slot].location});
  }
  task_rtree_->Build(rebuild_items_);
  ++spatial_rebuilds_;
}

void StreamingPlane::Expire(double now) {
  size_t keep = 0;
  for (size_t slot = 0; slot < pool_tasks_.size(); ++slot) {
    if (pool_tasks_[slot].deadline < now) {
      RemoveTask(static_cast<int32_t>(slot));
    } else {
      pool_tasks_[keep] = pool_tasks_[slot];
      pool_task_handles_[keep] = pool_task_handles_[slot];
      ++keep;
    }
  }
  if (keep == pool_tasks_.size()) return;
  pool_tasks_.resize(keep);
  pool_task_handles_.resize(keep);
  RefreshSlots();
  MaybeRebuildSpatialIndex();
}

void StreamingPlane::Admit(int budget) {
  const int pool_size = static_cast<int>(pool_tasks_.size());
  admitted_.resize(static_cast<size_t>(pool_size));
  for (int slot = 0; slot < pool_size; ++slot) {
    admitted_[static_cast<size_t>(slot)] = slot;
  }
  admitted_count_ = pool_size;
  if (budget > 0 && pool_size > budget) {
    // Stable EDF on slot indices == stable EDF on the task vector, so the
    // admitted prefix and the deferred suffix match the sequential
    // admission exactly.
    std::stable_sort(admitted_.begin(), admitted_.end(),
                     [&](int32_t a, int32_t b) {
                       const Task& ta = pool_tasks_[static_cast<size_t>(a)];
                       const Task& tb = pool_tasks_[static_cast<size_t>(b)];
                       if (ta.deadline != tb.deadline) {
                         return ta.deadline < tb.deadline;
                       }
                       return ta.id < tb.id;
                     });
    admitted_count_ = budget;
  }
  pool_size_at_admit_ = static_cast<size_t>(pool_size);
}

void StreamingPlane::MaterializeWorkers(std::vector<Worker>* out) const {
  CASC_CHECK(out != nullptr);
  out->clear();
  out->reserve(pool_worker_handles_.size());
  for (const int32_t handle : pool_worker_handles_) {
    out->push_back(worker_store_[static_cast<size_t>(handle)]);
  }
}

void StreamingPlane::MaterializeAdmittedTasks(std::vector<Task>* out) const {
  CASC_CHECK(out != nullptr);
  out->clear();
  out->reserve(static_cast<size_t>(admitted_count_));
  for (int i = 0; i < admitted_count_; ++i) {
    out->push_back(pool_tasks_[static_cast<size_t>(admitted_[i])]);
  }
}

void StreamingPlane::BuildValidPairs(Instance* instance,
                                     BatchWorkspace* workspace) {
  CASC_CHECK(instance != nullptr);
  CASC_CHECK_EQ(instance->num_workers(),
                static_cast<int>(pool_worker_handles_.size()));
  CASC_CHECK_EQ(instance->num_tasks(), admitted_count_);
  if (!config_.incremental) {
    // Scratch mode: the literal pre-existing rebuild-everything path.
    instance->ComputeValidPairs(config_.backend, workspace);
    return;
  }

  const double now = instance->now();
  ValidPairIndex index = workspace != nullptr
                             ? workspace->AcquireValidPairIndex()
                             : ValidPairIndex{};
  instance_index_of_slot_.assign(pool_tasks_.size(), -1);
  for (int i = 0; i < admitted_count_; ++i) {
    instance_index_of_slot_[static_cast<size_t>(admitted_[i])] = i;
  }

  index.BeginBuild(instance->num_workers(), instance->num_tasks());
  for (size_t w = 0; w < pool_worker_handles_.size(); ++w) {
    const int32_t handle = pool_worker_handles_[w];
    const Worker& worker = worker_store_[static_cast<size_t>(handle)];
    std::vector<int32_t>& row = rows_[static_cast<size_t>(handle)];
    if (worker.arrival_time > now) {
      // Not present yet (sub-epsilon window edge): empty row, exactly as
      // ComputeValidPairs() treats it. Keep the maintained row untouched.
      index.FinishWorker();
      continue;
    }
    emit_row_.clear();
    size_t keep = 0;
    for (const int32_t task_handle : row) {
      const int32_t slot = slot_of_handle_[static_cast<size_t>(task_handle)];
      if (slot < 0) continue;  // task left the pool: drop the entry
      const Task& task = pool_tasks_[static_cast<size_t>(slot)];
      if (!CanArriveByDeadline(worker.location, worker.speed, task.location,
                               now, task.deadline)) {
        // Monotone in now: the pair is dead forever, drop the entry.
        continue;
      }
      row[keep++] = task_handle;
      const int32_t instance_index =
          instance_index_of_slot_[static_cast<size_t>(slot)];
      if (instance_index < 0) continue;   // alive but deferred this batch
      if (task.create_time > now) continue;  // sub-epsilon window edge
      emit_row_.push_back(instance_index);
    }
    row.resize(keep);
    // Rows are kept in splice order (handle-ish); the CSR contract wants
    // ascending instance indices. Equal sets sorted the same way means
    // the emitted arrays are byte-identical to a from-scratch build.
    std::sort(emit_row_.begin(), emit_row_.end());
    for (const int32_t instance_index : emit_row_) {
      index.AppendValidTask(instance_index);
    }
    index.FinishWorker();
  }
  index.FinishBuild();

  if (config_.audit) {
    instance->ComputeValidPairs(config_.backend, nullptr);
    ValidPairIndex scratch = instance->ReleaseValidPairs();
    CASC_CHECK(index.SameAs(scratch))
        << "CASC_STREAM_AUDIT: delta-maintained valid pairs differ from "
           "the from-scratch build at now=" << now;
  }
  instance->AdoptValidPairs(std::move(index));
}

void StreamingPlane::Commit(const Instance& instance,
                            const Assignment& assignment,
                            double release_time) {
  const int num_workers = instance.num_workers();
  const int num_tasks = instance.num_tasks();
  CASC_CHECK_EQ(num_tasks, admitted_count_);
  CASC_CHECK_LE(static_cast<size_t>(num_workers),
                pool_worker_handles_.size());

  // Started groups (>= B members) occupy their workers until release.
  emit_row_.assign(static_cast<size_t>(num_workers), 0);
  std::vector<int32_t>& worker_started = emit_row_;
  instance_index_of_slot_.assign(static_cast<size_t>(num_tasks), 0);
  std::vector<int32_t>& task_started = instance_index_of_slot_;
  for (TaskIndex t = 0; t < num_tasks; ++t) {
    if (assignment.GroupSize(t) < instance.min_group_size()) continue;
    task_started[static_cast<size_t>(t)] = 1;
    for (const WorkerIndex w : assignment.GroupOf(t)) {
      worker_started[static_cast<size_t>(w)] = 1;
    }
  }

  // Workers: stable compaction. Pool indices past num_workers are
  // arrivals ingested during an overlapped solve; they stay in place
  // after the survivors, reproducing [survivors][arrivals].
  size_t keep = 0;
  for (size_t i = 0; i < pool_worker_handles_.size(); ++i) {
    const int32_t handle = pool_worker_handles_[i];
    if (i < static_cast<size_t>(num_workers) && worker_started[i] != 0) {
      busy_.emplace_back(release_time, handle);
    } else {
      pool_worker_handles_[keep++] = handle;
    }
  }
  pool_worker_handles_.resize(keep);

  // Tasks: rebuild the pool in the sequential carry-over order —
  // [non-started admitted, instance order][deferred][overlap arrivals].
  scratch_tasks_.clear();
  scratch_handles_.clear();
  const auto keep_slot = [&](int32_t slot) {
    scratch_tasks_.push_back(pool_tasks_[static_cast<size_t>(slot)]);
    scratch_handles_.push_back(pool_task_handles_[static_cast<size_t>(slot)]);
  };
  for (int i = 0; i < admitted_count_; ++i) {
    const int32_t slot = admitted_[static_cast<size_t>(i)];
    if (task_started[static_cast<size_t>(i)] != 0) {
      RemoveTask(slot);
    } else {
      keep_slot(slot);
    }
  }
  for (size_t i = static_cast<size_t>(admitted_count_); i < admitted_.size();
       ++i) {
    keep_slot(admitted_[i]);
  }
  committed_queue_depth_ = static_cast<int>(scratch_tasks_.size());
  for (size_t slot = pool_size_at_admit_; slot < pool_tasks_.size(); ++slot) {
    keep_slot(static_cast<int32_t>(slot));
  }
  std::swap(pool_tasks_, scratch_tasks_);
  std::swap(pool_task_handles_, scratch_handles_);
  RefreshSlots();
  MaybeRebuildSpatialIndex();
}

}  // namespace casc
