#include "sim/streaming_plane.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "model/objective.h"

#include "common/check.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "geo/reachability.h"
#include "spatial/grid_index.h"
#include "spatial/linear_scan.h"
#include "spatial/probe_index.h"
#include "spatial/rtree.h"

namespace casc {
namespace {

/// Below this many rows a loop runs inline: the fan-out costs more than
/// the work it distributes.
constexpr size_t kMinRowsPerChunk = 256;

}  // namespace

StreamingPlaneConfig StreamingPlaneConfig::FromEnv() {
  StreamingPlaneConfig config;
  config.backend = DefaultSpatialBackend();
  // Read at call time (not cached) so tests can flip the switches
  // between runs in one process.
  config.incremental = std::getenv("CASC_NO_INCREMENTAL") == nullptr;
  config.audit = std::getenv("CASC_STREAM_AUDIT") != nullptr;
  config.parallel_ingest = std::getenv("CASC_NO_PARALLEL_INGEST") == nullptr;
  if (const char* threads = std::getenv("CASC_INGEST_THREADS")) {
    config.ingest_threads = std::max(0, std::atoi(threads));
  }
  config.warm_start = std::getenv("CASC_NO_WARM_START") == nullptr;
  if (const char* epoch = std::getenv("CASC_WARM_RETRY_EPOCH")) {
    config.warm_retry_epoch = std::max(1, std::atoi(epoch));
  }
  return config;
}

StreamingPlane::StreamingPlane(StreamingPlaneConfig config)
    : config_(config) {
  CASC_CHECK_GT(config_.rtree_rebuild_fraction, 0.0);
  if (config_.incremental) {
    switch (config_.backend) {
      case SpatialBackend::kRTree: {
        auto rtree = std::make_unique<RTree>();
        task_rtree_ = rtree.get();
        task_index_ = std::move(rtree);
        break;
      }
      case SpatialBackend::kGridIndex:
        task_index_ = std::make_unique<GridIndex>();
        break;
      case SpatialBackend::kLinearScan:
        task_index_ = std::make_unique<LinearScan>();
        break;
    }
    CASC_CHECK(task_index_ != nullptr);
    if (config_.parallel_ingest) {
      ingest_threads_ = config_.ingest_threads > 0
                            ? config_.ingest_threads
                            : ThreadPool::DefaultThreads();
      ingest_threads_ = std::max(1, ingest_threads_);
    }
    if (ingest_threads_ > 1) {
      ingest_pool_ = std::make_unique<ThreadPool>(ingest_threads_);
    }
  }
  slots_.resize(static_cast<size_t>(std::max(1, ingest_threads_)));
}

StreamingPlane::~StreamingPlane() = default;

int StreamingPlane::ChunksFor(size_t count) const {
  if (ingest_threads_ <= 1 || count < 2 * kMinRowsPerChunk) return 1;
  const size_t by_grain = std::max<size_t>(count / kMinRowsPerChunk, 1);
  return static_cast<int>(
      std::min<size_t>(static_cast<size_t>(ingest_threads_), by_grain));
}

void StreamingPlane::RunOnChunks(
    size_t count, int chunks,
    const std::function<void(int, size_t, size_t)>& fn) {
  if (chunks <= 1 || ingest_pool_ == nullptr) {
    fn(0, 0, count);
    return;
  }
  ingest_pool_->ParallelFor(chunks, [&](int64_t chunk) {
    const auto [begin, end] = ThreadPool::ChunkBounds(
        static_cast<int64_t>(count), chunks, static_cast<int>(chunk));
    fn(static_cast<int>(chunk), static_cast<size_t>(begin),
       static_cast<size_t>(end));
  });
}

void StreamingPlane::SpliceRow(int32_t handle, const SpatialIndex& tasks,
                               double now, IngestSlot* scratch) {
  const Worker& worker = worker_store_[static_cast<size_t>(handle)];
  std::vector<int32_t>& row = rows_[static_cast<size_t>(handle)];
  tasks.CircleQueryInto(worker.location, worker.radius, &scratch->query);
  for (const int64_t task_handle : scratch->query) {
    const int32_t slot = slot_of_handle_[static_cast<size_t>(task_handle)];
    const Task& task = pool_tasks_[static_cast<size_t>(slot)];
    // The circle query already established the working-area condition
    // (time-invariant). A pair failing the deadline test now can never
    // pass it later, so it is correct to never record it.
    if (!CanArriveByDeadline(worker.location, worker.speed, task.location,
                             now, task.deadline)) {
      ++scratch->rejects;
      continue;
    }
    row.push_back(static_cast<int32_t>(task_handle));
    ++scratch->appended;
  }
}

void StreamingPlane::Ingest(double now, std::span<const Worker> workers,
                            std::span<const Task> tasks) {
  ingest_stats_ = StreamingIngestStats{};
  const size_t known_workers = worker_store_.size();

  // Tasks first: new workers' rows below must see them. Pool bookkeeping
  // stays serial (it is O(arrivals) pointer pushes).
  for (const Task& task : tasks) {
    const int32_t handle = static_cast<int32_t>(slot_of_handle_.size());
    slot_of_handle_.push_back(static_cast<int32_t>(pool_tasks_.size()));
    pool_task_handles_.push_back(handle);
    pool_tasks_.push_back(task);
  }

  if (!config_.incremental) {
    for (const Worker& worker : workers) {
      const int32_t handle = static_cast<int32_t>(worker_store_.size());
      worker_store_.push_back(worker);
      rows_.emplace_back();
      pool_worker_handles_.push_back(handle);
    }
    return;
  }

  Stopwatch phase;
  if (!tasks.empty()) {
    rebuild_items_.clear();
    for (size_t i = 0; i < tasks.size(); ++i) {
      const int32_t handle =
          static_cast<int32_t>(slot_of_handle_.size() - tasks.size() + i);
      rebuild_items_.push_back(SpatialItem{handle, tasks[i].location});
    }
    task_index_->InsertBatch(rebuild_items_, ingest_pool_.get());
  }
  ingest_stats_.spatial_insert_seconds = phase.ElapsedSeconds();

  // Splice the arrivals into every known worker's row — including busy
  // workers, so a returning worker's row is already current. One probe
  // query per worker against just the delta keeps this O(delta)-ish.
  // Each chunk writes only its own contiguous handle range's rows, so
  // the fan-out is race-free and the per-row outcome is exactly the
  // serial loop's; counters merge in fixed chunk order below.
  phase.Restart();
  if (!tasks.empty() && known_workers > 0) {
    // The probe index is queried once per known worker, so at 1M workers
    // even a 40-item delta deserves cell pruning; the shared heuristic
    // (spatial/probe_index.h) picks linear scan vs sized grid.
    const std::unique_ptr<SpatialIndex> delta = MakeProbeIndex(rebuild_items_);
    const int chunks = ChunksFor(known_workers);
    RunOnChunks(known_workers, chunks, [&](int chunk, size_t begin,
                                           size_t end) {
      IngestSlot& scratch = slots_[static_cast<size_t>(chunk)];
      scratch.appended = 0;
      scratch.rejects = 0;
      for (size_t h = begin; h < end; ++h) {
        SpliceRow(static_cast<int32_t>(h), *delta, now, &scratch);
      }
    });
    for (int c = 0; c < chunks; ++c) {
      ingest_stats_.spliced_entries += slots_[static_cast<size_t>(c)].appended;
      ingest_stats_.splice_rejects += slots_[static_cast<size_t>(c)].rejects;
    }
  }
  ingest_stats_.splice_seconds = phase.ElapsedSeconds();

  // New workers: one full circle query each against the persistent index
  // (which now includes this window's tasks). The stores are resized
  // up front so the parallel fill never reallocates under other chunks.
  phase.Restart();
  if (!workers.empty()) {
    worker_store_.insert(worker_store_.end(), workers.begin(), workers.end());
    rows_.resize(worker_store_.size());
    const int chunks = ChunksFor(workers.size());
    RunOnChunks(workers.size(), chunks, [&](int chunk, size_t begin,
                                            size_t end) {
      IngestSlot& scratch = slots_[static_cast<size_t>(chunk)];
      scratch.appended = 0;
      scratch.rejects = 0;
      for (size_t i = begin; i < end; ++i) {
        SpliceRow(static_cast<int32_t>(known_workers + i), *task_index_, now,
                  &scratch);
      }
    });
    for (int c = 0; c < chunks; ++c) {
      ingest_stats_.fresh_entries += slots_[static_cast<size_t>(c)].appended;
      ingest_stats_.fresh_rejects += slots_[static_cast<size_t>(c)].rejects;
    }
    for (size_t i = 0; i < workers.size(); ++i) {
      pool_worker_handles_.push_back(static_cast<int32_t>(known_workers + i));
    }
  }
  ingest_stats_.fresh_rows_seconds = phase.ElapsedSeconds();
}

void StreamingPlane::StageReleases(double now) {
  size_t keep = 0;
  for (size_t i = 0; i < busy_.size(); ++i) {
    if (busy_[i].first <= now) {
      staged_releases_.push_back(busy_[i].second);
    } else {
      busy_[keep++] = busy_[i];
    }
  }
  busy_.resize(keep);
}

void StreamingPlane::FlushReleases() {
  for (const int32_t handle : staged_releases_) {
    pool_worker_handles_.push_back(handle);
  }
  staged_releases_.clear();
}

void StreamingPlane::RemoveTask(int32_t slot) {
  const int32_t handle = pool_task_handles_[static_cast<size_t>(slot)];
  if (config_.incremental) {
    const bool removed = task_index_->Remove(SpatialItem{
        handle, pool_tasks_[static_cast<size_t>(slot)].location});
    CASC_CHECK(removed) << "open task missing from the persistent index";
  }
  slot_of_handle_[static_cast<size_t>(handle)] = -1;
}

void StreamingPlane::RefreshSlots() {
  for (size_t slot = 0; slot < pool_task_handles_.size(); ++slot) {
    slot_of_handle_[static_cast<size_t>(pool_task_handles_[slot])] =
        static_cast<int32_t>(slot);
  }
}

void StreamingPlane::MaybeRebuildSpatialIndex() {
  if (task_rtree_ == nullptr) return;
  CASC_CHECK_EQ(task_rtree_->Size(), pool_tasks_.size());
  const double threshold =
      config_.rtree_rebuild_fraction *
      static_cast<double>(std::max<size_t>(pool_tasks_.size(), 1));
  if (static_cast<double>(task_rtree_->removed_since_build()) <= threshold) {
    return;
  }
  rebuild_items_.clear();
  rebuild_items_.reserve(pool_tasks_.size());
  for (size_t slot = 0; slot < pool_tasks_.size(); ++slot) {
    rebuild_items_.push_back(SpatialItem{pool_task_handles_[slot],
                                         pool_tasks_[slot].location});
  }
  task_rtree_->Build(rebuild_items_);
  ++spatial_rebuilds_;
}

void StreamingPlane::Expire(double now) {
  size_t keep = 0;
  for (size_t slot = 0; slot < pool_tasks_.size(); ++slot) {
    if (pool_tasks_[slot].deadline < now) {
      RemoveTask(static_cast<int32_t>(slot));
    } else {
      pool_tasks_[keep] = pool_tasks_[slot];
      pool_task_handles_[keep] = pool_task_handles_[slot];
      ++keep;
    }
  }
  if (keep == pool_tasks_.size()) return;
  pool_tasks_.resize(keep);
  pool_task_handles_.resize(keep);
  RefreshSlots();
  MaybeRebuildSpatialIndex();
}

void StreamingPlane::Admit(int budget) {
  const int pool_size = static_cast<int>(pool_tasks_.size());
  admitted_.resize(static_cast<size_t>(pool_size));
  for (int slot = 0; slot < pool_size; ++slot) {
    admitted_[static_cast<size_t>(slot)] = slot;
  }
  admitted_count_ = pool_size;
  if (budget > 0 && pool_size > budget) {
    // Stable EDF on slot indices == stable EDF on the task vector, so the
    // admitted prefix and the deferred suffix match the sequential
    // admission exactly.
    std::stable_sort(admitted_.begin(), admitted_.end(),
                     [&](int32_t a, int32_t b) {
                       const Task& ta = pool_tasks_[static_cast<size_t>(a)];
                       const Task& tb = pool_tasks_[static_cast<size_t>(b)];
                       if (ta.deadline != tb.deadline) {
                         return ta.deadline < tb.deadline;
                       }
                       return ta.id < tb.id;
                     });
    admitted_count_ = budget;
  }
  pool_size_at_admit_ = static_cast<size_t>(pool_size);
}

void StreamingPlane::MaterializeWorkers(std::vector<Worker>* out) const {
  CASC_CHECK(out != nullptr);
  out->clear();
  out->reserve(pool_worker_handles_.size());
  for (const int32_t handle : pool_worker_handles_) {
    out->push_back(worker_store_[static_cast<size_t>(handle)]);
  }
}

void StreamingPlane::MaterializeAdmittedTasks(std::vector<Task>* out) const {
  CASC_CHECK(out != nullptr);
  out->clear();
  out->reserve(static_cast<size_t>(admitted_count_));
  for (int i = 0; i < admitted_count_; ++i) {
    out->push_back(pool_tasks_[static_cast<size_t>(admitted_[i])]);
  }
}

void StreamingPlane::EmitWorkerRow(size_t w, double now, IngestSlot* scratch) {
  const int32_t handle = pool_worker_handles_[w];
  const Worker& worker = worker_store_[static_cast<size_t>(handle)];
  if (worker.arrival_time > now) {
    // Not present yet (sub-epsilon window edge): empty row, exactly as
    // ComputeValidPairs() treats it. Keep the maintained row untouched.
    row_lengths_[w] = 0;
    return;
  }
  std::vector<int32_t>& row = rows_[static_cast<size_t>(handle)];
  const size_t emit_begin = scratch->emit.size();
  size_t keep = 0;
  for (const int32_t task_handle : row) {
    const int32_t slot = slot_of_handle_[static_cast<size_t>(task_handle)];
    if (slot < 0) {
      ++scratch->dropped;  // task left the pool: drop the entry
      continue;
    }
    const Task& task = pool_tasks_[static_cast<size_t>(slot)];
    if (!CanArriveByDeadline(worker.location, worker.speed, task.location,
                             now, task.deadline)) {
      // Monotone in now: the pair is dead forever, drop the entry.
      ++scratch->dropped;
      continue;
    }
    row[keep++] = task_handle;
    ++scratch->retained;
    const int32_t instance_index =
        instance_index_of_slot_[static_cast<size_t>(slot)];
    if (instance_index < 0) continue;     // alive but deferred this batch
    if (task.create_time > now) continue;  // sub-epsilon window edge
    scratch->emit.push_back(instance_index);
  }
  row.resize(keep);
  // Rows are kept in splice order (handle-ish); the CSR contract wants
  // ascending instance indices. Equal sets sorted the same way means
  // the emitted arrays are byte-identical to a from-scratch build.
  std::sort(scratch->emit.begin() + static_cast<ptrdiff_t>(emit_begin),
            scratch->emit.end());
  row_lengths_[w] = static_cast<int32_t>(scratch->emit.size() - emit_begin);
}

void StreamingPlane::BuildValidPairs(Instance* instance,
                                     BatchWorkspace* workspace) {
  CASC_CHECK(instance != nullptr);
  CASC_CHECK_EQ(instance->num_workers(),
                static_cast<int>(pool_worker_handles_.size()));
  CASC_CHECK_EQ(instance->num_tasks(), admitted_count_);
  if (!config_.incremental) {
    // Scratch mode: the literal pre-existing rebuild-everything path.
    instance->ComputeValidPairs(config_.backend, workspace);
    return;
  }

  const double now = instance->now();
  ValidPairIndex index = workspace != nullptr
                             ? workspace->AcquireValidPairIndex()
                             : ValidPairIndex{};
  instance_index_of_slot_.assign(pool_tasks_.size(), -1);
  for (int i = 0; i < admitted_count_; ++i) {
    instance_index_of_slot_[static_cast<size_t>(admitted_[i])] = i;
  }

  // Fanned-out two-pass emission. Pass 1: each chunk prunes its own
  // contiguous range of worker slots in place and collects the emitted
  // (already sorted) rows into its slot's buffer, recording per-row
  // lengths. A serial prefix sum turns the lengths into final CSR
  // offsets, then pass 2 — split into the *same* chunks, so each chunk's
  // buffer walk realigns — copies every row into its disjoint flat
  // range. Row w's content never depends on any other row, so the arrays
  // are byte-identical to the serial build for any chunk count.
  Stopwatch emit_watch;
  emit_stats_ = StreamingEmitStats{};
  const size_t num_workers = pool_worker_handles_.size();
  const int chunks = ChunksFor(num_workers);
  row_lengths_.assign(num_workers, 0);
  RunOnChunks(num_workers, chunks, [&](int chunk, size_t begin, size_t end) {
    IngestSlot& scratch = slots_[static_cast<size_t>(chunk)];
    scratch.emit.clear();
    scratch.retained = 0;
    scratch.dropped = 0;
    for (size_t w = begin; w < end; ++w) EmitWorkerRow(w, now, &scratch);
  });
  int32_t* offsets = index.StartParallelBuild(instance->num_workers(),
                                              instance->num_tasks());
  offsets[0] = 0;
  for (size_t w = 0; w < num_workers; ++w) {
    offsets[w + 1] = offsets[w] + row_lengths_[w];
  }
  TaskIndex* flat = index.AllocateParallelFlat();
  RunOnChunks(num_workers, chunks, [&](int chunk, size_t begin, size_t end) {
    const IngestSlot& scratch = slots_[static_cast<size_t>(chunk)];
    size_t src = 0;
    for (size_t w = begin; w < end; ++w) {
      const size_t n = static_cast<size_t>(row_lengths_[w]);
      std::copy_n(scratch.emit.data() + src, n, flat + offsets[w]);
      src += n;
    }
  });
  index.FinishParallelBuild();
  for (int c = 0; c < chunks; ++c) {
    emit_stats_.retained_entries += slots_[static_cast<size_t>(c)].retained;
    emit_stats_.dropped_entries += slots_[static_cast<size_t>(c)].dropped;
  }
  emit_stats_.csr_emit_seconds = emit_watch.ElapsedSeconds();

  if (config_.audit) {
    instance->ComputeValidPairs(config_.backend, nullptr);
    ValidPairIndex scratch = instance->ReleaseValidPairs();
    CASC_CHECK(index.SameAs(scratch))
        << "CASC_STREAM_AUDIT: delta-maintained valid pairs differ from "
           "the from-scratch build at now=" << now;
  }
  instance->AdoptValidPairs(std::move(index));
}

const SolveDelta* StreamingPlane::BuildSolveDelta(const Instance& instance) {
  if (!config_.warm_start) return nullptr;
  const int num_workers = instance.num_workers();
  const int num_tasks = instance.num_tasks();
  CASC_CHECK_EQ(num_workers, static_cast<int>(pool_worker_handles_.size()));
  CASC_CHECK_EQ(num_tasks, admitted_count_);
  CASC_CHECK(instance.valid_pairs_ready())
      << "BuildSolveDelta must run after BuildValidPairs";

  // One sequence number per solved batch. A handle is "carried" iff its
  // stamp equals the previous sequence number, i.e. it was part of the
  // last instance a solver actually saw — which is also why no-work
  // batches that skip the solve entirely need no special casing here.
  const int64_t prev_seq = solve_seq_;
  ++solve_seq_;
  seed_task_of_worker_.resize(worker_store_.size(), -1);
  worker_solved_stamp_.resize(worker_store_.size(), -1);
  task_solved_stamp_.resize(slot_of_handle_.size(), -1);

  delta_.seed_task.assign(static_cast<size_t>(num_workers), kNoTask);
  delta_.dirty.assign(static_cast<size_t>(num_workers), 0);
  delta_.num_seeded = 0;
  delta_.num_dirty = 0;
  delta_.num_carried = 0;
  delta_.dirty_task.assign(static_cast<size_t>(num_tasks), 0);
  delta_.num_dirty_tasks = 0;

  task_instance_of_handle_.assign(slot_of_handle_.size(), -1);
  for (int i = 0; i < num_tasks; ++i) {
    const int32_t handle =
        pool_task_handles_[static_cast<size_t>(admitted_[i])];
    task_instance_of_handle_[static_cast<size_t>(handle)] = i;
  }
  group_lost_.assign(static_cast<size_t>(num_tasks), 0);

  // Worker pass: remap each carried worker's recorded seed through the
  // handle back-map. Deadline monotonicity means a carried worker/task
  // pair can only disappear between batches, never appear, so a seed
  // that is still an instance pair today was exactly the pair played at
  // the previous equilibrium.
  for (WorkerIndex w = 0; w < num_workers; ++w) {
    const int32_t handle = pool_worker_handles_[static_cast<size_t>(w)];
    const bool carried =
        worker_solved_stamp_[static_cast<size_t>(handle)] == prev_seq;
    worker_solved_stamp_[static_cast<size_t>(handle)] = solve_seq_;
    if (!carried) {
      // Fresh arrival or returner from a busy spell.
      delta_.dirty[static_cast<size_t>(w)] = 1;
      continue;
    }
    ++delta_.num_carried;
    const int32_t seed_handle =
        seed_task_of_worker_[static_cast<size_t>(handle)];
    if (seed_handle < 0) continue;  // idle at the previous equilibrium
    const int32_t t =
        task_instance_of_handle_[static_cast<size_t>(seed_handle)];
    bool alive = t >= 0;
    if (alive) {
      const std::span<const TaskIndex> row = instance.ValidTasks(w);
      alive = std::binary_search(row.begin(), row.end(),
                                 static_cast<TaskIndex>(t));
    }
    if (alive) {
      delta_.seed_task[static_cast<size_t>(w)] = static_cast<TaskIndex>(t);
      ++delta_.num_seeded;
    } else {
      // The previous choice expired, was deferred, or its deadline died:
      // the worker must re-decide, and its old group lost a member, so
      // the group's survivors re-decide too (cascaded below — they are
      // all candidates of the lost seed's task when it is still around).
      delta_.dirty[static_cast<size_t>(w)] = 1;
      if (t >= 0) group_lost_[static_cast<size_t>(t)] = 1;
    }
  }

  // Arrival pass: a worker that is new to the solved instance (or whose
  // recorded seed died) changes the group-formation potential of every
  // task it can serve — the restricted TPG re-seed must eventually
  // retry those tasks with the newcomer, or a standing task could sit
  // unstaffed forever while cold solves would have crewed it (the
  // kEmpty trap at the delta level: best-response rounds alone cannot
  // form a group from idle workers). Marking every such task dirty
  // every batch would re-seed the whole standing frontier in
  // arrival-dense traces, so arrivals only bump a per-handle counter
  // here; a standing task re-enters the frontier on its round-robin
  // epoch slot below, once it actually accumulated fresh candidates.
  // Base-dirty workers only — candidates dirtied by the task cascade
  // below do not fan back out, so the marking needs no fixpoint
  // iteration.
  task_fresh_candidates_.resize(slot_of_handle_.size(), 0);
  for (WorkerIndex w = 0; w < num_workers; ++w) {
    if (delta_.dirty[static_cast<size_t>(w)] == 0) continue;
    for (const TaskIndex t : instance.ValidTasks(w)) {
      const int32_t handle =
          pool_task_handles_[static_cast<size_t>(admitted_[t])];
      ++task_fresh_candidates_[static_cast<size_t>(handle)];
    }
  }
  const int retry_epoch = std::max(1, config_.warm_retry_epoch);

  // Task pass: a task that is new to the solved instance attracts every
  // candidate; a retained task whose group lost a member changes every
  // member's marginal and every outsider's join value. Both cascade as
  // "dirty all candidates" — the solver's verification pass backstops
  // anything subtler.
  for (int i = 0; i < num_tasks; ++i) {
    const int32_t handle =
        pool_task_handles_[static_cast<size_t>(admitted_[i])];
    const bool carried =
        task_solved_stamp_[static_cast<size_t>(handle)] == prev_seq;
    task_solved_stamp_[static_cast<size_t>(handle)] = solve_seq_;
    const bool retry_due =
        task_fresh_candidates_[static_cast<size_t>(handle)] > 0 &&
        (handle % retry_epoch) ==
            static_cast<int32_t>(solve_seq_ % retry_epoch);
    if (carried && group_lost_[static_cast<size_t>(i)] == 0 && !retry_due) {
      continue;
    }
    task_fresh_candidates_[static_cast<size_t>(handle)] = 0;
    delta_.dirty_task[static_cast<size_t>(i)] = 1;
    ++delta_.num_dirty_tasks;
    for (const WorkerIndex c : instance.Candidates(i)) {
      delta_.dirty[static_cast<size_t>(c)] = 1;
    }
  }

  // Seeds never point at a dirty task: a new or regrouped task gets its
  // group re-formed from scratch by the warm solver's restricted TPG
  // pass, so its surviving members must be released. They are already
  // dirty (every candidate of a dirty task is).
  if (delta_.num_dirty_tasks > 0) {
    for (WorkerIndex w = 0; w < num_workers; ++w) {
      const TaskIndex t = delta_.seed_task[static_cast<size_t>(w)];
      if (t == kNoTask || delta_.dirty_task[static_cast<size_t>(t)] == 0) {
        continue;
      }
      delta_.seed_task[static_cast<size_t>(w)] = kNoTask;
      --delta_.num_seeded;
    }
  }

  for (WorkerIndex w = 0; w < num_workers; ++w) {
    delta_.num_dirty += delta_.dirty[static_cast<size_t>(w)];
  }
  // Zero carry-over: hand the solver nothing at all, so the batch runs
  // the literal cold path (bit-identical to CASC_NO_WARM_START). A
  // carried-but-all-idle skeleton IS published — the clean idle workers
  // are exactly the ones whose re-evaluation the warm rounds save.
  if (delta_.num_carried == 0) return nullptr;
  return &delta_;
}

void StreamingPlane::Commit(const Instance& instance,
                            const Assignment& assignment,
                            double release_time) {
  const int num_workers = instance.num_workers();
  const int num_tasks = instance.num_tasks();
  CASC_CHECK_EQ(num_tasks, admitted_count_);
  CASC_CHECK_LE(static_cast<size_t>(num_workers),
                pool_worker_handles_.size());

  // Started groups (>= B members) occupy their workers until release.
  emit_row_.assign(static_cast<size_t>(num_workers), 0);
  std::vector<int32_t>& worker_started = emit_row_;
  instance_index_of_slot_.assign(static_cast<size_t>(num_tasks), 0);
  std::vector<int32_t>& task_started = instance_index_of_slot_;
  for (TaskIndex t = 0; t < num_tasks; ++t) {
    if (assignment.GroupSize(t) < instance.min_group_size()) continue;
    // A crew that produces no value under the active objective (e.g. a
    // multiskill group that misses a required skill) must not start: it
    // would burn its workers' time on a worthless execution. Under the
    // default objective any group of >= B scores positive, so this gate
    // only bites for variant objectives with feasibility predicates.
    if (GroupScore(instance, t, assignment.GroupOf(t)) <= 0.0) continue;
    task_started[static_cast<size_t>(t)] = 1;
    for (const WorkerIndex w : assignment.GroupOf(t)) {
      worker_started[static_cast<size_t>(w)] = 1;
    }
  }

  // Record the solved equilibrium's skeleton by handle before the pools
  // are rebuilt (the admitted_/pool_task_handles_ maps are still those of
  // the solved instance here). Started workers leave with their whole
  // group, so their stamp is invalidated: when they return from the busy
  // queue — even within one inter-solve gap — they read as fresh.
  if (config_.warm_start) {
    seed_task_of_worker_.resize(worker_store_.size(), -1);
    worker_solved_stamp_.resize(worker_store_.size(), -1);
    for (WorkerIndex w = 0; w < num_workers; ++w) {
      const int32_t handle = pool_worker_handles_[static_cast<size_t>(w)];
      if (worker_started[static_cast<size_t>(w)] != 0) {
        seed_task_of_worker_[static_cast<size_t>(handle)] = -1;
        worker_solved_stamp_[static_cast<size_t>(handle)] = -1;
        continue;
      }
      const TaskIndex t = assignment.TaskOf(w);
      seed_task_of_worker_[static_cast<size_t>(handle)] =
          t == kNoTask
              ? -1
              : pool_task_handles_[static_cast<size_t>(
                    admitted_[static_cast<size_t>(t)])];
    }
  }

  // Workers: stable compaction. Pool indices past num_workers are
  // arrivals ingested during an overlapped solve; they stay in place
  // after the survivors, reproducing [survivors][arrivals].
  size_t keep = 0;
  for (size_t i = 0; i < pool_worker_handles_.size(); ++i) {
    const int32_t handle = pool_worker_handles_[i];
    if (i < static_cast<size_t>(num_workers) && worker_started[i] != 0) {
      busy_.emplace_back(release_time, handle);
    } else {
      pool_worker_handles_[keep++] = handle;
    }
  }
  pool_worker_handles_.resize(keep);

  // Tasks: rebuild the pool in the sequential carry-over order —
  // [non-started admitted, instance order][deferred][overlap arrivals].
  scratch_tasks_.clear();
  scratch_handles_.clear();
  const auto keep_slot = [&](int32_t slot) {
    scratch_tasks_.push_back(pool_tasks_[static_cast<size_t>(slot)]);
    scratch_handles_.push_back(pool_task_handles_[static_cast<size_t>(slot)]);
  };
  for (int i = 0; i < admitted_count_; ++i) {
    const int32_t slot = admitted_[static_cast<size_t>(i)];
    if (task_started[static_cast<size_t>(i)] != 0) {
      RemoveTask(slot);
    } else {
      keep_slot(slot);
    }
  }
  for (size_t i = static_cast<size_t>(admitted_count_); i < admitted_.size();
       ++i) {
    keep_slot(admitted_[i]);
  }
  committed_queue_depth_ = static_cast<int>(scratch_tasks_.size());
  for (size_t slot = pool_size_at_admit_; slot < pool_tasks_.size(); ++slot) {
    keep_slot(static_cast<int32_t>(slot));
  }
  std::swap(pool_tasks_, scratch_tasks_);
  std::swap(pool_task_handles_, scratch_handles_);
  RefreshSlots();
  MaybeRebuildSpatialIndex();
}

}  // namespace casc
