#ifndef CASC_SIM_RATING_MODEL_H_
#define CASC_SIM_RATING_MODEL_H_

#include <vector>

#include "common/rng.h"
#include "model/cooperation_matrix.h"

namespace casc {

/// Simulates the requester ratings that drive Equation 1.
///
/// The platform never observes true pairwise cooperation; it observes a
/// per-task rating s_j in [0, 1]. This model holds the (hidden) ground
/// truth matrix and produces ratings as the team's mean true pairwise
/// quality plus Gaussian observation noise, clamped to [0, 1] — the
/// standard generative assumption behind Equation 1's estimator.
class RatingModel {
 public:
  /// Takes the hidden ground truth and the rating noise level.
  RatingModel(CooperationMatrix ground_truth, double noise_stddev,
              uint64_t seed);

  /// Rates one finished team. Requires team.size() >= 2.
  double RateTeam(const std::vector<int>& team);

  /// Mean true pairwise (unordered) quality of the team, the noiseless
  /// rating. Requires team.size() >= 2.
  double TrueTeamQuality(const std::vector<int>& team) const;

  const CooperationMatrix& ground_truth() const { return ground_truth_; }

 private:
  CooperationMatrix ground_truth_;
  double noise_stddev_;
  Rng rng_;
};

/// Result of one learning wave (see QualityLearningLoop).
struct WaveResult {
  double believed_score = 0.0;  ///< Q under the platform's estimates
  double actual_score = 0.0;    ///< Q under the hidden ground truth
  int teams_rated = 0;          ///< tasks that reached B and were rated
  double estimation_error = 0.0;  ///< mean |estimate - truth| over pairs
};

/// Couples CooperationHistory (the Equation-1 estimator) with a
/// RatingModel: each wave assigns workers using the *believed* qualities,
/// scores the outcome under the *true* qualities, rates every finished
/// team, and feeds the ratings back into the history. Over waves the
/// estimates converge toward the truth and the actual assignment quality
/// rises — the closed loop the paper's Equation 1 is designed for.
class QualityLearningLoop {
 public:
  /// `alpha` and `omega` parameterize Equation 1.
  QualityLearningLoop(CooperationMatrix ground_truth, double alpha,
                      double omega, double noise_stddev, uint64_t seed);

  /// The platform's current belief (Equation 1 over history so far).
  CooperationMatrix BelievedQualities() const;

  /// Rates the given team groups (worker-id vectors) and folds them into
  /// the history; returns the wave's scores under belief and truth.
  /// Groups with fewer than 2 members are skipped.
  WaveResult RecordWave(
      const std::vector<std::vector<int>>& finished_teams);

  const RatingModel& rating_model() const { return rating_model_; }
  const CooperationHistory& history() const { return history_; }

  /// Mean absolute error between believed and true qualities over all
  /// ordered pairs.
  double EstimationError() const;

 private:
  RatingModel rating_model_;
  CooperationHistory history_;
};

}  // namespace casc

#endif  // CASC_SIM_RATING_MODEL_H_
