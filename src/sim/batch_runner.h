#ifndef CASC_SIM_BATCH_RUNNER_H_
#define CASC_SIM_BATCH_RUNNER_H_

#include <functional>

#include "algo/assigner.h"
#include "gen/workload.h"
#include "model/cooperation_matrix.h"
#include "sim/event_stream.h"
#include "sim/metrics.h"

namespace casc {

/// Configuration of the batch-based framework (Algorithm 1).
struct BatchRunnerConfig {
  /// Number of batches in round mode (Table II: R = 10).
  int rounds = 10;

  /// Wall-clock time between batches (one time unit per batch).
  double batch_interval = 1.0;

  /// How long a started task occupies its workers in streaming mode;
  /// workers return to the pool when their task finishes.
  double task_duration = 1.0;

  /// Minimum group size B in streaming mode.
  int min_group_size = 3;

  /// Also compute the UPPER estimate (Equation 9) per batch.
  bool compute_upper_bound = false;
};

/// Drives an Assigner through multiple batches.
///
/// Two modes mirror the paper:
/// * RunRounds — the evaluation protocol of Section VI: each round is an
///   independent batch freshly sampled from an InstanceSource; scores and
///   times are summed/averaged across R rounds.
/// * RunStreaming — the full Algorithm 1 dynamic: workers and tasks
///   arrive over time (an EventStream); unassigned tasks whose deadlines
///   have not passed and idle workers carry over to the next batch;
///   workers on started tasks return after task_duration.
class BatchRunner {
 public:
  explicit BatchRunner(BatchRunnerConfig config);

  /// Round mode. The assigner is timed on Run() only (instance generation
  /// and UPPER are excluded, matching the paper's "batch running time").
  RunSummary RunRounds(InstanceSource* source, Assigner* assigner) const;

  /// Streaming mode over pre-generated arrivals. `global_coop` is indexed
  /// by the workers' `.id` fields, which must be exactly a permutation of
  /// 0..num_workers-1 (EventStream::HasDenseWorkerIds — enforced with a
  /// CHECK, not just documented).
  RunSummary RunStreaming(const EventStream& stream,
                          const CooperationMatrix& global_coop,
                          Assigner* assigner) const;

  const BatchRunnerConfig& config() const { return config_; }

 private:
  BatchRunnerConfig config_;
};

}  // namespace casc

#endif  // CASC_SIM_BATCH_RUNNER_H_
