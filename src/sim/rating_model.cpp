#include "sim/rating_model.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace casc {

RatingModel::RatingModel(CooperationMatrix ground_truth,
                         double noise_stddev, uint64_t seed)
    : ground_truth_(std::move(ground_truth)),
      noise_stddev_(noise_stddev),
      rng_(seed) {
  CASC_CHECK_GE(noise_stddev, 0.0);
}

double RatingModel::TrueTeamQuality(const std::vector<int>& team) const {
  CASC_CHECK_GE(team.size(), 2u);
  double total = 0.0;
  int pairs = 0;
  for (size_t a = 0; a < team.size(); ++a) {
    for (size_t b = a + 1; b < team.size(); ++b) {
      // Unordered pair quality: the mean of both directions.
      total += (ground_truth_.Quality(team[a], team[b]) +
                ground_truth_.Quality(team[b], team[a])) /
               2.0;
      ++pairs;
    }
  }
  return total / pairs;
}

double RatingModel::RateTeam(const std::vector<int>& team) {
  const double truth = TrueTeamQuality(team);
  const double noisy = truth + rng_.Gaussian(0.0, noise_stddev_);
  return std::clamp(noisy, 0.0, 1.0);
}

QualityLearningLoop::QualityLearningLoop(CooperationMatrix ground_truth,
                                         double alpha, double omega,
                                         double noise_stddev, uint64_t seed)
    : rating_model_(std::move(ground_truth), noise_stddev, seed),
      history_(rating_model_.ground_truth().num_workers(), alpha, omega) {}

CooperationMatrix QualityLearningLoop::BelievedQualities() const {
  return history_.ToMatrix();
}

WaveResult QualityLearningLoop::RecordWave(
    const std::vector<std::vector<int>>& finished_teams) {
  WaveResult result;
  const CooperationMatrix believed = BelievedQualities();
  const CooperationMatrix& truth = rating_model_.ground_truth();
  for (const auto& team : finished_teams) {
    if (team.size() < 2) continue;
    // Score contributions under both matrices (ordered-pair sums, the
    // Equation-2 numerator normalized by |team| - 1).
    double believed_sum = 0.0, actual_sum = 0.0;
    for (const int i : team) {
      for (const int k : team) {
        if (i == k) continue;
        believed_sum += believed.Quality(i, k);
        actual_sum += truth.Quality(i, k);
      }
    }
    result.believed_score +=
        believed_sum / (static_cast<double>(team.size()) - 1.0);
    result.actual_score +=
        actual_sum / (static_cast<double>(team.size()) - 1.0);
    history_.RecordTask(team, rating_model_.RateTeam(team));
    ++result.teams_rated;
  }
  result.estimation_error = EstimationError();
  return result;
}

double QualityLearningLoop::EstimationError() const {
  const CooperationMatrix believed = BelievedQualities();
  const CooperationMatrix& truth = rating_model_.ground_truth();
  const int m = truth.num_workers();
  if (m < 2) return 0.0;
  double total = 0.0;
  int64_t pairs = 0;
  for (int i = 0; i < m; ++i) {
    for (int k = 0; k < m; ++k) {
      if (i == k) continue;
      total += std::abs(believed.Quality(i, k) - truth.Quality(i, k));
      ++pairs;
    }
  }
  return total / static_cast<double>(pairs);
}

}  // namespace casc
