#ifndef CASC_SIM_STREAMING_PLANE_H_
#define CASC_SIM_STREAMING_PLANE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "model/assignment.h"
#include "model/batch_workspace.h"
#include "model/instance.h"
#include "model/solve_delta.h"
#include "model/task.h"
#include "model/worker.h"
#include "spatial/spatial_index.h"

namespace casc {

class RTree;
class ThreadPool;

/// Configuration of the incremental streaming data plane.
struct StreamingPlaneConfig {
  /// Spatial backend for the persistent task index and the from-scratch
  /// fallback. Every backend returns identical (id-sorted) query results,
  /// so the choice never changes the produced valid-pair sets.
  SpatialBackend backend = SpatialBackend::kRTree;

  /// Delta-maintain the valid-pair rows across batches (the whole point
  /// of the plane). When false the plane only does pool bookkeeping and
  /// BuildValidPairs() falls back to Instance::ComputeValidPairs() — the
  /// exact pre-existing rebuild-everything path, used as the baseline and
  /// reachable at runtime via CASC_NO_INCREMENTAL.
  bool incremental = true;

  /// Differential self-check: after every incremental emission, also run
  /// the from-scratch build and CHECK the two CSR indexes are
  /// byte-identical (ValidPairIndex::SameAs). Debug/CI tool, enabled at
  /// runtime via CASC_STREAM_AUDIT.
  bool audit = false;

  /// R-tree tombstone threshold: once removed_since_build() exceeds this
  /// fraction of the live size, the accumulated loose bounds make a fresh
  /// bulk load cheaper than querying the degraded tree, so the plane
  /// rebuilds the persistent index from the live pool.
  double rtree_rebuild_fraction = 0.25;

  /// Fan the per-worker splice, fresh-row and CSR-emission loops out over
  /// an owned thread pool. Outputs are bit-identical on or off (the
  /// partition only decides where a worker's row is processed, never what
  /// it contains); kill switch: CASC_NO_PARALLEL_INGEST.
  bool parallel_ingest = true;

  /// Thread count for the ingest pool; 0 means pick automatically (the
  /// dispatch service reserves the solver's shard threads and hands
  /// ingest the rest; standalone planes use the hardware concurrency).
  /// Ignored when parallel_ingest is false. Env: CASC_INGEST_THREADS.
  int ingest_threads = 0;

  /// Track the cross-batch assignment skeleton and publish a SolveDelta
  /// each batch (BuildSolveDelta) so warm-capable solvers seed from the
  /// previous equilibrium. Works identically in incremental and scratch
  /// modes — the delta is a pure function of the pool bookkeeping and the
  /// built instance, never of how the valid pairs were computed, which is
  /// what keeps warm runs bit-identical across every mode/thread combo.
  /// Kill switch: CASC_NO_WARM_START (restores pre-warm behavior
  /// exactly: BuildSolveDelta returns null and solvers run cold).
  bool warm_start = true;

  /// Bounded-staleness re-seed for standing tasks. A retained open task
  /// whose group survived is normally clean, but fresh candidate
  /// arrivals change its group-formation potential — best-response
  /// rounds alone can never staff it (the kEmpty trap), so it must
  /// periodically re-enter the restricted TPG re-seed. Re-marking it
  /// every batch would put the whole standing frontier back in the
  /// dirty set in arrival-dense traces, erasing the warm start's win;
  /// instead each task re-enters on its round-robin slot (handle modulo
  /// this many batches) and only when it actually accumulated fresh
  /// candidates since it was last seeded. Staffing staleness is bounded
  /// by this epoch length; zero-churn batches stay exactly clean (no
  /// arrivals means no counters, so no task re-enters). 1 restores
  /// every-batch retry; values < 1 are clamped to 1. The default is the
  /// largest epoch that held solution quality within a few percent of
  /// cold on the pr10 feasibility-gap trace (longer epochs kept cutting
  /// solve time but delayed staffing enough to lose deadline-tight
  /// tasks); override with CASC_WARM_RETRY_EPOCH.
  int warm_retry_epoch = 4;

  /// Defaults plus the process-wide runtime switches: backend from
  /// DefaultSpatialBackend(), incremental off when CASC_NO_INCREMENTAL is
  /// set, audit on when CASC_STREAM_AUDIT is set, parallel ingest off
  /// when CASC_NO_PARALLEL_INGEST is set, thread count from
  /// CASC_INGEST_THREADS when positive, warm start off when
  /// CASC_NO_WARM_START is set, retry epoch from CASC_WARM_RETRY_EPOCH
  /// when set.
  static StreamingPlaneConfig FromEnv();
};

/// Where one Ingest() call's wall time went, plus its splice counters.
/// Reset at the start of every Ingest(); the pipelined service loop
/// snapshots this right after the overlapped ingest returns.
struct StreamingIngestStats {
  double splice_seconds = 0.0;        ///< delta splice into known rows
  double fresh_rows_seconds = 0.0;    ///< full queries for new workers
  double spatial_insert_seconds = 0.0;  ///< persistent-index batch insert
  int64_t spliced_entries = 0;   ///< entries appended to known rows
  int64_t splice_rejects = 0;    ///< splice-time deadline rejects (known)
  int64_t fresh_entries = 0;     ///< entries appended to new workers' rows
  int64_t fresh_rejects = 0;     ///< splice-time deadline rejects (new)
};

/// Where one BuildValidPairs() call's emission time went (incremental
/// mode only), plus its retention counters.
struct StreamingEmitStats {
  double csr_emit_seconds = 0.0;  ///< prune + sort + parallel CSR fill
  int64_t retained_entries = 0;   ///< row entries still alive
  int64_t dropped_entries = 0;    ///< departed-task / dead-deadline drops
};

/// The cross-batch state of a streaming run (Algorithm 1), maintained
/// incrementally: the idle-worker pool, the open-task pool, the busy-
/// worker queue, a persistent spatial index over the open tasks, and a
/// delta-maintained valid-pair row per worker. Between consecutive
/// batches the plane touches O(arrivals + departures) state instead of
/// rebuilding the task index and re-running one circle query per worker:
///
/// * New tasks are spliced into every known worker's row via a small
///   probe index over just the arrivals.
/// * New workers get one circle query against the persistent task index.
/// * Surviving row entries only need a deadline re-check at emission,
///   because the two non-trivial validity conditions of Definition 3
///   behave monotonically: the working-area test is time-invariant, and
///   CanArriveByDeadline(now) implies CanArriveByDeadline(now') for every
///   now' < now — so a pair that is valid at emission time was valid when
///   the row was spliced, and a pair that fails the deadline re-check can
///   never become valid again (the entry is dropped permanently).
///
/// Rows are keyed by internal task *handles* (dense, monotonically
/// increasing), not pool slots or task ids: slots move on compaction and
/// external ids are not guaranteed unique. Rows therefore survive pool
/// reordering (EDF admission), task departures (lazy: the handle's slot
/// is -1 and the entry is dropped at the next emission) and worker busy
/// spells (rows of busy workers keep being spliced, so a returning worker
/// needs no rebuild).
///
/// One batch cycle, in order (matching the sequential loops of
/// BatchRunner::RunStreaming and DispatchService::Run):
///
///   Ingest(now, arrivals)        // appends workers, then tasks
///   StageReleases(now); FlushReleases();
///   Expire(now);
///   if (HasWork()) {
///     Admit(budget);             // EDF under the batch budget
///     MaterializeWorkers/MaterializeAdmittedTasks -> Instance
///     BuildValidPairs(&instance, &workspace);
///     ... solve ...
///     Commit(instance, assignment, now + task_duration);
///   }
///
/// Pipelining contract: between BuildValidPairs() and Commit(), the
/// methods Ingest() and StageReleases() for the *next* batch may run on a
/// different thread while the current instance is being solved — the
/// solver only reads the Instance (which owns copies), never the plane.
/// Appended arrivals land past the instance's prefix of the pools, so
/// Commit()'s stable compaction reproduces the sequential pool order
/// [survivors][arrivals][earlier releases][just-returned workers]
/// exactly; overlapping therefore never changes any output.
///
/// Parallel ingest (config.parallel_ingest): the splice, fresh-row and
/// CSR-emission loops fan out over an owned pool, each thread processing
/// a deterministic contiguous range of worker slots and writing only its
/// own rows / flat ranges; counters merge in fixed chunk order after the
/// join. Every per-row computation is independent of every other row, so
/// the outputs are bit-identical to the serial loops for any thread
/// count. The plane owns all its ingest scratch (per-thread slots) — it
/// never touches the service's BatchWorkspaces, which is what lets an
/// overlapped Ingest(N+1) run concurrently with solve(N) without sharing
/// a single allocation.
///
/// Not thread-safe beyond that contract: at most one mutating call at a
/// time.
class StreamingPlane {
 public:
  explicit StreamingPlane(
      StreamingPlaneConfig config = StreamingPlaneConfig::FromEnv());
  ~StreamingPlane();

  StreamingPlane(const StreamingPlane&) = delete;
  StreamingPlane& operator=(const StreamingPlane&) = delete;

  /// Appends this window's arrivals to the pools at batch time `now`.
  /// Incremental mode also inserts the tasks into the persistent spatial
  /// index, splices them into every known worker's row (one probe-index
  /// query per worker) and computes fresh rows for the new workers (one
  /// persistent-index query each).
  void Ingest(double now, std::span<const Worker> workers,
              std::span<const Task> tasks);

  /// Moves busy workers whose release time is <= `now` to the staged
  /// list, preserving their start order. Safe to call more than once per
  /// batch (the pipelined loop stages pre-existing releases during the
  /// overlap and the just-returned ones after Commit()).
  void StageReleases(double now);

  /// Appends the staged released workers to the idle pool.
  void FlushReleases();

  /// Drops open tasks whose deadline has passed (deadline < now), stably.
  void Expire(double now);

  /// True when both pools are non-empty (a batch can run).
  bool HasWork() const {
    return !pool_worker_handles_.empty() && !pool_tasks_.empty();
  }

  /// Selects this batch's tasks: all of them when `budget` <= 0 or the
  /// pool fits, else the earliest-deadline `budget` tasks (stable EDF,
  /// ties by task id — the admission order of the dispatch service).
  /// Instance task i corresponds to pool slot admitted()[i].
  void Admit(int budget);

  /// Pool slots of the admitted tasks, in instance task order. Valid
  /// until the next Commit()/Expire().
  std::span<const int32_t> admitted() const {
    return {admitted_.data(), static_cast<size_t>(admitted_count_)};
  }

  /// Tasks deferred by the last Admit()'s budget.
  int num_deferred() const {
    return static_cast<int>(admitted_.size()) - admitted_count_;
  }

  size_t num_pool_workers() const { return pool_worker_handles_.size(); }
  size_t num_pool_tasks() const { return pool_tasks_.size(); }

  /// Open tasks carried past the last Commit() (non-started admitted plus
  /// deferred), excluding any arrivals already ingested for the next
  /// batch — the queue-depth metric of the sequential loop.
  int queue_depth_after_commit() const { return committed_queue_depth_; }

  /// Copies the idle pool (in pool order) into `out` (cleared first).
  void MaterializeWorkers(std::vector<Worker>* out) const;

  /// Copies the admitted tasks (in instance order) into `out`.
  void MaterializeAdmittedTasks(std::vector<Task>* out) const;

  /// Fills `instance`'s valid pairs: incremental emission from the
  /// maintained rows (audited against a from-scratch build when
  /// configured), or Instance::ComputeValidPairs() in scratch mode. The
  /// instance must have been materialized from this plane's current
  /// pools/admission. The emitted CSR is byte-identical to the
  /// from-scratch build in either mode.
  void BuildValidPairs(Instance* instance, BatchWorkspace* workspace);

  /// Publishes the cross-batch warm-start delta for the instance about to
  /// be solved: the previous equilibrium's skeleton remapped through the
  /// slot back-map onto this batch's indices, plus the dirty frontier
  /// (fresh workers, returners, workers whose seed pair died, and every
  /// candidate of a task that is new to the instance or whose retained
  /// group lost a member). Call after BuildValidPairs() and before the
  /// solve; returns null (cold) when warm start is disabled or no worker
  /// carries over — including always on the first batch — so the cold
  /// path stays bit-identical to pre-warm behavior. The returned pointer
  /// stays valid until the next BuildSolveDelta() call; the pipelined
  /// overlap may run the next Ingest() while a solver reads it (ingest
  /// never touches the delta).
  const SolveDelta* BuildSolveDelta(const Instance& instance);

  /// Commits the solved batch: workers of started groups (>= B members)
  /// go busy until `release_time`; started tasks leave the pool (and the
  /// persistent index); non-started admitted tasks, deferred tasks and
  /// any overlapped arrivals remain, in exactly the sequential loop's
  /// carry-over order.
  void Commit(const Instance& instance, const Assignment& assignment,
              double release_time);

  const StreamingPlaneConfig& config() const { return config_; }

  /// Tombstone-triggered rebuilds of the persistent R-tree so far.
  int64_t spatial_rebuilds() const { return spatial_rebuilds_; }

  /// Resolved ingest-pool width (1 when parallel ingest is off or the
  /// plane is in scratch mode).
  int ingest_threads() const { return ingest_threads_; }

  /// Phase timings/counters of the most recent Ingest() call.
  const StreamingIngestStats& ingest_stats() const { return ingest_stats_; }

  /// Emission timings/counters of the most recent BuildValidPairs() call
  /// (zeroed in scratch mode).
  const StreamingEmitStats& emit_stats() const { return emit_stats_; }

 private:
  /// Per-thread ingest scratch. Chunk k of a fanned-out loop owns
  /// slots_[k] exclusively; nothing here outlives the join.
  struct IngestSlot {
    std::vector<int64_t> query;    ///< CircleQueryInto result buffer
    std::vector<TaskIndex> emit;   ///< emission pass-1 instance indexes
    int64_t appended = 0;
    int64_t rejects = 0;
    int64_t retained = 0;
    int64_t dropped = 0;
  };

  /// Removes one task from the persistent index and invalidates its
  /// handle. Row entries referencing it die lazily at the next emission.
  void RemoveTask(int32_t slot);

  /// Restores slot_of_handle_ after a pool compaction/reorder.
  void RefreshSlots();

  /// Bulk-reloads the persistent R-tree from the live pool once the
  /// tombstone fraction is exceeded.
  void MaybeRebuildSpatialIndex();

  /// Appends the row entries valid for `worker` at `now` among `tasks`
  /// (a probe index keyed by task handle) into rows_[handle], using and
  /// updating `scratch` (the calling chunk's slot).
  void SpliceRow(int32_t handle, const SpatialIndex& tasks, double now,
                 IngestSlot* scratch);

  /// Prunes rows_[handle of worker slot w] in place and appends the
  /// emitted instance indexes (sorted ascending) to scratch->emit;
  /// records the emitted length in row_lengths_[w].
  void EmitWorkerRow(size_t w, double now, IngestSlot* scratch);

  /// Runs fn(chunk, begin, end) over [0, count) split into `chunks`
  /// deterministic contiguous ranges (ThreadPool::ChunkBounds); inline
  /// when chunks <= 1, on the ingest pool otherwise. Both emission passes
  /// call this with the same chunk count, so pass 2 realigns with the
  /// per-chunk buffers pass 1 filled.
  void RunOnChunks(size_t count, int chunks,
                   const std::function<void(int, size_t, size_t)>& fn);

  /// Chunk count for a loop over `count` rows: capped by the pool width
  /// and a minimum grain so tiny batches stay inline.
  int ChunksFor(size_t count) const;

  StreamingPlaneConfig config_;

  /// Every worker ever seen, by handle; parallel to rows_.
  std::vector<Worker> worker_store_;
  /// Per-worker valid-task rows, entries are task handles (unordered).
  std::vector<std::vector<int32_t>> rows_;
  /// Idle pool, in the sequential loop's carry-over order (handles).
  std::vector<int32_t> pool_worker_handles_;

  /// Open-task pool in carry-over order, with parallel handles.
  std::vector<Task> pool_tasks_;
  std::vector<int32_t> pool_task_handles_;
  /// Task handle -> pool slot, -1 once the task left the pool. Grows by
  /// one entry per task ever ingested (4 bytes each).
  std::vector<int32_t> slot_of_handle_;

  /// Busy workers as (release time, handle), in start order.
  std::vector<std::pair<double, int32_t>> busy_;
  std::vector<int32_t> staged_releases_;

  /// Persistent spatial index over the open tasks (keyed by handle).
  /// Null in scratch mode.
  std::unique_ptr<SpatialIndex> task_index_;
  RTree* task_rtree_ = nullptr;  ///< downcast when backend == kRTree
  int64_t spatial_rebuilds_ = 0;

  /// Admission state of the current batch.
  std::vector<int32_t> admitted_;  ///< permutation of slots (prefix used)
  int admitted_count_ = 0;
  size_t pool_size_at_admit_ = 0;
  int committed_queue_depth_ = 0;

  /// Emission scratch (reused across batches).
  std::vector<int32_t> instance_index_of_slot_;
  std::vector<int32_t> emit_row_;
  std::vector<SpatialItem> rebuild_items_;
  std::vector<Task> scratch_tasks_;
  std::vector<int32_t> scratch_handles_;

  /// Warm-start skeleton state (config_.warm_start). Seeds and presence
  /// stamps are keyed by handle, like rows_/slot_of_handle_: a worker
  /// (task) is carried into the next solve iff its stamp equals the
  /// previous BuildSolveDelta() sequence number, which makes returners
  /// from busy spells, skipped no-work batches and overlap arrivals all
  /// read as fresh/dirty without any per-batch set differencing.
  std::vector<int32_t> seed_task_of_worker_;  ///< by worker handle; -1 idle
  std::vector<int64_t> worker_solved_stamp_;  ///< by worker handle
  std::vector<int64_t> task_solved_stamp_;    ///< by task handle
  /// Fresh candidates a standing task accumulated since its last
  /// re-seed, by task handle — drives the warm_retry_epoch re-entry.
  std::vector<int32_t> task_fresh_candidates_;
  int64_t solve_seq_ = 0;
  std::vector<int32_t> task_instance_of_handle_;  ///< per-batch scratch
  std::vector<uint8_t> group_lost_;               ///< per-batch scratch
  SolveDelta delta_;

  /// Parallel-ingest machinery: an owned pool (null when the resolved
  /// width is 1), one scratch slot per chunk, and the per-worker emitted
  /// row lengths feeding the prefix sum of the parallel CSR build.
  int ingest_threads_ = 1;
  std::unique_ptr<ThreadPool> ingest_pool_;
  std::vector<IngestSlot> slots_;
  std::vector<int32_t> row_lengths_;
  StreamingIngestStats ingest_stats_;
  StreamingEmitStats emit_stats_;
};

}  // namespace casc

#endif  // CASC_SIM_STREAMING_PLANE_H_
