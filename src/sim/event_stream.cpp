#include "sim/event_stream.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace casc {

void EventStream::Cursor::NextBatch(double from, double to,
                                    std::vector<Worker>* workers,
                                    std::vector<Task>* tasks) {
  CASC_CHECK_LE(from, to);
  if (started_) {
    CASC_CHECK_GE(from, emitted_to_)
        << "cursor windows must be non-overlapping and ascending";
  }
  started_ = true;
  emitted_to_ = to;
  const std::vector<Worker>& all_workers = stream_->workers_;
  while (worker_pos_ < all_workers.size() &&
         all_workers[worker_pos_].arrival_time < from) {
    ++worker_pos_;
  }
  while (worker_pos_ < all_workers.size() &&
         all_workers[worker_pos_].arrival_time < to) {
    if (workers != nullptr) workers->push_back(all_workers[worker_pos_]);
    ++worker_pos_;
  }
  const std::vector<Task>& all_tasks = stream_->tasks_;
  while (task_pos_ < all_tasks.size() &&
         all_tasks[task_pos_].create_time < from) {
    ++task_pos_;
  }
  while (task_pos_ < all_tasks.size() &&
         all_tasks[task_pos_].create_time < to) {
    if (tasks != nullptr) tasks->push_back(all_tasks[task_pos_]);
    ++task_pos_;
  }
}

bool EventStream::Cursor::Exhausted() const {
  return worker_pos_ >= stream_->workers_.size() &&
         task_pos_ >= stream_->tasks_.size();
}

EventStream::EventStream(std::vector<Worker> workers,
                         std::vector<Task> tasks)
    : workers_(std::move(workers)), tasks_(std::move(tasks)) {
  std::stable_sort(workers_.begin(), workers_.end(),
                   [](const Worker& a, const Worker& b) {
                     return a.arrival_time < b.arrival_time;
                   });
  std::stable_sort(tasks_.begin(), tasks_.end(),
                   [](const Task& a, const Task& b) {
                     return a.create_time < b.create_time;
                   });
}

std::vector<Worker> EventStream::WorkersArrivingIn(double from,
                                                   double to) const {
  const auto lo = std::lower_bound(
      workers_.begin(), workers_.end(), from,
      [](const Worker& w, double t) { return w.arrival_time < t; });
  const auto hi = std::lower_bound(
      workers_.begin(), workers_.end(), to,
      [](const Worker& w, double t) { return w.arrival_time < t; });
  return std::vector<Worker>(lo, hi);
}

std::vector<Task> EventStream::TasksArrivingIn(double from,
                                               double to) const {
  const auto lo = std::lower_bound(
      tasks_.begin(), tasks_.end(), from,
      [](const Task& t, double time) { return t.create_time < time; });
  const auto hi = std::lower_bound(
      tasks_.begin(), tasks_.end(), to,
      [](const Task& t, double time) { return t.create_time < time; });
  return std::vector<Task>(lo, hi);
}

bool EventStream::HasDenseWorkerIds() const {
  std::vector<bool> seen(workers_.size(), false);
  for (const Worker& worker : workers_) {
    if (worker.id < 0 || worker.id >= static_cast<int64_t>(workers_.size())) {
      return false;
    }
    if (seen[static_cast<size_t>(worker.id)]) return false;
    seen[static_cast<size_t>(worker.id)] = true;
  }
  return true;
}

double EventStream::FirstEventTime() const {
  double first = std::numeric_limits<double>::infinity();
  if (!workers_.empty()) first = std::min(first, workers_.front().arrival_time);
  if (!tasks_.empty()) first = std::min(first, tasks_.front().create_time);
  return std::isfinite(first) ? first : 0.0;
}

double EventStream::LastEventTime() const {
  double last = -std::numeric_limits<double>::infinity();
  if (!workers_.empty()) last = std::max(last, workers_.back().arrival_time);
  if (!tasks_.empty()) last = std::max(last, tasks_.back().create_time);
  return std::isfinite(last) ? last : 0.0;
}

}  // namespace casc
