#ifndef CASC_SIM_EVENT_STREAM_H_
#define CASC_SIM_EVENT_STREAM_H_

#include <vector>

#include "model/task.h"
#include "model/worker.h"

namespace casc {

/// A time-ordered stream of worker and task arrivals over an interval
/// Phi, feeding the streaming mode of the batch framework (Algorithm 1):
/// workers appear at their phi_i, tasks at their phi_j, and each batch
/// pulls everything that arrived since the previous batch.
class EventStream {
 public:
  /// Stateful forward reader over one stream (see NewCursor). Batches
  /// advance monotonically in streaming mode, so the cursor replaces the
  /// per-batch binary search + vector copy of the ArrivingIn accessors
  /// with a single forward scan that appends into caller-owned buffers —
  /// the buffers' capacity is reused across batches.
  class Cursor {
   public:
    /// Appends workers with arrival_time in [from, to) and tasks with
    /// create_time in [from, to) onto `workers`/`tasks` (either may be
    /// null to skip that side), and advances past them. Windows must be
    /// non-overlapping and ascending across calls: `from` must be >= the
    /// previous call's `to` (CHECKed), so every event is emitted at most
    /// once. Equivalent to the stateless ArrivingIn accessors over the
    /// same window sequence.
    void NextBatch(double from, double to, std::vector<Worker>* workers,
                   std::vector<Task>* tasks);

    /// True once every event has been emitted.
    bool Exhausted() const;

   private:
    friend class EventStream;
    explicit Cursor(const EventStream* stream) : stream_(stream) {}

    const EventStream* stream_;
    size_t worker_pos_ = 0;
    size_t task_pos_ = 0;
    double emitted_to_ = 0.0;  // upper bound of the last window
    bool started_ = false;
  };

  /// Takes ownership of the arrivals; they are sorted internally by
  /// arrival/creation time.
  EventStream(std::vector<Worker> workers, std::vector<Task> tasks);

  /// Workers with arrival_time in [from, to), in arrival order.
  std::vector<Worker> WorkersArrivingIn(double from, double to) const;

  /// Tasks with create_time in [from, to), in creation order.
  std::vector<Task> TasksArrivingIn(double from, double to) const;

  /// A cursor positioned before the first event. The stream must outlive
  /// the cursor.
  Cursor NewCursor() const { return Cursor(this); }

  /// Earliest event time over the MERGED worker-and-task timeline (the
  /// smaller of the first worker arrival and the first task creation), or
  /// 0 when the stream is empty. A trace whose first event is a task
  /// therefore starts the batch clock at that task's creation time, not
  /// at the first worker's arrival — the streaming loops rely on this to
  /// cover task-only leading intervals.
  double FirstEventTime() const;

  /// Latest event time over the merged worker-and-task timeline (the
  /// larger of the last worker arrival and the last task creation), or 0
  /// when the stream is empty. Task-only trailing intervals are covered:
  /// the streaming loops run until LastEventTime() + one batch interval.
  double LastEventTime() const;

  size_t num_workers() const { return workers_.size(); }
  size_t num_tasks() const { return tasks_.size(); }

  /// True when the worker `.id` fields are exactly a permutation of
  /// 0..num_workers()-1 — the indexing invariant consumers that look up
  /// cooperation qualities in a global matrix by `.id` (RunStreaming,
  /// the dispatch service) rely on. O(num_workers).
  bool HasDenseWorkerIds() const;

 private:
  std::vector<Worker> workers_;  // sorted by arrival_time
  std::vector<Task> tasks_;      // sorted by create_time
};

}  // namespace casc

#endif  // CASC_SIM_EVENT_STREAM_H_
