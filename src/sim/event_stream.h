#ifndef CASC_SIM_EVENT_STREAM_H_
#define CASC_SIM_EVENT_STREAM_H_

#include <vector>

#include "model/task.h"
#include "model/worker.h"

namespace casc {

/// A time-ordered stream of worker and task arrivals over an interval
/// Phi, feeding the streaming mode of the batch framework (Algorithm 1):
/// workers appear at their phi_i, tasks at their phi_j, and each batch
/// pulls everything that arrived since the previous batch.
class EventStream {
 public:
  /// Takes ownership of the arrivals; they are sorted internally by
  /// arrival/creation time.
  EventStream(std::vector<Worker> workers, std::vector<Task> tasks);

  /// Workers with arrival_time in [from, to), in arrival order.
  std::vector<Worker> WorkersArrivingIn(double from, double to) const;

  /// Tasks with create_time in [from, to), in creation order.
  std::vector<Task> TasksArrivingIn(double from, double to) const;

  /// Earliest event time, or 0 when the stream is empty.
  double FirstEventTime() const;

  /// Latest event time, or 0 when the stream is empty.
  double LastEventTime() const;

  size_t num_workers() const { return workers_.size(); }
  size_t num_tasks() const { return tasks_.size(); }

  /// True when the worker `.id` fields are exactly a permutation of
  /// 0..num_workers()-1 — the indexing invariant consumers that look up
  /// cooperation qualities in a global matrix by `.id` (RunStreaming,
  /// the dispatch service) rely on. O(num_workers).
  bool HasDenseWorkerIds() const;

 private:
  std::vector<Worker> workers_;  // sorted by arrival_time
  std::vector<Task> tasks_;      // sorted by create_time
};

}  // namespace casc

#endif  // CASC_SIM_EVENT_STREAM_H_
