#include "sim/batch_runner.h"

#include <algorithm>
#include <limits>
#include <utility>
#include <vector>

#include "algo/upper_bound.h"
#include "common/check.h"
#include "common/stopwatch.h"
#include "model/objective.h"
#include "sim/streaming_plane.h"

namespace casc {
namespace {

/// Runs the assigner once, fills the per-batch metrics shared by both
/// modes, and hands the produced assignment back through `out` (so the
/// streaming mode commits exactly what was measured).
BatchMetrics MeasureBatch(const Instance& instance, Assigner* assigner,
                          bool compute_upper, int round, double now,
                          Assignment* out = nullptr) {
  BatchMetrics metrics;
  metrics.round = round;
  metrics.now = now;
  metrics.num_workers = instance.num_workers();
  metrics.num_tasks = instance.num_tasks();
  metrics.valid_pairs = static_cast<int64_t>(instance.NumValidPairs());

  Stopwatch watch;
  Assignment assignment = assigner->Run(instance);
  metrics.seconds = watch.ElapsedSeconds();

  metrics.score = TotalScore(instance, assignment);
  metrics.assigned_workers = assignment.NumAssigned();
  for (TaskIndex t = 0; t < instance.num_tasks(); ++t) {
    if (assignment.GroupSize(t) >= instance.min_group_size()) {
      ++metrics.completed_tasks;
    }
  }
  metrics.gt_rounds = assigner->stats().rounds;
  metrics.solve_moves = assigner->stats().moves;
  metrics.dirty_workers = assigner->stats().dirty_workers;
  metrics.dirty_fraction =
      instance.num_workers() > 0
          ? static_cast<double>(assigner->stats().dirty_workers) /
                static_cast<double>(instance.num_workers())
          : 0.0;
  metrics.warm_started = assigner->stats().warm_started;
  if (compute_upper) {
    metrics.upper_bound = ComputeUpperBound(instance);
  }
  if (out != nullptr) *out = std::move(assignment);
  return metrics;
}

}  // namespace

BatchRunner::BatchRunner(BatchRunnerConfig config) : config_(config) {
  CASC_CHECK_GE(config.rounds, 1);
  CASC_CHECK_GT(config.batch_interval, 0.0);
}

RunSummary BatchRunner::RunRounds(InstanceSource* source,
                                  Assigner* assigner) const {
  CASC_CHECK(source != nullptr);
  CASC_CHECK(assigner != nullptr);
  // One workspace spans the rounds: the assigner reuses its assignment
  // slabs and keeper arrays from round to round.
  BatchWorkspace workspace;
  assigner->set_workspace(&workspace);
  RunSummary summary;
  for (int round = 0; round < config_.rounds; ++round) {
    const double now = round * config_.batch_interval;
    const Instance instance = source->MakeBatch(round, now);
    summary.batches.push_back(MeasureBatch(
        instance, assigner, config_.compute_upper_bound, round, now));
  }
  assigner->set_workspace(nullptr);
  return summary;
}

RunSummary BatchRunner::RunStreaming(const EventStream& stream,
                                     const CooperationMatrix& global_coop,
                                     Assigner* assigner) const {
  CASC_CHECK(assigner != nullptr);
  CASC_CHECK(stream.HasDenseWorkerIds())
      << "RunStreaming indexes global_coop by worker .id: the stream's "
         "worker ids must be exactly a permutation of 0..num_workers-1";
  CASC_CHECK_GE(global_coop.num_workers(),
                static_cast<int>(stream.num_workers()))
      << "global_coop is smaller than the stream's worker population";

  // Cross-batch pool state and the delta-maintained valid-pair rows live
  // in the plane (incremental by default; CASC_NO_INCREMENTAL falls back
  // to the per-batch rebuild). Scratch pooled across the stream: CSR pair
  // indexes, assignment slabs and keeper arrays are recycled batch to
  // batch, so the steady state performs no hot-plane heap allocation.
  StreamingPlane plane;
  BatchWorkspace workspace;
  assigner->set_workspace(&workspace);

  EventStream::Cursor cursor = stream.NewCursor();
  std::vector<Worker> arrived_workers;
  std::vector<Task> arrived_tasks;
  std::vector<Worker> batch_workers;
  std::vector<Task> batch_tasks;

  RunSummary summary;
  double now = stream.FirstEventTime();
  const double end = stream.LastEventTime() + config_.batch_interval;
  int round = 0;
  double previous = -std::numeric_limits<double>::infinity();

  while (now < end) {
    // Algorithm 1, lines 2-3: collect available tasks and workers.
    Stopwatch ingest_watch;
    arrived_workers.clear();
    arrived_tasks.clear();
    cursor.NextBatch(previous, now + 1e-12, &arrived_workers,
                     &arrived_tasks);
    plane.Ingest(now, arrived_workers, arrived_tasks);
    plane.StageReleases(now);
    plane.FlushReleases();
    // Drop expired tasks (no worker can reach them in time any more).
    plane.Expire(now);
    const double ingest_seconds = ingest_watch.ElapsedSeconds();

    if (plane.HasWork()) {
      // Build the batch instance over a zero-copy view of the global
      // matrix, remapped to the batch-local worker positions.
      plane.Admit(0);
      plane.MaterializeWorkers(&batch_workers);
      plane.MaterializeAdmittedTasks(&batch_tasks);
      std::vector<int> ids;
      ids.reserve(batch_workers.size());
      for (const Worker& worker : batch_workers) {
        ids.push_back(static_cast<int>(worker.id));
      }
      Stopwatch build_watch;
      Instance instance(batch_workers, batch_tasks, global_coop.View(ids),
                        now, config_.min_group_size);
      plane.BuildValidPairs(&instance, &workspace);
      const double index_build_seconds = build_watch.ElapsedSeconds();

      // Cross-batch warm start: hand the solver the previous
      // equilibrium's skeleton plus the dirty frontier (null on the cold
      // path — first batch, zero carry-over, CASC_NO_WARM_START).
      // Warm-oblivious assigners ignore the attachment entirely.
      assigner->set_solve_delta(plane.BuildSolveDelta(instance));

      Assignment assignment;
      BatchMetrics metrics =
          MeasureBatch(instance, assigner, config_.compute_upper_bound,
                       round, now, &assignment);
      assigner->set_solve_delta(nullptr);
      metrics.ingest_seconds = ingest_seconds;
      metrics.index_build_seconds = index_build_seconds;
      metrics.ingest_splice_seconds = plane.ingest_stats().splice_seconds;
      metrics.ingest_fresh_rows_seconds =
          plane.ingest_stats().fresh_rows_seconds;
      metrics.ingest_spatial_seconds =
          plane.ingest_stats().spatial_insert_seconds;
      metrics.csr_emit_seconds = plane.emit_stats().csr_emit_seconds;
      summary.batches.push_back(metrics);

      // Commit: tasks reaching B start now and occupy their workers for
      // task_duration; everyone else carries over (Algorithm 1's
      // "available" definition for the next batch).
      plane.Commit(instance, assignment, now + config_.task_duration);

      // The batch is committed: return its CSR index and slabs for the
      // next batch to reuse.
      workspace.Recycle(instance.ReleaseValidPairs());
      workspace.Recycle(std::move(assignment));
    }

    previous = now + 1e-12;
    now += config_.batch_interval;
    ++round;
  }
  assigner->set_workspace(nullptr);
  return summary;
}

}  // namespace casc
