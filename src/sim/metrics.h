#ifndef CASC_SIM_METRICS_H_
#define CASC_SIM_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace casc {

/// Per-batch measurements collected by the runner.
struct BatchMetrics {
  int round = 0;               ///< batch index
  double now = 0.0;            ///< batch timestamp phi
  int num_workers = 0;         ///< |W(phi)|
  int num_tasks = 0;           ///< |T(phi)|
  int64_t valid_pairs = 0;     ///< valid worker-and-task pairs
  double score = 0.0;          ///< Q(T(phi)) achieved (Equation 3)
  double upper_bound = 0.0;    ///< UPPER (Equation 9), if requested
  double seconds = 0.0;        ///< assignment wall time (excl. generation)
  int assigned_workers = 0;    ///< workers placed on tasks
  int completed_tasks = 0;     ///< tasks reaching >= B workers
  int gt_rounds = 0;           ///< best-response rounds (GT family)

  /// Solver convergence telemetry (GT family; zero for single-pass
  /// algorithms): strategy moves applied, the warm-start dirty frontier
  /// and whether the batch seeded from the previous equilibrium.
  int64_t solve_moves = 0;       ///< strategy changes applied
  int64_t dirty_workers = 0;     ///< initial dirty frontier (warm only)
  double dirty_fraction = 0.0;   ///< dirty_workers / num_workers
  bool warm_started = false;     ///< seeded from the prior equilibrium

  /// Streaming-mode data-plane timings: pool/arrival ingest (including
  /// incremental index maintenance) and valid-pair build for this batch.
  /// In the pipelined dispatch service the ingest portion overlaps the
  /// previous batch's solve, so it is reported but off the critical path.
  double ingest_seconds = 0.0;
  double index_build_seconds = 0.0;

  /// Where the incremental plane spent the ingest/build time (all zero in
  /// scratch mode): delta splice into known rows, fresh rows for new
  /// workers, the persistent spatial-index batch insert, and the CSR
  /// emission inside the valid-pair build. The first three are parts of
  /// ingest_seconds; csr_emit_seconds is part of index_build_seconds.
  double ingest_splice_seconds = 0.0;
  double ingest_fresh_rows_seconds = 0.0;
  double ingest_spatial_seconds = 0.0;
  double csr_emit_seconds = 0.0;
};

/// Aggregate of a multi-batch run.
struct RunSummary {
  std::vector<BatchMetrics> batches;

  /// Sum of per-batch scores — the "Total Cooperation Score" y-axis of
  /// Figures 2(a)-8(a).
  double TotalScore() const;

  /// Sum of per-batch UPPER estimates.
  double TotalUpperBound() const;

  /// Mean per-batch assignment time — the y-axis of Figures 2(b)-8(b).
  double AvgBatchSeconds() const;

  /// Slowest batch.
  double MaxBatchSeconds() const;

  int64_t TotalAssignedWorkers() const;
  int64_t TotalCompletedTasks() const;
};

/// Renders one batch as a compact JSON object (round-trippable doubles).
std::string ToJson(const BatchMetrics& metrics);

/// Renders a run as a JSON object: the aggregate fields plus a "batches"
/// array of per-batch objects — the machine-readable counterpart of the
/// table prints, consumed by tools/run_bench.sh outputs.
std::string ToJson(const RunSummary& summary);

/// Mean of `values` (0 for empty input).
double Mean(const std::vector<double>& values);

/// Sample standard deviation of `values` (0 for fewer than two).
double StdDev(const std::vector<double>& values);

}  // namespace casc

#endif  // CASC_SIM_METRICS_H_
