#include "algo/gt_assigner.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "algo/best_response.h"
#include "algo/tpg_assigner.h"
#include "common/check.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "model/objective.h"

namespace casc {
namespace {

/// Strict-improvement threshold; mirrors best_response.cpp.
constexpr double kTolerance = 1e-12;

/// Per-round speculative evaluation state. Best responses computed in
/// parallel against the round-start state are consumed sequentially; a
/// result is discarded once any of its worker's valid tasks was touched
/// by an applied move, so every consumed value equals what a serial
/// inline evaluation would have produced.
struct Speculation {
  bool active = false;
  std::vector<BestResponse> results;   // per worker
  std::vector<PruneCounters> counters; // per worker (scan work tally)
  std::vector<char> computed;          // per worker
  std::vector<char> task_touched;      // per task, reset each round
};

/// Pre-computes best responses for the workers of `order` that the
/// sequential pass will (initially) evaluate: all of them in a full
/// round, the dirty ones in a LUB round.
void Speculate(const Instance& instance, const Assignment& assignment,
               const ScoreKeeper& keeper,
               const std::vector<WorkerIndex>& order,
               const std::vector<bool>* dirty, bool prune, ThreadPool* pool,
               Speculation* spec) {
  spec->active = true;
  spec->results.assign(static_cast<size_t>(instance.num_workers()),
                       BestResponse{});
  spec->counters.assign(static_cast<size_t>(instance.num_workers()),
                        PruneCounters{});
  spec->computed.assign(static_cast<size_t>(instance.num_workers()), 0);
  spec->task_touched.assign(static_cast<size_t>(instance.num_tasks()), 0);

  std::vector<WorkerIndex> pending;
  pending.reserve(order.size());
  for (const WorkerIndex w : order) {
    if (dirty == nullptr || (*dirty)[static_cast<size_t>(w)]) {
      pending.push_back(w);
    }
  }
  pool->ParallelFor(
      static_cast<int64_t>(pending.size()), [&](int64_t i) {
        const WorkerIndex w = pending[static_cast<size_t>(i)];
        spec->results[static_cast<size_t>(w)] =
            ComputeBestResponse(instance, keeper, assignment, w, prune,
                                &spec->counters[static_cast<size_t>(w)]);
        spec->computed[static_cast<size_t>(w)] = 1;
      });
}

/// True when `w`'s speculated best response is still exact: it was
/// computed and no task `w` could play has changed since. The current
/// task needs no separate check — an assigned task is always one of the
/// worker's valid tasks.
bool SpeculationUsable(const Instance& instance, const Speculation& spec,
                       WorkerIndex w) {
  if (!spec.computed[static_cast<size_t>(w)]) return false;
  for (const TaskIndex t : instance.ValidTasks(w)) {
    if (spec.task_touched[static_cast<size_t>(t)]) return false;
  }
  return true;
}

void MarkTouched(Speculation* spec, TaskIndex t) {
  if (spec->active && t != kNoTask) {
    spec->task_touched[static_cast<size_t>(t)] = 1;
  }
}

}  // namespace

GtAssigner::GtAssigner(GtOptions options) : options_(options) {}

std::string GtAssigner::Name() const {
  if (options_.use_tsi && options_.use_lub) return "GT+ALL";
  if (options_.use_tsi) return "GT+TSI";
  if (options_.use_lub) return "GT+LUB";
  return "GT";
}

MoveResult GtAssigner::MoveAndMarkDirty(const Instance& instance,
                                        Assignment* assignment,
                                        ScoreKeeper* keeper, WorkerIndex w,
                                        TaskIndex target,
                                        std::vector<bool>* dirty) {
  const MoveResult move = ApplyMove(instance, assignment, keeper, w, target);
  if (dirty == nullptr) return move;
  const TaskIndex from = move.from;
  const WorkerIndex evicted = move.crowded_out;
  const CooperationMatrix& coop = instance.coop();

  // Effects at the target task (Theorems V.3 / V.4).
  if (target != kNoTask) {
    for (const WorkerIndex i : instance.Candidates(target)) {
      if (i == w) continue;
      if (evicted == kNoWorker) {
        // Pure addition. Theorem V.3: workers already best-responding to
        // `target` keep that best response (their utility only grew);
        // everyone else may now be attracted (Theorem V.4, condition 1).
        if (assignment->TaskOf(i) != target) {
          (*dirty)[static_cast<size_t>(i)] = true;
        }
      } else {
        // w replaced `evicted`. Members (and would-be joiners whose best
        // response was `target`) can be repelled only if they liked the
        // evicted worker better (V.3); outsiders can be attracted only if
        // they like the newcomer better (V.4, condition 2).
        const double q_new = coop.Quality(i, w);
        const double q_old = coop.Quality(i, evicted);
        if (assignment->TaskOf(i) == target) {
          if (q_old > q_new) (*dirty)[static_cast<size_t>(i)] = true;
        } else {
          if (q_new > q_old) (*dirty)[static_cast<size_t>(i)] = true;
        }
      }
    }
    if (evicted != kNoWorker) {
      (*dirty)[static_cast<size_t>(evicted)] = true;
    }
  }

  // Effects at the departed task: its members lost a partner and anyone
  // whose best response pointed here must reconsider; if the task was
  // full, an opening now exists for every candidate.
  if (from != kNoTask) {
    const bool was_full =
        assignment->GroupSize(from) + 1 ==
        instance.tasks()[static_cast<size_t>(from)].capacity;
    for (const WorkerIndex i : instance.Candidates(from)) {
      if (i == w) continue;
      if (assignment->TaskOf(i) == from || was_full) {
        (*dirty)[static_cast<size_t>(i)] = true;
      }
    }
  }
  return move;
}

int64_t GtAssigner::Round(const Instance& instance,
                          const std::vector<WorkerIndex>& order,
                          Assignment* assignment, ScoreKeeper* keeper,
                          ThreadPool* pool, std::vector<bool>* dirty) {
  Speculation spec;
  if (pool != nullptr) {
    Speculate(instance, *assignment, *keeper, order, dirty,
              options_.use_pruning, pool, &spec);
  }

  int64_t moves = 0;
  for (const WorkerIndex w : order) {
    if (dirty != nullptr) {
      if (!(*dirty)[static_cast<size_t>(w)]) {
        ++stats_.best_response_skips;
        continue;
      }
      (*dirty)[static_cast<size_t>(w)] = false;
    }
    const TaskIndex current = assignment->TaskOf(w);
    // Prune-work counters stay thread-count-invariant: a consumed
    // speculation carries the tally of the identical scan the serial
    // pass would have run, and discarded speculations count nothing.
    PruneCounters counters;
    BestResponse best;
    if (spec.active && SpeculationUsable(instance, spec, w)) {
      best = spec.results[static_cast<size_t>(w)];
      counters = spec.counters[static_cast<size_t>(w)];
    } else {
      best = ComputeBestResponse(instance, *keeper, *assignment, w,
                                 options_.use_pruning, &counters);
    }
    stats_.prune_candidates_evaluated += counters.evaluated;
    stats_.prune_candidates_skipped += counters.pruned;
    stats_.feasibility_rejects += counters.feasibility_rejects;
    ++stats_.best_response_evals;
    if (best.task == current) continue;
    const double current_utility =
        StrategyUtility(instance, *keeper, *assignment, w, current, nullptr);
    if (best.utility <= current_utility + kTolerance) continue;
    const MoveResult move =
        MoveAndMarkDirty(instance, assignment, keeper, w, best.task, dirty);
    MarkTouched(&spec, move.from);
    MarkTouched(&spec, best.task);
    ++moves;
  }
  stats_.moves += moves;
  return moves;
}

Assignment GtAssigner::Run(const Instance& instance) {
  CASC_CHECK(instance.valid_pairs_ready())
      << "GT requires Instance::ComputeValidPairs()";
  stats_ = AssignerStats{};

  // Cross-batch warm start: when the streaming driver attached a usable
  // SolveDelta, adopt the previous equilibrium's skeleton instead of a
  // cold init — sound from any profile (Theorem V.1). A null or empty
  // delta (first batch, zero carry-over, CASC_NO_WARM_START) takes the
  // cold path below bit-identically.
  const SolveDelta* delta = solve_delta();
  const bool warm = delta != nullptr && delta->num_carried > 0 &&
                    static_cast<int>(delta->seed_task.size()) ==
                        instance.num_workers();

  // Algorithm 3, line 1: initialize the joint strategy.
  Assignment assignment;
  if (warm) {
    assignment = MakeAssignment(instance);
    assignment.AdoptSkeleton(delta->seed_task);
    // Best-response dynamics cannot staff a task from idle workers (the
    // GtInit::kEmpty trap: a solo join scores 0 below B), so the tasks
    // that are new or lost group members get the cold init's greedy
    // group formation, restricted to them. Only dirty workers can be
    // consumed here: every candidate of a dirty task is dirty, so the
    // pass never touches a clean worker's certified strategy.
    if (delta->num_dirty_tasks > 0) {
      TpgAssigner patch;
      patch.SeedTasks(instance, &delta->dirty_task, &assignment);
    }
    stats_.warm_started = true;
    stats_.seeded_workers = delta->num_seeded;
    stats_.dirty_workers = delta->num_dirty;
  } else {
    switch (options_.init) {
    case GtInit::kWarmStart:  // no usable delta: cold-fall back to TPG
    case GtInit::kTpg: {
      TpgAssigner tpg;
      tpg.set_workspace(workspace());
      assignment = tpg.Run(instance);
      break;
    }
    case GtInit::kRandom: {
      assignment = MakeAssignment(instance);
      // The generic best-response seed of Section V-A: each worker picks
      // a uniformly random valid task; overfull tasks immediately shed
      // their best-subset losers so the state stays feasible.
      Rng rng(options_.init_seed);
      for (WorkerIndex w = 0; w < instance.num_workers(); ++w) {
        const auto& valid = instance.ValidTasks(w);
        if (valid.empty()) continue;
        const TaskIndex t = valid[static_cast<size_t>(
            rng.UniformInt(static_cast<uint64_t>(valid.size())))];
        ApplyMove(instance, &assignment, w, t);
      }
      break;
    }
    case GtInit::kEmpty:
      assignment = MakeAssignment(instance);
      break;
    }
  }

  // The keeper delta-evaluates every utility from here on; it is kept in
  // sync with `assignment` through keeper-aware ApplyMove.
  ScoreKeeper keeper = MakeScoreKeeper(instance, assignment);
  stats_.init_score = keeper.TotalScore();

  std::unique_ptr<ThreadPool> pool;
  if (options_.num_threads > 1) {
    pool = std::make_unique<ThreadPool>(options_.num_threads);
  }

  // A warm start reuses the LUB machinery even when LUB is off: the
  // delta's dirty frontier plays the role of the all-dirty first round,
  // and the zero-move verification pass below still certifies the
  // equilibrium, so an under-marked frontier can cost rounds but never
  // correctness.
  const bool use_dirty = options_.use_lub || warm;
  std::vector<bool> dirty;
  if (use_dirty) {
    if (warm) {
      dirty.assign(static_cast<size_t>(instance.num_workers()), false);
      for (WorkerIndex w = 0; w < instance.num_workers(); ++w) {
        if (delta->dirty[static_cast<size_t>(w)] != 0) {
          dirty[static_cast<size_t>(w)] = true;
        }
      }
    } else {
      dirty.assign(static_cast<size_t>(instance.num_workers()), true);
    }
  }

  std::vector<WorkerIndex> order(
      static_cast<size_t>(instance.num_workers()));
  for (WorkerIndex w = 0; w < instance.num_workers(); ++w) {
    order[static_cast<size_t>(w)] = w;
  }
  Rng order_rng(options_.order_seed);

  double score = stats_.init_score;
  bool reached_equilibrium = false;
  while (stats_.rounds < options_.max_rounds) {
    ++stats_.rounds;
    if (options_.order == GtOrder::kShuffled) order_rng.Shuffle(order);
    int64_t moves;
    if (use_dirty) {
      moves = Round(instance, order, &assignment, &keeper, pool.get(),
                    &dirty);
      if (moves == 0) {
        // The dirty set drained without a move. The theorem-based
        // filters are sound, but we still certify the equilibrium with
        // one full pass; any move it finds re-enters the loop.
        const int64_t verification_moves = Round(
            instance, order, &assignment, &keeper, pool.get(), nullptr);
        if (verification_moves == 0) {
          reached_equilibrium = true;
          break;
        }
        moves = verification_moves;
        CASC_LOG(kDebug) << "LUB verification pass applied "
                         << verification_moves << " extra moves";
      }
    } else {
      moves =
          Round(instance, order, &assignment, &keeper, pool.get(), nullptr);
      if (moves == 0) {
        reached_equilibrium = true;
        break;
      }
    }

    const double new_score = keeper.TotalScore();
    stats_.round_scores.push_back(new_score);
    if (options_.use_tsi) {
      // Threshold stop: the round improved the total by less than
      // epsilon * current score (Section V-D).
      if (new_score - score < options_.epsilon * new_score) {
        score = new_score;
        break;
      }
    }
    score = new_score;
  }

  stats_.converged = reached_equilibrium;
  stats_.final_score = keeper.TotalScore();
  if (workspace() != nullptr) workspace()->Recycle(std::move(keeper));
  return assignment;
}

}  // namespace casc
