#include "algo/upper_bound.h"

#include <algorithm>
#include <functional>
#include <limits>

#include "common/check.h"

namespace casc {
namespace {

/// Mean of the top (B-1) values of q_w(k) over `coworkers` under
/// `compare` (greater for the upper bound, less for the lower bound).
template <typename Compare>
double ExtremeAverageOver(const Instance& instance,
                          std::vector<double> qualities, Compare compare) {
  const int b_minus_1 = instance.min_group_size() - 1;
  if (static_cast<int>(qualities.size()) < b_minus_1) {
    return 0.0;  // no feasible group of B workers in this scope
  }
  std::nth_element(qualities.begin(),
                   qualities.begin() + (b_minus_1 - 1), qualities.end(),
                   compare);
  double sum = 0.0;
  for (int i = 0; i < b_minus_1; ++i) sum += qualities[static_cast<size_t>(i)];
  return sum / b_minus_1;
}

/// q_w(k) for every other worker in the batch.
std::vector<double> AllCoworkerQualities(const Instance& instance,
                                         WorkerIndex w) {
  std::vector<double> qualities;
  const int m = instance.num_workers();
  qualities.reserve(static_cast<size_t>(m) - (m > 0 ? 1 : 0));
  for (WorkerIndex k = 0; k < m; ++k) {
    if (k != w) qualities.push_back(instance.coop().Quality(w, k));
  }
  return qualities;
}

/// q_w(k) for workers sharing at least one valid task with w.
std::vector<double> CoCandidateQualities(const Instance& instance,
                                         WorkerIndex w) {
  std::vector<bool> seen(static_cast<size_t>(instance.num_workers()),
                         false);
  std::vector<double> qualities;
  for (const TaskIndex t : instance.ValidTasks(w)) {
    for (const WorkerIndex k : instance.Candidates(t)) {
      if (k == w || seen[static_cast<size_t>(k)]) continue;
      seen[static_cast<size_t>(k)] = true;
      qualities.push_back(instance.coop().Quality(w, k));
    }
  }
  return qualities;
}

template <typename Compare>
double ExtremeAverage(const Instance& instance, WorkerIndex w,
                      UpperBoundScope scope, Compare compare) {
  if (scope == UpperBoundScope::kCoCandidates) {
    return ExtremeAverageOver(instance, CoCandidateQualities(instance, w),
                              compare);
  }
  return ExtremeAverageOver(instance, AllCoworkerQualities(instance, w),
                            compare);
}

}  // namespace

double WorkerQualityUpperBound(const Instance& instance, WorkerIndex w,
                               UpperBoundScope scope) {
  return ExtremeAverage(instance, w, scope, std::greater<double>());
}

double WorkerQualityLowerBound(const Instance& instance, WorkerIndex w) {
  return ExtremeAverage(instance, w, UpperBoundScope::kAllWorkers,
                        std::less<double>());
}

double TaskUpperBound(const Instance& instance, TaskIndex t,
                      const std::vector<double>& worker_bounds) {
  CASC_CHECK_EQ(static_cast<int>(worker_bounds.size()),
                instance.num_workers());
  const auto& candidates = instance.Candidates(t);
  if (static_cast<int>(candidates.size()) < instance.min_group_size()) {
    return 0.0;
  }
  const int capacity = instance.tasks()[static_cast<size_t>(t)].capacity;
  std::vector<double> bounds;
  bounds.reserve(candidates.size());
  for (const WorkerIndex w : candidates) {
    bounds.push_back(worker_bounds[static_cast<size_t>(w)]);
  }
  const int take = std::min<int>(capacity, static_cast<int>(bounds.size()));
  std::nth_element(bounds.begin(), bounds.begin() + (take - 1), bounds.end(),
                   std::greater<double>());
  double sum = 0.0;
  for (int i = 0; i < take; ++i) sum += bounds[static_cast<size_t>(i)];
  return sum;
}

double ComputeUpperBound(const Instance& instance, UpperBoundScope scope) {
  CASC_CHECK(instance.valid_pairs_ready())
      << "UPPER requires Instance::ComputeValidPairs()";
  std::vector<double> worker_bounds(
      static_cast<size_t>(instance.num_workers()), 0.0);
  for (WorkerIndex w = 0; w < instance.num_workers(); ++w) {
    worker_bounds[static_cast<size_t>(w)] =
        WorkerQualityUpperBound(instance, w, scope);
  }

  double task_side = 0.0;
  for (TaskIndex t = 0; t < instance.num_tasks(); ++t) {
    task_side += TaskUpperBound(instance, t, worker_bounds);
  }
  // A worker can contribute only if it has at least one valid task.
  double worker_side = 0.0;
  for (WorkerIndex w = 0; w < instance.num_workers(); ++w) {
    if (!instance.ValidTasks(w).empty()) {
      worker_side += worker_bounds[static_cast<size_t>(w)];
    }
  }
  return std::min(task_side, worker_side);
}

double PriceOfAnarchyLowerBound(const Instance& instance,
                                int n_init_tasks) {
  const double upper = ComputeUpperBound(instance);
  if (upper <= 0.0) return 0.0;
  double q_min = std::numeric_limits<double>::infinity();
  for (WorkerIndex w = 0; w < instance.num_workers(); ++w) {
    q_min = std::min(q_min, WorkerQualityLowerBound(instance, w));
  }
  if (instance.num_workers() == 0) q_min = 0.0;
  return n_init_tasks * instance.min_group_size() * q_min / upper;
}

}  // namespace casc
