#include "algo/online_assigner.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "algo/best_response.h"
#include "common/check.h"
#include "model/objective.h"
#include "model/objective_model.h"
#include "model/score_keeper.h"

namespace casc {

OnlineAssigner::OnlineAssigner(OnlineOptions options) : options_(options) {}

Assignment OnlineAssigner::Run(const Instance& instance) {
  CASC_CHECK(instance.valid_pairs_ready())
      << "ONLINE requires Instance::ComputeValidPairs()";
  stats_ = AssignerStats{};
  Assignment assignment = MakeAssignment(instance);
  // Joining gains are delta-evaluated: the keeper grows with the
  // assignment, so each candidate task costs one affinity-row scan
  // instead of a rebuilt-group GroupScore pair.
  ScoreKeeper keeper = MakeScoreKeeper(instance, assignment);

  // Arrival order; ties broken by worker index for determinism.
  std::vector<WorkerIndex> order(static_cast<size_t>(instance.num_workers()));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](WorkerIndex a, WorkerIndex b) {
                     return instance.workers()[static_cast<size_t>(a)]
                                .arrival_time <
                            instance.workers()[static_cast<size_t>(b)]
                                .arrival_time;
                   });

  const bool prune = options_.use_pruning && !PruningDisabledByEnv();
  const ObjectiveModel& objective = instance.objective();
  const bool filter_joins = !objective.AlwaysJoinFeasible();
  for (const WorkerIndex w : order) {
    TaskIndex best_task = kNoTask;
    double best_gain = 0.0;
    bool best_is_optimistic = false;
    for (const TaskIndex t : instance.ValidTasks(w)) {
      const auto& group = assignment.GroupOf(t);
      const int capacity =
          instance.tasks()[static_cast<size_t>(t)].capacity;
      if (static_cast<int>(group.size()) >= capacity) continue;
      if (filter_joins && !objective.JoinFeasible(instance, t, group, w)) {
        ++stats_.feasibility_rejects;
        continue;
      }
      if (prune) {
        // The accept rule is a strict >, so a bound at or below the
        // incumbent proves the exact gain cannot win — skipping is
        // neutral even on exact ties.
        if (keeper.JoinBound(w, t) <= best_gain) {
          ++stats_.prune_candidates_skipped;
          continue;
        }
      }
      const double gain = keeper.GainIfJoined(w, t);
      ++stats_.prune_candidates_evaluated;
      if (gain > best_gain) {
        best_gain = gain;
        best_task = t;
        best_is_optimistic = false;
      }
    }
    if (best_task == kNoTask && options_.optimistic_join) {
      // No immediately-profitable join: park the worker on the
      // below-threshold task where it fits best (largest raw affinity to
      // the current members; emptiest task as the tie-break) so teams
      // can still form.
      double best_affinity = -1.0;
      for (const TaskIndex t : instance.ValidTasks(w)) {
        const auto& group = assignment.GroupOf(t);
        if (static_cast<int>(group.size()) + 1 >
            instance.min_group_size()) {
          continue;  // only seed groups still at or below B
        }
        if (filter_joins &&
            !objective.JoinFeasible(instance, t, group, w)) {
          ++stats_.feasibility_rejects;
          continue;
        }
        const double affinity =
            instance.coop().RowSum(w, group) +
            1e-3 * (instance.min_group_size() -
                    static_cast<int>(group.size()));
        if (affinity > best_affinity) {
          best_affinity = affinity;
          best_task = t;
          best_is_optimistic = true;
        }
      }
    }
    if (best_task != kNoTask) {
      assignment.Assign(w, best_task);
      keeper.Add(w, best_task);
      (void)best_is_optimistic;
    }
  }
  stats_.final_score = TotalScore(instance, assignment);
  if (workspace() != nullptr) workspace()->Recycle(std::move(keeper));
  return assignment;
}

}  // namespace casc
