#ifndef CASC_ALGO_EXACT_ASSIGNER_H_
#define CASC_ALGO_EXACT_ASSIGNER_H_

#include <string>

#include "algo/assigner.h"

namespace casc {

/// Default cap on the exact solver's instance size (see ExactOptions).
inline constexpr int kExactDefaultMaxWorkers = 16;

/// Options for the exact solver.
struct ExactOptions {
  /// Refuses instances with more workers than this (CA-SC is NP-hard;
  /// the search is exponential in the worker count).
  int max_workers = kExactDefaultMaxWorkers;
};

/// Exact CA-SC solver by branch-and-bound over per-worker strategy
/// choices (each worker picks a valid task with remaining capacity, or
/// idles). Pruning uses the Lemma V.2 bound: any completion's score is at
/// most the sum of q̂_{i,B} over assignable workers.
///
/// Exponential — only for the small instances used by the optimality-gap
/// tests and the EXACT-gap ablation bench. CHECK-fails beyond
/// `max_workers`.
class ExactAssigner : public Assigner {
 public:
  explicit ExactAssigner(ExactOptions options = {});

  std::string Name() const override { return "EXACT"; }
  Assignment Run(const Instance& instance) override;

 private:
  ExactOptions options_;
};

}  // namespace casc

#endif  // CASC_ALGO_EXACT_ASSIGNER_H_
