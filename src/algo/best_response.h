#ifndef CASC_ALGO_BEST_RESPONSE_H_
#define CASC_ALGO_BEST_RESPONSE_H_

#include "model/assignment.h"
#include "model/instance.h"
#include "model/score_keeper.h"

namespace casc {

/// The game-theoretic strategy evaluation shared by the GT assigner and
/// the Nash-equilibrium property checks in the test suite (Section V-B).
///
/// A worker's strategy is a valid task or idling; the utility of playing
/// task t given the other workers' strategies is Equation 5:
///   U_i = Q(W_t) - Q(W_t \ {w_i})   with w_i counted in W_t.
/// When joining would exceed the task's capacity a_t, Equation 2 pays only
/// the best a_t-subset; the excluded worker is "crowded out" (the
/// mechanism behind Theorems V.3 / V.4).

/// Utility of worker `w` playing strategy `t` under `assignment`
/// (which may currently place `w` anywhere, including on `t`).
/// If joining `t` would overfill it, `*crowded_out` receives the worker
/// the best-subset rule would evict (possibly `w` itself, in which case
/// the utility is 0); otherwise kNoWorker. `crowded_out` may be null.
/// Playing `t == kNoTask` (idle) has utility 0.
double StrategyUtility(const Instance& instance,
                       const Assignment& assignment, WorkerIndex w,
                       TaskIndex t, WorkerIndex* crowded_out);

/// The best response of worker `w` given everyone else's strategies.
struct BestResponse {
  TaskIndex task = kNoTask;          ///< argmax strategy (kNoTask = idle)
  double utility = 0.0;              ///< utility of that strategy
  WorkerIndex crowded_out = kNoWorker;  ///< evicted worker, if any
};

/// Scans `w`'s valid tasks plus idling and returns the utility-maximizing
/// strategy. Ties resolve to the current strategy first, then the lowest
/// task index, making the GT loop deterministic.
BestResponse ComputeBestResponse(const Instance& instance,
                                 const Assignment& assignment,
                                 WorkerIndex w);

/// Delta-evaluated StrategyUtility: identical semantics to the scratch
/// overload above, but each candidate costs one ScoreKeeper marginal —
/// O(|W_t|) with no allocation — instead of two from-scratch GroupScore
/// calls (O(|W_t|^2) each). Only the crowding branch (joining a full
/// task) still runs BestSubset. `keeper` must mirror `assignment`
/// exactly: same group membership for every task.
double StrategyUtility(const Instance& instance, const ScoreKeeper& keeper,
                       const Assignment& assignment, WorkerIndex w,
                       TaskIndex t, WorkerIndex* crowded_out);

/// Delta-evaluated best response; the keeper-backed twin of
/// ComputeBestResponse with the same tie-breaking contract.
BestResponse ComputeBestResponse(const Instance& instance,
                                 const ScoreKeeper& keeper,
                                 const Assignment& assignment,
                                 WorkerIndex w);

/// Work counters of one best-response candidate scan.
struct PruneCounters {
  int64_t evaluated = 0;  ///< candidates whose exact utility was computed
  int64_t pruned = 0;     ///< candidates skipped on their upper bound
  /// Candidates rejected by ObjectiveModel::JoinFeasible before any
  /// utility work (always 0 for objectives with a trivial predicate).
  int64_t feasibility_rejects = 0;
};

/// True when the CASC_NO_PRUNE environment variable force-disables
/// bound-based candidate pruning process-wide (read once). The escape
/// hatch for bisecting — results are bit-identical either way, so
/// flipping it should never change an answer, only timings.
bool PruningDisabledByEnv();

/// ComputeBestResponse with bound-based candidate pruning and work
/// accounting. The scan keeps the CSR ascending task order; with
/// `prune` set (and CASC_NO_PRUNE unset), each below-capacity candidate
/// is first screened by ScoreKeeper::JoinBound and its exact marginal
/// is skipped when the bound cannot beat the incumbent best — which is
/// exactly when the unpruned scan would reject it, so the returned
/// strategy, utility and eviction are bit-identical to prune == false
/// (a sorted-by-bound scan was rejected: under the tie hysteresis it
/// can crown a different near-tied winner). With CASC_PRUNE_AUDIT set,
/// every skipped candidate is evaluated anyway and CHECKed against the
/// incumbent. With `prune` false, the non-full candidates' gains are
/// gathered in one batched ScoreKeeper::GainsIfJoined call instead.
/// `counters` (may be null) receives the scan's work tally.
BestResponse ComputeBestResponse(const Instance& instance,
                                 const ScoreKeeper& keeper,
                                 const Assignment& assignment, WorkerIndex w,
                                 bool prune, PruneCounters* counters);

/// Result of applying one strategy change.
struct MoveResult {
  TaskIndex from = kNoTask;            ///< previous strategy
  WorkerIndex crowded_out = kNoWorker; ///< worker evicted from the target
};

/// Moves `w` to strategy `t` (or idle for kNoTask), evicting the
/// best-subset loser when the target overflows, so the assignment never
/// leaves this function over capacity. Requires t to be valid for w.
MoveResult ApplyMove(const Instance& instance, Assignment* assignment,
                     WorkerIndex w, TaskIndex t);

/// ApplyMove that also keeps `keeper` in sync with the assignment (a
/// null keeper degrades to the plain overload). The keeper never observes
/// an over-capacity group: on crowding, the evicted member is removed
/// before the newcomer is added.
MoveResult ApplyMove(const Instance& instance, Assignment* assignment,
                     ScoreKeeper* keeper, WorkerIndex w, TaskIndex t);

/// True when no worker can strictly improve its utility (beyond
/// `tolerance`) by unilaterally deviating: the pure Nash equilibrium
/// condition of Section V-A. O(m * n̄) — used by tests and the GT loop's
/// final verification pass.
bool IsNashEquilibrium(const Instance& instance,
                       const Assignment& assignment, double tolerance);

}  // namespace casc

#endif  // CASC_ALGO_BEST_RESPONSE_H_
