#ifndef CASC_ALGO_ONLINE_ASSIGNER_H_
#define CASC_ALGO_ONLINE_ASSIGNER_H_

#include <string>

#include "algo/assigner.h"

namespace casc {

/// Options for the online greedy assigner.
struct OnlineOptions {
  /// Allow a worker to join a group still below B even when the
  /// immediate ΔQ is zero (groups only produce revenue at size >= B, so
  /// without this no team would ever form). Default on.
  bool optimistic_join = true;

  /// Screen each candidate with ScoreKeeper::JoinBound and skip the
  /// exact gain once the bound cannot beat the best gain so far. The
  /// greedy accept rule is a strict >, so a candidate with bound <=
  /// incumbent can never win — the produced assignment is bit-identical
  /// with pruning on or off. The optimistic-join fallback (which ranks
  /// by raw affinity with exact ties by design) is never pruned.
  /// CASC_NO_PRUNE force-disables.
  bool use_pruning = true;
};

/// ONLINE baseline: the one-by-one server-assigned-task mode the paper
/// contrasts with its batch mode (Section VII, [25][28]).
///
/// Workers are processed in arrival order (ties by index), each
/// immediately and irrevocably assigned to the valid task with the
/// largest marginal gain ΔQ given the assignments made so far — no
/// batching, no reassignment, no view of future arrivals. The gap to TPG
/// and GT quantifies the value of batch processing for CA-SC.
class OnlineAssigner : public Assigner {
 public:
  explicit OnlineAssigner(OnlineOptions options = {});

  std::string Name() const override { return "ONLINE"; }
  Assignment Run(const Instance& instance) override;

 private:
  OnlineOptions options_;
};

}  // namespace casc

#endif  // CASC_ALGO_ONLINE_ASSIGNER_H_
