#include "algo/best_response.h"

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "common/check.h"
#include "model/objective.h"
#include "model/objective_model.h"

namespace casc {
namespace {

/// Strict-improvement threshold guarding against floating-point ping-pong
/// in the best-response loop.
constexpr double kImprovementTolerance = 1e-12;

}  // namespace

double StrategyUtility(const Instance& instance,
                       const Assignment& assignment, WorkerIndex w,
                       TaskIndex t, WorkerIndex* crowded_out) {
  if (crowded_out != nullptr) *crowded_out = kNoWorker;
  if (t == kNoTask) return 0.0;

  // W_t = the other workers currently playing t, plus w.
  std::vector<WorkerIndex> group;
  group.reserve(assignment.GroupOf(t).size() + 1);
  for (const WorkerIndex member : assignment.GroupOf(t)) {
    if (member != w) group.push_back(member);
  }
  const std::vector<WorkerIndex> others = group;  // W_t \ {w}
  group.push_back(w);

  const int capacity = instance.tasks()[static_cast<size_t>(t)].capacity;
  if (static_cast<int>(group.size()) <= capacity) {
    return GroupScore(instance, t, group) -
           GroupScore(instance, t, others);
  }

  // Overfull: Equation 2 pays only the best a_t-subset of W_t. The member
  // left out of that subset is the crowded-out worker.
  const std::vector<WorkerIndex> best =
      BestSubset(instance.coop(), group, capacity);
  if (crowded_out != nullptr) {
    for (const WorkerIndex member : group) {
      if (std::find(best.begin(), best.end(), member) == best.end()) {
        *crowded_out = member;
        break;
      }
    }
  }
  return GroupScore(instance, t, group) - GroupScore(instance, t, others);
}

BestResponse ComputeBestResponse(const Instance& instance,
                                 const Assignment& assignment,
                                 WorkerIndex w) {
  const TaskIndex current = assignment.TaskOf(w);
  BestResponse best;
  // Seed with the current strategy so ties keep the worker in place.
  best.task = current;
  best.utility =
      StrategyUtility(instance, assignment, w, current, &best.crowded_out);

  // The strategy space is the *feasible* valid tasks (plus staying and
  // idling): objectives with a non-trivial join predicate restrict the
  // deviations a worker may even consider. IsNashEquilibrium applies the
  // same filter, so the equilibrium notion stays consistent.
  const ObjectiveModel& objective = instance.objective();
  const bool filter_joins = !objective.AlwaysJoinFeasible();
  for (const TaskIndex t : instance.ValidTasks(w)) {
    if (t == current) continue;
    if (filter_joins &&
        !objective.JoinFeasible(instance, t, assignment.GroupOf(t), w)) {
      continue;
    }
    WorkerIndex crowded = kNoWorker;
    const double utility =
        StrategyUtility(instance, assignment, w, t, &crowded);
    if (utility > best.utility + kImprovementTolerance) {
      best.task = t;
      best.utility = utility;
      best.crowded_out = crowded;
    }
  }
  // Idling beats a negative current utility (cannot happen with
  // non-negative qualities, but keeps the game well-defined).
  if (0.0 > best.utility + kImprovementTolerance) {
    best = BestResponse{kNoTask, 0.0, kNoWorker};
  }
  return best;
}

double StrategyUtility(const Instance& instance, const ScoreKeeper& keeper,
                       const Assignment& assignment, WorkerIndex w,
                       TaskIndex t, WorkerIndex* crowded_out) {
  if (crowded_out != nullptr) *crowded_out = kNoWorker;
  if (t == kNoTask) return 0.0;

  if (assignment.TaskOf(w) == t) {
    // U_i = Q(W_t) - Q(W_t \ {w_i}): exactly the leaving marginal.
    return keeper.LossIfLeft(w, t);
  }

  const std::span<const WorkerIndex> others = keeper.GroupOf(t);
  const int capacity = instance.tasks()[static_cast<size_t>(t)].capacity;
  if (static_cast<int>(others.size()) < capacity) {
    return keeper.GainIfJoined(w, t);
  }

  // Overfull: Equation 2 pays only the best a_t-subset of W_t ∪ {w}. The
  // pre-join score is already cached; only the joined group needs the
  // BestSubset fallback.
  std::vector<WorkerIndex> group(others.begin(), others.end());
  group.push_back(w);
  const std::vector<WorkerIndex> best =
      BestSubset(instance.coop(), group, capacity);
  if (crowded_out != nullptr) {
    for (const WorkerIndex member : group) {
      if (std::find(best.begin(), best.end(), member) == best.end()) {
        *crowded_out = member;
        break;
      }
    }
  }
  double joined_score = 0.0;
  if (static_cast<int>(group.size()) >= instance.min_group_size()) {
    // The surviving subset is scored by the objective (a crowd-out can
    // break skill coverage); for the default objective this is exactly
    // the historical PairSum(best) / (capacity - 1).
    joined_score = instance.objective().ScoreGroup(
        instance, t, best, kNoWorker, kNoWorker,
        instance.coop().PairSum(best), capacity);
  }
  return joined_score - keeper.TaskScore(t);
}

BestResponse ComputeBestResponse(const Instance& instance,
                                 const ScoreKeeper& keeper,
                                 const Assignment& assignment,
                                 WorkerIndex w) {
  return ComputeBestResponse(instance, keeper, assignment, w,
                             /*prune=*/false, /*counters=*/nullptr);
}

bool PruningDisabledByEnv() {
  static const bool kDisabled = std::getenv("CASC_NO_PRUNE") != nullptr;
  return kDisabled;
}

namespace {

/// CASC_PRUNE_AUDIT: evaluate every pruned candidate anyway and CHECK
/// it could not have beaten the incumbent (read once per process).
bool PruneAuditEnabled() {
  static const bool kAudit = std::getenv("CASC_PRUNE_AUDIT") != nullptr;
  return kAudit;
}

}  // namespace

BestResponse ComputeBestResponse(const Instance& instance,
                                 const ScoreKeeper& keeper,
                                 const Assignment& assignment, WorkerIndex w,
                                 bool prune, PruneCounters* counters) {
  const TaskIndex current = assignment.TaskOf(w);
  BestResponse best;
  best.task = current;
  best.utility = StrategyUtility(instance, keeper, assignment, w, current,
                                 &best.crowded_out);
  const bool do_prune = prune && !PruningDisabledByEnv();
  const ObjectiveModel& objective = instance.objective();
  // Hoisted so the default objective pays no per-candidate virtual call
  // for a predicate that is constantly true.
  const bool filter_joins = !objective.AlwaysJoinFeasible();
  const auto join_feasible = [&](TaskIndex t) {
    if (!filter_joins) return true;
    if (objective.JoinFeasible(instance, t, keeper.GroupOf(t), w)) {
      return true;
    }
    if (counters != nullptr) ++counters->feasibility_rejects;
    return false;
  };

  if (!do_prune) {
    // Unpruned scan: every non-full candidate's joining gain comes from
    // one batched GainsIfJoined (a single RowSumMany kernel dispatch
    // when a tile is attached), then the ascending accept rule replays
    // over the exact same utilities the per-task calls would produce.
    thread_local std::vector<TaskIndex> candidates;
    thread_local std::vector<double> gains;
    candidates.clear();
    for (const TaskIndex t : instance.ValidTasks(w)) {
      if (t == current) continue;
      if (filter_joins &&
          !objective.JoinFeasible(instance, t, keeper.GroupOf(t), w)) {
        continue;  // counted once, in the replay loop below
      }
      const int capacity =
          instance.tasks()[static_cast<size_t>(t)].capacity;
      if (static_cast<int>(keeper.GroupOf(t).size()) < capacity) {
        candidates.push_back(t);
      }
    }
    gains.resize(candidates.size());
    keeper.GainsIfJoined(w, candidates, gains.data());
    size_t next = 0;
    for (const TaskIndex t : instance.ValidTasks(w)) {
      if (t == current) continue;
      if (!join_feasible(t)) continue;
      WorkerIndex crowded = kNoWorker;
      double utility;
      if (next < candidates.size() && candidates[next] == t) {
        utility = gains[next++];  // == GainIfJoined(w, t), bit-identical
      } else {
        utility =
            StrategyUtility(instance, keeper, assignment, w, t, &crowded);
      }
      if (counters != nullptr) ++counters->evaluated;
      if (utility > best.utility + kImprovementTolerance) {
        best.task = t;
        best.utility = utility;
        best.crowded_out = crowded;
      }
    }
  } else {
    for (const TaskIndex t : instance.ValidTasks(w)) {
      if (t == current) continue;
      if (!join_feasible(t)) continue;
      const int capacity =
          instance.tasks()[static_cast<size_t>(t)].capacity;
      if (static_cast<int>(keeper.GroupOf(t).size()) < capacity) {
        // Screen: an upper bound on the joining gain that cannot beat
        // the incumbent means the unpruned scan would reject this
        // candidate here too — skipping is exactly neutral.
        const double bound = keeper.JoinBound(w, t);
        if (bound <= best.utility + kImprovementTolerance) {
          if (counters != nullptr) ++counters->pruned;
          if (PruneAuditEnabled()) {
            const double exact = keeper.GainIfJoined(w, t);
            CASC_CHECK(exact <= bound)
                << "JoinBound(" << w << ", " << t
                << ") is not an upper bound: exact=" << exact
                << " bound=" << bound;
            CASC_CHECK(exact <= best.utility + kImprovementTolerance)
                << "pruned candidate task " << t << " beats the incumbent "
                << "for worker " << w << ": exact=" << exact
                << " incumbent=" << best.utility;
          }
          continue;
        }
      }
      WorkerIndex crowded = kNoWorker;
      const double utility =
          StrategyUtility(instance, keeper, assignment, w, t, &crowded);
      if (counters != nullptr) ++counters->evaluated;
      if (utility > best.utility + kImprovementTolerance) {
        best.task = t;
        best.utility = utility;
        best.crowded_out = crowded;
      }
    }
  }
  if (0.0 > best.utility + kImprovementTolerance) {
    best = BestResponse{kNoTask, 0.0, kNoWorker};
  }
  return best;
}

MoveResult ApplyMove(const Instance& instance, Assignment* assignment,
                     WorkerIndex w, TaskIndex t) {
  CASC_CHECK(assignment != nullptr);
  MoveResult result;
  result.from = assignment->TaskOf(w);
  if (t == kNoTask) {
    assignment->Unassign(w);
    return result;
  }
  CASC_CHECK(instance.IsValidPair(w, t))
      << "ApplyMove: pair (" << w << ", " << t << ") is not valid";
  assignment->Assign(w, t);
  const int capacity = instance.tasks()[static_cast<size_t>(t)].capacity;
  if (assignment->GroupSize(t) > capacity) {
    const std::span<const WorkerIndex> overfull = assignment->GroupOf(t);
    const std::vector<WorkerIndex> group(overfull.begin(), overfull.end());
    const std::vector<WorkerIndex> best =
        BestSubset(instance.coop(), group, capacity);
    for (const WorkerIndex member : group) {
      if (std::find(best.begin(), best.end(), member) == best.end()) {
        assignment->Unassign(member);
        result.crowded_out = member;
        break;
      }
    }
    CASC_CHECK_LE(assignment->GroupSize(t), capacity);
  }
  return result;
}

MoveResult ApplyMove(const Instance& instance, Assignment* assignment,
                     ScoreKeeper* keeper, WorkerIndex w, TaskIndex t) {
  if (keeper == nullptr) return ApplyMove(instance, assignment, w, t);
  CASC_CHECK(assignment != nullptr);
  MoveResult result;
  result.from = assignment->TaskOf(w);
  if (result.from == t) return result;  // Assign(w, TaskOf(w)) is a no-op

  // Keeper updates interleave with the assignment mutations: each
  // Remove/Add must scan the group state the mirrored-keeper design saw,
  // so the eviction delta is computed before the newcomer joins and the
  // join delta after the evictee left.
  if (result.from != kNoTask) {
    keeper->Remove(w, result.from);
    assignment->Unassign(w);
  }
  if (t == kNoTask) return result;
  CASC_CHECK(instance.IsValidPair(w, t))
      << "ApplyMove: pair (" << w << ", " << t << ") is not valid";

  const int capacity = instance.tasks()[static_cast<size_t>(t)].capacity;
  if (assignment->GroupSize(t) >= capacity) {
    // Joining would overfill: Equation 2 pays only the best a_t-subset of
    // W_t ∪ {w}; the member left out is crowded out (possibly w itself).
    const std::span<const WorkerIndex> current = assignment->GroupOf(t);
    std::vector<WorkerIndex> group(current.begin(), current.end());
    group.push_back(w);
    const std::vector<WorkerIndex> best =
        BestSubset(instance.coop(), group, capacity);
    WorkerIndex evicted = kNoWorker;
    for (const WorkerIndex member : group) {
      if (std::find(best.begin(), best.end(), member) == best.end()) {
        evicted = member;
        break;
      }
    }
    CASC_CHECK_NE(evicted, kNoWorker);
    result.crowded_out = evicted;
    if (evicted == w) return result;  // w stays out; the group is unchanged
    keeper->Remove(evicted, t);
    assignment->Unassign(evicted);
  }
  keeper->Add(w, t);
  assignment->Assign(w, t);
  return result;
}

bool IsNashEquilibrium(const Instance& instance,
                       const Assignment& assignment, double tolerance) {
  const ObjectiveModel& objective = instance.objective();
  const bool filter_joins = !objective.AlwaysJoinFeasible();
  for (WorkerIndex w = 0; w < instance.num_workers(); ++w) {
    const TaskIndex current = assignment.TaskOf(w);
    const double current_utility =
        StrategyUtility(instance, assignment, w, current, nullptr);
    for (const TaskIndex t : instance.ValidTasks(w)) {
      if (t == current) continue;
      // Deviations are restricted to objective-feasible joins — the same
      // filter ComputeBestResponse applies, so "no improving move" and
      // "equilibrium" quantify over the same strategy space.
      if (filter_joins &&
          !objective.JoinFeasible(instance, t, assignment.GroupOf(t), w)) {
        continue;
      }
      const double utility =
          StrategyUtility(instance, assignment, w, t, nullptr);
      if (utility > current_utility + tolerance) return false;
    }
    if (0.0 > current_utility + tolerance) return false;
  }
  return true;
}

}  // namespace casc
