#ifndef CASC_ALGO_RANDOM_ASSIGNER_H_
#define CASC_ALGO_RANDOM_ASSIGNER_H_

#include <string>

#include "algo/assigner.h"
#include "common/rng.h"

namespace casc {

/// The RAND baseline: visits tasks in random order and assigns each a
/// random subset of its still-unassigned valid workers (up to capacity;
/// tasks that cannot reach B workers are skipped). Fast and oblivious to
/// cooperation quality — the floor every figure compares against.
class RandomAssigner : public Assigner {
 public:
  /// Seeds the internal deterministic RNG.
  explicit RandomAssigner(uint64_t seed = 1);

  std::string Name() const override { return "RAND"; }
  Assignment Run(const Instance& instance) override;

 private:
  Rng rng_;
};

}  // namespace casc

#endif  // CASC_ALGO_RANDOM_ASSIGNER_H_
