#include "algo/maxflow_assigner.h"

#include <vector>

#include "common/check.h"
#include "graph/dinic.h"
#include "graph/flow_network.h"
#include "model/objective.h"

namespace casc {

Assignment MaxFlowAssigner::Run(const Instance& instance) {
  CASC_CHECK(instance.valid_pairs_ready())
      << "MFLOW requires Instance::ComputeValidPairs()";
  stats_ = AssignerStats{};

  const int m = instance.num_workers();
  const int n = instance.num_tasks();
  // Vertex layout: 0 = source, 1..m = workers, m+1..m+n = tasks,
  // m+n+1 = sink.
  const int source = 0;
  const int sink = m + n + 1;
  FlowNetwork network(m + n + 2);

  for (WorkerIndex w = 0; w < m; ++w) {
    network.AddEdge(source, 1 + w, 1);
  }
  // Remember which flow edge backs each valid pair.
  struct PairEdge {
    WorkerIndex worker;
    TaskIndex task;
    int edge;
  };
  std::vector<PairEdge> pair_edges;
  for (WorkerIndex w = 0; w < m; ++w) {
    for (const TaskIndex t : instance.ValidTasks(w)) {
      const int edge = network.AddEdge(1 + w, 1 + m + t, 1);
      pair_edges.push_back(PairEdge{w, t, edge});
    }
  }
  for (TaskIndex t = 0; t < n; ++t) {
    network.AddEdge(1 + m + t, sink,
                    instance.tasks()[static_cast<size_t>(t)].capacity);
  }

  DinicMaxFlow(&network, source, sink);

  Assignment assignment = MakeAssignment(instance);
  for (const PairEdge& pair : pair_edges) {
    if (network.Flow(pair.edge) > 0) {
      assignment.Assign(pair.worker, pair.task);
    }
  }
  stats_.final_score = TotalScore(instance, assignment);
  return assignment;
}

}  // namespace casc
