#ifndef CASC_ALGO_UPPER_BOUND_H_
#define CASC_ALGO_UPPER_BOUND_H_

#include <vector>

#include "model/instance.h"

namespace casc {

/// The UPPER estimator of Section V-C (Lemmas V.2 / V.3, Equations 8-9),
/// reported alongside the algorithms in every figure of the paper.

/// Which co-worker population the Lemma V.2 ceilings consider.
enum class UpperBoundScope {
  /// All workers in the batch — the paper's literal formulation.
  kAllWorkers,
  /// Only workers that share at least one valid task with the worker
  /// being bounded. Any feasible group containing worker i consists of
  /// candidates of one of i's valid tasks, so this bound is still sound
  /// — and strictly tighter whenever working areas fragment the batch.
  /// Requires instance.valid_pairs_ready().
  kCoCandidates,
};

/// q̂_{i,B} (Lemma V.2): the highest average cooperation quality worker
/// `w` can obtain in any group of >= B workers — the mean of its top
/// (B - 1) outgoing qualities over the scope's co-worker population.
/// Returns 0 when no feasible group of B workers exists for that scope.
double WorkerQualityUpperBound(
    const Instance& instance, WorkerIndex w,
    UpperBoundScope scope = UpperBoundScope::kAllWorkers);

/// q̌_{i,B} (Lemma V.3): the lowest average quality worker `w` can have in
/// a group of >= B workers — the mean of its bottom (B - 1) outgoing
/// qualities. Used by the PoA lower bound (Theorem V.2).
double WorkerQualityLowerBound(const Instance& instance, WorkerIndex w);

/// Q̂_{t_j} (Equation 8): per-task upper bound — the sum of the top
/// min(a_j, |candidates|) values of q̂_{x,B} over the task's candidate
/// workers; 0 when fewer than B candidates exist.
/// `worker_bounds` must hold WorkerQualityUpperBound for every worker.
double TaskUpperBound(const Instance& instance, TaskIndex t,
                      const std::vector<double>& worker_bounds);

/// Q̂(phi) (Equation 9): min( sum_j Q̂_{t_j} ,
///                            sum_{workers with >= 1 valid task} q̂_{i,B} ).
/// Requires instance.valid_pairs_ready().
double ComputeUpperBound(
    const Instance& instance,
    UpperBoundScope scope = UpperBoundScope::kAllWorkers);

/// The Price-of-Anarchy lower bound of Theorem V.2:
/// N_init * B * q̌ / Q̂(phi), where `n_init_tasks` is the number of tasks
/// the TPG initialization finished. Returns 0 when Q̂(phi) == 0.
double PriceOfAnarchyLowerBound(const Instance& instance,
                                int n_init_tasks);

}  // namespace casc

#endif  // CASC_ALGO_UPPER_BOUND_H_
