#ifndef CASC_ALGO_LOCAL_SEARCH_H_
#define CASC_ALGO_LOCAL_SEARCH_H_

#include <memory>
#include <string>
#include <vector>

#include "algo/assigner.h"
#include "model/score_keeper.h"

namespace casc {

/// Options for the swap-based local search.
struct LocalSearchOptions {
  /// Maximum improvement passes over all task pairs.
  int max_passes = 50;

  /// Screen each candidate exchange with a per-task swap upper bound
  /// (current pair sum plus the incoming worker's row-max affinity) and
  /// skip the trial mutation when even the optimistic pair of bounds
  /// cannot beat the incumbent pair of scores. A skipped trial is one
  /// the exact evaluation provably rejects, so the applied swaps — and
  /// every score that follows — are identical with pruning on or off.
  /// CASC_NO_PRUNE force-disables.
  bool use_pruning = true;
};

/// SWAP post-optimizer: runs a base assigner, then repeatedly applies
/// profitable *pairwise exchanges* — two workers on different tasks
/// trading places when both directions are valid and the total
/// cooperation score strictly increases.
///
/// A Nash equilibrium only rules out unilateral deviations; a swap is a
/// coordinated deviation by two players, so GT+SWAP can strictly improve
/// on GT's equilibria (and TPG+SWAP on TPG). This is an extension beyond
/// the paper, quantified by bench_ablation_swap.
class LocalSearchAssigner : public Assigner {
 public:
  /// Wraps `base`; its output is the starting point of the search.
  LocalSearchAssigner(std::unique_ptr<Assigner> base,
                      LocalSearchOptions options = {});

  std::string Name() const override;
  Assignment Run(const Instance& instance) override;

  /// Number of swaps applied in the most recent Run().
  int64_t swaps_applied() const { return swaps_applied_; }

 private:
  /// One full pass; returns the number of swaps applied. Candidate
  /// exchanges are delta-evaluated via trial mutations on `mirror` (a
  /// replica of the legacy keeper's group store) plus keeper ApplyDelta —
  /// O(group) per candidate instead of rebuilding both groups and
  /// rescoring from scratch.
  int64_t ImprovementPass(const Instance& instance, Assignment* assignment,
                          ScoreKeeper* keeper,
                          std::vector<std::vector<WorkerIndex>>* mirror);

  std::unique_ptr<Assigner> base_;
  LocalSearchOptions options_;
  int64_t swaps_applied_ = 0;
};

}  // namespace casc

#endif  // CASC_ALGO_LOCAL_SEARCH_H_
