#include "algo/local_search.h"

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "model/objective.h"

namespace casc {
namespace {

/// Tolerance for "strictly improving" to avoid floating-point cycling.
constexpr double kTolerance = 1e-12;

/// Score of `group` with `out` replaced by `in`.
double ScoreWithReplacement(const Instance& instance, TaskIndex t,
                            const std::vector<WorkerIndex>& group,
                            WorkerIndex out, WorkerIndex in) {
  std::vector<WorkerIndex> modified;
  modified.reserve(group.size());
  for (const WorkerIndex member : group) {
    modified.push_back(member == out ? in : member);
  }
  return GroupScore(instance, t, modified);
}

}  // namespace

LocalSearchAssigner::LocalSearchAssigner(std::unique_ptr<Assigner> base,
                                         LocalSearchOptions options)
    : base_(std::move(base)), options_(options) {
  CASC_CHECK(base_ != nullptr);
}

std::string LocalSearchAssigner::Name() const {
  return base_->Name() + "+SWAP";
}

int64_t LocalSearchAssigner::ImprovementPass(const Instance& instance,
                                             Assignment* assignment) {
  int64_t swaps = 0;
  const int n = instance.num_tasks();
  for (TaskIndex t1 = 0; t1 < n; ++t1) {
    for (TaskIndex t2 = t1 + 1; t2 < n; ++t2) {
      // Group vectors are copied because a swap invalidates references.
      bool improved = true;
      while (improved) {
        improved = false;
        const std::vector<WorkerIndex> group1 = assignment->GroupOf(t1);
        const std::vector<WorkerIndex> group2 = assignment->GroupOf(t2);
        const double base_score = GroupScore(instance, t1, group1) +
                                  GroupScore(instance, t2, group2);
        for (const WorkerIndex w1 : group1) {
          if (!instance.IsValidPair(w1, t2)) continue;
          for (const WorkerIndex w2 : group2) {
            if (!instance.IsValidPair(w2, t1)) continue;
            const double swapped =
                ScoreWithReplacement(instance, t1, group1, w1, w2) +
                ScoreWithReplacement(instance, t2, group2, w2, w1);
            if (swapped > base_score + kTolerance) {
              assignment->Assign(w1, t2);
              assignment->Assign(w2, t1);
              ++swaps;
              improved = true;
              break;
            }
          }
          if (improved) break;
        }
      }
    }
  }
  return swaps;
}

Assignment LocalSearchAssigner::Run(const Instance& instance) {
  Assignment assignment = base_->Run(instance);
  stats_ = base_->stats();
  swaps_applied_ = 0;
  for (int pass = 0; pass < options_.max_passes; ++pass) {
    const int64_t swaps = ImprovementPass(instance, &assignment);
    swaps_applied_ += swaps;
    if (swaps == 0) break;
  }
  stats_.final_score = TotalScore(instance, assignment);
  return assignment;
}

}  // namespace casc
