#include "algo/local_search.h"

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "model/objective.h"

namespace casc {
namespace {

/// Tolerance for "strictly improving" to avoid floating-point cycling.
constexpr double kTolerance = 1e-12;

}  // namespace

LocalSearchAssigner::LocalSearchAssigner(std::unique_ptr<Assigner> base,
                                         LocalSearchOptions options)
    : base_(std::move(base)), options_(options) {
  CASC_CHECK(base_ != nullptr);
}

std::string LocalSearchAssigner::Name() const {
  return base_->Name() + "+SWAP";
}

int64_t LocalSearchAssigner::ImprovementPass(const Instance& instance,
                                             Assignment* assignment,
                                             ScoreKeeper* keeper) {
  int64_t swaps = 0;
  const int n = instance.num_tasks();
  for (TaskIndex t1 = 0; t1 < n; ++t1) {
    for (TaskIndex t2 = t1 + 1; t2 < n; ++t2) {
      // Group vectors are copied because a swap invalidates references.
      bool improved = true;
      while (improved) {
        improved = false;
        const std::vector<WorkerIndex> group1 = assignment->GroupOf(t1);
        const std::vector<WorkerIndex> group2 = assignment->GroupOf(t2);
        const double base_score =
            keeper->TaskScore(t1) + keeper->TaskScore(t2);
        for (const WorkerIndex w1 : group1) {
          if (!instance.IsValidPair(w1, t2)) continue;
          for (const WorkerIndex w2 : group2) {
            if (!instance.IsValidPair(w2, t1)) continue;
            // Trial-apply the exchange on the keeper: four O(group)
            // mutations instead of rebuilding and rescoring both groups
            // from scratch.
            keeper->Remove(w1, t1);
            keeper->Remove(w2, t2);
            keeper->Add(w2, t1);
            keeper->Add(w1, t2);
            const double swapped =
                keeper->TaskScore(t1) + keeper->TaskScore(t2);
            if (swapped > base_score + kTolerance) {
              assignment->Assign(w1, t2);
              assignment->Assign(w2, t1);
              ++swaps;
              improved = true;
              break;
            }
            keeper->Remove(w2, t1);
            keeper->Remove(w1, t2);
            keeper->Add(w1, t1);
            keeper->Add(w2, t2);
          }
          if (improved) break;
        }
      }
    }
  }
  return swaps;
}

Assignment LocalSearchAssigner::Run(const Instance& instance) {
  Assignment assignment = base_->Run(instance);
  stats_ = base_->stats();
  swaps_applied_ = 0;
  ScoreKeeper keeper(instance);
  keeper.Sync(assignment);
  for (int pass = 0; pass < options_.max_passes; ++pass) {
    const int64_t swaps = ImprovementPass(instance, &assignment, &keeper);
    swaps_applied_ += swaps;
    if (swaps == 0) break;
  }
  stats_.final_score = TotalScore(instance, assignment);
  return assignment;
}

}  // namespace casc
