#include "algo/local_search.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "algo/best_response.h"
#include "common/check.h"
#include "model/objective.h"
#include "model/objective_model.h"

namespace casc {
namespace {

/// Tolerance for "strictly improving" to avoid floating-point cycling.
constexpr double kTolerance = 1e-12;

}  // namespace

LocalSearchAssigner::LocalSearchAssigner(std::unique_ptr<Assigner> base,
                                         LocalSearchOptions options)
    : base_(std::move(base)), options_(options) {
  CASC_CHECK(base_ != nullptr);
}

std::string LocalSearchAssigner::Name() const {
  return base_->Name() + "+SWAP";
}

int64_t LocalSearchAssigner::ImprovementPass(
    const Instance& instance, Assignment* assignment, ScoreKeeper* keeper,
    std::vector<std::vector<WorkerIndex>>* mirror) {
  const CooperationMatrix& coop = instance.coop();

  // Trial mutations run on `mirror` + ApplyDelta, not on the assignment:
  // the mirror replicates the legacy keeper's internal group store, whose
  // member order drifts from the assignment's after rolled-back trials
  // (rollback re-appends the worker at the end). Delta sums must
  // accumulate in that drifted order to keep every later score
  // bit-identical with the historical implementation.
  const auto affinity = [&coop](const std::vector<WorkerIndex>& group,
                                WorkerIndex w) {
    double sum = 0.0;
    for (const WorkerIndex member : group) {
      sum += coop.Quality(member, w) + coop.Quality(w, member);
    }
    return sum;
  };
  const auto remove_from = [&](TaskIndex t, WorkerIndex w) {
    std::vector<WorkerIndex>& group = (*mirror)[static_cast<size_t>(t)];
    const auto it = std::find(group.begin(), group.end(), w);
    CASC_CHECK(it != group.end());
    group.erase(it);
    // The mirror already reflects the trial removal, so it doubles as
    // the membership the objective scores against.
    keeper->ApplyDelta(t, -affinity(group, w),
                       static_cast<int>(group.size()), group);
  };
  const auto add_to = [&](TaskIndex t, WorkerIndex w) {
    std::vector<WorkerIndex>& group = (*mirror)[static_cast<size_t>(t)];
    const double added = affinity(group, w);
    group.push_back(w);
    keeper->ApplyDelta(t, added, static_cast<int>(group.size()), group);
  };

  const bool prune = options_.use_pruning && !PruningDisabledByEnv();
  const int b_min = instance.min_group_size();
  // Upper bound on a task's score after swapping `incoming` in for one
  // current member: the pair sum can grow by at most the incoming
  // worker's affinity to the g-1 surviving members (the outgoing
  // member's affinity is >= 0, dropping it only helps the bound), and
  // that affinity is at most (g-1) * row-max. Row-maxes live as
  // round-up fixed-point ticks, so the product is exact and converts to
  // double without losing the >= guarantee. A group that stays below B
  // (or below size 2) scores zero no matter who swaps in.
  // The pair-sum ceiling feeds the objective's BoundFromSum, so the
  // bound stays admissible for any discount variant (a skill-gated
  // group's true score is at most its cooperation term).
  const auto swap_score_bound = [&](TaskIndex t, int g,
                                    WorkerIndex incoming) {
    if (g < b_min || g < 2) return 0.0;
    const double sum_ub =
        keeper->TaskPairSum(t) +
        std::ldexp(static_cast<double>(static_cast<int64_t>(g - 1) *
                                       keeper->WorkerTicks(incoming)),
                   -32);
    return instance.objective().BoundFromSum(instance, t, sum_ub, g);
  };

  int64_t swaps = 0;
  const int n = instance.num_tasks();
  for (TaskIndex t1 = 0; t1 < n; ++t1) {
    for (TaskIndex t2 = t1 + 1; t2 < n; ++t2) {
      // Group vectors are copied because a swap invalidates references.
      bool improved = true;
      while (improved) {
        improved = false;
        const std::span<const WorkerIndex> span1 = assignment->GroupOf(t1);
        const std::span<const WorkerIndex> span2 = assignment->GroupOf(t2);
        const std::vector<WorkerIndex> group1(span1.begin(), span1.end());
        const std::vector<WorkerIndex> group2(span2.begin(), span2.end());
        const double base_score =
            keeper->TaskScore(t1) + keeper->TaskScore(t2);
        for (const WorkerIndex w1 : group1) {
          if (!instance.IsValidPair(w1, t2)) continue;
          for (const WorkerIndex w2 : group2) {
            if (!instance.IsValidPair(w2, t1)) continue;
            if (prune) {
              // Bounds are recomputed per candidate: rolled-back trials
              // perturb the keeper's pair sums at the ulp level, so a
              // hoisted bound could silently fall below a later trial's
              // exact score.
              const double s1_ub = swap_score_bound(
                  t1, static_cast<int>(group1.size()), w2);
              const double s2_ub = swap_score_bound(
                  t2, static_cast<int>(group2.size()), w1);
              if (s1_ub + s2_ub <= base_score + kTolerance) {
                ++stats_.prune_candidates_skipped;
                continue;
              }
            }
            ++stats_.prune_candidates_evaluated;
            // Trial-apply the exchange on the keeper: four O(group)
            // mutations instead of rebuilding and rescoring both groups
            // from scratch.
            remove_from(t1, w1);
            remove_from(t2, w2);
            add_to(t1, w2);
            add_to(t2, w1);
            const double swapped =
                keeper->TaskScore(t1) + keeper->TaskScore(t2);
            if (swapped > base_score + kTolerance) {
              assignment->Assign(w1, t2);
              assignment->Assign(w2, t1);
              // The swap bypassed keeper Add/Remove, so the per-task
              // bound-tick sums must track the member exchange by hand.
              // Done whether or not pruning is active this run, so the
              // keeper stays consistent for any later consumer.
              keeper->ShiftBoundTicks(
                  t1, keeper->WorkerTicks(w2) - keeper->WorkerTicks(w1));
              keeper->ShiftBoundTicks(
                  t2, keeper->WorkerTicks(w1) - keeper->WorkerTicks(w2));
              ++swaps;
              improved = true;
              break;
            }
            remove_from(t1, w2);
            remove_from(t2, w1);
            add_to(t1, w1);
            add_to(t2, w2);
          }
          if (improved) break;
        }
      }
    }
  }
  return swaps;
}

Assignment LocalSearchAssigner::Run(const Instance& instance) {
  base_->set_workspace(workspace());
  Assignment assignment = base_->Run(instance);
  stats_ = base_->stats();
  swaps_applied_ = 0;
  ScoreKeeper keeper = MakeScoreKeeper(instance, assignment);
  std::vector<std::vector<WorkerIndex>> mirror(
      static_cast<size_t>(instance.num_tasks()));
  for (TaskIndex t = 0; t < instance.num_tasks(); ++t) {
    const std::span<const WorkerIndex> group = assignment.GroupOf(t);
    mirror[static_cast<size_t>(t)].assign(group.begin(), group.end());
  }
  for (int pass = 0; pass < options_.max_passes; ++pass) {
    const int64_t swaps =
        ImprovementPass(instance, &assignment, &keeper, &mirror);
    swaps_applied_ += swaps;
    if (swaps == 0) break;
  }
  stats_.final_score = TotalScore(instance, assignment);
  if (workspace() != nullptr) workspace()->Recycle(std::move(keeper));
  return assignment;
}

}  // namespace casc
