#include "algo/local_search.h"

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "model/objective.h"

namespace casc {
namespace {

/// Tolerance for "strictly improving" to avoid floating-point cycling.
constexpr double kTolerance = 1e-12;

}  // namespace

LocalSearchAssigner::LocalSearchAssigner(std::unique_ptr<Assigner> base,
                                         LocalSearchOptions options)
    : base_(std::move(base)), options_(options) {
  CASC_CHECK(base_ != nullptr);
}

std::string LocalSearchAssigner::Name() const {
  return base_->Name() + "+SWAP";
}

int64_t LocalSearchAssigner::ImprovementPass(
    const Instance& instance, Assignment* assignment, ScoreKeeper* keeper,
    std::vector<std::vector<WorkerIndex>>* mirror) {
  const CooperationMatrix& coop = instance.coop();

  // Trial mutations run on `mirror` + ApplyDelta, not on the assignment:
  // the mirror replicates the legacy keeper's internal group store, whose
  // member order drifts from the assignment's after rolled-back trials
  // (rollback re-appends the worker at the end). Delta sums must
  // accumulate in that drifted order to keep every later score
  // bit-identical with the historical implementation.
  const auto affinity = [&coop](const std::vector<WorkerIndex>& group,
                                WorkerIndex w) {
    double sum = 0.0;
    for (const WorkerIndex member : group) {
      sum += coop.Quality(member, w) + coop.Quality(w, member);
    }
    return sum;
  };
  const auto remove_from = [&](TaskIndex t, WorkerIndex w) {
    std::vector<WorkerIndex>& group = (*mirror)[static_cast<size_t>(t)];
    const auto it = std::find(group.begin(), group.end(), w);
    CASC_CHECK(it != group.end());
    group.erase(it);
    keeper->ApplyDelta(t, -affinity(group, w),
                       static_cast<int>(group.size()));
  };
  const auto add_to = [&](TaskIndex t, WorkerIndex w) {
    std::vector<WorkerIndex>& group = (*mirror)[static_cast<size_t>(t)];
    const double added = affinity(group, w);
    group.push_back(w);
    keeper->ApplyDelta(t, added, static_cast<int>(group.size()));
  };

  int64_t swaps = 0;
  const int n = instance.num_tasks();
  for (TaskIndex t1 = 0; t1 < n; ++t1) {
    for (TaskIndex t2 = t1 + 1; t2 < n; ++t2) {
      // Group vectors are copied because a swap invalidates references.
      bool improved = true;
      while (improved) {
        improved = false;
        const std::span<const WorkerIndex> span1 = assignment->GroupOf(t1);
        const std::span<const WorkerIndex> span2 = assignment->GroupOf(t2);
        const std::vector<WorkerIndex> group1(span1.begin(), span1.end());
        const std::vector<WorkerIndex> group2(span2.begin(), span2.end());
        const double base_score =
            keeper->TaskScore(t1) + keeper->TaskScore(t2);
        for (const WorkerIndex w1 : group1) {
          if (!instance.IsValidPair(w1, t2)) continue;
          for (const WorkerIndex w2 : group2) {
            if (!instance.IsValidPair(w2, t1)) continue;
            // Trial-apply the exchange on the keeper: four O(group)
            // mutations instead of rebuilding and rescoring both groups
            // from scratch.
            remove_from(t1, w1);
            remove_from(t2, w2);
            add_to(t1, w2);
            add_to(t2, w1);
            const double swapped =
                keeper->TaskScore(t1) + keeper->TaskScore(t2);
            if (swapped > base_score + kTolerance) {
              assignment->Assign(w1, t2);
              assignment->Assign(w2, t1);
              ++swaps;
              improved = true;
              break;
            }
            remove_from(t1, w2);
            remove_from(t2, w1);
            add_to(t1, w1);
            add_to(t2, w2);
          }
          if (improved) break;
        }
      }
    }
  }
  return swaps;
}

Assignment LocalSearchAssigner::Run(const Instance& instance) {
  base_->set_workspace(workspace());
  Assignment assignment = base_->Run(instance);
  stats_ = base_->stats();
  swaps_applied_ = 0;
  ScoreKeeper keeper = MakeScoreKeeper(instance, assignment);
  std::vector<std::vector<WorkerIndex>> mirror(
      static_cast<size_t>(instance.num_tasks()));
  for (TaskIndex t = 0; t < instance.num_tasks(); ++t) {
    const std::span<const WorkerIndex> group = assignment.GroupOf(t);
    mirror[static_cast<size_t>(t)].assign(group.begin(), group.end());
  }
  for (int pass = 0; pass < options_.max_passes; ++pass) {
    const int64_t swaps =
        ImprovementPass(instance, &assignment, &keeper, &mirror);
    swaps_applied_ += swaps;
    if (swaps == 0) break;
  }
  stats_.final_score = TotalScore(instance, assignment);
  if (workspace() != nullptr) workspace()->Recycle(std::move(keeper));
  return assignment;
}

}  // namespace casc
