#include "algo/assigner.h"

// Assigner is an interface; this translation unit anchors its vtable.
