#ifndef CASC_ALGO_TPG_ASSIGNER_H_
#define CASC_ALGO_TPG_ASSIGNER_H_

#include <string>
#include <vector>

#include "algo/assigner.h"

namespace casc {

/// Options for the task-priority greedy approach.
struct TpgOptions {
  /// When true, stage 2 also commits zero-gain pairs (workers added to
  /// groups still below B). The paper's greedy only takes pairs with the
  /// "maximum total cooperation quality increase", so this is off by
  /// default.
  bool allow_zero_gain = false;

  /// Ablation switch: skip stage 1 (the task-priority B-set seeding) and
  /// run only the pairwise greedy of stage 2 with zero-gain pairs
  /// allowed. Isolates how much the seeding contributes — the "task
  /// priority" in TPG's name.
  bool skip_stage_one = false;
};

/// Task-priority greedy (TPG), Algorithm 2 of the paper.
///
/// Stage 1 repeatedly computes, for every still-unseeded task, the best
/// B-worker seed set buildable from its unassigned candidates (best pair,
/// then argmax marginal extension), commits the globally best seed set,
/// and breaks ties toward the task with the most remaining candidate
/// workers. Stage 2 repeatedly commits the valid worker-and-task pair
/// with the largest total cooperation quality increase ΔQ (Equation 4)
/// until every task is full or no positive-gain pair remains.
///
/// Per-task seed sets are cached and recomputed only when one of their
/// members is consumed elsewhere, preserving the greedy semantics at a
/// fraction of the naive cost; stage 2 uses a lazy max-heap keyed by
/// per-task versions.
class TpgAssigner : public Assigner {
 public:
  explicit TpgAssigner(TpgOptions options = {});

  std::string Name() const override {
    return options_.skip_stage_one ? "TPG-S1" : "TPG";
  }
  Assignment Run(const Instance& instance) override;

  /// Runs both greedy stages on top of an existing (possibly non-empty)
  /// `assignment`, restricted to the tasks flagged in `task_mask` (null =
  /// every task, which is exactly Run() from an empty assignment).
  /// Already-assigned workers are unavailable; masked-out tasks are never
  /// seeded or extended. The cross-batch warm start uses this to re-form
  /// groups on just the dirty tasks while the adopted equilibrium
  /// skeleton stays untouched.
  void SeedTasks(const Instance& instance,
                 const std::vector<uint8_t>* task_mask,
                 Assignment* assignment);

  /// The greedy best B-worker seed set for one task, exposed for tests.
  /// `available` flags workers that may be used. Returns an empty vector
  /// when fewer than B candidates are available.
  static std::vector<WorkerIndex> GreedySeedSet(
      const Instance& instance, TaskIndex t,
      const std::vector<bool>& available);

 private:
  TpgOptions options_;
};

}  // namespace casc

#endif  // CASC_ALGO_TPG_ASSIGNER_H_
