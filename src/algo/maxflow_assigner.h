#ifndef CASC_ALGO_MAXFLOW_ASSIGNER_H_
#define CASC_ALGO_MAXFLOW_ASSIGNER_H_

#include <string>

#include "algo/assigner.h"

namespace casc {

/// The MFLOW baseline (GeoCrowd [11]): each batch becomes a max-flow
/// problem — source -> worker (capacity 1), worker -> valid task
/// (capacity 1), task -> sink (capacity a_j) — and the assignment with
/// the maximum number of valid worker-and-task pairs is returned.
///
/// MFLOW is cooperation-oblivious: it maximizes assigned-pair count, not
/// Equation 3, which is why its total cooperation score trails TPG/GT in
/// every figure of the paper.
class MaxFlowAssigner : public Assigner {
 public:
  std::string Name() const override { return "MFLOW"; }
  Assignment Run(const Instance& instance) override;
};

}  // namespace casc

#endif  // CASC_ALGO_MAXFLOW_ASSIGNER_H_
