#ifndef CASC_ALGO_ASSIGNER_H_
#define CASC_ALGO_ASSIGNER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "model/assignment.h"
#include "model/batch_workspace.h"
#include "model/instance.h"
#include "model/score_keeper.h"
#include "model/solve_delta.h"

namespace casc {

/// Per-run diagnostics shared by all assigners; the GT fields stay zero
/// for single-pass algorithms.
struct AssignerStats {
  /// Best-response rounds executed (GT family).
  int rounds = 0;
  /// Strategy changes applied (GT family).
  int64_t moves = 0;
  /// Best-response evaluations performed (GT family).
  int64_t best_response_evals = 0;
  /// Best-response evaluations skipped by the LUB optimization.
  int64_t best_response_skips = 0;
  /// Candidate tasks (or swap trials) whose exact marginal was computed
  /// by the bound-screened inner loops.
  int64_t prune_candidates_evaluated = 0;
  /// Candidate tasks (or swap trials) skipped because their upper bound
  /// could not beat the incumbent — work the pruning screen saved.
  int64_t prune_candidates_skipped = 0;
  /// Candidate joins rejected by the objective's group-feasibility
  /// predicate before any utility work (ObjectiveModel::JoinFeasible).
  /// Always 0 for the default CA-SC objective.
  int64_t feasibility_rejects = 0;
  /// Objective value of the initialization (TPG score for GT).
  double init_score = 0.0;
  /// Objective value of the returned assignment.
  double final_score = 0.0;
  /// True when the GT loop reached a verified Nash equilibrium (as
  /// opposed to stopping early via TSI or the round cap).
  bool converged = true;
  /// True when the run was seeded from a prior-batch equilibrium skeleton
  /// (cross-batch warm start) rather than a cold init.
  bool warm_started = false;
  /// Workers adopted from the skeleton on a warm start (0 when cold).
  int64_t seeded_workers = 0;
  /// Size of the initial dirty frontier on a warm start (0 when cold).
  int64_t dirty_workers = 0;
  /// Objective value after each best-response round (GT family): the
  /// potential-function trajectory of Lemma V.1. Empty for single-pass
  /// algorithms.
  std::vector<double> round_scores;
};

/// Interface for one-batch CA-SC solvers (Algorithm 1, line 6).
///
/// `Run` expects `instance.ComputeValidPairs()` to have been called and
/// returns an assignment satisfying the constraints of Definition 4.
class Assigner {
 public:
  virtual ~Assigner() = default;

  /// Short display name used by the experiment tables ("TPG", "GT+ALL"...).
  virtual std::string Name() const = 0;

  /// Solves one batch. Requires instance.valid_pairs_ready().
  virtual Assignment Run(const Instance& instance) = 0;

  /// Diagnostics of the most recent Run().
  const AssignerStats& stats() const { return stats_; }

  /// Optional scratch pool. When set, Run() draws its assignments and
  /// score keepers from the workspace instead of allocating fresh ones,
  /// so streaming drivers reuse the slab/CSR capacity across batches.
  /// The workspace must outlive the assigner's use of it; pass nullptr
  /// to detach. Not owned.
  void set_workspace(BatchWorkspace* workspace) { workspace_ = workspace; }
  BatchWorkspace* workspace() const { return workspace_; }

  /// Optional cross-batch warm-start delta. Solvers that understand it
  /// (the GT family) seed from the carried skeleton and narrow their
  /// first rounds to the dirty frontier; every other assigner ignores it.
  /// The delta must stay alive for the duration of Run(); pass nullptr to
  /// detach (streaming drivers re-attach a fresh delta every batch). Not
  /// owned.
  void set_solve_delta(const SolveDelta* delta) { solve_delta_ = delta; }
  const SolveDelta* solve_delta() const { return solve_delta_; }

 protected:
  /// Empty assignment for `instance`, pooled when a workspace is set.
  Assignment MakeAssignment(const Instance& instance) {
    if (workspace_ != nullptr) return workspace_->AcquireAssignment(instance);
    return Assignment(instance);
  }

  /// Keeper synced to `assignment`, pooled when a workspace is set. The
  /// workspace also contributes its CoopTile (built or cache-hit here),
  /// routing the keeper's marginals through the SIMD kernels; without a
  /// workspace the keeper runs the bit-identical tile-less path.
  ScoreKeeper MakeScoreKeeper(const Instance& instance,
                              const Assignment& assignment) {
    if (workspace_ != nullptr) {
      ScoreKeeper keeper = workspace_->AcquireScoreKeeper(instance);
      keeper.AttachTile(workspace_->PrepareCoopTile(instance));
      keeper.Sync(assignment);
      return keeper;
    }
    return ScoreKeeper(instance, assignment);
  }

  AssignerStats stats_;
  BatchWorkspace* workspace_ = nullptr;
  const SolveDelta* solve_delta_ = nullptr;
};

}  // namespace casc

#endif  // CASC_ALGO_ASSIGNER_H_
