#include "algo/random_assigner.h"

#include <vector>

#include "common/check.h"
#include "model/objective.h"

namespace casc {

RandomAssigner::RandomAssigner(uint64_t seed) : rng_(seed) {}

Assignment RandomAssigner::Run(const Instance& instance) {
  CASC_CHECK(instance.valid_pairs_ready())
      << "RAND requires Instance::ComputeValidPairs()";
  stats_ = AssignerStats{};
  Assignment assignment = MakeAssignment(instance);

  std::vector<TaskIndex> order(static_cast<size_t>(instance.num_tasks()));
  for (TaskIndex t = 0; t < instance.num_tasks(); ++t) {
    order[static_cast<size_t>(t)] = t;
  }
  rng_.Shuffle(order);

  std::vector<bool> used(static_cast<size_t>(instance.num_workers()), false);
  for (const TaskIndex t : order) {
    std::vector<WorkerIndex> pool;
    for (const WorkerIndex w : instance.Candidates(t)) {
      if (!used[static_cast<size_t>(w)]) pool.push_back(w);
    }
    if (static_cast<int>(pool.size()) < instance.min_group_size()) continue;
    rng_.Shuffle(pool);
    const int take = std::min<int>(
        instance.tasks()[static_cast<size_t>(t)].capacity,
        static_cast<int>(pool.size()));
    for (int i = 0; i < take; ++i) {
      assignment.Assign(pool[static_cast<size_t>(i)], t);
      used[static_cast<size_t>(pool[static_cast<size_t>(i)])] = true;
    }
  }
  stats_.final_score = TotalScore(instance, assignment);
  return assignment;
}

}  // namespace casc
