#ifndef CASC_ALGO_GT_ASSIGNER_H_
#define CASC_ALGO_GT_ASSIGNER_H_

#include <string>

#include "algo/assigner.h"
#include "algo/best_response.h"
#include "model/score_keeper.h"

namespace casc {

class ThreadPool;

/// How Algorithm 3 seeds the best-response dynamic.
enum class GtInit {
  /// TPG assignment (Algorithm 3 line 1) — the paper's choice.
  kTpg,
  /// Every worker picks a uniformly random valid task — the generic
  /// best-response framework of Section V-A ("first randomly selects a
  /// strategy for each player"). Different seeds reach different Nash
  /// equilibria, which the PoA ablation exploits.
  kRandom,
  /// Empty assignment. For B >= 2 this is already a worthless pure Nash
  /// equilibrium (no unilateral move crosses the B-threshold), so the
  /// dynamic never moves; kept for the initialization ablation.
  kEmpty,
  /// Seed from the previous batch's equilibrium skeleton carried in the
  /// attached SolveDelta (see Assigner::set_solve_delta), re-form groups
  /// on the dirty tasks with a restricted TPG pass, and run the first
  /// rounds over the dirty frontier only. Sound because the CA-SC game
  /// is a potential game (Theorem V.1): best-response dynamics converge
  /// from any initial profile, and the full verification pass still
  /// certifies the equilibrium. Falls back to kTpg when no usable delta
  /// is attached (first batch, zero carry-over, kill switch), so
  /// zero-carry-over batches are bit-identical to a cold run. Note any
  /// init warm-starts when a delta is attached; this value just states
  /// the intent explicitly for streaming drivers.
  kWarmStart,
};

/// Order in which workers are offered their best response within a round.
/// The paper leaves this unspecified; potential-game convergence holds
/// for any order, but the reached equilibrium can differ.
enum class GtOrder {
  kIndex,     ///< ascending worker index (deterministic default)
  kShuffled,  ///< fresh uniform permutation every round (seeded)
};

/// Options for the game-theoretic approach and its two optimizations
/// (Section V-D).
struct GtOptions {
  /// Threshold Stop of the Iteration: stop once a round's total-score
  /// increase falls below `epsilon * current_total_score`.
  bool use_tsi = false;

  /// TSI threshold (the paper's default; Figure 6 sweeps it).
  double epsilon = 0.05;

  /// Lazy-Updating of the Best-responses: recompute a worker's best
  /// response only when Theorems V.3 / V.4 say it may have changed. A
  /// final full verification pass still certifies the Nash equilibrium,
  /// so LUB never returns a non-equilibrium when run to convergence.
  bool use_lub = false;

  /// Initialization strategy (see GtInit).
  GtInit init = GtInit::kTpg;

  /// Seed for GtInit::kRandom.
  uint64_t init_seed = 1;

  /// Best-response processing order within each round.
  GtOrder order = GtOrder::kIndex;

  /// Seed for GtOrder::kShuffled.
  uint64_t order_seed = 1;

  /// Bound-based candidate pruning in the best-response scan: each
  /// below-capacity candidate is screened by ScoreKeeper::JoinBound and
  /// its exact marginal skipped when the bound cannot beat the
  /// incumbent. The produced assignment, utilities and stats (except
  /// the prune work counters) are bit-identical with pruning on or off;
  /// the CASC_NO_PRUNE env var force-disables it for bisection.
  bool use_pruning = true;

  /// Safety cap on best-response rounds.
  int max_rounds = 100000;

  /// Worker threads for speculative best-response evaluation (1 = fully
  /// serial). Each round pre-computes the best responses of all
  /// to-be-processed workers in parallel against the round-start state,
  /// then applies moves sequentially in `order`; a speculated result is
  /// consumed only if none of that worker's valid tasks changed since the
  /// round started, and is recomputed inline otherwise. The produced
  /// assignment, stats, and score trajectory are bit-identical to
  /// num_threads == 1 for the same options.
  int num_threads = 1;
};

/// The game-theoretic approach (GT), Algorithm 3 of the paper.
///
/// Models each worker as a player whose strategies are its valid tasks
/// (plus idling) and whose utility is the marginal cooperation quality
/// ΔQ (Equation 5). Starting from a TPG assignment, workers repeatedly
/// switch to their best response until no one can improve — a pure Nash
/// equilibrium, guaranteed to exist because the game is an exact
/// potential game with potential Q(T) (Theorem V.1). Joining a full task
/// crowds out the best-subset loser (Theorems V.3 / V.4).
///
/// Naming follows the paper: GT, GT+TSI, GT+LUB, GT+ALL depending on
/// which optimizations are enabled.
class GtAssigner : public Assigner {
 public:
  explicit GtAssigner(GtOptions options = {});

  std::string Name() const override;
  Assignment Run(const Instance& instance) override;

  const GtOptions& options() const { return options_; }

 private:
  /// One best-response pass over `order` (a "round"), delta-evaluated
  /// through `keeper` (which must mirror *assignment and stays in sync).
  /// A null `dirty` is a full round; otherwise only workers flagged dirty
  /// are re-evaluated and the flags are updated per Theorems V.3 / V.4
  /// after each move. A non-null `pool` evaluates the round's pending
  /// best responses speculatively in parallel first (see
  /// GtOptions::num_threads). Returns the number of moves applied.
  int64_t Round(const Instance& instance,
                const std::vector<WorkerIndex>& order,
                Assignment* assignment, ScoreKeeper* keeper,
                ThreadPool* pool, std::vector<bool>* dirty);

  /// Applies the move (keeping `keeper` in sync) and flags the workers
  /// whose best response may have changed (Theorems V.3 / V.4).
  MoveResult MoveAndMarkDirty(const Instance& instance,
                              Assignment* assignment, ScoreKeeper* keeper,
                              WorkerIndex w, TaskIndex target,
                              std::vector<bool>* dirty);

  GtOptions options_;
};

}  // namespace casc

#endif  // CASC_ALGO_GT_ASSIGNER_H_
