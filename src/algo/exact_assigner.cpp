#include "algo/exact_assigner.h"

#include <algorithm>
#include <vector>

#include "algo/upper_bound.h"
#include "common/check.h"
#include "model/objective.h"
#include "model/objective_model.h"

namespace casc {
namespace {

/// Depth-first search state shared across the recursion.
struct SearchState {
  const Instance* instance;
  // Per-task incremental bookkeeping.
  std::vector<std::vector<WorkerIndex>> groups;
  std::vector<double> pair_sums;  // sum over ordered pairs in each group
  // Per-worker ceilings q̂_{i,B} (Lemma V.2) and their suffix sums.
  std::vector<double> ceiling;
  std::vector<double> suffix_bound;
  // Sum of ceilings of already-assigned (non-idle) workers.
  double assigned_ceiling = 0.0;
  // Best complete assignment found.
  double best_score = -1.0;
  std::vector<TaskIndex> best_choice;
  std::vector<TaskIndex> choice;
};

double CurrentScore(const SearchState& state) {
  const Instance& instance = *state.instance;
  const ObjectiveModel& objective = instance.objective();
  double total = 0.0;
  for (TaskIndex t = 0; t < instance.num_tasks(); ++t) {
    const auto& group = state.groups[static_cast<size_t>(t)];
    const int size = static_cast<int>(group.size());
    if (size >= instance.min_group_size()) {
      // The search never overfills a task (the capacity gate below), so
      // the objective sees |group| <= a_j and no best-subset crowding.
      total += objective.ScoreGroup(instance, t, group, kNoWorker, kNoWorker,
                                    state.pair_sums[static_cast<size_t>(t)],
                                    size);
    }
  }
  return total;
}

void Search(SearchState* state, WorkerIndex w) {
  const Instance& instance = *state->instance;
  if (w == instance.num_workers()) {
    const double score = CurrentScore(*state);
    if (score > state->best_score) {
      state->best_score = score;
      state->best_choice = state->choice;
    }
    return;
  }
  // Prune with Lemma V.2: any complete assignment's total equals the sum
  // over assigned workers of their in-group average quality, and each
  // average is capped by that worker's ceiling q̂_{i,B}. Workers already
  // decided idle contribute nothing; workers w.. are optimistically all
  // assigned at their ceilings. (The current *partial score* is not a
  // valid base — later joins can raise earlier workers' averages — so the
  // bound uses ceilings for the assigned prefix too.)
  //
  // Objective-variant admissibility: the ceilings bound the *cooperation
  // term* of Equation 2, so this prune stays exact for any objective
  // whose ScoreGroup is pointwise <= that term (e.g. multiskill, which
  // only gates groups to 0). This is the same discount-variant
  // obligation as ScoreKeeper::JoinBound; an objective that adds a
  // positive regularizer on top of the cooperation term must not be run
  // through ExactAssigner without widening these ceilings (see
  // ObjectiveModel::BoundFromSum docs).
  if (state->best_score >= 0.0 &&
      state->assigned_ceiling +
              state->suffix_bound[static_cast<size_t>(w)] <=
          state->best_score) {
    return;
  }

  auto try_choice = [&](TaskIndex t) {
    state->choice[static_cast<size_t>(w)] = t;
    if (t == kNoTask) {
      Search(state, w + 1);
      return;
    }
    auto& group = state->groups[static_cast<size_t>(t)];
    double added = 0.0;
    for (const WorkerIndex member : group) {
      added += instance.coop().Quality(member, w) +
               instance.coop().Quality(w, member);
    }
    group.push_back(w);
    state->pair_sums[static_cast<size_t>(t)] += added;
    state->assigned_ceiling += state->ceiling[static_cast<size_t>(w)];
    Search(state, w + 1);
    state->assigned_ceiling -= state->ceiling[static_cast<size_t>(w)];
    group.pop_back();
    state->pair_sums[static_cast<size_t>(t)] -= added;
  };

  // Deliberately no ObjectiveModel::JoinFeasible gate here: skill
  // coverage grows as members are added, so a join that looks futile
  // against the partial group (worker holds none of the missing skills)
  // can still belong to the optimum once a later worker covers them.
  // Branch elimination by JoinFeasible is only sound for marginal moves
  // against a fixed group — the best-response scans — never for an
  // exhaustive search. Infeasible leaves simply score 0 via ScoreGroup.
  for (const TaskIndex t : instance.ValidTasks(w)) {
    if (static_cast<int>(state->groups[static_cast<size_t>(t)].size()) <
        instance.tasks()[static_cast<size_t>(t)].capacity) {
      try_choice(t);
    }
  }
  try_choice(kNoTask);
}

}  // namespace

ExactAssigner::ExactAssigner(ExactOptions options) : options_(options) {}

Assignment ExactAssigner::Run(const Instance& instance) {
  CASC_CHECK(instance.valid_pairs_ready())
      << "EXACT requires Instance::ComputeValidPairs()";
  CASC_CHECK_LE(instance.num_workers(), options_.max_workers)
      << "ExactAssigner is exponential; instance too large";
  stats_ = AssignerStats{};

  SearchState state;
  state.instance = &instance;
  state.groups.assign(static_cast<size_t>(instance.num_tasks()), {});
  state.pair_sums.assign(static_cast<size_t>(instance.num_tasks()), 0.0);
  state.choice.assign(static_cast<size_t>(instance.num_workers()), kNoTask);
  state.best_choice = state.choice;

  state.ceiling.assign(static_cast<size_t>(instance.num_workers()), 0.0);
  state.suffix_bound.assign(
      static_cast<size_t>(instance.num_workers()) + 1, 0.0);
  for (WorkerIndex w = instance.num_workers() - 1; w >= 0; --w) {
    state.ceiling[static_cast<size_t>(w)] =
        instance.ValidTasks(w).empty()
            ? 0.0
            : WorkerQualityUpperBound(instance, w);
    state.suffix_bound[static_cast<size_t>(w)] =
        state.suffix_bound[static_cast<size_t>(w) + 1] +
        state.ceiling[static_cast<size_t>(w)];
  }

  Search(&state, 0);

  Assignment assignment = MakeAssignment(instance);
  for (WorkerIndex w = 0; w < instance.num_workers(); ++w) {
    const TaskIndex t = state.best_choice[static_cast<size_t>(w)];
    if (t != kNoTask) assignment.Assign(w, t);
  }
  stats_.final_score = TotalScore(instance, assignment);
  return assignment;
}

}  // namespace casc
