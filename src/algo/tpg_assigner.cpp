#include "algo/tpg_assigner.h"

#include <algorithm>
#include <queue>

#include "common/check.h"
#include "model/objective.h"
#include "model/objective_model.h"

namespace casc {
namespace {

/// A cached stage-1 seed set for one task.
struct SeedEntry {
  std::vector<WorkerIndex> workers;
  double score = -1.0;  // GroupScore of the seed set; -1 = infeasible
};

/// A lazy heap entry for stage 2.
struct GainEntry {
  double gain;
  WorkerIndex worker;
  TaskIndex task;
  uint64_t task_version;  // stale when != current version of `task`

  bool operator<(const GainEntry& other) const {
    if (gain != other.gain) return gain < other.gain;  // max-heap by gain
    // Deterministic tie-breaking: smaller worker, then task, wins.
    if (worker != other.worker) return worker > other.worker;
    return task > other.task;
  }
};

}  // namespace

TpgAssigner::TpgAssigner(TpgOptions options) : options_(options) {}

std::vector<WorkerIndex> TpgAssigner::GreedySeedSet(
    const Instance& instance, TaskIndex t,
    const std::vector<bool>& available) {
  const int target = instance.min_group_size();
  std::vector<WorkerIndex> candidates;
  for (const WorkerIndex w : instance.Candidates(t)) {
    if (available[static_cast<size_t>(w)]) candidates.push_back(w);
  }
  if (static_cast<int>(candidates.size()) < target) return {};

  const CooperationMatrix& coop = instance.coop();

  // Seed with the best mutual pair.
  WorkerIndex best_a = candidates[0];
  WorkerIndex best_b = candidates[1];
  double best_pair = -1.0;
  for (size_t i = 0; i < candidates.size(); ++i) {
    for (size_t j = i + 1; j < candidates.size(); ++j) {
      const double value = coop.Quality(candidates[i], candidates[j]) +
                           coop.Quality(candidates[j], candidates[i]);
      if (value > best_pair) {
        best_pair = value;
        best_a = candidates[i];
        best_b = candidates[j];
      }
    }
  }
  std::vector<WorkerIndex> seed = {best_a, best_b};

  // Extend greedily by the worker adding the most pairwise quality.
  while (static_cast<int>(seed.size()) < target) {
    WorkerIndex best_w = kNoTask;
    double best_add = -1.0;
    for (const WorkerIndex w : candidates) {
      if (std::find(seed.begin(), seed.end(), w) != seed.end()) continue;
      double added = 0.0;
      for (const WorkerIndex member : seed) {
        added += coop.Quality(member, w) + coop.Quality(w, member);
      }
      if (added > best_add) {
        best_add = added;
        best_w = w;
      }
    }
    CASC_CHECK_NE(best_w, kNoTask);
    seed.push_back(best_w);
  }
  std::sort(seed.begin(), seed.end());
  return seed;
}

Assignment TpgAssigner::Run(const Instance& instance) {
  CASC_CHECK(instance.valid_pairs_ready())
      << "TPG requires Instance::ComputeValidPairs()";
  stats_ = AssignerStats{};
  Assignment assignment = MakeAssignment(instance);
  SeedTasks(instance, nullptr, &assignment);
  stats_.final_score = TotalScore(instance, assignment);
  return assignment;
}

void TpgAssigner::SeedTasks(const Instance& instance,
                            const std::vector<uint8_t>* task_mask,
                            Assignment* assignment_ptr) {
  CASC_CHECK(instance.valid_pairs_ready())
      << "TPG requires Instance::ComputeValidPairs()";
  CASC_CHECK(assignment_ptr != nullptr);
  Assignment& assignment = *assignment_ptr;
  const int num_tasks = instance.num_tasks();
  const auto masked = [&](TaskIndex t) {
    return task_mask == nullptr || (*task_mask)[static_cast<size_t>(t)] != 0;
  };

  std::vector<bool> worker_available(
      static_cast<size_t>(instance.num_workers()));
  for (WorkerIndex w = 0; w < instance.num_workers(); ++w) {
    worker_available[static_cast<size_t>(w)] =
        assignment.TaskOf(w) == kNoTask;
  }

  // ---------------------------------------------------------------------
  // Stage 1 (Algorithm 2, lines 2-13): seed each task with its best
  // B-worker set, best-scoring task first.
  // ---------------------------------------------------------------------
  const bool run_stage_one = !options_.skip_stage_one;
  std::vector<SeedEntry> seeds(static_cast<size_t>(num_tasks));
  std::vector<bool> seed_fresh(static_cast<size_t>(num_tasks), false);
  std::vector<bool> task_seeded(static_cast<size_t>(num_tasks), false);

  auto refresh_seed = [&](TaskIndex t) {
    SeedEntry& entry = seeds[static_cast<size_t>(t)];
    entry.workers = GreedySeedSet(instance, t, worker_available);
    // A seed has exactly B workers, so GroupScore is the objective's
    // value of the would-be group (PairSum / (B-1) for the default;
    // variants may gate an infeasible seed to 0, deprioritizing it
    // behind any feasible positive-scoring seed).
    entry.score = entry.workers.empty()
                      ? -1.0
                      : GroupScore(instance, t, entry.workers);
    seed_fresh[static_cast<size_t>(t)] = true;
  };

  auto available_candidates = [&](TaskIndex t) {
    int count = 0;
    for (const WorkerIndex w : instance.Candidates(t)) {
      if (worker_available[static_cast<size_t>(w)]) ++count;
    }
    return count;
  };

  if (run_stage_one) {
    for (TaskIndex t = 0; t < num_tasks; ++t) {
      if (masked(t)) refresh_seed(t);
    }
  }

  while (run_stage_one) {
    // Find the globally best fresh seed set.
    double best_score = -1.0;
    for (TaskIndex t = 0; t < num_tasks; ++t) {
      if (task_seeded[static_cast<size_t>(t)] || !masked(t)) continue;
      if (!seed_fresh[static_cast<size_t>(t)]) refresh_seed(t);
      best_score = std::max(best_score, seeds[static_cast<size_t>(t)].score);
    }
    if (best_score < 0.0) break;  // no task can form a B-set any more

    // Collect the tasks achieving the best score; when several compete,
    // Algorithm 2 (lines 6-9) awards the set to the task with the most
    // potential candidate workers.
    TaskIndex chosen = kNoTask;
    int chosen_potential = -1;
    for (TaskIndex t = 0; t < num_tasks; ++t) {
      if (task_seeded[static_cast<size_t>(t)] || !masked(t)) continue;
      if (seeds[static_cast<size_t>(t)].score != best_score) continue;
      const int potential = available_candidates(t);
      if (potential > chosen_potential) {
        chosen_potential = potential;
        chosen = t;
      }
    }
    CASC_CHECK_NE(chosen, kNoTask);

    for (const WorkerIndex w : seeds[static_cast<size_t>(chosen)].workers) {
      assignment.Assign(w, chosen);
      worker_available[static_cast<size_t>(w)] = false;
    }
    task_seeded[static_cast<size_t>(chosen)] = true;

    // Invalidate cached seeds that used one of the consumed workers.
    for (TaskIndex t = 0; t < num_tasks; ++t) {
      if (task_seeded[static_cast<size_t>(t)] ||
          !seed_fresh[static_cast<size_t>(t)]) {
        continue;
      }
      for (const WorkerIndex w :
           seeds[static_cast<size_t>(chosen)].workers) {
        const auto& cached = seeds[static_cast<size_t>(t)].workers;
        if (std::binary_search(cached.begin(), cached.end(), w)) {
          seed_fresh[static_cast<size_t>(t)] = false;
          break;
        }
      }
    }
  }
  stats_.init_score = TotalScore(instance, assignment);

  // ---------------------------------------------------------------------
  // Stage 2 (Algorithm 2, lines 15-20): repeatedly add the single
  // worker-and-task pair with the largest ΔQ.
  // ---------------------------------------------------------------------
  std::vector<uint64_t> task_version(static_cast<size_t>(num_tasks), 0);
  const ObjectiveModel& objective = instance.objective();
  const bool filter_joins = !objective.AlwaysJoinFeasible();

  auto pair_gain = [&](WorkerIndex w, TaskIndex t) {
    return GainOfJoining(instance, t, assignment.GroupOf(t), w);
  };
  auto task_open = [&](TaskIndex t) {
    return assignment.GroupSize(t) <
           instance.tasks()[static_cast<size_t>(t)].capacity;
  };

  std::priority_queue<GainEntry> heap;
  for (WorkerIndex w = 0; w < instance.num_workers(); ++w) {
    if (!worker_available[static_cast<size_t>(w)]) continue;
    for (const TaskIndex t : instance.ValidTasks(w)) {
      if (!masked(t) || !task_open(t)) continue;
      heap.push(GainEntry{pair_gain(w, t), w, t,
                          task_version[static_cast<size_t>(t)]});
    }
  }

  while (!heap.empty()) {
    const GainEntry top = heap.top();
    heap.pop();
    if (!worker_available[static_cast<size_t>(top.worker)]) continue;
    if (!task_open(top.task)) continue;
    if (top.task_version != task_version[static_cast<size_t>(top.task)]) {
      // Stale gain: recompute against the current group and re-insert.
      heap.push(GainEntry{pair_gain(top.worker, top.task), top.worker,
                          top.task,
                          task_version[static_cast<size_t>(top.task)]});
      continue;
    }
    if (filter_joins &&
        !objective.JoinFeasible(instance, top.task,
                                assignment.GroupOf(top.task), top.worker)) {
      // The objective forbids this join outright (e.g. the worker holds
      // none of the task's missing skills); skip it without letting its
      // (necessarily non-positive) gain trip the stop rule below.
      ++stats_.feasibility_rejects;
      continue;
    }
    // Adding a poorly-matched worker can lower a group's score (the
    // denominator of Equation 2 grows), so gains may be negative; stop at
    // the first non-improving pair (or first negative one when zero-gain
    // pairs are allowed, which tops groups up toward B — mandatory when
    // stage 1 was skipped, since every group starts below B).
    const bool zero_gain_ok =
        options_.allow_zero_gain || options_.skip_stage_one;
    if (zero_gain_ok ? top.gain < 0.0 : top.gain <= 0.0) break;

    assignment.Assign(top.worker, top.task);
    worker_available[static_cast<size_t>(top.worker)] = false;
    ++task_version[static_cast<size_t>(top.task)];
  }
}

}  // namespace casc
