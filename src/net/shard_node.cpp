#include "net/shard_node.h"

#include <optional>
#include <utility>

#include "common/check.h"
#include "model/objective_model.h"

namespace casc {

ShardSolverNode::ShardSolverNode(AssignerFactory factory, double solve_delay)
    : factory_(std::move(factory)), solve_delay_(solve_delay) {
  CASC_CHECK(factory_ != nullptr);
  CASC_CHECK_GE(solve_delay_, 0.0);
}

void ShardSolverNode::HandleDispatch(NetContext& net, NodeId from,
                                     const Message& msg) {
  CASC_CHECK(msg.problem != nullptr);
  // The wire contract ships the objective by registry id; re-resolve it
  // and insist it matches the instance we were handed. A real deployment
  // would deserialize the problem and then set_objective(resolved) —
  // here the carried instance already points at the process-wide
  // singleton, so resolution doubles as a version-skew check.
  const ObjectiveModel* resolved = ObjectiveByName(msg.objective_id);
  CASC_CHECK(resolved != nullptr)
      << "dispatch for unknown objective '" << msg.objective_id << "'";
  CASC_CHECK_EQ(resolved, &msg.problem->instance.objective())
      << "dispatch objective '" << msg.objective_id
      << "' does not match the shard problem's instance";
  const std::tuple<int, int, int> key{msg.epoch, msg.shard,
                                      msg.skeleton_epoch};
  auto cached = cache_.find(key);
  const bool miss = cached == cache_.end();
  if (miss) {
    CachedResult result;
    AssignerStats stats;
    // skeleton_epoch < 0 demands a cold solve of the dispatched problem
    // even when it carries a warm-start slice (failover fallback).
    std::optional<Assignment> local = ShardExecutor::SolveProblem(
        *msg.problem, factory_, &workspace_, &result.solve_seconds, &stats,
        /*use_delta=*/msg.skeleton_epoch >= 0);
    result.prune_evals = stats.prune_candidates_evaluated;
    result.prune_skips = stats.prune_candidates_skipped;
    result.feasibility_rejects = stats.feasibility_rejects;
    result.solve_rounds = stats.rounds;
    result.solve_moves = stats.moves;
    result.dirty_workers = stats.dirty_workers;
    result.warm_started = stats.warm_started;
    ++solves_;
    if (local.has_value()) {
      // ForEachPair order (task-major, group position) is exactly the
      // order FoldProblem replays, so shipping the pairs preserves the
      // in-process fold bit-for-bit.
      local->ForEachPair([&result](WorkerIndex lw, TaskIndex lt) {
        result.pairs.push_back({lw, lt});
      });
      workspace_.Recycle(std::move(*local));
    }
    cached = cache_.emplace(key, std::move(result)).first;
  }
  Message reply;
  reply.type = MessageType::kShardResult;
  reply.epoch = msg.epoch;
  reply.shard = msg.shard;
  reply.attempt = msg.attempt;
  reply.pairs = cached->second.pairs;
  reply.solve_seconds = cached->second.solve_seconds;
  reply.prune_evals = cached->second.prune_evals;
  reply.prune_skips = cached->second.prune_skips;
  reply.feasibility_rejects = cached->second.feasibility_rejects;
  reply.solve_rounds = cached->second.solve_rounds;
  reply.solve_moves = cached->second.solve_moves;
  reply.dirty_workers = cached->second.dirty_workers;
  reply.warm_started = cached->second.warm_started;
  // A fresh solve occupies the modeled compute time before the result
  // hits the wire; a cache hit answers immediately (work already done).
  net.SendAfter(miss ? solve_delay_ : 0.0, from, std::move(reply));
}

void ShardSolverNode::OnMessage(NetContext& net, NodeId from,
                                const Message& msg) {
  switch (msg.type) {
    case MessageType::kDispatch:
      HandleDispatch(net, from, msg);
      return;
    case MessageType::kReconcile: {
      // The node's assignment view only matters at commit; reconcile
      // deltas are acknowledged so the coordinator's round completes.
      Message ack;
      ack.type = MessageType::kAck;
      ack.epoch = msg.epoch;
      ack.stage = msg.stage;
      net.Send(from, std::move(ack));
      return;
    }
    case MessageType::kCommit: {
      if (msg.epoch >= committed_epoch_) {
        committed_pairs_ = msg.pairs;
        committed_epoch_ = msg.epoch;
        // Results for committed (or older) epochs can never be asked for
        // again; trim the cache so a long run stays bounded.
        for (auto it = cache_.begin(); it != cache_.end();) {
          it = std::get<0>(it->first) <= msg.epoch ? cache_.erase(it) : ++it;
        }
      }
      Message ack;
      ack.type = MessageType::kAck;
      ack.epoch = msg.epoch;
      ack.stage = kStageCommit;
      net.Send(from, std::move(ack));
      return;
    }
    case MessageType::kHeartbeat: {
      Message ack;
      ack.type = MessageType::kHeartbeatAck;
      ack.epoch = msg.epoch;
      net.Send(from, std::move(ack));
      return;
    }
    case MessageType::kShardResult:
    case MessageType::kAck:
    case MessageType::kHeartbeatAck:
      return;  // coordinator-bound traffic; ignore if misrouted
  }
}

void ShardSolverNode::OnTimer(NetContext& net, int timer_id) {
  (void)net;
  (void)timer_id;  // shard nodes are purely reactive
}

void ShardSolverNode::OnCrash() {
  cache_.clear();
  committed_pairs_.clear();
  committed_epoch_ = -1;
}

void ShardSolverNode::OnRestart(NetContext& net) {
  // Nothing to announce: the coordinator's retries and heartbeats will
  // rediscover this node on their own.
  (void)net;
}

}  // namespace casc
