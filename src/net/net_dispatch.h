#ifndef CASC_NET_NET_DISPATCH_H_
#define CASC_NET_NET_DISPATCH_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "net/coordinator.h"
#include "net/network_config.h"
#include "net/shard_node.h"
#include "net/simulator.h"
#include "service/dispatch_service.h"

namespace casc {

/// Configuration of the distributed dispatch mode: how many simulated
/// solver nodes to run, the network fault/latency model and the
/// coordinator protocol knobs.
struct DistributedConfig {
  /// Master switch; anded with the CASC_NO_DISTRIBUTED kill switch at
  /// construction time (either side can force the in-process path).
  bool enabled = true;

  /// Shard solver nodes (>= 1), at ids 1..num_nodes; the coordinator is
  /// node 0 and is durable (crash events must not target it).
  int num_nodes = 4;

  NetworkConfig network;
  ProtocolConfig protocol;

  /// Per-batch simulator event budget — the livelock backstop behind the
  /// termination guarantee (a batch exceeding it is a protocol bug and
  /// fails a CASC_CHECK).
  int64_t max_events_per_batch = 10'000'000;
};

/// True when distributed mode is both configured on and not disabled by
/// the CASC_NO_DISTRIBUTED environment kill switch.
bool DistributedEnabled(const DistributedConfig& config);

/// The message-driven ShardedBatchSolver: runs each batch as one epoch
/// of the coordinator/shard-node protocol over a deterministic simulated
/// network. Owns the simulator and the nodes for its whole lifetime, so
/// the virtual clock, fault schedule and crash events span batches — a
/// node that crashes in batch 3 is still down in batch 4 until its
/// scheduled restart.
///
/// Determinism: for a fixed (options, config, factory) and instance
/// sequence, every run produces bit-identical assignments and identical
/// NetStats. With a zero-delay, zero-loss network the assignments are
/// additionally bit-identical to the in-process ShardedAssigner: shard
/// results are folded in ascending shard order regardless of arrival
/// order, and the reconcile passes are literally the same code.
class NetShardedAssigner : public ShardedBatchSolver {
 public:
  NetShardedAssigner(ShardedOptions options, DistributedConfig config,
                     AssignerFactory factory);

  Assignment Solve(const Instance& instance) override;
  const ServiceMetrics& metrics() const override { return metrics_; }
  void AttachWorkspace(BatchWorkspace* workspace) override {
    workspace_ = workspace;
  }
  void SetSolveDelta(const SolveDelta* delta) override { delta_ = delta; }

  /// Cumulative wire statistics across all batches so far.
  const NetStats& net_stats() const { return sim_.stats(); }

  /// Stats of the most recent batch, from the coordinator's seat.
  const NetBatchStats& batch_stats() const {
    return coordinator_.batch_stats();
  }

  /// Test oracles.
  NetworkSimulator& simulator() { return sim_; }
  const ShardSolverNode& shard_node(int i) const { return *nodes_[i]; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }

 private:
  ShardedOptions options_;
  DistributedConfig config_;
  AssignerFactory factory_;
  ShardExecutor executor_;  ///< problem building/recycling only
  NetworkSimulator sim_;
  CoordinatorNode coordinator_;
  std::vector<std::unique_ptr<ShardSolverNode>> nodes_;
  BatchWorkspace* workspace_ = nullptr;
  /// The in-flight batch's problem table; shared so straggler dispatch
  /// messages keep it alive. Recycled at the next Solve() when this is
  /// again the sole owner.
  std::shared_ptr<std::vector<ShardProblem>> problems_;
  ServiceMetrics metrics_;
  /// Next batch's cross-batch warm-start export (null = cold); sliced
  /// per shard into the problem table, stamped on every kDispatch and
  /// driven through the coordinator's adoption pass. Not owned; the
  /// streaming loop re-attaches a fresh delta every batch.
  const SolveDelta* delta_ = nullptr;
};

/// DispatchService with the distributed mode wired in: when `dist` is
/// enabled (and CASC_NO_DISTRIBUTED is unset) batches route through a
/// NetShardedAssigner over the simulated network; otherwise this is
/// exactly the in-process service. Admission, streaming carry-over and
/// commit stay in DispatchService either way — only the per-batch solve
/// is swapped, which is what keeps the two modes bit-identical at zero
/// faults.
class DistributedDispatchService {
 public:
  DistributedDispatchService(DispatchConfig config, DistributedConfig dist,
                             const CooperationMatrix* global_coop,
                             AssignerFactory factory);

  /// True when batches run over the simulated network.
  bool distributed() const { return net_ != nullptr; }

  DispatchResult RunBatch(std::vector<Worker> workers,
                          std::vector<Task> tasks, double now) {
    return service_.RunBatch(std::move(workers), std::move(tasks), now);
  }

  RunSummary Run(const EventStream& stream) { return service_.Run(stream); }

  DispatchService& service() { return service_; }

  /// Null when running in-process.
  NetShardedAssigner* net_solver() { return net_.get(); }

 private:
  DispatchService service_;
  std::unique_ptr<NetShardedAssigner> net_;
};

}  // namespace casc

#endif  // CASC_NET_NET_DISPATCH_H_
