#ifndef CASC_NET_NODE_H_
#define CASC_NET_NODE_H_

#include <cstdint>

#include "net/message.h"

namespace casc {

/// The capabilities the simulator hands a node during a callback (and the
/// driver at batch boundaries): reading the virtual clock, sending
/// messages and arming timers. Nodes never see the simulator itself, so
/// they cannot cheat past the network (no peeking at other nodes' state,
/// no oracle liveness queries).
class NetContext {
 public:
  virtual ~NetContext() = default;

  /// The virtual clock.
  virtual double now() const = 0;

  /// The node this context belongs to.
  virtual NodeId self() const = 0;

  /// Sends `msg` to `to` over the simulated link (delay/drop rules of the
  /// NetworkConfig apply).
  virtual void Send(NodeId to, Message msg) = 0;

  /// Like Send but the message leaves `delay` virtual seconds from now —
  /// the hook shard nodes use to model local compute time before the
  /// reply hits the wire.
  virtual void SendAfter(double delay, NodeId to, Message msg) = 0;

  /// Arms a one-shot timer firing `delay` seconds from now with the given
  /// id; returns a token for CancelTimer. Timers die if the node crashes
  /// before they fire.
  virtual uint64_t SetTimer(double delay, int timer_id) = 0;

  /// Cancels a pending timer (no-op if already fired or canceled).
  virtual void CancelTimer(uint64_t token) = 0;
};

/// A simulated node. Callbacks run single-threaded in virtual-clock order;
/// all state a node owns is private to it (message passing only).
class Node {
 public:
  virtual ~Node() = default;

  /// A message arrived.
  virtual void OnMessage(NetContext& net, NodeId from, const Message& msg) = 0;

  /// A timer armed via SetTimer fired.
  virtual void OnTimer(NetContext& net, int timer_id) = 0;

  /// The node crashed: drop all volatile state. No sends allowed.
  virtual void OnCrash() {}

  /// The node restarted (fresh state, may re-announce itself).
  virtual void OnRestart(NetContext& net) { (void)net; }
};

}  // namespace casc

#endif  // CASC_NET_NODE_H_
