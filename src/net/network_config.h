#ifndef CASC_NET_NETWORK_CONFIG_H_
#define CASC_NET_NETWORK_CONFIG_H_

#include <cstdint>
#include <vector>

#include "net/message.h"

namespace casc {

/// Directional delay override for one link; both directions need their
/// own entry. Overrides replace (not add to) the base delay.
struct LinkDelay {
  NodeId from = 0;
  NodeId to = 0;
  double seconds = 0.0;
};

/// A partition window: during [start, end) every message crossing the
/// island boundary (in either direction) is dropped. Several windows may
/// overlap; a message is dropped if any active window separates its
/// endpoints.
struct NetPartition {
  double start = 0.0;
  double end = 0.0;
  std::vector<NodeId> island;
};

/// A node crash at `time`; `restart_time` < 0 means the node never comes
/// back. A crashed node loses all volatile state (Node::OnCrash), drops
/// every delivery while down, and its pending timers die with it.
struct CrashEvent {
  NodeId node = 0;
  double time = 0.0;
  double restart_time = -1.0;
};

/// The deterministic fault/latency model of the simulated network. A
/// (config, seed) pair replays bit-identically: the single virtual clock
/// orders events by (time, sequence number) and one seeded Rng drives
/// every random draw (drops, jitter) in schedule order.
struct NetworkConfig {
  /// One-way delivery delay applied to every link without an override.
  double base_delay = 0.0;

  /// Extra per-message delay drawn uniformly from [0, jitter). Zero keeps
  /// the delay matrix exact.
  double jitter = 0.0;

  /// Per-link delay matrix entries (sparse; overrides base_delay).
  std::vector<LinkDelay> link_delays;

  /// I.i.d. probability that a delivery is dropped (drawn per message
  /// from the seeded Rng).
  double drop_rate = 0.0;

  /// Scheduled partition windows.
  std::vector<NetPartition> partitions;

  /// Scheduled node crashes / restarts (virtual clock).
  std::vector<CrashEvent> crashes;

  /// Virtual compute time one shard solve costs on a node (makes the
  /// round-trip latency distribution non-degenerate under delays).
  double solve_seconds = 0.0;

  /// Seed of the simulator's Rng. Same config + same seed => identical
  /// delivery traces, drops and therefore identical dispatch outcomes.
  uint64_t seed = 0x5EEDDA7Aull;
};

}  // namespace casc

#endif  // CASC_NET_NETWORK_CONFIG_H_
