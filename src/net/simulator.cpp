#include "net/simulator.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "service/shard_executor.h"

namespace casc {

int64_t Message::ByteSize() const {
  // Fixed header: type, epoch, shard, stage, attempt, skeleton_epoch +
  // framing.
  int64_t bytes = 32;
  if (problem != nullptr) {
    // A real transfer would ship the shard's workers, tasks and valid
    // pairs; account them even though the simulation carries a reference.
    bytes += static_cast<int64_t>(problem->instance.num_workers()) * 48;
    bytes += static_cast<int64_t>(problem->instance.num_tasks()) * 40;
    bytes += static_cast<int64_t>(problem->instance.NumValidPairs()) * 8;
    if (skeleton_epoch >= 0) {
      // Warm dispatch additionally ships the shard's skeleton slice:
      // one seed task id (4 bytes) and one dirty flag per local worker,
      // plus one dirty flag per local task.
      bytes += static_cast<int64_t>(problem->delta.seed_task.size()) * 4;
      bytes += static_cast<int64_t>(problem->delta.dirty.size());
      bytes += static_cast<int64_t>(problem->delta.dirty_task.size());
    }
  }
  bytes += static_cast<int64_t>(objective_id.size());
  bytes += static_cast<int64_t>(pairs.size()) * 8;
  if (type == MessageType::kShardResult) bytes += 56;  // stats trailer
  return bytes;
}

std::string ToString(MessageType type) {
  switch (type) {
    case MessageType::kDispatch:
      return "DISPATCH";
    case MessageType::kShardResult:
      return "RESULT";
    case MessageType::kReconcile:
      return "RECONCILE";
    case MessageType::kCommit:
      return "COMMIT";
    case MessageType::kAck:
      return "ACK";
    case MessageType::kHeartbeat:
      return "HEARTBEAT";
    case MessageType::kHeartbeatAck:
      return "HEARTBEAT_ACK";
  }
  return "UNKNOWN";
}

double NodeContext::now() const { return sim_->now(); }

void NodeContext::Send(NodeId to, Message msg) {
  sim_->Send(self_, to, std::move(msg));
}

void NodeContext::SendAfter(double delay, NodeId to, Message msg) {
  sim_->SendAfter(delay, self_, to, std::move(msg));
}

uint64_t NodeContext::SetTimer(double delay, int timer_id) {
  return sim_->SetTimer(self_, delay, timer_id);
}

void NodeContext::CancelTimer(uint64_t token) { sim_->CancelTimer(token); }

NetworkSimulator::NetworkSimulator(const NetworkConfig& config)
    : config_(config), rng_(config.seed) {
  CASC_CHECK_GE(config_.base_delay, 0.0);
  CASC_CHECK_GE(config_.jitter, 0.0);
  CASC_CHECK_GE(config_.drop_rate, 0.0);
  CASC_CHECK_LE(config_.drop_rate, 1.0);
  for (const CrashEvent& crash : config_.crashes) {
    Event down;
    down.time = crash.time;
    down.seq = next_seq_++;
    down.kind = Event::kCrash;
    down.node = crash.node;
    queue_.push(down);
    if (crash.restart_time >= 0.0) {
      CASC_CHECK_GE(crash.restart_time, crash.time)
          << "a node cannot restart before it crashed";
      Event up;
      up.time = crash.restart_time;
      up.seq = next_seq_++;
      up.kind = Event::kRestart;
      up.node = crash.node;
      queue_.push(up);
    }
  }
}

void NetworkSimulator::AddNode(NodeId id, Node* node) {
  CASC_CHECK(node != nullptr);
  CASC_CHECK_GE(id, 0);
  if (static_cast<size_t>(id) >= nodes_.size()) {
    nodes_.resize(static_cast<size_t>(id) + 1, nullptr);
    alive_.resize(static_cast<size_t>(id) + 1, true);
    incarnation_.resize(static_cast<size_t>(id) + 1, 0);
  }
  CASC_CHECK(nodes_[static_cast<size_t>(id)] == nullptr)
      << "node id " << id << " registered twice";
  nodes_[static_cast<size_t>(id)] = node;
}

bool NetworkSimulator::IsAlive(NodeId id) const {
  CASC_CHECK_GE(id, 0);
  CASC_CHECK_LT(static_cast<size_t>(id), nodes_.size());
  return alive_[static_cast<size_t>(id)];
}

double NetworkSimulator::DelayFor(NodeId from, NodeId to) {
  double delay = config_.base_delay;
  for (const LinkDelay& link : config_.link_delays) {
    if (link.from == from && link.to == to) {
      delay = link.seconds;
      break;
    }
  }
  if (config_.jitter > 0.0) delay += rng_.Uniform(0.0, config_.jitter);
  return delay;
}

bool NetworkSimulator::Partitioned(NodeId a, NodeId b, double time) const {
  for (const NetPartition& partition : config_.partitions) {
    if (time < partition.start || time >= partition.end) continue;
    const bool a_in = std::find(partition.island.begin(),
                                partition.island.end(),
                                a) != partition.island.end();
    const bool b_in = std::find(partition.island.begin(),
                                partition.island.end(),
                                b) != partition.island.end();
    if (a_in != b_in) return true;
  }
  return false;
}

void NetworkSimulator::SendAfter(double delay, NodeId from, NodeId to,
                                 Message msg) {
  CASC_CHECK_GE(delay, 0.0);
  CASC_CHECK_GE(to, 0);
  CASC_CHECK_LT(static_cast<size_t>(to), nodes_.size());
  ++stats_.messages_sent;
  stats_.bytes_sent += msg.ByteSize();
  // Fault draws happen at send time, in send order: the Rng stream is a
  // pure function of the message schedule, which is what makes a
  // (config, seed) pair replay bit-identically.
  if (Partitioned(from, to, now_)) {
    ++stats_.dropped_partition;
    return;
  }
  if (config_.drop_rate > 0.0 && rng_.Bernoulli(config_.drop_rate)) {
    ++stats_.dropped_rng;
    return;
  }
  Event event;
  event.time = now_ + delay + DelayFor(from, to);
  event.seq = next_seq_++;
  event.kind = Event::kDeliver;
  event.node = to;
  event.from = from;
  event.msg = std::move(msg);
  queue_.push(std::move(event));
}

uint64_t NetworkSimulator::SetTimer(NodeId node, double delay, int timer_id) {
  CASC_CHECK_GE(node, 0);
  CASC_CHECK_LT(static_cast<size_t>(node), nodes_.size());
  CASC_CHECK_GE(delay, 0.0);
  Event event;
  event.time = now_ + delay;
  event.seq = next_seq_++;
  event.kind = Event::kTimer;
  event.node = node;
  event.timer_id = timer_id;
  event.token = next_token_++;
  event.incarnation = incarnation_[static_cast<size_t>(node)];
  queue_.push(std::move(event));
  return event.token;
}

void NetworkSimulator::CancelTimer(uint64_t token) {
  if (token != 0) canceled_timers_.insert(token);
}

void NetworkSimulator::Dispatch(const Event& event) {
  Node* node = nodes_[static_cast<size_t>(event.node)];
  switch (event.kind) {
    case Event::kDeliver: {
      if (!alive_[static_cast<size_t>(event.node)]) {
        ++stats_.dropped_dead;
        return;
      }
      ++stats_.messages_delivered;
      NodeContext context(this, event.node);
      node->OnMessage(context, event.from, event.msg);
      return;
    }
    case Event::kTimer: {
      const auto canceled = canceled_timers_.find(event.token);
      if (canceled != canceled_timers_.end()) {
        canceled_timers_.erase(canceled);
        return;
      }
      // A timer armed before a crash dies with the incarnation that set
      // it: restarted nodes start from a clean slate.
      if (!alive_[static_cast<size_t>(event.node)] ||
          event.incarnation != incarnation_[static_cast<size_t>(event.node)]) {
        return;
      }
      ++stats_.timers_fired;
      NodeContext context(this, event.node);
      node->OnTimer(context, event.timer_id);
      return;
    }
    case Event::kCrash: {
      if (!alive_[static_cast<size_t>(event.node)]) return;
      alive_[static_cast<size_t>(event.node)] = false;
      ++stats_.crashes;
      if (node != nullptr) node->OnCrash();
      return;
    }
    case Event::kRestart: {
      if (alive_[static_cast<size_t>(event.node)]) return;
      alive_[static_cast<size_t>(event.node)] = true;
      ++incarnation_[static_cast<size_t>(event.node)];
      ++stats_.restarts;
      if (node != nullptr) {
        NodeContext context(this, event.node);
        node->OnRestart(context);
      }
      return;
    }
  }
}

bool NetworkSimulator::RunUntil(const std::function<bool()>& done,
                                int64_t max_events) {
  CASC_CHECK(done != nullptr);
  int64_t processed = 0;
  while (!done()) {
    if (queue_.empty()) return false;  // stalled: nothing left to fire
    if (processed >= max_events) return false;  // livelock backstop
    Event event = queue_.top();
    queue_.pop();
    CASC_CHECK_GE(event.time, now_) << "virtual clock went backwards";
    now_ = event.time;
    // Crash targets may be registered later than scheduled; skip unknown.
    if (static_cast<size_t>(event.node) >= nodes_.size() ||
        nodes_[static_cast<size_t>(event.node)] == nullptr) {
      continue;
    }
    Dispatch(event);
    ++processed;
  }
  return true;
}

}  // namespace casc
