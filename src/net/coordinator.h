#ifndef CASC_NET_COORDINATOR_H_
#define CASC_NET_COORDINATOR_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/histogram.h"
#include "model/assignment.h"
#include "model/instance.h"
#include "model/score_keeper.h"
#include "net/node.h"
#include "service/boundary_reconciler.h"
#include "service/shard_executor.h"
#include "service/shard_map.h"

namespace casc {

/// Retry/timeout/liveness knobs of the coordinator protocol. Every wait
/// is timer-driven and every retry counter is bounded, so a batch always
/// terminates: a shard exhausts max_attempts per node, fails over at
/// most once per node, and is then declared lost (its workers fall back
/// to the reconcile passes); an unacked broadcast marks the silent node
/// suspected and completes without it.
struct ProtocolConfig {
  /// Base wait before a dispatch/broadcast is retransmitted.
  double retry_timeout = 1.0;

  /// Exponential backoff factor: attempt k waits timeout * backoff^k.
  double retry_backoff = 2.0;

  /// Transmissions per (shard, node) or (broadcast, node) before the
  /// node is suspected (>= 1).
  int max_attempts = 3;

  /// Period of the coordinator's liveness probes; 0 disables heartbeats
  /// (the retry path still detects failures, just later).
  double heartbeat_interval = 0.0;

  /// Consecutive unanswered heartbeats before a node is suspected.
  int heartbeat_miss_limit = 3;
};

/// What one distributed batch cost, from the coordinator's seat.
struct NetBatchStats {
  int retries = 0;        ///< retransmissions after a timeout
  int failovers = 0;      ///< shards re-dispatched to another node
  int lost_shards = 0;    ///< shards no node could solve (workers absorbed)
  double rtt_p50_seconds = 0.0;  ///< dispatch -> result round trips
  double rtt_p99_seconds = 0.0;
  ReconcileStats reconcile;
  std::vector<double> shard_seconds;  ///< reported per-shard solve times
  int64_t prune_evals = 0;
  int64_t prune_skips = 0;
  int64_t feasibility_rejects = 0;  ///< objective JoinFeasible rejections

  /// Solver convergence telemetry reported by the shard nodes (same
  /// aggregation as the in-process ShardedAssigner: rounds max over
  /// shards, moves/dirty summed, warm if any shard warm-started).
  int solve_rounds = 0;
  int64_t solve_moves = 0;
  int64_t dirty_workers = 0;
  bool warm_started = false;
};

/// The coordinator node of the distributed dispatch protocol. Owns the
/// batch state machine:
///
///   kSolve:    kDispatch every non-empty shard to its node (shard s ->
///              node 1 + s mod N), buffer kShardResult replies (the ack),
///              retry on timeout with exponential backoff; a node
///              exhausting max_attempts is suspected and its shards fail
///              over to the alive node with the fewest outstanding
///              shards (ties: lowest id). A shard that failed over on
///              every node is lost: its home workers are merged into the
///              reconcile boundary set so the batch still commits a
///              valid (if smaller) assignment.
///   fold:      buffered results are folded in ascending shard order —
///              arrival order cannot matter, which is what makes the
///              zero-delay zero-loss run bit-identical to the in-process
///              ShardedAssigner.
///   kInsert/kSeed/kPolish: the BoundaryReconciler passes run *at the
///              coordinator* (the same pass code as in-process), each
///              followed by a broadcast of the placement delta to all
///              unsuspected nodes and an acked round trip.
///   kCommit:   the final assignment is broadcast and acked; done() turns
///              true and the driver collects the assignment and stats.
///
/// The coordinator is durable by assumption (no crash events may target
/// node 0); shard nodes may crash, restart, lag or vanish at any point.
class CoordinatorNode : public Node {
 public:
  /// `num_shard_nodes` >= 1 solver nodes live at ids 1..num_shard_nodes.
  CoordinatorNode(ReconcileOptions reconcile, ProtocolConfig protocol,
                  int num_shard_nodes);

  /// Kicks off one batch (driver API, called between simulator events
  /// via MakeContext). `instance`, `map` must outlive the batch;
  /// `problems` is shared so in-flight dispatches can never dangle.
  /// `assignment` is the (empty, pooled) output the batch fills. A
  /// non-null `delta` (the batch's cross-batch warm-start export over
  /// the global instance; must outlive the batch) warm-dispatches the
  /// shards — each kDispatch stamps the skeleton epoch so the nodes use
  /// the problems' pre-sliced deltas — and drives the reconciler's
  /// adoption pass at the coordinator. Shards re-dispatched after a
  /// failover fall back to a cold solve (skeleton epoch -1).
  void StartBatch(NetContext& net, const Instance* instance,
                  const ShardMap* map,
                  std::shared_ptr<const std::vector<ShardProblem>> problems,
                  Assignment assignment, const SolveDelta* delta = nullptr);

  /// True once the commit round of the current batch is acked.
  bool done() const { return phase_ == Phase::kDone; }

  /// Moves the committed assignment out (call once per batch, after
  /// done()).
  Assignment TakeAssignment();

  const NetBatchStats& batch_stats() const { return stats_; }

  /// Nodes this coordinator currently considers failed.
  int num_suspected() const;

  void OnMessage(NetContext& net, NodeId from, const Message& msg) override;
  void OnTimer(NetContext& net, int timer_id) override;

 private:
  enum class Phase { kIdle, kSolve, kInsert, kSeed, kPolish, kCommit, kDone };

  struct ShardState {
    NodeId node = 0;     ///< current assignee
    int attempt = 0;     ///< transmissions to the current assignee
    int failovers = 0;   ///< distinct nodes tried so far
    bool resolved = false;
    bool lost = false;
    bool empty = false;  ///< no workers or no tasks; nothing to solve
    /// Failed over at least once: re-dispatches go out cold (skeleton
    /// epoch -1) so the replacement node's solve never depends on a warm
    /// cache entry the original assignee may or may not have built.
    bool cold = false;
    uint64_t timer_token = 0;
    double dispatch_time = 0.0;  ///< latest transmission (for RTT)
    std::vector<AssignedPair> pairs;  ///< buffered local result
    double solve_seconds = 0.0;
    int64_t prune_evals = 0;
    int64_t prune_skips = 0;
    int64_t feasibility_rejects = 0;
    int solve_rounds = 0;
    int64_t solve_moves = 0;
    int64_t dirty_workers = 0;
    bool warm_started = false;
  };

  /// One acked broadcast round (reconcile pass delta or commit).
  struct AckWait {
    int stage = 0;
    MessageType type = MessageType::kReconcile;
    std::vector<AssignedPair> payload;
    std::vector<char> acked;      ///< by node - 1
    std::vector<int> attempts;    ///< by node - 1
    std::vector<uint64_t> tokens; ///< by node - 1
    int outstanding = 0;
  };

  struct TimerRecord {
    enum Kind { kShardRetry, kAckRetry, kHeartbeat } kind = kShardRetry;
    int epoch = 0;
    int shard = -1;
    NodeId node = 0;
    int attempt = 0;
    int stage = 0;
  };

  int RegisterTimer(const TimerRecord& record);
  double RetryDelay(int attempt) const;

  /// (Re)transmits shard `s` to its current assignee and arms the retry.
  void DispatchShard(NetContext& net, int s);

  /// Marks `node` failed: pending broadcast slots complete without it and
  /// its unresolved shards fail over.
  void SuspectNode(NetContext& net, NodeId node);

  /// Moves shard `s` to the best surviving node, or declares it lost.
  void FailoverShard(NetContext& net, int s);

  /// All shards resolved: fold ascending, sync the keeper, run pass 1
  /// and open its broadcast round.
  void EnterReconcile(NetContext& net);

  /// Opens an acked broadcast of `payload` to every unsuspected node.
  void Broadcast(NetContext& net, MessageType type, int stage,
                 std::vector<AssignedPair> payload);

  /// The current broadcast round fully acked: run the next pass / commit.
  void OnRoundAcked(NetContext& net);

  void FinishBatch();

  ReconcileOptions reconcile_options_;
  BoundaryReconciler reconciler_;
  ProtocolConfig protocol_;
  int num_shard_nodes_;

  Phase phase_ = Phase::kIdle;
  int epoch_ = -1;
  const Instance* instance_ = nullptr;
  const ShardMap* map_ = nullptr;
  const SolveDelta* delta_ = nullptr;  ///< warm-start export; null = cold
  std::shared_ptr<const std::vector<ShardProblem>> problems_;
  Assignment assignment_;
  std::optional<ScoreKeeper> keeper_;
  std::vector<WorkerIndex> boundary_;
  std::vector<ShardState> shards_;
  int outstanding_shards_ = 0;
  AckWait wait_;
  std::vector<char> suspected_;         ///< by node - 1
  std::vector<char> heard_since_beat_;  ///< by node - 1
  std::vector<int> heartbeat_misses_;   ///< by node - 1
  std::vector<TimerRecord> timers_;
  QuantileSketch rtt_;
  NetBatchStats stats_;
};

}  // namespace casc

#endif  // CASC_NET_COORDINATOR_H_
