#ifndef CASC_NET_SHARD_NODE_H_
#define CASC_NET_SHARD_NODE_H_

#include <cstdint>
#include <map>
#include <tuple>
#include <vector>

#include "model/batch_workspace.h"
#include "net/node.h"
#include "service/shard_executor.h"

namespace casc {

/// A simulated shard solver node: receives kDispatch messages, runs the
/// factory's (deterministic, single-threaded) assigner over the carried
/// ShardProblem, and replies with the local assignment as kShardResult —
/// the reply doubles as the dispatch ack. Reconcile and commit broadcasts
/// are applied to the node's view of the batch and acked.
///
/// Results are cached by (epoch, shard, skeleton_epoch): a retransmitted
/// dispatch — the coordinator timing out on a lost result — is answered
/// from the cache instead of re-solving, so retries cost wire time, not
/// compute. The skeleton epoch is part of the key because the same
/// (epoch, shard) can legitimately be asked for both warm (the original
/// dispatch) and cold (a re-dispatch after this node rejoined following
/// a failover elsewhere) — the two solves may differ, and serving the
/// stale warm result for a cold request would desynchronize the fold.
/// The cache is volatile: a crash clears it (OnCrash), and a re-dispatch
/// after restart re-solves from scratch, producing the identical result
/// because the solver is deterministic.
class ShardSolverNode : public Node {
 public:
  /// `solve_delay` is the virtual compute time a solve occupies before
  /// the result hits the wire (NetworkConfig::solve_seconds).
  ShardSolverNode(AssignerFactory factory, double solve_delay);

  void OnMessage(NetContext& net, NodeId from, const Message& msg) override;
  void OnTimer(NetContext& net, int timer_id) override;
  void OnCrash() override;
  void OnRestart(NetContext& net) override;

  /// Solves performed (cache misses) — observability for tests asserting
  /// that retries do not re-solve and that crashes do.
  int64_t solves() const { return solves_; }

  /// The last committed epoch this node acked (-1 before the first).
  int committed_epoch() const { return committed_epoch_; }

 private:
  struct CachedResult {
    std::vector<AssignedPair> pairs;  ///< local indices, fold order
    double solve_seconds = 0.0;
    int64_t prune_evals = 0;
    int64_t prune_skips = 0;
    int64_t feasibility_rejects = 0;
    int solve_rounds = 0;
    int64_t solve_moves = 0;
    int64_t dirty_workers = 0;
    bool warm_started = false;
  };

  void HandleDispatch(NetContext& net, NodeId from, const Message& msg);

  AssignerFactory factory_;
  double solve_delay_;
  BatchWorkspace workspace_;
  /// (epoch, shard, skeleton_epoch) -> solved result; trimmed at commit.
  std::map<std::tuple<int, int, int>, CachedResult> cache_;
  /// The node's view of the committed global assignment (volatile).
  std::vector<AssignedPair> committed_pairs_;
  int committed_epoch_ = -1;
  int64_t solves_ = 0;
};

}  // namespace casc

#endif  // CASC_NET_SHARD_NODE_H_
