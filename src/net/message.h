#ifndef CASC_NET_MESSAGE_H_
#define CASC_NET_MESSAGE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "model/assignment.h"

namespace casc {

struct ShardProblem;

/// Identity of a simulated node. The coordinator is always node 0; shard
/// solver nodes are 1..num_nodes.
using NodeId = int;

inline constexpr NodeId kCoordinatorNode = 0;

/// The explicit wire protocol of the distributed dispatch plane. Every
/// cross-node interaction is one of these typed messages — there is no
/// shared-memory side channel between the coordinator and the shard
/// nodes beyond the read-only per-batch problem table referenced by
/// kDispatch (whose payload bytes are still accounted, see ByteSize).
enum class MessageType : uint8_t {
  kDispatch,      ///< coordinator -> shard node: solve this shard problem
  kShardResult,   ///< shard node -> coordinator: local assignment (the ack)
  kReconcile,     ///< coordinator -> nodes: one reconcile pass's placements
  kCommit,        ///< coordinator -> nodes: the batch's final assignment
  kAck,           ///< node -> coordinator: ack of kReconcile / kCommit
  kHeartbeat,     ///< coordinator -> node: liveness probe
  kHeartbeatAck,  ///< node -> coordinator: liveness reply
};

/// Ack/round tags: reconcile passes ack stages 1..3, commit acks stage 4.
inline constexpr int kStageReconcileInsert = 1;
inline constexpr int kStageReconcileSeed = 2;
inline constexpr int kStageReconcilePolish = 3;
inline constexpr int kStageCommit = 4;

/// One simulated network message. A single struct (not a class hierarchy)
/// keeps the event queue flat and copyable; fields unused by a type stay
/// at their defaults. `pairs` carries local (worker, task) placements for
/// results, reconcile deltas and the commit snapshot.
struct Message {
  MessageType type = MessageType::kAck;
  int epoch = 0;    ///< batch epoch (stale cross-epoch messages are ignored)
  int shard = -1;   ///< kDispatch / kShardResult: shard problem id
  int stage = 0;    ///< kReconcile: pass; kAck: stage being acked
  int attempt = 0;  ///< retransmission counter (diagnostics only)

  /// kDispatch: epoch of the previous-equilibrium skeleton the carried
  /// problem's warm-start slice (ShardProblem::delta) was derived from,
  /// or -1 to demand a cold solve. The coordinator sends -1 for cold
  /// batches and for shards re-dispatched after a failover — a node that
  /// rejoined mid-batch must not serve a cached warm result the
  /// coordinator no longer expects — and the node keys its result cache
  /// on this value so warm and cold solves of the same (epoch, shard)
  /// never alias.
  int skeleton_epoch = -1;

  /// kDispatch: the shard's sub-instance — an aliasing shared_ptr into
  /// the coordinator's per-batch problem table, so a straggler dispatch
  /// still queued when the batch ends keeps the table alive instead of
  /// dangling. ByteSize() accounts the bytes a real wire transfer of the
  /// workers/tasks/valid pairs would cost.
  std::shared_ptr<const ShardProblem> problem;

  /// kDispatch: registry id of the ObjectiveModel the shard must score
  /// under (ObjectiveByName). A real wire transfer cannot ship the
  /// objective's vtable, only its name — the receiving node re-resolves
  /// it and CHECKs it matches the problem's instance, so a coordinator /
  /// solver objective mismatch fails loudly instead of silently scoring
  /// two different games.
  std::string objective_id;

  /// kShardResult: the local assignment; kReconcile: the pass's placement
  /// delta ((w, kNoTask) encodes "left idle"); kCommit: the final pairs.
  std::vector<AssignedPair> pairs;

  /// kShardResult: solver diagnostics folded into ServiceMetrics.
  double solve_seconds = 0.0;
  int64_t prune_evals = 0;
  int64_t prune_skips = 0;
  int64_t feasibility_rejects = 0;

  /// kShardResult: solver convergence telemetry (best-response rounds,
  /// strategy moves, the warm-start dirty frontier, and whether the
  /// shard seeded from the dispatched skeleton slice).
  int solve_rounds = 0;
  int64_t solve_moves = 0;
  int64_t dirty_workers = 0;
  bool warm_started = false;

  /// Estimated wire size in bytes (header + payload), the quantity the
  /// simulator's byte counters accumulate.
  int64_t ByteSize() const;
};

/// Display name for logs and traces ("DISPATCH", "ACK", ...).
std::string ToString(MessageType type);

}  // namespace casc

#endif  // CASC_NET_MESSAGE_H_
