#ifndef CASC_NET_SIMULATOR_H_
#define CASC_NET_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "net/message.h"
#include "net/network_config.h"
#include "net/node.h"

namespace casc {

class NetworkSimulator;

/// The per-node NetContext facade (stack-constructed per callback; cheap).
class NodeContext : public NetContext {
 public:
  NodeContext(NetworkSimulator* sim, NodeId self) : sim_(sim), self_(self) {}

  double now() const override;
  NodeId self() const override { return self_; }
  void Send(NodeId to, Message msg) override;
  void SendAfter(double delay, NodeId to, Message msg) override;
  uint64_t SetTimer(double delay, int timer_id) override;
  void CancelTimer(uint64_t token) override;

 private:
  NetworkSimulator* sim_;
  NodeId self_;
};

/// Aggregate counters of everything that crossed (or died on) the wire.
struct NetStats {
  int64_t messages_sent = 0;
  int64_t messages_delivered = 0;
  int64_t bytes_sent = 0;
  int64_t dropped_rng = 0;        ///< i.i.d. drop_rate losses
  int64_t dropped_partition = 0;  ///< losses to an active partition window
  int64_t dropped_dead = 0;       ///< deliveries to a crashed node
  int64_t timers_fired = 0;
  int64_t crashes = 0;
  int64_t restarts = 0;

  int64_t TotalDropped() const {
    return dropped_rng + dropped_partition + dropped_dead;
  }
};

/// Deterministic discrete-event network simulator: one virtual clock, a
/// (time, sequence) priority queue, per-link delay matrix, seeded
/// RNG-driven drops, partition windows and node crash/restart events —
/// all replayable bit-identically from a NetworkConfig + seed.
///
/// Single-threaded by construction: node callbacks run one at a time in
/// event order, so nodes need no locks and every run with the same config
/// and the same externally-injected sends produces the same trace.
///
/// Drop and delay draws happen at *send* time in send order (one Rng
/// consumed sequentially), which makes the fault pattern a function of
/// the message schedule alone — retries re-draw, so a retransmission can
/// survive where the original was lost.
class NetworkSimulator {
 public:
  explicit NetworkSimulator(const NetworkConfig& config);

  /// Registers `node` under `id` (dense, >= 0; id 0 is the coordinator by
  /// convention). Not owned. Crash events of the config referencing this
  /// id take effect once registered.
  void AddNode(NodeId id, Node* node);

  double now() const { return now_; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }

  /// Liveness as scheduled by the config (test/driver oracle — protocol
  /// nodes must detect failures via messages, never by calling this).
  bool IsAlive(NodeId id) const;

  /// Context for externally-driven sends (e.g. the dispatch driver
  /// kicking off a batch as the coordinator).
  NodeContext MakeContext(NodeId id) { return NodeContext(this, id); }

  /// Processes events in (time, seq) order until `done()` turns true, the
  /// queue drains, or `max_events` were processed. Returns true iff
  /// `done()` turned true — the caller's termination proof; a false
  /// return means the protocol stalled (no pending events) or livelocked
  /// (budget exhausted).
  bool RunUntil(const std::function<bool()>& done, int64_t max_events);

  const NetStats& stats() const { return stats_; }

  // -- NetContext backends (called via NodeContext) --
  void Send(NodeId from, NodeId to, Message msg) {
    SendAfter(0.0, from, to, std::move(msg));
  }
  void SendAfter(double delay, NodeId from, NodeId to, Message msg);
  uint64_t SetTimer(NodeId node, double delay, int timer_id);
  void CancelTimer(uint64_t token);

 private:
  struct Event {
    enum Kind { kDeliver, kTimer, kCrash, kRestart };
    double time = 0.0;
    uint64_t seq = 0;  ///< global schedule order; ties on `time` keep FIFO
    Kind kind = kDeliver;
    NodeId node = 0;  ///< destination / timer owner / crash target
    NodeId from = 0;
    Message msg;
    int timer_id = 0;
    uint64_t token = 0;
    int incarnation = 0;  ///< timer validity: dies with a crash
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// One-way delay of the link (override, else base) plus jitter draw.
  double DelayFor(NodeId from, NodeId to);

  /// True when an active partition window separates `a` and `b` at `time`.
  bool Partitioned(NodeId a, NodeId b, double time) const;

  void Dispatch(const Event& event);

  NetworkConfig config_;
  Rng rng_;
  std::vector<Node*> nodes_;
  std::vector<bool> alive_;
  std::vector<int> incarnation_;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<uint64_t> canceled_timers_;
  double now_ = 0.0;
  uint64_t next_seq_ = 0;
  uint64_t next_token_ = 1;
  NetStats stats_;
};

}  // namespace casc

#endif  // CASC_NET_SIMULATOR_H_
