#include "net/net_dispatch.h"

#include <cstdlib>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/stopwatch.h"
#include "model/objective_model.h"

namespace casc {

bool DistributedEnabled(const DistributedConfig& config) {
  return config.enabled && std::getenv("CASC_NO_DISTRIBUTED") == nullptr;
}

NetShardedAssigner::NetShardedAssigner(ShardedOptions options,
                                       DistributedConfig config,
                                       AssignerFactory factory)
    : options_(options),
      config_(config),
      factory_(std::move(factory)),
      executor_(options.num_threads),
      sim_(config.network),
      coordinator_(options.reconcile, config.protocol, config.num_nodes) {
  CASC_CHECK(factory_ != nullptr);
  CASC_CHECK_GE(config_.num_nodes, 1);
  CASC_CHECK_GT(config_.max_events_per_batch, 0);
  for (const CrashEvent& crash : config_.network.crashes) {
    CASC_CHECK_NE(crash.node, kCoordinatorNode)
        << "the coordinator is durable by assumption; crash a shard node";
    CASC_CHECK_GE(crash.node, 1);
    CASC_CHECK_LE(crash.node, config_.num_nodes);
  }
  sim_.AddNode(kCoordinatorNode, &coordinator_);
  for (int n = 1; n <= config_.num_nodes; ++n) {
    nodes_.push_back(std::make_unique<ShardSolverNode>(
        factory_, config_.network.solve_seconds));
    sim_.AddNode(n, nodes_.back().get());
  }
}

Assignment NetShardedAssigner::Solve(const Instance& instance) {
  CASC_CHECK(instance.valid_pairs_ready());
  metrics_ = ServiceMetrics{};

  // Same staleness guard as the in-process ShardedAssigner: a delta that
  // does not match this instance degrades to a cold batch.
  const SolveDelta* delta = delta_;
  if (delta != nullptr &&
      (delta->num_carried == 0 ||
       static_cast<int>(delta->seed_task.size()) != instance.num_workers())) {
    delta = nullptr;
  }

  Stopwatch watch;
  ShardMapConfig map_config;
  map_config.shards_per_side = options_.shards_per_side;
  map_config.world = options_.world;
  const ShardMap map(instance.workers(), instance.tasks(), map_config);
  // Reclaim the previous batch's CSR capacity when no straggler message
  // still references the old table (the common case).
  if (problems_ != nullptr && problems_.use_count() == 1) {
    executor_.RecycleProblems(problems_.get());
  }
  problems_ = std::make_shared<std::vector<ShardProblem>>(
      executor_.BuildProblems(instance, map, delta));
  metrics_.partition_seconds = watch.ElapsedSeconds();

  const ShardLoadStats load = map.LoadStats();
  metrics_.num_shards = map.num_shards();
  metrics_.shard_workers = load.workers_per_shard;
  metrics_.shard_tasks = load.tasks_per_shard;
  metrics_.interior_workers = load.interior_workers;
  metrics_.boundary_workers = load.boundary_workers;

  const NetStats before = sim_.stats();
  Assignment assignment = workspace_ != nullptr
                              ? workspace_->AcquireAssignment(instance)
                              : Assignment(instance);
  NodeContext context = sim_.MakeContext(kCoordinatorNode);
  watch.Restart();
  coordinator_.StartBatch(context, &instance, &map, problems_,
                          std::move(assignment), delta);
  const bool finished = sim_.RunUntil(
      [this] { return coordinator_.done(); }, config_.max_events_per_batch);
  CASC_CHECK(finished)
      << "distributed batch did not terminate: the protocol stalled or "
         "exceeded the per-batch event budget";
  // The whole message-driven solve + reconcile rounds count as phase 1;
  // phase 2 has no separate wall time here (its passes run inside the
  // round trips).
  metrics_.phase1_seconds = watch.ElapsedSeconds();
  Assignment result = coordinator_.TakeAssignment();

  const NetBatchStats& batch = coordinator_.batch_stats();
  metrics_.shard_seconds = batch.shard_seconds;
  metrics_.prune_evals = batch.prune_evals;
  metrics_.prune_skips = batch.prune_skips;
  metrics_.feasibility_rejects = batch.feasibility_rejects;
  metrics_.objective = std::string(instance.objective().Id());
  metrics_.adopted_boundary = batch.reconcile.adopted;
  metrics_.inserted_boundary = batch.reconcile.inserted;
  metrics_.seeded_boundary = batch.reconcile.seeded;
  metrics_.polish_moves = batch.reconcile.polish_moves;
  metrics_.solve_rounds = batch.solve_rounds;
  metrics_.solve_moves = batch.solve_moves;
  metrics_.dirty_workers = batch.dirty_workers;
  metrics_.dirty_fraction =
      instance.num_workers() > 0
          ? static_cast<double>(batch.dirty_workers) /
                static_cast<double>(instance.num_workers())
          : 0.0;
  metrics_.warm_started = batch.warm_started;
  metrics_.lost_shards = batch.lost_shards;
  metrics_.net_retries = batch.retries;
  metrics_.net_failovers = batch.failovers;
  metrics_.net_rtt_p50_seconds = batch.rtt_p50_seconds;
  metrics_.net_rtt_p99_seconds = batch.rtt_p99_seconds;
  const NetStats& after = sim_.stats();
  metrics_.net_messages = after.messages_sent - before.messages_sent;
  metrics_.net_bytes = after.bytes_sent - before.bytes_sent;
  metrics_.net_dropped = after.TotalDropped() - before.TotalDropped();
  return result;
}

DistributedDispatchService::DistributedDispatchService(
    DispatchConfig config, DistributedConfig dist,
    const CooperationMatrix* global_coop, AssignerFactory factory)
    : service_(config, global_coop, factory) {
  if (DistributedEnabled(dist)) {
    net_ = std::make_unique<NetShardedAssigner>(config.sharded, dist,
                                                std::move(factory));
    service_.set_batch_solver(net_.get());
  }
}

}  // namespace casc
