#include "net/coordinator.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/check.h"
#include "model/objective_model.h"

namespace casc {

CoordinatorNode::CoordinatorNode(ReconcileOptions reconcile,
                                 ProtocolConfig protocol, int num_shard_nodes)
    : reconcile_options_(reconcile),
      reconciler_(reconcile),
      protocol_(protocol),
      num_shard_nodes_(num_shard_nodes) {
  CASC_CHECK_GE(num_shard_nodes_, 1);
  CASC_CHECK_GT(protocol_.retry_timeout, 0.0);
  CASC_CHECK_GE(protocol_.retry_backoff, 1.0);
  CASC_CHECK_GE(protocol_.max_attempts, 1);
  CASC_CHECK_GE(protocol_.heartbeat_interval, 0.0);
  CASC_CHECK_GE(protocol_.heartbeat_miss_limit, 1);
}

int CoordinatorNode::RegisterTimer(const TimerRecord& record) {
  timers_.push_back(record);
  return static_cast<int>(timers_.size()) - 1;
}

double CoordinatorNode::RetryDelay(int attempt) const {
  double delay = protocol_.retry_timeout;
  for (int i = 0; i < attempt; ++i) delay *= protocol_.retry_backoff;
  return delay;
}

int CoordinatorNode::num_suspected() const {
  int count = 0;
  for (const char s : suspected_) count += s != 0;
  return count;
}

void CoordinatorNode::StartBatch(
    NetContext& net, const Instance* instance, const ShardMap* map,
    std::shared_ptr<const std::vector<ShardProblem>> problems,
    Assignment assignment, const SolveDelta* delta) {
  CASC_CHECK(phase_ == Phase::kIdle || phase_ == Phase::kDone)
      << "a batch is still in flight";
  CASC_CHECK(instance != nullptr);
  CASC_CHECK(map != nullptr);
  CASC_CHECK(problems != nullptr);
  ++epoch_;
  instance_ = instance;
  map_ = map;
  delta_ = delta != nullptr && delta->num_carried > 0 &&
                   static_cast<int>(delta->seed_task.size()) ==
                       instance->num_workers()
               ? delta
               : nullptr;
  problems_ = std::move(problems);
  assignment_ = std::move(assignment);
  keeper_.reset();
  stats_ = NetBatchStats{};
  rtt_.Reset();
  const int num_shards = static_cast<int>(problems_->size());
  stats_.shard_seconds.assign(static_cast<size_t>(num_shards), 0.0);
  shards_.assign(static_cast<size_t>(num_shards), ShardState{});
  wait_ = AckWait{};
  // Suspicion does not carry across batches: a node that was silent last
  // epoch gets probed again (it may have restarted since).
  suspected_.assign(static_cast<size_t>(num_shard_nodes_), 0);
  heard_since_beat_.assign(static_cast<size_t>(num_shard_nodes_), 0);
  heartbeat_misses_.assign(static_cast<size_t>(num_shard_nodes_), 0);

  phase_ = Phase::kSolve;
  outstanding_shards_ = 0;
  for (int s = 0; s < num_shards; ++s) {
    ShardState& state = shards_[static_cast<size_t>(s)];
    const ShardProblem& problem = (*problems_)[static_cast<size_t>(s)];
    if (problem.instance.num_workers() == 0 ||
        problem.instance.num_tasks() == 0) {
      state.empty = true;
      state.resolved = true;
      continue;
    }
    state.node = 1 + s % num_shard_nodes_;
    ++outstanding_shards_;
  }
  for (int s = 0; s < num_shards; ++s) {
    if (!shards_[static_cast<size_t>(s)].resolved) DispatchShard(net, s);
  }
  if (protocol_.heartbeat_interval > 0.0) {
    TimerRecord beat;
    beat.kind = TimerRecord::kHeartbeat;
    beat.epoch = epoch_;
    net.SetTimer(protocol_.heartbeat_interval, RegisterTimer(beat));
  }
  if (outstanding_shards_ == 0) EnterReconcile(net);
}

Assignment CoordinatorNode::TakeAssignment() {
  CASC_CHECK(phase_ == Phase::kDone);
  return std::move(assignment_);
}

void CoordinatorNode::DispatchShard(NetContext& net, int s) {
  ShardState& state = shards_[static_cast<size_t>(s)];
  Message msg;
  msg.type = MessageType::kDispatch;
  msg.epoch = epoch_;
  msg.shard = s;
  msg.attempt = state.attempt;
  msg.problem = std::shared_ptr<const ShardProblem>(
      problems_, &(*problems_)[static_cast<size_t>(s)]);
  msg.objective_id = std::string(instance_->objective().Id());
  // Warm batches stamp the skeleton epoch; a shard that failed over goes
  // out cold (see ShardState::cold).
  msg.skeleton_epoch = delta_ != nullptr && !state.cold ? epoch_ : -1;
  state.dispatch_time = net.now();
  net.Send(state.node, std::move(msg));
  TimerRecord retry;
  retry.kind = TimerRecord::kShardRetry;
  retry.epoch = epoch_;
  retry.shard = s;
  retry.node = state.node;
  retry.attempt = state.attempt;
  state.timer_token =
      net.SetTimer(RetryDelay(state.attempt), RegisterTimer(retry));
}

void CoordinatorNode::SuspectNode(NetContext& net, NodeId node) {
  const size_t slot = static_cast<size_t>(node - 1);
  if (suspected_[slot] != 0) return;
  suspected_[slot] = 1;
  // Unresolved shards parked on the dead node move elsewhere. Collect
  // first: FailoverShard may re-enter state we are iterating.
  std::vector<int> to_move;
  for (size_t s = 0; s < shards_.size(); ++s) {
    const ShardState& state = shards_[s];
    if (!state.resolved && state.node == node) {
      to_move.push_back(static_cast<int>(s));
    }
  }
  for (const int s : to_move) FailoverShard(net, s);
  // An open broadcast round stops waiting for the suspect.
  if (wait_.outstanding > 0 && wait_.acked[slot] == 0) {
    wait_.acked[slot] = 1;
    --wait_.outstanding;
    if (wait_.outstanding == 0) OnRoundAcked(net);
  }
}

void CoordinatorNode::FailoverShard(NetContext& net, int s) {
  ShardState& state = shards_[static_cast<size_t>(s)];
  ++state.failovers;
  NodeId target = -1;
  if (state.failovers < num_shard_nodes_) {
    // Deterministic choice: the unsuspected node with the fewest
    // unresolved shards, ties to the lowest id.
    std::vector<int> load(static_cast<size_t>(num_shard_nodes_), 0);
    for (const ShardState& other : shards_) {
      if (!other.resolved && !other.empty) {
        ++load[static_cast<size_t>(other.node - 1)];
      }
    }
    int best_load = 0;
    for (NodeId n = 1; n <= num_shard_nodes_; ++n) {
      if (suspected_[static_cast<size_t>(n - 1)] != 0) continue;
      if (n == state.node) continue;  // the node that just failed us
      const int l = load[static_cast<size_t>(n - 1)];
      if (target < 0 || l < best_load) {
        target = n;
        best_load = l;
      }
    }
  }
  if (target < 0) {
    // Every node tried or suspected: the shard is lost. Its workers stay
    // idle through the fold and are re-admitted by the reconcile passes
    // (see EnterReconcile), so the batch still commits.
    state.resolved = true;
    state.lost = true;
    ++stats_.lost_shards;
    --outstanding_shards_;
    if (outstanding_shards_ == 0 && phase_ == Phase::kSolve) {
      EnterReconcile(net);
    }
    return;
  }
  state.node = target;
  state.attempt = 0;
  state.cold = true;  // replacement solves from scratch (see header)
  ++stats_.failovers;
  DispatchShard(net, s);
}

void CoordinatorNode::EnterReconcile(NetContext& net) {
  // Fold in ascending shard order, replaying each buffered result's
  // pairs in their recorded (ForEachPair) order — bit-identical to
  // ShardExecutor::Run's fold no matter when each result arrived.
  for (size_t s = 0; s < shards_.size(); ++s) {
    const ShardState& state = shards_[s];
    if (state.lost || state.empty) continue;
    const ShardProblem& problem = (*problems_)[s];
    for (const AssignedPair& pair : state.pairs) {
      assignment_.Assign(
          problem.global_workers[static_cast<size_t>(pair.worker)],
          problem.global_tasks[static_cast<size_t>(pair.task)]);
    }
    stats_.shard_seconds[s] = state.solve_seconds;
    stats_.prune_evals += state.prune_evals;
    stats_.prune_skips += state.prune_skips;
    stats_.feasibility_rejects += state.feasibility_rejects;
    stats_.solve_rounds = std::max(stats_.solve_rounds, state.solve_rounds);
    stats_.solve_moves += state.solve_moves;
    stats_.dirty_workers += state.dirty_workers;
    stats_.warm_started = stats_.warm_started || state.warm_started;
  }

  boundary_ = map_->boundary_workers();
  bool augmented = false;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (!shards_[s].lost) continue;
    const std::vector<WorkerIndex>& home =
        map_->HomeWorkersOf(static_cast<int>(s));
    boundary_.insert(boundary_.end(), home.begin(), home.end());
    augmented = true;
  }
  if (augmented) {
    // Lost shards' home workers join the boundary set (their boundary
    // members are already in it — dedup) so the insert/seed/polish
    // passes can still place them somewhere valid.
    std::sort(boundary_.begin(), boundary_.end());
    boundary_.erase(std::unique(boundary_.begin(), boundary_.end()),
                    boundary_.end());
  }

  keeper_.emplace(*instance_);
  keeper_->Sync(assignment_);

  phase_ = Phase::kInsert;
  std::vector<AssignedPair> placements;
  // Warm batches re-seat idle boundary workers on their retained groups
  // before the greedy insertion — the same pass order as the in-process
  // Reconcile, with the adoptions riding the insert-stage broadcast (no
  // extra round trip).
  if (delta_ != nullptr) {
    stats_.reconcile.adopted = reconciler_.PassAdopt(
        *instance_, boundary_, *delta_, &assignment_, &*keeper_,
        &placements);
  }
  stats_.reconcile.inserted = reconciler_.PassInsert(
      *instance_, boundary_, &assignment_, &*keeper_, &placements);
  Broadcast(net, MessageType::kReconcile, kStageReconcileInsert,
            std::move(placements));
}

void CoordinatorNode::Broadcast(NetContext& net, MessageType type, int stage,
                                std::vector<AssignedPair> payload) {
  wait_ = AckWait{};
  wait_.stage = stage;
  wait_.type = type;
  wait_.payload = std::move(payload);
  wait_.acked.assign(static_cast<size_t>(num_shard_nodes_), 0);
  wait_.attempts.assign(static_cast<size_t>(num_shard_nodes_), 0);
  wait_.tokens.assign(static_cast<size_t>(num_shard_nodes_), 0);
  for (NodeId n = 1; n <= num_shard_nodes_; ++n) {
    const size_t slot = static_cast<size_t>(n - 1);
    if (suspected_[slot] != 0) {
      wait_.acked[slot] = 1;  // the round completes without the suspect
      continue;
    }
    Message msg;
    msg.type = type;
    msg.epoch = epoch_;
    msg.stage = stage;
    msg.pairs = wait_.payload;
    net.Send(n, std::move(msg));
    TimerRecord retry;
    retry.kind = TimerRecord::kAckRetry;
    retry.epoch = epoch_;
    retry.node = n;
    retry.stage = stage;
    retry.attempt = 0;
    wait_.tokens[slot] = net.SetTimer(RetryDelay(0), RegisterTimer(retry));
    ++wait_.outstanding;
  }
  if (wait_.outstanding == 0) OnRoundAcked(net);
}

void CoordinatorNode::OnRoundAcked(NetContext& net) {
  switch (wait_.stage) {
    case kStageReconcileInsert: {
      if (reconcile_options_.seed_underfilled) {
        phase_ = Phase::kSeed;
        std::vector<AssignedPair> delta;
        stats_.reconcile.seeded = reconciler_.PassSeed(
            *instance_, boundary_, &assignment_, &*keeper_, &delta);
        Broadcast(net, MessageType::kReconcile, kStageReconcileSeed,
                  std::move(delta));
        return;
      }
      [[fallthrough]];
    }
    case kStageReconcileSeed: {
      if (reconcile_options_.polish_rounds > 0) {
        phase_ = Phase::kPolish;
        std::vector<AssignedPair> delta;
        stats_.reconcile.polish_moves = reconciler_.PassPolish(
            *instance_, boundary_, &assignment_, &*keeper_, &delta);
        Broadcast(net, MessageType::kReconcile, kStageReconcilePolish,
                  std::move(delta));
        return;
      }
      [[fallthrough]];
    }
    case kStageReconcilePolish: {
      phase_ = Phase::kCommit;
      Broadcast(net, MessageType::kCommit, kStageCommit,
                assignment_.Pairs());
      return;
    }
    case kStageCommit: {
      FinishBatch();
      return;
    }
    default:
      CASC_CHECK(false) << "unknown broadcast stage " << wait_.stage;
  }
}

void CoordinatorNode::FinishBatch() {
  phase_ = Phase::kDone;
  stats_.rtt_p50_seconds = rtt_.Quantile(0.5);
  stats_.rtt_p99_seconds = rtt_.Quantile(0.99);
}

void CoordinatorNode::OnMessage(NetContext& net, NodeId from,
                                const Message& msg) {
  if (from >= 1 && from <= num_shard_nodes_) {
    heard_since_beat_[static_cast<size_t>(from - 1)] = 1;
  }
  switch (msg.type) {
    case MessageType::kShardResult: {
      if (msg.epoch != epoch_ || phase_ != Phase::kSolve) return;  // stale
      ShardState& state = shards_[static_cast<size_t>(msg.shard)];
      if (state.resolved) return;  // duplicate or superseded by failover
      state.resolved = true;
      state.pairs = msg.pairs;
      state.solve_seconds = msg.solve_seconds;
      state.prune_evals = msg.prune_evals;
      state.prune_skips = msg.prune_skips;
      state.feasibility_rejects = msg.feasibility_rejects;
      state.solve_rounds = msg.solve_rounds;
      state.solve_moves = msg.solve_moves;
      state.dirty_workers = msg.dirty_workers;
      state.warm_started = msg.warm_started;
      net.CancelTimer(state.timer_token);
      rtt_.Add(net.now() - state.dispatch_time);
      --outstanding_shards_;
      if (outstanding_shards_ == 0) EnterReconcile(net);
      return;
    }
    case MessageType::kAck: {
      if (msg.epoch != epoch_ || wait_.outstanding == 0) return;
      if (msg.stage != wait_.stage) return;  // ack of an earlier round
      const size_t slot = static_cast<size_t>(from - 1);
      if (wait_.acked[slot] != 0) return;
      wait_.acked[slot] = 1;
      net.CancelTimer(wait_.tokens[slot]);
      --wait_.outstanding;
      if (wait_.outstanding == 0) OnRoundAcked(net);
      return;
    }
    case MessageType::kHeartbeatAck: {
      const size_t slot = static_cast<size_t>(from - 1);
      heartbeat_misses_[slot] = 0;
      // A heartbeat answer is the rejoin signal: the node is back (e.g.
      // restarted) and may serve future failovers and broadcasts.
      suspected_[slot] = 0;
      return;
    }
    case MessageType::kDispatch:
    case MessageType::kReconcile:
    case MessageType::kCommit:
    case MessageType::kHeartbeat:
      return;  // node-bound traffic; ignore if misrouted
  }
}

void CoordinatorNode::OnTimer(NetContext& net, int timer_id) {
  CASC_CHECK_GE(timer_id, 0);
  CASC_CHECK_LT(static_cast<size_t>(timer_id), timers_.size());
  const TimerRecord record = timers_[static_cast<size_t>(timer_id)];
  if (record.epoch != epoch_) return;  // a previous batch's timer
  switch (record.kind) {
    case TimerRecord::kShardRetry: {
      if (phase_ != Phase::kSolve) return;
      ShardState& state = shards_[static_cast<size_t>(record.shard)];
      if (state.resolved) return;
      if (state.node != record.node || state.attempt != record.attempt) {
        return;  // superseded by a retry or failover
      }
      ++state.attempt;
      if (state.attempt < protocol_.max_attempts) {
        ++stats_.retries;
        DispatchShard(net, record.shard);
      } else {
        SuspectNode(net, state.node);
      }
      return;
    }
    case TimerRecord::kAckRetry: {
      if (wait_.outstanding == 0 || record.stage != wait_.stage) return;
      const size_t slot = static_cast<size_t>(record.node - 1);
      if (wait_.acked[slot] != 0) return;
      if (record.attempt != wait_.attempts[slot]) return;  // superseded
      ++wait_.attempts[slot];
      if (wait_.attempts[slot] < protocol_.max_attempts) {
        ++stats_.retries;
        Message msg;
        msg.type = wait_.type;
        msg.epoch = epoch_;
        msg.stage = wait_.stage;
        msg.attempt = wait_.attempts[slot];
        msg.pairs = wait_.payload;
        net.Send(record.node, std::move(msg));
        TimerRecord retry = record;
        retry.attempt = wait_.attempts[slot];
        wait_.tokens[slot] = net.SetTimer(RetryDelay(retry.attempt),
                                          RegisterTimer(retry));
      } else {
        SuspectNode(net, record.node);
      }
      return;
    }
    case TimerRecord::kHeartbeat: {
      if (phase_ == Phase::kDone || phase_ == Phase::kIdle) return;
      for (NodeId n = 1; n <= num_shard_nodes_; ++n) {
        const size_t slot = static_cast<size_t>(n - 1);
        if (heard_since_beat_[slot] == 0) {
          ++heartbeat_misses_[slot];
          if (heartbeat_misses_[slot] >= protocol_.heartbeat_miss_limit &&
              suspected_[slot] == 0) {
            SuspectNode(net, n);
          }
        } else {
          heartbeat_misses_[slot] = 0;
        }
        heard_since_beat_[slot] = 0;
        Message probe;
        probe.type = MessageType::kHeartbeat;
        probe.epoch = epoch_;
        net.Send(n, std::move(probe));
      }
      TimerRecord beat;
      beat.kind = TimerRecord::kHeartbeat;
      beat.epoch = epoch_;
      net.SetTimer(protocol_.heartbeat_interval, RegisterTimer(beat));
      return;
    }
  }
}

}  // namespace casc
