#include "geo/rect.h"

#include <algorithm>

#include "common/strings.h"

namespace casc {

Rect Rect::Empty() { return Rect{1.0, 1.0, 0.0, 0.0}; }

Rect Rect::FromPoint(const Point& p) { return Rect{p.x, p.y, p.x, p.y}; }

Rect Rect::FromCircle(const Point& c, double r) {
  return Rect{c.x - r, c.y - r, c.x + r, c.y + r};
}

bool Rect::Contains(const Point& p) const {
  return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
}

bool Rect::Contains(const Rect& other) const {
  if (other.IsEmpty()) return true;
  if (IsEmpty()) return false;
  return other.min_x >= min_x && other.max_x <= max_x &&
         other.min_y >= min_y && other.max_y <= max_y;
}

bool Rect::Intersects(const Rect& other) const {
  if (IsEmpty() || other.IsEmpty()) return false;
  return min_x <= other.max_x && other.min_x <= max_x &&
         min_y <= other.max_y && other.min_y <= max_y;
}

double Rect::Area() const {
  if (IsEmpty()) return 0.0;
  return (max_x - min_x) * (max_y - min_y);
}

double Rect::Margin() const {
  if (IsEmpty()) return 0.0;
  return (max_x - min_x) + (max_y - min_y);
}

Rect Rect::Union(const Rect& other) const {
  Rect out = *this;
  out.Extend(other);
  return out;
}

double Rect::Enlargement(const Rect& other) const {
  return Union(other).Area() - Area();
}

void Rect::Extend(const Rect& other) {
  if (other.IsEmpty()) return;
  if (IsEmpty()) {
    *this = other;
    return;
  }
  min_x = std::min(min_x, other.min_x);
  min_y = std::min(min_y, other.min_y);
  max_x = std::max(max_x, other.max_x);
  max_y = std::max(max_y, other.max_y);
}

void Rect::Extend(const Point& p) { Extend(Rect::FromPoint(p)); }

double Rect::MinSquaredDistance(const Point& p) const {
  const double dx = std::max({min_x - p.x, 0.0, p.x - max_x});
  const double dy = std::max({min_y - p.y, 0.0, p.y - max_y});
  return dx * dx + dy * dy;
}

Point Rect::Center() const {
  return Point{(min_x + max_x) / 2.0, (min_y + max_y) / 2.0};
}

std::string ToString(const Rect& r) {
  return "[" + FormatDouble(r.min_x, 4) + "," + FormatDouble(r.min_y, 4) +
         " - " + FormatDouble(r.max_x, 4) + "," + FormatDouble(r.max_y, 4) +
         "]";
}

}  // namespace casc
