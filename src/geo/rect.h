#ifndef CASC_GEO_RECT_H_
#define CASC_GEO_RECT_H_

#include <string>

#include "geo/point.h"

namespace casc {

/// An axis-aligned bounding rectangle, the building block of the R-tree.
///
/// An empty rectangle is represented with min > max and behaves as the
/// identity under Extend().
struct Rect {
  double min_x = 1.0;
  double min_y = 1.0;
  double max_x = 0.0;
  double max_y = 0.0;

  /// Returns the canonical empty rectangle.
  static Rect Empty();

  /// Returns the degenerate rectangle containing exactly `p`.
  static Rect FromPoint(const Point& p);

  /// Returns the tight bounding box of a circle (used for worker working
  /// areas: center `c`, radius `r`).
  static Rect FromCircle(const Point& c, double r);

  /// True when the rectangle contains no points.
  bool IsEmpty() const { return min_x > max_x || min_y > max_y; }

  /// True when `p` lies inside or on the boundary.
  bool Contains(const Point& p) const;

  /// True when `other` is fully inside this rectangle.
  bool Contains(const Rect& other) const;

  /// True when the two rectangles share at least one point.
  bool Intersects(const Rect& other) const;

  /// Area (0 for empty or degenerate rectangles).
  double Area() const;

  /// Half-perimeter, the R-tree split heuristic's "margin".
  double Margin() const;

  /// Smallest rectangle covering both this and `other`.
  Rect Union(const Rect& other) const;

  /// How much Area() would grow if extended to cover `other`.
  double Enlargement(const Rect& other) const;

  /// Extends in place to cover `other`.
  void Extend(const Rect& other);

  /// Extends in place to cover `p`.
  void Extend(const Point& p);

  /// Minimum squared distance from `p` to any point of the rectangle
  /// (0 when inside); used for kNN pruning.
  double MinSquaredDistance(const Point& p) const;

  Point Center() const;

  friend bool operator==(const Rect& a, const Rect& b) {
    return a.min_x == b.min_x && a.min_y == b.min_y && a.max_x == b.max_x &&
           a.max_y == b.max_y;
  }
};

/// Renders "[min_x,min_y – max_x,max_y]" for diagnostics.
std::string ToString(const Rect& r);

}  // namespace casc

#endif  // CASC_GEO_RECT_H_
