#include "geo/reachability.h"

#include <limits>

namespace casc {

bool InWorkingArea(const Point& origin, double radius, const Point& target) {
  if (radius < 0.0) return false;
  return SquaredDistance(origin, target) <= radius * radius;
}

bool CanArriveByDeadline(const Point& origin, double speed,
                         const Point& target, double now, double deadline) {
  return ArrivalTime(origin, speed, target, now) <= deadline;
}

double ArrivalTime(const Point& origin, double speed, const Point& target,
                   double now) {
  const double dist = Distance(origin, target);
  if (dist == 0.0) return now;
  if (speed <= 0.0) return std::numeric_limits<double>::infinity();
  return now + dist / speed;
}

}  // namespace casc
