#ifndef CASC_GEO_REACHABILITY_H_
#define CASC_GEO_REACHABILITY_H_

#include "geo/point.h"

namespace casc {

/// The spatio-temporal feasibility conditions of Definition 3 ("valid
/// worker-and-task pairs"), factored out so the model layer, the spatial
/// index filter and the tests all share one implementation.

/// True when `target` lies inside the worker's working area: the disk of
/// radius `radius` centered at `origin` (boundary inclusive).
bool InWorkingArea(const Point& origin, double radius, const Point& target);

/// True when a worker at `origin` moving at `speed` (distance per time
/// unit) can reach `target` no later than `deadline`, starting at time
/// `now`: d(origin, target) / speed <= deadline - now.
///
/// A non-positive speed can reach only its own location.
bool CanArriveByDeadline(const Point& origin, double speed,
                         const Point& target, double now, double deadline);

/// Earliest arrival time at `target` for a worker at `origin` moving at
/// `speed`, departing at `now`. Returns +infinity when speed <= 0 and the
/// worker is not already there.
double ArrivalTime(const Point& origin, double speed, const Point& target,
                   double now);

}  // namespace casc

#endif  // CASC_GEO_REACHABILITY_H_
