#ifndef CASC_GEO_POINT_H_
#define CASC_GEO_POINT_H_

#include <string>

namespace casc {

/// A 2-D point in the normalized [0,1]^2 workspace used throughout the
/// paper's evaluation (locations of workers and tasks).
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point& a, const Point& b) {
    return a.x == b.x && a.y == b.y;
  }
  friend bool operator!=(const Point& a, const Point& b) { return !(a == b); }
};

/// Euclidean distance between `a` and `b`.
double Distance(const Point& a, const Point& b);

/// Squared Euclidean distance (avoids the sqrt for comparisons).
double SquaredDistance(const Point& a, const Point& b);

/// Renders "(x, y)" with 4 decimal digits, for logs and error messages.
std::string ToString(const Point& p);

/// Clamps both coordinates into [0, 1].
Point ClampToUnitSquare(const Point& p);

}  // namespace casc

#endif  // CASC_GEO_POINT_H_
