#include "geo/point.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace casc {

double Distance(const Point& a, const Point& b) {
  return std::sqrt(SquaredDistance(a, b));
}

double SquaredDistance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

std::string ToString(const Point& p) {
  return "(" + FormatDouble(p.x, 4) + ", " + FormatDouble(p.y, 4) + ")";
}

Point ClampToUnitSquare(const Point& p) {
  return Point{std::clamp(p.x, 0.0, 1.0), std::clamp(p.y, 0.0, 1.0)};
}

}  // namespace casc
