#ifndef CASC_KERNEL_AFFINITY_KERNELS_H_
#define CASC_KERNEL_AFFINITY_KERNELS_H_

#include <cstdint>

namespace casc {

/// Gathered affinity reductions over rows of a CoopTile-style matrix.
/// All kernels implement one canonical reduction order regardless of the
/// active backend:
///
///   lanes[j % 4] += v_j   for j = 0..count-1 ascending,
///   result = (lanes[0] + lanes[2]) + (lanes[1] + lanes[3])
///
/// Lane-wise double adds are what SSE2/AVX2 vector adds compute, so the
/// scalar, SSE2 and AVX2 backends return bit-identical doubles for any
/// input. Callers that mix kernel and non-kernel paths (ScoreKeeper's
/// no-tile fallback) must reproduce this exact order themselves.

/// Sum of row[idx[j]] for j in [0, count). `row` is one (double) tile
/// row; `idx` holds distinct in-range column indices.
double RowSumKernel(const double* row, const int* idx, int count);

/// Sum of tile[idx[a]*stride + idx[b]] over all unordered pairs a < b.
/// The outer index a advances sequentially; each inner suffix
/// idx[a+1..count-1] is reduced in the canonical lane order, so the
/// result equals the sequential sum of per-`a` RowSumKernel calls.
/// `idx` must hold distinct ids (the symmetric tile has a zero
/// diagonal, but a duplicated id would silently add its pair affinity).
double PairSumKernel(const double* tile, int64_t stride, const int* idx,
                     int count);

/// Batched RowSumKernel over one shared row: out[g] =
/// RowSumKernel(row, group_ptrs[g], group_lens[g]) for g in
/// [0, num_groups). Exists so ScoreKeeper can score every candidate
/// group of one worker with a single dispatched call.
void RowSumMany(const double* row, const int* const* group_ptrs,
                const int* group_lens, int num_groups, double* out);

/// Screening variant over the float mirror plane: float loads, double
/// accumulation, canonical lane order. Because the mirror rounds every
/// element *up* (see FloatUp), the result upper-bounds the exact double
/// RowSumKernel over the same indices.
double RowSumFloatUp(const float* row, const int* idx, int count);

/// Maximum of row[0..count-1]; 0.0f when count == 0 (affinities are
/// non-negative). Order-independent, so no lane contract applies.
float RowMaxFloat(const float* row, int count);

/// Smallest float >= d (round-up conversion). The float mirror plane is
/// built with this so float-derived bounds are true upper bounds of the
/// exact double affinities.
float FloatUp(double d);

}  // namespace casc

#endif  // CASC_KERNEL_AFFINITY_KERNELS_H_
