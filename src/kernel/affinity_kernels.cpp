#include "kernel/affinity_kernels.h"

#include <cmath>
#include <limits>

#include "kernel/kernel_dispatch.h"

#if defined(__x86_64__) && !defined(CASC_DISABLE_SIMD)
#define CASC_KERNEL_X86 1
#include <immintrin.h>
#endif

namespace casc {
namespace {

// ---------------------------------------------------------------------------
// Scalar backend. This is the reference implementation of the canonical
// lane order; the SIMD backends below are transliterations of it, not
// reassociations.
// ---------------------------------------------------------------------------

double RowSumScalar(const double* row, const int* idx, int count) {
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  int j = 0;
  for (; j + 4 <= count; j += 4) {
    l0 += row[idx[j]];
    l1 += row[idx[j + 1]];
    l2 += row[idx[j + 2]];
    l3 += row[idx[j + 3]];
  }
  // Tail elements keep their lane: element j+k lands in lane k.
  if (j < count) l0 += row[idx[j]];
  if (j + 1 < count) l1 += row[idx[j + 1]];
  if (j + 2 < count) l2 += row[idx[j + 2]];
  return (l0 + l2) + (l1 + l3);
}

double PairSumScalar(const double* tile, int64_t stride, const int* idx,
                     int count) {
  double total = 0.0;
  for (int a = 0; a + 1 < count; ++a) {
    const double* row = tile + static_cast<int64_t>(idx[a]) * stride;
    total += RowSumScalar(row, idx + a + 1, count - a - 1);
  }
  return total;
}

void RowSumManyScalar(const double* row, const int* const* group_ptrs,
                      const int* group_lens, int num_groups, double* out) {
  for (int g = 0; g < num_groups; ++g) {
    out[g] = RowSumScalar(row, group_ptrs[g], group_lens[g]);
  }
}

double RowSumFloatUpScalar(const float* row, const int* idx, int count) {
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  int j = 0;
  for (; j + 4 <= count; j += 4) {
    l0 += static_cast<double>(row[idx[j]]);
    l1 += static_cast<double>(row[idx[j + 1]]);
    l2 += static_cast<double>(row[idx[j + 2]]);
    l3 += static_cast<double>(row[idx[j + 3]]);
  }
  if (j < count) l0 += static_cast<double>(row[idx[j]]);
  if (j + 1 < count) l1 += static_cast<double>(row[idx[j + 1]]);
  if (j + 2 < count) l2 += static_cast<double>(row[idx[j + 2]]);
  return (l0 + l2) + (l1 + l3);
}

#ifdef CASC_KERNEL_X86

// ---------------------------------------------------------------------------
// SSE2 backend (baseline on every x86-64; no target attribute needed).
// Lanes 0/1 live in one 128-bit accumulator, lanes 2/3 in the other —
// vector lane adds are exactly the scalar lane adds.
// ---------------------------------------------------------------------------

double RowSumSse2(const double* row, const int* idx, int count) {
  __m128d acc01 = _mm_setzero_pd();
  __m128d acc23 = _mm_setzero_pd();
  int j = 0;
  for (; j + 4 <= count; j += 4) {
    acc01 = _mm_add_pd(acc01, _mm_set_pd(row[idx[j + 1]], row[idx[j]]));
    acc23 = _mm_add_pd(acc23, _mm_set_pd(row[idx[j + 3]], row[idx[j + 2]]));
  }
  alignas(16) double lanes[4];
  _mm_store_pd(lanes, acc01);
  _mm_store_pd(lanes + 2, acc23);
  if (j < count) lanes[0] += row[idx[j]];
  if (j + 1 < count) lanes[1] += row[idx[j + 1]];
  if (j + 2 < count) lanes[2] += row[idx[j + 2]];
  return (lanes[0] + lanes[2]) + (lanes[1] + lanes[3]);
}

double PairSumSse2(const double* tile, int64_t stride, const int* idx,
                   int count) {
  double total = 0.0;
  for (int a = 0; a + 1 < count; ++a) {
    const double* row = tile + static_cast<int64_t>(idx[a]) * stride;
    total += RowSumSse2(row, idx + a + 1, count - a - 1);
  }
  return total;
}

void RowSumManySse2(const double* row, const int* const* group_ptrs,
                    const int* group_lens, int num_groups, double* out) {
  for (int g = 0; g < num_groups; ++g) {
    out[g] = RowSumSse2(row, group_ptrs[g], group_lens[g]);
  }
}

double RowSumFloatUpSse2(const float* row, const int* idx, int count) {
  __m128d acc01 = _mm_setzero_pd();
  __m128d acc23 = _mm_setzero_pd();
  int j = 0;
  for (; j + 4 <= count; j += 4) {
    acc01 = _mm_add_pd(
        acc01, _mm_set_pd(static_cast<double>(row[idx[j + 1]]),
                          static_cast<double>(row[idx[j]])));
    acc23 = _mm_add_pd(
        acc23, _mm_set_pd(static_cast<double>(row[idx[j + 3]]),
                          static_cast<double>(row[idx[j + 2]])));
  }
  alignas(16) double lanes[4];
  _mm_store_pd(lanes, acc01);
  _mm_store_pd(lanes + 2, acc23);
  if (j < count) lanes[0] += static_cast<double>(row[idx[j]]);
  if (j + 1 < count) lanes[1] += static_cast<double>(row[idx[j + 1]]);
  if (j + 2 < count) lanes[2] += static_cast<double>(row[idx[j + 2]]);
  return (lanes[0] + lanes[2]) + (lanes[1] + lanes[3]);
}

// ---------------------------------------------------------------------------
// AVX2 backend. One 256-bit accumulator holds all four lanes; gathers
// pull four row elements per step. Compiled with a function-level target
// so the base build (no -mavx2) still links it, guarded at runtime by
// KernelBackendAvailable.
// ---------------------------------------------------------------------------

__attribute__((target("avx2,fma"))) double RowSumAvx2(const double* row,
                                                      const int* idx,
                                                      int count) {
  __m256d acc = _mm256_setzero_pd();
  // Explicit element loads instead of vpgatherdpd: on Skylake-class
  // server parts the gather is microcoded at ~4 cycles/element, slower
  // than four plain loads feeding one 256-bit add.
  int j = 0;
  for (; j + 4 <= count; j += 4) {
    acc = _mm256_add_pd(acc,
                        _mm256_set_pd(row[idx[j + 3]], row[idx[j + 2]],
                                      row[idx[j + 1]], row[idx[j]]));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  if (j < count) lanes[0] += row[idx[j]];
  if (j + 1 < count) lanes[1] += row[idx[j + 1]];
  if (j + 2 < count) lanes[2] += row[idx[j + 2]];
  return (lanes[0] + lanes[2]) + (lanes[1] + lanes[3]);
}

__attribute__((target("avx2,fma"))) double PairSumAvx2(const double* tile,
                                                       int64_t stride,
                                                       const int* idx,
                                                       int count) {
  double total = 0.0;
  for (int a = 0; a + 1 < count; ++a) {
    const double* row = tile + static_cast<int64_t>(idx[a]) * stride;
    total += RowSumAvx2(row, idx + a + 1, count - a - 1);
  }
  return total;
}

__attribute__((target("avx2,fma"))) void RowSumManyAvx2(
    const double* row, const int* const* group_ptrs, const int* group_lens,
    int num_groups, double* out) {
  for (int g = 0; g < num_groups; ++g) {
    out[g] = RowSumAvx2(row, group_ptrs[g], group_lens[g]);
  }
}

__attribute__((target("avx2,fma"))) double RowSumFloatUpAvx2(
    const float* row, const int* idx, int count) {
  __m256d acc = _mm256_setzero_pd();
  int j = 0;
  for (; j + 4 <= count; j += 4) {
    const __m128 gathered =
        _mm_set_ps(row[idx[j + 3]], row[idx[j + 2]], row[idx[j + 1]],
                   row[idx[j]]);
    acc = _mm256_add_pd(acc, _mm256_cvtps_pd(gathered));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  if (j < count) lanes[0] += static_cast<double>(row[idx[j]]);
  if (j + 1 < count) lanes[1] += static_cast<double>(row[idx[j + 1]]);
  if (j + 2 < count) lanes[2] += static_cast<double>(row[idx[j + 2]]);
  return (lanes[0] + lanes[2]) + (lanes[1] + lanes[3]);
}

#endif  // CASC_KERNEL_X86

}  // namespace

double RowSumKernel(const double* row, const int* idx, int count) {
#ifdef CASC_KERNEL_X86
  switch (ActiveKernelBackend()) {
    case KernelBackend::kAvx2:
      return RowSumAvx2(row, idx, count);
    case KernelBackend::kSse2:
      return RowSumSse2(row, idx, count);
    case KernelBackend::kScalar:
      break;
  }
#endif
  return RowSumScalar(row, idx, count);
}

double PairSumKernel(const double* tile, int64_t stride, const int* idx,
                     int count) {
#ifdef CASC_KERNEL_X86
  switch (ActiveKernelBackend()) {
    case KernelBackend::kAvx2:
      return PairSumAvx2(tile, stride, idx, count);
    case KernelBackend::kSse2:
      return PairSumSse2(tile, stride, idx, count);
    case KernelBackend::kScalar:
      break;
  }
#endif
  return PairSumScalar(tile, stride, idx, count);
}

void RowSumMany(const double* row, const int* const* group_ptrs,
                const int* group_lens, int num_groups, double* out) {
#ifdef CASC_KERNEL_X86
  switch (ActiveKernelBackend()) {
    case KernelBackend::kAvx2:
      RowSumManyAvx2(row, group_ptrs, group_lens, num_groups, out);
      return;
    case KernelBackend::kSse2:
      RowSumManySse2(row, group_ptrs, group_lens, num_groups, out);
      return;
    case KernelBackend::kScalar:
      break;
  }
#endif
  RowSumManyScalar(row, group_ptrs, group_lens, num_groups, out);
}

double RowSumFloatUp(const float* row, const int* idx, int count) {
#ifdef CASC_KERNEL_X86
  switch (ActiveKernelBackend()) {
    case KernelBackend::kAvx2:
      return RowSumFloatUpAvx2(row, idx, count);
    case KernelBackend::kSse2:
      return RowSumFloatUpSse2(row, idx, count);
    case KernelBackend::kScalar:
      break;
  }
#endif
  return RowSumFloatUpScalar(row, idx, count);
}

float RowMaxFloat(const float* row, int count) {
  float best = 0.0f;
  for (int k = 0; k < count; ++k) {
    if (row[k] > best) best = row[k];
  }
  return best;
}

float FloatUp(double d) {
  float f = static_cast<float>(d);
  if (static_cast<double>(f) < d) {
    f = std::nextafterf(f, std::numeric_limits<float>::infinity());
  }
  return f;
}

}  // namespace casc
