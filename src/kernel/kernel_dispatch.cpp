#include "kernel/kernel_dispatch.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/check.h"

namespace casc {
namespace {

#if defined(__x86_64__) && !defined(CASC_DISABLE_SIMD)
constexpr bool kSimdBuild = true;
bool CpuHasAvx2Fma() {
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
}
#else
constexpr bool kSimdBuild = false;
bool CpuHasAvx2Fma() { return false; }
#endif

KernelBackend Detect() {
  if (const char* forced = std::getenv("CASC_KERNEL")) {
    if (std::strcmp(forced, "scalar") == 0) return KernelBackend::kScalar;
    if (std::strcmp(forced, "sse2") == 0 &&
        KernelBackendAvailable(KernelBackend::kSse2)) {
      return KernelBackend::kSse2;
    }
    if (std::strcmp(forced, "avx2") == 0 &&
        KernelBackendAvailable(KernelBackend::kAvx2)) {
      return KernelBackend::kAvx2;
    }
    // Unknown or unavailable request: fall through to auto-detection
    // rather than aborting a production service over an env typo.
  }
  if (KernelBackendAvailable(KernelBackend::kAvx2)) {
    return KernelBackend::kAvx2;
  }
  if (KernelBackendAvailable(KernelBackend::kSse2)) {
    return KernelBackend::kSse2;
  }
  return KernelBackend::kScalar;
}

/// -1 = not resolved yet; otherwise the KernelBackend value. Relaxed
/// ordering is enough: every value ever stored is valid to dispatch on.
std::atomic<int> g_backend{-1};

}  // namespace

const char* KernelBackendName(KernelBackend backend) {
  switch (backend) {
    case KernelBackend::kScalar:
      return "scalar";
    case KernelBackend::kSse2:
      return "sse2";
    case KernelBackend::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool KernelBackendAvailable(KernelBackend backend) {
  switch (backend) {
    case KernelBackend::kScalar:
      return true;
    case KernelBackend::kSse2:
      return kSimdBuild;
    case KernelBackend::kAvx2:
      return kSimdBuild && CpuHasAvx2Fma();
  }
  return false;
}

KernelBackend ActiveKernelBackend() {
  int backend = g_backend.load(std::memory_order_relaxed);
  if (backend < 0) {
    backend = static_cast<int>(Detect());
    g_backend.store(backend, std::memory_order_relaxed);
  }
  return static_cast<KernelBackend>(backend);
}

void SetKernelBackend(KernelBackend backend) {
  CASC_CHECK(KernelBackendAvailable(backend))
      << "kernel backend " << KernelBackendName(backend)
      << " is not available on this build/CPU";
  g_backend.store(static_cast<int>(backend), std::memory_order_relaxed);
}

}  // namespace casc
