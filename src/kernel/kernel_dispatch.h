#ifndef CASC_KERNEL_KERNEL_DISPATCH_H_
#define CASC_KERNEL_KERNEL_DISPATCH_H_

namespace casc {

/// The instruction-set backend the affinity kernels execute with. Every
/// backend implements the same canonical reduction order (4 double lanes,
/// combined as (l0+l2)+(l1+l3)), so switching backends never changes a
/// single bit of any kernel result — only its speed. This is what lets
/// the runtime pick the widest available ISA without perturbing the
/// solvers' trajectories (verified by kernel_test's differential suite).
enum class KernelBackend {
  kScalar,  ///< portable C++ (also the CASC_DISABLE_SIMD build's only one)
  kSse2,    ///< 128-bit SSE2 (baseline on every x86-64)
  kAvx2,    ///< 256-bit AVX2 gathers (requires avx2+fma at runtime)
};

/// Name for logs and bench JSON ("scalar", "sse2", "avx2").
const char* KernelBackendName(KernelBackend backend);

/// True when `backend` can run on this build and CPU. kScalar is always
/// available; SSE2/AVX2 require an x86-64 build without CASC_DISABLE_SIMD
/// and (for AVX2) runtime cpuid support for avx2+fma.
bool KernelBackendAvailable(KernelBackend backend);

/// The backend the kernels currently dispatch to. Resolved once on first
/// use: the widest available ISA, overridable with the CASC_KERNEL
/// environment variable (scalar|sse2|avx2).
KernelBackend ActiveKernelBackend();

/// Forces a specific backend (tests and the micro-bench sweep backends
/// this way). Requires KernelBackendAvailable(backend). Safe to switch at
/// any time because all backends are bit-identical.
void SetKernelBackend(KernelBackend backend);

}  // namespace casc

#endif  // CASC_KERNEL_KERNEL_DISPATCH_H_
