#ifndef CASC_KERNEL_COOP_TILE_H_
#define CASC_KERNEL_COOP_TILE_H_

#include <cstdint>

namespace casc {

class CooperationMatrix;

/// Flat, kernel-friendly image of a CooperationMatrix, rebuilt once per
/// batch into BatchWorkspace and shared read-only by every ScoreKeeper
/// of that batch. Two planes over the same 64-byte-aligned, stride-padded
/// (stride = m rounded up to 8) layout:
///
/// * **pair plane** (double): s(i,k) = q_i(w_k) + q_k(w_i), diagonal 0.
///   This is the exact value ScoreKeeper's marginals accumulate — double
///   addition of the two directions is commutative bit-for-bit, so
///   kernels over this plane reproduce the matrix path exactly.
/// * **bound plane** (float): FloatUp(s(i,k)) — each element rounded UP
///   to float, so any sum/max over it upper-bounds the exact plane.
///   Feeds the candidate-pruning bounds, never the objective.
///
/// Per row i the tile also precomputes prm_ticks(i) =
/// ceil(max_k bound(i,k) * 2^32): worker i's row maximum as an integer
/// tick count. ScoreKeeper keeps its per-task bound accumulators in the
/// same 2^-32 fixed point, where add/remove are exactly reversible
/// (int64 arithmetic) — floating-point drift can never rot a bound.
///
/// Building is O(m^2) time and 12 bytes/cell; BatchWorkspace gates it
/// behind a worker-count ceiling (procedural city-scale matrices stay
/// tile-less) and caches it by CooperationMatrix::IdentityHash.
class CoopTile {
 public:
  CoopTile() = default;
  ~CoopTile();
  CoopTile(const CoopTile&) = delete;
  CoopTile& operator=(const CoopTile&) = delete;

  /// (Re)builds the planes from `coop`. When coop.num_workers() >
  /// `max_workers` the tile clears itself and returns false — callers
  /// fall back to the matrix path. Buffers are reused across rebuilds.
  bool BuildFrom(const CooperationMatrix& coop, int max_workers);

  /// Drops the built planes (buffers are kept for reuse).
  void Clear() { num_workers_ = 0; }

  bool built() const { return num_workers_ > 0; }
  int num_workers() const { return num_workers_; }
  int64_t stride() const { return stride_; }

  /// Row i of the exact double pair plane (64-byte aligned).
  const double* PairRow(int i) const { return pair_ + i * stride_; }
  const double* pair_plane() const { return pair_; }

  /// Row i of the round-up float bound plane (64-byte aligned).
  const float* BoundRow(int i) const { return bound_ + i * stride_; }

  /// ceil(rowmax_float(i) * 2^32): worker i's per-pair affinity upper
  /// bound in 2^-32 fixed point.
  int64_t PrmTicks(int i) const { return prm_ticks_[i]; }

  /// IdentityHash of the matrix this tile was built from (undefined when
  /// !built()).
  uint64_t source_identity() const { return source_identity_; }

 private:
  int num_workers_ = 0;
  int64_t stride_ = 0;
  uint64_t source_identity_ = 0;
  double* pair_ = nullptr;
  float* bound_ = nullptr;
  int64_t* prm_ticks_ = nullptr;
  int64_t pair_capacity_ = 0;   ///< doubles allocated behind pair_
  int64_t bound_capacity_ = 0;  ///< floats allocated behind bound_
  int64_t ticks_capacity_ = 0;  ///< int64s allocated behind prm_ticks_
};

}  // namespace casc

#endif  // CASC_KERNEL_COOP_TILE_H_
