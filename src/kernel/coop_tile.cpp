#include "kernel/coop_tile.h"

#include <cmath>
#include <new>

#include "common/check.h"
#include "kernel/affinity_kernels.h"
#include "model/cooperation_matrix.h"

namespace casc {
namespace {

constexpr std::align_val_t kAlign{64};

/// Grows `*buffer` (64-byte aligned, uninitialized) to at least `needed`
/// elements, reusing the old block when it is already big enough.
template <typename T>
void EnsureCapacity(T** buffer, int64_t* capacity, int64_t needed) {
  if (*capacity >= needed) return;
  if (*buffer != nullptr) {
    ::operator delete[](*buffer, kAlign);
  }
  *buffer = static_cast<T*>(
      ::operator new[](static_cast<size_t>(needed) * sizeof(T), kAlign));
  *capacity = needed;
}

template <typename T>
void Release(T** buffer, int64_t* capacity) {
  if (*buffer != nullptr) {
    ::operator delete[](*buffer, kAlign);
    *buffer = nullptr;
  }
  *capacity = 0;
}

}  // namespace

CoopTile::~CoopTile() {
  Release(&pair_, &pair_capacity_);
  Release(&bound_, &bound_capacity_);
  Release(&prm_ticks_, &ticks_capacity_);
}

bool CoopTile::BuildFrom(const CooperationMatrix& coop, int max_workers) {
  const int m = coop.num_workers();
  if (m <= 0 || m > max_workers) {
    Clear();
    return false;
  }
  const int64_t stride = (static_cast<int64_t>(m) + 7) & ~int64_t{7};
  EnsureCapacity(&pair_, &pair_capacity_, stride * m);
  EnsureCapacity(&bound_, &bound_capacity_, stride * m);
  EnsureCapacity(&prm_ticks_, &ticks_capacity_, m);
  num_workers_ = m;
  stride_ = stride;
  source_identity_ = coop.IdentityHash();

  const double* cells = coop.DenseCellsOrNull();
  for (int i = 0; i < m; ++i) {
    double* pair_row = pair_ + i * stride;
    float* bound_row = bound_ + i * stride;
    if (cells != nullptr) {
      const double* fwd = cells + static_cast<int64_t>(i) * m;
      for (int k = 0; k < m; ++k) {
        // q_i(w_k) + q_k(w_i); the dense diagonal is stored as 0.
        pair_row[k] = fwd[k] + cells[static_cast<int64_t>(k) * m + i];
      }
    } else {
      for (int k = 0; k < m; ++k) {
        pair_row[k] = coop.Quality(i, k) + coop.Quality(k, i);
      }
    }
    pair_row[i] = 0.0;
    for (int64_t k = m; k < stride; ++k) pair_row[k] = 0.0;
    for (int64_t k = 0; k < stride; ++k) {
      bound_row[k] = FloatUp(pair_row[k]);
    }
    // Affinities are in [0, 2] and rowmax * 2^32 is exactly
    // representable in double (24-bit significand scaled by a power of
    // two), so the ceil — and therefore the tick count — is exact.
    const double rowmax =
        static_cast<double>(RowMaxFloat(bound_row, m));
    prm_ticks_[i] = static_cast<int64_t>(std::ceil(rowmax * 4294967296.0));
    CASC_DCHECK(prm_ticks_[i] >= 0);
  }
  return true;
}

}  // namespace casc
