#ifndef CASC_GRAPH_FORD_FULKERSON_H_
#define CASC_GRAPH_FORD_FULKERSON_H_

#include <cstdint>

#include "graph/flow_network.h"

namespace casc {

/// Edmonds-Karp max flow (Ford-Fulkerson with BFS augmenting paths).
/// O(V E^2); used as the independent correctness reference for Dinic in
/// the test suite, never on the hot path.
int64_t FordFulkersonMaxFlow(FlowNetwork* network, int source, int sink);

}  // namespace casc

#endif  // CASC_GRAPH_FORD_FULKERSON_H_
