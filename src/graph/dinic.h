#ifndef CASC_GRAPH_DINIC_H_
#define CASC_GRAPH_DINIC_H_

#include <cstdint>

#include "graph/flow_network.h"

namespace casc {

/// Computes the maximum s-t flow of `network` with Dinic's algorithm
/// (BFS level graph + DFS blocking flows), mutating the network's residual
/// capacities so per-edge flows are readable afterwards.
///
/// Runs in O(V^2 E) generally and O(E sqrt(V)) on the unit-capacity
/// bipartite networks produced by the MFLOW baseline.
int64_t DinicMaxFlow(FlowNetwork* network, int source, int sink);

}  // namespace casc

#endif  // CASC_GRAPH_DINIC_H_
