#ifndef CASC_GRAPH_FLOW_NETWORK_H_
#define CASC_GRAPH_FLOW_NETWORK_H_

#include <cstdint>
#include <vector>

namespace casc {

/// A directed flow network in adjacency-list form with paired residual
/// edges, shared by the Dinic and Ford-Fulkerson max-flow solvers.
///
/// Edges are added with AddEdge(); each call creates the forward edge and
/// its zero-capacity residual twin. After running a solver, per-edge flow
/// is readable through Flow(edge_index) using the index AddEdge returned.
class FlowNetwork {
 public:
  /// An edge in the residual graph.
  struct Edge {
    int to = 0;        ///< head vertex
    int64_t capacity;  ///< remaining residual capacity
    int twin = 0;      ///< index of the reverse edge in edges()
  };

  /// Creates a network with `num_vertices` vertices and no edges.
  explicit FlowNetwork(int num_vertices);

  /// Adds a directed edge `from -> to` with the given capacity and its
  /// residual twin. Returns the edge index for later Flow() queries.
  /// Requires valid vertex ids and capacity >= 0.
  int AddEdge(int from, int to, int64_t capacity);

  int num_vertices() const { return static_cast<int>(adjacency_.size()); }
  int num_edges() const { return static_cast<int>(edges_.size()) / 2; }

  /// Flow currently pushed through the forward edge `edge_index`
  /// (as returned by AddEdge).
  int64_t Flow(int edge_index) const;

  /// Original capacity of the forward edge `edge_index`.
  int64_t Capacity(int edge_index) const;

  /// Resets all flow to zero, restoring original capacities.
  void ResetFlow();

  /// Mutable internals for the solvers.
  std::vector<Edge>& edges() { return edges_; }
  const std::vector<Edge>& edges() const { return edges_; }
  const std::vector<std::vector<int>>& adjacency() const {
    return adjacency_;
  }

 private:
  std::vector<Edge> edges_;                  // even = forward, odd = twin
  std::vector<int64_t> original_capacity_;   // per forward edge
  std::vector<std::vector<int>> adjacency_;  // vertex -> edge indices
};

}  // namespace casc

#endif  // CASC_GRAPH_FLOW_NETWORK_H_
