#include "graph/dinic.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <vector>

#include "common/check.h"

namespace casc {
namespace {

/// Builds the BFS level graph; returns true if the sink is reachable.
bool BuildLevels(const FlowNetwork& network, int source, int sink,
                 std::vector<int>* levels) {
  std::fill(levels->begin(), levels->end(), -1);
  (*levels)[static_cast<size_t>(source)] = 0;
  std::queue<int> frontier;
  frontier.push(source);
  while (!frontier.empty()) {
    const int vertex = frontier.front();
    frontier.pop();
    for (const int edge_index : network.adjacency()[static_cast<size_t>(vertex)]) {
      const auto& edge = network.edges()[static_cast<size_t>(edge_index)];
      if (edge.capacity > 0 && (*levels)[static_cast<size_t>(edge.to)] < 0) {
        (*levels)[static_cast<size_t>(edge.to)] =
            (*levels)[static_cast<size_t>(vertex)] + 1;
        frontier.push(edge.to);
      }
    }
  }
  return (*levels)[static_cast<size_t>(sink)] >= 0;
}

/// Sends up to `limit` units along level-increasing paths from `vertex`.
int64_t PushBlockingFlow(FlowNetwork* network, int vertex, int sink,
                         int64_t limit, const std::vector<int>& levels,
                         std::vector<size_t>* next_edge) {
  if (vertex == sink || limit == 0) return limit;
  const auto& adjacency = network->adjacency()[static_cast<size_t>(vertex)];
  int64_t sent = 0;
  size_t& cursor = (*next_edge)[static_cast<size_t>(vertex)];
  while (cursor < adjacency.size()) {
    const int edge_index = adjacency[cursor];
    auto& edge = network->edges()[static_cast<size_t>(edge_index)];
    if (edge.capacity > 0 &&
        levels[static_cast<size_t>(edge.to)] ==
            levels[static_cast<size_t>(vertex)] + 1) {
      const int64_t pushed = PushBlockingFlow(
          network, edge.to, sink, std::min(limit - sent, edge.capacity),
          levels, next_edge);
      if (pushed > 0) {
        edge.capacity -= pushed;
        network->edges()[static_cast<size_t>(edge.twin)].capacity += pushed;
        sent += pushed;
        if (sent == limit) return sent;
        continue;  // same edge may still have residual capacity
      }
    }
    ++cursor;
  }
  return sent;
}

}  // namespace

int64_t DinicMaxFlow(FlowNetwork* network, int source, int sink) {
  CASC_CHECK(network != nullptr);
  CASC_CHECK_GE(source, 0);
  CASC_CHECK_LT(source, network->num_vertices());
  CASC_CHECK_GE(sink, 0);
  CASC_CHECK_LT(sink, network->num_vertices());
  CASC_CHECK_NE(source, sink);

  std::vector<int> levels(static_cast<size_t>(network->num_vertices()));
  std::vector<size_t> next_edge(
      static_cast<size_t>(network->num_vertices()));
  int64_t total = 0;
  while (BuildLevels(*network, source, sink, &levels)) {
    std::fill(next_edge.begin(), next_edge.end(), 0u);
    total += PushBlockingFlow(network, source, sink,
                              std::numeric_limits<int64_t>::max(), levels,
                              &next_edge);
  }
  return total;
}

}  // namespace casc
