#include "graph/ford_fulkerson.h"

#include <algorithm>
#include <queue>
#include <vector>

#include "common/check.h"

namespace casc {

int64_t FordFulkersonMaxFlow(FlowNetwork* network, int source, int sink) {
  CASC_CHECK(network != nullptr);
  CASC_CHECK_NE(source, sink);
  int64_t total = 0;
  const size_t n = static_cast<size_t>(network->num_vertices());
  std::vector<int> parent_edge(n);
  for (;;) {
    // BFS for a shortest augmenting path.
    std::fill(parent_edge.begin(), parent_edge.end(), -1);
    parent_edge[static_cast<size_t>(source)] = -2;  // visited marker
    std::queue<int> frontier;
    frontier.push(source);
    bool found = false;
    while (!frontier.empty() && !found) {
      const int vertex = frontier.front();
      frontier.pop();
      for (const int edge_index :
           network->adjacency()[static_cast<size_t>(vertex)]) {
        const auto& edge = network->edges()[static_cast<size_t>(edge_index)];
        if (edge.capacity > 0 &&
            parent_edge[static_cast<size_t>(edge.to)] == -1) {
          parent_edge[static_cast<size_t>(edge.to)] = edge_index;
          if (edge.to == sink) {
            found = true;
            break;
          }
          frontier.push(edge.to);
        }
      }
    }
    if (!found) break;

    // Find the bottleneck along the path.
    int64_t bottleneck = INT64_MAX;
    for (int vertex = sink; vertex != source;) {
      const int edge_index = parent_edge[static_cast<size_t>(vertex)];
      const auto& edge = network->edges()[static_cast<size_t>(edge_index)];
      bottleneck = std::min(bottleneck, edge.capacity);
      vertex = network->edges()[static_cast<size_t>(edge.twin)].to;
    }
    // Apply it.
    for (int vertex = sink; vertex != source;) {
      const int edge_index = parent_edge[static_cast<size_t>(vertex)];
      auto& edge = network->edges()[static_cast<size_t>(edge_index)];
      edge.capacity -= bottleneck;
      network->edges()[static_cast<size_t>(edge.twin)].capacity += bottleneck;
      vertex = network->edges()[static_cast<size_t>(edge.twin)].to;
    }
    total += bottleneck;
  }
  return total;
}

}  // namespace casc
