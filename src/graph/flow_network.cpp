#include "graph/flow_network.h"

#include "common/check.h"

namespace casc {

FlowNetwork::FlowNetwork(int num_vertices) {
  CASC_CHECK_GE(num_vertices, 0);
  adjacency_.resize(static_cast<size_t>(num_vertices));
}

int FlowNetwork::AddEdge(int from, int to, int64_t capacity) {
  CASC_CHECK_GE(from, 0);
  CASC_CHECK_LT(from, num_vertices());
  CASC_CHECK_GE(to, 0);
  CASC_CHECK_LT(to, num_vertices());
  CASC_CHECK_GE(capacity, 0);
  const int forward = static_cast<int>(edges_.size());
  edges_.push_back(Edge{to, capacity, forward + 1});
  edges_.push_back(Edge{from, 0, forward});
  adjacency_[static_cast<size_t>(from)].push_back(forward);
  adjacency_[static_cast<size_t>(to)].push_back(forward + 1);
  original_capacity_.push_back(capacity);
  return forward / 2;
}

int64_t FlowNetwork::Flow(int edge_index) const {
  CASC_CHECK_GE(edge_index, 0);
  CASC_CHECK_LT(edge_index, num_edges());
  // Flow on the forward edge equals the residual capacity of its twin.
  return edges_[static_cast<size_t>(edge_index) * 2 + 1].capacity;
}

int64_t FlowNetwork::Capacity(int edge_index) const {
  CASC_CHECK_GE(edge_index, 0);
  CASC_CHECK_LT(edge_index, num_edges());
  return original_capacity_[static_cast<size_t>(edge_index)];
}

void FlowNetwork::ResetFlow() {
  for (size_t i = 0; i < original_capacity_.size(); ++i) {
    edges_[i * 2].capacity = original_capacity_[i];
    edges_[i * 2 + 1].capacity = 0;
  }
}

}  // namespace casc
