#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "algo/best_response.h"
#include "algo/gt_assigner.h"
#include "algo/local_search.h"
#include "algo/online_assigner.h"
#include "algo/tpg_assigner.h"
#include "common/rng.h"
#include "gen/synthetic.h"
#include "model/objective.h"

namespace casc {
namespace {

Instance AllValidInstance(int num_workers, int num_tasks, int capacity,
                          int min_group, CooperationMatrix coop) {
  std::vector<Worker> workers;
  for (int i = 0; i < num_workers; ++i) {
    workers.push_back(Worker{i, {0.5, 0.5}, 1.0, 1.0, 0.0});
  }
  std::vector<Task> tasks;
  for (int j = 0; j < num_tasks; ++j) {
    tasks.push_back(Task{j, {0.5, 0.5}, 0.0, 10.0, capacity});
  }
  Instance instance(std::move(workers), std::move(tasks), std::move(coop),
                    0.0, min_group);
  instance.ComputeValidPairs();
  return instance;
}

Instance RandomInstance(int m, int n, uint64_t seed) {
  Rng rng(seed);
  SyntheticInstanceConfig config;
  config.num_workers = m;
  config.num_tasks = n;
  config.worker.radius_min = 0.15;
  config.worker.radius_max = 0.35;
  config.worker.speed_min = 0.05;
  config.worker.speed_max = 0.15;
  return GenerateSyntheticInstance(config, 0.0, &rng);
}

// ---------------------------------------------------------------------------
// ONLINE assigner
// ---------------------------------------------------------------------------

TEST(OnlineTest, ProcessesInArrivalOrder) {
  // Worker 1 arrives before worker 0; the later arrival finds the good
  // partner already parked.
  std::vector<Worker> workers = {Worker{0, {0.5, 0.5}, 1.0, 1.0, 2.0},
                                 Worker{1, {0.5, 0.5}, 1.0, 1.0, 1.0},
                                 Worker{2, {0.5, 0.5}, 1.0, 1.0, 3.0}};
  std::vector<Task> tasks = {Task{0, {0.5, 0.5}, 0.0, 10.0, 2},
                             Task{1, {0.5, 0.5}, 0.0, 10.0, 2}};
  CooperationMatrix coop(3, 0.5);
  Instance instance(std::move(workers), std::move(tasks), std::move(coop),
                    5.0, 2);
  instance.ComputeValidPairs();
  OnlineAssigner online;
  const Assignment assignment = online.Run(instance);
  // Worker 1 (earliest) parks somewhere; worker 0 joins it; worker 2
  // parks on the remaining task.
  EXPECT_TRUE(assignment.Validate(instance).ok());
  EXPECT_EQ(assignment.TaskOf(0), assignment.TaskOf(1));
  EXPECT_NE(assignment.TaskOf(2), kNoTask);
}

TEST(OnlineTest, FeasibleOnRandomInstances) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const Instance instance = RandomInstance(80, 30, seed);
    OnlineAssigner online;
    EXPECT_TRUE(online.Run(instance).Validate(instance).ok());
  }
}

TEST(OnlineTest, NeverBeatsBatchByMuchAndUsuallyTrails) {
  // The whole point of the batch framework: averaged over instances the
  // one-by-one mode loses to TPG and GT.
  double online_total = 0.0, tpg_total = 0.0;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    const Instance instance = RandomInstance(100, 40, seed * 17);
    OnlineAssigner online;
    TpgAssigner tpg;
    online_total += TotalScore(instance, online.Run(instance));
    tpg_total += TotalScore(instance, tpg.Run(instance));
  }
  EXPECT_LT(online_total, tpg_total);
}

TEST(OnlineTest, WithoutOptimisticJoinNothingForms) {
  // All gains are zero until a group reaches B, so a purely
  // profit-driven online rule never assigns anyone.
  const Instance instance =
      AllValidInstance(6, 2, 3, 3, CooperationMatrix(6, 0.5));
  OnlineOptions options;
  options.optimistic_join = false;
  OnlineAssigner online(options);
  EXPECT_EQ(online.Run(instance).NumAssigned(), 0);
}

TEST(OnlineTest, OptimisticJoinFormsTeams) {
  const Instance instance =
      AllValidInstance(6, 2, 3, 3, CooperationMatrix(6, 0.5));
  OnlineAssigner online;
  const Assignment assignment = online.Run(instance);
  EXPECT_EQ(assignment.NumAssigned(), 6);
  EXPECT_GT(TotalScore(instance, assignment), 0.0);
}

TEST(OnlineTest, RespectsCapacity) {
  const Instance instance =
      AllValidInstance(10, 1, 4, 2, CooperationMatrix(10, 0.5));
  OnlineAssigner online;
  const Assignment assignment = online.Run(instance);
  EXPECT_EQ(assignment.GroupSize(0), 4);
  EXPECT_TRUE(assignment.Validate(instance).ok());
}

// ---------------------------------------------------------------------------
// SWAP local search
// ---------------------------------------------------------------------------

TEST(LocalSearchTest, NameAppendsSuffix) {
  LocalSearchAssigner search(std::make_unique<TpgAssigner>());
  EXPECT_EQ(search.Name(), "TPG+SWAP");
  LocalSearchAssigner gt_search(std::make_unique<GtAssigner>());
  EXPECT_EQ(gt_search.Name(), "GT+SWAP");
}

TEST(LocalSearchTest, FixesACraftedBadPairing) {
  // Two tasks, four workers. Worker 0 is pinned to task 0 and worker 3
  // to task 1 (tiny radii), workers 1 and 2 can go anywhere. The good
  // matching pairs 0 with 1 (q=0.9) and 2 with 3 (q=0.9); the bad one
  // pairs 0 with 2 and 1 with 3 (q=0.1 each). A base "assigner" that
  // returns the bad matching must be repaired by one swap.
  class BadAssigner : public Assigner {
   public:
    std::string Name() const override { return "BAD"; }
    Assignment Run(const Instance& instance) override {
      Assignment assignment(instance);
      assignment.Assign(0, 0);
      assignment.Assign(2, 0);
      assignment.Assign(1, 1);
      assignment.Assign(3, 1);
      return assignment;
    }
  };

  std::vector<Worker> workers = {
      Worker{0, {0.2, 0.5}, 1.0, 0.05, 0.0},  // pinned to task 0
      Worker{1, {0.5, 0.5}, 1.0, 1.00, 0.0},
      Worker{2, {0.5, 0.5}, 1.0, 1.00, 0.0},
      Worker{3, {0.8, 0.5}, 1.0, 0.05, 0.0},  // pinned to task 1
  };
  std::vector<Task> tasks = {Task{0, {0.2, 0.5}, 0.0, 10.0, 2},
                             Task{1, {0.8, 0.5}, 0.0, 10.0, 2}};
  CooperationMatrix coop(4);
  coop.SetSymmetric(0, 1, 0.9);
  coop.SetSymmetric(2, 3, 0.9);
  coop.SetSymmetric(0, 2, 0.1);
  coop.SetSymmetric(1, 3, 0.1);
  Instance instance(std::move(workers), std::move(tasks), std::move(coop),
                    0.0, 2);
  instance.ComputeValidPairs();

  LocalSearchAssigner search(std::make_unique<BadAssigner>());
  const Assignment repaired = search.Run(instance);
  EXPECT_EQ(search.swaps_applied(), 1);
  EXPECT_EQ(repaired.TaskOf(1), 0);
  EXPECT_EQ(repaired.TaskOf(2), 1);
  EXPECT_NEAR(TotalScore(instance, repaired), 3.6, 1e-9);
}

TEST(LocalSearchTest, NeverDecreasesTheBaseScore) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    const Instance instance = RandomInstance(60, 24, seed * 7);
    TpgAssigner base;
    const double base_score = TotalScore(instance, base.Run(instance));
    LocalSearchAssigner search(std::make_unique<TpgAssigner>());
    const Assignment improved = search.Run(instance);
    EXPECT_GE(TotalScore(instance, improved) + 1e-9, base_score)
        << "seed " << seed;
    EXPECT_TRUE(improved.Validate(instance).ok());
  }
}

TEST(LocalSearchTest, ResultHasNoProfitableSwapLeft) {
  const Instance instance = RandomInstance(50, 20, 99);
  LocalSearchAssigner search(std::make_unique<GtAssigner>());
  const Assignment result = search.Run(instance);
  // Exhaustively verify 2-opt optimality.
  for (TaskIndex t1 = 0; t1 < instance.num_tasks(); ++t1) {
    for (TaskIndex t2 = t1 + 1; t2 < instance.num_tasks(); ++t2) {
      const auto group1 = result.GroupOf(t1);
      const auto group2 = result.GroupOf(t2);
      const double base = GroupScore(instance, t1, group1) +
                          GroupScore(instance, t2, group2);
      for (const WorkerIndex w1 : group1) {
        if (!instance.IsValidPair(w1, t2)) continue;
        for (const WorkerIndex w2 : group2) {
          if (!instance.IsValidPair(w2, t1)) continue;
          std::vector<WorkerIndex> g1_mod, g2_mod;
          for (const WorkerIndex w : group1) {
            g1_mod.push_back(w == w1 ? w2 : w);
          }
          for (const WorkerIndex w : group2) {
            g2_mod.push_back(w == w2 ? w1 : w);
          }
          const double swapped = GroupScore(instance, t1, g1_mod) +
                                 GroupScore(instance, t2, g2_mod);
          EXPECT_LE(swapped, base + 1e-9)
              << "profitable swap remains: " << w1 << "<->" << w2;
        }
      }
    }
  }
}

TEST(LocalSearchTest, StatsCarryBaseInitAndFinalScore) {
  const Instance instance = RandomInstance(40, 16, 5);
  LocalSearchAssigner search(std::make_unique<GtAssigner>());
  const Assignment result = search.Run(instance);
  EXPECT_NEAR(search.stats().final_score, TotalScore(instance, result),
              1e-9);
}

}  // namespace
}  // namespace casc
