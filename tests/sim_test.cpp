#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "algo/gt_assigner.h"
#include "algo/tpg_assigner.h"
#include "common/rng.h"
#include "gen/synthetic.h"
#include "gen/workload.h"
#include "sim/batch_runner.h"
#include "sim/event_stream.h"
#include "sim/metrics.h"
#include "sim/rating_model.h"

namespace casc {
namespace {

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

TEST(MetricsTest, SummaryAggregates) {
  RunSummary summary;
  BatchMetrics a;
  a.score = 10.0;
  a.seconds = 0.5;
  a.upper_bound = 20.0;
  a.assigned_workers = 7;
  a.completed_tasks = 2;
  BatchMetrics b;
  b.score = 30.0;
  b.seconds = 1.5;
  b.upper_bound = 40.0;
  b.assigned_workers = 3;
  b.completed_tasks = 1;
  summary.batches = {a, b};
  EXPECT_DOUBLE_EQ(summary.TotalScore(), 40.0);
  EXPECT_DOUBLE_EQ(summary.TotalUpperBound(), 60.0);
  EXPECT_DOUBLE_EQ(summary.AvgBatchSeconds(), 1.0);
  EXPECT_DOUBLE_EQ(summary.MaxBatchSeconds(), 1.5);
  EXPECT_EQ(summary.TotalAssignedWorkers(), 10);
  EXPECT_EQ(summary.TotalCompletedTasks(), 3);
}

TEST(MetricsTest, EmptySummary) {
  RunSummary summary;
  EXPECT_DOUBLE_EQ(summary.TotalScore(), 0.0);
  EXPECT_DOUBLE_EQ(summary.AvgBatchSeconds(), 0.0);
  EXPECT_DOUBLE_EQ(summary.MaxBatchSeconds(), 0.0);
}

TEST(MetricsTest, MeanAndStdDev) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({2.0, 4.0}), 3.0);
  EXPECT_DOUBLE_EQ(StdDev({5.0}), 0.0);
  EXPECT_NEAR(StdDev({2.0, 4.0}), std::sqrt(2.0), 1e-12);
}

// ---------------------------------------------------------------------------
// EventStream
// ---------------------------------------------------------------------------

TEST(EventStreamTest, SortsAndSlicesArrivals) {
  std::vector<Worker> workers = {Worker{0, {0, 0}, 1, 1, 3.0},
                                 Worker{1, {0, 0}, 1, 1, 1.0},
                                 Worker{2, {0, 0}, 1, 1, 2.0}};
  std::vector<Task> tasks = {Task{0, {0, 0}, 2.5, 5.0, 3},
                             Task{1, {0, 0}, 0.5, 5.0, 3}};
  const EventStream stream(std::move(workers), std::move(tasks));
  EXPECT_DOUBLE_EQ(stream.FirstEventTime(), 0.5);
  EXPECT_DOUBLE_EQ(stream.LastEventTime(), 3.0);

  const auto early = stream.WorkersArrivingIn(0.0, 2.0);
  ASSERT_EQ(early.size(), 1u);
  EXPECT_EQ(early[0].id, 1);

  const auto later = stream.WorkersArrivingIn(2.0, 3.5);
  ASSERT_EQ(later.size(), 2u);
  EXPECT_EQ(later[0].id, 2);
  EXPECT_EQ(later[1].id, 0);

  EXPECT_EQ(stream.TasksArrivingIn(0.0, 1.0).size(), 1u);
  EXPECT_EQ(stream.TasksArrivingIn(0.0, 3.0).size(), 2u);
}

TEST(EventStreamTest, EmptyStream) {
  const EventStream stream({}, {});
  EXPECT_DOUBLE_EQ(stream.FirstEventTime(), 0.0);
  EXPECT_DOUBLE_EQ(stream.LastEventTime(), 0.0);
  EXPECT_TRUE(stream.WorkersArrivingIn(0, 100).empty());
}

TEST(EventStreamTest, HalfOpenIntervals) {
  std::vector<Worker> workers = {Worker{0, {0, 0}, 1, 1, 2.0}};
  const EventStream stream(std::move(workers), {});
  EXPECT_EQ(stream.WorkersArrivingIn(0.0, 2.0).size(), 0u);  // [0, 2)
  EXPECT_EQ(stream.WorkersArrivingIn(2.0, 3.0).size(), 1u);  // [2, 3)
}

TEST(EventStreamTest, EventExactlyAtToIsExcluded) {
  // Both event kinds sitting exactly on the `to` boundary stay out of
  // [from, to) and fall into the next window.
  std::vector<Worker> workers = {Worker{0, {0, 0}, 1, 1, 5.0}};
  std::vector<Task> tasks = {Task{0, {0, 0}, 5.0, 9.0, 3}};
  const EventStream stream(std::move(workers), std::move(tasks));
  EXPECT_TRUE(stream.WorkersArrivingIn(0.0, 5.0).empty());
  EXPECT_TRUE(stream.TasksArrivingIn(0.0, 5.0).empty());
  EXPECT_EQ(stream.WorkersArrivingIn(5.0, 6.0).size(), 1u);
  EXPECT_EQ(stream.TasksArrivingIn(5.0, 6.0).size(), 1u);
}

TEST(EventStreamTest, FromEqualsToIsEmpty) {
  std::vector<Worker> workers = {Worker{0, {0, 0}, 1, 1, 2.0}};
  std::vector<Task> tasks = {Task{0, {0, 0}, 2.0, 9.0, 3}};
  const EventStream stream(std::move(workers), std::move(tasks));
  // [t, t) is empty even with an event exactly at t.
  EXPECT_TRUE(stream.WorkersArrivingIn(2.0, 2.0).empty());
  EXPECT_TRUE(stream.TasksArrivingIn(2.0, 2.0).empty());
}

TEST(EventStreamTest, EmptyStreamEdgeQueries) {
  const EventStream stream({}, {});
  EXPECT_TRUE(stream.WorkersArrivingIn(0.0, 0.0).empty());
  EXPECT_TRUE(stream.TasksArrivingIn(-1.0, 1.0).empty());
  EXPECT_TRUE(stream.HasDenseWorkerIds());  // vacuously dense
}

TEST(EventStreamTest, HasDenseWorkerIds) {
  // A permutation of 0..n-1 (in scrambled arrival order) is dense.
  std::vector<Worker> dense = {Worker{2, {0, 0}, 1, 1, 3.0},
                               Worker{0, {0, 0}, 1, 1, 1.0},
                               Worker{1, {0, 0}, 1, 1, 2.0}};
  EXPECT_TRUE(EventStream(std::move(dense), {}).HasDenseWorkerIds());

  std::vector<Worker> duplicate = {Worker{0, {0, 0}, 1, 1, 1.0},
                                   Worker{0, {0, 0}, 1, 1, 2.0}};
  EXPECT_FALSE(EventStream(std::move(duplicate), {}).HasDenseWorkerIds());

  std::vector<Worker> gap = {Worker{0, {0, 0}, 1, 1, 1.0},
                             Worker{2, {0, 0}, 1, 1, 2.0}};
  EXPECT_FALSE(EventStream(std::move(gap), {}).HasDenseWorkerIds());

  std::vector<Worker> negative = {Worker{-1, {0, 0}, 1, 1, 1.0}};
  EXPECT_FALSE(EventStream(std::move(negative), {}).HasDenseWorkerIds());
}

TEST(MetricsTest, BatchToJsonContainsFields) {
  BatchMetrics batch;
  batch.round = 3;
  batch.now = 1.5;
  batch.num_workers = 10;
  batch.num_tasks = 4;
  batch.score = 2.25;
  const std::string json = ToJson(batch);
  EXPECT_NE(json.find("\"round\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"num_workers\":10"), std::string::npos) << json;
  EXPECT_NE(json.find("\"score\":2.25"), std::string::npos) << json;
}

TEST(MetricsTest, SummaryToJsonHasAggregatesAndBatches) {
  RunSummary summary;
  BatchMetrics batch;
  batch.score = 1.0;
  summary.batches = {batch, batch};
  const std::string json = ToJson(summary);
  EXPECT_NE(json.find("\"total_score\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"batches\":["), std::string::npos) << json;
  // Two batch objects inside the array.
  const size_t first = json.find("\"round\":0");
  ASSERT_NE(first, std::string::npos) << json;
  EXPECT_NE(json.find("\"round\":0", first + 1), std::string::npos) << json;
}

// ---------------------------------------------------------------------------
// BatchRunner: round mode
// ---------------------------------------------------------------------------

TEST(BatchRunnerTest, RoundModeRunsConfiguredRounds) {
  SyntheticInstanceConfig config;
  config.num_workers = 40;
  config.num_tasks = 12;
  SyntheticSource source(config, 5);
  TpgAssigner tpg;
  BatchRunnerConfig runner_config;
  runner_config.rounds = 4;
  const BatchRunner runner(runner_config);
  const RunSummary summary = runner.RunRounds(&source, &tpg);
  ASSERT_EQ(summary.batches.size(), 4u);
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(summary.batches[static_cast<size_t>(r)].round, r);
    EXPECT_EQ(summary.batches[static_cast<size_t>(r)].num_workers, 40);
    EXPECT_GE(summary.batches[static_cast<size_t>(r)].score, 0.0);
  }
}

TEST(BatchRunnerTest, UpperBoundComputedOnRequest) {
  SyntheticInstanceConfig config;
  config.num_workers = 30;
  config.num_tasks = 10;
  SyntheticSource source(config, 6);
  TpgAssigner tpg;
  BatchRunnerConfig runner_config;
  runner_config.rounds = 2;
  runner_config.compute_upper_bound = true;
  const BatchRunner runner(runner_config);
  const RunSummary summary = runner.RunRounds(&source, &tpg);
  for (const auto& batch : summary.batches) {
    EXPECT_GE(batch.upper_bound + 1e-9, batch.score);
  }
}

// ---------------------------------------------------------------------------
// BatchRunner: streaming mode (Algorithm 1)
// ---------------------------------------------------------------------------

/// Builds a streaming scenario: `m` workers arriving across [0, horizon),
/// `n` tasks likewise, on a single global cooperation matrix.
struct StreamingFixture {
  std::vector<Worker> workers;
  std::vector<Task> tasks;
  CooperationMatrix coop;

  StreamingFixture(int m, int n, double horizon, uint64_t seed)
      : coop(m) {
    Rng rng(seed);
    for (int i = 0; i < m; ++i) {
      Worker worker;
      worker.id = i;  // global index, required by RunStreaming
      worker.location = {rng.Uniform(), rng.Uniform()};
      worker.speed = 0.2;
      worker.radius = 0.5;
      worker.arrival_time = rng.Uniform(0.0, horizon);
      workers.push_back(worker);
    }
    for (int j = 0; j < n; ++j) {
      Task task;
      task.id = j;
      task.location = {rng.Uniform(), rng.Uniform()};
      task.create_time = rng.Uniform(0.0, horizon);
      task.deadline = task.create_time + 3.0;
      task.capacity = 4;
      tasks.push_back(task);
    }
    for (int i = 0; i < m; ++i) {
      for (int k = i + 1; k < m; ++k) {
        coop.SetSymmetric(i, k, rng.Uniform());
      }
    }
  }
};

TEST(BatchRunnerTest, StreamingProcessesArrivals) {
  const StreamingFixture fixture(60, 20, 5.0, 77);
  const EventStream stream(fixture.workers, fixture.tasks);
  TpgAssigner tpg;
  BatchRunnerConfig config;
  config.min_group_size = 3;
  const BatchRunner runner(config);
  const RunSummary summary =
      runner.RunStreaming(stream, fixture.coop, &tpg);
  EXPECT_GT(summary.batches.size(), 0u);
  EXPECT_GT(summary.TotalScore(), 0.0);
  // A worker can serve at most one task per batch; totals stay bounded.
  EXPECT_LE(summary.TotalAssignedWorkers(),
            static_cast<int64_t>(summary.batches.size()) * 60);
}

TEST(BatchRunnerTest, StreamingRespectsDeadlinesAcrossBatches) {
  // One task with a deadline before the second batch: it must never be
  // assigned after expiring.
  std::vector<Worker> workers = {Worker{0, {0.5, 0.5}, 0.001, 1.0, 0.0},
                                 Worker{1, {0.5, 0.5}, 0.001, 1.0, 0.0},
                                 Worker{2, {0.5, 0.5}, 0.001, 1.0, 0.0}};
  // Too slow to reach (0.9, 0.9) in time; only the co-located task works.
  std::vector<Task> tasks = {Task{0, {0.5, 0.5}, 0.0, 0.5, 3},
                             Task{1, {0.9, 0.9}, 0.0, 10.0, 3}};
  CooperationMatrix coop(3, 0.8);
  const EventStream stream(workers, tasks);
  TpgAssigner tpg;
  BatchRunnerConfig config;
  config.min_group_size = 3;
  const BatchRunner runner(config);
  const RunSummary summary = runner.RunStreaming(stream, coop, &tpg);
  // Task 0 (deadline 0.5) is assignable only in the first batch (t=0).
  for (const auto& batch : summary.batches) {
    if (batch.now > 0.5) {
      EXPECT_EQ(batch.num_tasks, 1) << "expired task still in pool";
    }
  }
}

TEST(BatchRunnerTest, StreamingWorkersReturnAfterTaskDuration) {
  // 3 workers, 2 identical tasks appearing at t=0 and t=2. With task
  // duration 1 and batch interval 1, the same workers can serve both.
  std::vector<Worker> workers = {Worker{0, {0.5, 0.5}, 1.0, 1.0, 0.0},
                                 Worker{1, {0.5, 0.5}, 1.0, 1.0, 0.0},
                                 Worker{2, {0.5, 0.5}, 1.0, 1.0, 0.0}};
  std::vector<Task> tasks = {Task{0, {0.5, 0.5}, 0.0, 5.0, 3},
                             Task{1, {0.5, 0.5}, 2.0, 12.0, 3}};
  CooperationMatrix coop(3, 0.9);
  const EventStream stream(workers, tasks);
  TpgAssigner tpg;
  BatchRunnerConfig config;
  config.min_group_size = 3;
  config.task_duration = 1.0;
  const BatchRunner runner(config);
  const RunSummary summary = runner.RunStreaming(stream, coop, &tpg);
  EXPECT_EQ(summary.TotalCompletedTasks(), 2);
}

// ---------------------------------------------------------------------------
// RatingModel / QualityLearningLoop (the Equation-1 feedback loop)
// ---------------------------------------------------------------------------

CooperationMatrix RandomTruth(int m, uint64_t seed) {
  Rng rng(seed);
  CooperationMatrix truth(m);
  for (int i = 0; i < m; ++i) {
    for (int k = i + 1; k < m; ++k) {
      truth.SetSymmetric(i, k, rng.Uniform());
    }
  }
  return truth;
}

TEST(RatingModelTest, NoiselessRatingEqualsTrueQuality) {
  CooperationMatrix truth(3);
  truth.SetSymmetric(0, 1, 0.8);
  truth.SetSymmetric(0, 2, 0.4);
  truth.SetSymmetric(1, 2, 0.6);
  RatingModel model(std::move(truth), /*noise_stddev=*/0.0, 1);
  EXPECT_NEAR(model.RateTeam({0, 1, 2}), (0.8 + 0.4 + 0.6) / 3.0, 1e-12);
  EXPECT_NEAR(model.RateTeam({0, 1}), 0.8, 1e-12);
}

TEST(RatingModelTest, NoisyRatingsStayInUnitInterval) {
  RatingModel model(RandomTruth(5, 2), /*noise_stddev=*/0.5, 3);
  for (int i = 0; i < 200; ++i) {
    const double rating = model.RateTeam({0, 1, 2});
    EXPECT_GE(rating, 0.0);
    EXPECT_LE(rating, 1.0);
  }
}

TEST(RatingModelTest, AsymmetricTruthAveragesBothDirections) {
  CooperationMatrix truth(2);
  truth.SetQuality(0, 1, 1.0);
  truth.SetQuality(1, 0, 0.0);
  RatingModel model(std::move(truth), 0.0, 4);
  EXPECT_NEAR(model.TrueTeamQuality({0, 1}), 0.5, 1e-12);
}

TEST(LearningLoopTest, EstimatesConvergeTowardTruth) {
  const int m = 12;
  QualityLearningLoop loop(RandomTruth(m, 7), /*alpha=*/0.2,
                           /*omega=*/0.5, /*noise_stddev=*/0.02, 8);
  const double initial_error = loop.EstimationError();

  // Rate every pair repeatedly; the history term dominates (alpha=0.2).
  Rng rng(9);
  for (int wave = 0; wave < 30; ++wave) {
    std::vector<std::vector<int>> teams;
    for (int i = 0; i < m; i += 3) {
      // Shifting team composition so all pairs eventually co-occur.
      const int a = (i + wave) % m;
      const int b = (i + wave + 1) % m;
      const int c = (i + wave + 2) % m;
      teams.push_back({a, b, c});
    }
    loop.RecordWave(teams);
  }
  EXPECT_LT(loop.EstimationError(), initial_error);
}

TEST(LearningLoopTest, WaveResultCountsAndScores) {
  QualityLearningLoop loop(RandomTruth(6, 11), 0.5, 0.5, 0.0, 12);
  const WaveResult result =
      loop.RecordWave({{0, 1, 2}, {3, 4}, {5}});  // last team too small
  EXPECT_EQ(result.teams_rated, 2);
  EXPECT_GT(result.actual_score, 0.0);
  // Before any history, the belief is uniformly omega = 0.5.
  EXPECT_NEAR(result.believed_score, 0.5 * 3 + 0.5 * 2, 1e-9);
}

TEST(LearningLoopTest, BelievedQualitiesStartAtOmega) {
  QualityLearningLoop loop(RandomTruth(4, 13), 0.5, 0.7, 0.1, 14);
  const CooperationMatrix believed = loop.BelievedQualities();
  for (int i = 0; i < 4; ++i) {
    for (int k = 0; k < 4; ++k) {
      if (i != k) {
        EXPECT_DOUBLE_EQ(believed.Quality(i, k), 0.7);
      }
    }
  }
}

TEST(BatchRunnerTest, StreamingEmptyStream) {
  const EventStream stream({}, {});
  TpgAssigner tpg;
  const BatchRunner runner(BatchRunnerConfig{});
  const RunSummary summary =
      runner.RunStreaming(stream, CooperationMatrix(0), &tpg);
  EXPECT_DOUBLE_EQ(summary.TotalScore(), 0.0);
}

}  // namespace
}  // namespace casc
