#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "algo/exact_assigner.h"
#include "algo/gt_assigner.h"
#include "algo/maxflow_assigner.h"
#include "algo/random_assigner.h"
#include "algo/tpg_assigner.h"
#include "algo/upper_bound.h"
#include "common/rng.h"
#include "gen/synthetic.h"
#include "model/objective.h"

namespace casc {
namespace {

Instance AllValidInstance(int num_workers, int num_tasks, int capacity,
                          int min_group, CooperationMatrix coop) {
  std::vector<Worker> workers;
  for (int i = 0; i < num_workers; ++i) {
    workers.push_back(Worker{i, {0.5, 0.5}, 1.0, 1.0, 0.0});
  }
  std::vector<Task> tasks;
  for (int j = 0; j < num_tasks; ++j) {
    tasks.push_back(Task{j, {0.5, 0.5}, 0.0, 10.0, capacity});
  }
  Instance instance(std::move(workers), std::move(tasks), std::move(coop),
                    0.0, min_group);
  instance.ComputeValidPairs();
  return instance;
}

Instance RandomInstance(int workers, int tasks, uint64_t seed,
                        int capacity = 3, int min_group = 2) {
  Rng rng(seed);
  SyntheticInstanceConfig config;
  config.num_workers = workers;
  config.num_tasks = tasks;
  config.task.capacity = capacity;
  config.min_group_size = min_group;
  return GenerateSyntheticInstance(config, 0.0, &rng);
}

// ---------------------------------------------------------------------------
// MFLOW
// ---------------------------------------------------------------------------

TEST(MflowTest, MaximizesAssignedPairCount) {
  // 4 workers all valid for one task of capacity 3: MFLOW assigns 3.
  const Instance instance =
      AllValidInstance(4, 1, 3, 2, CooperationMatrix(4, 0.5));
  MaxFlowAssigner mflow;
  const Assignment assignment = mflow.Run(instance);
  EXPECT_EQ(assignment.NumAssigned(), 3);
  EXPECT_TRUE(assignment.Validate(instance).ok());
}

TEST(MflowTest, RoutesAroundContention) {
  // Worker 0 fits both tasks, workers 1 and 2 each fit only one; max
  // matching must still place all three.
  std::vector<Worker> workers = {Worker{0, {0.5, 0.5}, 1.0, 1.0, 0.0},
                                 Worker{1, {0.1, 0.1}, 1.0, 0.2, 0.0},
                                 Worker{2, {0.9, 0.9}, 1.0, 0.2, 0.0}};
  std::vector<Task> tasks = {Task{0, {0.1, 0.1}, 0.0, 10.0, 2},
                             Task{1, {0.9, 0.9}, 0.0, 10.0, 2}};
  Instance instance(std::move(workers), std::move(tasks),
                    CooperationMatrix(3, 0.5), 0.0, 2);
  instance.ComputeValidPairs();
  MaxFlowAssigner mflow;
  const Assignment assignment = mflow.Run(instance);
  EXPECT_EQ(assignment.NumAssigned(), 3);
}

TEST(MflowTest, IgnoresCooperationQuality) {
  // Two disjoint pairs with very different qualities; MFLOW may split
  // them badly, but it always assigns the maximum number of pairs.
  const Instance instance = RandomInstance(40, 15, 99);
  MaxFlowAssigner mflow;
  const Assignment assignment = mflow.Run(instance);
  EXPECT_TRUE(assignment.Validate(instance).ok());

  // No algorithm can assign more pairs than max flow.
  TpgAssigner tpg;
  EXPECT_GE(assignment.NumAssigned(), tpg.Run(instance).NumAssigned());
}

TEST(MflowTest, EmptyInstance) {
  const Instance instance =
      AllValidInstance(0, 0, 3, 3, CooperationMatrix(0));
  MaxFlowAssigner mflow;
  EXPECT_EQ(mflow.Run(instance).NumAssigned(), 0);
}

// ---------------------------------------------------------------------------
// RAND
// ---------------------------------------------------------------------------

TEST(RandTest, ProducesFeasibleAssignments) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const Instance instance = RandomInstance(50, 20, seed);
    RandomAssigner rand(seed);
    EXPECT_TRUE(rand.Run(instance).Validate(instance).ok());
  }
}

TEST(RandTest, DeterministicForSameSeed) {
  const Instance instance = RandomInstance(40, 15, 7);
  RandomAssigner a(123), b(123);
  const auto pa = a.Run(instance).Pairs();
  const auto pb = b.Run(instance).Pairs();
  EXPECT_EQ(pa, pb);
}

TEST(RandTest, SkipsTasksBelowThreshold) {
  // Only 2 candidates exist but B = 3: RAND must leave the task empty.
  const Instance instance =
      AllValidInstance(2, 1, 3, 3, CooperationMatrix(2, 0.5));
  RandomAssigner rand(5);
  EXPECT_EQ(rand.Run(instance).NumAssigned(), 0);
}

TEST(RandTest, FillsToCapacityWhenPossible) {
  const Instance instance =
      AllValidInstance(6, 1, 4, 2, CooperationMatrix(6, 0.5));
  RandomAssigner rand(5);
  EXPECT_EQ(rand.Run(instance).NumAssigned(), 4);
}

// ---------------------------------------------------------------------------
// EXACT
// ---------------------------------------------------------------------------

TEST(ExactTest, FindsObviousOptimum) {
  CooperationMatrix coop(4);
  coop.SetSymmetric(0, 3, 0.9);
  coop.SetSymmetric(1, 2, 0.9);
  coop.SetSymmetric(0, 1, 0.1);
  coop.SetSymmetric(2, 3, 0.1);
  const Instance instance = AllValidInstance(4, 2, 2, 2, std::move(coop));
  ExactAssigner exact;
  const Assignment assignment = exact.Run(instance);
  EXPECT_NEAR(TotalScore(instance, assignment), 3.6, 1e-9);
}

TEST(ExactTest, PrefersSkippingHarmfulWorker) {
  CooperationMatrix coop(4);
  coop.SetSymmetric(0, 1, 1.0);
  coop.SetSymmetric(0, 2, 1.0);
  coop.SetSymmetric(1, 2, 1.0);
  const Instance instance = AllValidInstance(4, 1, 4, 2, std::move(coop));
  ExactAssigner exact;
  const Assignment assignment = exact.Run(instance);
  EXPECT_EQ(assignment.TaskOf(3), kNoTask);
  EXPECT_NEAR(TotalScore(instance, assignment), 3.0, 1e-9);
}

class ExactDominanceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExactDominanceTest, DominatesEveryHeuristic) {
  const Instance instance = RandomInstance(9, 3, GetParam());
  ExactAssigner exact;
  const double optimum = TotalScore(instance, exact.Run(instance));

  TpgAssigner tpg;
  GtAssigner gt;
  MaxFlowAssigner mflow;
  RandomAssigner rand(GetParam());
  for (Assigner* assigner :
       std::vector<Assigner*>{&tpg, &gt, &mflow, &rand}) {
    const double score = TotalScore(instance, assigner->Run(instance));
    EXPECT_LE(score, optimum + 1e-9) << assigner->Name();
  }
  // ... and the Lemma V.2 bound dominates the optimum.
  EXPECT_LE(optimum, ComputeUpperBound(instance) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactDominanceTest,
                         ::testing::Values(41u, 42u, 43u, 44u, 45u, 46u,
                                           47u, 48u));

// ---------------------------------------------------------------------------
// UPPER (Equations 8-9, Lemmas V.2/V.3)
// ---------------------------------------------------------------------------

TEST(UpperBoundTest, WorkerBoundIsTopBMinusOneAverage) {
  CooperationMatrix coop(4);
  coop.SetQuality(0, 1, 0.9);
  coop.SetQuality(0, 2, 0.5);
  coop.SetQuality(0, 3, 0.1);
  const Instance instance = AllValidInstance(4, 1, 3, 3, std::move(coop));
  // B = 3: mean of top 2 outgoing -> (0.9 + 0.5) / 2.
  EXPECT_NEAR(WorkerQualityUpperBound(instance, 0), 0.7, 1e-12);
  // Lemma V.3: mean of bottom 2 -> (0.5 + 0.1) / 2.
  EXPECT_NEAR(WorkerQualityLowerBound(instance, 0), 0.3, 1e-12);
}

TEST(UpperBoundTest, LemmaV2HoldsOnRandomGroups) {
  // For any group W with |W| >= B and any member i:
  // avg_i(W) <= q̂_{i,B}.
  Rng rng(8);
  const Instance instance = RandomInstance(12, 2, 88, /*capacity=*/12,
                                           /*min_group=*/3);
  for (int trial = 0; trial < 100; ++trial) {
    const int size = static_cast<int>(rng.UniformInt(int64_t{3}, int64_t{8}));
    std::vector<WorkerIndex> pool(12);
    for (int i = 0; i < 12; ++i) pool[static_cast<size_t>(i)] = i;
    rng.Shuffle(pool);
    pool.resize(static_cast<size_t>(size));
    for (const WorkerIndex i : pool) {
      const double avg =
          instance.coop().RowSum(i, pool) / (size - 1);
      EXPECT_LE(avg, WorkerQualityUpperBound(instance, i) + 1e-12);
      EXPECT_GE(avg, WorkerQualityLowerBound(instance, i) - 1e-12);
    }
  }
}

TEST(UpperBoundTest, TaskBoundZeroWithoutEnoughCandidates) {
  const Instance instance =
      AllValidInstance(2, 1, 3, 3, CooperationMatrix(2, 0.5));
  std::vector<double> bounds(2, 1.0);
  EXPECT_DOUBLE_EQ(TaskUpperBound(instance, 0, bounds), 0.0);
}

TEST(UpperBoundTest, TaskBoundSumsTopCapacityCeilings) {
  const Instance instance =
      AllValidInstance(5, 1, 3, 2, CooperationMatrix(5, 0.5));
  const std::vector<double> bounds = {0.1, 0.9, 0.5, 0.7, 0.3};
  // Top 3 of the ceilings: 0.9 + 0.7 + 0.5.
  EXPECT_NEAR(TaskUpperBound(instance, 0, bounds), 2.1, 1e-12);
}

class UpperBoundPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(UpperBoundPropertyTest, DominatesAllHeuristics) {
  const Instance instance = RandomInstance(60, 20, GetParam());
  const double upper = ComputeUpperBound(instance);
  TpgAssigner tpg;
  GtAssigner gt;
  MaxFlowAssigner mflow;
  for (Assigner* assigner : std::vector<Assigner*>{&tpg, &gt, &mflow}) {
    EXPECT_LE(TotalScore(instance, assigner->Run(instance)), upper + 1e-9)
        << assigner->Name();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UpperBoundPropertyTest,
                         ::testing::Values(61u, 62u, 63u, 64u, 65u));

TEST(UpperBoundTest, CoCandidateScopeIsTighterButStillSound) {
  for (uint64_t seed = 201; seed <= 206; ++seed) {
    const Instance instance = RandomInstance(60, 20, seed);
    const double literal =
        ComputeUpperBound(instance, UpperBoundScope::kAllWorkers);
    const double scoped =
        ComputeUpperBound(instance, UpperBoundScope::kCoCandidates);
    EXPECT_LE(scoped, literal + 1e-9) << "seed " << seed;
    // Soundness: the tighter bound still dominates achieved scores.
    GtAssigner gt;
    EXPECT_LE(TotalScore(instance, gt.Run(instance)), scoped + 1e-9)
        << "seed " << seed;
  }
}

TEST(UpperBoundTest, CoCandidateScopeDominatesExactOptimum) {
  for (uint64_t seed = 301; seed <= 306; ++seed) {
    const Instance instance = RandomInstance(9, 3, seed);
    const double scoped =
        ComputeUpperBound(instance, UpperBoundScope::kCoCandidates);
    ExactAssigner exact;
    EXPECT_LE(TotalScore(instance, exact.Run(instance)), scoped + 1e-9)
        << "seed " << seed;
  }
}

TEST(UpperBoundTest, IsolatedWorkerHasZeroCoCandidateCeiling) {
  // A worker with no valid tasks has no co-candidates, hence ceiling 0
  // under the scoped bound (it can never be in a feasible group).
  std::vector<Worker> workers = {
      Worker{0, {0.0, 0.0}, 0.001, 0.01, 0.0},  // isolated
      Worker{1, {0.5, 0.5}, 1.0, 1.0, 0.0},
      Worker{2, {0.5, 0.5}, 1.0, 1.0, 0.0},
      Worker{3, {0.5, 0.5}, 1.0, 1.0, 0.0}};
  std::vector<Task> tasks = {Task{0, {0.5, 0.5}, 0.0, 9.0, 3}};
  Instance instance(std::move(workers), std::move(tasks),
                    CooperationMatrix(4, 0.9), 0.0, 3);
  instance.ComputeValidPairs();
  EXPECT_DOUBLE_EQ(
      WorkerQualityUpperBound(instance, 0, UpperBoundScope::kCoCandidates),
      0.0);
  EXPECT_GT(
      WorkerQualityUpperBound(instance, 0, UpperBoundScope::kAllWorkers),
      0.0);
  EXPECT_GT(
      WorkerQualityUpperBound(instance, 1, UpperBoundScope::kCoCandidates),
      0.0);
}

TEST(UpperBoundTest, PoaLowerBoundIsSane) {
  const Instance instance = RandomInstance(30, 10, 333);
  const double poa = PriceOfAnarchyLowerBound(instance, 5);
  EXPECT_GE(poa, 0.0);
}

TEST(UpperBoundTest, EmptyInstanceBoundIsZero) {
  const Instance instance =
      AllValidInstance(0, 0, 3, 3, CooperationMatrix(0));
  EXPECT_DOUBLE_EQ(ComputeUpperBound(instance), 0.0);
}

}  // namespace
}  // namespace casc
