#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "algo/tpg_assigner.h"
#include "common/rng.h"
#include "gen/synthetic.h"
#include "model/objective.h"
#include "model/score_keeper.h"

namespace casc {
namespace {

Instance RandomInstance(int m, int n, uint64_t seed) {
  Rng rng(seed);
  SyntheticInstanceConfig config;
  config.num_workers = m;
  config.num_tasks = n;
  config.worker.radius_min = 0.2;
  config.worker.radius_max = 0.4;
  config.worker.speed_min = 0.05;
  config.worker.speed_max = 0.15;
  return GenerateSyntheticInstance(config, 0.0, &rng);
}

TEST(ScoreKeeperTest, EmptyKeeperScoresZero) {
  const Instance instance = RandomInstance(10, 4, 1);
  const ScoreKeeper keeper(instance);
  EXPECT_DOUBLE_EQ(keeper.TotalScore(), 0.0);
  for (TaskIndex t = 0; t < instance.num_tasks(); ++t) {
    EXPECT_DOUBLE_EQ(keeper.TaskScore(t), 0.0);
    EXPECT_TRUE(keeper.GroupOf(t).empty());
  }
}

TEST(ScoreKeeperTest, AddRemoveMatchesGroupScore) {
  const Instance instance = RandomInstance(12, 3, 2);
  Assignment mirror(instance);
  ScoreKeeper keeper(instance, mirror);
  keeper.Add(0, 0);
  mirror.Assign(0, 0);
  keeper.Add(1, 0);
  mirror.Assign(1, 0);
  keeper.Add(2, 0);
  mirror.Assign(2, 0);
  EXPECT_NEAR(keeper.TaskScore(0), GroupScore(instance, 0, {0, 1, 2}),
              1e-12);
  keeper.Remove(1, 0);
  mirror.Unassign(1);
  EXPECT_NEAR(keeper.TaskScore(0), GroupScore(instance, 0, {0, 2}), 1e-12);
  EXPECT_NEAR(keeper.TotalScore(), keeper.TaskScore(0), 1e-12);
}

TEST(ScoreKeeperTest, SyncMatchesTotalScore) {
  const Instance instance = RandomInstance(60, 20, 3);
  TpgAssigner tpg;
  const Assignment assignment = tpg.Run(instance);
  ScoreKeeper keeper(instance);
  keeper.Sync(assignment);
  EXPECT_NEAR(keeper.TotalScore(), TotalScore(instance, assignment), 1e-9);
  for (TaskIndex t = 0; t < instance.num_tasks(); ++t) {
    EXPECT_NEAR(keeper.TaskScore(t),
                GroupScore(instance, t, assignment.GroupOf(t)), 1e-9);
  }
}

TEST(ScoreKeeperTest, WhatIfQueriesDoNotMutate) {
  const Instance instance = RandomInstance(12, 3, 4);
  Assignment mirror(instance);
  ScoreKeeper keeper(instance, mirror);
  keeper.Add(0, 0);
  mirror.Assign(0, 0);
  keeper.Add(1, 0);
  mirror.Assign(1, 0);
  const double before = keeper.TotalScore();

  const double if_added = keeper.ScoreIfAdded(2, 0);
  EXPECT_DOUBLE_EQ(keeper.TotalScore(), before);
  keeper.Add(2, 0);
  mirror.Assign(2, 0);
  EXPECT_NEAR(keeper.TotalScore(), if_added, 1e-12);

  const double if_removed = keeper.ScoreIfRemoved(1, 0);
  keeper.Remove(1, 0);
  mirror.Unassign(1);
  EXPECT_NEAR(keeper.TotalScore(), if_removed, 1e-12);
}

TEST(ScoreKeeperTest, MarginalsMatchScratchObjective) {
  const Instance instance = RandomInstance(12, 3, 5);
  Assignment mirror(instance);
  ScoreKeeper keeper(instance, mirror);
  keeper.Add(0, 0);
  mirror.Assign(0, 0);
  keeper.Add(1, 0);
  mirror.Assign(1, 0);
  keeper.Add(2, 0);
  mirror.Assign(2, 0);

  const std::vector<WorkerIndex> group = {0, 1, 2};
  EXPECT_NEAR(keeper.GainIfJoined(3, 0),
              GainOfJoining(instance, 0, group, 3), 1e-12);
  EXPECT_NEAR(keeper.LossIfLeft(1, 0),
              MarginalOfMember(instance, 0, group, 1), 1e-12);
  // Marginals are pure what-ifs.
  EXPECT_NEAR(keeper.TaskScore(0), GroupScore(instance, 0, group), 1e-12);
}

// The delta path must track the from-scratch objective through long
// random mutation sequences: after every step, GainIfJoined/LossIfLeft
// for random probes must match the rebuilt-group marginals to 1e-9.
class ScoreKeeperMarginalFuzzTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ScoreKeeperMarginalFuzzTest, MarginalsTrackScratchUnderChurn) {
  const Instance instance = RandomInstance(30, 10, GetParam() ^ 0xA11);
  Assignment mirror(instance);
  ScoreKeeper keeper(instance, mirror);
  Rng rng(GetParam() ^ 0x717);

  for (int step = 0; step < 250; ++step) {
    const WorkerIndex w = static_cast<WorkerIndex>(
        rng.UniformInt(static_cast<uint64_t>(instance.num_workers())));
    const TaskIndex current = mirror.TaskOf(w);
    if (current != kNoTask) {
      keeper.Remove(w, current);
      mirror.Unassign(w);
    } else {
      const TaskIndex t = static_cast<TaskIndex>(
          rng.UniformInt(static_cast<uint64_t>(instance.num_tasks())));
      if (mirror.GroupSize(t) <
          instance.tasks()[static_cast<size_t>(t)].capacity) {
        keeper.Add(w, t);
        mirror.Assign(w, t);
      }
    }

    // Probe a random join and a random leave against scratch rebuilds.
    const TaskIndex probe_task = static_cast<TaskIndex>(
        rng.UniformInt(static_cast<uint64_t>(instance.num_tasks())));
    const std::span<const WorkerIndex> group = mirror.GroupOf(probe_task);
    const WorkerIndex joiner = static_cast<WorkerIndex>(
        rng.UniformInt(static_cast<uint64_t>(instance.num_workers())));
    if (mirror.TaskOf(joiner) != probe_task &&
        static_cast<int>(group.size()) <
            instance.tasks()[static_cast<size_t>(probe_task)].capacity) {
      EXPECT_NEAR(keeper.GainIfJoined(joiner, probe_task),
                  GainOfJoining(instance, probe_task, group, joiner), 1e-9)
          << "step " << step;
    }
    if (!group.empty()) {
      const WorkerIndex leaver = group[static_cast<size_t>(
          rng.UniformInt(static_cast<uint64_t>(group.size())))];
      EXPECT_NEAR(keeper.LossIfLeft(leaver, probe_task),
                  MarginalOfMember(instance, probe_task, group, leaver),
                  1e-9)
          << "step " << step;
    }
  }
  EXPECT_NEAR(keeper.TotalScore(), TotalScore(instance, mirror), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScoreKeeperMarginalFuzzTest,
                         ::testing::Values(1u, 2u, 3u, 4u));

class ScoreKeeperFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ScoreKeeperFuzzTest, RandomMutationSequencesTrackRecompute) {
  const Instance instance = RandomInstance(30, 10, GetParam());
  Assignment mirror(instance);
  ScoreKeeper keeper(instance, mirror);
  Rng rng(GetParam() ^ 0x5C0);

  for (int step = 0; step < 400; ++step) {
    const WorkerIndex w = static_cast<WorkerIndex>(
        rng.UniformInt(static_cast<uint64_t>(instance.num_workers())));
    const TaskIndex current = mirror.TaskOf(w);
    if (current != kNoTask) {
      keeper.Remove(w, current);
      mirror.Unassign(w);
      continue;
    }
    // Join a random task with spare capacity (validity is irrelevant to
    // the arithmetic being tested).
    const TaskIndex t = static_cast<TaskIndex>(
        rng.UniformInt(static_cast<uint64_t>(instance.num_tasks())));
    if (mirror.GroupSize(t) >=
        instance.tasks()[static_cast<size_t>(t)].capacity) {
      continue;
    }
    keeper.Add(w, t);
    mirror.Assign(w, t);
  }
  EXPECT_NEAR(keeper.TotalScore(), TotalScore(instance, mirror), 1e-9);
  for (TaskIndex t = 0; t < instance.num_tasks(); ++t) {
    EXPECT_NEAR(keeper.TaskScore(t),
                GroupScore(instance, t, mirror.GroupOf(t)), 1e-9)
        << "task " << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScoreKeeperFuzzTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

}  // namespace
}  // namespace casc
