#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "gen/synthetic.h"
#include "model/assignment.h"
#include "model/batch_workspace.h"
#include "model/group_store.h"
#include "model/instance.h"
#include "model/valid_pair_index.h"

namespace casc {
namespace {

// ---------------------------------------------------------------------------
// ValidPairIndex: CSR build protocol
// ---------------------------------------------------------------------------

TEST(ValidPairIndexTest, BuildsBothDirections) {
  ValidPairIndex index;
  index.BeginBuild(3, 2);
  index.AppendValidTask(0);  // worker 0 -> {0, 1}
  index.AppendValidTask(1);
  index.FinishWorker();
  index.FinishWorker();      // worker 1 -> {}
  index.AppendValidTask(1);  // worker 2 -> {1}
  index.FinishWorker();
  index.FinishBuild();

  ASSERT_TRUE(index.ready());
  EXPECT_EQ(index.num_workers(), 3);
  EXPECT_EQ(index.num_tasks(), 2);
  EXPECT_EQ(index.NumValidPairs(), 3u);

  const auto tasks_of = [&](WorkerIndex w) {
    const std::span<const TaskIndex> s = index.ValidTasks(w);
    return std::vector<TaskIndex>(s.begin(), s.end());
  };
  const auto candidates_of = [&](TaskIndex t) {
    const std::span<const WorkerIndex> s = index.Candidates(t);
    return std::vector<WorkerIndex>(s.begin(), s.end());
  };
  EXPECT_EQ(tasks_of(0), (std::vector<TaskIndex>{0, 1}));
  EXPECT_EQ(tasks_of(1), (std::vector<TaskIndex>{}));
  EXPECT_EQ(tasks_of(2), (std::vector<TaskIndex>{1}));
  EXPECT_EQ(candidates_of(0), (std::vector<WorkerIndex>{0}));
  EXPECT_EQ(candidates_of(1), (std::vector<WorkerIndex>{0, 2}));
}

TEST(ValidPairIndexTest, ClearKeepsCapacityAndAllowsRebuild) {
  ValidPairIndex index;
  index.BeginBuild(2, 2);
  index.AppendValidTask(0);
  index.FinishWorker();
  index.AppendValidTask(0);
  index.AppendValidTask(1);
  index.FinishWorker();
  index.FinishBuild();
  index.Clear();
  EXPECT_FALSE(index.ready());

  const int64_t before = ValidPairIndex::TotalReallocs();
  index.BeginBuild(2, 2);  // same shape, fewer pairs: no growth allowed
  index.FinishWorker();
  index.AppendValidTask(1);
  index.FinishWorker();
  index.FinishBuild();
  EXPECT_EQ(ValidPairIndex::TotalReallocs(), before);
  EXPECT_EQ(index.NumValidPairs(), 1u);
  const std::span<const WorkerIndex> c1 = index.Candidates(1);
  EXPECT_EQ(std::vector<WorkerIndex>(c1.begin(), c1.end()),
            (std::vector<WorkerIndex>{1}));
}

// ---------------------------------------------------------------------------
// GroupStore: slab layout and order preservation
// ---------------------------------------------------------------------------

TEST(GroupStoreTest, PushEraseKeepsInsertionOrder) {
  GroupStore store;
  const std::vector<int> capacities = {3, 2};
  store.Reset(capacities, /*slack=*/1);
  ASSERT_EQ(store.num_groups(), 2);

  store.PushBack(0, 7);
  store.PushBack(0, 4);
  store.PushBack(0, 9);
  store.PushBack(1, 2);
  store.Erase(0, 4);  // shift-erase: 9 moves left, order {7, 9}

  const std::span<const WorkerIndex> g0 = store.Group(0);
  EXPECT_EQ(std::vector<WorkerIndex>(g0.begin(), g0.end()),
            (std::vector<WorkerIndex>{7, 9}));
  EXPECT_EQ(store.size(1), 1);

  store.ClearGroups();
  EXPECT_EQ(store.size(0), 0);
  EXPECT_EQ(store.size(1), 0);
}

TEST(GroupStoreTest, SlackSlotAbsorbsTransientOverfill) {
  GroupStore store;
  const std::vector<int> capacities = {1};
  store.Reset(capacities, /*slack=*/1);
  store.PushBack(0, 0);
  store.PushBack(0, 1);  // capacity + 1: the GT crowding probe
  EXPECT_EQ(store.size(0), 2);
  store.Erase(0, 0);
  const std::span<const WorkerIndex> g = store.Group(0);
  EXPECT_EQ(std::vector<WorkerIndex>(g.begin(), g.end()),
            (std::vector<WorkerIndex>{1}));
}

// ---------------------------------------------------------------------------
// Differential fuzz: slab-backed Assignment vs reference nested vectors
// ---------------------------------------------------------------------------

/// The pre-refactor representation, kept as an executable specification:
/// per-worker task plus nested per-task groups with push_back insertion
/// and order-preserving erase.
class ReferenceAssignment {
 public:
  explicit ReferenceAssignment(const Instance& instance)
      : task_of_(static_cast<size_t>(instance.num_workers()), kNoTask),
        groups_(static_cast<size_t>(instance.num_tasks())) {}

  void Assign(WorkerIndex w, TaskIndex t) {
    if (task_of_[static_cast<size_t>(w)] == t) return;
    Unassign(w);
    task_of_[static_cast<size_t>(w)] = t;
    groups_[static_cast<size_t>(t)].push_back(w);
  }

  void Unassign(WorkerIndex w) {
    const TaskIndex t = task_of_[static_cast<size_t>(w)];
    if (t == kNoTask) return;
    std::vector<WorkerIndex>& group = groups_[static_cast<size_t>(t)];
    group.erase(std::find(group.begin(), group.end(), w));
    task_of_[static_cast<size_t>(w)] = kNoTask;
  }

  void Reset(const Instance& instance) {
    task_of_.assign(static_cast<size_t>(instance.num_workers()), kNoTask);
    groups_.assign(static_cast<size_t>(instance.num_tasks()), {});
  }

  TaskIndex TaskOf(WorkerIndex w) const {
    return task_of_[static_cast<size_t>(w)];
  }
  const std::vector<WorkerIndex>& GroupOf(TaskIndex t) const {
    return groups_[static_cast<size_t>(t)];
  }

  int NumAssigned() const {
    int count = 0;
    for (const TaskIndex t : task_of_) count += (t != kNoTask) ? 1 : 0;
    return count;
  }

  std::vector<AssignedPair> Pairs() const {
    std::vector<AssignedPair> pairs;
    for (TaskIndex t = 0; t < static_cast<int>(groups_.size()); ++t) {
      for (const WorkerIndex w : groups_[static_cast<size_t>(t)]) {
        pairs.push_back({w, t});
      }
    }
    return pairs;
  }

 private:
  std::vector<TaskIndex> task_of_;
  std::vector<std::vector<WorkerIndex>> groups_;
};

void ExpectSameState(const Instance& instance, const Assignment& actual,
                     const ReferenceAssignment& expected) {
  ASSERT_EQ(actual.NumAssigned(), expected.NumAssigned());
  for (WorkerIndex w = 0; w < instance.num_workers(); ++w) {
    ASSERT_EQ(actual.TaskOf(w), expected.TaskOf(w)) << "worker " << w;
  }
  for (TaskIndex t = 0; t < instance.num_tasks(); ++t) {
    const std::span<const WorkerIndex> group = actual.GroupOf(t);
    ASSERT_EQ(std::vector<WorkerIndex>(group.begin(), group.end()),
              expected.GroupOf(t))
        << "task " << t;
    ASSERT_EQ(actual.GroupSize(t),
              static_cast<int>(expected.GroupOf(t).size()));
  }
  ASSERT_EQ(actual.Pairs(), expected.Pairs());
  // ForEachPair must visit exactly the Pairs() sequence.
  std::vector<AssignedPair> visited;
  actual.ForEachPair(
      [&](WorkerIndex w, TaskIndex t) { visited.push_back({w, t}); });
  ASSERT_EQ(visited, expected.Pairs());
}

class AssignmentFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AssignmentFuzzTest, MatchesReferenceUnderRandomChurn) {
  Rng rng(GetParam());
  SyntheticInstanceConfig config;
  config.num_workers = 40;
  config.num_tasks = 12;
  config.task.capacity = 3;
  Instance instance = GenerateSyntheticInstance(config, 0.0, &rng);

  Assignment actual(instance);
  ReferenceAssignment expected(instance);

  for (int step = 0; step < 3000; ++step) {
    const int op = static_cast<int>(rng.UniformInt(0, 99));
    if (op < 55) {
      // Assign a random worker to a random task; skip when the slab is at
      // its hard limit (capacity + slack), which mutators never exceed.
      const WorkerIndex w =
          static_cast<WorkerIndex>(rng.UniformInt(0, instance.num_workers() - 1));
      const TaskIndex t =
          static_cast<TaskIndex>(rng.UniformInt(0, instance.num_tasks() - 1));
      const int limit =
          instance.tasks()[static_cast<size_t>(t)].capacity + 1;
      if (actual.TaskOf(w) != t && actual.GroupSize(t) >= limit) continue;
      actual.Assign(w, t);
      expected.Assign(w, t);
    } else if (op < 90) {
      const WorkerIndex w =
          static_cast<WorkerIndex>(rng.UniformInt(0, instance.num_workers() - 1));
      actual.Unassign(w);
      expected.Unassign(w);
    } else if (op < 99) {
      // Re-assign an already-busy worker (exercises the detach path).
      const WorkerIndex w =
          static_cast<WorkerIndex>(rng.UniformInt(0, instance.num_workers() - 1));
      if (actual.TaskOf(w) == kNoTask) continue;
      const TaskIndex t =
          static_cast<TaskIndex>(rng.UniformInt(0, instance.num_tasks() - 1));
      const int limit =
          instance.tasks()[static_cast<size_t>(t)].capacity + 1;
      if (actual.TaskOf(w) != t && actual.GroupSize(t) >= limit) continue;
      actual.Assign(w, t);
      expected.Assign(w, t);
    } else {
      // Batch reset, as the streaming loop does between rounds.
      actual.Reset(instance);
      expected.Reset(instance);
    }
    if (step % 97 == 0 || step + 1 == 3000) {
      ExpectSameState(instance, actual, expected);
      // Validate() verdicts agree with a scratch check of the reference:
      // same pairs => same verdict, so it must accept iff all reference
      // pairs are valid and within capacity.
      bool reference_ok = true;
      for (const AssignedPair& pair : expected.Pairs()) {
        if (!instance.IsValidPair(pair.worker, pair.task)) {
          reference_ok = false;
        }
      }
      for (TaskIndex t = 0; t < instance.num_tasks(); ++t) {
        if (static_cast<int>(expected.GroupOf(t).size()) >
            instance.tasks()[static_cast<size_t>(t)].capacity) {
          reference_ok = false;
        }
      }
      ASSERT_EQ(actual.Validate(instance).ok(), reference_ok)
          << "step " << step;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AssignmentFuzzTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// ---------------------------------------------------------------------------
// Spatial backend agreement (satellite: selectable backend)
// ---------------------------------------------------------------------------

struct BackendCase {
  std::string name;
  int workers;
  int tasks;
  uint64_t seed;
};

class BackendAgreementTest : public ::testing::TestWithParam<BackendCase> {};

TEST_P(BackendAgreementTest, AllBackendsProduceIdenticalPairSets) {
  const BackendCase& param = GetParam();
  const auto make = [&]() {
    Rng rng(param.seed);
    SyntheticInstanceConfig config;
    config.num_workers = param.workers;
    config.num_tasks = param.tasks;
    return GenerateSyntheticInstance(config, 0.0, &rng);
  };

  Instance rtree = make();
  Instance grid = make();
  Instance linear = make();
  // The generator computes pairs with the process default; rebuild each
  // copy from scratch with an explicit backend.
  rtree.ReleaseValidPairs();
  grid.ReleaseValidPairs();
  linear.ReleaseValidPairs();
  rtree.ComputeValidPairs(SpatialBackend::kRTree);
  grid.ComputeValidPairs(SpatialBackend::kGridIndex);
  linear.ComputeValidPairs(SpatialBackend::kLinearScan);

  ASSERT_EQ(rtree.NumValidPairs(), linear.NumValidPairs());
  ASSERT_EQ(grid.NumValidPairs(), linear.NumValidPairs());
  for (WorkerIndex w = 0; w < linear.num_workers(); ++w) {
    const std::span<const TaskIndex> expected = linear.ValidTasks(w);
    const std::vector<TaskIndex> want(expected.begin(), expected.end());
    const std::span<const TaskIndex> from_rtree = rtree.ValidTasks(w);
    const std::span<const TaskIndex> from_grid = grid.ValidTasks(w);
    EXPECT_EQ(std::vector<TaskIndex>(from_rtree.begin(), from_rtree.end()),
              want)
        << "rtree, worker " << w;
    EXPECT_EQ(std::vector<TaskIndex>(from_grid.begin(), from_grid.end()),
              want)
        << "grid, worker " << w;
  }
  for (TaskIndex t = 0; t < linear.num_tasks(); ++t) {
    const std::span<const WorkerIndex> expected = linear.Candidates(t);
    const std::vector<WorkerIndex> want(expected.begin(), expected.end());
    const std::span<const WorkerIndex> from_rtree = rtree.Candidates(t);
    const std::span<const WorkerIndex> from_grid = grid.Candidates(t);
    EXPECT_EQ(
        std::vector<WorkerIndex>(from_rtree.begin(), from_rtree.end()),
        want)
        << "rtree, task " << t;
    EXPECT_EQ(std::vector<WorkerIndex>(from_grid.begin(), from_grid.end()),
              want)
        << "grid, task " << t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomInstances, BackendAgreementTest,
    ::testing::Values(BackendCase{"tiny", 6, 4, 11},
                      BackendCase{"small", 40, 15, 12},
                      BackendCase{"medium", 200, 80, 13},
                      BackendCase{"wide", 60, 240, 14}),
    [](const ::testing::TestParamInfo<BackendCase>& info) {
      return info.param.name;
    });

// ---------------------------------------------------------------------------
// Workspace reuse: steady-state streaming allocates nothing in the
// group store / pair index backing arrays
// ---------------------------------------------------------------------------

TEST(BatchWorkspaceTest, SteadyStateStreamingDoesNotGrowBackingArrays) {
  SyntheticInstanceConfig config;
  config.num_workers = 120;
  config.num_tasks = 40;
  BatchWorkspace workspace;

  // A template batch: the generator builds its own pair index outside the
  // workspace, so each streamed batch is constructed from the raw
  // workers/tasks and computes its pairs through the pooled CSR index —
  // exactly what DispatchService::Run does per batch.
  Rng rng(100);
  const Instance seed_batch = GenerateSyntheticInstance(config, 0.0, &rng);

  const auto run_batch = [&]() {
    Instance instance(seed_batch.workers(), seed_batch.tasks(),
                      seed_batch.coop(), seed_batch.now(),
                      seed_batch.min_group_size());
    instance.ComputeValidPairs(DefaultSpatialBackend(), &workspace);
    Assignment assignment = workspace.AcquireAssignment(instance);
    for (WorkerIndex w = 0; w < instance.num_workers(); ++w) {
      for (const TaskIndex t : instance.ValidTasks(w)) {
        if (assignment.GroupSize(t) <
            instance.tasks()[static_cast<size_t>(t)].capacity) {
          assignment.Assign(w, t);
          break;
        }
      }
    }
    workspace.Recycle(std::move(assignment));
    workspace.Recycle(instance.ReleaseValidPairs());
  };

  // Warm-up batches size every pooled buffer; same-shape batches after
  // that must not move either process-wide realloc counter.
  run_batch();
  run_batch();
  const int64_t group_reallocs = GroupStore::TotalReallocs();
  const int64_t pair_reallocs = ValidPairIndex::TotalReallocs();
  for (int round = 0; round < 8; ++round) run_batch();
  EXPECT_EQ(GroupStore::TotalReallocs(), group_reallocs);
  EXPECT_EQ(ValidPairIndex::TotalReallocs(), pair_reallocs);
}

TEST(BatchWorkspaceTest, AcquiredAssignmentIsEmptyAndShaped) {
  Rng rng(55);
  SyntheticInstanceConfig config;
  config.num_workers = 10;
  config.num_tasks = 4;
  Instance instance = GenerateSyntheticInstance(config, 0.0, &rng);

  BatchWorkspace workspace;
  Assignment first = workspace.AcquireAssignment(instance);
  first.Assign(0, 0);
  first.Assign(1, 0);
  workspace.Recycle(std::move(first));

  Assignment second = workspace.AcquireAssignment(instance);
  EXPECT_EQ(second.NumAssigned(), 0);
  EXPECT_EQ(second.num_workers(), instance.num_workers());
  EXPECT_EQ(second.num_tasks(), instance.num_tasks());
  EXPECT_EQ(second.TaskOf(0), kNoTask);
  EXPECT_TRUE(second.GroupOf(0).empty());
}

}  // namespace
}  // namespace casc
