#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "gen/synthetic.h"
#include "kernel/affinity_kernels.h"
#include "kernel/coop_tile.h"
#include "kernel/kernel_dispatch.h"
#include "model/batch_workspace.h"
#include "model/cooperation_matrix.h"
#include "model/score_keeper.h"

namespace casc {
namespace {

constexpr KernelBackend kAllBackends[] = {
    KernelBackend::kScalar, KernelBackend::kSse2, KernelBackend::kAvx2};

/// Runs `fn` once per available backend with that backend active, then
/// restores the entry backend. The differential contract under test:
/// every backend returns the same bits.
template <typename Fn>
void ForEachAvailableBackend(Fn&& fn) {
  const KernelBackend entry = ActiveKernelBackend();
  for (const KernelBackend backend : kAllBackends) {
    if (!KernelBackendAvailable(backend)) continue;
    SetKernelBackend(backend);
    fn(backend);
  }
  SetKernelBackend(entry);
}

CooperationMatrix RandomDenseMatrix(int m, uint64_t seed) {
  Rng rng(seed);
  CooperationMatrix coop(m, 0.0);
  for (int i = 0; i < m; ++i) {
    for (int k = 0; k < m; ++k) {
      if (i == k) continue;
      coop.SetQuality(i, k, rng.Uniform());
    }
  }
  return coop;
}

Instance RandomInstance(int workers, int tasks, uint64_t seed,
                        int capacity = 4, int min_group = 3) {
  Rng rng(seed);
  SyntheticInstanceConfig config;
  config.num_workers = workers;
  config.num_tasks = tasks;
  config.task.capacity = capacity;
  config.min_group_size = min_group;
  config.worker.radius_min = 0.25;
  config.worker.radius_max = 0.50;
  config.worker.speed_min = 0.05;
  config.worker.speed_max = 0.15;
  return GenerateSyntheticInstance(config, 0.0, &rng);
}

/// Greedily fills a feasible assignment: each worker joins its first
/// valid task still below capacity.
Assignment GreedyAssignment(const Instance& instance) {
  Assignment assignment(instance);
  for (WorkerIndex w = 0; w < instance.num_workers(); ++w) {
    for (const TaskIndex t : instance.ValidTasks(w)) {
      const int capacity = instance.tasks()[static_cast<size_t>(t)].capacity;
      if (assignment.GroupSize(t) < capacity) {
        assignment.Assign(w, t);
        break;
      }
    }
  }
  return assignment;
}

// ---------------------------------------------------------------------------
// Dispatch plumbing
// ---------------------------------------------------------------------------

TEST(KernelDispatchTest, ScalarAlwaysAvailable) {
  EXPECT_TRUE(KernelBackendAvailable(KernelBackend::kScalar));
  EXPECT_STREQ(KernelBackendName(KernelBackend::kScalar), "scalar");
  EXPECT_STREQ(KernelBackendName(KernelBackend::kSse2), "sse2");
  EXPECT_STREQ(KernelBackendName(KernelBackend::kAvx2), "avx2");
}

TEST(KernelDispatchTest, SetBackendSticks) {
  const KernelBackend entry = ActiveKernelBackend();
  EXPECT_TRUE(KernelBackendAvailable(entry));
  SetKernelBackend(KernelBackend::kScalar);
  EXPECT_EQ(ActiveKernelBackend(), KernelBackend::kScalar);
  SetKernelBackend(entry);
  EXPECT_EQ(ActiveKernelBackend(), entry);
}

// ---------------------------------------------------------------------------
// Raw kernels: every backend returns the scalar backend's exact bits.
// ---------------------------------------------------------------------------

TEST(AffinityKernelsTest, RowSumBitIdenticalAcrossBackends) {
  Rng rng(11);
  std::vector<double> row(64);
  for (double& v : row) v = rng.Uniform();
  for (int count = 0; count <= 33; ++count) {
    std::vector<int> idx;
    for (int j = 0; j < count; ++j) {
      idx.push_back(static_cast<int>(
          rng.UniformInt(static_cast<uint64_t>(row.size()))));
    }
    SetKernelBackend(KernelBackend::kScalar);
    const double reference = RowSumKernel(row.data(), idx.data(), count);
    ForEachAvailableBackend([&](KernelBackend backend) {
      const double got = RowSumKernel(row.data(), idx.data(), count);
      EXPECT_EQ(got, reference)
          << "count=" << count << " backend=" << KernelBackendName(backend);
    });
  }
}

TEST(AffinityKernelsTest, PairSumBitIdenticalAcrossBackends) {
  Rng rng(12);
  constexpr int kWorkers = 24;
  constexpr int64_t kStride = 24;
  std::vector<double> tile(kWorkers * kStride, 0.0);
  for (int i = 0; i < kWorkers; ++i) {
    for (int k = 0; k < kWorkers; ++k) {
      if (i != k) tile[i * kStride + k] = rng.Uniform();
    }
  }
  for (int count = 0; count <= 12; ++count) {
    std::vector<int> idx;
    for (int j = 0; j < count; ++j) {
      idx.push_back(static_cast<int>(
          rng.UniformInt(static_cast<uint64_t>(kWorkers))));
    }
    SetKernelBackend(KernelBackend::kScalar);
    const double reference =
        PairSumKernel(tile.data(), kStride, idx.data(), count);
    ForEachAvailableBackend([&](KernelBackend backend) {
      const double got =
          PairSumKernel(tile.data(), kStride, idx.data(), count);
      EXPECT_EQ(got, reference)
          << "count=" << count << " backend=" << KernelBackendName(backend);
    });
  }
}

TEST(AffinityKernelsTest, RowSumManyMatchesSingleCalls) {
  Rng rng(13);
  std::vector<double> row(48);
  for (double& v : row) v = rng.Uniform();
  std::vector<std::vector<int>> groups;
  for (int g = 0; g < 9; ++g) {
    std::vector<int> group;
    for (int j = 0; j < g; ++j) {
      group.push_back(static_cast<int>(
          rng.UniformInt(static_cast<uint64_t>(row.size()))));
    }
    groups.push_back(std::move(group));
  }
  std::vector<const int*> ptrs;
  std::vector<int> lens;
  for (const auto& group : groups) {
    ptrs.push_back(group.data());
    lens.push_back(static_cast<int>(group.size()));
  }
  ForEachAvailableBackend([&](KernelBackend backend) {
    std::vector<double> out(groups.size(), -1.0);
    RowSumMany(row.data(), ptrs.data(), lens.data(),
               static_cast<int>(groups.size()), out.data());
    for (size_t g = 0; g < groups.size(); ++g) {
      EXPECT_EQ(out[g], RowSumKernel(row.data(), ptrs[g], lens[g]))
          << "group=" << g << " backend=" << KernelBackendName(backend);
    }
  });
}

TEST(AffinityKernelsTest, RowSumFloatUpBitIdenticalAcrossBackends) {
  Rng rng(14);
  std::vector<float> row(64);
  for (float& v : row) v = FloatUp(rng.Uniform());
  for (int count = 0; count <= 21; ++count) {
    std::vector<int> idx;
    for (int j = 0; j < count; ++j) {
      idx.push_back(static_cast<int>(
          rng.UniformInt(static_cast<uint64_t>(row.size()))));
    }
    SetKernelBackend(KernelBackend::kScalar);
    const double reference = RowSumFloatUp(row.data(), idx.data(), count);
    ForEachAvailableBackend([&](KernelBackend backend) {
      const double got = RowSumFloatUp(row.data(), idx.data(), count);
      EXPECT_EQ(got, reference)
          << "count=" << count << " backend=" << KernelBackendName(backend);
    });
  }
}

TEST(AffinityKernelsTest, FloatUpNeverBelowSource) {
  Rng rng(15);
  for (int trial = 0; trial < 10000; ++trial) {
    const double d = rng.Uniform() * 2.0;
    const float f = FloatUp(d);
    EXPECT_GE(static_cast<double>(f), d);
  }
  EXPECT_EQ(FloatUp(0.0), 0.0f);
  EXPECT_EQ(FloatUp(1.0), 1.0f);
  EXPECT_EQ(FloatUp(2.0), 2.0f);
}

// ---------------------------------------------------------------------------
// CoopTile planes
// ---------------------------------------------------------------------------

void ExpectTileMatches(const CooperationMatrix& coop, const CoopTile& tile) {
  const int m = coop.num_workers();
  ASSERT_TRUE(tile.built());
  ASSERT_EQ(tile.num_workers(), m);
  EXPECT_EQ(tile.source_identity(), coop.IdentityHash());
  EXPECT_EQ(tile.stride() % 8, 0);
  EXPECT_GE(tile.stride(), m);
  for (int i = 0; i < m; ++i) {
    const double* pair = tile.PairRow(i);
    const float* bound = tile.BoundRow(i);
    for (int k = 0; k < m; ++k) {
      const double exact =
          i == k ? 0.0 : coop.Quality(i, k) + coop.Quality(k, i);
      EXPECT_EQ(pair[k], exact) << "i=" << i << " k=" << k;
      EXPECT_GE(static_cast<double>(bound[k]), exact);
      // Row-max ticks dominate every pair bound in the row.
      EXPECT_GE(std::ldexp(static_cast<double>(tile.PrmTicks(i)), -32),
                static_cast<double>(bound[k]));
    }
    // Stride padding must stay zero so blind kernel reads are harmless.
    for (int64_t k = m; k < tile.stride(); ++k) {
      EXPECT_EQ(pair[k], 0.0);
    }
  }
}

TEST(CoopTileTest, DenseMatrixPlanes) {
  const CooperationMatrix coop = RandomDenseMatrix(20, 21);
  CoopTile tile;
  ASSERT_TRUE(tile.BuildFrom(coop, 2048));
  ExpectTileMatches(coop, tile);
}

TEST(CoopTileTest, ViewMatrixPlanes) {
  const CooperationMatrix base = RandomDenseMatrix(24, 22);
  const CooperationMatrix view = base.View({7, 3, 19, 0, 11, 23, 5});
  CoopTile tile;
  ASSERT_TRUE(tile.BuildFrom(view, 2048));
  ExpectTileMatches(view, tile);
}

TEST(CoopTileTest, ProceduralMatrixPlanes) {
  const CooperationMatrix coop = CooperationMatrix::Procedural(30, 99);
  CoopTile tile;
  ASSERT_TRUE(tile.BuildFrom(coop, 2048));
  ExpectTileMatches(coop, tile);
}

TEST(CoopTileTest, WorkerCeilingGatesBuild) {
  const CooperationMatrix coop = RandomDenseMatrix(16, 23);
  CoopTile tile;
  ASSERT_TRUE(tile.BuildFrom(coop, 16));
  EXPECT_TRUE(tile.built());
  EXPECT_FALSE(tile.BuildFrom(coop, 15));
  EXPECT_FALSE(tile.built());
}

TEST(CoopTileTest, IdentityHashTracksMutation) {
  CooperationMatrix coop = RandomDenseMatrix(12, 24);
  const uint64_t before = coop.IdentityHash();
  EXPECT_EQ(coop.IdentityHash(), before) << "hash must be stable";
  coop.SetQuality(3, 4, 0.123);
  EXPECT_NE(coop.IdentityHash(), before);
  const CooperationMatrix view = coop.View({0, 1, 2});
  EXPECT_NE(view.IdentityHash(), coop.IdentityHash());
}

// ---------------------------------------------------------------------------
// ScoreKeeper: tile path == matrix path, bit for bit, on every backend.
// ---------------------------------------------------------------------------

TEST(ScoreKeeperTileTest, TileParityOnRandomInstances) {
  for (const uint64_t seed : {1ull, 2ull, 3ull}) {
    const Instance instance = RandomInstance(60, 20, seed);
    const Assignment assignment = GreedyAssignment(instance);
    const ScoreKeeper plain(instance, assignment);

    CoopTile tile;
    ASSERT_TRUE(tile.BuildFrom(instance.coop(), 2048));

    ForEachAvailableBackend([&](KernelBackend backend) {
      ScoreKeeper tiled(instance);
      tiled.AttachTile(&tile);
      tiled.Sync(assignment);
      EXPECT_EQ(tiled.TotalScore(), plain.TotalScore())
          << KernelBackendName(backend);
      for (TaskIndex t = 0; t < instance.num_tasks(); ++t) {
        EXPECT_EQ(tiled.TaskScore(t), plain.TaskScore(t));
        EXPECT_EQ(tiled.TaskPairSum(t), plain.TaskPairSum(t));
      }
      for (WorkerIndex w = 0; w < instance.num_workers(); ++w) {
        std::vector<TaskIndex> candidates;
        for (const TaskIndex t : instance.ValidTasks(w)) {
          const int capacity =
              instance.tasks()[static_cast<size_t>(t)].capacity;
          if (assignment.TaskOf(w) == t) continue;
          if (assignment.GroupSize(t) >= capacity) continue;
          candidates.push_back(t);
          EXPECT_EQ(tiled.GainIfJoined(w, t), plain.GainIfJoined(w, t))
              << "w=" << w << " t=" << t << " "
              << KernelBackendName(backend);
        }
        if (!candidates.empty()) {
          std::vector<double> batched(candidates.size(), -1.0);
          tiled.GainsIfJoined(w, candidates, batched.data());
          for (size_t i = 0; i < candidates.size(); ++i) {
            EXPECT_EQ(batched[i], plain.GainIfJoined(w, candidates[i]));
          }
        }
        const TaskIndex current = assignment.TaskOf(w);
        if (current != kNoTask) {
          EXPECT_EQ(tiled.LossIfLeft(w, current),
                    plain.LossIfLeft(w, current));
        }
      }
    });
  }
}

TEST(ScoreKeeperTileTest, JoinBoundDominatesExactGain) {
  for (const uint64_t seed : {5ull, 6ull}) {
    const Instance instance = RandomInstance(70, 25, seed);
    const Assignment assignment = GreedyAssignment(instance);

    CoopTile tile;
    ASSERT_TRUE(tile.BuildFrom(instance.coop(), 2048));
    ScoreKeeper tiled(instance);
    tiled.AttachTile(&tile);
    tiled.Sync(assignment);
    const ScoreKeeper plain(instance, assignment);

    for (WorkerIndex w = 0; w < instance.num_workers(); ++w) {
      for (const TaskIndex t : instance.ValidTasks(w)) {
        const int capacity =
            instance.tasks()[static_cast<size_t>(t)].capacity;
        if (assignment.TaskOf(w) == t) continue;
        if (assignment.GroupSize(t) >= capacity) continue;
        EXPECT_GE(tiled.JoinBound(w, t), tiled.GainIfJoined(w, t))
            << "tile bound below exact gain, w=" << w << " t=" << t;
        EXPECT_GE(plain.JoinBound(w, t), plain.GainIfJoined(w, t))
            << "matrix bound below exact gain, w=" << w << " t=" << t;
      }
    }
  }
}

TEST(ScoreKeeperTileTest, BoundTicksSurviveMutationChurn) {
  const Instance instance = RandomInstance(40, 15, 7);
  Assignment assignment(instance);
  CoopTile tile;
  ASSERT_TRUE(tile.BuildFrom(instance.coop(), 2048));
  ScoreKeeper keeper(instance);
  keeper.AttachTile(&tile);
  keeper.Sync(assignment);

  // Churn: every worker joins then leaves then rejoins its first valid
  // task. Integer tick arithmetic must come back to the same bounds a
  // fresh Sync computes.
  Rng rng(8);
  for (WorkerIndex w = 0; w < instance.num_workers(); ++w) {
    const auto& valid = instance.ValidTasks(w);
    if (valid.empty()) continue;
    const TaskIndex t = valid[static_cast<size_t>(
        rng.UniformInt(static_cast<uint64_t>(valid.size())))];
    const int capacity = instance.tasks()[static_cast<size_t>(t)].capacity;
    if (assignment.GroupSize(t) >= capacity) continue;
    assignment.Assign(w, t);
    keeper.Add(w, t);
    assignment.Unassign(w);
    keeper.Remove(w, t);
    assignment.Assign(w, t);
    keeper.Add(w, t);
  }
  ScoreKeeper fresh(instance);
  fresh.AttachTile(&tile);
  fresh.Sync(assignment);
  for (WorkerIndex w = 0; w < instance.num_workers(); ++w) {
    for (const TaskIndex t : instance.ValidTasks(w)) {
      const int capacity =
          instance.tasks()[static_cast<size_t>(t)].capacity;
      if (assignment.TaskOf(w) == t) continue;
      if (assignment.GroupSize(t) >= capacity) continue;
      EXPECT_EQ(keeper.JoinBound(w, t), fresh.JoinBound(w, t));
    }
  }
}

// ---------------------------------------------------------------------------
// BatchWorkspace tile pooling
// ---------------------------------------------------------------------------

TEST(BatchWorkspaceTileTest, CachesByMatrixIdentity) {
  const Instance a = RandomInstance(30, 10, 31);
  const Instance b = RandomInstance(30, 10, 32);
  BatchWorkspace workspace;

  const CoopTile* tile_a = workspace.PrepareCoopTile(a);
  ASSERT_NE(tile_a, nullptr);
  EXPECT_TRUE(tile_a->built());
  EXPECT_EQ(tile_a->source_identity(), a.coop().IdentityHash());

  // Same matrix again: cache hit, same pointer, same build.
  const uint64_t identity_a = tile_a->source_identity();
  const CoopTile* again = workspace.PrepareCoopTile(a);
  EXPECT_EQ(again, tile_a);
  EXPECT_EQ(again->source_identity(), identity_a);

  // Different matrix: rebuilt in place for the new identity.
  const CoopTile* tile_b = workspace.PrepareCoopTile(b);
  ASSERT_NE(tile_b, nullptr);
  EXPECT_EQ(tile_b->source_identity(), b.coop().IdentityHash());
  EXPECT_NE(tile_b->source_identity(), identity_a);
  ExpectTileMatches(b.coop(), *tile_b);
}

}  // namespace
}  // namespace casc
