#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.h"
#include "geo/point.h"
#include "geo/rect.h"
#include "geo/reachability.h"

namespace casc {
namespace {

// ---------------------------------------------------------------------------
// Point
// ---------------------------------------------------------------------------

TEST(PointTest, DistanceBasics) {
  EXPECT_DOUBLE_EQ(Distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(Distance({1, 1}, {1, 1}), 0.0);
}

TEST(PointTest, DistanceIsSymmetric) {
  const Point a{0.2, 0.9}, b{0.7, 0.1};
  EXPECT_DOUBLE_EQ(Distance(a, b), Distance(b, a));
}

TEST(PointTest, SquaredDistanceMatchesDistance) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const Point a{rng.Uniform(), rng.Uniform()};
    const Point b{rng.Uniform(), rng.Uniform()};
    EXPECT_NEAR(SquaredDistance(a, b), Distance(a, b) * Distance(a, b),
                1e-12);
  }
}

TEST(PointTest, TriangleInequality) {
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    const Point a{rng.Uniform(), rng.Uniform()};
    const Point b{rng.Uniform(), rng.Uniform()};
    const Point c{rng.Uniform(), rng.Uniform()};
    EXPECT_LE(Distance(a, c), Distance(a, b) + Distance(b, c) + 1e-12);
  }
}

TEST(PointTest, EqualityOperators) {
  EXPECT_EQ((Point{0.5, 0.5}), (Point{0.5, 0.5}));
  EXPECT_NE((Point{0.5, 0.5}), (Point{0.5, 0.6}));
}

TEST(PointTest, ClampToUnitSquare) {
  EXPECT_EQ(ClampToUnitSquare({-0.5, 1.5}), (Point{0.0, 1.0}));
  EXPECT_EQ(ClampToUnitSquare({0.3, 0.7}), (Point{0.3, 0.7}));
}

TEST(PointTest, ToStringRendersCoordinates) {
  const std::string text = ToString(Point{0.25, 0.75});
  EXPECT_NE(text.find("0.25"), std::string::npos);
  EXPECT_NE(text.find("0.75"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Rect
// ---------------------------------------------------------------------------

TEST(RectTest, EmptyBehaviour) {
  const Rect empty = Rect::Empty();
  EXPECT_TRUE(empty.IsEmpty());
  EXPECT_DOUBLE_EQ(empty.Area(), 0.0);
  EXPECT_FALSE(empty.Contains(Point{0.5, 0.5}));
  EXPECT_FALSE(empty.Intersects(empty));
}

TEST(RectTest, FromPointIsDegenerate) {
  const Rect r = Rect::FromPoint({0.3, 0.4});
  EXPECT_FALSE(r.IsEmpty());
  EXPECT_TRUE(r.Contains(Point{0.3, 0.4}));
  EXPECT_DOUBLE_EQ(r.Area(), 0.0);
}

TEST(RectTest, FromCircleBounds) {
  const Rect r = Rect::FromCircle({0.5, 0.5}, 0.2);
  EXPECT_DOUBLE_EQ(r.min_x, 0.3);
  EXPECT_DOUBLE_EQ(r.max_y, 0.7);
  EXPECT_TRUE(r.Contains(Point{0.5, 0.69}));
}

TEST(RectTest, ContainsBoundaryInclusive) {
  const Rect r{0.0, 0.0, 1.0, 1.0};
  EXPECT_TRUE(r.Contains(Point{0.0, 0.0}));
  EXPECT_TRUE(r.Contains(Point{1.0, 1.0}));
  EXPECT_FALSE(r.Contains(Point{1.0001, 0.5}));
}

TEST(RectTest, ContainsRect) {
  const Rect outer{0.0, 0.0, 1.0, 1.0};
  const Rect inner{0.2, 0.2, 0.8, 0.8};
  EXPECT_TRUE(outer.Contains(inner));
  EXPECT_FALSE(inner.Contains(outer));
  EXPECT_TRUE(outer.Contains(Rect::Empty()));
}

TEST(RectTest, IntersectsCases) {
  const Rect a{0.0, 0.0, 0.5, 0.5};
  const Rect b{0.4, 0.4, 1.0, 1.0};
  const Rect c{0.6, 0.6, 1.0, 1.0};
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_TRUE(b.Intersects(a));
  EXPECT_FALSE(a.Intersects(c));
  // Touching edges count as intersecting.
  const Rect d{0.5, 0.0, 1.0, 0.5};
  EXPECT_TRUE(a.Intersects(d));
}

TEST(RectTest, UnionAndEnlargement) {
  const Rect a{0.0, 0.0, 0.5, 0.5};
  const Rect b{0.5, 0.5, 1.0, 1.0};
  const Rect u = a.Union(b);
  EXPECT_DOUBLE_EQ(u.Area(), 1.0);
  EXPECT_DOUBLE_EQ(a.Enlargement(b), 1.0 - 0.25);
}

TEST(RectTest, ExtendFromEmpty) {
  Rect r = Rect::Empty();
  r.Extend(Point{0.3, 0.6});
  EXPECT_TRUE(r.Contains(Point{0.3, 0.6}));
  r.Extend(Point{0.8, 0.1});
  EXPECT_TRUE(r.Contains(Point{0.3, 0.6}));
  EXPECT_TRUE(r.Contains(Point{0.8, 0.1}));
  EXPECT_TRUE(r.Contains(Point{0.5, 0.3}));
}

TEST(RectTest, MarginIsHalfPerimeter) {
  const Rect r{0.0, 0.0, 0.4, 0.2};
  EXPECT_NEAR(r.Margin(), 0.6, 1e-12);
}

TEST(RectTest, MinSquaredDistance) {
  const Rect r{0.0, 0.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(r.MinSquaredDistance(Point{0.5, 0.5}), 0.0);
  EXPECT_DOUBLE_EQ(r.MinSquaredDistance(Point{2.0, 0.5}), 1.0);
  EXPECT_DOUBLE_EQ(r.MinSquaredDistance(Point{2.0, 2.0}), 2.0);
}

TEST(RectTest, CenterOfBox) {
  const Rect r{0.0, 0.2, 1.0, 0.8};
  EXPECT_EQ(r.Center(), (Point{0.5, 0.5}));
}

// ---------------------------------------------------------------------------
// Reachability (Definition 3)
// ---------------------------------------------------------------------------

TEST(ReachabilityTest, InWorkingAreaBoundaryInclusive) {
  EXPECT_TRUE(InWorkingArea({0, 0}, 1.0, {1.0, 0.0}));
  EXPECT_TRUE(InWorkingArea({0, 0}, 1.0, {0.6, 0.6}));
  EXPECT_FALSE(InWorkingArea({0, 0}, 1.0, {0.8, 0.8}));
}

TEST(ReachabilityTest, NegativeRadiusRejectsEverything) {
  EXPECT_FALSE(InWorkingArea({0, 0}, -0.1, {0, 0}));
}

TEST(ReachabilityTest, ZeroRadiusOnlySelf) {
  EXPECT_TRUE(InWorkingArea({0.5, 0.5}, 0.0, {0.5, 0.5}));
  EXPECT_FALSE(InWorkingArea({0.5, 0.5}, 0.0, {0.5001, 0.5}));
}

TEST(ReachabilityTest, ArrivalTimeFormula) {
  // Distance 0.3 at speed 0.1 starting at t=2 -> arrival 5.
  EXPECT_NEAR(ArrivalTime({0.0, 0.0}, 0.1, {0.3, 0.0}, 2.0), 5.0, 1e-12);
}

TEST(ReachabilityTest, ZeroSpeedCannotMove) {
  EXPECT_TRUE(std::isinf(ArrivalTime({0, 0}, 0.0, {0.1, 0}, 0.0)));
  // ... but is already at its own location.
  EXPECT_DOUBLE_EQ(ArrivalTime({0.2, 0.2}, 0.0, {0.2, 0.2}, 7.0), 7.0);
}

TEST(ReachabilityTest, DeadlineBoundaryInclusive) {
  // Needs exactly 3 time units; deadline is now + 3.
  EXPECT_TRUE(CanArriveByDeadline({0, 0}, 0.1, {0.3, 0}, 1.0, 4.0));
  EXPECT_FALSE(CanArriveByDeadline({0, 0}, 0.1, {0.3, 0}, 1.0, 3.999));
}

TEST(ReachabilityTest, FasterWorkerReachesFurther) {
  const Point target{0.5, 0.0};
  EXPECT_FALSE(CanArriveByDeadline({0, 0}, 0.1, target, 0.0, 3.0));
  EXPECT_TRUE(CanArriveByDeadline({0, 0}, 0.2, target, 0.0, 3.0));
}

TEST(ReachabilityTest, PastDeadlineUnreachable) {
  EXPECT_FALSE(CanArriveByDeadline({0, 0}, 1.0, {0.1, 0}, 5.0, 4.0));
}

}  // namespace
}  // namespace casc
