#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "algo/best_response.h"
#include "algo/gt_assigner.h"
#include "algo/tpg_assigner.h"
#include "common/rng.h"
#include "gen/synthetic.h"
#include "model/objective.h"

namespace casc {
namespace {

Instance AllValidInstance(int num_workers, int num_tasks, int capacity,
                          int min_group, CooperationMatrix coop) {
  std::vector<Worker> workers;
  for (int i = 0; i < num_workers; ++i) {
    workers.push_back(Worker{i, {0.5, 0.5}, 1.0, 1.0, 0.0});
  }
  std::vector<Task> tasks;
  for (int j = 0; j < num_tasks; ++j) {
    tasks.push_back(Task{j, {0.5, 0.5}, 0.0, 10.0, capacity});
  }
  Instance instance(std::move(workers), std::move(tasks), std::move(coop),
                    0.0, min_group);
  instance.ComputeValidPairs();
  return instance;
}

Instance RandomInstance(int workers, int tasks, uint64_t seed,
                        int capacity = 4, int min_group = 3) {
  Rng rng(seed);
  SyntheticInstanceConfig config;
  config.num_workers = workers;
  config.num_tasks = tasks;
  config.task.capacity = capacity;
  config.min_group_size = min_group;
  // Wider reach than the paper defaults so small test instances are
  // combinatorially dense (every worker has several valid tasks and the
  // best-response dynamic actually iterates).
  config.worker.radius_min = 0.25;
  config.worker.radius_max = 0.50;
  config.worker.speed_min = 0.05;
  config.worker.speed_max = 0.15;
  return GenerateSyntheticInstance(config, 0.0, &rng);
}

// ---------------------------------------------------------------------------
// StrategyUtility (Equation 5)
// ---------------------------------------------------------------------------

TEST(StrategyUtilityTest, IdleIsZero) {
  const Instance instance =
      AllValidInstance(4, 2, 3, 2, CooperationMatrix(4, 0.5));
  const Assignment assignment(instance);
  EXPECT_DOUBLE_EQ(
      StrategyUtility(instance, assignment, 0, kNoTask, nullptr), 0.0);
}

TEST(StrategyUtilityTest, EqualsMarginalForMembers) {
  const Instance instance =
      AllValidInstance(5, 2, 4, 2, CooperationMatrix(5, 0.5));
  Assignment assignment(instance);
  assignment.Assign(0, 0);
  assignment.Assign(1, 0);
  assignment.Assign(2, 0);
  const double utility = StrategyUtility(instance, assignment, 1, 0, nullptr);
  EXPECT_NEAR(utility,
              MarginalOfMember(instance, 0, assignment.GroupOf(0), 1),
              1e-12);
}

TEST(StrategyUtilityTest, JoiningFullTaskCrowdsOutWorstFit) {
  CooperationMatrix coop(4);
  coop.SetSymmetric(0, 1, 0.9);
  coop.SetSymmetric(0, 2, 0.1);  // worker 2 is the weak link
  coop.SetSymmetric(1, 2, 0.1);
  coop.SetSymmetric(0, 3, 0.9);
  coop.SetSymmetric(1, 3, 0.9);
  const Instance instance = AllValidInstance(4, 1, 3, 2, std::move(coop));
  Assignment assignment(instance);
  assignment.Assign(0, 0);
  assignment.Assign(1, 0);
  assignment.Assign(2, 0);  // task full at capacity 3
  WorkerIndex crowded = kNoWorker;
  const double utility = StrategyUtility(instance, assignment, 3, 0, &crowded);
  EXPECT_EQ(crowded, 2);
  EXPECT_GT(utility, 0.0);
}

TEST(StrategyUtilityTest, WeakJoinerIsItselfCrowdedOut) {
  CooperationMatrix coop(4);
  coop.SetSymmetric(0, 1, 0.9);
  coop.SetSymmetric(0, 2, 0.9);
  coop.SetSymmetric(1, 2, 0.9);
  // Worker 3 cooperates with nobody and tries to join the full triangle.
  const Instance instance = AllValidInstance(4, 1, 3, 2, std::move(coop));
  Assignment assignment(instance);
  assignment.Assign(0, 0);
  assignment.Assign(1, 0);
  assignment.Assign(2, 0);
  WorkerIndex crowded = kNoWorker;
  const double utility = StrategyUtility(instance, assignment, 3, 0, &crowded);
  EXPECT_EQ(crowded, 3);
  EXPECT_DOUBLE_EQ(utility, 0.0);
}

// ---------------------------------------------------------------------------
// ApplyMove
// ---------------------------------------------------------------------------

TEST(ApplyMoveTest, SimpleMoveUpdatesGroups) {
  const Instance instance =
      AllValidInstance(3, 2, 3, 2, CooperationMatrix(3, 0.5));
  Assignment assignment(instance);
  assignment.Assign(0, 0);
  const MoveResult result = ApplyMove(instance, &assignment, 0, 1);
  EXPECT_EQ(result.from, 0);
  EXPECT_EQ(result.crowded_out, kNoWorker);
  EXPECT_EQ(assignment.TaskOf(0), 1);
}

TEST(ApplyMoveTest, MoveToIdle) {
  const Instance instance =
      AllValidInstance(3, 2, 3, 2, CooperationMatrix(3, 0.5));
  Assignment assignment(instance);
  assignment.Assign(0, 0);
  const MoveResult result = ApplyMove(instance, &assignment, 0, kNoTask);
  EXPECT_EQ(result.from, 0);
  EXPECT_EQ(assignment.TaskOf(0), kNoTask);
}

TEST(ApplyMoveTest, OverflowEvictsBestSubsetLoser) {
  CooperationMatrix coop(3);
  coop.SetSymmetric(0, 1, 0.1);
  coop.SetSymmetric(0, 2, 0.9);  // newcomer 2 pairs well with 0
  const Instance instance = AllValidInstance(3, 1, 2, 2, std::move(coop));
  Assignment assignment(instance);
  assignment.Assign(0, 0);
  assignment.Assign(1, 0);  // full at capacity 2
  const MoveResult result = ApplyMove(instance, &assignment, 2, 0);
  EXPECT_EQ(result.crowded_out, 1);
  EXPECT_EQ(assignment.TaskOf(1), kNoTask);
  EXPECT_EQ(assignment.GroupSize(0), 2);
  EXPECT_TRUE(assignment.Validate(instance).ok());
}

// ---------------------------------------------------------------------------
// Nash equilibrium & potential game (Theorem V.1)
// ---------------------------------------------------------------------------

class GtSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GtSeedTest, ReachesVerifiedNashEquilibrium) {
  const Instance instance = RandomInstance(90, 30, GetParam());
  GtAssigner gt;
  const Assignment assignment = gt.Run(instance);
  ASSERT_TRUE(assignment.Validate(instance).ok());
  EXPECT_TRUE(gt.stats().converged);
  EXPECT_TRUE(IsNashEquilibrium(instance, assignment, 1e-9));
}

TEST_P(GtSeedTest, NeverScoresBelowItsTpgInitialization) {
  const Instance instance = RandomInstance(90, 30, GetParam() ^ 0xBEEF);
  GtAssigner gt;
  const Assignment assignment = gt.Run(instance);
  EXPECT_GE(TotalScore(instance, assignment) + 1e-9, gt.stats().init_score);
}

TEST_P(GtSeedTest, ExactPotentialProperty) {
  // Theorem V.1: for any unilateral deviation, the change in the deviating
  // worker's utility equals the change in the global objective Q(T).
  const Instance instance = RandomInstance(40, 15, GetParam() ^ 0xCAFE);
  TpgAssigner tpg;
  Assignment assignment = tpg.Run(instance);

  Rng rng(GetParam());
  int checked = 0;
  for (int trial = 0; trial < 200 && checked < 50; ++trial) {
    const WorkerIndex w = static_cast<WorkerIndex>(
        rng.UniformInt(static_cast<uint64_t>(instance.num_workers())));
    const auto& valid = instance.ValidTasks(w);
    if (valid.empty()) continue;
    const TaskIndex target =
        valid[rng.UniformInt(static_cast<uint64_t>(valid.size()))];
    const TaskIndex current = assignment.TaskOf(w);
    if (target == current) continue;
    // Skip crowding deviations: they also change the evicted worker's
    // strategy, so they are not unilateral in the potential-game sense.
    if (assignment.GroupSize(target) >=
        instance.tasks()[static_cast<size_t>(target)].capacity) {
      continue;
    }

    const double utility_before =
        StrategyUtility(instance, assignment, w, current, nullptr);
    const double utility_after =
        StrategyUtility(instance, assignment, w, target, nullptr);
    const double potential_before = TotalScore(instance, assignment);
    ApplyMove(instance, &assignment, w, target);
    const double potential_after = TotalScore(instance, assignment);

    EXPECT_NEAR(utility_after - utility_before,
                potential_after - potential_before, 1e-9)
        << "worker " << w << " -> task " << target;
    ++checked;
  }
  EXPECT_GT(checked, 10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GtSeedTest,
                         ::testing::Values(11u, 12u, 13u, 14u, 15u, 16u));

TEST(GtTest, SolvesPaperExampleOne) {
  CooperationMatrix coop(4);
  coop.SetSymmetric(0, 3, 0.9);
  coop.SetSymmetric(1, 2, 0.9);
  coop.SetSymmetric(0, 1, 0.1);
  coop.SetSymmetric(2, 3, 0.1);
  const Instance instance = AllValidInstance(4, 2, 2, 2, std::move(coop));
  GtAssigner gt;
  const Assignment assignment = gt.Run(instance);
  EXPECT_NEAR(TotalScore(instance, assignment), 3.6, 1e-9);
  EXPECT_TRUE(IsNashEquilibrium(instance, assignment, 1e-9));
}

TEST(GtTest, EscapesGreedyLocalOptimum) {
  // TPG grabs the globally best pair for one task, stranding value; GT's
  // best-response dynamic must not end below TPG (and reaches Nash).
  const Instance instance = RandomInstance(60, 20, 777);
  TpgAssigner tpg;
  GtAssigner gt;
  const double tpg_score = TotalScore(instance, tpg.Run(instance));
  const double gt_score = TotalScore(instance, gt.Run(instance));
  EXPECT_GE(gt_score + 1e-9, tpg_score);
}

TEST(GtTest, EmptyInstance) {
  const Instance instance =
      AllValidInstance(0, 0, 3, 3, CooperationMatrix(0));
  GtAssigner gt;
  EXPECT_EQ(gt.Run(instance).NumAssigned(), 0);
  EXPECT_TRUE(gt.stats().converged);
}

TEST(GtTest, RoundScoreTrajectoryIsMonotoneNonDecreasing) {
  const Instance instance = RandomInstance(100, 35, 888);
  GtAssigner gt;
  gt.Run(instance);
  const auto& trace = gt.stats().round_scores;
  ASSERT_GE(trace.size(), 1u);
  double previous = gt.stats().init_score;
  for (const double score : trace) {
    EXPECT_GE(score + 1e-9, previous);
    previous = score;
  }
  EXPECT_NEAR(trace.back(), gt.stats().final_score, 1e-9);
}

TEST(GtTest, NameReflectsOptions) {
  EXPECT_EQ(GtAssigner(GtOptions{}).Name(), "GT");
  GtOptions tsi;
  tsi.use_tsi = true;
  EXPECT_EQ(GtAssigner(tsi).Name(), "GT+TSI");
  GtOptions lub;
  lub.use_lub = true;
  EXPECT_EQ(GtAssigner(lub).Name(), "GT+LUB");
  GtOptions all;
  all.use_tsi = all.use_lub = true;
  EXPECT_EQ(GtAssigner(all).Name(), "GT+ALL");
}

// ---------------------------------------------------------------------------
// LUB: lazy best-response updates (Theorems V.3/V.4)
// ---------------------------------------------------------------------------

class LubSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LubSeedTest, LubReachesNashToo) {
  const Instance instance = RandomInstance(90, 30, GetParam());
  GtOptions options;
  options.use_lub = true;
  GtAssigner gt(options);
  const Assignment assignment = gt.Run(instance);
  EXPECT_TRUE(gt.stats().converged);
  EXPECT_TRUE(IsNashEquilibrium(instance, assignment, 1e-9));
  EXPECT_TRUE(assignment.Validate(instance).ok());
}

TEST_P(LubSeedTest, LubSkipsWorkButNotQuality) {
  const Instance instance = RandomInstance(150, 50, GetParam() ^ 0x50B);
  GtAssigner plain;
  GtOptions options;
  options.use_lub = true;
  GtAssigner lazy(options);
  const double plain_score = TotalScore(instance, plain.Run(instance));
  const double lazy_score = TotalScore(instance, lazy.Run(instance));
  // Both are Nash equilibria of the same game seeded identically; the
  // trajectories may differ, so scores can differ slightly — but LUB must
  // stay within a whisker of plain GT.
  EXPECT_NEAR(lazy_score, plain_score, 0.05 * plain_score + 1e-9);
  EXPECT_GT(lazy.stats().best_response_skips, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LubSeedTest,
                         ::testing::Values(21u, 22u, 23u, 24u));

// ---------------------------------------------------------------------------
// TSI: threshold stop (Section V-D)
// ---------------------------------------------------------------------------

TEST(TsiTest, ZeroEpsilonMatchesPlainGt) {
  const Instance instance = RandomInstance(80, 25, 5150);
  GtAssigner plain;
  GtOptions options;
  options.use_tsi = true;
  options.epsilon = 0.0;
  GtAssigner tsi(options);
  const double plain_score = TotalScore(instance, plain.Run(instance));
  const double tsi_score = TotalScore(instance, tsi.Run(instance));
  EXPECT_NEAR(tsi_score, plain_score, 1e-9);
  EXPECT_TRUE(tsi.stats().converged);
}

TEST(TsiTest, LargeEpsilonStopsAfterFirstRound) {
  const Instance instance = RandomInstance(120, 40, 5151);
  GtOptions options;
  options.use_tsi = true;
  options.epsilon = 0.9;  // any round below 90% improvement stops
  GtAssigner tsi(options);
  tsi.Run(instance);
  EXPECT_EQ(tsi.stats().rounds, 1);
}

TEST(TsiTest, NeverBelowInitialization) {
  const Instance instance = RandomInstance(100, 30, 5152);
  for (const double epsilon : {0.0, 0.01, 0.03, 0.05, 0.08, 0.5}) {
    GtOptions options;
    options.use_tsi = true;
    options.epsilon = epsilon;
    GtAssigner tsi(options);
    const Assignment assignment = tsi.Run(instance);
    EXPECT_GE(TotalScore(instance, assignment) + 1e-9,
              tsi.stats().init_score)
        << "epsilon " << epsilon;
  }
}

TEST(TsiTest, EpsilonMonotonicallyCheapens) {
  const Instance instance = RandomInstance(100, 30, 5153);
  int previous_rounds = 1 << 30;
  for (const double epsilon : {0.0, 0.05, 0.9}) {
    GtOptions options;
    options.use_tsi = true;
    options.epsilon = epsilon;
    GtAssigner tsi(options);
    tsi.Run(instance);
    EXPECT_LE(tsi.stats().rounds, previous_rounds) << "eps " << epsilon;
    previous_rounds = tsi.stats().rounds;
  }
}

// ---------------------------------------------------------------------------
// Initialization ablation
// ---------------------------------------------------------------------------

TEST(GtInitTest, EmptyAssignmentIsATrivialNashEquilibriumForBAtLeastTwo) {
  // A structural fact the paper's Algorithm 3 design depends on: with
  // B >= 2, no single worker can cross the B-threshold alone, so every
  // unilateral deviation from the empty assignment has utility 0 — the
  // empty assignment is already a (worthless) pure Nash equilibrium.
  // This is exactly why GT must be seeded with TPG (line 1).
  const Instance instance = RandomInstance(70, 25, 31337);
  const Assignment empty(instance);
  EXPECT_TRUE(IsNashEquilibrium(instance, empty, 1e-9));

  GtOptions options;
  options.init = GtInit::kEmpty;
  GtAssigner gt(options);
  const Assignment assignment = gt.Run(instance);
  EXPECT_TRUE(gt.stats().converged);
  EXPECT_EQ(gt.stats().moves, 0);
  EXPECT_DOUBLE_EQ(TotalScore(instance, assignment), 0.0);
}

// ---------------------------------------------------------------------------
// Processing order (unspecified by the paper; convergence must hold for
// any order)
// ---------------------------------------------------------------------------

TEST(GtOrderTest, ShuffledOrderStillReachesNash) {
  const Instance instance = RandomInstance(80, 30, 606);
  for (const uint64_t order_seed : {1u, 2u, 3u}) {
    GtOptions options;
    options.order = GtOrder::kShuffled;
    options.order_seed = order_seed;
    GtAssigner gt(options);
    const Assignment assignment = gt.Run(instance);
    EXPECT_TRUE(gt.stats().converged) << "order seed " << order_seed;
    EXPECT_TRUE(IsNashEquilibrium(instance, assignment, 1e-9));
    EXPECT_TRUE(assignment.Validate(instance).ok());
  }
}

TEST(GtOrderTest, ShuffledOrderIsSeedDeterministic) {
  const Instance instance = RandomInstance(60, 20, 607);
  GtOptions options;
  options.order = GtOrder::kShuffled;
  options.order_seed = 42;
  GtAssigner a(options), b(options);
  EXPECT_EQ(a.Run(instance).Pairs(), b.Run(instance).Pairs());
}

TEST(GtOrderTest, DifferentOrdersMayReachDifferentEquilibriaOfSimilarQuality) {
  const Instance instance = RandomInstance(120, 40, 608);
  GtAssigner index_order;
  GtOptions options;
  options.order = GtOrder::kShuffled;
  options.order_seed = 9;
  GtAssigner shuffled(options);
  const double score_index = TotalScore(instance, index_order.Run(instance));
  const double score_shuffled = TotalScore(instance, shuffled.Run(instance));
  // Both are equilibria above the same TPG warm start; quality gap small.
  EXPECT_NEAR(score_index, score_shuffled, 0.05 * score_index);
}

TEST(GtInitTest, RandomInitializationReachesNash) {
  const Instance instance = RandomInstance(70, 25, 609);
  GtOptions options;
  options.init = GtInit::kRandom;
  options.init_seed = 5;
  GtAssigner gt(options);
  const Assignment assignment = gt.Run(instance);
  EXPECT_TRUE(gt.stats().converged);
  EXPECT_TRUE(IsNashEquilibrium(instance, assignment, 1e-9));
  EXPECT_GT(TotalScore(instance, assignment), 0.0);
  EXPECT_TRUE(assignment.Validate(instance).ok());
}

TEST(GtInitTest, RandomInitializationIsSeedDeterministic) {
  const Instance instance = RandomInstance(50, 18, 610);
  GtOptions options;
  options.init = GtInit::kRandom;
  options.init_seed = 77;
  GtAssigner a(options), b(options);
  EXPECT_EQ(a.Run(instance).Pairs(), b.Run(instance).Pairs());
}

TEST(GtInitTest, TpgInitializationEscapesTheTrivialEquilibrium) {
  const Instance instance = RandomInstance(150, 50, 31338);
  GtAssigner with_init;
  GtOptions options;
  options.init = GtInit::kEmpty;
  GtAssigner without_init(options);
  const double with_score = TotalScore(instance, with_init.Run(instance));
  const double without_score =
      TotalScore(instance, without_init.Run(instance));
  EXPECT_GT(with_score, 0.0);
  EXPECT_DOUBLE_EQ(without_score, 0.0);
}

}  // namespace
}  // namespace casc
