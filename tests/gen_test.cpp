#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "gen/distributions.h"
#include "gen/meetup_like.h"
#include "gen/synthetic.h"
#include "gen/trace.h"
#include "gen/workload.h"

namespace casc {
namespace {

// ---------------------------------------------------------------------------
// Distributions
// ---------------------------------------------------------------------------

TEST(DistributionsTest, UniformLocationsCoverTheSquare) {
  Rng rng(1);
  SpatialGenConfig config;
  double min_x = 1.0, max_x = 0.0;
  for (int i = 0; i < 5000; ++i) {
    const Point p = SampleLocation(config, &rng);
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 1.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 1.0);
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
  }
  EXPECT_LT(min_x, 0.05);
  EXPECT_GT(max_x, 0.95);
}

TEST(DistributionsTest, SkewedLocationsClusterAtCenter) {
  Rng rng(2);
  SpatialGenConfig config;
  config.distribution = LocationDistribution::kSkewed;
  int near_center = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    const Point p = SampleLocation(config, &rng);
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 1.0);
    if (Distance(p, {0.5, 0.5}) < 0.3) ++near_center;
  }
  // 80% cluster with sigma 0.2: the 0.3-disk holds roughly
  // 0.8 * P(|N(0,0.2^2)| joint within) + uniform share — far more than
  // the ~26% a uniform distribution would give.
  EXPECT_GT(near_center, n / 2);
}

TEST(DistributionsTest, RangeGaussianStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double v = SampleRangeGaussian(0.01, 0.05, &rng);
    EXPECT_GE(v, 0.01);
    EXPECT_LE(v, 0.05);
  }
}

TEST(DistributionsTest, RangeGaussianCentersOnMidpoint) {
  Rng rng(4);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += SampleRangeGaussian(0.0, 1.0, &rng);
  // The truncated Gaussian is symmetric around the midpoint 0.5.
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(DistributionsTest, DegenerateRangeIsConstant) {
  Rng rng(5);
  EXPECT_DOUBLE_EQ(SampleRangeGaussian(0.3, 0.3, &rng), 0.3);
}

// ---------------------------------------------------------------------------
// Synthetic instances
// ---------------------------------------------------------------------------

TEST(SyntheticTest, WorkerFieldsWithinConfiguredRanges) {
  Rng rng(6);
  WorkerGenConfig config;
  config.speed_min = 0.01;
  config.speed_max = 0.03;
  config.radius_min = 0.05;
  config.radius_max = 0.10;
  for (int i = 0; i < 500; ++i) {
    const Worker worker = GenerateWorker(i, config, 2.5, &rng);
    EXPECT_EQ(worker.id, i);
    EXPECT_GE(worker.speed, 0.01);
    EXPECT_LE(worker.speed, 0.03);
    EXPECT_GE(worker.radius, 0.05);
    EXPECT_LE(worker.radius, 0.10);
    EXPECT_DOUBLE_EQ(worker.arrival_time, 2.5);
  }
}

TEST(SyntheticTest, TaskDeadlineIsCreationPlusRemaining) {
  Rng rng(7);
  TaskGenConfig config;
  config.remaining_time = 4.0;
  config.capacity = 5;
  const Task task = GenerateTask(3, config, 1.5, &rng);
  EXPECT_DOUBLE_EQ(task.create_time, 1.5);
  EXPECT_DOUBLE_EQ(task.deadline, 5.5);
  EXPECT_EQ(task.capacity, 5);
}

TEST(SyntheticTest, UniformQualitiesAreSymmetricAndBounded) {
  Rng rng(8);
  const CooperationMatrix matrix =
      GenerateQualities(20, QualityModel::kUniform, 0.5, &rng);
  for (int i = 0; i < 20; ++i) {
    for (int k = 0; k < 20; ++k) {
      const double q = matrix.Quality(i, k);
      EXPECT_GE(q, 0.0);
      EXPECT_LE(q, 1.0);
      EXPECT_DOUBLE_EQ(q, matrix.Quality(k, i));
    }
  }
}

TEST(SyntheticTest, ConstantQualities) {
  Rng rng(9);
  const CooperationMatrix matrix =
      GenerateQualities(5, QualityModel::kConstant, 0.7, &rng);
  EXPECT_DOUBLE_EQ(matrix.Quality(0, 4), 0.7);
  EXPECT_DOUBLE_EQ(matrix.Quality(2, 2), 0.0);
}

TEST(SyntheticTest, InstanceShapeMatchesConfig) {
  Rng rng(10);
  SyntheticInstanceConfig config;
  config.num_workers = 37;
  config.num_tasks = 13;
  config.min_group_size = 2;
  const Instance instance = GenerateSyntheticInstance(config, 1.0, &rng);
  EXPECT_EQ(instance.num_workers(), 37);
  EXPECT_EQ(instance.num_tasks(), 13);
  EXPECT_TRUE(instance.valid_pairs_ready());
  EXPECT_DOUBLE_EQ(instance.now(), 1.0);
}

TEST(SyntheticTest, DeterministicForSeed) {
  SyntheticInstanceConfig config;
  config.num_workers = 25;
  config.num_tasks = 10;
  Rng rng_a(77), rng_b(77);
  const Instance a = GenerateSyntheticInstance(config, 0.0, &rng_a);
  const Instance b = GenerateSyntheticInstance(config, 0.0, &rng_b);
  for (int i = 0; i < 25; ++i) {
    EXPECT_EQ(a.workers()[static_cast<size_t>(i)].location,
              b.workers()[static_cast<size_t>(i)].location);
  }
  EXPECT_EQ(a.NumValidPairs(), b.NumValidPairs());
}

// ---------------------------------------------------------------------------
// Meetup-like dataset
// ---------------------------------------------------------------------------

TEST(MeetupLikeTest, ShapeMatchesConfig) {
  MeetupLikeConfig config;
  config.num_users = 200;
  config.num_events = 50;
  Rng rng(11);
  const MeetupLikeDataset dataset = MeetupLikeDataset::Generate(config, &rng);
  EXPECT_EQ(dataset.num_users(), 200);
  EXPECT_EQ(dataset.num_events(), 50);
}

TEST(MeetupLikeTest, EveryUserHasAtLeastOneGroup) {
  MeetupLikeConfig config;
  config.num_users = 300;
  Rng rng(12);
  const MeetupLikeDataset dataset = MeetupLikeDataset::Generate(config, &rng);
  for (int u = 0; u < 300; ++u) {
    EXPECT_GE(dataset.user_groups(u).size(), 1u);
    EXPECT_LE(static_cast<int>(dataset.user_groups(u).size()),
              config.max_memberships);
    EXPECT_TRUE(std::is_sorted(dataset.user_groups(u).begin(),
                               dataset.user_groups(u).end()));
  }
}

TEST(MeetupLikeTest, GroupOverlapIdentities) {
  MeetupLikeConfig config;
  config.num_users = 100;
  Rng rng(13);
  const MeetupLikeDataset dataset = MeetupLikeDataset::Generate(config, &rng);
  for (int u = 0; u < 20; ++u) {
    for (int v = u + 1; v < 20; ++v) {
      const int common = dataset.CommonGroups(u, v);
      const int unioned = dataset.UnionGroups(u, v);
      EXPECT_GE(common, 0);
      EXPECT_LE(common,
                static_cast<int>(dataset.user_groups(u).size()));
      EXPECT_EQ(unioned + common,
                static_cast<int>(dataset.user_groups(u).size() +
                                 dataset.user_groups(v).size()));
      EXPECT_EQ(dataset.CommonGroups(u, v), dataset.CommonGroups(v, u));
    }
  }
}

TEST(MeetupLikeTest, QualityFollowsPaperFormula) {
  MeetupLikeConfig config;
  config.num_users = 100;
  config.alpha = 0.5;
  config.omega = 0.5;
  Rng rng(14);
  const MeetupLikeDataset dataset = MeetupLikeDataset::Generate(config, &rng);
  for (int u = 0; u < 30; ++u) {
    for (int v = u + 1; v < 30; ++v) {
      const double q = dataset.CooperationQuality(u, v);
      const double expected =
          0.25 + 0.5 * dataset.CommonGroups(u, v) /
                     std::max(1, dataset.UnionGroups(u, v));
      EXPECT_NEAR(q, expected, 1e-12);
      EXPECT_GE(q, 0.25);
      EXPECT_LE(q, 0.75);
    }
  }
}

TEST(MeetupLikeTest, PopularGroupsCreateOverlap) {
  MeetupLikeConfig config;
  config.num_users = 500;
  Rng rng(15);
  const MeetupLikeDataset dataset = MeetupLikeDataset::Generate(config, &rng);
  // With Zipf group popularity, a decent share of pairs overlaps.
  int overlapping = 0, total = 0;
  for (int u = 0; u < 100; ++u) {
    for (int v = u + 1; v < 100; ++v) {
      ++total;
      if (dataset.CommonGroups(u, v) > 0) ++overlapping;
    }
  }
  EXPECT_GT(overlapping, total / 20);
}

TEST(MeetupLikeTest, SampleInstanceWithoutReplacementWhenPossible) {
  MeetupLikeConfig config;
  config.num_users = 100;
  config.num_events = 30;
  Rng gen_rng(16);
  const MeetupLikeDataset dataset =
      MeetupLikeDataset::Generate(config, &gen_rng);
  Rng sample_rng(17);
  const Instance instance = dataset.SampleInstance(
      50, 10, WorkerGenConfig{}, TaskGenConfig{}, 3, 0.0, &sample_rng);
  EXPECT_EQ(instance.num_workers(), 50);
  EXPECT_EQ(instance.num_tasks(), 10);
  std::set<int64_t> ids;
  for (const Worker& worker : instance.workers()) ids.insert(worker.id);
  EXPECT_EQ(ids.size(), 50u);  // distinct users
}

TEST(MeetupLikeTest, SampleInstanceWithReplacementBeyondDataset) {
  MeetupLikeConfig config;
  config.num_users = 20;
  config.num_events = 5;
  Rng gen_rng(18);
  const MeetupLikeDataset dataset =
      MeetupLikeDataset::Generate(config, &gen_rng);
  Rng sample_rng(19);
  const Instance instance = dataset.SampleInstance(
      40, 8, WorkerGenConfig{}, TaskGenConfig{}, 3, 0.0, &sample_rng);
  EXPECT_EQ(instance.num_workers(), 40);
}

TEST(MeetupLikeTest, InstanceQualitiesMatchDataset) {
  MeetupLikeConfig config;
  config.num_users = 60;
  config.num_events = 10;
  Rng gen_rng(20);
  const MeetupLikeDataset dataset =
      MeetupLikeDataset::Generate(config, &gen_rng);
  Rng sample_rng(21);
  const Instance instance = dataset.SampleInstance(
      20, 5, WorkerGenConfig{}, TaskGenConfig{}, 3, 0.0, &sample_rng);
  for (int i = 0; i < 20; ++i) {
    for (int k = 0; k < 20; ++k) {
      if (i == k) continue;
      const int ui = static_cast<int>(instance.workers()[static_cast<size_t>(i)].id);
      const int uk = static_cast<int>(instance.workers()[static_cast<size_t>(k)].id);
      EXPECT_NEAR(instance.coop().Quality(i, k),
                  dataset.CooperationQuality(ui, uk), 1e-12);
    }
  }
}

// ---------------------------------------------------------------------------
// Arrival traces (gen/trace)
// ---------------------------------------------------------------------------

TEST(TraceTest, ArrivalsWithinHorizonAndSorted) {
  Rng rng(31);
  TraceConfig config;
  config.horizon = 10.0;
  config.worker_rate = 20.0;
  config.task_rate = 8.0;
  const Trace trace = GenerateTrace(config, &rng);
  EXPECT_GT(trace.workers.size(), 0u);
  EXPECT_GT(trace.tasks.size(), 0u);
  for (size_t i = 0; i < trace.workers.size(); ++i) {
    EXPECT_GE(trace.workers[i].arrival_time, 0.0);
    EXPECT_LT(trace.workers[i].arrival_time, 10.0);
    EXPECT_EQ(trace.workers[i].id, static_cast<int64_t>(i));
    if (i > 0) {
      EXPECT_GE(trace.workers[i].arrival_time,
                trace.workers[i - 1].arrival_time);
    }
  }
}

TEST(TraceTest, ArrivalCountMatchesRate) {
  Rng rng(32);
  TraceConfig config;
  config.horizon = 50.0;
  config.worker_rate = 10.0;
  config.task_rate = 0.0;
  const Trace trace = GenerateTrace(config, &rng);
  // Poisson(500): 5 sigma is about 112.
  EXPECT_NEAR(static_cast<double>(trace.workers.size()), 500.0, 112.0);
  EXPECT_TRUE(trace.tasks.empty());
}

TEST(TraceTest, RushWindowConcentratesArrivals) {
  Rng rng(33);
  TraceConfig config;
  config.horizon = 10.0;
  config.worker_rate = 30.0;
  config.task_rate = 0.0;
  config.rush_windows.push_back({4.0, 6.0, 4.0});
  const Trace trace = GenerateTrace(config, &rng);
  int inside = 0, outside = 0;
  for (const Worker& worker : trace.workers) {
    if (worker.arrival_time >= 4.0 && worker.arrival_time < 6.0) {
      ++inside;
    } else {
      ++outside;
    }
  }
  // Rush rate 4x over 2 of 10 units: expect inside ~ 8/16 of total.
  EXPECT_GT(inside, outside / 2);
  // Per-unit-time density must be visibly higher inside.
  EXPECT_GT(inside / 2.0, outside / 8.0 * 2.0);
}

TEST(TraceTest, RateMultiplierComposition) {
  TraceConfig config;
  config.rush_windows.push_back({1.0, 3.0, 2.0});
  config.rush_windows.push_back({2.0, 4.0, 3.0});
  EXPECT_DOUBLE_EQ(RateMultiplierAt(config, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(RateMultiplierAt(config, 1.5), 2.0);
  EXPECT_DOUBLE_EQ(RateMultiplierAt(config, 2.5), 6.0);  // overlap
  EXPECT_DOUBLE_EQ(RateMultiplierAt(config, 3.5), 3.0);
  EXPECT_DOUBLE_EQ(RateMultiplierAt(config, 4.0), 1.0);  // end exclusive
}

TEST(TraceTest, ZeroRatesYieldEmptyTrace) {
  Rng rng(34);
  TraceConfig config;
  config.worker_rate = 0.0;
  config.task_rate = 0.0;
  const Trace trace = GenerateTrace(config, &rng);
  EXPECT_TRUE(trace.workers.empty());
  EXPECT_TRUE(trace.tasks.empty());
}

TEST(TraceTest, DeterministicForSeed) {
  TraceConfig config;
  Rng a(35), b(35);
  const Trace ta = GenerateTrace(config, &a);
  const Trace tb = GenerateTrace(config, &b);
  ASSERT_EQ(ta.workers.size(), tb.workers.size());
  for (size_t i = 0; i < ta.workers.size(); ++i) {
    EXPECT_DOUBLE_EQ(ta.workers[i].arrival_time,
                     tb.workers[i].arrival_time);
  }
}

TEST(TraceTest, CursorMatchesGenerateTraceBitForBit) {
  TraceConfig config;
  config.horizon = 8.0;
  config.worker_rate = 25.0;
  config.task_rate = 10.0;
  config.rush_windows.push_back({3.0, 5.0, 3.0});
  Rng trace_rng(36), cursor_rng(36);
  const Trace trace = GenerateTrace(config, &trace_rng);

  TraceCursor cursor(config, &cursor_rng);
  ASSERT_EQ(cursor.num_workers(),
            static_cast<int64_t>(trace.workers.size()));
  Worker worker;
  size_t w = 0;
  while (cursor.NextWorker(&worker)) {
    ASSERT_LT(w, trace.workers.size());
    EXPECT_EQ(worker.id, trace.workers[w].id);
    EXPECT_EQ(worker.location, trace.workers[w].location);
    EXPECT_DOUBLE_EQ(worker.radius, trace.workers[w].radius);
    EXPECT_DOUBLE_EQ(worker.speed, trace.workers[w].speed);
    EXPECT_DOUBLE_EQ(worker.arrival_time, trace.workers[w].arrival_time);
    ++w;
  }
  EXPECT_EQ(w, trace.workers.size());

  Task task;
  size_t t = 0;
  while (cursor.NextTask(&task)) {
    ASSERT_LT(t, trace.tasks.size());
    EXPECT_EQ(task.id, trace.tasks[t].id);
    EXPECT_EQ(task.location, trace.tasks[t].location);
    EXPECT_DOUBLE_EQ(task.create_time, trace.tasks[t].create_time);
    EXPECT_DOUBLE_EQ(task.deadline, trace.tasks[t].deadline);
    EXPECT_EQ(task.capacity, trace.tasks[t].capacity);
    ++t;
  }
  EXPECT_EQ(t, trace.tasks.size());

  // Both consumers leave the rng in the same state: the next draws agree.
  EXPECT_DOUBLE_EQ(trace_rng.Uniform(), cursor_rng.Uniform());
}

TEST(TraceTest, CursorHandlesEmptyStreams) {
  TraceConfig config;
  config.worker_rate = 0.0;
  config.task_rate = 0.0;
  Rng rng(37);
  TraceCursor cursor(config, &rng);
  EXPECT_EQ(cursor.num_workers(), 0);
  Worker worker;
  EXPECT_FALSE(cursor.NextWorker(&worker));
  Task task;
  EXPECT_FALSE(cursor.NextTask(&task));
}

// ---------------------------------------------------------------------------
// InstanceSource implementations
// ---------------------------------------------------------------------------

TEST(WorkloadTest, SyntheticSourceNameReflectsDistribution) {
  SyntheticInstanceConfig unif;
  SyntheticSource unif_source(unif, 1);
  EXPECT_EQ(unif_source.Name(), "UNIF");

  SyntheticInstanceConfig skew;
  skew.worker.spatial.distribution = LocationDistribution::kSkewed;
  SyntheticSource skew_source(skew, 1);
  EXPECT_EQ(skew_source.Name(), "SKEW");
}

TEST(WorkloadTest, SyntheticSourceAdvancesAcrossRounds) {
  SyntheticInstanceConfig config;
  config.num_workers = 20;
  config.num_tasks = 5;
  SyntheticSource source(config, 99);
  const Instance a = source.MakeBatch(0, 0.0);
  const Instance b = source.MakeBatch(1, 1.0);
  // Different rounds draw fresh randomness.
  EXPECT_NE(a.workers()[0].location, b.workers()[0].location);
}

TEST(WorkloadTest, MeetupSourceSharesDatasetAcrossSeeds) {
  MeetupLikeConfig config;
  config.num_users = 80;
  config.num_events = 20;
  MeetupLikeSource source_a(config, 10, 5, WorkerGenConfig{},
                            TaskGenConfig{}, 3, /*dataset_seed=*/7,
                            /*sample_seed=*/1);
  MeetupLikeSource source_b(config, 10, 5, WorkerGenConfig{},
                            TaskGenConfig{}, 3, /*dataset_seed=*/7,
                            /*sample_seed=*/2);
  // Same dataset: user 0 has the same location and groups in both.
  EXPECT_EQ(source_a.dataset().user_location(0),
            source_b.dataset().user_location(0));
  EXPECT_EQ(source_a.dataset().user_groups(0),
            source_b.dataset().user_groups(0));
}

}  // namespace
}  // namespace casc
