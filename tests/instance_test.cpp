#include <gtest/gtest.h>

#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "gen/synthetic.h"
#include "model/instance.h"

namespace casc {
namespace {

// ---------------------------------------------------------------------------
// Validity semantics (Definition 3)
// ---------------------------------------------------------------------------

TEST(InstanceTest, PairValidityRespectsRadius) {
  std::vector<Worker> workers = {
      Worker{0, {0.0, 0.0}, 1.0, 0.3, 0.0},   // fast but short radius
      Worker{1, {0.0, 0.0}, 1.0, 0.9, 0.0}};  // long radius
  std::vector<Task> tasks = {Task{0, {0.5, 0.0}, 0.0, 10.0, 2}};
  Instance instance(std::move(workers), std::move(tasks),
                    CooperationMatrix(2, 0.5), 0.0, 2);
  EXPECT_FALSE(instance.IsValidPair(0, 0));  // 0.5 > 0.3
  EXPECT_TRUE(instance.IsValidPair(1, 0));
}

TEST(InstanceTest, PairValidityRespectsDeadline) {
  std::vector<Worker> workers = {
      Worker{0, {0.0, 0.0}, 0.1, 1.0, 0.0},   // needs 5 time units
      Worker{1, {0.0, 0.0}, 0.5, 1.0, 0.0}};  // needs 1 time unit
  std::vector<Task> tasks = {Task{0, {0.5, 0.0}, 0.0, 2.0, 2}};
  Instance instance(std::move(workers), std::move(tasks),
                    CooperationMatrix(2, 0.5), 0.0, 2);
  EXPECT_FALSE(instance.IsValidPair(0, 0));
  EXPECT_TRUE(instance.IsValidPair(1, 0));
}

TEST(InstanceTest, PairValidityRespectsPresence) {
  std::vector<Worker> workers = {
      Worker{0, {0.5, 0.5}, 1.0, 1.0, 5.0}};  // arrives at t=5
  std::vector<Task> tasks = {Task{0, {0.5, 0.5}, 0.0, 10.0, 2},
                             Task{1, {0.5, 0.5}, 4.0, 10.0, 2}};
  {
    // Batch at t=1: the worker is not there yet.
    Instance instance({workers[0]}, tasks, CooperationMatrix(1, 0.5), 1.0,
                      2);
    EXPECT_FALSE(instance.IsValidPair(0, 0));
  }
  {
    // Batch at t=6: worker present, both tasks created.
    Instance instance({workers[0]}, tasks, CooperationMatrix(1, 0.5), 6.0,
                      2);
    EXPECT_TRUE(instance.IsValidPair(0, 0));
    EXPECT_TRUE(instance.IsValidPair(0, 1));
  }
}

TEST(InstanceTest, FutureTaskNotValid) {
  std::vector<Worker> workers = {Worker{0, {0.5, 0.5}, 1.0, 1.0, 0.0}};
  std::vector<Task> tasks = {Task{0, {0.5, 0.5}, 3.0, 10.0, 2}};
  Instance instance(std::move(workers), std::move(tasks),
                    CooperationMatrix(1, 0.5), 1.0, 2);
  EXPECT_FALSE(instance.IsValidPair(0, 0));
}

TEST(InstanceTest, DeadlineCountsFromNowNotCreation) {
  // Worker needs 3 units; at now=0 the deadline (4) is reachable, at
  // now=2 it no longer is.
  std::vector<Worker> workers = {Worker{0, {0.0, 0.0}, 0.1, 1.0, 0.0}};
  std::vector<Task> tasks = {Task{0, {0.3, 0.0}, 0.0, 4.0, 2}};
  {
    Instance instance(workers, tasks, CooperationMatrix(1, 0.5), 0.0, 2);
    EXPECT_TRUE(instance.IsValidPair(0, 0));
  }
  {
    Instance instance(workers, tasks, CooperationMatrix(1, 0.5), 2.0, 2);
    EXPECT_FALSE(instance.IsValidPair(0, 0));
  }
}

// ---------------------------------------------------------------------------
// ComputeValidPairs vs brute force (property test)
// ---------------------------------------------------------------------------

struct ValidPairCase {
  std::string name;
  int workers;
  int tasks;
  uint64_t seed;
};

class ValidPairsTest : public ::testing::TestWithParam<ValidPairCase> {};

TEST_P(ValidPairsTest, IndexMatchesBruteForce) {
  const ValidPairCase& param = GetParam();
  Rng rng(param.seed);
  SyntheticInstanceConfig config;
  config.num_workers = param.workers;
  config.num_tasks = param.tasks;
  config.min_group_size = 2;
  config.task.capacity = 3;
  Instance instance = GenerateSyntheticInstance(config, 0.0, &rng);

  size_t total = 0;
  for (WorkerIndex w = 0; w < instance.num_workers(); ++w) {
    std::vector<TaskIndex> expected;
    for (TaskIndex t = 0; t < instance.num_tasks(); ++t) {
      if (instance.IsValidPair(w, t)) expected.push_back(t);
    }
    const std::span<const TaskIndex> valid = instance.ValidTasks(w);
    EXPECT_EQ(std::vector<TaskIndex>(valid.begin(), valid.end()), expected)
        << "worker " << w;
    total += expected.size();
  }
  EXPECT_EQ(instance.NumValidPairs(), total);

  // Candidates is the exact transpose of ValidTasks.
  for (TaskIndex t = 0; t < instance.num_tasks(); ++t) {
    std::vector<WorkerIndex> expected;
    for (WorkerIndex w = 0; w < instance.num_workers(); ++w) {
      if (instance.IsValidPair(w, t)) expected.push_back(w);
    }
    const std::span<const WorkerIndex> candidates = instance.Candidates(t);
    EXPECT_EQ(
        std::vector<WorkerIndex>(candidates.begin(), candidates.end()),
        expected)
        << "task " << t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomInstances, ValidPairsTest,
    ::testing::Values(ValidPairCase{"tiny", 5, 3, 1},
                      ValidPairCase{"small", 30, 12, 2},
                      ValidPairCase{"medium", 150, 60, 3},
                      ValidPairCase{"wide", 50, 200, 4}),
    [](const ::testing::TestParamInfo<ValidPairCase>& info) {
      return info.param.name;
    });

TEST(InstanceTest, ComputeValidPairsIsIdempotent) {
  Rng rng(9);
  SyntheticInstanceConfig config;
  config.num_workers = 20;
  config.num_tasks = 10;
  Instance instance = GenerateSyntheticInstance(config, 0.0, &rng);
  const size_t first = instance.NumValidPairs();
  instance.ComputeValidPairs();
  EXPECT_EQ(instance.NumValidPairs(), first);
}

TEST(InstanceTest, AccessorsExposeInputs) {
  std::vector<Worker> workers = {Worker{7, {0.1, 0.2}, 0.3, 0.4, 0.5}};
  std::vector<Task> tasks = {Task{9, {0.6, 0.7}, 0.0, 2.0, 4}};
  Instance instance(std::move(workers), std::move(tasks),
                    CooperationMatrix(1, 0.5), 1.0, 3);
  EXPECT_EQ(instance.num_workers(), 1);
  EXPECT_EQ(instance.num_tasks(), 1);
  EXPECT_DOUBLE_EQ(instance.now(), 1.0);
  EXPECT_EQ(instance.min_group_size(), 3);
  EXPECT_EQ(instance.workers()[0].id, 7);
  EXPECT_EQ(instance.tasks()[0].id, 9);
  EXPECT_FALSE(instance.valid_pairs_ready());
}

}  // namespace
}  // namespace casc
