#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "model/assignment.h"
#include "model/cooperation_matrix.h"
#include "model/instance.h"
#include "model/task.h"
#include "model/worker.h"

namespace casc {
namespace {

/// Builds an instance where every pair is valid: all locations coincide,
/// radii and speeds are generous.
Instance TrivialInstance(int num_workers, int num_tasks, int capacity,
                         int min_group = 2) {
  std::vector<Worker> workers;
  for (int i = 0; i < num_workers; ++i) {
    workers.push_back(Worker{i, {0.5, 0.5}, 1.0, 1.0, 0.0});
  }
  std::vector<Task> tasks;
  for (int j = 0; j < num_tasks; ++j) {
    tasks.push_back(Task{j, {0.5, 0.5}, 0.0, 10.0, capacity});
  }
  CooperationMatrix coop(num_workers, 0.5);
  Instance instance(std::move(workers), std::move(tasks), std::move(coop),
                    /*now=*/0.0, min_group);
  instance.ComputeValidPairs();
  return instance;
}

// ---------------------------------------------------------------------------
// Worker / Task
// ---------------------------------------------------------------------------

TEST(WorkerTest, ToStringMentionsFields) {
  const Worker worker{42, {0.1, 0.2}, 0.03, 0.07, 1.5};
  const std::string text = ToString(worker);
  EXPECT_NE(text.find("42"), std::string::npos);
  EXPECT_NE(text.find("0.03"), std::string::npos);
}

TEST(TaskTest, ToStringMentionsFields) {
  const Task task{7, {0.3, 0.4}, 1.0, 4.0, 5};
  const std::string text = ToString(task);
  EXPECT_NE(text.find("7"), std::string::npos);
  EXPECT_NE(text.find("capacity=5"), std::string::npos);
}

// ---------------------------------------------------------------------------
// CooperationMatrix
// ---------------------------------------------------------------------------

TEST(CooperationMatrixTest, InitialValueEverywhereOffDiagonal) {
  CooperationMatrix matrix(4, 0.3);
  for (int i = 0; i < 4; ++i) {
    for (int k = 0; k < 4; ++k) {
      EXPECT_DOUBLE_EQ(matrix.Quality(i, k), i == k ? 0.0 : 0.3);
    }
  }
}

TEST(CooperationMatrixTest, SetQualityIsDirectional) {
  CooperationMatrix matrix(3);
  matrix.SetQuality(0, 1, 0.8);
  EXPECT_DOUBLE_EQ(matrix.Quality(0, 1), 0.8);
  EXPECT_DOUBLE_EQ(matrix.Quality(1, 0), 0.0);
}

TEST(CooperationMatrixTest, SetSymmetricWritesBoth) {
  CooperationMatrix matrix(3);
  matrix.SetSymmetric(0, 2, 0.6);
  EXPECT_DOUBLE_EQ(matrix.Quality(0, 2), 0.6);
  EXPECT_DOUBLE_EQ(matrix.Quality(2, 0), 0.6);
}

TEST(CooperationMatrixTest, PairSumCountsOrderedPairs) {
  CooperationMatrix matrix(3);
  matrix.SetQuality(0, 1, 0.1);
  matrix.SetQuality(1, 0, 0.2);
  matrix.SetQuality(0, 2, 0.3);
  matrix.SetQuality(2, 0, 0.4);
  matrix.SetQuality(1, 2, 0.5);
  matrix.SetQuality(2, 1, 0.6);
  EXPECT_NEAR(matrix.PairSum({0, 1, 2}), 2.1, 1e-12);
  EXPECT_NEAR(matrix.PairSum({0, 1}), 0.3, 1e-12);
  EXPECT_DOUBLE_EQ(matrix.PairSum({0}), 0.0);
  EXPECT_DOUBLE_EQ(matrix.PairSum({}), 0.0);
}

TEST(CooperationMatrixTest, RowSumSkipsSelf) {
  CooperationMatrix matrix(3);
  matrix.SetQuality(0, 1, 0.25);
  matrix.SetQuality(0, 2, 0.5);
  EXPECT_NEAR(matrix.RowSum(0, {0, 1, 2}), 0.75, 1e-12);
  EXPECT_NEAR(matrix.RowSum(0, {1}), 0.25, 1e-12);
}

TEST(CooperationMatrixTest, EmptyMatrixIsUsable) {
  CooperationMatrix matrix;
  EXPECT_EQ(matrix.num_workers(), 0);
}

// ---------------------------------------------------------------------------
// CooperationHistory (Equation 1)
// ---------------------------------------------------------------------------

TEST(CooperationHistoryTest, NoHistoryYieldsPrior) {
  CooperationHistory history(4, /*alpha=*/0.5, /*omega=*/0.6);
  EXPECT_DOUBLE_EQ(history.EstimateQuality(0, 1), 0.6);
  EXPECT_EQ(history.CoTaskCount(0, 1), 0);
}

TEST(CooperationHistoryTest, Equation1Blend) {
  CooperationHistory history(3, 0.5, 0.5);
  history.RecordTask({0, 1}, 1.0);
  // q = 0.5 * 0.5 + 0.5 * 1.0 = 0.75.
  EXPECT_DOUBLE_EQ(history.EstimateQuality(0, 1), 0.75);
  EXPECT_DOUBLE_EQ(history.EstimateQuality(1, 0), 0.75);
}

TEST(CooperationHistoryTest, RatingsAverage) {
  CooperationHistory history(3, 0.0, 0.5);  // alpha=0: pure history
  history.RecordTask({0, 1}, 1.0);
  history.RecordTask({0, 1}, 0.0);
  EXPECT_DOUBLE_EQ(history.EstimateQuality(0, 1), 0.5);
  EXPECT_EQ(history.CoTaskCount(0, 1), 2);
}

TEST(CooperationHistoryTest, GroupTaskUpdatesAllPairs) {
  CooperationHistory history(4, 0.5, 0.5);
  history.RecordTask({0, 1, 2}, 0.8);
  EXPECT_EQ(history.CoTaskCount(0, 1), 1);
  EXPECT_EQ(history.CoTaskCount(0, 2), 1);
  EXPECT_EQ(history.CoTaskCount(1, 2), 1);
  EXPECT_EQ(history.CoTaskCount(0, 3), 0);
}

TEST(CooperationHistoryTest, ToMatrixMatchesEstimates) {
  CooperationHistory history(4, 0.3, 0.5);
  history.RecordTask({0, 1}, 0.9);
  history.RecordTask({1, 2, 3}, 0.4);
  const CooperationMatrix matrix = history.ToMatrix();
  for (int i = 0; i < 4; ++i) {
    for (int k = 0; k < 4; ++k) {
      if (i == k) continue;
      EXPECT_DOUBLE_EQ(matrix.Quality(i, k), history.EstimateQuality(i, k))
          << "pair (" << i << "," << k << ")";
    }
  }
}

TEST(CooperationHistoryTest, AlphaOneIgnoresHistory) {
  CooperationHistory history(2, 1.0, 0.5);
  history.RecordTask({0, 1}, 1.0);
  EXPECT_DOUBLE_EQ(history.EstimateQuality(0, 1), 0.5);
}

// ---------------------------------------------------------------------------
// Assignment
// ---------------------------------------------------------------------------

TEST(AssignmentTest, AssignAndUnassign) {
  const Instance instance = TrivialInstance(4, 2, 3);
  Assignment assignment(instance);
  EXPECT_EQ(assignment.TaskOf(0), kNoTask);
  assignment.Assign(0, 1);
  EXPECT_EQ(assignment.TaskOf(0), 1);
  EXPECT_EQ(assignment.GroupSize(1), 1);
  EXPECT_EQ(assignment.NumAssigned(), 1);
  assignment.Unassign(0);
  EXPECT_EQ(assignment.TaskOf(0), kNoTask);
  EXPECT_EQ(assignment.GroupSize(1), 0);
  EXPECT_EQ(assignment.NumAssigned(), 0);
}

TEST(AssignmentTest, ReassignMovesBetweenGroups) {
  const Instance instance = TrivialInstance(4, 2, 3);
  Assignment assignment(instance);
  assignment.Assign(2, 0);
  assignment.Assign(2, 1);
  EXPECT_EQ(assignment.GroupSize(0), 0);
  EXPECT_EQ(assignment.GroupSize(1), 1);
  EXPECT_EQ(assignment.NumAssigned(), 1);
}

TEST(AssignmentTest, AssignToSameTaskIsNoop) {
  const Instance instance = TrivialInstance(4, 2, 3);
  Assignment assignment(instance);
  assignment.Assign(1, 0);
  assignment.Assign(1, 0);
  EXPECT_EQ(assignment.GroupSize(0), 1);
  EXPECT_EQ(assignment.NumAssigned(), 1);
}

TEST(AssignmentTest, PairsEnumeratesEverything) {
  const Instance instance = TrivialInstance(4, 2, 3);
  Assignment assignment(instance);
  assignment.Assign(0, 0);
  assignment.Assign(1, 0);
  assignment.Assign(2, 1);
  const auto pairs = assignment.Pairs();
  ASSERT_EQ(pairs.size(), 3u);
  EXPECT_EQ(pairs[0], (AssignedPair{0, 0}));
  EXPECT_EQ(pairs[1], (AssignedPair{1, 0}));
  EXPECT_EQ(pairs[2], (AssignedPair{2, 1}));
}

TEST(AssignmentTest, ValidateAcceptsFeasible) {
  const Instance instance = TrivialInstance(4, 2, 2);
  Assignment assignment(instance);
  assignment.Assign(0, 0);
  assignment.Assign(1, 0);
  assignment.Assign(2, 1);
  EXPECT_TRUE(assignment.Validate(instance).ok());
}

TEST(AssignmentTest, ValidateRejectsOverCapacity) {
  const Instance instance = TrivialInstance(4, 1, 2);
  Assignment assignment(instance);
  assignment.Assign(0, 0);
  assignment.Assign(1, 0);
  assignment.Assign(2, 0);  // capacity is 2
  const Status status = assignment.Validate(instance);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(AssignmentTest, ValidateRejectsInvalidPair) {
  // Task 0 is out of worker 0's reach.
  std::vector<Worker> workers = {Worker{0, {0.0, 0.0}, 0.01, 0.05, 0.0},
                                 Worker{1, {0.9, 0.9}, 0.01, 0.05, 0.0}};
  std::vector<Task> tasks = {Task{0, {0.9, 0.9}, 0.0, 1.0, 2}};
  CooperationMatrix coop(2, 0.5);
  Instance instance(std::move(workers), std::move(tasks), std::move(coop),
                    0.0, 2);
  instance.ComputeValidPairs();
  Assignment assignment(instance);
  assignment.Assign(0, 0);  // geometrically invalid
  EXPECT_FALSE(assignment.Validate(instance).ok());
}

TEST(AssignmentTest, EmptyAssignmentValidates) {
  const Instance instance = TrivialInstance(3, 2, 2);
  Assignment assignment(instance);
  EXPECT_TRUE(assignment.Validate(instance).ok());
}

}  // namespace
}  // namespace casc
