#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "algo/gt_assigner.h"
#include "algo/local_search.h"
#include "algo/online_assigner.h"
#include "common/rng.h"
#include "gen/synthetic.h"
#include "model/batch_workspace.h"
#include "model/objective.h"
#include "model/objective_model.h"

namespace casc {
namespace {

Instance RandomInstance(int workers, int tasks, uint64_t seed,
                        int capacity = 4, int min_group = 3,
                        int num_skills = 0) {
  Rng rng(seed);
  SyntheticInstanceConfig config;
  config.num_workers = workers;
  config.num_tasks = tasks;
  config.task.capacity = capacity;
  config.min_group_size = min_group;
  config.worker.radius_min = 0.25;
  config.worker.radius_max = 0.50;
  config.worker.speed_min = 0.05;
  config.worker.speed_max = 0.15;
  config.worker.num_skills = num_skills;
  config.task.num_skills = num_skills;
  config.task.skills_per_task = 2;
  return GenerateSyntheticInstance(config, 0.0, &rng);
}

/// Runs the pruned and unpruned solver on `instance` and demands the
/// exact same assignment and the exact same final score — the central
/// claim of the bound-based pruning: it only skips work, never changes a
/// result bit. Every other seed also exercises the BatchWorkspace path
/// (tile-backed keepers + pooled scratch).
void ExpectPruningNeutral(const Instance& instance, Assigner& pruned,
                          Assigner& unpruned, bool use_workspace,
                          const std::string& label) {
  BatchWorkspace workspace_on;
  BatchWorkspace workspace_off;
  if (use_workspace) {
    pruned.set_workspace(&workspace_on);
    unpruned.set_workspace(&workspace_off);
  }
  const Assignment on = pruned.Run(instance);
  const Assignment off = unpruned.Run(instance);
  for (WorkerIndex w = 0; w < instance.num_workers(); ++w) {
    ASSERT_EQ(on.TaskOf(w), off.TaskOf(w))
        << label << ": worker " << w << " diverged";
  }
  // Exact equality, not near: the trajectories must be identical.
  ASSERT_EQ(pruned.stats().final_score, unpruned.stats().final_score)
      << label;
  ASSERT_EQ(TotalScore(instance, on), TotalScore(instance, off)) << label;

  // Work conservation: the pruned scan visits the same candidates, each
  // either evaluated exactly or provably skipped; the unpruned scan
  // evaluates them all.
  const AssignerStats& stats_on = pruned.stats();
  const AssignerStats& stats_off = unpruned.stats();
  ASSERT_EQ(stats_off.prune_candidates_skipped, 0) << label;
  ASSERT_EQ(
      stats_on.prune_candidates_evaluated + stats_on.prune_candidates_skipped,
      stats_off.prune_candidates_evaluated)
      << label;
}

TEST(PruningFuzzTest, GtVariantsMatchUnprunedOn200Instances) {
  int prunes_observed = 0;
  for (uint64_t seed = 0; seed < 100; ++seed) {
    const int workers = 40 + static_cast<int>(seed % 4) * 15;
    const int tasks = 14 + static_cast<int>(seed % 5) * 4;
    const Instance instance = RandomInstance(workers, tasks, seed + 1);

    GtOptions options;
    switch (seed % 4) {
      case 0:  // plain GT from TPG
        break;
      case 1:  // both paper optimizations, shuffled order
        options.use_tsi = true;
        options.use_lub = true;
        options.order = GtOrder::kShuffled;
        options.order_seed = seed + 7;
        break;
      case 2:  // random init + LUB
        options.init = GtInit::kRandom;
        options.init_seed = seed + 3;
        options.use_lub = true;
        break;
      case 3:  // speculative parallel rounds
        options.num_threads = 2;
        options.use_lub = true;
        break;
    }
    GtOptions off_options = options;
    options.use_pruning = true;
    off_options.use_pruning = false;
    GtAssigner pruned(options);
    GtAssigner unpruned(off_options);
    ExpectPruningNeutral(instance, pruned, unpruned, seed % 2 == 0,
                         "gt seed=" + std::to_string(seed));
    if (pruned.stats().prune_candidates_skipped > 0) ++prunes_observed;
  }
  // The fuzz must actually exercise the pruning branch, not vacuously
  // pass with bounds that never fire.
  EXPECT_GT(prunes_observed, 50);
}

TEST(PruningFuzzTest, GtSwapMatchesUnprunedOn50Instances) {
  int prunes_observed = 0;
  for (uint64_t seed = 0; seed < 50; ++seed) {
    const int workers = 36 + static_cast<int>(seed % 3) * 12;
    const int tasks = 12 + static_cast<int>(seed % 4) * 3;
    const Instance instance = RandomInstance(workers, tasks, seed + 101);

    GtOptions gt_on;
    gt_on.use_pruning = true;
    GtOptions gt_off = gt_on;
    gt_off.use_pruning = false;
    LocalSearchOptions ls_on;
    ls_on.use_pruning = true;
    LocalSearchOptions ls_off = ls_on;
    ls_off.use_pruning = false;
    LocalSearchAssigner pruned(std::make_unique<GtAssigner>(gt_on), ls_on);
    LocalSearchAssigner unpruned(std::make_unique<GtAssigner>(gt_off),
                                 ls_off);
    ExpectPruningNeutral(instance, pruned, unpruned, seed % 2 == 0,
                         "gt+swap seed=" + std::to_string(seed));
    ASSERT_EQ(pruned.swaps_applied(), unpruned.swaps_applied());
    if (pruned.stats().prune_candidates_skipped > 0) ++prunes_observed;
  }
  EXPECT_GT(prunes_observed, 25);
}

TEST(PruningFuzzTest, OnlineMatchesUnprunedOn50Instances) {
  int prunes_observed = 0;
  for (uint64_t seed = 0; seed < 50; ++seed) {
    const int workers = 50 + static_cast<int>(seed % 5) * 10;
    const int tasks = 16 + static_cast<int>(seed % 3) * 6;
    const Instance instance = RandomInstance(workers, tasks, seed + 201);

    OnlineOptions on;
    on.use_pruning = true;
    OnlineOptions off = on;
    off.use_pruning = false;
    OnlineAssigner pruned(on);
    OnlineAssigner unpruned(off);
    ExpectPruningNeutral(instance, pruned, unpruned, seed % 2 == 0,
                         "online seed=" + std::to_string(seed));
    if (pruned.stats().prune_candidates_skipped > 0) ++prunes_observed;
  }
  EXPECT_GT(prunes_observed, 25);
}

// ---------------------------------------------------------------------------
// Objective-variant admissibility: the same neutrality claim must hold
// under the multi-skill objective — its score only ever *discounts* the
// cooperation term, so JoinBound's ceiling stays admissible (the
// DESIGN.md section 13 proof obligation, enforced here by fuzz).
// ---------------------------------------------------------------------------

TEST(PruningFuzzTest, MultiskillGtMatchesUnprunedOn50Instances) {
  int prunes_observed = 0;
  int rejects_observed = 0;
  for (uint64_t seed = 0; seed < 50; ++seed) {
    const int workers = 40 + static_cast<int>(seed % 4) * 12;
    const int tasks = 14 + static_cast<int>(seed % 3) * 4;
    Instance instance = RandomInstance(workers, tasks, seed + 301,
                                       /*capacity=*/4, /*min_group=*/3,
                                       /*num_skills=*/8);
    instance.set_objective(&GetMultiSkillObjective());

    GtOptions options;
    if (seed % 2 == 1) {
      options.use_tsi = true;
      options.use_lub = true;
    }
    GtOptions off_options = options;
    options.use_pruning = true;
    off_options.use_pruning = false;
    GtAssigner pruned(options);
    GtAssigner unpruned(off_options);
    ExpectPruningNeutral(instance, pruned, unpruned, seed % 2 == 0,
                         "multiskill gt seed=" + std::to_string(seed));
    // Both scans filter the identical joins, so the reject counters must
    // agree exactly too.
    ASSERT_EQ(pruned.stats().feasibility_rejects,
              unpruned.stats().feasibility_rejects)
        << "seed " << seed;
    if (pruned.stats().prune_candidates_skipped > 0) ++prunes_observed;
    if (pruned.stats().feasibility_rejects > 0) ++rejects_observed;
  }
  // Neither the pruning branch nor the skill gate may be vacuous.
  EXPECT_GT(prunes_observed, 20);
  EXPECT_GT(rejects_observed, 20);
}

TEST(PruningFuzzTest, MultiskillOnlineMatchesUnprunedOn30Instances) {
  int prunes_observed = 0;
  for (uint64_t seed = 0; seed < 30; ++seed) {
    const int workers = 50 + static_cast<int>(seed % 5) * 10;
    const int tasks = 16 + static_cast<int>(seed % 3) * 6;
    Instance instance = RandomInstance(workers, tasks, seed + 401,
                                       /*capacity=*/4, /*min_group=*/3,
                                       /*num_skills=*/8);
    instance.set_objective(&GetMultiSkillObjective());

    OnlineOptions on;
    on.use_pruning = true;
    OnlineOptions off = on;
    off.use_pruning = false;
    OnlineAssigner pruned(on);
    OnlineAssigner unpruned(off);
    ExpectPruningNeutral(instance, pruned, unpruned, seed % 2 == 0,
                         "multiskill online seed=" + std::to_string(seed));
    ASSERT_EQ(pruned.stats().feasibility_rejects,
              unpruned.stats().feasibility_rejects)
        << "seed " << seed;
    if (pruned.stats().prune_candidates_skipped > 0) ++prunes_observed;
  }
  EXPECT_GT(prunes_observed, 10);
}

}  // namespace
}  // namespace casc
