#include <gtest/gtest.h>

#include <vector>

#include "algo/best_response.h"
#include "algo/gt_assigner.h"
#include "common/rng.h"
#include "gen/synthetic.h"
#include "model/objective.h"

namespace casc {
namespace {

Instance RandomInstance(int m, int n, uint64_t seed, int capacity = 4,
                        int min_group = 3) {
  Rng rng(seed);
  SyntheticInstanceConfig config;
  config.num_workers = m;
  config.num_tasks = n;
  config.task.capacity = capacity;
  config.min_group_size = min_group;
  config.worker.radius_min = 0.2;
  config.worker.radius_max = 0.45;
  config.worker.speed_min = 0.05;
  config.worker.speed_max = 0.15;
  return GenerateSyntheticInstance(config, 0.0, &rng);
}

// ---------------------------------------------------------------------------
// Random move sequences preserve every structural invariant
// ---------------------------------------------------------------------------

class MoveSequenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MoveSequenceTest, ArbitraryMovesKeepAssignmentFeasible) {
  const Instance instance = RandomInstance(40, 15, GetParam());
  Assignment assignment(instance);
  Rng rng(GetParam() ^ 0xFEED);
  for (int step = 0; step < 500; ++step) {
    const WorkerIndex w = static_cast<WorkerIndex>(
        rng.UniformInt(static_cast<uint64_t>(instance.num_workers())));
    const auto& valid = instance.ValidTasks(w);
    TaskIndex target = kNoTask;
    if (!valid.empty() && !rng.Bernoulli(0.2)) {
      target = valid[static_cast<size_t>(
          rng.UniformInt(static_cast<uint64_t>(valid.size())))];
    }
    ApplyMove(instance, &assignment, w, target);
    // Capacity is restored by the crowding rule after every move.
    if (target != kNoTask) {
      EXPECT_LE(assignment.GroupSize(target),
                instance.tasks()[static_cast<size_t>(target)].capacity);
    }
  }
  EXPECT_TRUE(assignment.Validate(instance).ok());
}

TEST_P(MoveSequenceTest, BestResponseMovesMonotonicallyRaiseThePotential) {
  const Instance instance = RandomInstance(50, 18, GetParam() ^ 0xAB);
  Assignment assignment(instance);
  Rng rng(GetParam());
  // Seed with random strategies.
  for (WorkerIndex w = 0; w < instance.num_workers(); ++w) {
    const auto& valid = instance.ValidTasks(w);
    if (valid.empty()) continue;
    ApplyMove(instance, &assignment, w,
              valid[static_cast<size_t>(
                  rng.UniformInt(static_cast<uint64_t>(valid.size())))]);
  }
  double potential = TotalScore(instance, assignment);
  for (int step = 0; step < 300; ++step) {
    const WorkerIndex w = static_cast<WorkerIndex>(
        rng.UniformInt(static_cast<uint64_t>(instance.num_workers())));
    const BestResponse best = ComputeBestResponse(instance, assignment, w);
    const double current =
        StrategyUtility(instance, assignment, w, assignment.TaskOf(w),
                        nullptr);
    if (best.task == assignment.TaskOf(w) || best.utility <= current) {
      continue;
    }
    ApplyMove(instance, &assignment, w, best.task);
    const double new_potential = TotalScore(instance, assignment);
    // Theorem V.1 extended to crowding moves: the potential rises by the
    // mover's utility improvement (the evicted worker contributes its
    // own ΔQ = marginal, which is exactly what the mover's over-capacity
    // utility already nets out).
    EXPECT_GT(new_potential, potential - 1e-9);
    potential = new_potential;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MoveSequenceTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// ---------------------------------------------------------------------------
// IsNashEquilibrium is a real detector, not a rubber stamp
// ---------------------------------------------------------------------------

TEST(NashDetectorTest, FlagsAnObviouslyImprovableState) {
  // Two workers with high mutual quality sit on different tasks while
  // both could pair up on one: the lone states are not equilibria.
  std::vector<Worker> workers = {Worker{0, {0.5, 0.5}, 1.0, 1.0, 0.0},
                                 Worker{1, {0.5, 0.5}, 1.0, 1.0, 0.0}};
  std::vector<Task> tasks = {Task{0, {0.5, 0.5}, 0.0, 9.0, 2},
                             Task{1, {0.5, 0.5}, 0.0, 9.0, 2}};
  CooperationMatrix coop(2);
  coop.SetSymmetric(0, 1, 0.9);
  Instance instance(std::move(workers), std::move(tasks), std::move(coop),
                    0.0, 2);
  instance.ComputeValidPairs();

  Assignment split(instance);
  split.Assign(0, 0);
  split.Assign(1, 1);
  EXPECT_FALSE(IsNashEquilibrium(instance, split, 1e-9));

  Assignment together(instance);
  together.Assign(0, 0);
  together.Assign(1, 0);
  EXPECT_TRUE(IsNashEquilibrium(instance, together, 1e-9));
}

TEST(NashDetectorTest, ToleranceScreensTinyImprovements) {
  std::vector<Worker> workers = {Worker{0, {0.5, 0.5}, 1.0, 1.0, 0.0},
                                 Worker{1, {0.5, 0.5}, 1.0, 1.0, 0.0},
                                 Worker{2, {0.5, 0.5}, 1.0, 1.0, 0.0}};
  std::vector<Task> tasks = {Task{0, {0.5, 0.5}, 0.0, 9.0, 2},
                             Task{1, {0.5, 0.5}, 0.0, 9.0, 2}};
  CooperationMatrix coop(3);
  coop.SetSymmetric(0, 1, 0.500);
  coop.SetSymmetric(0, 2, 0.501);  // joining 2 is better by a whisker
  Instance instance(std::move(workers), std::move(tasks), std::move(coop),
                    0.0, 2);
  instance.ComputeValidPairs();
  Assignment assignment(instance);
  assignment.Assign(0, 0);
  assignment.Assign(1, 0);
  assignment.Assign(2, 1);
  // Worker 0 could improve by 2*(0.501-0.500); a coarse tolerance
  // accepts the state, a fine one rejects it.
  EXPECT_TRUE(IsNashEquilibrium(instance, assignment, 0.1));
  EXPECT_FALSE(IsNashEquilibrium(instance, assignment, 1e-6));
}

// ---------------------------------------------------------------------------
// Best-response seeding of ComputeBestResponse
// ---------------------------------------------------------------------------

TEST(BestResponseTest, PrefersStayingOnTies) {
  // Two identical tasks; whichever the worker group sits on, the best
  // response must keep it there (no oscillation on exact ties).
  const int m = 4;
  std::vector<Worker> workers;
  for (int i = 0; i < m; ++i) {
    workers.push_back(Worker{i, {0.5, 0.5}, 1.0, 1.0, 0.0});
  }
  std::vector<Task> tasks = {Task{0, {0.5, 0.5}, 0.0, 9.0, 4},
                             Task{1, {0.5, 0.5}, 0.0, 9.0, 4}};
  Instance instance(std::move(workers), std::move(tasks),
                    CooperationMatrix(m, 0.5), 0.0, 2);
  instance.ComputeValidPairs();
  Assignment assignment(instance);
  for (int i = 0; i < m; ++i) assignment.Assign(i, 1);
  for (int i = 0; i < m; ++i) {
    const BestResponse best = ComputeBestResponse(instance, assignment, i);
    EXPECT_EQ(best.task, 1) << "worker " << i << " oscillated";
  }
}

TEST(BestResponseTest, WorkerWithNoValidTasksIdles) {
  std::vector<Worker> workers = {Worker{0, {0.0, 0.0}, 0.001, 0.01, 0.0}};
  std::vector<Task> tasks = {Task{0, {0.9, 0.9}, 0.0, 1.0, 2}};
  Instance instance(std::move(workers), std::move(tasks),
                    CooperationMatrix(1, 0.5), 0.0, 2);
  instance.ComputeValidPairs();
  const Assignment assignment(instance);
  const BestResponse best = ComputeBestResponse(instance, assignment, 0);
  EXPECT_EQ(best.task, kNoTask);
  EXPECT_DOUBLE_EQ(best.utility, 0.0);
}

TEST(BestResponseTest, ReportsCrowdedOutWorker) {
  CooperationMatrix coop(4);
  coop.SetSymmetric(0, 1, 0.9);
  coop.SetSymmetric(0, 3, 0.8);
  coop.SetSymmetric(1, 3, 0.8);
  // Worker 2 contributes nothing and gets evicted when 3 arrives.
  std::vector<Worker> workers;
  for (int i = 0; i < 4; ++i) {
    workers.push_back(Worker{i, {0.5, 0.5}, 1.0, 1.0, 0.0});
  }
  std::vector<Task> tasks = {Task{0, {0.5, 0.5}, 0.0, 9.0, 3}};
  Instance instance(std::move(workers), std::move(tasks), std::move(coop),
                    0.0, 2);
  instance.ComputeValidPairs();
  Assignment assignment(instance);
  assignment.Assign(0, 0);
  assignment.Assign(1, 0);
  assignment.Assign(2, 0);
  const BestResponse best = ComputeBestResponse(instance, assignment, 3);
  EXPECT_EQ(best.task, 0);
  EXPECT_EQ(best.crowded_out, 2);
}

// ---------------------------------------------------------------------------
// Asymmetric cooperation matrices (Equation 1 allows q_i(k) != q_k(i))
// ---------------------------------------------------------------------------

TEST(AsymmetricTest, GtConvergesOnAsymmetricQualities) {
  Rng rng(404);
  const int m = 30, n = 10;
  std::vector<Worker> workers;
  for (int i = 0; i < m; ++i) {
    workers.push_back(Worker{i, {rng.Uniform(), rng.Uniform()}, 0.3, 0.5,
                             0.0});
  }
  std::vector<Task> tasks;
  for (int j = 0; j < n; ++j) {
    tasks.push_back(Task{j, {rng.Uniform(), rng.Uniform()}, 0.0, 5.0, 4});
  }
  CooperationMatrix coop(m);
  for (int i = 0; i < m; ++i) {
    for (int k = 0; k < m; ++k) {
      if (i != k) coop.SetQuality(i, k, rng.Uniform());
    }
  }
  Instance instance(std::move(workers), std::move(tasks), std::move(coop),
                    0.0, 3);
  instance.ComputeValidPairs();
  GtAssigner gt;
  const Assignment assignment = gt.Run(instance);
  EXPECT_TRUE(gt.stats().converged);
  EXPECT_TRUE(IsNashEquilibrium(instance, assignment, 1e-9));
  EXPECT_TRUE(assignment.Validate(instance).ok());
}

}  // namespace
}  // namespace casc
