// The delta-evaluation kernel and the parallel assignment engine:
//  - keeper-backed StrategyUtility / ComputeBestResponse match the
//    from-scratch overloads (including the crowding/overfull branch)
//    through long random mutation sequences;
//  - keeper-aware ApplyMove keeps the keeper an exact mirror;
//  - ThreadPool runs every index exactly once with a static partition;
//  - parallel GT rounds (speculative evaluation, sequential apply) are
//    bit-identical to the serial path;
//  - the parallel replication fan-out folds to thread-count-independent
//    aggregates.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <span>
#include <thread>
#include <vector>

#include "algo/best_response.h"
#include "algo/gt_assigner.h"
#include "bench_util/replication.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "gen/synthetic.h"
#include "model/objective.h"
#include "model/score_keeper.h"

namespace casc {
namespace {

Instance RandomInstance(int workers, int tasks, uint64_t seed,
                        int capacity = 4, int min_group = 3) {
  Rng rng(seed);
  SyntheticInstanceConfig config;
  config.num_workers = workers;
  config.num_tasks = tasks;
  config.task.capacity = capacity;
  config.min_group_size = min_group;
  config.worker.radius_min = 0.25;
  config.worker.radius_max = 0.50;
  config.worker.speed_min = 0.05;
  config.worker.speed_max = 0.15;
  return GenerateSyntheticInstance(config, 0.0, &rng);
}

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](int64_t i) {
    hits[static_cast<size_t>(i)].fetch_add(1);
  });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPoolTest, HandlesFewerItemsThanThreads) {
  ThreadPool pool(8);
  std::atomic<int> total{0};
  pool.ParallelFor(3, [&](int64_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 3);
  pool.ParallelFor(0, [&](int64_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 3);
}

TEST(ThreadPoolTest, SingleThreadRunsInlineWithoutSpawning) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  bool all_inline = true;
  pool.ParallelFor(64, [&](int64_t) {
    if (std::this_thread::get_id() != caller) all_inline = false;
  });
  EXPECT_TRUE(all_inline);
}

TEST(ThreadPoolTest, IsReusableAcrossManyCalls) {
  ThreadPool pool(3);
  int64_t sum = 0;
  std::mutex mutex;
  for (int call = 0; call < 50; ++call) {
    pool.ParallelFor(17, [&](int64_t i) {
      std::lock_guard<std::mutex> lock(mutex);
      sum += i;
    });
  }
  EXPECT_EQ(sum, 50 * (16 * 17) / 2);
}

// ---------------------------------------------------------------------------
// Delta evaluation vs. from-scratch objective
// ---------------------------------------------------------------------------

class DeltaSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeltaSeedTest, StrategyUtilityMatchesScratchUnderChurn) {
  const Instance instance = RandomInstance(50, 15, GetParam());
  Assignment assignment(instance);
  ScoreKeeper keeper(instance, assignment);
  Rng rng(GetParam() ^ 0xDE17A);

  int overfull_checked = 0;
  for (int step = 0; step < 500; ++step) {
    // Random keeper-tracked move (possibly a crowding one).
    const WorkerIndex mover = static_cast<WorkerIndex>(
        rng.UniformInt(static_cast<uint64_t>(instance.num_workers())));
    const auto& valid = instance.ValidTasks(mover);
    if (!valid.empty() && rng.Bernoulli(0.9)) {
      const TaskIndex target =
          valid[rng.UniformInt(static_cast<uint64_t>(valid.size()))];
      ApplyMove(instance, &assignment, &keeper, mover, target);
    } else {
      ApplyMove(instance, &assignment, &keeper, mover, kNoTask);
    }

    // Probe: every valid strategy of a random worker, both paths.
    const WorkerIndex w = static_cast<WorkerIndex>(
        rng.UniformInt(static_cast<uint64_t>(instance.num_workers())));
    for (const TaskIndex t : instance.ValidTasks(w)) {
      WorkerIndex crowded_scratch = kNoWorker;
      WorkerIndex crowded_delta = kNoWorker;
      const double scratch =
          StrategyUtility(instance, assignment, w, t, &crowded_scratch);
      const double delta = StrategyUtility(instance, keeper, assignment, w,
                                           t, &crowded_delta);
      ASSERT_NEAR(delta, scratch, 1e-9)
          << "step " << step << " worker " << w << " task " << t;
      ASSERT_EQ(crowded_delta, crowded_scratch)
          << "step " << step << " worker " << w << " task " << t;
      if (assignment.TaskOf(w) != t &&
          assignment.GroupSize(t) >=
              instance.tasks()[static_cast<size_t>(t)].capacity) {
        ++overfull_checked;
      }
    }
  }
  // The crowding fallback must actually have been exercised.
  EXPECT_GT(overfull_checked, 0);
}

TEST_P(DeltaSeedTest, BestResponseMatchesScratch) {
  const Instance instance = RandomInstance(60, 20, GetParam() ^ 0xB57);
  Assignment assignment(instance);
  ScoreKeeper keeper(instance, assignment);
  Rng rng(GetParam() ^ 0xF00);

  for (int step = 0; step < 300; ++step) {
    const WorkerIndex mover = static_cast<WorkerIndex>(
        rng.UniformInt(static_cast<uint64_t>(instance.num_workers())));
    const auto& valid = instance.ValidTasks(mover);
    if (valid.empty()) continue;
    ApplyMove(instance, &assignment, &keeper, mover,
              valid[rng.UniformInt(static_cast<uint64_t>(valid.size()))]);

    const WorkerIndex w = static_cast<WorkerIndex>(
        rng.UniformInt(static_cast<uint64_t>(instance.num_workers())));
    const BestResponse scratch = ComputeBestResponse(instance, assignment, w);
    const BestResponse delta =
        ComputeBestResponse(instance, keeper, assignment, w);
    ASSERT_EQ(delta.task, scratch.task) << "step " << step;
    ASSERT_NEAR(delta.utility, scratch.utility, 1e-9) << "step " << step;
    ASSERT_EQ(delta.crowded_out, scratch.crowded_out) << "step " << step;
  }
}

TEST_P(DeltaSeedTest, TrackedApplyMoveKeepsKeeperAnExactMirror) {
  const Instance instance = RandomInstance(50, 15, GetParam() ^ 0x3A7);
  Assignment assignment(instance);
  ScoreKeeper keeper(instance, assignment);
  Rng rng(GetParam() ^ 0x919);

  for (int step = 0; step < 400; ++step) {
    const WorkerIndex w = static_cast<WorkerIndex>(
        rng.UniformInt(static_cast<uint64_t>(instance.num_workers())));
    const auto& valid = instance.ValidTasks(w);
    if (!valid.empty() && rng.Bernoulli(0.85)) {
      ApplyMove(instance, &assignment, &keeper, w,
                valid[rng.UniformInt(static_cast<uint64_t>(valid.size()))]);
    } else {
      ApplyMove(instance, &assignment, &keeper, w, kNoTask);
    }
  }
  for (TaskIndex t = 0; t < instance.num_tasks(); ++t) {
    const std::span<const WorkerIndex> keeper_group = keeper.GroupOf(t);
    const std::span<const WorkerIndex> assigned_group = assignment.GroupOf(t);
    EXPECT_TRUE(std::equal(keeper_group.begin(), keeper_group.end(),
                           assigned_group.begin(), assigned_group.end()))
        << "task " << t;
    EXPECT_NEAR(keeper.TaskScore(t),
                GroupScore(instance, t, assignment.GroupOf(t)), 1e-9)
        << "task " << t;
  }
  EXPECT_NEAR(keeper.TotalScore(), TotalScore(instance, assignment), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeltaSeedTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// ---------------------------------------------------------------------------
// Parallel GT: speculative evaluation, sequential apply — bit-identical
// ---------------------------------------------------------------------------

void ExpectIdenticalRuns(const Instance& instance, GtOptions serial_options) {
  GtOptions parallel_options = serial_options;
  serial_options.num_threads = 1;
  parallel_options.num_threads = 4;
  GtAssigner serial(serial_options);
  GtAssigner parallel(parallel_options);

  const Assignment serial_result = serial.Run(instance);
  const Assignment parallel_result = parallel.Run(instance);

  EXPECT_EQ(serial_result.Pairs(), parallel_result.Pairs());
  EXPECT_EQ(serial.stats().rounds, parallel.stats().rounds);
  EXPECT_EQ(serial.stats().moves, parallel.stats().moves);
  EXPECT_EQ(serial.stats().best_response_evals,
            parallel.stats().best_response_evals);
  EXPECT_EQ(serial.stats().best_response_skips,
            parallel.stats().best_response_skips);
  // Bit-identical trajectory, not merely close.
  ASSERT_EQ(serial.stats().round_scores.size(),
            parallel.stats().round_scores.size());
  for (size_t i = 0; i < serial.stats().round_scores.size(); ++i) {
    EXPECT_EQ(serial.stats().round_scores[i],
              parallel.stats().round_scores[i])
        << "round " << i;
  }
  EXPECT_EQ(serial.stats().final_score, parallel.stats().final_score);
}

class ParallelGtSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParallelGtSeedTest, PlainGtIsBitIdenticalToSerial) {
  const Instance instance = RandomInstance(90, 30, GetParam());
  ExpectIdenticalRuns(instance, GtOptions{});
}

TEST_P(ParallelGtSeedTest, LubIsBitIdenticalToSerial) {
  const Instance instance = RandomInstance(90, 30, GetParam() ^ 0x10B);
  GtOptions options;
  options.use_lub = true;
  ExpectIdenticalRuns(instance, options);
}

TEST_P(ParallelGtSeedTest, AllOptimizationsBitIdenticalToSerial) {
  const Instance instance = RandomInstance(120, 40, GetParam() ^ 0xA77);
  GtOptions options;
  options.use_lub = true;
  options.use_tsi = true;
  ExpectIdenticalRuns(instance, options);
}

TEST_P(ParallelGtSeedTest, ShuffledOrderAndRandomInitBitIdenticalToSerial) {
  const Instance instance = RandomInstance(80, 25, GetParam() ^ 0x5F1);
  GtOptions options;
  options.init = GtInit::kRandom;
  options.init_seed = GetParam();
  options.order = GtOrder::kShuffled;
  options.order_seed = GetParam() ^ 1;
  ExpectIdenticalRuns(instance, options);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelGtSeedTest,
                         ::testing::Values(31u, 32u, 33u, 34u));

TEST(ParallelGtTest, ParallelRunStillReachesVerifiedNash) {
  const Instance instance = RandomInstance(90, 30, 991);
  GtOptions options;
  options.num_threads = 4;
  GtAssigner gt(options);
  const Assignment assignment = gt.Run(instance);
  EXPECT_TRUE(gt.stats().converged);
  EXPECT_TRUE(assignment.Validate(instance).ok());
  EXPECT_TRUE(IsNashEquilibrium(instance, assignment, 1e-9));
}

// ---------------------------------------------------------------------------
// Parallel replication fan-out
// ---------------------------------------------------------------------------

TEST(ParallelReplicationTest, AggregatesAreThreadCountIndependent) {
  ExperimentSettings settings;
  settings.num_workers = 60;
  settings.num_tasks = 20;
  settings.rounds = 2;
  const std::vector<ApproachId> approaches = {ApproachId::kTpg,
                                              ApproachId::kGt};
  const std::vector<uint64_t> seeds = {7u, 8u, 9u};

  const auto serial =
      RunReplications(settings, DataKind::kSynthetic, approaches, seeds, 1);
  const auto parallel =
      RunReplications(settings, DataKind::kSynthetic, approaches, seeds, 3);

  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t a = 0; a < serial.size(); ++a) {
    EXPECT_EQ(serial[a].name, parallel[a].name);
    EXPECT_EQ(serial[a].score.Count(), parallel[a].score.Count());
    EXPECT_DOUBLE_EQ(serial[a].score.Mean(), parallel[a].score.Mean());
    EXPECT_DOUBLE_EQ(serial[a].score.Min(), parallel[a].score.Min());
    EXPECT_DOUBLE_EQ(serial[a].score.Max(), parallel[a].score.Max());
  }
}

}  // namespace
}  // namespace casc
