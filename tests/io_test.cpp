#include <gtest/gtest.h>

#include <sstream>

#include "algo/tpg_assigner.h"
#include "common/rng.h"
#include "gen/synthetic.h"
#include "model/io.h"
#include "model/objective.h"

namespace casc {
namespace {

Instance RandomInstance(int m, int n, uint64_t seed) {
  Rng rng(seed);
  SyntheticInstanceConfig config;
  config.num_workers = m;
  config.num_tasks = n;
  return GenerateSyntheticInstance(config, 1.5, &rng);
}

// ---------------------------------------------------------------------------
// Instance round trip
// ---------------------------------------------------------------------------

TEST(InstanceIoTest, RoundTripPreservesEverything) {
  const Instance original = RandomInstance(25, 10, 1);
  std::stringstream stream;
  ASSERT_TRUE(SaveInstance(original, &stream).ok());
  Result<Instance> loaded = LoadInstance(&stream);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded->num_workers(), original.num_workers());
  EXPECT_EQ(loaded->num_tasks(), original.num_tasks());
  EXPECT_DOUBLE_EQ(loaded->now(), original.now());
  EXPECT_EQ(loaded->min_group_size(), original.min_group_size());
  for (int i = 0; i < original.num_workers(); ++i) {
    const Worker& a = original.workers()[static_cast<size_t>(i)];
    const Worker& b = loaded->workers()[static_cast<size_t>(i)];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.location, b.location);
    EXPECT_DOUBLE_EQ(a.speed, b.speed);
    EXPECT_DOUBLE_EQ(a.radius, b.radius);
    EXPECT_DOUBLE_EQ(a.arrival_time, b.arrival_time);
  }
  for (int j = 0; j < original.num_tasks(); ++j) {
    const Task& a = original.tasks()[static_cast<size_t>(j)];
    const Task& b = loaded->tasks()[static_cast<size_t>(j)];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.location, b.location);
    EXPECT_DOUBLE_EQ(a.deadline, b.deadline);
    EXPECT_EQ(a.capacity, b.capacity);
  }
  for (int i = 0; i < original.num_workers(); ++i) {
    for (int k = 0; k < original.num_workers(); ++k) {
      EXPECT_DOUBLE_EQ(loaded->coop().Quality(i, k),
                       original.coop().Quality(i, k));
    }
  }
  // Valid pairs recomputed identically.
  EXPECT_EQ(loaded->NumValidPairs(), original.NumValidPairs());
}

TEST(InstanceIoTest, RoundTripPreservesSolverBehaviour) {
  const Instance original = RandomInstance(40, 15, 2);
  std::stringstream stream;
  ASSERT_TRUE(SaveInstance(original, &stream).ok());
  Result<Instance> loaded = LoadInstance(&stream);
  ASSERT_TRUE(loaded.ok());
  TpgAssigner tpg_a, tpg_b;
  const double score_a = TotalScore(original, tpg_a.Run(original));
  const double score_b = TotalScore(*loaded, tpg_b.Run(*loaded));
  EXPECT_DOUBLE_EQ(score_a, score_b);
}

TEST(InstanceIoTest, FileRoundTrip) {
  const Instance original = RandomInstance(10, 4, 3);
  const std::string path = ::testing::TempDir() + "/casc_instance.txt";
  ASSERT_TRUE(SaveInstanceToFile(original, path).ok());
  Result<Instance> loaded = LoadInstanceFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_workers(), 10);
}

TEST(InstanceIoTest, MissingFileIsNotFound) {
  Result<Instance> loaded =
      LoadInstanceFromFile("/nonexistent/dir/instance.txt");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(InstanceIoTest, RejectsWrongMagic) {
  std::stringstream stream("other-format v1\n");
  EXPECT_FALSE(LoadInstance(&stream).ok());
}

TEST(InstanceIoTest, RejectsTruncatedInput) {
  const Instance original = RandomInstance(8, 3, 4);
  std::stringstream stream;
  ASSERT_TRUE(SaveInstance(original, &stream).ok());
  const std::string full = stream.str();
  // Chop at several points; every prefix must fail cleanly.
  for (const size_t cut : {full.size() / 4, full.size() / 2,
                           full.size() - 5}) {
    std::stringstream truncated(full.substr(0, cut));
    EXPECT_FALSE(LoadInstance(&truncated).ok()) << "cut at " << cut;
  }
}

TEST(InstanceIoTest, RejectsOutOfRangeQuality) {
  std::stringstream stream(
      "casc-instance v1\n"
      "now 0 min_group 2\n"
      "workers 2\n"
      "0 0.1 0.1 0.5 0.5 0\n"
      "1 0.2 0.2 0.5 0.5 0\n"
      "tasks 1\n"
      "0 0.15 0.15 0 5 2\n"
      "coop\n"
      "0 1.5\n"
      "1.5 0\n"
      "end\n");
  const Result<Instance> loaded = LoadInstance(&stream);
  ASSERT_FALSE(loaded.ok());
}

TEST(InstanceIoTest, RejectsCapacityBelowMinGroup) {
  std::stringstream stream(
      "casc-instance v1\n"
      "now 0 min_group 3\n"
      "workers 0\n"
      "tasks 1\n"
      "0 0.15 0.15 0 5 2\n"
      "coop\n"
      "end\n");
  EXPECT_FALSE(LoadInstance(&stream).ok());
}

TEST(InstanceIoTest, EmptyInstanceRoundTrips) {
  Instance empty({}, {}, CooperationMatrix(0), 0.0, 2);
  std::stringstream stream;
  ASSERT_TRUE(SaveInstance(empty, &stream).ok());
  Result<Instance> loaded = LoadInstance(&stream);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_workers(), 0);
  EXPECT_EQ(loaded->num_tasks(), 0);
}

// ---------------------------------------------------------------------------
// Assignment round trip
// ---------------------------------------------------------------------------

TEST(AssignmentIoTest, RoundTrip) {
  const Instance instance = RandomInstance(30, 12, 5);
  TpgAssigner tpg;
  const Assignment original = tpg.Run(instance);
  std::stringstream stream;
  ASSERT_TRUE(SaveAssignment(original, &stream).ok());
  Result<Assignment> loaded = LoadAssignment(instance, &stream);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->Pairs(), original.Pairs());
  EXPECT_DOUBLE_EQ(TotalScore(instance, *loaded),
                   TotalScore(instance, original));
}

TEST(AssignmentIoTest, EmptyAssignmentRoundTrips) {
  const Instance instance = RandomInstance(5, 2, 6);
  const Assignment empty(instance);
  std::stringstream stream;
  ASSERT_TRUE(SaveAssignment(empty, &stream).ok());
  Result<Assignment> loaded = LoadAssignment(instance, &stream);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->NumAssigned(), 0);
}

TEST(AssignmentIoTest, RejectsOutOfRangeIndices) {
  const Instance instance = RandomInstance(5, 2, 7);
  std::stringstream stream(
      "casc-assignment v1\n"
      "pairs 1\n"
      "99 0\n"
      "end\n");
  const Result<Assignment> loaded = LoadAssignment(instance, &stream);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace casc
