#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <vector>

#include "algo/gt_assigner.h"
#include "common/rng.h"
#include "gen/synthetic.h"
#include "model/objective.h"
#include "net/net_dispatch.h"
#include "sim/event_stream.h"

namespace casc {
namespace {

AssignerFactory GtFactory() {
  return [] { return std::make_unique<GtAssigner>(); };
}

Instance SmallInstance(int num_workers, int num_tasks, uint64_t seed) {
  SyntheticInstanceConfig config;
  config.num_workers = num_workers;
  config.num_tasks = num_tasks;
  Rng rng(seed);
  return GenerateSyntheticInstance(config, /*now=*/0.0, &rng);
}

ShardedOptions MakeOptions(int shards_per_side, int num_threads = 1) {
  ShardedOptions options;
  options.shards_per_side = shards_per_side;
  options.num_threads = num_threads;
  return options;
}

// ---------------------------------------------------------------------------
// Bit-identity: zero-delay zero-loss network == in-process ShardedAssigner
// ---------------------------------------------------------------------------

TEST(NetDispatchTest, ZeroFaultNetworkBitIdenticalToInProcess) {
  for (const uint64_t seed : {1u, 7u, 23u}) {
    const Instance instance = SmallInstance(240, 80, seed);
    for (const int s_per_side : {1, 2, 4}) {
      ShardedAssigner in_process(MakeOptions(s_per_side), GtFactory());
      const Assignment expected = in_process.Run(instance);

      DistributedConfig dist;
      dist.num_nodes = 3;
      NetShardedAssigner net(MakeOptions(s_per_side), dist, GtFactory());
      const Assignment actual = net.Solve(instance);
      EXPECT_EQ(actual.Pairs(), expected.Pairs())
          << "seed " << seed << " S " << s_per_side;
      EXPECT_GT(net.metrics().net_messages, 0);
      EXPECT_EQ(net.metrics().net_dropped, 0);
      EXPECT_EQ(net.metrics().lost_shards, 0);
      EXPECT_EQ(net.metrics().net_failovers, 0);
    }
  }
}

TEST(NetDispatchTest, DelaysAndJitterReorderArrivalsButNotTheResult) {
  // Jittered per-link delays permute the order shard results reach the
  // coordinator; the ascending-shard fold makes the assignment identical
  // anyway — the end-to-end order-independence property.
  const Instance instance = SmallInstance(260, 90, 5);
  ShardedAssigner in_process(MakeOptions(3), GtFactory());
  const Assignment expected = in_process.Run(instance);
  for (const uint64_t net_seed : {11u, 12u, 13u}) {
    DistributedConfig dist;
    dist.num_nodes = 4;
    dist.network.base_delay = 0.01;
    dist.network.jitter = 0.05;
    dist.network.solve_seconds = 0.02;
    dist.network.seed = net_seed;
    dist.protocol.retry_timeout = 10.0;  // delays alone must not retry
    NetShardedAssigner net(MakeOptions(3), dist, GtFactory());
    const Assignment actual = net.Solve(instance);
    EXPECT_EQ(actual.Pairs(), expected.Pairs()) << "net seed " << net_seed;
    EXPECT_EQ(net.metrics().net_retries, 0);
  }
}

TEST(NetDispatchTest, DropsWithRetriesStillConvergeToTheSameAssignment) {
  // Retries re-draw the drop coin, so with enough attempts every shard
  // result eventually lands and the batch is bit-identical to the
  // fault-free run: drops cost latency and bytes, not quality.
  const Instance instance = SmallInstance(220, 70, 9);
  ShardedAssigner in_process(MakeOptions(2), GtFactory());
  const Assignment expected = in_process.Run(instance);

  DistributedConfig dist;
  dist.num_nodes = 3;
  dist.network.drop_rate = 0.25;
  dist.network.base_delay = 0.01;
  dist.protocol.retry_timeout = 0.1;
  dist.protocol.max_attempts = 12;  // enough that loss of a shard is
                                    // astronomically unlikely
  NetShardedAssigner net(MakeOptions(2), dist, GtFactory());
  const Assignment actual = net.Solve(instance);
  EXPECT_EQ(actual.Pairs(), expected.Pairs());
  EXPECT_EQ(net.metrics().lost_shards, 0);
  EXPECT_GT(net.metrics().net_dropped, 0);
  EXPECT_GT(net.metrics().net_retries, 0);
}

TEST(NetDispatchTest, ReplaySameConfigSameSeedIsIdentical) {
  const Instance instance = SmallInstance(200, 60, 3);
  const auto run = [&](uint64_t seed) {
    DistributedConfig dist;
    dist.num_nodes = 3;
    dist.network.drop_rate = 0.2;
    dist.network.jitter = 0.02;
    dist.network.seed = seed;
    dist.protocol.retry_timeout = 0.1;
    dist.protocol.max_attempts = 10;
    NetShardedAssigner net(MakeOptions(2), dist, GtFactory());
    Assignment assignment = net.Solve(instance);
    return std::make_pair(assignment.Pairs(), net.net_stats().messages_sent);
  };
  const auto [pairs_a, sent_a] = run(77);
  const auto [pairs_b, sent_b] = run(77);
  EXPECT_EQ(pairs_a, pairs_b);
  EXPECT_EQ(sent_a, sent_b);
}

// ---------------------------------------------------------------------------
// Failover
// ---------------------------------------------------------------------------

TEST(NetDispatchTest, DeadNodeFailsOverAndTheBatchStillMatches) {
  // Node 1 is down from the start and never returns. Its shards fail
  // over to the survivors; since every solver is deterministic the final
  // assignment still matches the in-process run exactly.
  const Instance instance = SmallInstance(240, 80, 13);
  ShardedAssigner in_process(MakeOptions(2), GtFactory());
  const Assignment expected = in_process.Run(instance);

  DistributedConfig dist;
  dist.num_nodes = 3;
  dist.network.crashes.push_back({/*node=*/1, /*time=*/0.0,
                                  /*restart_time=*/-1.0});
  dist.protocol.retry_timeout = 0.05;
  dist.protocol.max_attempts = 2;
  NetShardedAssigner net(MakeOptions(2), dist, GtFactory());
  const Assignment actual = net.Solve(instance);
  EXPECT_EQ(actual.Pairs(), expected.Pairs());
  EXPECT_GT(net.metrics().net_failovers, 0);
  EXPECT_EQ(net.metrics().lost_shards, 0);
  EXPECT_TRUE(actual.Validate(instance).ok());
}

TEST(NetDispatchTest, AllNodesDeadLosesShardsButCommitsAValidBatch) {
  // Every solver node is gone: all shards are lost and their workers are
  // absorbed into the coordinator's reconcile passes, which still commit
  // a valid assignment (degraded, not deadlocked).
  const Instance instance = SmallInstance(150, 50, 21);
  DistributedConfig dist;
  dist.num_nodes = 2;
  dist.network.crashes.push_back({1, 0.0, -1.0});
  dist.network.crashes.push_back({2, 0.0, -1.0});
  dist.protocol.retry_timeout = 0.05;
  dist.protocol.max_attempts = 2;
  NetShardedAssigner net(MakeOptions(2), dist, GtFactory());
  const Assignment assignment = net.Solve(instance);
  EXPECT_TRUE(assignment.Validate(instance).ok());
  EXPECT_GT(net.metrics().lost_shards, 0);
  // The reconcile passes (same-code greedy insert + seed + polish over
  // the absorbed workers) recover real work even with zero solver nodes.
  EXPECT_GT(assignment.NumAssigned(), 0);
}

TEST(NetDispatchTest, RestartedNodeReSolvesAfterCacheLoss) {
  // Crash node 1 mid-run with a restart: batches after the restart
  // dispatch to it again and it re-solves from a clean slate.
  const Instance instance = SmallInstance(200, 60, 31);
  DistributedConfig dist;
  dist.num_nodes = 2;
  dist.network.solve_seconds = 0.1;
  dist.network.crashes.push_back({1, 0.05, 0.3});
  dist.protocol.retry_timeout = 0.2;
  dist.protocol.max_attempts = 4;
  dist.protocol.heartbeat_interval = 0.1;
  NetShardedAssigner net(MakeOptions(2), dist, GtFactory());
  const Assignment first = net.Solve(instance);
  EXPECT_TRUE(first.Validate(instance).ok());
  // Second batch on the same network: node 1 restarted and serves again.
  const Assignment second = net.Solve(instance);
  EXPECT_EQ(first.Pairs(), second.Pairs());
  EXPECT_EQ(net.simulator().stats().crashes, 1);
  EXPECT_EQ(net.simulator().stats().restarts, 1);
}

// ---------------------------------------------------------------------------
// DispatchService integration & the kill switch
// ---------------------------------------------------------------------------

/// Streaming scenario on one global matrix (mirrors sharded_dispatch_test).
struct ServiceFixture {
  std::vector<Worker> workers;
  std::vector<Task> tasks;
  CooperationMatrix coop;

  ServiceFixture(int m, int n, double horizon, uint64_t seed) : coop(m) {
    Rng rng(seed);
    for (int i = 0; i < m; ++i) {
      Worker worker;
      worker.id = i;
      worker.location = {rng.Uniform(), rng.Uniform()};
      worker.speed = 0.2;
      worker.radius = 0.4;
      worker.arrival_time = rng.Uniform(0.0, horizon);
      workers.push_back(worker);
    }
    for (int j = 0; j < n; ++j) {
      Task task;
      task.id = j;
      task.location = {rng.Uniform(), rng.Uniform()};
      task.create_time = rng.Uniform(0.0, horizon);
      task.deadline = task.create_time + 3.0;
      task.capacity = 4;
      tasks.push_back(task);
    }
    for (int i = 0; i < m; ++i) {
      for (int k = i + 1; k < m; ++k) {
        coop.SetSymmetric(i, k, rng.Uniform());
      }
    }
  }
};

TEST(DistributedDispatchServiceTest, StreamingMatchesInProcessAtZeroFaults) {
  const ServiceFixture fixture(60, 24, 4.0, 71);
  const EventStream stream(fixture.workers, fixture.tasks);
  DispatchConfig config;
  config.sharded = MakeOptions(2);
  config.min_group_size = 3;

  DispatchService in_process(config, &fixture.coop, GtFactory());
  const RunSummary expected = in_process.Run(stream);

  DistributedConfig dist;
  dist.num_nodes = 3;
  DistributedDispatchService distributed(config, dist, &fixture.coop,
                                         GtFactory());
  ASSERT_TRUE(distributed.distributed());
  const RunSummary actual = distributed.Run(stream);

  ASSERT_EQ(actual.batches.size(), expected.batches.size());
  for (size_t i = 0; i < expected.batches.size(); ++i) {
    EXPECT_DOUBLE_EQ(actual.batches[i].score, expected.batches[i].score);
    EXPECT_EQ(actual.batches[i].assigned_workers,
              expected.batches[i].assigned_workers);
    EXPECT_EQ(actual.batches[i].completed_tasks,
              expected.batches[i].completed_tasks);
  }
  // The distributed path reported real network activity per batch.
  bool saw_messages = false;
  for (const ServiceMetrics& metrics :
       distributed.service().batch_metrics()) {
    if (metrics.net_messages > 0) saw_messages = true;
  }
  EXPECT_TRUE(saw_messages);
}

TEST(DistributedDispatchServiceTest, KillSwitchForcesInProcessPath) {
  const ServiceFixture fixture(30, 10, 2.0, 5);
  DispatchConfig config;
  config.sharded = MakeOptions(2);
  DistributedConfig dist;
  ASSERT_EQ(setenv("CASC_NO_DISTRIBUTED", "1", 1), 0);
  DistributedDispatchService service(config, dist, &fixture.coop,
                                     GtFactory());
  unsetenv("CASC_NO_DISTRIBUTED");
  EXPECT_FALSE(service.distributed());
  EXPECT_EQ(service.net_solver(), nullptr);

  DistributedConfig disabled;
  disabled.enabled = false;
  DistributedDispatchService service2(config, disabled, &fixture.coop,
                                      GtFactory());
  EXPECT_FALSE(service2.distributed());
}

// ---------------------------------------------------------------------------
// Fault-injection fuzz: validity, termination, retention
// ---------------------------------------------------------------------------

/// Retention floor the fuzz asserts: even under drops, a partition window
/// and a node crash, a batch must keep at least this fraction of the
/// fault-free run's assigned workers (failover + absorption make the
/// realistic outcome 100%; the floor guards the degraded worst case).
constexpr double kRetentionFloor = 0.25;

TEST(NetDispatchFuzzTest, SeededFaultsPreserveValidityTerminationRetention) {
  const Instance instance = SmallInstance(140, 48, 77);
  ShardedAssigner in_process(MakeOptions(2), GtFactory());
  const Assignment baseline = in_process.Run(instance);
  const int baseline_assigned = baseline.NumAssigned();
  ASSERT_GT(baseline_assigned, 0);

  int identical = 0;
  int degraded = 0;
  for (uint64_t seed = 0; seed < 100; ++seed) {
    Rng rng(seed * 2654435761u + 1);
    DistributedConfig dist;
    dist.num_nodes = 3;
    dist.network.seed = seed + 1;
    dist.network.drop_rate = rng.Uniform(0.0, 0.4);
    dist.network.base_delay = rng.Uniform(0.0, 0.05);
    dist.network.jitter = rng.Uniform(0.0, 0.02);
    dist.network.solve_seconds = rng.Uniform(0.0, 0.05);
    // One partition window separating one node from the rest.
    NetPartition partition;
    partition.start = rng.Uniform(0.0, 0.5);
    partition.end = partition.start + rng.Uniform(0.1, 1.5);
    partition.island = {static_cast<NodeId>(1 + seed % 3)};
    dist.network.partitions.push_back(partition);
    // One crash; 50% of the seeds let the node come back.
    CrashEvent crash;
    crash.node = static_cast<NodeId>(1 + (seed / 3) % 3);
    crash.time = rng.Uniform(0.0, 0.5);
    crash.restart_time =
        rng.Bernoulli(0.5) ? crash.time + rng.Uniform(0.1, 1.0) : -1.0;
    dist.network.crashes.push_back(crash);
    // Arbitrary timeout/retry settings: termination must not depend on
    // them being tuned.
    dist.protocol.retry_timeout = rng.Uniform(0.02, 0.5);
    dist.protocol.retry_backoff = rng.Bernoulli(0.5) ? 1.0 : 2.0;
    dist.protocol.max_attempts = 1 + static_cast<int>(rng.Uniform(0.0, 6.0));
    dist.protocol.heartbeat_interval =
        rng.Bernoulli(0.5) ? 0.0 : rng.Uniform(0.05, 0.3);

    NetShardedAssigner net(MakeOptions(2), dist, GtFactory());
    // Termination: Solve CHECK-fails (and kills the test) if the
    // protocol stalls or blows the event budget.
    const Assignment assignment = net.Solve(instance);

    const Status status = assignment.Validate(instance);
    ASSERT_TRUE(status.ok()) << "seed " << seed << ": " << status.message();
    const double retention = static_cast<double>(assignment.NumAssigned()) /
                             static_cast<double>(baseline_assigned);
    EXPECT_GE(retention, kRetentionFloor) << "seed " << seed;
    if (net.metrics().lost_shards == 0 &&
        assignment.Pairs() == baseline.Pairs()) {
      ++identical;
    } else {
      ++degraded;
    }
  }
  // With bounded faults and failover, most seeds recover the exact
  // fault-free assignment; all of them stay valid and above the floor.
  EXPECT_GT(identical, 50) << "identical=" << identical
                           << " degraded=" << degraded;
}

}  // namespace
}  // namespace casc
