// Property tests for the cross-batch warm-start solve path: a warm batch
// must produce a certified Nash equilibrium, zero-churn batches must make
// no moves and repeat the previous commit, zero-carry-over batches must be
// bit-identical to a cold run, and the warm path must be bit-identical
// across solver threads, shard threads and both pipeline modes. The
// CASC_NO_WARM_START kill switch must restore cold behavior exactly.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "algo/best_response.h"
#include "algo/gt_assigner.h"
#include "common/rng.h"
#include "gen/trace.h"
#include "model/cooperation_matrix.h"
#include "service/dispatch_service.h"
#include "sim/batch_runner.h"
#include "sim/event_stream.h"

namespace casc {
namespace {

// Scoped environment override; restores the prior state on destruction
// so env-driven kill switches never leak across tests.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_old_;
  std::string old_;
};

/// GtAssigner wrapper that certifies every returned batch assignment
/// with the full Nash-equilibrium check and records the assignment as
/// stable (worker id, task id) pairs, so batches of different runs and
/// different instances can be compared exactly.
class RecordingGtAssigner : public Assigner {
 public:
  struct Record {
    bool nash = false;
    bool converged = false;
    bool warm = false;
    int64_t evals = 0;
    int rounds = 0;
    int64_t moves = 0;
    int64_t dirty_workers = 0;
    std::vector<std::pair<int64_t, int64_t>> pairs;  // (worker id, task id)
  };

  explicit RecordingGtAssigner(GtOptions options = {}) : inner_(options) {}

  std::string Name() const override { return inner_.Name(); }

  Assignment Run(const Instance& instance) override {
    inner_.set_workspace(workspace());
    inner_.set_solve_delta(solve_delta());
    Assignment result = inner_.Run(instance);
    inner_.set_solve_delta(nullptr);
    inner_.set_workspace(nullptr);
    stats_ = inner_.stats();

    Record record;
    record.nash = IsNashEquilibrium(instance, result, 1e-9);
    record.converged = stats_.converged;
    record.warm = stats_.warm_started;
    record.evals = stats_.best_response_evals;
    record.rounds = stats_.rounds;
    record.moves = stats_.moves;
    record.dirty_workers = stats_.dirty_workers;
    record.pairs.reserve(static_cast<size_t>(instance.num_workers()));
    for (WorkerIndex w = 0; w < instance.num_workers(); ++w) {
      const TaskIndex t = result.TaskOf(w);
      record.pairs.emplace_back(
          instance.workers()[static_cast<size_t>(w)].id,
          t == kNoTask ? -1 : instance.tasks()[static_cast<size_t>(t)].id);
    }
    records_.push_back(std::move(record));
    return result;
  }

  const std::vector<Record>& records() const { return records_; }

 private:
  GtAssigner inner_;
  std::vector<Record> records_;
};

struct StreamFixture {
  Trace trace;
  CooperationMatrix coop{0};
};

/// A long carry-over-heavy trace (same family as the incremental tests):
/// generous task lifetimes keep open tasks and idle workers persisting
/// across many batches, which is what feeds the warm-start skeleton.
StreamFixture MakeLongFixture(uint64_t seed, double horizon = 270.0) {
  StreamFixture fixture;
  Rng rng(seed);
  TraceConfig config;
  config.horizon = horizon;
  config.worker_rate = 3.0;
  config.task_rate = 1.5;
  config.worker.radius_min = 0.15;
  config.worker.radius_max = 0.30;
  config.worker.speed_min = 0.05;
  config.worker.speed_max = 0.10;
  config.task.remaining_time = 6.0;
  config.task.capacity = 4;
  fixture.trace = GenerateTrace(config, &rng);
  const int m = static_cast<int>(fixture.trace.workers.size());
  fixture.coop = CooperationMatrix(m);
  for (int i = 0; i < m; ++i) {
    for (int k = i + 1; k < m; ++k) {
      fixture.coop.SetSymmetric(i, k, rng.Uniform());
    }
  }
  return fixture;
}

/// Exact BatchMetrics equality over everything except wall times,
/// including the solver convergence telemetry.
void ExpectIdenticalBatches(const RunSummary& expected,
                            const RunSummary& actual,
                            const std::string& label) {
  ASSERT_EQ(expected.batches.size(), actual.batches.size()) << label;
  for (size_t i = 0; i < expected.batches.size(); ++i) {
    const BatchMetrics& e = expected.batches[i];
    const BatchMetrics& a = actual.batches[i];
    ASSERT_EQ(e.num_workers, a.num_workers) << label << " batch " << i;
    ASSERT_EQ(e.num_tasks, a.num_tasks) << label << " batch " << i;
    ASSERT_EQ(e.valid_pairs, a.valid_pairs) << label << " batch " << i;
    ASSERT_EQ(e.score, a.score) << label << " batch " << i;  // bitwise
    ASSERT_EQ(e.assigned_workers, a.assigned_workers)
        << label << " batch " << i;
    ASSERT_EQ(e.completed_tasks, a.completed_tasks)
        << label << " batch " << i;
    ASSERT_EQ(e.gt_rounds, a.gt_rounds) << label << " batch " << i;
    ASSERT_EQ(e.solve_moves, a.solve_moves) << label << " batch " << i;
    ASSERT_EQ(e.dirty_workers, a.dirty_workers) << label << " batch " << i;
    ASSERT_EQ(e.warm_started, a.warm_started) << label << " batch " << i;
  }
}

// ---------------------------------------------------------------------------
// (a) Zero churn: warm batches make no moves and repeat the previous
// commit bit-for-bit (monolithic path).
// ---------------------------------------------------------------------------

TEST(WarmStartTest, ZeroChurnBatchesMakeNoMovesAndRepeatTheCommit) {
  // Cluster A (starts in batch 0 and leaves for the whole run): task T0
  // with three co-located workers. Cluster B (carries over unchanged):
  // one task with only two workers in range — below B, so it can never
  // be staffed or started, and the pool repeats identically. A final
  // already-expired task extends the horizon without perturbing anything.
  std::vector<Worker> workers = {
      {0, {0.2, 0.2}, 1.0, 0.1, 0.0}, {1, {0.2, 0.2}, 1.0, 0.1, 0.0},
      {2, {0.2, 0.2}, 1.0, 0.1, 0.0}, {3, {0.8, 0.8}, 1.0, 0.1, 0.0},
      {4, {0.8, 0.8}, 1.0, 0.1, 0.0},
  };
  std::vector<Task> tasks = {
      {100, {0.2, 0.2}, 0.0, 100.0, 3},
      {101, {0.8, 0.8}, 0.0, 1000.0, 3},
      {102, {0.5, 0.5}, 8.0, 7.5, 3},  // expired on arrival (horizon pad)
  };
  CooperationMatrix coop(5);
  Rng rng(11);
  for (int i = 0; i < 5; ++i) {
    for (int k = i + 1; k < 5; ++k) {
      coop.SetSymmetric(i, k, 0.3 + 0.5 * rng.Uniform());
    }
  }
  const EventStream stream(workers, tasks);

  BatchRunnerConfig config;
  config.min_group_size = 3;
  config.task_duration = 100.0;  // cluster A never returns in this run
  const BatchRunner runner(config);
  RecordingGtAssigner recorder;
  const RunSummary summary = runner.RunStreaming(stream, coop, &recorder);

  ASSERT_GE(summary.batches.size(), 8u);
  ASSERT_EQ(summary.batches.size(), recorder.records().size());

  // Batch 0 is cold and starts cluster A.
  EXPECT_FALSE(summary.batches[0].warm_started);
  EXPECT_EQ(summary.batches[0].completed_tasks, 1);
  EXPECT_EQ(summary.batches[0].assigned_workers, 3);
  EXPECT_TRUE(recorder.records()[0].nash);

  // Every later batch sees the identical cluster-B pool: warm, no dirty
  // workers, no moves, one (verification-only) round, and the committed
  // assignment repeats the previous one exactly.
  for (size_t i = 1; i < summary.batches.size(); ++i) {
    const BatchMetrics& batch = summary.batches[i];
    EXPECT_TRUE(batch.warm_started) << "batch " << i;
    EXPECT_EQ(batch.solve_moves, 0) << "batch " << i;
    EXPECT_EQ(batch.dirty_workers, 0) << "batch " << i;
    EXPECT_EQ(batch.gt_rounds, 1) << "batch " << i;
    const RecordingGtAssigner::Record& record = recorder.records()[i];
    EXPECT_TRUE(record.nash) << "batch " << i;
    EXPECT_TRUE(record.converged) << "batch " << i;
    if (i >= 2) {
      EXPECT_EQ(record.pairs, recorder.records()[i - 1].pairs)
          << "batch " << i << " diverged from the previous commit";
      EXPECT_EQ(batch.score, summary.batches[i - 1].score) << "batch " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// (b) All-fresh batches: zero carry-over falls back to the literal cold
// path, bit-identical to CASC_NO_WARM_START.
// ---------------------------------------------------------------------------

TEST(WarmStartTest, AllFreshBatchesAreBitIdenticalToCold) {
  // Waves of 3 co-located workers plus one capacity-3 task, far apart in
  // time: every wave's group starts and leaves, so each batch begins with
  // an empty pool and nothing ever carries over.
  std::vector<Worker> workers;
  std::vector<Task> tasks;
  const int kWaves = 12;
  Rng geo(23);
  for (int k = 0; k < kWaves; ++k) {
    const double t = 2.0 * k;
    const Point center{0.1 + 0.8 * geo.Uniform(), 0.1 + 0.8 * geo.Uniform()};
    for (int j = 0; j < 3; ++j) {
      workers.push_back({3 * k + j, center, 1.0, 0.1, t});
    }
    tasks.push_back({1000 + k, center, t, t + 1.5, 3});
  }
  CooperationMatrix coop(3 * kWaves);
  Rng rng(29);
  for (int i = 0; i < 3 * kWaves; ++i) {
    for (int k = i + 1; k < 3 * kWaves; ++k) {
      coop.SetSymmetric(i, k, 0.2 + 0.6 * rng.Uniform());
    }
  }
  const EventStream stream(workers, tasks);

  BatchRunnerConfig config;
  config.min_group_size = 3;
  config.task_duration = 1000.0;  // started workers never come back
  const BatchRunner runner(config);

  RecordingGtAssigner warm_recorder;
  const RunSummary warm = runner.RunStreaming(stream, coop, &warm_recorder);
  ASSERT_GE(warm.batches.size(), static_cast<size_t>(kWaves));
  for (size_t i = 0; i < warm.batches.size(); ++i) {
    // Zero carry-over: the delta is never published, every batch is cold.
    EXPECT_FALSE(warm.batches[i].warm_started) << "batch " << i;
    EXPECT_TRUE(warm_recorder.records()[i].nash) << "batch " << i;
  }

  RecordingGtAssigner cold_recorder;
  RunSummary cold;
  {
    ScopedEnv off("CASC_NO_WARM_START", "1");
    cold = runner.RunStreaming(stream, coop, &cold_recorder);
  }
  ExpectIdenticalBatches(cold, warm, "all-fresh warm vs cold");
  ASSERT_EQ(cold_recorder.records().size(), warm_recorder.records().size());
  for (size_t i = 0; i < cold_recorder.records().size(); ++i) {
    EXPECT_EQ(cold_recorder.records()[i].pairs,
              warm_recorder.records()[i].pairs)
        << "batch " << i;
  }
}

// ---------------------------------------------------------------------------
// (c) 200+-batch audited trace: every batch (warm or cold) must be a
// certified Nash equilibrium, warm batches must be common, and the warm
// run must do strictly less best-response work than the cold run.
// ---------------------------------------------------------------------------

TEST(WarmStartTest, LongAuditedTraceCertifiesEveryBatch) {
  const StreamFixture fixture = MakeLongFixture(701);
  ASSERT_FALSE(fixture.trace.workers.empty());
  ASSERT_FALSE(fixture.trace.tasks.empty());
  const EventStream stream(fixture.trace.workers, fixture.trace.tasks);
  // The audit mode additionally CHECKs every incrementally-built CSR
  // index byte-for-byte against a from-scratch build inside the run.
  ScopedEnv audit("CASC_STREAM_AUDIT", "1");

  BatchRunnerConfig config;
  config.min_group_size = 3;
  config.task_duration = 2.0;
  const BatchRunner runner(config);

  RecordingGtAssigner warm_recorder;
  const RunSummary warm =
      runner.RunStreaming(stream, fixture.coop, &warm_recorder);
  ASSERT_GE(warm.batches.size(), 200u) << "trace too short for the test";

  int64_t warm_evals = 0;
  int warm_batches = 0;
  for (size_t i = 0; i < warm_recorder.records().size(); ++i) {
    const RecordingGtAssigner::Record& record = warm_recorder.records()[i];
    ASSERT_TRUE(record.nash) << "batch " << i << " is not an equilibrium";
    ASSERT_TRUE(record.converged) << "batch " << i;
    warm_evals += record.evals;
    if (record.warm) ++warm_batches;
  }
  // The carry-over-heavy trace must actually exercise the warm path.
  EXPECT_GT(warm_batches, static_cast<int>(warm.batches.size()) / 2);

  RecordingGtAssigner cold_recorder;
  RunSummary cold;
  {
    ScopedEnv off("CASC_NO_WARM_START", "1");
    cold = runner.RunStreaming(stream, fixture.coop, &cold_recorder);
  }
  int64_t cold_evals = 0;
  for (const RecordingGtAssigner::Record& record :
       cold_recorder.records()) {
    ASSERT_TRUE(record.nash);
    cold_evals += record.evals;
    EXPECT_FALSE(record.warm);
  }
  // The point of the warm start: strictly less best-response work.
  EXPECT_LT(warm_evals, cold_evals);
  // And comparable solution quality (different equilibria are allowed;
  // a collapse to trivial equilibria is not).
  EXPECT_GT(warm.TotalScore(), 0.8 * cold.TotalScore());
}

// ---------------------------------------------------------------------------
// Warm solves are bit-identical across solver thread counts.
// ---------------------------------------------------------------------------

TEST(WarmStartTest, SolverThreadSweepBitIdenticalWhileWarm) {
  const StreamFixture fixture = MakeLongFixture(702, /*horizon=*/80.0);
  const EventStream stream(fixture.trace.workers, fixture.trace.tasks);
  BatchRunnerConfig config;
  config.min_group_size = 3;
  config.task_duration = 2.0;
  const BatchRunner runner(config);

  std::vector<RecordingGtAssigner::Record> baseline;
  RunSummary baseline_summary;
  for (const int threads : {1, 2, 4, 8}) {
    GtOptions options;
    options.num_threads = threads;
    RecordingGtAssigner recorder(options);
    const RunSummary summary =
        runner.RunStreaming(stream, fixture.coop, &recorder);
    int warm_batches = 0;
    for (const RecordingGtAssigner::Record& record : recorder.records()) {
      ASSERT_TRUE(record.nash);
      if (record.warm) ++warm_batches;
    }
    EXPECT_GT(warm_batches, 0) << "threads=" << threads;
    if (threads == 1) {
      baseline = recorder.records();
      baseline_summary = summary;
      continue;
    }
    const std::string label = "threads=" + std::to_string(threads);
    ExpectIdenticalBatches(baseline_summary, summary, label);
    ASSERT_EQ(baseline.size(), recorder.records().size()) << label;
    for (size_t i = 0; i < baseline.size(); ++i) {
      ASSERT_EQ(baseline[i].pairs, recorder.records()[i].pairs)
          << label << " batch " << i;
      ASSERT_EQ(baseline[i].rounds, recorder.records()[i].rounds)
          << label << " batch " << i;
      ASSERT_EQ(baseline[i].moves, recorder.records()[i].moves)
          << label << " batch " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// (d) Dispatch sweep: {incremental, pipeline} x shard threads {1,2,4,8}
// x {warm on, warm off} — bit-identical within each warm mode.
// ---------------------------------------------------------------------------

TEST(WarmStartTest, DispatchSweepBitIdenticalWithinEachWarmMode) {
  const StreamFixture fixture = MakeLongFixture(703, /*horizon=*/140.0);
  const EventStream stream(fixture.trace.workers, fixture.trace.tasks);
  ScopedEnv no_inc("CASC_NO_INCREMENTAL", nullptr);
  ScopedEnv no_pipe("CASC_NO_PIPELINE", nullptr);
  ScopedEnv no_warm("CASC_NO_WARM_START", nullptr);

  auto run = [&](bool warm, bool incremental, bool pipeline, int threads,
                 std::vector<ServiceMetrics>* service_out) {
    DispatchConfig config;
    config.sharded.shards_per_side = 2;
    config.sharded.num_threads = threads;
    config.min_group_size = 3;
    config.task_duration = 2.0;
    config.max_tasks_per_batch = 4;  // exercise deferral carry-over
    config.enable_incremental = incremental;
    config.enable_pipeline = pipeline;
    config.enable_warm_start = warm;
    DispatchService service(
        config, &fixture.coop,
        [] { return std::make_unique<GtAssigner>(); });
    RunSummary summary = service.Run(stream);
    if (service_out != nullptr) *service_out = service.batch_metrics();
    return summary;
  };

  struct Combo {
    bool incremental;
    bool pipeline;
    int threads;
  };
  const std::vector<Combo> combos = {
      {true, true, 1}, {false, false, 2}, {true, false, 4},
      {false, true, 4}, {true, true, 8},
  };

  for (const bool warm : {true, false}) {
    std::vector<ServiceMetrics> baseline_service;
    const RunSummary baseline =
        run(warm, /*incremental=*/true, /*pipeline=*/false, 1,
            &baseline_service);
    ASSERT_GE(baseline.batches.size(), 80u) << "trace too short";

    int warm_batches = 0;
    for (const BatchMetrics& batch : baseline.batches) {
      if (batch.warm_started) ++warm_batches;
    }
    if (warm) {
      EXPECT_GT(warm_batches, 0) << "warm mode never engaged";
    } else {
      EXPECT_EQ(warm_batches, 0) << "warm engaged with the switch off";
    }

    for (const Combo& combo : combos) {
      const std::string label =
          std::string("warm=") + (warm ? "1" : "0") +
          " inc=" + (combo.incremental ? "1" : "0") +
          " pipe=" + (combo.pipeline ? "1" : "0") +
          " threads=" + std::to_string(combo.threads);
      std::vector<ServiceMetrics> service_metrics;
      const RunSummary actual = run(warm, combo.incremental, combo.pipeline,
                                    combo.threads, &service_metrics);
      ExpectIdenticalBatches(baseline, actual, label);
      ASSERT_EQ(service_metrics.size(), baseline_service.size()) << label;
      for (size_t i = 0; i < service_metrics.size(); ++i) {
        const ServiceMetrics& e = baseline_service[i];
        const ServiceMetrics& a = service_metrics[i];
        ASSERT_EQ(e.solve_rounds, a.solve_rounds) << label << " batch " << i;
        ASSERT_EQ(e.solve_moves, a.solve_moves) << label << " batch " << i;
        ASSERT_EQ(e.dirty_workers, a.dirty_workers)
            << label << " batch " << i;
        ASSERT_EQ(e.warm_started, a.warm_started) << label << " batch " << i;
        ASSERT_EQ(e.adopted_boundary, a.adopted_boundary)
            << label << " batch " << i;
        ASSERT_EQ(e.polish_moves, a.polish_moves) << label << " batch " << i;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Kill switch: CASC_NO_WARM_START is exactly enable_warm_start = false.
// ---------------------------------------------------------------------------

TEST(WarmStartTest, KillSwitchMatchesConfigOff) {
  const StreamFixture fixture = MakeLongFixture(704, /*horizon=*/40.0);
  const EventStream stream(fixture.trace.workers, fixture.trace.tasks);

  auto run = [&](bool config_warm) {
    DispatchConfig config;
    config.sharded.shards_per_side = 2;
    config.min_group_size = 3;
    config.task_duration = 2.0;
    config.enable_warm_start = config_warm;
    DispatchService service(
        config, &fixture.coop,
        [] { return std::make_unique<GtAssigner>(); });
    return service.Run(stream);
  };

  RunSummary env_off;
  {
    ScopedEnv off("CASC_NO_WARM_START", "1");
    env_off = run(/*config_warm=*/true);
  }
  RunSummary config_off;
  {
    ScopedEnv on("CASC_NO_WARM_START", nullptr);
    config_off = run(/*config_warm=*/false);
  }
  ASSERT_FALSE(env_off.batches.empty());
  for (const BatchMetrics& batch : env_off.batches) {
    EXPECT_FALSE(batch.warm_started);
  }
  ExpectIdenticalBatches(config_off, env_off, "env kill switch vs config");
}

// ---------------------------------------------------------------------------
// Telemetry: the convergence counters surface in every JSON layer.
// ---------------------------------------------------------------------------

TEST(WarmStartTest, ConvergenceTelemetrySurfacesInJson) {
  const StreamFixture fixture = MakeLongFixture(705, /*horizon=*/40.0);
  const EventStream stream(fixture.trace.workers, fixture.trace.tasks);
  DispatchConfig config;
  config.sharded.shards_per_side = 2;
  config.min_group_size = 3;
  config.task_duration = 2.0;
  DispatchService service(config, &fixture.coop,
                          [] { return std::make_unique<GtAssigner>(); });
  const RunSummary summary = service.Run(stream);

  ASSERT_FALSE(summary.batches.empty());
  bool saw_warm = false;
  for (const BatchMetrics& batch : summary.batches) {
    const std::string json = ToJson(batch);
    EXPECT_NE(json.find("\"solve_moves\""), std::string::npos);
    EXPECT_NE(json.find("\"dirty_workers\""), std::string::npos);
    EXPECT_NE(json.find("\"dirty_fraction\""), std::string::npos);
    EXPECT_NE(json.find("\"warm_started\""), std::string::npos);
    saw_warm = saw_warm || batch.warm_started;
  }
  EXPECT_TRUE(saw_warm);

  ASSERT_FALSE(service.batch_metrics().empty());
  const std::string service_json = service.batch_metrics().back().ToJson();
  EXPECT_NE(service_json.find("\"solve_rounds\""), std::string::npos);
  EXPECT_NE(service_json.find("\"solve_moves\""), std::string::npos);
  EXPECT_NE(service_json.find("\"dirty_workers\""), std::string::npos);
  EXPECT_NE(service_json.find("\"dirty_fraction\""), std::string::npos);
  EXPECT_NE(service_json.find("\"warm_started\""), std::string::npos);
  EXPECT_NE(service_json.find("\"adopted_boundary\""), std::string::npos);

  const RunLatencyStats& latency = service.run_latency();
  const std::string latency_json = latency.ToJson();
  EXPECT_NE(latency_json.find("\"solve_rounds_p50\""), std::string::npos);
  EXPECT_NE(latency_json.find("\"solve_rounds_p99\""), std::string::npos);
  EXPECT_GE(latency.solve_rounds_p99, latency.solve_rounds_p50);
}

}  // namespace
}  // namespace casc
