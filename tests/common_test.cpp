#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <vector>

#include "common/flags.h"
#include "common/histogram.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/strings.h"

namespace casc {
namespace {

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(12345), b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.5, 2.5);
    EXPECT_GE(u, -3.5);
    EXPECT_LT(u, 2.5);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(3);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(uint64_t{7}));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(int64_t{-2}, int64_t{3});
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
  }
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(17);
  const int n = 100000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, GaussianWithParamsShiftsAndScales) {
  Rng rng(19);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngTest, TruncatedGaussianStaysInBound) {
  Rng rng(23);
  for (int i = 0; i < 10000; ++i) {
    const double g = rng.TruncatedGaussian(1.0);
    EXPECT_GE(g, -1.0);
    EXPECT_LE(g, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(31);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ZipfRangeAndSkew) {
  Rng rng(37);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 20000; ++i) {
    const uint64_t z = rng.Zipf(10, 1.5);
    EXPECT_GE(z, 1u);
    EXPECT_LE(z, 10u);
    counts[z]++;
  }
  // Rank 1 must dominate rank 10 decisively for s = 1.5.
  EXPECT_GT(counts[1], counts[10] * 5);
}

TEST(RngTest, ZipfHandlesChangingParameters) {
  Rng rng(41);
  EXPECT_LE(rng.Zipf(5, 1.0), 5u);
  EXPECT_LE(rng.Zipf(50, 2.0), 50u);
  EXPECT_LE(rng.Zipf(5, 1.0), 5u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(43);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = items;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(RngTest, ShuffleActuallyPermutes) {
  Rng rng(47);
  std::vector<int> items(50);
  for (int i = 0; i < 50; ++i) items[static_cast<size_t>(i)] = i;
  std::vector<int> shuffled = items;
  rng.Shuffle(shuffled);
  EXPECT_NE(shuffled, items);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(51);
  Rng b = a.Split();
  // The two streams should not be identical.
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

// ---------------------------------------------------------------------------
// Status / Result
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::InvalidArgument("bad flag");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad flag");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad flag");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::NotFound("nope"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result(std::string("hello"));
  const std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "hello");
}

// ---------------------------------------------------------------------------
// Strings
// ---------------------------------------------------------------------------

TEST(StringsTest, SplitBasic) {
  const auto parts = StrSplit("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  const auto parts = StrSplit(",x,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[1], "x");
  EXPECT_EQ(parts[2], "");
}

TEST(StringsTest, SplitEmptyString) {
  const auto parts = StrSplit("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(StringsTest, JoinRoundTrip) {
  const std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(StrJoin(parts, "--"), "x--y--z");
  EXPECT_EQ(StrJoin({}, ","), "");
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace("no-ws"), "no-ws");
}

TEST(StringsTest, ParseDoubleValid) {
  double value = 0.0;
  EXPECT_TRUE(ParseDouble("3.25", &value));
  EXPECT_DOUBLE_EQ(value, 3.25);
  EXPECT_TRUE(ParseDouble(" -1e-3 ", &value));
  EXPECT_DOUBLE_EQ(value, -1e-3);
}

TEST(StringsTest, ParseDoubleInvalid) {
  double value = 0.0;
  EXPECT_FALSE(ParseDouble("", &value));
  EXPECT_FALSE(ParseDouble("abc", &value));
  EXPECT_FALSE(ParseDouble("1.5x", &value));
}

TEST(StringsTest, ParseInt64Valid) {
  int64_t value = 0;
  EXPECT_TRUE(ParseInt64("-42", &value));
  EXPECT_EQ(value, -42);
  EXPECT_TRUE(ParseInt64("  7 ", &value));
  EXPECT_EQ(value, 7);
}

TEST(StringsTest, ParseInt64Invalid) {
  int64_t value = 0;
  EXPECT_FALSE(ParseInt64("", &value));
  EXPECT_FALSE(ParseInt64("12.5", &value));
  EXPECT_FALSE(ParseInt64("x", &value));
}

TEST(StringsTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("--flag", "--"));
  EXPECT_FALSE(StartsWith("-f", "--"));
  EXPECT_TRUE(StartsWith("abc", ""));
}

// ---------------------------------------------------------------------------
// FlagParser
// ---------------------------------------------------------------------------

TEST(FlagParserTest, DefaultsSurviveEmptyArgv) {
  FlagParser flags;
  flags.DefineInt64("m", 1000, "workers");
  flags.DefineDouble("eps", 0.05, "epsilon");
  flags.DefineString("mode", "gt", "mode");
  flags.DefineBool("verbose", false, "log more");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(flags.Parse(1, argv).ok());
  EXPECT_EQ(flags.GetInt64("m"), 1000);
  EXPECT_DOUBLE_EQ(flags.GetDouble("eps"), 0.05);
  EXPECT_EQ(flags.GetString("mode"), "gt");
  EXPECT_FALSE(flags.GetBool("verbose"));
}

TEST(FlagParserTest, EqualsSyntax) {
  FlagParser flags;
  flags.DefineInt64("m", 0, "");
  flags.DefineDouble("eps", 0.0, "");
  const char* argv[] = {"prog", "--m=123", "--eps=0.5"};
  ASSERT_TRUE(flags.Parse(3, argv).ok());
  EXPECT_EQ(flags.GetInt64("m"), 123);
  EXPECT_DOUBLE_EQ(flags.GetDouble("eps"), 0.5);
}

TEST(FlagParserTest, SpaceSyntax) {
  FlagParser flags;
  flags.DefineInt64("m", 0, "");
  const char* argv[] = {"prog", "--m", "77"};
  ASSERT_TRUE(flags.Parse(3, argv).ok());
  EXPECT_EQ(flags.GetInt64("m"), 77);
}

TEST(FlagParserTest, BareBoolSetsTrue) {
  FlagParser flags;
  flags.DefineBool("verbose", false, "");
  const char* argv[] = {"prog", "--verbose"};
  ASSERT_TRUE(flags.Parse(2, argv).ok());
  EXPECT_TRUE(flags.GetBool("verbose"));
}

TEST(FlagParserTest, BoolExplicitValues) {
  FlagParser flags;
  flags.DefineBool("a", false, "");
  flags.DefineBool("b", true, "");
  const char* argv[] = {"prog", "--a=true", "--b=false"};
  ASSERT_TRUE(flags.Parse(3, argv).ok());
  EXPECT_TRUE(flags.GetBool("a"));
  EXPECT_FALSE(flags.GetBool("b"));
}

TEST(FlagParserTest, UnknownFlagFails) {
  FlagParser flags;
  const char* argv[] = {"prog", "--mystery=1"};
  EXPECT_FALSE(flags.Parse(2, argv).ok());
}

TEST(FlagParserTest, BadValueFails) {
  FlagParser flags;
  flags.DefineInt64("m", 0, "");
  const char* argv[] = {"prog", "--m=abc"};
  EXPECT_FALSE(flags.Parse(2, argv).ok());
}

TEST(FlagParserTest, MissingValueFails) {
  FlagParser flags;
  flags.DefineInt64("m", 0, "");
  const char* argv[] = {"prog", "--m"};
  EXPECT_FALSE(flags.Parse(2, argv).ok());
}

TEST(FlagParserTest, PositionalArgumentsCollected) {
  FlagParser flags;
  flags.DefineBool("x", false, "");
  const char* argv[] = {"prog", "one", "--x", "two"};
  ASSERT_TRUE(flags.Parse(4, argv).ok());
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "one");
  EXPECT_EQ(flags.positional()[1], "two");
}

TEST(FlagParserTest, UsageListsFlags) {
  FlagParser flags;
  flags.DefineInt64("workers", 10, "how many workers");
  const std::string usage = flags.Usage("prog");
  EXPECT_NE(usage.find("--workers"), std::string::npos);
  EXPECT_NE(usage.find("how many workers"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Logging
// ---------------------------------------------------------------------------

TEST(LoggingTest, GlobalLevelRoundTrips) {
  const LogLevel original = GlobalLogLevel();
  SetGlobalLogLevel(LogLevel::kError);
  EXPECT_EQ(GlobalLogLevel(), LogLevel::kError);
  SetGlobalLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GlobalLogLevel(), LogLevel::kDebug);
  SetGlobalLogLevel(original);
}

TEST(LoggingTest, MacroCompilesAndStreams) {
  const LogLevel original = GlobalLogLevel();
  // Suppressed messages must still evaluate safely.
  SetGlobalLogLevel(LogLevel::kError);
  CASC_LOG(kDebug) << "invisible " << 42;
  SetGlobalLogLevel(original);
}

// ---------------------------------------------------------------------------
// CHECK macros (death tests)
// ---------------------------------------------------------------------------

TEST(CheckDeathTest, CheckFailureAborts) {
  EXPECT_DEATH(
      { CASC_CHECK(1 == 2) << "custom context"; }, "CHECK failed");
}

TEST(CheckDeathTest, ComparisonMacroReportsOperands) {
  EXPECT_DEATH({ CASC_CHECK_EQ(3, 4); }, "lhs=3");
}

TEST(CheckDeathTest, PassingChecksAreSilent) {
  CASC_CHECK(true);
  CASC_CHECK_EQ(2, 2);
  CASC_CHECK_LT(1, 2);
  CASC_CHECK_GE(2, 2);
  CASC_CHECK_NE(1, 2);
  CASC_CHECK_LE(2, 2);
  CASC_CHECK_GT(3, 2);
}

TEST(CheckDeathTest, ResultValueOnErrorAborts) {
  Result<int> result(Status::NotFound("gone"));
  EXPECT_DEATH({ (void)result.value(); }, "Result::value");
}

// ---------------------------------------------------------------------------
// SummaryStats / Histogram
// ---------------------------------------------------------------------------

TEST(SummaryStatsTest, EmptyIsAllZero) {
  SummaryStats stats;
  EXPECT_EQ(stats.Count(), 0);
  EXPECT_DOUBLE_EQ(stats.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.Variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.StdError(), 0.0);
}

TEST(SummaryStatsTest, KnownMoments) {
  SummaryStats stats;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stats.Add(v);
  }
  EXPECT_EQ(stats.Count(), 8);
  EXPECT_DOUBLE_EQ(stats.Mean(), 5.0);
  // Sample variance of this classic dataset is 32/7.
  EXPECT_NEAR(stats.Variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.Min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.Max(), 9.0);
}

TEST(SummaryStatsTest, WelfordMatchesDirectOnRandomData) {
  Rng rng(71);
  SummaryStats stats;
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Gaussian(3.0, 2.0);
    values.push_back(v);
    stats.Add(v);
  }
  double sum = 0.0;
  for (const double v : values) sum += v;
  const double mean = sum / 1000;
  double sq = 0.0;
  for (const double v : values) sq += (v - mean) * (v - mean);
  EXPECT_NEAR(stats.Mean(), mean, 1e-9);
  EXPECT_NEAR(stats.Variance(), sq / 999, 1e-9);
}

TEST(SummaryStatsTest, ToStringMentionsFields) {
  SummaryStats stats;
  stats.Add(1.0);
  stats.Add(3.0);
  const std::string text = stats.ToString(1);
  EXPECT_NE(text.find("2.0"), std::string::npos);  // mean
  EXPECT_NE(text.find("n=2"), std::string::npos);
}

TEST(HistogramTest, BucketAssignment) {
  Histogram histogram(0.0, 10.0, 5);
  histogram.Add(0.5);   // bucket 0
  histogram.Add(3.0);   // bucket 1
  histogram.Add(9.99);  // bucket 4
  histogram.Add(-5.0);  // clamps to bucket 0
  histogram.Add(42.0);  // clamps to bucket 4
  EXPECT_EQ(histogram.TotalCount(), 5);
  EXPECT_EQ(histogram.BucketCount(0), 2);
  EXPECT_EQ(histogram.BucketCount(1), 1);
  EXPECT_EQ(histogram.BucketCount(4), 2);
}

TEST(HistogramTest, BucketBounds) {
  Histogram histogram(0.0, 1.0, 4);
  const auto [lo, hi] = histogram.BucketBounds(2);
  EXPECT_DOUBLE_EQ(lo, 0.5);
  EXPECT_DOUBLE_EQ(hi, 0.75);
}

TEST(HistogramTest, QuantilesOfUniformData) {
  Histogram histogram(0.0, 1.0, 100);
  Rng rng(72);
  for (int i = 0; i < 50000; ++i) histogram.Add(rng.Uniform());
  EXPECT_NEAR(histogram.Quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(histogram.Quantile(0.9), 0.9, 0.02);
  EXPECT_NEAR(histogram.Quantile(0.1), 0.1, 0.02);
}

TEST(HistogramTest, ToStringRendersBars) {
  Histogram histogram(0.0, 2.0, 2);
  histogram.Add(0.5);
  histogram.Add(0.6);
  histogram.Add(1.5);
  const std::string text = histogram.ToString(10);
  EXPECT_NE(text.find("##########"), std::string::npos);  // peak bucket
  EXPECT_NE(text.find("2"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Stopwatch
// ---------------------------------------------------------------------------

TEST(StopwatchTest, ElapsedIsMonotone) {
  Stopwatch watch;
  const double t1 = watch.ElapsedSeconds();
  const double t2 = watch.ElapsedSeconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
}

TEST(StopwatchTest, UnitsAgree) {
  Stopwatch watch;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  const double seconds = watch.ElapsedSeconds();
  const double millis = watch.ElapsedMillis();
  EXPECT_GE(millis, seconds * 1e3 * 0.5);
}

TEST(AccumulatingTimerTest, AccumulatesIntervals) {
  AccumulatingTimer timer;
  EXPECT_DOUBLE_EQ(timer.TotalSeconds(), 0.0);
  timer.Start();
  timer.Stop();
  const double first = timer.TotalSeconds();
  EXPECT_GE(first, 0.0);
  timer.Start();
  timer.Stop();
  EXPECT_GE(timer.TotalSeconds(), first);
  timer.Reset();
  EXPECT_DOUBLE_EQ(timer.TotalSeconds(), 0.0);
}

TEST(AccumulatingTimerTest, StopWithoutStartIsNoop) {
  AccumulatingTimer timer;
  timer.Stop();
  EXPECT_DOUBLE_EQ(timer.TotalSeconds(), 0.0);
}

TEST(QuantileSketchTest, EmptySketchReturnsZero) {
  QuantileSketch sketch;
  EXPECT_EQ(sketch.Count(), 0);
  EXPECT_DOUBLE_EQ(sketch.Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(sketch.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(sketch.Quantile(1.0), 0.0);
}

TEST(QuantileSketchTest, SingleSampleIsEveryQuantile) {
  QuantileSketch sketch;
  sketch.Add(3.25);
  EXPECT_EQ(sketch.Count(), 1);
  for (const double p : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(sketch.Quantile(p), 3.25) << "p=" << p;
  }
}

TEST(QuantileSketchTest, TwoSamplesInterpolateLinearly) {
  QuantileSketch sketch;
  sketch.Add(10.0);
  sketch.Add(2.0);  // insertion order must not matter
  EXPECT_EQ(sketch.Count(), 2);
  EXPECT_DOUBLE_EQ(sketch.Quantile(0.0), 2.0);
  EXPECT_DOUBLE_EQ(sketch.Quantile(0.5), 6.0);
  EXPECT_DOUBLE_EQ(sketch.Quantile(0.25), 4.0);
  EXPECT_DOUBLE_EQ(sketch.Quantile(1.0), 10.0);
}

TEST(QuantileSketchTest, ExactUnderCapacity) {
  QuantileSketch sketch(128);
  for (int i = 100; i >= 0; --i) sketch.Add(static_cast<double>(i));
  EXPECT_EQ(sketch.Count(), 101);
  EXPECT_DOUBLE_EQ(sketch.Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(sketch.Quantile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(sketch.Quantile(1.0), 100.0);
}

TEST(QuantileSketchTest, ThinningKeepsQuantilesApproximateAndDeterministic) {
  QuantileSketch a(64);
  QuantileSketch b(64);
  for (int i = 0; i < 10000; ++i) {
    a.Add(static_cast<double>(i));
    b.Add(static_cast<double>(i));
  }
  EXPECT_EQ(a.Count(), 10000);
  // Deterministic: no RNG anywhere, so two identical streams agree.
  for (const double p : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(a.Quantile(p), b.Quantile(p)) << "p=" << p;
  }
  // Systematic thinning keeps the sample spread over the whole stream.
  EXPECT_NEAR(a.Quantile(0.5), 5000.0, 1000.0);
  EXPECT_NEAR(a.Quantile(0.9), 9000.0, 1000.0);
  EXPECT_LE(a.Quantile(0.0), 1000.0);
  EXPECT_GE(a.Quantile(1.0), 9000.0);
}

TEST(QuantileSketchTest, ResetEmptiesTheSketch) {
  QuantileSketch sketch(8);
  for (int i = 0; i < 100; ++i) sketch.Add(static_cast<double>(i));
  sketch.Reset();
  EXPECT_EQ(sketch.Count(), 0);
  EXPECT_DOUBLE_EQ(sketch.Quantile(0.5), 0.0);
  sketch.Add(7.0);
  EXPECT_DOUBLE_EQ(sketch.Quantile(0.5), 7.0);
}

}  // namespace
}  // namespace casc
