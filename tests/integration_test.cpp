#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "algo/best_response.h"
#include "algo/gt_assigner.h"
#include "bench_util/experiment.h"
#include "bench_util/replication.h"
#include "bench_util/settings.h"
#include "bench_util/table_printer.h"
#include "common/strings.h"
#include "model/objective.h"

namespace casc {
namespace {

ExperimentSettings SmallSettings(uint64_t seed) {
  ExperimentSettings settings;
  settings.num_workers = 120;
  settings.num_tasks = 40;
  settings.rounds = 3;
  settings.seed = seed;
  return settings;
}

// ---------------------------------------------------------------------------
// Approach factory
// ---------------------------------------------------------------------------

TEST(ExperimentTest, ApproachNamesMatchPaper) {
  const ExperimentSettings settings;
  for (const ApproachId id : AllApproaches()) {
    const auto assigner = MakeApproach(id, settings);
    ASSERT_NE(assigner, nullptr);
    EXPECT_EQ(assigner->Name(), ApproachName(id));
  }
  EXPECT_EQ(ApproachName(ApproachId::kGtAll), "GT+ALL");
  EXPECT_EQ(AllApproaches().size(), 7u);
}

TEST(ExperimentTest, ApproachFromNameResolvesEverySpelling) {
  const ExperimentSettings settings;
  for (const char* name :
       {"TPG", "GT", "GT+TSI", "GT+LUB", "GT+ALL", "MFLOW", "RAND",
        "ONLINE", "EXACT", "tpg", "gt+all", "Online"}) {
    const auto assigner = MakeApproachFromName(name, settings);
    EXPECT_TRUE(assigner.ok()) << name;
  }
}

TEST(ExperimentTest, ApproachFromNameSupportsSwapSuffix) {
  const ExperimentSettings settings;
  const auto assigner = MakeApproachFromName("GT+SWAP", settings);
  ASSERT_TRUE(assigner.ok());
  EXPECT_EQ((*assigner)->Name(), "GT+SWAP");
  const auto nested = MakeApproachFromName("tpg+swap", settings);
  ASSERT_TRUE(nested.ok());
  EXPECT_EQ((*nested)->Name(), "TPG+SWAP");
}

TEST(ExperimentTest, ApproachFromNameRejectsUnknown) {
  const ExperimentSettings settings;
  const auto assigner = MakeApproachFromName("SIMPLEX", settings);
  ASSERT_FALSE(assigner.ok());
  EXPECT_EQ(assigner.status().code(), StatusCode::kInvalidArgument);
}

TEST(ExperimentTest, ApproachFromNameHonorsEpsilon) {
  ExperimentSettings settings;
  settings.epsilon = 0.42;
  const auto assigner = MakeApproachFromName("GT+TSI", settings);
  ASSERT_TRUE(assigner.ok());
  const auto* gt = dynamic_cast<const GtAssigner*>(assigner->get());
  ASSERT_NE(gt, nullptr);
  EXPECT_DOUBLE_EQ(gt->options().epsilon, 0.42);
}

TEST(ExperimentTest, SettingsToStringMentionsEveryKnob) {
  const ExperimentSettings settings;
  const std::string text = settings.ToString();
  for (const char* token :
       {"a_j=4", "m=1000", "n=500", "B=3", "R=10", "eps=0.05"}) {
    EXPECT_NE(text.find(token), std::string::npos) << token;
  }
}

TEST(ExperimentTest, SettingsUnitConversion) {
  ExperimentSettings settings;
  settings.speed_min_pct = 1.0;
  settings.speed_max_pct = 10.0;
  settings.radius_min_pct = 15.0;
  settings.radius_max_pct = 20.0;
  const WorkerGenConfig config = settings.MakeWorkerConfig();
  EXPECT_DOUBLE_EQ(config.speed_min, 0.01);
  EXPECT_DOUBLE_EQ(config.speed_max, 0.10);
  EXPECT_DOUBLE_EQ(config.radius_min, 0.15);
  EXPECT_DOUBLE_EQ(config.radius_max, 0.20);
}

// ---------------------------------------------------------------------------
// RunComparison invariants (the cross-algorithm contract)
// ---------------------------------------------------------------------------

class ComparisonTest
    : public ::testing::TestWithParam<std::pair<DataKind, uint64_t>> {};

TEST_P(ComparisonTest, PaperOrderingHolds) {
  const auto [kind, seed] = GetParam();
  ExperimentSettings settings = SmallSettings(seed);
  const auto results = RunComparison(settings, kind, AllApproaches());
  ASSERT_EQ(results.size(), 7u);

  double scores[7];
  for (size_t i = 0; i < 7; ++i) scores[i] = results[i].total_score;
  const double tpg = scores[0], gt = scores[1], gt_lub = scores[2],
               mflow = scores[5], rand = scores[6];
  const double upper = results[0].total_upper;

  // GT never falls below its TPG initialization.
  EXPECT_GE(gt + 1e-9, tpg);
  EXPECT_GE(gt_lub + 1e-9, tpg);
  // The GT family and TPG dominate the cooperation-oblivious baselines.
  EXPECT_GT(tpg, mflow);
  EXPECT_GT(tpg, rand);
  // Everything respects UPPER.
  for (const auto& result : results) {
    EXPECT_LE(result.total_score, upper + 1e-9) << result.name;
  }
}

TEST_P(ComparisonTest, AllBatchesValidatedAndTimed) {
  const auto [kind, seed] = GetParam();
  ExperimentSettings settings = SmallSettings(seed + 100);
  const auto results = RunComparison(settings, kind, AllApproaches());
  for (const auto& result : results) {
    ASSERT_EQ(result.summary.batches.size(), 3u) << result.name;
    for (const auto& batch : result.summary.batches) {
      EXPECT_GE(batch.seconds, 0.0);
      EXPECT_GE(batch.score, 0.0);
      EXPECT_EQ(batch.num_workers, 120);
      EXPECT_EQ(batch.num_tasks, 40);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    DataKinds, ComparisonTest,
    ::testing::Values(std::make_pair(DataKind::kSynthetic, 1u),
                      std::make_pair(DataKind::kSynthetic, 2u),
                      std::make_pair(DataKind::kMeetupLike, 3u)));

TEST(ComparisonTest, SameSeedIsReproducible) {
  const ExperimentSettings settings = SmallSettings(9);
  const auto a = RunComparison(settings, DataKind::kSynthetic,
                               {ApproachId::kTpg, ApproachId::kGt});
  const auto b = RunComparison(settings, DataKind::kSynthetic,
                               {ApproachId::kTpg, ApproachId::kGt});
  EXPECT_DOUBLE_EQ(a[0].total_score, b[0].total_score);
  EXPECT_DOUBLE_EQ(a[1].total_score, b[1].total_score);
}

TEST(ComparisonTest, TsiVariantsTrackGtClosely) {
  // Figure 6's observation: for epsilon <= 0.05 the TSI score is within
  // a few percent of plain GT.
  ExperimentSettings settings = SmallSettings(10);
  settings.epsilon = 0.05;
  const auto results = RunComparison(
      settings, DataKind::kSynthetic,
      {ApproachId::kGt, ApproachId::kGtTsi, ApproachId::kGtAll});
  const double gt = results[0].total_score;
  EXPECT_GE(results[1].total_score, 0.9 * gt);
  EXPECT_GE(results[2].total_score, 0.9 * gt);
}

// ---------------------------------------------------------------------------
// Cross-parameter grid: the algorithmic contract must hold at every
// corner of the configuration space, not just the defaults.
// ---------------------------------------------------------------------------

struct GridCase {
  int min_group;  // B
  int capacity;   // a_j
  LocationDistribution distribution;
  uint64_t seed;
};

class ParameterGridTest : public ::testing::TestWithParam<GridCase> {};

TEST_P(ParameterGridTest, ContractHoldsEverywhere) {
  const GridCase& grid = GetParam();
  ExperimentSettings settings;
  settings.num_workers = 100;
  settings.num_tasks = 35;
  settings.rounds = 2;
  settings.min_group_size = grid.min_group;
  settings.capacity = grid.capacity;
  settings.distribution = grid.distribution;
  settings.seed = grid.seed;
  // Wider reach so every corner has feasible teams.
  settings.radius_min_pct = 20;
  settings.radius_max_pct = 40;
  settings.speed_min_pct = 5;
  settings.speed_max_pct = 15;

  const auto results =
      RunComparison(settings, DataKind::kSynthetic, AllApproaches());
  ASSERT_EQ(results.size(), 7u);
  const double tpg = results[0].total_score;
  const double gt = results[1].total_score;
  const double upper = results[0].total_upper;

  EXPECT_GE(gt + 1e-9, tpg) << "GT regressed below its initialization";
  for (const auto& result : results) {
    EXPECT_LE(result.total_score, upper + 1e-9) << result.name;
    EXPECT_GE(result.total_score, 0.0) << result.name;
  }
  // Scores must actually be produced at this corner (the generator
  // settings above guarantee feasible teams).
  EXPECT_GT(gt, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Corners, ParameterGridTest,
    ::testing::Values(
        GridCase{2, 2, LocationDistribution::kUniform, 1},
        GridCase{2, 4, LocationDistribution::kUniform, 2},
        GridCase{2, 6, LocationDistribution::kSkewed, 3},
        GridCase{3, 3, LocationDistribution::kUniform, 4},
        GridCase{3, 4, LocationDistribution::kSkewed, 5},
        GridCase{3, 6, LocationDistribution::kUniform, 6},
        GridCase{4, 4, LocationDistribution::kSkewed, 7},
        GridCase{4, 6, LocationDistribution::kUniform, 8},
        GridCase{5, 5, LocationDistribution::kUniform, 9},
        GridCase{5, 8, LocationDistribution::kSkewed, 10}),
    [](const ::testing::TestParamInfo<GridCase>& info) {
      return "B" + std::to_string(info.param.min_group) + "_a" +
             std::to_string(info.param.capacity) + "_" +
             (info.param.distribution == LocationDistribution::kSkewed
                  ? "skew"
                  : "unif") +
             "_s" + std::to_string(info.param.seed);
    });

// ---------------------------------------------------------------------------
// TablePrinter
// ---------------------------------------------------------------------------

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "score"});
  table.AddRow({"TPG", "123.4"});
  table.AddRow({"GT+ALL", "5.0"});
  const std::string text = table.Render();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("GT+ALL"), std::string::npos);
  // Header separator present.
  EXPECT_NE(text.find("----"), std::string::npos);
  // Each line ends without trailing blanks.
  for (const auto& line : StrSplit(text, '\n')) {
    if (!line.empty()) {
      EXPECT_NE(line.back(), ' ');
    }
  }
}

TEST(TablePrinterTest, RaggedRowsArePadded) {
  TablePrinter table({"a"});
  table.AddRow({"1", "2", "3"});
  table.AddRow({"x"});
  const std::string text = table.Render();
  EXPECT_NE(text.find("3"), std::string::npos);
}

TEST(TablePrinterTest, CsvOutput) {
  TablePrinter table({"h1", "h2"});
  table.AddRow({"a", "b"});
  EXPECT_EQ(table.RenderCsv(), "h1,h2\na,b\n");
}

// ---------------------------------------------------------------------------
// Full figure harness (tiny scale, smoke)
// ---------------------------------------------------------------------------

TEST(RunFigureTest, ProducesOneResultPerPointAndApproach) {
  ExperimentSettings base = SmallSettings(20);
  base.rounds = 2;
  base.num_workers = 60;
  base.num_tasks = 20;
  std::vector<SweepPoint> points;
  for (const int capacity : {3, 4}) {
    SweepPoint point;
    point.label = std::to_string(capacity);
    point.settings = base;
    point.settings.capacity = capacity;
    points.push_back(point);
  }
  const auto results =
      RunFigure("Smoke Figure", "a_j", points, DataKind::kSynthetic,
                {ApproachId::kTpg, ApproachId::kRand});
  ASSERT_EQ(results.size(), 2u);
  ASSERT_EQ(results[0].size(), 2u);
  EXPECT_EQ(results[0][0].name, "TPG");
  EXPECT_EQ(results[0][1].name, "RAND");
}

// ---------------------------------------------------------------------------
// Replication harness
// ---------------------------------------------------------------------------

TEST(ReplicationTest, AggregatesAcrossSeeds) {
  ExperimentSettings settings = SmallSettings(0);
  settings.rounds = 2;
  settings.num_workers = 80;
  settings.num_tasks = 25;
  // Dense enough that the greedy actually has choices to make (with the
  // paper's default radii, tiny instances leave TPG and RAND the same
  // handful of feasible teams).
  settings.radius_min_pct = 20;
  settings.radius_max_pct = 40;
  settings.speed_min_pct = 5;
  settings.speed_max_pct = 15;
  const auto results = RunReplications(
      settings, DataKind::kSynthetic,
      {ApproachId::kTpg, ApproachId::kRand}, {11u, 22u, 33u});
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].name, "TPG");
  EXPECT_EQ(results[0].score.Count(), 3);
  EXPECT_GT(results[0].score.Mean(), 0.0);
  EXPECT_LE(results[0].upper_frac.Max(), 1.0 + 1e-9);
  // TPG dominates RAND in every replication, hence also in the mean.
  EXPECT_GT(results[0].score.Mean(), results[1].score.Mean());
}

TEST(ReplicationTest, SingleSeedHasZeroStdError) {
  ExperimentSettings settings = SmallSettings(0);
  settings.rounds = 1;
  settings.num_workers = 50;
  settings.num_tasks = 15;
  const auto results = RunReplications(settings, DataKind::kSynthetic,
                                       {ApproachId::kTpg}, {5u});
  EXPECT_DOUBLE_EQ(results[0].score.StdError(), 0.0);
  EXPECT_EQ(results[0].score.Count(), 1);
}

// ---------------------------------------------------------------------------
// End-to-end: GT equilibria are stable under re-running (idempotence of
// the best-response dynamic at a fixpoint)
// ---------------------------------------------------------------------------

TEST(EndToEndTest, NashPointIsFixpointOfBestResponse) {
  ExperimentSettings settings = SmallSettings(30);
  auto source = MakeSource(DataKind::kSynthetic, settings);
  const Instance instance = source->MakeBatch(0, 0.0);
  auto gt = MakeApproach(ApproachId::kGt, settings);
  const Assignment equilibrium = gt->Run(instance);
  ASSERT_TRUE(IsNashEquilibrium(instance, equilibrium, 1e-9));
  // Every worker's best response is its current strategy.
  for (WorkerIndex w = 0; w < instance.num_workers(); ++w) {
    const BestResponse best = ComputeBestResponse(instance, equilibrium, w);
    EXPECT_EQ(best.task, equilibrium.TaskOf(w)) << "worker " << w;
  }
}

}  // namespace
}  // namespace casc
