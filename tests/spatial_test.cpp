#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "spatial/grid_index.h"
#include "spatial/kd_tree.h"
#include "spatial/linear_scan.h"
#include "spatial/rtree.h"

namespace casc {
namespace {

std::vector<SpatialItem> RandomItems(int count, uint64_t seed) {
  Rng rng(seed);
  std::vector<SpatialItem> items;
  items.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    items.push_back(SpatialItem{i, {rng.Uniform(), rng.Uniform()}});
  }
  return items;
}

// ---------------------------------------------------------------------------
// LinearScan (the reference)
// ---------------------------------------------------------------------------

TEST(LinearScanTest, EmptyQueries) {
  LinearScan index;
  EXPECT_TRUE(index.RangeQuery({0, 0, 1, 1}).empty());
  EXPECT_TRUE(index.CircleQuery({0.5, 0.5}, 10.0).empty());
  EXPECT_TRUE(index.Knn({0.5, 0.5}, 3).empty());
  EXPECT_EQ(index.Size(), 0u);
}

TEST(LinearScanTest, BasicRange) {
  LinearScan index;
  index.Insert({1, {0.1, 0.1}});
  index.Insert({2, {0.9, 0.9}});
  index.Insert({3, {0.5, 0.5}});
  const auto hits = index.RangeQuery({0.0, 0.0, 0.6, 0.6});
  EXPECT_EQ(hits, (std::vector<int64_t>{1, 3}));
}

TEST(LinearScanTest, CircleBoundaryInclusive) {
  LinearScan index;
  index.Insert({1, {0.5, 0.0}});
  const auto hits = index.CircleQuery({0.0, 0.0}, 0.5);
  EXPECT_EQ(hits, (std::vector<int64_t>{1}));
  EXPECT_TRUE(index.CircleQuery({0.0, 0.0}, 0.4999).empty());
}

TEST(LinearScanTest, KnnOrderedByDistance) {
  LinearScan index;
  index.Insert({10, {0.9, 0.9}});
  index.Insert({20, {0.1, 0.1}});
  index.Insert({30, {0.5, 0.5}});
  const auto knn = index.Knn({0.0, 0.0}, 2);
  EXPECT_EQ(knn, (std::vector<int64_t>{20, 30}));
}

TEST(LinearScanTest, KnnMoreThanAvailable) {
  LinearScan index;
  index.Insert({1, {0.1, 0.1}});
  EXPECT_EQ(index.Knn({0.0, 0.0}, 5).size(), 1u);
}

// ---------------------------------------------------------------------------
// RTree structure
// ---------------------------------------------------------------------------

TEST(RTreeTest, EmptyTree) {
  RTree tree;
  EXPECT_EQ(tree.Size(), 0u);
  EXPECT_EQ(tree.Height(), 0);
  EXPECT_TRUE(tree.RangeQuery({0, 0, 1, 1}).empty());
  EXPECT_TRUE(tree.Knn({0.5, 0.5}, 4).empty());
  tree.CheckInvariants();
}

TEST(RTreeTest, InsertGrowsAndSplits) {
  RTree tree(/*max_entries=*/4, /*min_entries=*/2);
  for (int i = 0; i < 100; ++i) {
    const double x = (i % 10) / 10.0;
    const double y = (i / 10) / 10.0;
    tree.Insert({i, {x, y}});
    tree.CheckInvariants();
  }
  EXPECT_EQ(tree.Size(), 100u);
  EXPECT_GT(tree.Height(), 1);
  // Everything is in the unit square.
  EXPECT_EQ(tree.RangeQuery({0, 0, 1, 1}).size(), 100u);
}

TEST(RTreeTest, BulkLoadPacksAllItems) {
  RTree tree;
  tree.Build(RandomItems(1000, 99));
  EXPECT_EQ(tree.Size(), 1000u);
  tree.CheckInvariants();
  EXPECT_EQ(tree.RangeQuery({0, 0, 1, 1}).size(), 1000u);
}

TEST(RTreeTest, BuildReplacesContents) {
  RTree tree;
  tree.Build(RandomItems(50, 1));
  tree.Build(RandomItems(10, 2));
  EXPECT_EQ(tree.Size(), 10u);
}

TEST(RTreeTest, DuplicateLocationsSupported) {
  RTree tree(4, 2);
  for (int i = 0; i < 30; ++i) tree.Insert({i, {0.5, 0.5}});
  tree.CheckInvariants();
  EXPECT_EQ(tree.CircleQuery({0.5, 0.5}, 0.0).size(), 30u);
}

TEST(RTreeTest, MixedBuildAndInsert) {
  RTree tree;
  tree.Build(RandomItems(200, 3));
  Rng rng(4);
  for (int i = 200; i < 400; ++i) {
    tree.Insert({i, {rng.Uniform(), rng.Uniform()}});
  }
  tree.CheckInvariants();
  EXPECT_EQ(tree.Size(), 400u);
  EXPECT_EQ(tree.RangeQuery({0, 0, 1, 1}).size(), 400u);
}

// ---------------------------------------------------------------------------
// Cross-implementation equivalence (property test over random data)
// ---------------------------------------------------------------------------

struct IndexCase {
  std::string name;
  int item_count;
  uint64_t seed;
  bool bulk_load;
};

class SpatialEquivalenceTest : public ::testing::TestWithParam<IndexCase> {};

TEST_P(SpatialEquivalenceTest, AllIndexesAgree) {
  const IndexCase& param = GetParam();
  const auto items = RandomItems(param.item_count, param.seed);

  LinearScan reference;
  reference.Build(items);
  GridIndex grid(16);
  RTree rtree(8, 3);
  KdTree kdtree;
  if (param.bulk_load) {
    grid.Build(items);
    rtree.Build(items);
    kdtree.Build(items);
  } else {
    for (const auto& item : items) {
      grid.Insert(item);
      rtree.Insert(item);
      kdtree.Insert(item);
    }
  }
  rtree.CheckInvariants();
  kdtree.CheckInvariants();

  Rng rng(param.seed ^ 0xABCD);
  for (int q = 0; q < 50; ++q) {
    const Point center{rng.Uniform(), rng.Uniform()};
    const double radius = rng.Uniform(0.0, 0.5);
    const auto expected_circle = reference.CircleQuery(center, radius);
    EXPECT_EQ(grid.CircleQuery(center, radius), expected_circle);
    EXPECT_EQ(rtree.CircleQuery(center, radius), expected_circle);
    EXPECT_EQ(kdtree.CircleQuery(center, radius), expected_circle);

    const double x1 = rng.Uniform(), x2 = rng.Uniform();
    const double y1 = rng.Uniform(), y2 = rng.Uniform();
    const Rect rect{std::min(x1, x2), std::min(y1, y2), std::max(x1, x2),
                    std::max(y1, y2)};
    const auto expected_range = reference.RangeQuery(rect);
    EXPECT_EQ(grid.RangeQuery(rect), expected_range);
    EXPECT_EQ(rtree.RangeQuery(rect), expected_range);
    EXPECT_EQ(kdtree.RangeQuery(rect), expected_range);
  }
}

TEST_P(SpatialEquivalenceTest, KnnDistancesAgree) {
  const IndexCase& param = GetParam();
  const auto items = RandomItems(param.item_count, param.seed);
  LinearScan reference;
  reference.Build(items);
  GridIndex grid(16);
  grid.Build(items);
  RTree rtree;
  rtree.Build(items);
  KdTree kdtree;
  kdtree.Build(items);

  auto distance_of = [&](int64_t id, const Point& center) {
    return SquaredDistance(items[static_cast<size_t>(id)].location, center);
  };

  Rng rng(param.seed ^ 0x1234);
  for (int q = 0; q < 20; ++q) {
    const Point center{rng.Uniform(), rng.Uniform()};
    for (const size_t k : {size_t{1}, size_t{5}, size_t{17}}) {
      const auto expected = reference.Knn(center, k);
      const auto from_grid = grid.Knn(center, k);
      const auto from_rtree = rtree.Knn(center, k);
      const auto from_kdtree = kdtree.Knn(center, k);
      ASSERT_EQ(from_grid.size(), expected.size());
      ASSERT_EQ(from_rtree.size(), expected.size());
      ASSERT_EQ(from_kdtree.size(), expected.size());
      // Ties make id sequences ambiguous; distances must match exactly.
      for (size_t i = 0; i < expected.size(); ++i) {
        EXPECT_DOUBLE_EQ(distance_of(from_grid[i], center),
                         distance_of(expected[i], center));
        EXPECT_DOUBLE_EQ(distance_of(from_rtree[i], center),
                         distance_of(expected[i], center));
        EXPECT_DOUBLE_EQ(distance_of(from_kdtree[i], center),
                         distance_of(expected[i], center));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomWorkloads, SpatialEquivalenceTest,
    ::testing::Values(IndexCase{"tiny_bulk", 3, 11, true},
                      IndexCase{"tiny_insert", 3, 11, false},
                      IndexCase{"small_bulk", 40, 12, true},
                      IndexCase{"small_insert", 40, 13, false},
                      IndexCase{"medium_bulk", 500, 14, true},
                      IndexCase{"medium_insert", 500, 15, false},
                      IndexCase{"large_bulk", 3000, 16, true}),
    [](const ::testing::TestParamInfo<IndexCase>& info) {
      return info.param.name;
    });

// ---------------------------------------------------------------------------
// Remove: mutation path vs. rebuild-from-live-set (fuzz)
// ---------------------------------------------------------------------------

TEST(RemoveTest, RemoveMissingReturnsFalse) {
  LinearScan scan;
  GridIndex grid(8);
  RTree rtree(4, 2);
  const SpatialItem item{7, {0.5, 0.5}};
  EXPECT_FALSE(scan.Remove(item));
  EXPECT_FALSE(grid.Remove(item));
  EXPECT_FALSE(rtree.Remove(item));
  scan.Insert(item);
  grid.Insert(item);
  rtree.Insert(item);
  // Same id at a different location is not a match.
  const SpatialItem elsewhere{7, {0.1, 0.1}};
  EXPECT_FALSE(scan.Remove(elsewhere));
  EXPECT_FALSE(grid.Remove(elsewhere));
  EXPECT_FALSE(rtree.Remove(elsewhere));
  EXPECT_TRUE(scan.Remove(item));
  EXPECT_TRUE(grid.Remove(item));
  EXPECT_TRUE(rtree.Remove(item));
  EXPECT_EQ(scan.Size(), 0u);
  EXPECT_EQ(grid.Size(), 0u);
  EXPECT_EQ(rtree.Size(), 0u);
}

TEST(RemoveTest, KdTreeDoesNotSupportRemove) {
  KdTree tree;
  const SpatialItem item{1, {0.5, 0.5}};
  tree.Insert(item);
  EXPECT_FALSE(tree.Remove(item));
  EXPECT_EQ(tree.Size(), 1u);
}

// Interleaves inserts and removals on every mutation-capable index and
// checks each query against a LinearScan rebuilt from the live set — the
// invariant the streaming plane's delta maintenance rests on.
TEST(RemoveTest, FuzzInterleavedMutationsMatchRebuild) {
  for (const uint64_t seed : {41u, 42u, 43u}) {
    Rng rng(seed);
    GridIndex grid(8);
    RTree rtree(6, 2);
    LinearScan scan;
    // Seed with a bulk load so the R-tree starts from an STR packing.
    std::vector<SpatialItem> live = RandomItems(100, seed ^ 0xF00);
    grid.Build(live);
    rtree.Build(live);
    scan.Build(live);
    int64_t next_id = 100;

    for (int step = 0; step < 400; ++step) {
      if (live.empty() || rng.Uniform() < 0.5) {
        const SpatialItem item{next_id++, {rng.Uniform(), rng.Uniform()}};
        live.push_back(item);
        grid.Insert(item);
        rtree.Insert(item);
        scan.Insert(item);
      } else {
        const size_t victim = static_cast<size_t>(
            rng.Uniform() * static_cast<double>(live.size()));
        const SpatialItem item = live[std::min(victim, live.size() - 1)];
        live[std::min(victim, live.size() - 1)] = live.back();
        live.pop_back();
        EXPECT_TRUE(grid.Remove(item));
        EXPECT_TRUE(rtree.Remove(item));
        EXPECT_TRUE(scan.Remove(item));
      }
      ASSERT_EQ(grid.Size(), live.size());
      ASSERT_EQ(rtree.Size(), live.size());
      ASSERT_EQ(scan.Size(), live.size());

      if (step % 20 == 19) {
        rtree.CheckInvariants();
        LinearScan reference;
        reference.Build(live);
        const Point center{rng.Uniform(), rng.Uniform()};
        const double radius = rng.Uniform(0.0, 0.4);
        const auto expected = reference.CircleQuery(center, radius);
        EXPECT_EQ(grid.CircleQuery(center, radius), expected);
        EXPECT_EQ(rtree.CircleQuery(center, radius), expected);
        EXPECT_EQ(scan.CircleQuery(center, radius), expected);
        const Rect rect{rng.Uniform(0.0, 0.5), rng.Uniform(0.0, 0.5),
                        rng.Uniform(0.5, 1.0), rng.Uniform(0.5, 1.0)};
        const auto expected_range = reference.RangeQuery(rect);
        EXPECT_EQ(grid.RangeQuery(rect), expected_range);
        EXPECT_EQ(rtree.RangeQuery(rect), expected_range);
        EXPECT_EQ(scan.RangeQuery(rect), expected_range);
      }
    }
  }
}

TEST(RemoveTest, RTreeTombstoneCounterTracksRemovalsAndResetsOnBuild) {
  RTree tree(4, 2);
  const auto items = RandomItems(64, 77);
  tree.Build(items);
  EXPECT_EQ(tree.removed_since_build(), 0);
  for (int i = 0; i < 16; ++i) {
    EXPECT_TRUE(tree.Remove(items[static_cast<size_t>(i)]));
  }
  EXPECT_EQ(tree.removed_since_build(), 16);
  EXPECT_EQ(tree.Size(), 48u);
  tree.CheckInvariants();
  // Failed removals don't count.
  EXPECT_FALSE(tree.Remove(items[0]));
  EXPECT_EQ(tree.removed_since_build(), 16);
  // Rebuild resets the tombstone counter.
  tree.Build(
      std::vector<SpatialItem>(items.begin() + 16, items.end()));
  EXPECT_EQ(tree.removed_since_build(), 0);
  EXPECT_EQ(tree.Size(), 48u);
}

TEST(RemoveTest, RTreeDrainToEmptyAndRefill) {
  RTree tree(4, 2);
  auto items = RandomItems(50, 88);
  for (const auto& item : items) tree.Insert(item);
  for (const auto& item : items) EXPECT_TRUE(tree.Remove(item));
  EXPECT_EQ(tree.Size(), 0u);
  tree.CheckInvariants();
  EXPECT_TRUE(tree.RangeQuery({0, 0, 1, 1}).empty());
  for (const auto& item : items) tree.Insert(item);
  tree.CheckInvariants();
  EXPECT_EQ(tree.RangeQuery({0, 0, 1, 1}).size(), 50u);
}

// ---------------------------------------------------------------------------
// KdTree specifics
// ---------------------------------------------------------------------------

TEST(KdTreeTest, EmptyTree) {
  KdTree tree;
  EXPECT_EQ(tree.Size(), 0u);
  EXPECT_EQ(tree.Depth(), 0);
  EXPECT_TRUE(tree.RangeQuery({0, 0, 1, 1}).empty());
  EXPECT_TRUE(tree.Knn({0.5, 0.5}, 3).empty());
  tree.CheckInvariants();
}

TEST(KdTreeTest, BuildIsBalanced) {
  KdTree tree;
  tree.Build(RandomItems(1023, 31));
  tree.CheckInvariants();
  EXPECT_EQ(tree.Size(), 1023u);
  // A perfectly balanced tree over 1023 nodes has depth 10.
  EXPECT_LE(tree.Depth(), 10);
}

TEST(KdTreeTest, SequentialInsertDegradesButStaysCorrect) {
  KdTree tree;
  // Sorted input is the worst case for insert-only kd-trees.
  for (int i = 0; i < 128; ++i) {
    tree.Insert({i, {i / 128.0, i / 128.0}});
  }
  tree.CheckInvariants();
  EXPECT_EQ(tree.Depth(), 128);  // degenerate chain, still correct
  EXPECT_EQ(tree.RangeQuery({0, 0, 1, 1}).size(), 128u);
}

TEST(KdTreeTest, DuplicateCoordinates) {
  KdTree tree;
  std::vector<SpatialItem> items;
  for (int i = 0; i < 25; ++i) items.push_back({i, {0.5, 0.5}});
  tree.Build(items);
  tree.CheckInvariants();
  EXPECT_EQ(tree.CircleQuery({0.5, 0.5}, 0.0).size(), 25u);
  EXPECT_EQ(tree.RangeQuery({0.5, 0.5, 0.5, 0.5}).size(), 25u);
  EXPECT_EQ(tree.Knn({0.1, 0.1}, 5).size(), 5u);
}

TEST(KdTreeTest, DuplicateXCoordinateColumn) {
  // All points share x = 0.5: every x-split degenerates; queries on the
  // column boundary must still find everything.
  KdTree tree;
  std::vector<SpatialItem> items;
  for (int i = 0; i < 40; ++i) items.push_back({i, {0.5, i / 40.0}});
  tree.Build(items);
  tree.CheckInvariants();
  EXPECT_EQ(tree.RangeQuery({0.5, 0.0, 0.5, 1.0}).size(), 40u);
}

// ---------------------------------------------------------------------------
// GridIndex specifics
// ---------------------------------------------------------------------------

TEST(GridIndexTest, OutOfRangePointsAreClamped) {
  GridIndex grid(8);
  grid.Insert({1, {-0.5, 2.0}});
  // Still findable by an exact circle query around its true location.
  EXPECT_EQ(grid.CircleQuery({-0.5, 2.0}, 0.01), (std::vector<int64_t>{1}));
  EXPECT_EQ(grid.Size(), 1u);
}

TEST(GridIndexTest, SingleCellGrid) {
  GridIndex grid(1);
  for (const auto& item : RandomItems(100, 21)) grid.Insert(item);
  EXPECT_EQ(grid.RangeQuery({0, 0, 1, 1}).size(), 100u);
  EXPECT_EQ(grid.Knn({0.5, 0.5}, 7).size(), 7u);
}

}  // namespace
}  // namespace casc
