#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "graph/dinic.h"
#include "graph/flow_network.h"
#include "graph/ford_fulkerson.h"

namespace casc {
namespace {

// ---------------------------------------------------------------------------
// FlowNetwork
// ---------------------------------------------------------------------------

TEST(FlowNetworkTest, EdgeBookkeeping) {
  FlowNetwork network(3);
  const int e0 = network.AddEdge(0, 1, 5);
  const int e1 = network.AddEdge(1, 2, 3);
  EXPECT_EQ(network.num_vertices(), 3);
  EXPECT_EQ(network.num_edges(), 2);
  EXPECT_EQ(network.Capacity(e0), 5);
  EXPECT_EQ(network.Capacity(e1), 3);
  EXPECT_EQ(network.Flow(e0), 0);
}

TEST(FlowNetworkTest, FlowReadsAfterMaxFlow) {
  FlowNetwork network(2);
  const int e = network.AddEdge(0, 1, 7);
  EXPECT_EQ(DinicMaxFlow(&network, 0, 1), 7);
  EXPECT_EQ(network.Flow(e), 7);
}

TEST(FlowNetworkTest, ResetFlowRestoresCapacity) {
  FlowNetwork network(2);
  const int e = network.AddEdge(0, 1, 7);
  DinicMaxFlow(&network, 0, 1);
  network.ResetFlow();
  EXPECT_EQ(network.Flow(e), 0);
  EXPECT_EQ(DinicMaxFlow(&network, 0, 1), 7);
}

// ---------------------------------------------------------------------------
// Known max-flow answers
// ---------------------------------------------------------------------------

TEST(DinicTest, DisconnectedGraphHasZeroFlow) {
  FlowNetwork network(4);
  network.AddEdge(0, 1, 10);
  network.AddEdge(2, 3, 10);
  EXPECT_EQ(DinicMaxFlow(&network, 0, 3), 0);
}

TEST(DinicTest, SeriesBottleneck) {
  FlowNetwork network(4);
  network.AddEdge(0, 1, 10);
  network.AddEdge(1, 2, 2);
  network.AddEdge(2, 3, 10);
  EXPECT_EQ(DinicMaxFlow(&network, 0, 3), 2);
}

TEST(DinicTest, ParallelPathsAdd) {
  FlowNetwork network(4);
  network.AddEdge(0, 1, 3);
  network.AddEdge(1, 3, 3);
  network.AddEdge(0, 2, 4);
  network.AddEdge(2, 3, 4);
  EXPECT_EQ(DinicMaxFlow(&network, 0, 3), 7);
}

TEST(DinicTest, ClassicClrsExample) {
  // CLRS figure 26.6 network; max flow 23.
  FlowNetwork network(6);
  network.AddEdge(0, 1, 16);
  network.AddEdge(0, 2, 13);
  network.AddEdge(1, 2, 10);
  network.AddEdge(2, 1, 4);
  network.AddEdge(1, 3, 12);
  network.AddEdge(3, 2, 9);
  network.AddEdge(2, 4, 14);
  network.AddEdge(4, 3, 7);
  network.AddEdge(3, 5, 20);
  network.AddEdge(4, 5, 4);
  EXPECT_EQ(DinicMaxFlow(&network, 0, 5), 23);
}

TEST(DinicTest, RequiresAugmentingThroughResidualEdge) {
  // The classic "cross" network where a greedy path must be undone via
  // the residual edge.
  FlowNetwork network(4);
  network.AddEdge(0, 1, 1);
  network.AddEdge(0, 2, 1);
  network.AddEdge(1, 2, 1);
  network.AddEdge(1, 3, 1);
  network.AddEdge(2, 3, 1);
  EXPECT_EQ(DinicMaxFlow(&network, 0, 3), 2);
}

TEST(DinicTest, BipartiteMatchingShape) {
  // 3 workers, 2 tasks with capacity 2 each: max assignment = 3.
  // Layout: 0 source, 1-3 workers, 4-5 tasks, 6 sink.
  FlowNetwork network(7);
  for (int w = 1; w <= 3; ++w) network.AddEdge(0, w, 1);
  network.AddEdge(1, 4, 1);
  network.AddEdge(2, 4, 1);
  network.AddEdge(2, 5, 1);
  network.AddEdge(3, 5, 1);
  network.AddEdge(4, 6, 2);
  network.AddEdge(5, 6, 2);
  EXPECT_EQ(DinicMaxFlow(&network, 0, 6), 3);
}

TEST(FordFulkersonTest, MatchesKnownAnswer) {
  FlowNetwork network(4);
  network.AddEdge(0, 1, 10);
  network.AddEdge(1, 2, 2);
  network.AddEdge(1, 3, 4);
  network.AddEdge(2, 3, 10);
  EXPECT_EQ(FordFulkersonMaxFlow(&network, 0, 3), 6);
}

// ---------------------------------------------------------------------------
// Flow conservation and feasibility after Dinic
// ---------------------------------------------------------------------------

TEST(DinicTest, FlowConservationHolds) {
  Rng rng(5);
  FlowNetwork network(10);
  std::vector<int> edge_from;
  std::vector<int> edges;
  for (int i = 0; i < 40; ++i) {
    const int from = static_cast<int>(rng.UniformInt(uint64_t{10}));
    const int to = static_cast<int>(rng.UniformInt(uint64_t{10}));
    if (from == to) continue;
    edges.push_back(network.AddEdge(from, to,
                                    static_cast<int64_t>(
                                        rng.UniformInt(uint64_t{9}) + 1)));
    edge_from.push_back(from);
  }
  const int64_t total = DinicMaxFlow(&network, 0, 9);

  std::vector<int64_t> net_out(10, 0);
  for (size_t i = 0; i < edges.size(); ++i) {
    const int64_t flow = network.Flow(edges[i]);
    EXPECT_GE(flow, 0);
    EXPECT_LE(flow, network.Capacity(edges[i]));
    const int from = edge_from[i];
    const int to = network.edges()[static_cast<size_t>(edges[i]) * 2].to;
    net_out[static_cast<size_t>(from)] += flow;
    net_out[static_cast<size_t>(to)] -= flow;
  }
  EXPECT_EQ(net_out[0], total);
  EXPECT_EQ(net_out[9], -total);
  for (int v = 1; v < 9; ++v) EXPECT_EQ(net_out[static_cast<size_t>(v)], 0);
}

// ---------------------------------------------------------------------------
// Dinic vs Ford-Fulkerson on random graphs (property test)
// ---------------------------------------------------------------------------

struct GraphCase {
  std::string name;
  int vertices;
  int edges;
  int64_t max_capacity;
  uint64_t seed;
};

class MaxFlowEquivalenceTest : public ::testing::TestWithParam<GraphCase> {};

TEST_P(MaxFlowEquivalenceTest, SolversAgree) {
  const GraphCase& param = GetParam();
  Rng rng(param.seed);
  for (int trial = 0; trial < 10; ++trial) {
    FlowNetwork a(param.vertices);
    FlowNetwork b(param.vertices);
    for (int e = 0; e < param.edges; ++e) {
      const int from =
          static_cast<int>(rng.UniformInt(static_cast<uint64_t>(param.vertices)));
      const int to =
          static_cast<int>(rng.UniformInt(static_cast<uint64_t>(param.vertices)));
      if (from == to) continue;
      const int64_t capacity = static_cast<int64_t>(
          rng.UniformInt(static_cast<uint64_t>(param.max_capacity)) + 1);
      a.AddEdge(from, to, capacity);
      b.AddEdge(from, to, capacity);
    }
    const int source = 0;
    const int sink = param.vertices - 1;
    EXPECT_EQ(DinicMaxFlow(&a, source, sink),
              FordFulkersonMaxFlow(&b, source, sink));
  }
}

TEST_P(MaxFlowEquivalenceTest, MaxFlowEqualsMinCut) {
  // Strong duality check: after Dinic, the set S of vertices reachable
  // from the source in the residual graph defines a cut whose original
  // capacity equals the computed flow.
  const GraphCase& param = GetParam();
  Rng rng(param.seed ^ 0xC07);
  for (int trial = 0; trial < 5; ++trial) {
    FlowNetwork network(param.vertices);
    struct EdgeRecord {
      int from, to, index;
    };
    std::vector<EdgeRecord> records;
    for (int e = 0; e < param.edges; ++e) {
      const int from = static_cast<int>(
          rng.UniformInt(static_cast<uint64_t>(param.vertices)));
      const int to = static_cast<int>(
          rng.UniformInt(static_cast<uint64_t>(param.vertices)));
      if (from == to) continue;
      const int64_t capacity = static_cast<int64_t>(
          rng.UniformInt(static_cast<uint64_t>(param.max_capacity)) + 1);
      records.push_back({from, to, network.AddEdge(from, to, capacity)});
    }
    const int source = 0;
    const int sink = param.vertices - 1;
    const int64_t flow = DinicMaxFlow(&network, source, sink);

    // Residual reachability from the source.
    std::vector<bool> reachable(static_cast<size_t>(param.vertices), false);
    std::vector<int> stack = {source};
    reachable[static_cast<size_t>(source)] = true;
    while (!stack.empty()) {
      const int v = stack.back();
      stack.pop_back();
      for (const int edge_index :
           network.adjacency()[static_cast<size_t>(v)]) {
        const auto& edge = network.edges()[static_cast<size_t>(edge_index)];
        if (edge.capacity > 0 && !reachable[static_cast<size_t>(edge.to)]) {
          reachable[static_cast<size_t>(edge.to)] = true;
          stack.push_back(edge.to);
        }
      }
    }
    ASSERT_FALSE(reachable[static_cast<size_t>(sink)]);

    int64_t cut_capacity = 0;
    for (const EdgeRecord& record : records) {
      if (reachable[static_cast<size_t>(record.from)] &&
          !reachable[static_cast<size_t>(record.to)]) {
        cut_capacity += network.Capacity(record.index);
      }
    }
    EXPECT_EQ(cut_capacity, flow);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, MaxFlowEquivalenceTest,
    ::testing::Values(GraphCase{"sparse_small", 6, 8, 5, 100},
                      GraphCase{"dense_small", 6, 25, 5, 101},
                      GraphCase{"unit_capacities", 12, 40, 1, 102},
                      GraphCase{"medium", 20, 80, 10, 103},
                      GraphCase{"large_capacities", 10, 30, 1000, 104}),
    [](const ::testing::TestParamInfo<GraphCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace casc
